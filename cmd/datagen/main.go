// Command datagen generates the synthetic datasets standing in for the
// paper's Email / PubMed / Wiki collections (Table III) and writes them as
// TSV files (id<TAB>space-separated tokens), or prints their statistics.
//
// Usage:
//
//	datagen -profile email|pubmed|wiki [-scale F] [-seed N] [-o FILE]
//	datagen -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"fsjoin/internal/dataset"
	"fsjoin/internal/tokens"
)

func main() {
	var (
		profile = flag.String("profile", "wiki", "dataset profile: email, pubmed or wiki")
		scale   = flag.Float64("scale", 1.0, "record-count multiplier")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "-", "output file (- for stdout)")
		stats   = flag.Bool("stats", false, "print Table III-style statistics for all profiles and exit")
	)
	flag.Parse()

	if *stats {
		fmt.Printf("%-8s %9s %8s %8s %8s %10s %12s\n",
			"dataset", "records", "min-len", "max-len", "avg-len", "distinct", "total-toks")
		for _, p := range dataset.Profiles() {
			s := dataset.Describe(dataset.Generate(p.Scale(*scale), *seed))
			fmt.Printf("%-8s %9d %8d %8d %8.1f %10d %12d\n",
				p.Name, s.Records, s.MinLen, s.MaxLen, s.AvgLen, s.Distinct, s.TotalToks)
		}
		return
	}

	var p dataset.Profile
	switch *profile {
	case "email":
		p = dataset.Email()
	case "pubmed":
		p = dataset.PubMed()
	case "wiki":
		p = dataset.Wiki()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	c := dataset.Generate(p.Scale(*scale), *seed)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	if err := dataset.WriteTSV(bw, c); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	var _ *tokens.Collection = c
}
