// Command benchreport runs the performance-regression benchmark subset —
// engine shuffle throughput, the fragment-join kernels (bitmap filter on
// and off) against their legacy map-based baselines, the Figure 7-class
// end-to-end joins sequential vs parallel, and the out-of-core shuffle
// across memory budgets — and writes a machine-readable JSON report
// (BENCH_PR8.json) with the derived speedup, allocation and spill-slowdown
// ratios, plus five in-process sections: filter_effectiveness (the bitmap
// signature filter's reject rates and verified-candidate reduction on the
// golden corpus, with output equality enforced), robustness (checkpoint
// hit/miss counters across a cold run and a resume, fault.records.skipped
// from a poisoned word count), serving (a burst of jobs through
// fsjoin.Server — throughput, p50/p95 latency and the shed rate under a
// deliberately tight queue), rs_join (the R-S FS-Join raced against the
// brute-force cross-join oracle on the golden R-S fixture, byte-identical
// agreement enforced), probe_serving (the persistent probe index's
// build/save/load costs and p50/p95 single-query latency raced against
// per-query pipeline joins, byte-identical agreement and a 100× speedup
// floor enforced), durability (acknowledged-insert latency under each
// WAL fsync policy, and recovery time as the replayed log grows, with the
// recovered record count enforced) and multiprocess (the same join across
// supervised worker processes over the filesystem shuffle transport —
// multi-worker wall time vs in-process, and the recovery overhead of a
// worker SIGKILLed mid-run, pairs enforced identical throughout).
//
// Every section carries a header with the host's CPU count, GOMAXPROCS
// and the shuffle transport mode it exercised, so reports from different
// machines and transports compare honestly.
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_PR10.json] [-benchtime 5x]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"fsjoin"
	"fsjoin/internal/bruteforce"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// result is one parsed benchmark line. Metrics carries any custom
// b.ReportMetric columns (e.g. the memory-budget suite's spill-runs/op,
// spill-B/op, shuffle-peak-B and merge-ways).
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// section is one in-process probe suite plus the execution-context header
// every section records: the host's CPU count, GOMAXPROCS, and which
// shuffle transport the suite exercised ("memory", "fs" or
// "multiprocess").
type section struct {
	CPUs       int                `json:"cpus"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Transport  string             `json:"transport"`
	Metrics    map[string]float64 `json:"metrics"`
}

// sec wraps a probe suite's metrics with the section header.
func sec(transport string, m map[string]float64) *section {
	return &section{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Transport:  transport,
		Metrics:    m,
	}
}

// report is the emitted JSON document.
type report struct {
	Generated           string             `json:"generated"`
	GoVersion           string             `json:"go_version"`
	CPUs                int                `json:"cpus"`
	GoMaxProcs          int                `json:"gomaxprocs"`
	Note                string             `json:"note,omitempty"`
	Benchmarks          []result           `json:"benchmarks"`
	Derived             map[string]float64 `json:"derived"`
	FilterEffectiveness *section           `json:"filter_effectiveness,omitempty"`
	Robustness          *section           `json:"robustness,omitempty"`
	Serving             *section           `json:"serving,omitempty"`
	RSJoin              *section           `json:"rs_join,omitempty"`
	ProbeServing        *section           `json:"probe_serving,omitempty"`
	Durability          *section           `json:"durability,omitempty"`
	Multiprocess        *section           `json:"multiprocess,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?`)

// metricCol matches every "value unit" column of a benchmark line; the
// standard ns/op, B/op, allocs/op and MB/s columns are skipped when
// collecting custom metrics.
var metricCol = regexp.MustCompile(`([\d.e+-]+) ([A-Za-z][\w.-]*(?:/s|/op)?)`)

// runBench executes one `go test -bench` invocation and parses its output.
func runBench(benchtime, pattern, pkg string, mem bool) ([]result, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchtime", benchtime, pkg}
	if mem {
		args = append(args, "-benchmem")
	}
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, out)
	}
	var rs []result
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(out), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		for _, col := range metricCol.FindAllStringSubmatch(line, -1) {
			switch col[2] {
			case "ns/op", "B/op", "allocs/op", "MB/s":
				continue
			}
			v, err := strconv.ParseFloat(col[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[col[2]] = v
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("go %v: no benchmark lines in output:\n%s", args, out)
	}
	return rs, nil
}

// filterEffectiveness measures the bitmap signature filter on the golden
// corpus: every FS-Join kernel and RIDPairsPPJoin run with the filter
// forced on and forced off. Output equality is enforced — any divergence
// is an error, the filter may only skip work — and the section reports the
// per-kernel reject rate plus the verification stage's candidate
// reduction.
func filterEffectiveness() (map[string]float64, error) {
	raw, err := os.ReadFile("testdata/golden/texts.txt")
	if err != nil {
		return nil, fmt.Errorf("golden corpus (run from the repo root): %v", err)
	}
	var texts []string
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		if line != "" {
			texts = append(texts, line)
		}
	}
	out := map[string]float64{}
	for _, cfg := range []struct {
		name string
		opt  fsjoin.Options
	}{
		{"fsjoin_prefix", fsjoin.Options{Threshold: 0.7, Nodes: 3, JoinMethod: fsjoin.PrefixJoin}},
		{"fsjoin_index", fsjoin.Options{Threshold: 0.7, Nodes: 3, JoinMethod: fsjoin.IndexJoin}},
		{"fsjoin_loop", fsjoin.Options{Threshold: 0.7, Nodes: 3, JoinMethod: fsjoin.LoopJoin}},
		{"ridpairs", fsjoin.Options{Threshold: 0.7, Nodes: 3, Algorithm: fsjoin.RIDPairsPPJoin}},
	} {
		on := cfg.opt
		on.BitmapFilter = fsjoin.BitmapOn
		off := cfg.opt
		off.BitmapFilter = fsjoin.BitmapOff
		resOn, err := fsjoin.SelfJoinStrings(texts, on)
		if err != nil {
			return nil, fmt.Errorf("%s bitmap on: %v", cfg.name, err)
		}
		resOff, err := fsjoin.SelfJoinStrings(texts, off)
		if err != nil {
			return nil, fmt.Errorf("%s bitmap off: %v", cfg.name, err)
		}
		if len(resOn.Pairs) != len(resOff.Pairs) {
			return nil, fmt.Errorf("%s: %d pairs with filter on, %d off — filter changed output",
				cfg.name, len(resOn.Pairs), len(resOff.Pairs))
		}
		for i := range resOn.Pairs {
			if resOn.Pairs[i] != resOff.Pairs[i] {
				return nil, fmt.Errorf("%s: pair %d differs with filter on vs off", cfg.name, i)
			}
		}
		screened := resOn.Stats.BitmapRejected + resOn.Stats.BitmapPassed
		if resOn.Stats.BitmapRejected == 0 || screened == 0 {
			return nil, fmt.Errorf("%s: bitmap filter rejected nothing on the golden corpus", cfg.name)
		}
		out[cfg.name+"_reject_rate"] = float64(resOn.Stats.BitmapRejected) / float64(screened)
		out[cfg.name+"_rejected"] = float64(resOn.Stats.BitmapRejected)
		if resOff.Stats.VerifiedCandidates > 0 {
			out[cfg.name+"_verify_reduction_x"] =
				float64(resOff.Stats.VerifiedCandidates) / float64(max(resOn.Stats.VerifiedCandidates, 1))
		}
	}
	return out, nil
}

// poisonMapper is a word-count mapper that deterministically panics on
// the record keyed "poison" — the robustness probe for record quarantine.
type poisonMapper struct{}

func (poisonMapper) Map(ctx *mapreduce.Context, kv mapreduce.KV) {
	if kv.Key == "poison" {
		panic("poisoned record")
	}
	ctx.Emit(kv.Key, 1)
}

// robustness exercises the recovery machinery in-process and reports its
// counters: a checkpointed join run cold then resumed from the same
// directory, and a poisoned word count completed via record quarantine.
func robustness() (map[string]float64, error) {
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = fmt.Sprintf("alpha beta gamma delta epsilon%d zeta%d", i%7, i%11)
	}
	dir, err := os.MkdirTemp("", "benchreport-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	opt := fsjoin.Options{Threshold: 0.5, CheckpointDir: dir}
	cold, err := fsjoin.SelfJoinStrings(texts, opt)
	if err != nil {
		return nil, fmt.Errorf("cold checkpointed join: %v", err)
	}
	warm, err := fsjoin.SelfJoinStrings(texts, opt)
	if err != nil {
		return nil, fmt.Errorf("resumed checkpointed join: %v", err)
	}
	if len(warm.Pairs) != len(cold.Pairs) {
		return nil, fmt.Errorf("resumed join found %d pairs, cold run %d", len(warm.Pairs), len(cold.Pairs))
	}

	input := make([]mapreduce.KV, 0, 101)
	for i := 0; i < 100; i++ {
		input = append(input, mapreduce.KV{Key: fmt.Sprintf("w%d", i%13), Value: 1})
	}
	input = append(input, mapreduce.KV{Key: "poison", Value: 1})
	res, err := mapreduce.Run(mapreduce.Config{
		Name:  "robustness-poisoned-wc",
		Fault: mapreduce.FaultPolicy{MaxAttempts: 2, SkipBadRecords: true},
	}, input, poisonMapper{}, mapreduce.FirstValue{})
	if err != nil {
		return nil, fmt.Errorf("poisoned word count: %v", err)
	}

	return map[string]float64{
		"checkpoint_cold_misses":   float64(cold.Stats.CheckpointMisses),
		"checkpoint_resume_hits":   float64(warm.Stats.CheckpointHits),
		"checkpoint_resume_misses": float64(warm.Stats.CheckpointMisses),
		"records_skipped":          float64(res.Counters.Get(mapreduce.CounterRecordsSkipped)),
	}, nil
}

// serving probes the multi-job serving layer in-process. First a burst of
// jobs is pushed through a Server with a generous queue so every job
// completes — that yields throughput and the queue-wait-inclusive latency
// distribution. Then the same burst hits a server with no queue and one
// slot, which pins the load-shedding path and its shed rate.
func serving() (map[string]float64, error) {
	const jobs = 24
	texts := make([]string, 120)
	for i := range texts {
		texts[i] = fmt.Sprintf("alpha beta gamma delta eps%d zeta%d eta%d", i%5, i%9, i%13)
	}
	opt := fsjoin.Options{Threshold: 0.6, Nodes: 4}
	dict := fsjoin.NewDictionary()
	sets := make([][]string, len(texts))
	for i, t := range texts {
		sets[i] = regexp.MustCompile(`\s+`).Split(t, -1)
	}
	coll := dict.NewCollection(sets)

	run := func(maxConc, maxQueue int) (lat []time.Duration, shed int, wall time.Duration, err error) {
		srv, serr := fsjoin.NewServer(fsjoin.ServerOptions{
			MemoryBudget:  64 << 20,
			MaxConcurrent: maxConc,
			MaxQueue:      maxQueue,
		})
		if serr != nil {
			return nil, 0, 0, serr
		}
		defer srv.Shutdown(context.Background())
		lat = make([]time.Duration, jobs)
		errs := make([]error, jobs)
		var wg sync.WaitGroup
		start := time.Now()
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				t0 := time.Now()
				_, errs[j] = srv.Run(context.Background(), fsjoin.Job{Collection: coll, Options: opt})
				lat[j] = time.Since(t0)
			}(j)
		}
		wg.Wait()
		wall = time.Since(start)
		kept := lat[:0]
		for j, e := range errs {
			switch {
			case e == nil:
				kept = append(kept, lat[j])
			case errors.Is(e, fsjoin.ErrOverloaded) || errors.Is(e, fsjoin.ErrQueueTimeout):
				shed++
			default:
				return nil, 0, 0, fmt.Errorf("serving job %d: %v", j, e)
			}
		}
		return kept, shed, wall, nil
	}

	// Healthy configuration: everything queues, everything completes.
	lat, shed, wall, err := run(0, jobs)
	if err != nil {
		return nil, err
	}
	if shed != 0 || len(lat) != jobs {
		return nil, fmt.Errorf("healthy serving run shed %d of %d jobs", shed, jobs)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	p := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Microseconds()) / 1e3
	}
	out := map[string]float64{
		"jobs":              jobs,
		"throughput_jobs_s": float64(jobs) / wall.Seconds(),
		"latency_p50_ms":    p(0.50),
		"latency_p95_ms":    p(0.95),
		"latency_max_ms":    p(1.0),
		"healthy_shed_jobs": 0,
	}

	// Overload configuration: one slot, no queue — the burst must shed.
	_, shed, _, err = run(1, -1)
	if err != nil {
		return nil, err
	}
	if shed == 0 {
		return nil, fmt.Errorf("overload serving run shed nothing; admission gate not engaging")
	}
	out["overload_shed_jobs"] = float64(shed)
	out["overload_shed_rate"] = float64(shed) / float64(jobs)
	return out, nil
}

// readLines loads a one-record-per-line fixture file.
func readLines(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s (run from the repo root): %v", path, err)
	}
	var lines []string
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		if line != "" {
			lines = append(lines, line)
		}
	}
	return lines, nil
}

// rsJoin races the R-S FS-Join against the brute-force cross-join oracle
// on the committed golden R-S fixture (rs_queries.txt × texts.txt at
// θ = 0.7). Agreement must be byte-identical — same pairs, same counts,
// same float scores — and the section reports both wall times, the pair
// count, and the rs.pairs.* pipeline counters.
func rsJoin() (map[string]float64, error) {
	queries, err := readLines("testdata/golden/rs_queries.txt")
	if err != nil {
		return nil, err
	}
	corpus, err := readLines("testdata/golden/texts.txt")
	if err != nil {
		return nil, err
	}
	const theta = 0.7

	start := time.Now()
	res, err := fsjoin.JoinStrings(queries, corpus, fsjoin.Options{Threshold: theta, Nodes: 3})
	if err != nil {
		return nil, fmt.Errorf("rs fs-join: %v", err)
	}
	fsWall := time.Since(start)

	// The oracle shares the dictionary and tokenizer with the real join.
	dict := tokens.NewDictionary()
	encode := func(texts []string) *tokens.Collection {
		raws := make([]tokens.Raw, len(texts))
		for i, t := range texts {
			raws[i] = tokens.Raw{RID: int32(i), Text: t}
		}
		return dict.Encode(raws, tokens.WordTokenizer{})
	}
	r, s := encode(queries), encode(corpus)
	start = time.Now()
	want := bruteforce.Join(r, s, similarity.Jaccard, theta)
	oracleWall := time.Since(start)

	if len(res.Pairs) == 0 {
		return nil, fmt.Errorf("rs join found no pairs on the golden fixture")
	}
	if len(res.Pairs) != len(want) {
		return nil, fmt.Errorf("rs join found %d pairs, oracle %d", len(res.Pairs), len(want))
	}
	for i, p := range res.Pairs {
		w := want[i]
		if p.A != int(w.A) || p.B != int(w.B) || p.Common != w.Common || p.Similarity != w.Sim {
			return nil, fmt.Errorf("rs join pair %d = %+v, oracle %+v — agreement not byte-identical", i, p, w)
		}
	}
	return map[string]float64{
		"pairs":                  float64(len(res.Pairs)),
		"oracle_agreement":       1,
		"rs_candidates":          float64(res.Stats.RSCandidates),
		"rs_pairs_counter":       float64(res.Stats.RSPairs),
		"fsjoin_wall_ms":         float64(fsWall.Microseconds()) / 1e3,
		"oracle_wall_ms":         float64(oracleWall.Microseconds()) / 1e3,
		"fsjoin_vs_bruteforce_x": oracleWall.Seconds() / fsWall.Seconds(),
	}, nil
}

// probeServing measures the persistent probe index against the only other
// way to answer an online single-record query: a full R-S pipeline join of
// {q} × corpus per query, served through the same Server. It reports the
// one-off costs (build time, saved file size, load time — with the loaded
// index verified to answer identically to the built one) and the steady
// state (p50/p95 probe latency and throughput over probeN queries). Every
// baseline query's probe answer is checked byte-identical to the pipeline
// rows before the speedup is reported, and the speedup itself is enforced:
// an index that is not at least 100× faster per query than re-running the
// pipeline fails the report.
func probeServing() (map[string]float64, error) {
	const (
		theta     = 0.7
		probeN    = 200
		baselineN = 12
	)
	corpusTexts := make([]string, 2000)
	for i := range corpusTexts {
		corpusTexts[i] = fmt.Sprintf("alpha beta gamma delta eps%d zeta%d eta%d theta%d iota%d",
			i%5, i%9, i%13, i%17, i%23)
	}
	dict := fsjoin.NewDictionary()
	split := regexp.MustCompile(`\s+`)
	sets := make([][]string, len(corpusTexts))
	for i, t := range corpusTexts {
		sets[i] = split.Split(t, -1)
	}
	coll := dict.NewCollection(sets)
	iopt := fsjoin.IndexOptions{Threshold: theta}

	start := time.Now()
	built, err := fsjoin.BuildIndex(coll, iopt)
	if err != nil {
		return nil, fmt.Errorf("probe index build: %v", err)
	}
	buildWall := time.Since(start)

	// Save / load round trip: the restart path must be cheaper than the
	// build and the loaded index must answer exactly like the built one.
	dir, err := os.MkdirTemp("", "benchreport-index-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := built.Save(dir); err != nil {
		return nil, fmt.Errorf("probe index save: %v", err)
	}
	var indexBytes int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			indexBytes += info.Size()
		}
	}
	start = time.Now()
	ix, err := fsjoin.LoadIndex(dir, iopt)
	if err != nil {
		return nil, fmt.Errorf("probe index load: %v", err)
	}
	loadWall := time.Since(start)
	for i := 0; i < len(sets); i += 97 {
		a, b := built.Probe(sets[i]), ix.Probe(sets[i])
		if len(a) != len(b) {
			return nil, fmt.Errorf("loaded index answers differently: query %d has %d vs %d matches", i, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				return nil, fmt.Errorf("loaded index answers differently: query %d match %d = %+v vs %+v", i, j, b[j], a[j])
			}
		}
	}

	// Steady-state probe latency, served through the admission gate like a
	// production query would be.
	srv, err := fsjoin.NewServer(fsjoin.ServerOptions{MemoryBudget: 64 << 20})
	if err != nil {
		return nil, err
	}
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	lat := make([]time.Duration, probeN)
	start = time.Now()
	for i := range lat {
		t0 := time.Now()
		if _, err := srv.Probe(ctx, ix, sets[(i*31)%len(sets)]); err != nil {
			return nil, fmt.Errorf("probe %d: %v", i, err)
		}
		lat[i] = time.Since(t0)
	}
	probeWall := time.Since(start)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pUS := func(q float64) float64 {
		return float64(lat[int(q*float64(len(lat)-1))].Nanoseconds()) / 1e3
	}

	// Baseline: the same queries as one-record pipeline joins through the
	// same server, with byte-identical agreement enforced per query.
	var baseWall time.Duration
	for i := 0; i < baselineN; i++ {
		qi := (i * 173) % len(sets)
		qc := dict.NewCollection([][]string{sets[qi]})
		t0 := time.Now()
		res, err := srv.Join(ctx, qc, coll, fsjoin.Options{Threshold: theta})
		if err != nil {
			return nil, fmt.Errorf("baseline pipeline join %d: %v", i, err)
		}
		baseWall += time.Since(t0)
		want := make([]fsjoin.Match, 0, len(res.Pairs))
		for _, p := range res.Pairs {
			want = append(want, fsjoin.Match{RID: p.B, Common: p.Common, Similarity: p.Similarity})
		}
		sort.Slice(want, func(a, b int) bool { return want[a].RID < want[b].RID })
		got := ix.Probe(sets[qi])
		if len(got) != len(want) {
			return nil, fmt.Errorf("query %d: probe found %d matches, pipeline %d", qi, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return nil, fmt.Errorf("query %d match %d: probe %+v, pipeline %+v — agreement not byte-identical",
					qi, j, got[j], want[j])
			}
		}
	}

	probePerQuery := probeWall.Seconds() / probeN
	basePerQuery := baseWall.Seconds() / baselineN
	speedup := basePerQuery / probePerQuery
	if speedup < 100 {
		return nil, fmt.Errorf("probe speedup %.1fx over the per-query pipeline is below the 100x bar", speedup)
	}
	st := ix.Stats()
	return map[string]float64{
		"corpus_records":        float64(coll.Len()),
		"build_ms":              float64(buildWall.Nanoseconds()) / 1e6,
		"index_bytes":           float64(indexBytes),
		"load_ms":               float64(loadWall.Nanoseconds()) / 1e6,
		"probes":                probeN,
		"probe_p50_us":          pUS(0.50),
		"probe_p95_us":          pUS(0.95),
		"probe_max_us":          pUS(1.0),
		"probes_per_sec":        float64(probeN) / probeWall.Seconds(),
		"baseline_queries":      baselineN,
		"baseline_per_query_ms": basePerQuery * 1e3,
		"pipeline_agreement":    1,
		"speedup_x":             speedup,
		"index_candidates":      float64(st.Candidates),
		"index_hits":            float64(st.Hits),
	}, nil
}

// durability measures what the probe-index write-ahead log costs and what
// it buys: acknowledged-insert latency under each fsync policy (always
// pays an fsync per mutation, interval group-commits, never leaves
// syncing to the OS), and cold recovery time as the replayed log grows —
// with the recovered record count enforced, so the numbers can never come
// from an index that silently lost mutations.
func durability() (map[string]float64, error) {
	const corpusN = 1000
	corpusTexts := make([][]string, corpusN)
	for i := range corpusTexts {
		corpusTexts[i] = []string{"alpha", "beta",
			fmt.Sprintf("g%d", i%7), fmt.Sprintf("d%d", i%11), fmt.Sprintf("e%d", i%29)}
	}
	iopt := fsjoin.IndexOptions{Threshold: 0.8}
	build := func() (*fsjoin.Index, error) {
		return fsjoin.BuildIndex(fsjoin.NewDictionary().NewCollection(corpusTexts), iopt)
	}
	out := map[string]float64{}

	// Acknowledged-insert latency per fsync policy.
	const insertN = 300
	for _, pol := range []struct {
		name string
		d    fsjoin.Durability
	}{
		{"always", fsjoin.Durability{WALSync: fsjoin.WALSyncAlways}},
		{"interval", fsjoin.Durability{WALSync: fsjoin.WALSyncInterval}},
		{"never", fsjoin.Durability{WALSync: fsjoin.WALSyncNever}},
	} {
		ix, err := build()
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "benchreport-wal-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := ix.Persist(dir, pol.d); err != nil {
			return nil, fmt.Errorf("persist (%s): %v", pol.name, err)
		}
		lat := make([]time.Duration, insertN)
		for i := range lat {
			set := []string{"ins", fmt.Sprintf("w%d", i%97), fmt.Sprintf("v%d", i%31)}
			t0 := time.Now()
			if _, err := ix.Insert(set); err != nil {
				return nil, fmt.Errorf("durable insert (%s): %v", pol.name, err)
			}
			lat[i] = time.Since(t0)
		}
		if err := ix.Close(); err != nil {
			return nil, err
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		pUS := func(q float64) float64 {
			return float64(lat[int(q*float64(len(lat)-1))].Nanoseconds()) / 1e3
		}
		out["insert_p50_us_sync_"+pol.name] = pUS(0.50)
		out["insert_p95_us_sync_"+pol.name] = pUS(0.95)
	}

	// Recovery time vs WAL length: reopen after 0, 200 and 2000 logged
	// mutations; every acknowledged mutation must be there.
	for _, n := range []int{0, 200, 2000} {
		ix, err := build()
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "benchreport-recover-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := ix.Persist(dir, fsjoin.Durability{WALSync: fsjoin.WALSyncNever}); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := ix.Insert([]string{"rec", fmt.Sprintf("w%d", i%211)}); err != nil {
				return nil, err
			}
		}
		if err := ix.Close(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		ld, err := fsjoin.LoadIndex(dir, iopt)
		if err != nil {
			return nil, fmt.Errorf("recovery with %d logged ops: %v", n, err)
		}
		wall := time.Since(t0)
		if ld.Len() != corpusN+n {
			return nil, fmt.Errorf("recovery with %d logged ops: %d records, want %d — acknowledged mutations lost",
				n, ld.Len(), corpusN+n)
		}
		st := ld.Stats()
		if st.WALReplayed != int64(n) || st.WALTruncatedFrames != 0 {
			return nil, fmt.Errorf("recovery with %d logged ops: replayed %d, truncated %d",
				n, st.WALReplayed, st.WALTruncatedFrames)
		}
		out[fmt.Sprintf("recover_%d_ops_ms", n)] = float64(wall.Nanoseconds()) / 1e6
		if n == 2000 {
			out["snapshot_bytes"] = float64(st.SnapshotBytes)
		}
	}
	return out, nil
}

// multiprocess measures the multi-process execution path: the same join
// in-process (sequential — a one-worker stand-in), across 2 and 4
// supervised worker processes over the filesystem shuffle transport, and
// across 2 workers with one SIGKILLed at its first map boundary. Pairs
// are enforced identical across every configuration; the section reports
// wall times, the multi-worker speedup, the recovery overhead relative
// to the unharmed 2-worker run, and the supervision counters that prove
// the killed run actually recovered.
func multiprocess() (map[string]float64, error) {
	texts := make([]string, 500)
	for i := range texts {
		texts[i] = fmt.Sprintf("alpha beta gamma delta eps%d zeta%d eta%d", i%5, i%9, i%13)
	}
	opt := fsjoin.Options{Threshold: 0.6, Nodes: 8, LocalParallelism: 1}
	run := func(workers int, kill string) (*fsjoin.Result, time.Duration, error) {
		o := opt
		o.Workers = workers
		if kill != "" {
			os.Setenv("FSJOIN_KILL_WORKER", kill)
			defer os.Unsetenv("FSJOIN_KILL_WORKER")
		}
		t0 := time.Now()
		res, err := fsjoin.SelfJoinStrings(texts, o)
		return res, time.Since(t0), err
	}
	same := func(name string, got, want *fsjoin.Result) error {
		if len(got.Pairs) != len(want.Pairs) {
			return fmt.Errorf("%s: %d pairs, in-process %d — output diverged", name, len(got.Pairs), len(want.Pairs))
		}
		for i := range want.Pairs {
			if got.Pairs[i] != want.Pairs[i] {
				return fmt.Errorf("%s: pair %d differs from the in-process run", name, i)
			}
		}
		return nil
	}

	base, baseWall, err := run(0, "")
	if err != nil {
		return nil, fmt.Errorf("in-process baseline: %v", err)
	}
	if len(base.Pairs) == 0 {
		return nil, fmt.Errorf("multiprocess corpus produced no pairs — equality checks would be vacuous")
	}
	w2, w2Wall, err := run(2, "")
	if err != nil {
		return nil, fmt.Errorf("2-worker run: %v", err)
	}
	if err := same("2-worker run", w2, base); err != nil {
		return nil, err
	}
	w4, w4Wall, err := run(4, "")
	if err != nil {
		return nil, fmt.Errorf("4-worker run: %v", err)
	}
	if err := same("4-worker run", w4, base); err != nil {
		return nil, err
	}
	rec, recWall, err := run(2, "0:map:1")
	if err != nil {
		return nil, fmt.Errorf("2-worker run with SIGKILL: %v", err)
	}
	if err := same("2-worker run with SIGKILL", rec, base); err != nil {
		return nil, err
	}
	if rec.Stats.WorkerDeaths < 1 || rec.Stats.TasksReassigned == 0 {
		return nil, fmt.Errorf("killed run recorded deaths=%d reassigned=%d — recovery never engaged",
			rec.Stats.WorkerDeaths, rec.Stats.TasksReassigned)
	}
	return map[string]float64{
		"records":                float64(len(texts)),
		"pairs":                  float64(len(base.Pairs)),
		"inprocess_wall_ms":      float64(baseWall.Nanoseconds()) / 1e6,
		"workers2_wall_ms":       float64(w2Wall.Nanoseconds()) / 1e6,
		"workers4_wall_ms":       float64(w4Wall.Nanoseconds()) / 1e6,
		"workers2_speedup_x":     baseWall.Seconds() / w2Wall.Seconds(),
		"workers4_speedup_x":     baseWall.Seconds() / w4Wall.Seconds(),
		"recovery_wall_ms":       float64(recWall.Nanoseconds()) / 1e6,
		"recovery_overhead_x":    recWall.Seconds() / w2Wall.Seconds(),
		"heartbeats":             float64(w2.Stats.TransportHeartbeats),
		"worker_deaths":          float64(rec.Stats.WorkerDeaths),
		"tasks_reassigned":       float64(rec.Stats.TasksReassigned),
		"partitions_redelivered": float64(rec.Stats.PartitionsRedelivered),
	}, nil
}

func main() {
	// Hand over immediately when this process was re-executed as a
	// clustered join worker by the multiprocess section.
	fsjoin.MaybeWorker()
	out := flag.String("o", "BENCH_PR10.json", "output file")
	benchtime := flag.String("benchtime", "5x", "per-benchmark -benchtime")
	flag.Parse()

	suites := []struct {
		pattern, pkg string
		mem          bool
	}{
		{"BenchmarkShuffleThroughput", "./internal/mapreduce/", true},
		{"BenchmarkKernels", "./internal/fragjoin/", true},
		{"BenchmarkParallelSpeedup|BenchmarkFig7/.*/fs-join", ".", false},
		{"BenchmarkMemoryBudget", "./internal/mapreduce/", false},
	}
	var all []result
	for _, s := range suites {
		fmt.Fprintf(os.Stderr, "benchreport: running %s in %s\n", s.pattern, s.pkg)
		rs, err := runBench(*benchtime, s.pattern, s.pkg, s.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		all = append(all, rs...)
	}

	ns := map[string]float64{}
	allocs := map[string]float64{}
	for _, r := range all {
		ns[r.Name] = r.NsPerOp
		allocs[r.Name] = float64(r.AllocsPerOp)
	}
	derived := map[string]float64{}
	ratio := func(key, num, den string, m map[string]float64) {
		if m[den] != 0 && m[num] != 0 {
			derived[key] = m[num] / m[den]
		}
	}
	ratio("kernel_index_alloc_ratio", "BenchmarkKernels/index/legacy", "BenchmarkKernels/index/new", allocs)
	ratio("kernel_prefix_alloc_ratio", "BenchmarkKernels/prefix/legacy", "BenchmarkKernels/prefix/new", allocs)
	ratio("kernel_index_speedup_x", "BenchmarkKernels/index/legacy", "BenchmarkKernels/index/new", ns)
	ratio("kernel_prefix_speedup_x", "BenchmarkKernels/prefix/legacy", "BenchmarkKernels/prefix/new", ns)
	ratio("kernel_loop_speedup_x", "BenchmarkKernels/loop/legacy", "BenchmarkKernels/loop/new", ns)
	// Bitmap-filter gain: the same kernel with the signature pre-check
	// forced off vs on. > 1 means the filter pays for itself.
	ratio("kernel_index_bitmap_gain_x", "BenchmarkKernels/index/nobitmap", "BenchmarkKernels/index/new", ns)
	ratio("kernel_prefix_bitmap_gain_x", "BenchmarkKernels/prefix/nobitmap", "BenchmarkKernels/prefix/new", ns)
	ratio("kernel_loop_bitmap_gain_x", "BenchmarkKernels/loop/nobitmap", "BenchmarkKernels/loop/new", ns)
	ratio("parallel_speedup_x", "BenchmarkParallelSpeedup/sequential", "BenchmarkParallelSpeedup/parallel", ns)
	// Out-of-core overhead: how much slower the same job runs when the
	// shuffle is forced through sorted runs on disk.
	ratio("spill_64k_slowdown_x", "BenchmarkMemoryBudget/64KiB", "BenchmarkMemoryBudget/unbounded", ns)
	ratio("spill_4k_slowdown_x", "BenchmarkMemoryBudget/4KiB", "BenchmarkMemoryBudget/unbounded", ns)

	fmt.Fprintln(os.Stderr, "benchreport: running in-process filter-effectiveness probes")
	filt, err := filterEffectiveness()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreport: running in-process robustness probes")
	rob, err := robustness()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreport: running in-process serving probes")
	srvStats, err := serving()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreport: racing the r-s join against the brute-force oracle")
	rsStats, err := rsJoin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreport: racing the probe index against per-query pipeline joins")
	probeStats, err := probeServing()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreport: running in-process durability probes")
	durStats, err := durability()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "benchreport: running multi-process worker probes")
	mpStats, err := multiprocess()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	rep := report{
		Generated:           time.Now().UTC().Format(time.RFC3339),
		GoVersion:           runtime.Version(),
		CPUs:                runtime.NumCPU(),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Benchmarks:          all,
		Derived:             derived,
		FilterEffectiveness: sec("memory", filt),
		Robustness:          sec("memory", rob),
		Serving:             sec("memory", srvStats),
		RSJoin:              sec("memory", rsStats),
		ProbeServing:        sec("memory", probeStats),
		Durability:          sec("memory", durStats),
		Multiprocess:        sec("multiprocess", mpStats),
	}
	if rep.CPUs == 1 {
		rep.Note = "single-CPU machine: parallel and sequential runs share one core, " +
			"so parallel_speedup_x degenerates to ~1.0 here; the parallel data path " +
			"scales with GOMAXPROCS on multi-core hosts"
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(all))
}
