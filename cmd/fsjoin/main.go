// Command fsjoin runs a set-similarity self-join or R-S join over text
// files, one record per line, printing the matching line-number pairs and
// their similarity scores.
//
// Usage:
//
//	fsjoin -theta 0.8 [-algo fs|fs-v|ridpairs|vsmart|massjoin|massjoin-light]
//	       [-fn jaccard|dice|cosine] [-q N] [-nodes N] [-stats]
//	       [-bitmap auto|on|off] [-bitmap-width 0|64|128|256]
//	       [-workers N [-work-dir DIR]] [-file-shuffle]
//	       [-checkpoint DIR [-resume]] [-skip-bad-records] [-rs] R.txt [S.txt]
//
// -workers N ≥ 2 executes the join across N supervised worker processes
// (the binary re-executes itself) over the filesystem shuffle transport;
// -file-shuffle routes the shuffle through the same transport within a
// single process. Both are byte-identical to the default in-process run
// (DESIGN.md §15).
//
// With one input file a self-join is performed; with two, an R-S join:
// every output pair matches a line of R.txt (first column) with a line of
// S.txt (second column). All algorithms except the MassJoin baselines
// support R-S mode. -rs makes the intent explicit — it demands exactly two
// inputs, guarding scripts against an accidental self-join. Records are
// word-tokenised (lower-cased, split on non-alphanumerics) or q-gram
// tokenised with -q.
//
// Batch serving mode runs one self-join per input file concurrently
// through a fsjoin.Server sharing one memory pool:
//
//	fsjoin -serve [-serve-mem BYTES] [-serve-jobs N] [-serve-deadline D]
//	       [-serve-timeout D] -theta 0.8 a.txt b.txt c.txt ...
//
// Probe mode answers single-record queries against a persistent index of
// the corpus instead of running a full join per query. With -index-dir the
// index is loaded if a matching one was saved there, otherwise built and
// saved for the next run:
//
//	fsjoin -probe queries.txt [-index-dir DIR] -theta 0.8 corpus.txt
//
// Each output line is "query-line <TAB> corpus-line <TAB> similarity".
// With -index-dir, -wal-sync always|interval|never attaches a write-ahead
// log so acknowledged mutations survive crashes, and -auto-compact N makes
// the index fold its overlay into a fresh snapshot generation once it
// reaches N records (DESIGN.md §14).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"fsjoin"
	"fsjoin/internal/checkpoint"
	"fsjoin/internal/dataset"
	"fsjoin/internal/tokens"
)

func main() {
	// Hand over immediately when this process was spawned as a clustered
	// join worker; everything below is the driver path.
	fsjoin.MaybeWorker()
	var (
		theta  = flag.Float64("theta", 0.8, "similarity threshold in (0,1]")
		algo   = flag.String("algo", "fs", "algorithm: fs, fs-v, ridpairs, vsmart, massjoin, massjoin-light, approx")
		fn     = flag.String("fn", "jaccard", "similarity function: jaccard, dice, cosine")
		qgram  = flag.Int("q", 0, "q-gram length (0 = word tokenisation)")
		tsv    = flag.Bool("tsv", false, "inputs are datagen TSV files (rid<TAB>integer tokens) instead of text")
		nodes  = flag.Int("nodes", 10, "simulated cluster nodes")
		stats  = flag.Bool("stats", false, "print simulated execution statistics")
		budget = flag.Int64("budget", 0, "work budget for vsmart/massjoin (0 = unlimited)")
		par    = flag.Int("par", 0, "local task parallelism (0 = one worker per core, 1 = sequential)")
		ckpt   = flag.String("checkpoint", "", "directory for durable stage checkpoints (enables -resume)")
		resume = flag.Bool("resume", false, "reuse matching checkpoints from -checkpoint instead of starting fresh")
		skip   = flag.Bool("skip-bad-records", false, "quarantine records that deterministically crash a task instead of failing the join")
		maxSk  = flag.Int("max-skipped-records", 0, "abort after this many quarantined records (0 = default limit)")
		bitmap = flag.String("bitmap", "auto", "bitmap signature filter: auto, on, off")
		bmW    = flag.Int("bitmap-width", 0, "bitmap signature width in bits: 0 (auto), 64, 128, 256")
		rs     = flag.Bool("rs", false, "require an R-S join: exactly two input files (implied when two files are given)")

		workers = flag.Int("workers", 0, "execute the join across this many supervised worker processes (0 or 1 = in-process)")
		workDir = flag.String("work-dir", "", "shared work directory for -workers (\"\" = a temporary one)")
		fileSh  = flag.Bool("file-shuffle", false, "route the map→reduce hand-off through the filesystem shuffle transport")

		probe    = flag.String("probe", "", "probe mode: answer each record of this file against a persistent index of the corpus")
		indexDir = flag.String("index-dir", "", "probe mode: load the index from this directory if present, else build and save it there")
		walSync  = flag.String("wal-sync", "", "probe mode: attach a write-ahead log to the index with this fsync policy: always, interval, never (\"\" = no WAL)")
		walIvl   = flag.Duration("wal-sync-interval", 0, "probe mode: group-commit window for -wal-sync interval (0 = 100ms)")
		autoComp = flag.Int("auto-compact", 0, "probe mode: auto-compact the durable index when its overlay reaches this many records (0 = disabled; implies -wal-sync always)")

		serve         = flag.Bool("serve", false, "batch serving mode: one self-join per input file, run concurrently through a fsjoin.Server")
		serveMem      = flag.Int64("serve-mem", 64<<20, "serving: global memory pool in bytes, shared by all jobs")
		serveJobs     = flag.Int("serve-jobs", 0, "serving: max concurrent jobs (0 = one per core)")
		serveQueue    = flag.Int("serve-queue", 0, "serving: admission queue bound (0 = 16, negative = no queue)")
		serveDeadline = flag.Duration("serve-deadline", 0, "serving: per-job execution deadline (0 = none)")
		serveTimeout  = flag.Duration("serve-timeout", 0, "serving: per-job queue-wait bound (0 = wait indefinitely)")
	)
	flag.Parse()
	if flag.NArg() < 1 || (!*serve && flag.NArg() > 2) {
		fmt.Fprintln(os.Stderr, "usage: fsjoin [flags] R.txt [S.txt]   or   fsjoin -serve [flags] FILE...   or   fsjoin -probe Q.txt [-index-dir DIR] [flags] CORPUS.txt")
		flag.Usage()
		os.Exit(2)
	}

	if *resume && *ckpt == "" {
		fatal("-resume requires -checkpoint DIR")
	}
	if *rs && (*serve || flag.NArg() != 2) {
		fatal("-rs requires exactly two input files (got %d) and is incompatible with -serve", flag.NArg())
	}
	if *indexDir != "" && *probe == "" {
		fatal("-index-dir requires -probe")
	}
	if *probe != "" && (*serve || *rs || flag.NArg() != 1) {
		fatal("-probe takes exactly one corpus file and is incompatible with -serve and -rs")
	}
	if (*walSync != "" || *autoComp != 0) && *indexDir == "" {
		fatal("-wal-sync and -auto-compact require -probe with -index-dir")
	}
	opt := fsjoin.Options{Threshold: *theta, Nodes: *nodes, WorkBudget: *budget, LocalParallelism: *par, CheckpointDir: *ckpt,
		Workers: *workers, WorkDir: *workDir, FileShuffle: *fileSh}
	if *workers > 1 && (*serve || *probe != "") {
		fatal("-workers is incompatible with -serve and -probe")
	}
	if *ckpt != "" && !*resume {
		// A fresh (non-resume) run must not reuse checkpoints left over
		// from an earlier invocation with different inputs.
		if st, err := checkpoint.Open(*ckpt); err != nil {
			fatal("%v", err)
		} else if err := st.Clear(); err != nil {
			fatal("%v", err)
		}
	}
	var quarantined []fsjoin.QuarantinedRecord
	if *skip {
		opt.Fault.SkipBadRecords = true
		opt.Fault.MaxSkippedRecords = *maxSk
		opt.Fault.OnQuarantine = func(r fsjoin.QuarantinedRecord) {
			quarantined = append(quarantined, r)
		}
	}
	switch *bitmap {
	case "auto":
		opt.BitmapFilter = fsjoin.BitmapAuto
	case "on":
		opt.BitmapFilter = fsjoin.BitmapOn
	case "off":
		opt.BitmapFilter = fsjoin.BitmapOff
	default:
		fatal("unknown bitmap filter mode %q (want auto, on or off)", *bitmap)
	}
	opt.BitmapWidth = *bmW
	switch *fn {
	case "jaccard":
		opt.Function = fsjoin.Jaccard
	case "dice":
		opt.Function = fsjoin.Dice
	case "cosine":
		opt.Function = fsjoin.Cosine
	default:
		fatal("unknown similarity function %q", *fn)
	}
	switch *algo {
	case "fs":
		opt.Algorithm = fsjoin.FSJoin
	case "fs-v":
		opt.Algorithm = fsjoin.FSJoinV
	case "ridpairs":
		opt.Algorithm = fsjoin.RIDPairsPPJoin
	case "vsmart":
		opt.Algorithm = fsjoin.VSmartJoin
	case "massjoin":
		opt.Algorithm = fsjoin.MassJoinMerge
	case "massjoin-light":
		opt.Algorithm = fsjoin.MassJoinMergeLight
	case "approx":
		opt.Algorithm = fsjoin.ApproxLSHJoin
	default:
		fatal("unknown algorithm %q", *algo)
	}

	var tk tokens.Tokenizer = tokens.WordTokenizer{}
	if *qgram > 0 {
		tk = tokens.QGramTokenizer{Q: *qgram}
	}

	dict := fsjoin.NewDictionary()
	loadSets := func(path string) [][]string {
		if *tsv {
			return readTSVSets(path)
		}
		return readTextSets(path, tk)
	}
	load := func(path string) *fsjoin.Collection {
		return dict.NewCollection(loadSets(path))
	}
	if *probe != "" {
		corpus := func() *fsjoin.Collection { return load(flag.Arg(0)) }
		runProbe(opt, corpus, loadSets(*probe), *indexDir, *stats,
			probeDurability{sync: *walSync, interval: *walIvl, autoCompact: *autoComp})
		return
	}
	if *serve {
		runServe(opt, load, serveConfig{
			mem: *serveMem, jobs: *serveJobs, queue: *serveQueue,
			deadline: *serveDeadline, timeout: *serveTimeout,
			checkpointRoot: *ckpt, stats: *stats,
		})
		return
	}
	r := load(flag.Arg(0))
	isRS := flag.NArg() == 2
	var res *fsjoin.Result
	var err error
	if isRS {
		s := load(flag.Arg(1))
		res, err = r.Join(s, opt)
	} else {
		res, err = r.SelfJoin(opt)
	}
	if err != nil {
		fatal("%v", err)
	}

	for _, p := range res.Pairs {
		fmt.Printf("%d\t%d\t%.4f\n", p.A, p.B, p.Similarity)
	}
	for _, q := range quarantined {
		fmt.Fprintf(os.Stderr, "fsjoin: quarantined record: job=%s phase=%s task=%d err=%s\n",
			q.Job, q.Phase, q.Task, q.Err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "pairs=%d simulated=%.1fs shuffle=%d records (%d bytes) imbalance=%.2f candidates=%d\n",
			len(res.Pairs), res.Stats.SimulatedTime.Seconds(),
			res.Stats.ShuffleRecords, res.Stats.ShuffleBytes,
			res.Stats.LoadImbalance, res.Stats.Candidates)
		fmt.Fprintf(os.Stderr, "bitmap built=%d rejected=%d passed=%d verified-candidates=%d\n",
			res.Stats.BitmapBuilt, res.Stats.BitmapRejected,
			res.Stats.BitmapPassed, res.Stats.VerifiedCandidates)
		if isRS {
			fmt.Fprintf(os.Stderr, "rs candidates=%d pairs=%d\n",
				res.Stats.RSCandidates, res.Stats.RSPairs)
		}
		if *ckpt != "" || *skip {
			fmt.Fprintf(os.Stderr, "checkpoint hits=%d misses=%d skipped-records=%d\n",
				res.Stats.CheckpointHits, res.Stats.CheckpointMisses, res.Stats.RecordsSkipped)
		}
		if *workers > 1 {
			fmt.Fprintf(os.Stderr, "transport workers=%d heartbeats=%d worker-deaths=%d tasks-reassigned=%d partitions-redelivered=%d\n",
				res.Stats.Workers, res.Stats.TransportHeartbeats, res.Stats.WorkerDeaths,
				res.Stats.TasksReassigned, res.Stats.PartitionsRedelivered)
		}
	}
}

// serveConfig carries the serving-mode knobs into runServe.
type serveConfig struct {
	mem            int64
	jobs           int
	queue          int
	deadline       time.Duration
	timeout        time.Duration
	checkpointRoot string
	stats          bool
}

// runServe self-joins every input file concurrently through one Server.
// Jobs share the options and the global memory pool; results print in
// input order, each under a "== path" header, with shed, timed-out and
// failed jobs reported per file instead of aborting the batch.
func runServe(opt fsjoin.Options, load func(string) *fsjoin.Collection, sc serveConfig) {
	// The per-job knobs move to the server; the shared options keep the
	// join semantics only.
	opt.CheckpointDir = ""
	srv, err := fsjoin.NewServer(fsjoin.ServerOptions{
		MemoryBudget:    sc.mem,
		MaxConcurrent:   sc.jobs,
		MaxQueue:        sc.queue,
		DefaultDeadline: sc.deadline,
		QueueTimeout:    sc.timeout,
		CheckpointRoot:  sc.checkpointRoot,
	})
	if err != nil {
		fatal("%v", err)
	}
	defer srv.Shutdown(context.Background())

	paths := flag.Args()
	type outcome struct {
		res *fsjoin.Result
		err error
		d   time.Duration
	}
	outs := make([]outcome, len(paths))
	var wg sync.WaitGroup
	for i, path := range paths {
		coll := load(path) // sequential: the dictionary is shared
		wg.Add(1)
		go func(i int, coll *fsjoin.Collection) {
			defer wg.Done()
			start := time.Now()
			job := fsjoin.Job{Collection: coll, Options: opt}
			if sc.checkpointRoot != "" {
				job.Key = fmt.Sprintf("job-%d", i)
			}
			res, err := srv.Run(context.Background(), job)
			outs[i] = outcome{res, err, time.Since(start)}
		}(i, coll)
	}
	wg.Wait()

	failed := 0
	for i, path := range paths {
		o := outs[i]
		if o.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "fsjoin: %s: %v\n", path, o.err)
			continue
		}
		fmt.Printf("== %s\n", path)
		for _, p := range o.res.Pairs {
			fmt.Printf("%d\t%d\t%.4f\n", p.A, p.B, p.Similarity)
		}
		if sc.stats {
			fmt.Fprintf(os.Stderr, "%s: pairs=%d wall=%s queue-wait=%s lease=%dB\n",
				path, len(o.res.Pairs), o.d.Round(time.Millisecond),
				o.res.Stats.QueueWait.Round(time.Millisecond), o.res.Stats.MemoryLease)
		}
	}
	if sc.stats {
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "server: admitted=%d completed=%d failed=%d shed=%d timed-out=%d peak-queue=%d\n",
			st.Admitted, st.Completed, st.Failed, st.Shed, st.TimedOut, st.PeakQueued)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// probeDurability carries the -wal-sync / -auto-compact flags into probe
// mode.
type probeDurability struct {
	sync        string
	interval    time.Duration
	autoCompact int
}

// enabled reports whether the run should attach a WAL to the index.
func (d probeDurability) enabled() bool { return d.sync != "" || d.autoCompact > 0 }

// options maps the flags onto the public Durability knobs.
func (d probeDurability) options() (fsjoin.Durability, error) {
	out := fsjoin.Durability{
		WALSyncInterval: d.interval,
		AutoCompact:     fsjoin.AutoCompact{MaxLogRecords: d.autoCompact},
	}
	switch d.sync {
	case "", "always":
		out.WALSync = fsjoin.WALSyncAlways
	case "interval":
		out.WALSync = fsjoin.WALSyncInterval
	case "never":
		out.WALSync = fsjoin.WALSyncNever
	default:
		return out, fmt.Errorf("unknown -wal-sync %q (want always, interval or never)", d.sync)
	}
	return out, nil
}

// runProbe serves every query record against a probe index of the corpus
// instead of running a full join per query. With a directory the index is
// loaded when a matching one was saved there — skipping the corpus read
// and the build entirely — and built-and-saved otherwise; a corrupt or
// mismatched save is rebuilt, never trusted. With -wal-sync/-auto-compact
// the index is made durable: a fresh snapshot generation is rolled forward
// and a write-ahead log attached, so a long-lived embedder of the same
// flow survives crashes between compactions.
func runProbe(opt fsjoin.Options, corpus func() *fsjoin.Collection, queries [][]string, dir string, stats bool, dur probeDurability) {
	iopt := fsjoin.IndexOptions{
		Threshold:    opt.Threshold,
		Function:     opt.Function,
		BitmapFilter: opt.BitmapFilter,
		BitmapWidth:  opt.BitmapWidth,
	}
	var ix *fsjoin.Index
	source := "loaded"
	if dir != "" {
		loaded, err := fsjoin.LoadIndex(dir, iopt)
		switch {
		case err == nil:
			ix = loaded
		case errors.Is(err, fsjoin.ErrNoIndex):
			// fall through to a fresh build
		default:
			fatal("%v", err)
		}
	}
	if ix == nil {
		built, err := fsjoin.BuildIndex(corpus(), iopt)
		if err != nil {
			fatal("%v", err)
		}
		ix, source = built, "built"
		if dir != "" && !dur.enabled() {
			if err := ix.Save(dir); err != nil {
				fatal("saving index: %v", err)
			}
			source = "built and saved"
		}
	}
	if dur.enabled() {
		dopt, err := dur.options()
		if err != nil {
			fatal("%v", err)
		}
		if err := ix.Persist(dir, dopt); err != nil {
			fatal("persisting index: %v", err)
		}
		defer func() {
			if err := ix.Close(); err != nil {
				fatal("closing index: %v", err)
			}
		}()
		source += ", durable"
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	matches := 0
	for qi, set := range queries {
		for _, m := range ix.Probe(set) {
			matches++
			fmt.Fprintf(w, "%d\t%d\t%.4f\n", qi, m.RID, m.Similarity)
		}
	}
	if stats {
		st := ix.Stats()
		fmt.Fprintf(os.Stderr, "index (%s): records=%d queries=%d matches=%d\n",
			source, st.Records, len(queries), matches)
		fmt.Fprintf(os.Stderr, "index.probes=%d index.candidates=%d index.hits=%d index.log.size=%d\n",
			st.Probes, st.Candidates, st.Hits, st.LogSize)
		fmt.Fprintf(os.Stderr, "wal.appends=%d wal.synced.bytes=%d wal.replayed=%d wal.truncated.frames=%d\n",
			st.WALAppends, st.WALSyncedBytes, st.WALReplayed, st.WALTruncatedFrames)
		fmt.Fprintf(os.Stderr, "index.compactions=%d index.compactions.auto=%d snapshot.bytes=%d index.generation=%d\n",
			st.Compactions, st.AutoCompactions, st.SnapshotBytes, st.Generation)
		for _, k := range []string{"corrupt", "stale", "invariant", "wal"} {
			if n := fsjoin.IndexLoadRejects()["index.load.rejects."+k]; n > 0 {
				fmt.Fprintf(os.Stderr, "index.load.rejects.%s=%d\n", k, n)
			}
		}
	}
}

// readTextSets reads one record per line from path and tokenises each line.
func readTextSets(path string, tk tokens.Tokenizer) [][]string {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var sets [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		sets = append(sets, tk.Tokenize(sc.Text()))
	}
	if err := sc.Err(); err != nil {
		fatal("reading %s: %v", path, err)
	}
	return sets
}

// readTSVSets reads a datagen-format TSV file; integer tokens become their
// decimal strings so text and TSV inputs can share one dictionary.
func readTSVSets(path string) [][]string {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	c, err := dataset.ReadTSV(f)
	if err != nil {
		fatal("reading %s: %v", path, err)
	}
	sets := make([][]string, 0, c.Len())
	for _, rec := range c.Records {
		set := make([]string, len(rec.Tokens))
		for i, tok := range rec.Tokens {
			set[i] = strconv.FormatUint(uint64(tok), 10)
		}
		sets = append(sets, set)
	}
	return sets
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsjoin: "+format+"\n", args...)
	os.Exit(1)
}
