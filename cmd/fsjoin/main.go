// Command fsjoin runs a set-similarity self-join or R-S join over text
// files, one record per line, printing the matching line-number pairs and
// their similarity scores.
//
// Usage:
//
//	fsjoin -theta 0.8 [-algo fs|fs-v|ridpairs|vsmart|massjoin|massjoin-light]
//	       [-fn jaccard|dice|cosine] [-q N] [-nodes N] [-stats]
//	       [-checkpoint DIR [-resume]] [-skip-bad-records] R.txt [S.txt]
//
// With one input file a self-join is performed; with two, an R-S join
// (FS-Join only). Records are word-tokenised (lower-cased, split on
// non-alphanumerics) or q-gram tokenised with -q.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"fsjoin"
	"fsjoin/internal/checkpoint"
	"fsjoin/internal/dataset"
	"fsjoin/internal/tokens"
)

func main() {
	var (
		theta  = flag.Float64("theta", 0.8, "similarity threshold in (0,1]")
		algo   = flag.String("algo", "fs", "algorithm: fs, fs-v, ridpairs, vsmart, massjoin, massjoin-light, approx")
		fn     = flag.String("fn", "jaccard", "similarity function: jaccard, dice, cosine")
		qgram  = flag.Int("q", 0, "q-gram length (0 = word tokenisation)")
		tsv    = flag.Bool("tsv", false, "inputs are datagen TSV files (rid<TAB>integer tokens) instead of text")
		nodes  = flag.Int("nodes", 10, "simulated cluster nodes")
		stats  = flag.Bool("stats", false, "print simulated execution statistics")
		budget = flag.Int64("budget", 0, "work budget for vsmart/massjoin (0 = unlimited)")
		par    = flag.Int("par", 0, "local task parallelism (0 = one worker per core, 1 = sequential)")
		ckpt   = flag.String("checkpoint", "", "directory for durable stage checkpoints (enables -resume)")
		resume = flag.Bool("resume", false, "reuse matching checkpoints from -checkpoint instead of starting fresh")
		skip   = flag.Bool("skip-bad-records", false, "quarantine records that deterministically crash a task instead of failing the join")
		maxSk  = flag.Int("max-skipped-records", 0, "abort after this many quarantined records (0 = default limit)")
	)
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: fsjoin [flags] R.txt [S.txt]")
		flag.Usage()
		os.Exit(2)
	}

	if *resume && *ckpt == "" {
		fatal("-resume requires -checkpoint DIR")
	}
	opt := fsjoin.Options{Threshold: *theta, Nodes: *nodes, WorkBudget: *budget, LocalParallelism: *par, CheckpointDir: *ckpt}
	if *ckpt != "" && !*resume {
		// A fresh (non-resume) run must not reuse checkpoints left over
		// from an earlier invocation with different inputs.
		if st, err := checkpoint.Open(*ckpt); err != nil {
			fatal("%v", err)
		} else if err := st.Clear(); err != nil {
			fatal("%v", err)
		}
	}
	var quarantined []fsjoin.QuarantinedRecord
	if *skip {
		opt.Fault.SkipBadRecords = true
		opt.Fault.MaxSkippedRecords = *maxSk
		opt.Fault.OnQuarantine = func(r fsjoin.QuarantinedRecord) {
			quarantined = append(quarantined, r)
		}
	}
	switch *fn {
	case "jaccard":
		opt.Function = fsjoin.Jaccard
	case "dice":
		opt.Function = fsjoin.Dice
	case "cosine":
		opt.Function = fsjoin.Cosine
	default:
		fatal("unknown similarity function %q", *fn)
	}
	switch *algo {
	case "fs":
		opt.Algorithm = fsjoin.FSJoin
	case "fs-v":
		opt.Algorithm = fsjoin.FSJoinV
	case "ridpairs":
		opt.Algorithm = fsjoin.RIDPairsPPJoin
	case "vsmart":
		opt.Algorithm = fsjoin.VSmartJoin
	case "massjoin":
		opt.Algorithm = fsjoin.MassJoinMerge
	case "massjoin-light":
		opt.Algorithm = fsjoin.MassJoinMergeLight
	case "approx":
		opt.Algorithm = fsjoin.ApproxLSHJoin
	default:
		fatal("unknown algorithm %q", *algo)
	}

	var tk tokens.Tokenizer = tokens.WordTokenizer{}
	if *qgram > 0 {
		tk = tokens.QGramTokenizer{Q: *qgram}
	}

	dict := fsjoin.NewDictionary()
	load := func(path string) *fsjoin.Collection {
		if *tsv {
			return loadTSV(path, dict)
		}
		return loadCollection(path, tk, dict)
	}
	r := load(flag.Arg(0))
	var res *fsjoin.Result
	var err error
	if flag.NArg() == 2 {
		s := load(flag.Arg(1))
		res, err = r.Join(s, opt)
	} else {
		res, err = r.SelfJoin(opt)
	}
	if err != nil {
		fatal("%v", err)
	}

	for _, p := range res.Pairs {
		fmt.Printf("%d\t%d\t%.4f\n", p.A, p.B, p.Similarity)
	}
	for _, q := range quarantined {
		fmt.Fprintf(os.Stderr, "fsjoin: quarantined record: job=%s phase=%s task=%d err=%s\n",
			q.Job, q.Phase, q.Task, q.Err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "pairs=%d simulated=%.1fs shuffle=%d records (%d bytes) imbalance=%.2f candidates=%d\n",
			len(res.Pairs), res.Stats.SimulatedTime.Seconds(),
			res.Stats.ShuffleRecords, res.Stats.ShuffleBytes,
			res.Stats.LoadImbalance, res.Stats.Candidates)
		if *ckpt != "" || *skip {
			fmt.Fprintf(os.Stderr, "checkpoint hits=%d misses=%d skipped-records=%d\n",
				res.Stats.CheckpointHits, res.Stats.CheckpointMisses, res.Stats.RecordsSkipped)
		}
	}
}

// loadCollection reads one record per line from path, tokenises each line
// and encodes the result against the shared dictionary.
func loadCollection(path string, tk tokens.Tokenizer, dict *fsjoin.Dictionary) *fsjoin.Collection {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var sets [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		sets = append(sets, tk.Tokenize(sc.Text()))
	}
	if err := sc.Err(); err != nil {
		fatal("reading %s: %v", path, err)
	}
	return dict.NewCollection(sets)
}

// loadTSV reads a datagen-format TSV file; integer tokens are re-encoded
// through the shared dictionary so text and TSV inputs can coexist.
func loadTSV(path string, dict *fsjoin.Dictionary) *fsjoin.Collection {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	c, err := dataset.ReadTSV(f)
	if err != nil {
		fatal("reading %s: %v", path, err)
	}
	sets := make([][]string, 0, c.Len())
	for _, rec := range c.Records {
		set := make([]string, len(rec.Tokens))
		for i, tok := range rec.Tokens {
			set[i] = strconv.FormatUint(uint64(tok), 10)
		}
		sets = append(sets, set)
	}
	return dict.NewCollection(sets)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsjoin: "+format+"\n", args...)
	os.Exit(1)
}
