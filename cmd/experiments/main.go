// Command experiments regenerates the paper's evaluation tables and
// figures (Section VI) on the synthetic datasets.
//
// Usage:
//
//	experiments [-exp all|table1|table3|table4|fig6..fig13|cost] [-scale F] [-seed N] [-budget N]
//
// Output is a series of aligned text tables, one per figure/table, printing
// the same rows/series the paper reports (simulated cluster seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fsjoin/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (all, table1, table3, table4, fig6..fig13, cost); comma-separated list allowed")
		scale  = flag.Float64("scale", 1.0, "dataset scale multiplier (smaller = faster)")
		seed   = flag.Int64("seed", 1, "random seed for dataset generation")
		budget = flag.Int64("budget", 3_000_000, "intermediate-record budget for V-Smart-Join/MassJoin (0 = unlimited)")
	)
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Out: os.Stdout, Budget: *budget}
	r := experiments.NewRunner(cfg)
	if *list {
		for _, name := range r.Names() {
			fmt.Println(name)
		}
		return
	}

	start := time.Now()
	var err error
	if *exp == "all" {
		err = r.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if err = r.Run(strings.TrimSpace(name)); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %.1fs (wall)\n", time.Since(start).Seconds())
}
