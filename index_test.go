package fsjoin

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fsjoin/internal/bruteforce"
)

// formatMatches renders probe hits for one query in the golden fixture's
// line format; scores print with full round-trip precision, so comparisons
// are bit-equality of the float.
func formatMatches(q int, ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = fmt.Sprintf("%d %d %d %s", q, m.RID, m.Common, formatSim(m.Similarity))
	}
	return out
}

// pairsInvolving restricts a self-join result to the rows mentioning rid,
// reshaped as the probe answer for that record.
func pairsInvolving(pairs []Pair, rid int) []Match {
	var out []Match
	for _, p := range pairs {
		switch rid {
		case p.A:
			out = append(out, Match{RID: p.B, Common: p.Common, Similarity: p.Similarity})
		case p.B:
			out = append(out, Match{RID: p.A, Common: p.Common, Similarity: p.Similarity})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RID < out[j].RID })
	return out
}

// assertSameMatches compares probe output to a reference bit-for-bit.
func assertSameMatches(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestIndexProbeMatchesSelfJoin is the tentpole differential: for every
// record, ProbeRecord must reproduce the full batch self-join restricted to
// that record — same partners, same counts, bit-identical scores — across
// all three similarity functions, several thresholds, and both bitmap
// modes.
func TestIndexProbeMatchesSelfJoin(t *testing.T) {
	texts := corpus(70, 5)
	d := NewDictionary()
	coll := d.NewTextCollection(texts)
	for _, fn := range []Similarity{Jaccard, Dice, Cosine} {
		for _, theta := range []float64{0.6, 0.8, 0.95} {
			for _, bm := range []BitmapFilterMode{BitmapOn, BitmapOff} {
				label := fmt.Sprintf("fn=%d theta=%v bitmap=%v", fn, theta, bm)
				ix, err := BuildIndex(coll, IndexOptions{
					Threshold: theta, Function: fn, BitmapFilter: bm,
				})
				if err != nil {
					t.Fatal(err)
				}
				full, err := coll.SelfJoin(Options{
					Threshold: theta, Function: fn, BitmapFilter: bm, LocalParallelism: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				for rid := range texts {
					got, err := ix.ProbeRecord(rid)
					if err != nil {
						t.Fatal(err)
					}
					assertSameMatches(t, fmt.Sprintf("%s rid=%d", label, rid),
						got, pairsInvolving(full.Pairs, rid))
				}
			}
		}
	}
}

// TestIndexProbeMatchesRSJoin: probing external queries must reproduce the
// R-S join of the query relation against the corpus, row by row.
func TestIndexProbeMatchesRSJoin(t *testing.T) {
	texts := corpus(60, 6)
	queries := corpus(25, 7)
	d := NewDictionary()
	coll := d.NewTextCollection(texts)
	qc := d.NewTextCollection(queries)
	for _, fn := range []Similarity{Jaccard, Dice, Cosine} {
		for _, theta := range []float64{0.6, 0.85} {
			ix, err := BuildIndex(coll, IndexOptions{Threshold: theta, Function: fn})
			if err != nil {
				t.Fatal(err)
			}
			full, err := qc.Join(coll, Options{Threshold: theta, Function: fn, LocalParallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := map[int][]Match{}
			for _, p := range full.Pairs {
				want[p.A] = append(want[p.A], Match{RID: p.B, Common: p.Common, Similarity: p.Similarity})
			}
			sets := make([][]string, len(queries))
			for i, q := range queries {
				sets[i] = strings.Fields(q)
			}
			for qi, got := range ix.ProbeBatch(sets) {
				assertSameMatches(t, fmt.Sprintf("fn=%d theta=%v q=%d", fn, theta, qi),
					got, want[qi])
			}
		}
	}
}

// TestIndexMutationsMatchOracle drives insert/delete/compact sequences and
// re-checks every probe against the brute-force oracle over the evolving
// corpus.
func TestIndexMutationsMatchOracle(t *testing.T) {
	const theta = 0.7
	texts := corpus(50, 8)
	d := NewDictionary()
	coll := d.NewTextCollection(texts)
	ix, err := BuildIndex(coll, IndexOptions{Threshold: theta})
	if err != nil {
		t.Fatal(err)
	}
	liveTexts := map[int]string{}
	for i, tx := range texts {
		liveTexts[i] = tx
	}
	check := func(step string) {
		t.Helper()
		// Oracle: rebuild a collection of the live texts and self-join it.
		rids := make([]int, 0, len(liveTexts))
		for rid := range liveTexts {
			rids = append(rids, rid)
		}
		sort.Ints(rids)
		cur := make([]string, len(rids))
		for i, rid := range rids {
			cur[i] = liveTexts[rid]
		}
		od := NewDictionary()
		oc := od.NewTextCollection(cur)
		fn, _ := Jaccard.internal()
		oracle := bruteforce.SelfJoin(oc.t, fn, theta)
		want := map[int][]Match{}
		for _, p := range oracle {
			a, b := rids[p.A], rids[p.B]
			want[a] = append(want[a], Match{RID: b, Common: p.Common, Similarity: p.Sim})
			want[b] = append(want[b], Match{RID: a, Common: p.Common, Similarity: p.Sim})
		}
		for _, rid := range rids {
			got, err := ix.ProbeRecord(rid)
			if err != nil {
				t.Fatalf("%s: rid %d: %v", step, rid, err)
			}
			w := want[rid]
			sort.Slice(w, func(i, j int) bool { return w[i].RID < w[j].RID })
			assertSameMatches(t, fmt.Sprintf("%s rid=%d", step, rid), got, w)
		}
	}
	check("initial")
	extra := corpus(12, 9)
	for i, tx := range extra {
		rid, err := ix.Insert(strings.Fields(tx))
		if err != nil {
			t.Fatal(err)
		}
		liveTexts[rid] = tx
		if i%3 == 0 {
			victim := i * 4 % len(texts)
			if _, ok := liveTexts[victim]; ok {
				if err := ix.Delete(victim); err != nil {
					t.Fatal(err)
				}
				delete(liveTexts, victim)
			}
		}
	}
	check("after inserts and deletes")
	if ix.Stats().LogSize == 0 {
		t.Fatal("mutations left no overlay to compact")
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().LogSize; got != 0 {
		t.Fatalf("LogSize %d after Compact", got)
	}
	check("after compact")
}

// TestIndexSaveCorruptLoad proves rebuild-never-trust end to end: a saved
// index with a damaged SHA-256 trailer must fail to load with ErrNoIndex,
// and the rebuilt-and-resaved index must serve identical answers.
func TestIndexSaveCorruptLoad(t *testing.T) {
	dir := t.TempDir()
	texts := corpus(40, 10)
	d := NewDictionary()
	coll := d.NewTextCollection(texts)
	opt := IndexOptions{Threshold: 0.7}
	ix, err := BuildIndex(coll, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(dir, opt); err != nil {
		t.Fatalf("clean load failed: %v", err)
	}
	// Damage the checksum trailer specifically.
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files: %v %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(files[0], raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(dir, opt); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("corrupt load: err=%v, want ErrNoIndex", err)
	}
	// A mismatched configuration is also ErrNoIndex, never a wrong answer.
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	other := opt
	other.Threshold = 0.9
	if _, err := LoadIndex(dir, other); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("stale load: err=%v, want ErrNoIndex", err)
	}
	// Rebuild, save, reload: bit-identical serving.
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadIndex(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for rid := range texts {
		got, err := ld.ProbeRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.ProbeRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, fmt.Sprintf("reload rid=%d", rid), got, want)
	}
}

func TestIndexOptionValidation(t *testing.T) {
	coll := NewDictionary().NewTextCollection(corpus(5, 1))
	if _, err := BuildIndex(coll, IndexOptions{Threshold: 0}); err == nil {
		t.Error("Threshold 0 accepted")
	}
	if _, err := BuildIndex(coll, IndexOptions{Threshold: 0.5, Function: Similarity(7)}); err == nil {
		t.Error("bogus Function accepted")
	}
	if _, err := BuildIndex(coll, IndexOptions{Threshold: 0.5, BitmapWidth: 3}); err == nil {
		t.Error("bogus BitmapWidth accepted")
	}
	if _, err := BuildIndex(nil, IndexOptions{Threshold: 0.5}); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := LoadIndex(t.TempDir(), IndexOptions{Threshold: 0.5}); !errors.Is(err, ErrNoIndex) {
		t.Error("empty dir load did not report ErrNoIndex")
	}
}

// The probe golden fixture pins the exact serving output of the committed
// query relation probed against the committed corpus, at the same θ as the
// batch fixtures. Regenerate with:
//
//	go test -run TestGoldenProbe -update-golden .
const goldenProbeResults = "testdata/golden/probe_results.txt"

// writeGoldenProbe regenerates probe_results.txt from a fresh index over
// the committed corpus, cross-checking every row against the full R-S
// pipeline before anything is written.
func writeGoldenProbe(t *testing.T) {
	t.Helper()
	queries, corpusTexts, _ := loadGoldenRS(t)
	lines := goldenProbeLines(t, queries, corpusTexts)
	var sb strings.Builder
	fmt.Fprintf(&sb, "# probe-index golden results: theta=%v, word tokens, one \"Q RID Common Sim\" per line\n", goldenTheta)
	for _, line := range lines {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(goldenProbeResults, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// goldenProbeLines probes every query and enforces probe ≡ pipeline row
// agreement before returning the formatted lines.
func goldenProbeLines(t *testing.T, queries, corpusTexts []string) []string {
	t.Helper()
	d := NewDictionary()
	coll := d.NewTextCollection(corpusTexts)
	ix, err := BuildIndex(coll, IndexOptions{Threshold: goldenTheta})
	if err != nil {
		t.Fatal(err)
	}
	qc := d.NewTextCollection(queries)
	full, err := qc.Join(coll, Options{Threshold: goldenTheta, LocalParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]Match{}
	for _, p := range full.Pairs {
		want[p.A] = append(want[p.A], Match{RID: p.B, Common: p.Common, Similarity: p.Similarity})
	}
	var lines []string
	hits := 0
	for qi, q := range queries {
		got := ix.Probe(strings.Fields(q))
		assertSameMatches(t, fmt.Sprintf("probe≡pipeline q=%d", qi), got, want[qi])
		lines = append(lines, formatMatches(qi, got)...)
		hits += len(got)
	}
	if hits < 8 {
		t.Fatalf("probes found only %d hits — fixture too sparse to pin anything", hits)
	}
	return lines
}

// TestGoldenProbe compares current probe output — direct, and through a
// save/load round-trip — against the committed fixture, line by line.
func TestGoldenProbe(t *testing.T) {
	queries, corpusTexts, _ := loadGoldenRS(t)
	if *updateGolden {
		writeGoldenProbe(t)
	}
	raw, err := os.ReadFile(goldenProbeResults)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	var want []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			want = append(want, line)
		}
	}
	got := goldenProbeLines(t, queries, corpusTexts)
	diffPairs(t, "probe golden", got, want)

	// The same answers must survive persistence.
	dir := t.TempDir()
	d := NewDictionary()
	coll := d.NewTextCollection(corpusTexts)
	ix, err := BuildIndex(coll, IndexOptions{Threshold: goldenTheta})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadIndex(dir, IndexOptions{Threshold: goldenTheta})
	if err != nil {
		t.Fatal(err)
	}
	var reload []string
	for qi, q := range queries {
		reload = append(reload, formatMatches(qi, ld.Probe(strings.Fields(q)))...)
	}
	diffPairs(t, "probe golden after save/load", reload, want)
}
