package fsjoin

import (
	"reflect"
	"testing"
)

// TestParallelSequentialEquivalence asserts that sequential execution
// (LocalParallelism = 1) and parallel execution (auto and a fixed pool)
// produce byte-identical pairs and deterministic statistics for FS-Join and
// all three baselines on a seeded dataset. SimulatedTime is wall-clock
// derived and intentionally excluded. Run under -race this also exercises
// the engine's concurrent shuffle and reduce paths end to end.
func TestParallelSequentialEquivalence(t *testing.T) {
	texts := corpus(120, 42)
	algos := []Algorithm{FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, MassJoinMerge, MassJoinMergeLight}
	type detStats struct {
		ShuffleRecords, ShuffleBytes, Candidates int64
		LoadImbalance                            float64
	}
	det := func(s Stats) detStats {
		return detStats{
			ShuffleRecords: s.ShuffleRecords, ShuffleBytes: s.ShuffleBytes,
			Candidates: s.Candidates, LoadImbalance: s.LoadImbalance,
		}
	}
	for _, algo := range algos {
		opts := Options{Threshold: 0.7, Algorithm: algo, Nodes: 3, LocalParallelism: 1}
		want, err := SelfJoinStrings(texts, opts)
		if err != nil {
			t.Fatalf("%v sequential: %v", algo, err)
		}
		for _, par := range []int{0, 4} { // 0 = one worker per core
			opts.LocalParallelism = par
			got, err := SelfJoinStrings(texts, opts)
			if err != nil {
				t.Fatalf("%v parallelism %d: %v", algo, par, err)
			}
			if !reflect.DeepEqual(got.Pairs, want.Pairs) {
				t.Fatalf("%v parallelism %d: pairs differ (%d vs %d)",
					algo, par, len(got.Pairs), len(want.Pairs))
			}
			if g, w := det(got.Stats), det(want.Stats); g != w {
				t.Fatalf("%v parallelism %d: stats differ\n got %+v\nwant %+v", algo, par, g, w)
			}
		}
	}
}
