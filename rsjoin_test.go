package fsjoin

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/result"
)

// rsExactConfigs is every exact algorithm × kernel combination that
// supports R-S joins; ApproxLSHJoin is tested separately (precision-only).
var rsExactConfigs = []struct {
	label string
	opt   Options
}{
	{"fs-join/prefix", Options{Algorithm: FSJoin, JoinMethod: PrefixJoin}},
	{"fs-join/index", Options{Algorithm: FSJoin, JoinMethod: IndexJoin}},
	{"fs-join/loop", Options{Algorithm: FSJoin, JoinMethod: LoopJoin}},
	{"fs-join-v", Options{Algorithm: FSJoinV}},
	{"ridpairs-ppjoin", Options{Algorithm: RIDPairsPPJoin}},
	{"v-smart-join", Options{Algorithm: VSmartJoin}},
}

// formatInternalPairs renders internal oracle pairs in the same exact
// format as formatPairs, so R-S runs are compared to the brute-force
// reference bit-for-bit (including the float similarity).
func formatInternalPairs(pairs []result.Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = fmt.Sprintf("%d %d %d %s", p.A, p.B, p.Common, formatSim(p.Sim))
	}
	return out
}

// genRSRelations derives a random R-S join instance from rng: relation
// sizes 0–9 (empty relations included), per-record empty sets, duplicate
// records copied within and across relations, tokens drawn with
// replacement (duplicate tokens within a set), and — for a quarter of the
// instances — disjoint R and S vocabularies.
func genRSRelations(rng *rand.Rand) (r, s [][]string) {
	shared := rng.Intn(4) != 0
	gen := func(n int, prefix string, other [][]string) [][]string {
		out := make([][]string, 0, n)
		for i := 0; i < n; i++ {
			pool := out
			if shared {
				pool = append(append([][]string{}, other...), out...)
			}
			switch {
			case rng.Intn(8) == 0:
				out = append(out, nil) // empty set
			case len(pool) > 0 && rng.Intn(4) == 0:
				out = append(out, pool[rng.Intn(len(pool))]) // duplicate record
			default:
				set := make([]string, rng.Intn(7)+1)
				for j := range set {
					set[j] = fmt.Sprintf("%s%d", prefix, rng.Intn(18))
				}
				out = append(out, set)
			}
		}
		return out
	}
	rp, sp := "w", "w"
	if !shared {
		rp, sp = "r", "s"
	}
	r = gen(rng.Intn(10), rp, nil)
	s = gen(rng.Intn(10), sp, r)
	return r, s
}

// TestRSJoinDifferentialOracle is the R-S acceptance property: for random
// instances (random relation sizes, vocabularies, duplicates, empties),
// random similarity function and random threshold, every exact algorithm
// must reproduce the brute-force cross-join bit-for-bit, and the approx
// join must report only oracle pairs. Overlapping rid spaces are exercised
// by construction — both relations number their records from zero.
func TestRSJoinDifferentialOracle(t *testing.T) {
	thetas := []float64{0.3, 0.5, 0.7, 0.85, 1.0}
	fns := []Similarity{Jaccard, Dice, Cosine}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rSets, sSets := genRSRelations(rng)
		fnPub := fns[rng.Intn(len(fns))]
		theta := thetas[rng.Intn(len(thetas))]
		d := NewDictionary()
		rc, sc := d.NewCollection(rSets), d.NewCollection(sSets)
		fn, err := fnPub.internal()
		if err != nil {
			t.Fatal(err)
		}
		want := formatInternalPairs(bruteforce.Join(rc.t, sc.t, fn, theta))
		for _, cfg := range rsExactConfigs {
			opt := cfg.opt
			opt.Threshold = theta
			opt.Function = fnPub
			opt.Nodes = 2
			opt.LocalParallelism = 1
			res, err := rc.Join(sc, opt)
			if err != nil {
				t.Errorf("seed %d %s (fn %v θ %v): %v", seed, cfg.label, fnPub, theta, err)
				return false
			}
			got := formatPairs(res.Pairs)
			if len(got) != len(want) {
				t.Errorf("seed %d %s (fn %v θ %v): %d pairs, oracle has %d\n got %v\nwant %v",
					seed, cfg.label, fnPub, theta, len(got), len(want), got, want)
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("seed %d %s (fn %v θ %v): pair %d = %q, oracle %q",
						seed, cfg.label, fnPub, theta, i, got[i], want[i])
					return false
				}
			}
			// The rs.pairs.* counters must cover the result: every emitted
			// pair was counted (ridpairs counts pre-dedup, so ≥), and
			// emission never exceeds candidacy.
			if res.Stats.RSPairs < int64(len(res.Pairs)) || res.Stats.RSCandidates < res.Stats.RSPairs {
				t.Errorf("seed %d %s: rs counters inconsistent: candidates=%d emitted=%d pairs=%d",
					seed, cfg.label, res.Stats.RSCandidates, res.Stats.RSPairs, len(res.Pairs))
				return false
			}
		}
		if fnPub == Jaccard {
			res, err := rc.Join(sc, Options{
				Threshold: theta, Algorithm: ApproxLSHJoin, Nodes: 2,
				LocalParallelism: 1, Seed: seed,
			})
			if err != nil {
				t.Errorf("seed %d approx (θ %v): %v", seed, theta, err)
				return false
			}
			oracle := make(map[string]bool, len(want))
			for _, line := range want {
				oracle[line] = true
			}
			for _, line := range formatPairs(res.Pairs) {
				if !oracle[line] {
					t.Errorf("seed %d approx (θ %v): false positive %q", seed, theta, line)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRSJoinSelfEquivalence pins the documented RSJoin(R, R) semantics
// (DESIGN.md §12) against SelfJoin: joining a relation with itself must
// yield exactly the self-join pairs in both orientations plus the (i, i)
// diagonal for every non-empty record, with bit-identical similarities —
// for every algorithm × kernel at parallelism 1 and 4. ApproxLSHJoin with
// a fixed Seed hashes both sides identically, so the equivalence holds for
// it too (relative to its own self-join candidates).
func TestRSJoinSelfEquivalence(t *testing.T) {
	texts := corpus(40, 5)
	configs := append(append([]struct {
		label string
		opt   Options
	}{}, rsExactConfigs...), struct {
		label string
		opt   Options
	}{"approx-lsh", Options{Algorithm: ApproxLSHJoin, Seed: 99}})
	for _, cfg := range configs {
		for _, par := range []int{1, 4} {
			opt := cfg.opt
			opt.Threshold = 0.7
			opt.Nodes = 3
			opt.LocalParallelism = par
			label := fmt.Sprintf("%s par %d", cfg.label, par)

			self, err := SelfJoinStrings(texts, opt)
			if err != nil {
				t.Fatalf("%s: self-join: %v", label, err)
			}
			if len(self.Pairs) == 0 {
				t.Fatalf("%s: self-join found nothing — corpus too sparse", label)
			}
			d := NewDictionary()
			r := d.NewTextCollection(texts)
			s := d.NewTextCollection(texts)
			rs, err := RSJoin(r, s, opt)
			if err != nil {
				t.Fatalf("%s: rs join: %v", label, err)
			}

			fn, err := opt.Function.internal()
			if err != nil {
				t.Fatal(err)
			}
			var want []Pair
			for _, rec := range r.t.Records {
				if l := len(rec.Tokens); l > 0 {
					want = append(want, Pair{A: int(rec.RID), B: int(rec.RID), Common: l, Similarity: fn.Sim(l, l, l)})
				}
			}
			for _, p := range self.Pairs {
				want = append(want, p, Pair{A: p.B, B: p.A, Common: p.Common, Similarity: p.Similarity})
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].A != want[j].A {
					return want[i].A < want[j].A
				}
				return want[i].B < want[j].B
			})
			diffPairs(t, label, formatPairs(rs.Pairs), formatPairs(want))
			if rs.Stats.RSPairs < int64(len(rs.Pairs)) {
				t.Fatalf("%s: Stats.RSPairs = %d for %d pairs", label, rs.Stats.RSPairs, len(rs.Pairs))
			}
			if self.Stats.RSPairs != 0 || self.Stats.RSCandidates != 0 {
				t.Fatalf("%s: self-join reported rs counters: %+v", label, self.Stats)
			}
		}
	}
}

// TestRSJoinEmptyRelations: an empty relation on either (or both) sides is
// a valid instance with an empty result, for every algorithm.
func TestRSJoinEmptyRelations(t *testing.T) {
	d := NewDictionary()
	full := d.NewCollection([][]string{{"a", "b"}, {"c"}})
	empty := d.NewCollection(nil)
	cases := []struct {
		name string
		r, s *Collection
	}{
		{"emptyS", full, empty},
		{"emptyR", empty, full},
		{"emptyBoth", empty, empty},
	}
	for _, cfg := range rsExactConfigs {
		for _, c := range cases {
			res, err := c.r.Join(c.s, Options{Threshold: 0.5, Algorithm: cfg.opt.Algorithm,
				JoinMethod: cfg.opt.JoinMethod, Nodes: 2})
			if err != nil {
				t.Fatalf("%s %s: %v", cfg.label, c.name, err)
			}
			if len(res.Pairs) != 0 {
				t.Fatalf("%s %s: pairs from empty relation: %v", cfg.label, c.name, res.Pairs)
			}
		}
	}
	for _, c := range cases {
		res, err := c.r.Join(c.s, Options{Threshold: 0.5, Algorithm: ApproxLSHJoin, Nodes: 2})
		if err != nil {
			t.Fatalf("approx %s: %v", c.name, err)
		}
		if len(res.Pairs) != 0 {
			t.Fatalf("approx %s: pairs from empty relation: %v", c.name, res.Pairs)
		}
	}
}

// TestRSJoinSpillEquivalence forces every R-S-capable algorithm through
// the out-of-core shuffle (a memory budget small enough to provably
// spill) and demands pairs identical to the unbounded run. This pins the
// R-S spill wire formats — origin-tagged postings, signatures and tagged
// records round-trip through the spill codecs, not just through memory —
// and every spill directory must drain to empty.
func TestRSJoinSpillEquivalence(t *testing.T) {
	texts := corpus(160, 7)
	configs := append(append([]struct {
		label string
		opt   Options
	}{}, rsExactConfigs...), struct {
		label string
		opt   Options
	}{"approx-lsh", Options{Algorithm: ApproxLSHJoin, Seed: 99}})
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.label, func(t *testing.T) {
			opt := cfg.opt
			opt.Threshold = 0.7
			opt.Nodes = 3
			opt.LocalParallelism = 4
			want, err := runMatrixJoin(texts, opt, true)
			if err != nil {
				t.Fatalf("unbounded run: %v", err)
			}
			if len(want.Pairs) == 0 {
				t.Fatal("unbounded run found no pairs — corpus too sparse to prove anything")
			}
			dir := t.TempDir()
			opt.MemoryBudget = 1 << 10
			opt.SpillDir = dir
			got, err := runMatrixJoin(texts, opt, true)
			if err != nil {
				t.Fatalf("budgeted run: %v", err)
			}
			if got.Stats.SpillRuns < 2 {
				t.Fatalf("budgeted run spilled only %d runs — budget not binding", got.Stats.SpillRuns)
			}
			if !reflect.DeepEqual(got.Pairs, want.Pairs) {
				t.Fatalf("budgeted pairs differ (%d vs %d)", len(got.Pairs), len(want.Pairs))
			}
			if got.Stats.RSPairs != want.Stats.RSPairs || got.Stats.RSCandidates != want.Stats.RSCandidates {
				t.Fatalf("rs counters drifted: (%d,%d) vs (%d,%d)",
					got.Stats.RSCandidates, got.Stats.RSPairs,
					want.Stats.RSCandidates, want.Stats.RSPairs)
			}
			waitNoSpillFiles(t, cfg.label, dir)
		})
	}
}

// TestRSJoinQuarantineKeysDistinguishRelations: with overlapping rid
// spaces, skip-mode quarantine reports must still identify which relation
// a poisoned record came from. Draining every record of the filtering
// stage must produce one report per record whose key decodes to a unique
// (origin, rid) — R#i and S#i never alias (the OriginKey encoding).
func TestRSJoinQuarantineKeysDistinguishRelations(t *testing.T) {
	const n = 12
	texts := corpus(2*n, 13)
	dict := NewDictionary()
	r := dict.NewTextCollection(texts[:n])
	s := dict.NewTextCollection(texts[n:])

	var quarantined []QuarantinedRecord
	opt := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	opt.Fault.injector = recordPoisoner{job: "filtering", allTasks: true}
	opt.Fault.MaxAttempts = 2
	opt.Fault.SkipBadRecords = true
	opt.Fault.MaxSkippedRecords = 1000
	opt.Fault.OnQuarantine = func(q QuarantinedRecord) { quarantined = append(quarantined, q) }
	res, err := r.Join(s, opt)
	if err != nil {
		t.Fatalf("poisoned rs join with skip enabled: %v", err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("every input record quarantined, yet %d pairs emitted", len(res.Pairs))
	}
	if len(quarantined) != 2*n {
		t.Fatalf("%d records quarantined, want all %d", len(quarantined), 2*n)
	}
	seen := map[[2]uint32]bool{}
	var origins [2]int
	for _, q := range quarantined {
		origin, rid := mapreduce.DecodeOriginKey(q.Key)
		if origin > 1 || rid >= n {
			t.Fatalf("quarantine key %q decoded to origin %d rid %d", q.Key, origin, rid)
		}
		id := [2]uint32{uint32(origin), rid}
		if seen[id] {
			t.Fatalf("duplicate quarantine identity origin %d rid %d", origin, rid)
		}
		seen[id] = true
		origins[origin]++
	}
	if origins[0] != n || origins[1] != n {
		t.Fatalf("quarantine origins R=%d S=%d, want %d each", origins[0], origins[1], n)
	}
}

// --- Golden R-S fixture ---------------------------------------------------
//
// The committed R-S fixture joins a query relation (rs_queries.txt) against
// the self-join corpus (texts.txt) and pins the exact oriented pair set in
// rs_pairs.txt. Regenerate with:
//
//	go test -run TestGoldenRS -update-golden .

const (
	goldenRSQueries = "testdata/golden/rs_queries.txt"
	goldenRSPairs   = "testdata/golden/rs_pairs.txt"
)

func loadGoldenRS(t *testing.T) (queries, corpus, pairs []string) {
	t.Helper()
	if *updateGolden {
		writeGoldenRS(t)
	}
	read := func(path string) []string {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update-golden to generate)", err)
		}
		return strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	}
	queries = read(goldenRSQueries)
	corpus = read(goldenRSTexts(t))
	for _, line := range read(goldenRSPairs) {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			pairs = append(pairs, line)
		}
	}
	return queries, corpus, pairs
}

// goldenRSTexts returns the S-side corpus path, generating the shared
// self-join corpus fixture first if it is absent.
func goldenRSTexts(t *testing.T) string {
	t.Helper()
	if _, err := os.Stat(goldenTexts); os.IsNotExist(err) && *updateGolden {
		writeGolden(t)
	}
	return goldenTexts
}

// writeGoldenRS regenerates the R-S fixture: the query relation (only if
// absent, keeping the committed dataset stable) and the expected pairs
// from a sequential fault-free FS-Join reference run, cross-checked
// against the brute-force oracle before anything is written.
func writeGoldenRS(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenRSQueries), 0o755); err != nil {
		t.Fatal(err)
	}
	read := func(path string) []string {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	}
	sTexts := read(goldenRSTexts(t))
	if _, err := os.Stat(goldenRSQueries); os.IsNotExist(err) {
		// Queries are light perturbations of corpus lines (kept verbatim,
		// one word dropped, or one word appended), so the fixture has a
		// dense band of cross pairs around the threshold.
		rng := rand.New(rand.NewSource(9))
		queries := make([]string, 24)
		for i := range queries {
			words := strings.Fields(sTexts[(i*5)%len(sTexts)])
			switch rng.Intn(3) {
			case 0: // verbatim: an exact cross match
			case 1:
				if len(words) > 1 {
					words = words[:len(words)-1]
				}
			default:
				words = append(words, "omega")
			}
			queries[i] = strings.Join(words, " ")
		}
		if err := os.WriteFile(goldenRSQueries, []byte(strings.Join(queries, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	queries := read(goldenRSQueries)

	d := NewDictionary()
	rc := d.NewTextCollection(queries)
	sc := d.NewTextCollection(sTexts)
	res, err := rc.Join(sc, Options{Threshold: goldenTheta, LocalParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) < 8 {
		t.Fatalf("reference run found only %d pairs — fixture too sparse to pin anything", len(res.Pairs))
	}
	fn, err := Jaccard.internal()
	if err != nil {
		t.Fatal(err)
	}
	oracle := formatInternalPairs(bruteforce.Join(rc.t, sc.t, fn, goldenTheta))
	diffPairs(t, "golden rs reference vs oracle", formatPairs(res.Pairs), oracle)

	var sb strings.Builder
	fmt.Fprintf(&sb, "# fs-join r-s golden pairs: theta=%v, R=rs_queries.txt S=texts.txt, one \"A B Common Sim\" per line\n", goldenTheta)
	for _, line := range formatPairs(res.Pairs) {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(goldenRSPairs, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenRS runs every exact R-S configuration at several parallelism
// levels against the committed fixture and, independently, re-derives the
// expected pairs from the brute-force oracle — so the fixture pins both
// the algorithms and the oracle to one byte-exact answer.
func TestGoldenRS(t *testing.T) {
	queries, sTexts, want := loadGoldenRS(t)
	d := NewDictionary()
	rc := d.NewTextCollection(queries)
	sc := d.NewTextCollection(sTexts)
	fn, err := Jaccard.internal()
	if err != nil {
		t.Fatal(err)
	}
	diffPairs(t, "oracle", formatInternalPairs(bruteforce.Join(rc.t, sc.t, fn, goldenTheta)), want)

	for _, cfg := range rsExactConfigs {
		for _, par := range []int{1, 4, 0} {
			opt := cfg.opt
			opt.Threshold = goldenTheta
			opt.LocalParallelism = par
			res, err := JoinStrings(queries, sTexts, opt)
			if err != nil {
				t.Fatalf("%s par %d: %v", cfg.label, par, err)
			}
			diffPairs(t, fmt.Sprintf("%s par %d", cfg.label, par), formatPairs(res.Pairs), want)
		}
	}
}

// TestGoldenRSApproxPrecision: the approximate R-S join may miss pairs but
// must never report one outside the golden set, and scores must match
// bit-for-bit.
func TestGoldenRSApproxPrecision(t *testing.T) {
	queries, sTexts, want := loadGoldenRS(t)
	golden := make(map[string]bool, len(want))
	for _, line := range want {
		golden[line] = true
	}
	res, err := JoinStrings(queries, sTexts, Options{
		Threshold: goldenTheta, Algorithm: ApproxLSHJoin, LocalParallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range formatPairs(res.Pairs) {
		if !golden[line] {
			t.Fatalf("approx rs join reported %q, not in the golden set", line)
		}
	}
	if len(res.Pairs) == 0 {
		t.Fatal("approx rs join found nothing — fixture defeats the S-curve entirely")
	}
}
