# Standard developer entry points; CI runs build+vet+race (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test vet race bench bench-report all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector, including the
# sequential-vs-parallel equivalence property tests.
race:
	$(GO) test -race ./...

# bench runs the perf-regression subset benchreport records.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkShuffleThroughput' -benchmem ./internal/mapreduce/
	$(GO) test -run '^$$' -bench 'BenchmarkKernels' -benchmem ./internal/fragjoin/
	$(GO) test -run '^$$' -bench 'BenchmarkParallelSpeedup|BenchmarkFig7' .

# bench-report regenerates BENCH_PR1.json.
bench-report:
	$(GO) run ./cmd/benchreport -o BENCH_PR1.json
