# Standard developer entry points; CI runs build+vet+race (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test vet race bench bench-report chaos fuzz cover test-lowmem test-recovery test-serve test-filters test-rs test-index test-durability test-cluster all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector, including the
# sequential-vs-parallel equivalence property tests.
race:
	$(GO) test -race ./...

# bench runs the perf-regression subset benchreport records.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkShuffleThroughput' -benchmem ./internal/mapreduce/
	$(GO) test -run '^$$' -bench 'BenchmarkKernels' -benchmem ./internal/fragjoin/
	$(GO) test -run '^$$' -bench 'BenchmarkParallelSpeedup|BenchmarkFig7' .
	$(GO) test -run '^$$' -bench 'BenchmarkMemoryBudget' ./internal/mapreduce/

# bench-report regenerates BENCH_PR10.json (engine, kernels with the
# bitmap filter on and off, end-to-end and memory-budget suites plus
# derived ratios, filter-effectiveness, robustness, serving, r-s join,
# probe-index serving, durability and multi-process worker probes).
bench-report:
	$(GO) run ./cmd/benchreport -o BENCH_PR10.json

# chaos runs the seeded fault-injection equivalence suites under the race
# detector (DESIGN.md §7). Any failure is re-runnable from its seed.
chaos:
	$(GO) test -race -run 'TestChaos' . ./internal/mapreduce/chaos/

# fuzz smoke-runs each native fuzz target briefly; CI uses the same
# budget. Longer runs: go test -fuzz=FuzzThresholdAlgebra ./internal/similarity/
fuzz:
	$(GO) test -fuzz 'FuzzWordTokenizer' -fuzztime 10s ./internal/tokens/
	$(GO) test -fuzz 'FuzzQGramTokenizer' -fuzztime 10s ./internal/tokens/
	$(GO) test -fuzz 'FuzzThresholdAlgebra' -fuzztime 10s ./internal/similarity/
	$(GO) test -fuzz 'FuzzValueCodec' -fuzztime 10s ./internal/spill/
	$(GO) test -fuzz 'FuzzBufferMerge' -fuzztime 10s ./internal/spill/
	$(GO) test -fuzz 'FuzzRunCodec' -fuzztime 10s ./internal/spill/
	$(GO) test -fuzz 'FuzzBitmapSignature' -fuzztime 10s ./internal/filters/
	$(GO) test -fuzz 'FuzzIndexCodec' -fuzztime 10s ./internal/probeindex/
	$(GO) test -fuzz 'FuzzWAL' -fuzztime 10s ./internal/probeindex/

# test-lowmem forces every test through the out-of-core shuffle: a 4 KiB
# budget via the environment (tests that set an explicit budget ignore it)
# under the race detector. CI runs this as its low-memory job.
test-lowmem:
	FSJOIN_MEMORY_BUDGET=4096 $(GO) test -race ./...

# test-recovery runs the checkpoint/restart and poison-record suites
# (DESIGN.md §9) under the race detector with a 1 KiB shuffle budget, so
# crash-resume equivalence is proven while every stage also spills — the
# composition of the durability and out-of-core paths. CI runs this as its
# recovery job.
test-recovery:
	FSJOIN_MEMORY_BUDGET=1024 $(GO) test -race \
		-run 'TestCrashResume|TestResume|TestCheckpointSalt|TestSkip|TestMaxSkipped|TestInjectedRecordFault|TestPipelineCheckpoint' \
		. ./internal/mapreduce/
	$(GO) test -race ./internal/checkpoint/
	$(GO) test -fuzz 'FuzzDecode' -fuzztime 10s ./internal/checkpoint/
	$(GO) test -fuzz 'FuzzLoadViaStore' -fuzztime 10s ./internal/checkpoint/

# test-serve runs the multi-job serving-layer suites (DESIGN.md §10) under
# the race detector: admission/queue unit tests, concurrent-equivalence and
# degradation-contract tests through fsjoin.Server, the shared-Options race
# test, typed task errors, and the fine-grained cancellation tests across
# the engine, kernels and spill merge. The 64 KiB environment budget keeps
# every served job on the out-of-core shuffle so leases and spill-dir
# hygiene are exercised for real. CI runs this as its serve job.
test-serve:
	FSJOIN_MEMORY_BUDGET=65536 $(GO) test -race \
		-run 'TestServer|TestConcurrentJoins|TestJoinSurfaces|TestGate|Cancel' \
		. ./internal/sched/ ./internal/mapreduce/ ./internal/fragjoin/ ./internal/spill/

# test-filters runs the bitmap signature filter suites (DESIGN.md §11)
# under the race detector, then re-runs the equivalence and golden suites
# with the filter forced on and forced off through the environment knob, so
# both code paths are proven byte-identical whichever way the default
# points. CI runs this as its filters job.
test-filters:
	$(GO) test -race ./internal/filters/
	$(GO) test -race -run 'TestBitmap|TestGolden' .
	$(GO) test -race -run 'Bitmap|Equivalence' ./internal/fragjoin/ ./internal/ridpairs/
	FSJOIN_BITMAP=on $(GO) test -race -run 'TestGolden|TestAllAlgorithmsAgree' .
	FSJOIN_BITMAP=off $(GO) test -race -run 'TestGolden|TestAllAlgorithmsAgree' .

# test-rs runs the R-S (two-table) join suites (DESIGN.md §12) under the
# race detector: the quick.Check differential oracle, the RSJoin(R,R) ≡
# SelfJoin equivalence matrix, the golden R-S fixture, quarantine-key
# disambiguation, the R-S chaos schedules and the R-S crash-resume matrix
# entries, plus the internal R-S oracle tests. CI runs this as its rs job.
test-rs:
	$(GO) test -race -run 'TestRSJoin|TestGoldenRS|TestChaosEquivalenceRS|TestServerRSJoin|TestCrashResumeEquivalence/(fs-rs|fs-v-rs|ridpairs-rs|vsmart-rs|approx-rs)' .
	$(GO) test -race -run 'RS|Join' ./internal/vsmart/ ./internal/minhash/ ./internal/ridpairs/ ./internal/core/

# test-index runs the persistent probe-index suites (DESIGN.md §13) under
# the race detector: the internal build/probe/overlay/persistence tests,
# the public differential tests against the self-join, R-S join and
# brute-force oracles, the golden probe fixture, the corrupt-load
# rebuild-never-trust test, the Server probe path, and a smoke run of the
# index-codec fuzz target. CI runs this as its index job.
test-index:
	$(GO) test -race ./internal/probeindex/
	$(GO) test -race -run 'TestIndex|TestGoldenProbe|TestServerProbe' .
	$(GO) test -fuzz 'FuzzIndexCodec' -fuzztime 10s ./internal/probeindex/

# test-durability runs the probe-index durability suites (DESIGN.md §14)
# under the race detector: the crash-kill matrix (in-process panics at
# every WAL/compaction/snapshot boundary plus the forked SIGKILL harness),
# WAL unit tests (torn tails, mid-log corruption, foreign headers,
# injected write/fsync failures, group commit), the concurrent
# probe/mutate/auto-compact race test, the public round-trip and
# Server.MaintainIndex tests, and a smoke run of the WAL fuzz target. CI
# runs this as its durability job.
test-durability:
	$(GO) test -race -run 'TestCrashKill|TestWAL|TestConcurrentDurable|TestPersistValidation' ./internal/probeindex/
	$(GO) test -race -run 'TestDurableIndexRoundTrip|TestServerMaintain' .
	$(GO) test -fuzz 'FuzzWAL' -fuzztime 10s ./internal/probeindex/

# test-cluster runs the multi-process execution suites (DESIGN.md §15)
# under the race detector: filesystem-transport equivalence, the seeded
# transport-fault chaos schedules at parallelism 1 and 4, real 2-worker
# clustered runs, and the worker-kill recovery harness (SIGKILL one of
# two workers at every map/handoff/reduce boundary, byte-identical output
# and reassignment counters enforced), plus the engine-level supervisor,
# FS-transport and delivery-fault suites. CI runs this as its cluster
# job.
test-cluster:
	$(GO) test -race -run 'TestFileShuffleEquivalence|TestChaosTransportEquivalence|TestMultiprocessEquivalence|TestWorkerKillRecovery|TestClusterRejections' .
	$(GO) test -race -run 'TestFSTransport|TestDistributed|TestSupervisor|TestSeededPlanTransportKinds|TestInjectedDeliveryFaults|TestParseKillSpec' ./internal/mapreduce/

# cover enforces the CI total-coverage gate over the library packages
# (the main packages under cmd/ and examples/ are thin wrappers with no
# unit tests and are excluded so the gate tracks the code the tests pin;
# baseline 85.5% when the gate was last re-anchored; fails below 78%).
cover:
	$(GO) test -coverprofile=cover.out $$($(GO) list ./... | grep -v -e '/cmd/' -e '/examples/')
	$(GO) tool cover -func=cover.out | awk '/^total:/ { sub("%","",$$3); if ($$3+0 < 78.0) { printf "coverage %s%% below 78%% gate\n", $$3; exit 1 } else printf "coverage %s%% (gate 78%%)\n", $$3 }'
