package fsjoin

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// probeFixture builds a server, a corpus collection and its probe index.
func probeFixture(t *testing.T, so ServerOptions) (*Server, *Collection, *Index, []string) {
	t.Helper()
	srv, err := NewServer(so)
	if err != nil {
		t.Fatal(err)
	}
	texts := corpus(60, 14)
	coll := NewDictionary().NewTextCollection(texts)
	ix, err := BuildIndex(coll, IndexOptions{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return srv, coll, ix, texts
}

// TestServerProbeMatchesDirect: a probe served through the admission
// machinery returns exactly what the index returns directly, and counts as
// a completed job.
func TestServerProbeMatchesDirect(t *testing.T) {
	srv, _, ix, texts := probeFixture(t, ServerOptions{MemoryBudget: 1 << 20})
	defer srv.Shutdown(context.Background())
	for i, tx := range texts[:10] {
		set := strings.Fields(tx)
		got, err := srv.Probe(context.Background(), ix, set)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, fmt.Sprintf("probe %d", i), got, ix.Probe(set))
	}
	sets := make([][]string, 5)
	for i := range sets {
		sets[i] = strings.Fields(texts[i])
	}
	batch, err := srv.ProbeBatch(context.Background(), ix, sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range batch {
		assertSameMatches(t, fmt.Sprintf("batch %d", i), got, ix.Probe(sets[i]))
	}
	st := srv.Stats()
	if st.Completed != 11 {
		t.Fatalf("Completed = %d, want 11 (10 probes + 1 batch)", st.Completed)
	}
	if st.MemoryInUse != 0 {
		t.Fatalf("MemoryInUse = %d after probes returned", st.MemoryInUse)
	}
}

// TestServerProbeConcurrent hammers one index from many goroutines through
// the gate while a batch join runs — exercising the shared-pool accounting
// and the index's read path together.
func TestServerProbeConcurrent(t *testing.T) {
	srv, coll, ix, texts := probeFixture(t, ServerOptions{MemoryBudget: 4 << 20, MaxConcurrent: 8})
	defer srv.Shutdown(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.SelfJoin(context.Background(), coll, Options{Threshold: 0.7}); err != nil {
			t.Errorf("batch join: %v", err)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				set := strings.Fields(texts[(g*17+i)%len(texts)])
				if _, err := srv.Probe(context.Background(), ix, set); err != nil {
					t.Errorf("probe: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := srv.Stats(); st.MemoryInUse != 0 {
		t.Fatalf("MemoryInUse = %d after drain", st.MemoryInUse)
	}
}

// TestServerProbeSheddingAndShutdown pins the typed failures: a probe
// arriving at a full, queue-less server is shed with ErrOverloaded; a
// probe after Shutdown gets ErrServerClosed; a nil index is rejected
// outright.
func TestServerProbeSheddingAndShutdown(t *testing.T) {
	srv, _, ix, texts := probeFixture(t, ServerOptions{
		MemoryBudget: 1 << 16, MaxConcurrent: 1, MaxQueue: -1,
	})
	set := strings.Fields(texts[0])

	var running sync.WaitGroup
	release := blockingJob(t, srv, &running)
	if _, err := srv.Probe(context.Background(), ix, set); !errorsIsAny(err, ErrOverloaded) {
		t.Fatalf("probe at full server: err = %v, want ErrOverloaded", err)
	}
	release()
	running.Wait()

	if _, err := srv.ProbeBatch(context.Background(), nil, [][]string{set}); err == nil {
		t.Fatal("nil index accepted")
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Probe(context.Background(), ix, set); !errorsIsAny(err, ErrServerClosed) {
		t.Fatalf("probe after shutdown: err = %v, want ErrServerClosed", err)
	}
}

func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
