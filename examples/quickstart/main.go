// Quickstart: the smallest end-to-end FS-Join — build a collection from
// tokenised records, self-join at θ = 0.5, print the similar pairs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fsjoin"
)

func main() {
	docs := [][]string{
		{"set", "similarity", "join", "mapreduce"},      // 0
		{"set", "similarity", "joins", "mapreduce"},     // 1 — near-dup of 0
		{"vertical", "partitioning", "for", "big"},      // 2
		{"vertical", "partitioning", "for", "big", "x"}, // 3 — near-dup of 2
		{"completely", "unrelated", "tokens", "here"},   // 4
	}

	res, err := fsjoin.SelfJoinSets(docs, fsjoin.Options{
		Threshold: 0.5,
		Function:  fsjoin.Jaccard,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d similar pairs at θ=0.5:\n", len(res.Pairs))
	for _, p := range res.Pairs {
		fmt.Printf("  records %d and %d: %d common tokens, Jaccard %.3f\n",
			p.A, p.B, p.Common, p.Similarity)
	}
	fmt.Printf("\nsimulated cluster time: %.1fs over %d shuffled records\n",
		res.Stats.SimulatedTime.Seconds(), res.Stats.ShuffleRecords)
}
