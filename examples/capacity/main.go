// Capacity: use the cluster cost model for capacity planning — how many
// worker nodes does a similarity-join workload need before returns diminish?
// The example joins one synthetic workload on simulated clusters of growing
// size and prints the scaling curve with marginal speedups, the analysis
// behind the paper's Figure 9.
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"fsjoin"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	words := strings.Fields(`data join set similarity threshold filter verify
partition fragment segment pivot token order shuffle reduce cluster node
record pair candidate prefix index loop balance skew scale`)
	texts := make([]string, 1500)
	for i := range texts {
		if i > 0 && rng.Float64() < 0.25 {
			texts[i] = texts[rng.Intn(i)] + " " + words[rng.Intn(len(words))]
			continue
		}
		var sb strings.Builder
		for j := 0; j < rng.Intn(14)+6; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		texts[i] = sb.String()
	}
	collection := fsjoin.NewDictionary().NewTextCollection(texts)

	fmt.Printf("workload: %d records, θ=0.8 Jaccard self-join\n\n", collection.Len())
	fmt.Printf("%6s  %12s  %10s  %s\n", "nodes", "sim time", "speedup", "marginal gain")
	var base, prev float64
	for _, nodes := range []int{2, 4, 6, 8, 10, 15, 20, 30} {
		res, err := collection.SelfJoin(fsjoin.Options{Threshold: 0.8, Nodes: nodes, VerticalPartitions: 30})
		if err != nil {
			log.Fatal(err)
		}
		secs := res.Stats.SimulatedTime.Seconds()
		if base == 0 {
			base, prev = secs, secs
		}
		marginal := ""
		if prev != secs {
			marginal = fmt.Sprintf("%.0f%% faster than previous size", 100*(prev-secs)/prev)
		}
		fmt.Printf("%6d  %10.1fs  %9.2fx  %s\n", nodes, secs, base/secs, marginal)
		prev = secs
	}
	fmt.Println("\nspeedup comes from parallel shuffle drain and task slots; the knee appears")
	fmt.Println("where per-task overhead and stragglers stop shrinking — the paper's Figure 9.")
}
