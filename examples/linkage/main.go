// Linkage: R-S record linkage between two bibliographic sources — another
// of the paper's motivating applications. A "DBLP-like" list of clean paper
// titles is linked against a "preprint-server-like" list containing noisy
// versions of some of the same papers plus unrelated entries. FS-Join's R-S
// mode finds cross-source matches without comparing either source against
// itself.
//
// Run with: go run ./examples/linkage
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"fsjoin"
)

var topics = strings.Fields(`scalable distributed set similarity joins big
data analytics efficient parallel graph processing streaming window
aggregation approximate query answering learned index structures adaptive
radix tree transactional memory consistency serializable snapshot isolation
columnar storage vectorized execution query compilation cost based
optimization cardinality estimation sampling sketches locality sensitive
hashing duplicate detection entity resolution record linkage data cleaning
integration crowdsourcing truth discovery provenance lineage workflow`)

func title(rng *rand.Rand) string {
	n := rng.Intn(6) + 5
	var sb strings.Builder
	for j := 0; j < n; j++ {
		if j > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(topics[rng.Intn(len(topics))])
	}
	return sb.String()
}

func noisy(rng *rand.Rand, s string) string {
	fields := strings.Fields(s)
	out := make([]string, 0, len(fields)+1)
	for _, f := range fields {
		if rng.Float64() < 0.1 {
			out = append(out, topics[rng.Intn(len(topics))])
		} else {
			out = append(out, f)
		}
	}
	if rng.Float64() < 0.3 {
		out = append(out, "extended", "version")
	}
	return strings.Join(out, " ")
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// R: 150 clean titles. S: noisy copies of ~half of R, plus 80 others.
	var r []string
	for i := 0; i < 150; i++ {
		r = append(r, title(rng))
	}
	var s []string
	truth := make(map[int]int) // S index → R index
	for i, t := range r {
		if rng.Float64() < 0.5 {
			truth[len(s)] = i
			s = append(s, noisy(rng, t))
		}
	}
	for i := 0; i < 80; i++ {
		s = append(s, title(rng))
	}

	dict := fsjoin.NewDictionary()
	cr := dict.NewTextCollection(r)
	cs := dict.NewTextCollection(s)
	res, err := cr.Join(cs, fsjoin.Options{
		Threshold: 0.6,
		Function:  fsjoin.Dice, // Dice is forgiving on short titles
	})
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	for _, p := range res.Pairs {
		if truth[p.B] == p.A {
			correct++
		}
	}
	fmt.Printf("linked %d cross-source pairs at Dice ≥ 0.6 (%d true links planted, %d matches correct)\n\n",
		len(res.Pairs), len(truth), correct)
	for i, p := range res.Pairs {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Pairs)-5)
			break
		}
		fmt.Printf("  R[%3d] %q\n  S[%3d] %q  (dice %.3f)\n\n", p.A, r[p.A], p.B, s[p.B], p.Similarity)
	}
}
