// Dedup: near-duplicate detection for data cleaning — the paper's
// motivating application. A synthetic product catalogue is polluted with
// noisy duplicate entries; FS-Join finds the duplicate pairs, and a
// union-find pass groups them into clusters to keep one canonical entry
// each.
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"fsjoin"
)

// vocabulary for synthetic product descriptions.
var words = strings.Fields(`wireless bluetooth noise cancelling over ear
headphones black stainless steel electric kettle fast boil litre cordless
vacuum cleaner bagless lightweight rechargeable stick ergonomic office
chair lumbar support mesh back adjustable height ceramic non stick frying
pan induction compatible dishwasher safe portable power bank usb fast
charging slim aluminium laptop stand foldable ventilated travel mug leak
proof insulated thermal smart fitness tracker heart rate sleep monitor
waterproof mechanical keyboard backlit tactile switches compact hdmi cable
high speed gold plated braided`)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Build a catalogue of 300 products, ~30% of them noisy duplicates.
	var catalogue []string
	for i := 0; i < 300; i++ {
		if i > 0 && rng.Float64() < 0.3 {
			catalogue = append(catalogue, mutate(rng, catalogue[rng.Intn(i)]))
			continue
		}
		n := rng.Intn(8) + 6
		var sb strings.Builder
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		catalogue = append(catalogue, sb.String())
	}

	res, err := fsjoin.SelfJoinStrings(catalogue, fsjoin.Options{
		Threshold: 0.75,
		Function:  fsjoin.Jaccard,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Union-find over duplicate pairs → clusters.
	parent := make([]int, len(catalogue))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range res.Pairs {
		parent[find(p.A)] = find(p.B)
	}
	clusters := make(map[int][]int)
	for i := range catalogue {
		r := find(i)
		clusters[r] = append(clusters[r], i)
	}

	dupClusters := 0
	removed := 0
	for _, members := range clusters {
		if len(members) > 1 {
			dupClusters++
			removed += len(members) - 1
		}
	}
	fmt.Printf("catalogue: %d entries, %d duplicate pairs found at θ=0.75\n",
		len(catalogue), len(res.Pairs))
	fmt.Printf("%d duplicate clusters; deduplication would remove %d entries\n\n",
		dupClusters, removed)

	shown := 0
	for root, members := range clusters {
		if len(members) < 2 || shown >= 3 {
			continue
		}
		shown++
		fmt.Printf("cluster (keep entry %d):\n", root)
		for _, m := range members {
			fmt.Printf("  [%3d] %s\n", m, catalogue[m])
		}
	}
}

// mutate produces a noisy duplicate: a few word substitutions/drops.
func mutate(rng *rand.Rand, s string) string {
	fields := strings.Fields(s)
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		switch {
		case rng.Float64() < 0.08:
			out = append(out, words[rng.Intn(len(words))])
		case rng.Float64() < 0.04:
			// dropped
		default:
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = fields
	}
	return strings.Join(out, " ")
}
