package fsjoin

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section VI). Each benchmark regenerates its
// experiment through internal/experiments at a reduced dataset scale so the
// whole suite completes in minutes; `go run ./cmd/experiments` produces the
// full-scale tables recorded in EXPERIMENTS.md.
//
// Reported custom metrics make the paper's quantities visible in benchmark
// output: simulated cluster seconds (sim-s/op), shuffled records and bytes.

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"fsjoin/internal/core"
	"fsjoin/internal/dataset"
	"fsjoin/internal/experiments"
	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/partition"
	"fsjoin/internal/ridpairs"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
	"fsjoin/internal/vsmart"
)

// benchScale shrinks the calibrated profiles so `go test -bench=.` stays
// fast while preserving every experiment's structure.
const benchScale = 0.15

func benchCluster() *mapreduce.Cluster { return mapreduce.DefaultCluster() }

func benchCollection(b *testing.B, p dataset.Profile) *tokens.Collection {
	b.Helper()
	return dataset.Generate(p.Scale(benchScale), 1)
}

func fsOpts(theta float64) core.Options {
	return core.Options{
		Fn:                 similarity.Jaccard,
		Theta:              theta,
		PivotMethod:        partition.EvenTF,
		VerticalPartitions: 30,
		HorizontalPivots:   10,
		JoinMethod:         fragjoin.Prefix,
		Filters:            filters.All,
		Cluster:            benchCluster(),
	}
}

func reportFS(b *testing.B, res *core.Result) {
	b.Helper()
	b.ReportMetric(res.Pipeline.TotalSimulatedTime().Seconds(), "sim-s/op")
	b.ReportMetric(float64(res.Pipeline.TotalShuffleRecords()), "shuffle-recs/op")
	b.ReportMetric(float64(res.Pipeline.TotalShuffleBytes()), "shuffle-B/op")
}

// BenchmarkTable3Stats regenerates Table III: dataset generation plus the
// statistics pass for all three profiles.
func BenchmarkTable3Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range dataset.Profiles() {
			s := dataset.Describe(dataset.Generate(p.Scale(benchScale), 1))
			if s.Records == 0 {
				b.Fatal("empty dataset")
			}
		}
	}
}

// BenchmarkTable1Duplication regenerates Table I's measured quantities:
// duplication factors and load imbalance for FS-Join vs RIDPairsPPJoin.
func BenchmarkTable1Duplication(b *testing.B) {
	c := benchCollection(b, dataset.Wiki())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := core.SelfJoin(c, fsOpts(0.8))
		if err != nil {
			b.Fatal(err)
		}
		rid, err := ridpairs.SelfJoin(c, ridpairs.Options{Fn: similarity.Jaccard, Theta: 0.8, Cluster: benchCluster()})
		if err != nil {
			b.Fatal(err)
		}
		dup := float64(rid.Pipeline.Counter("ridpairs.duplicates")) / float64(c.Len())
		b.ReportMetric(dup, "rid-dup-factor")
		b.ReportMetric(fs.Pipeline.MaxLoadImbalance(), "fs-imbalance")
	}
}

// benchFig6 runs one Figure 6 cell: FS-Join vs RIDPairsPPJoin on one
// dataset and threshold, reporting the simulated speedup.
func benchFig6(b *testing.B, p dataset.Profile, theta float64) {
	c := benchCollection(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := core.SelfJoin(c, fsOpts(theta))
		if err != nil {
			b.Fatal(err)
		}
		rid, err := ridpairs.SelfJoin(c, ridpairs.Options{Fn: similarity.Jaccard, Theta: theta, Cluster: benchCluster()})
		if err != nil {
			b.Fatal(err)
		}
		if len(fs.Pairs) != len(rid.Pairs) {
			b.Fatalf("result mismatch: %d vs %d", len(fs.Pairs), len(rid.Pairs))
		}
		reportFS(b, fs)
		b.ReportMetric(rid.Pipeline.TotalSimulatedTime().Seconds()/
			fs.Pipeline.TotalSimulatedTime().Seconds(), "speedup-x")
	}
}

// BenchmarkFig6 covers Figure 6 (big datasets, θ sweep ends).
func BenchmarkFig6(b *testing.B) {
	for _, p := range dataset.Profiles() {
		for _, theta := range []float64{0.75, 0.9} {
			p, theta := p, theta
			b.Run(p.Name+"/theta="+ftoa(theta), func(b *testing.B) { benchFig6(b, p, theta) })
		}
	}
}

// BenchmarkFig7 covers Figure 7 (small datasets, all five methods).
func BenchmarkFig7(b *testing.B) {
	for _, p := range dataset.Profiles() {
		c := dataset.Sample(benchCollection(b, p), 0.5, 7)
		algos := []struct {
			name string
			run  func() (int, error)
		}{
			{"fs-join", func() (int, error) {
				r, err := core.SelfJoin(c, fsOpts(0.8))
				if err != nil {
					return 0, err
				}
				return len(r.Pairs), nil
			}},
			{"ridpairs", func() (int, error) {
				r, err := ridpairs.SelfJoin(c, ridpairs.Options{Fn: similarity.Jaccard, Theta: 0.8, Cluster: benchCluster()})
				if err != nil {
					return 0, err
				}
				return len(r.Pairs), nil
			}},
			{"v-smart", func() (int, error) {
				r, err := vsmart.SelfJoin(c, vsmart.Options{Fn: similarity.Jaccard, Theta: 0.8, Cluster: benchCluster()})
				if err != nil {
					return 0, err
				}
				return len(r.Pairs), nil
			}},
		}
		for _, a := range algos {
			a := a
			b.Run(p.Name+"/"+a.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := a.run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8 covers Figure 8: FS-Join across data scales.
func BenchmarkFig8(b *testing.B) {
	full := benchCollection(b, dataset.Wiki())
	for _, frac := range []float64{0.4, 1.0} {
		frac := frac
		c := dataset.Sample(full, frac, 3)
		b.Run("wiki/scale="+ftoa(frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.SelfJoin(c, fsOpts(0.8))
				if err != nil {
					b.Fatal(err)
				}
				reportFS(b, res)
			}
		})
	}
}

// BenchmarkFig9 covers Figure 9: FS-Join across cluster sizes.
func BenchmarkFig9(b *testing.B) {
	c := benchCollection(b, dataset.PubMed())
	for _, nodes := range []int{5, 10, 15} {
		nodes := nodes
		b.Run("pubmed/nodes="+itoa(nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.Cluster = opt.Cluster.WithNodes(nodes)
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				reportFS(b, res)
			}
		})
	}
}

// BenchmarkFig10 covers Figure 10: the filter/verification phase split
// across horizontal partition counts.
func BenchmarkFig10(b *testing.B) {
	c := benchCollection(b, dataset.PubMed())
	for _, hp := range []int{5, 25} {
		hp := hp
		b.Run("pubmed/hpivots="+itoa(hp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.HorizontalPivots = hp
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Pipeline.StageTime("filtering").Seconds(), "filter-s/op")
				b.ReportMetric(res.Pipeline.StageTime("verification").Seconds(), "verify-s/op")
			}
		})
	}
}

// BenchmarkFig11 covers Figure 11: the three pivot selection methods.
func BenchmarkFig11(b *testing.B) {
	c := benchCollection(b, dataset.Wiki())
	for _, m := range []partition.PivotMethod{partition.Random, partition.EvenInterval, partition.EvenTF} {
		m := m
		b.Run("wiki/"+m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.PivotMethod = m
				opt.Seed = 5
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Pipeline.StageTime("filtering").Seconds(), "filter-s/op")
				b.ReportMetric(res.Pipeline.Stages()[1].LoadImbalance(), "imbalance")
			}
		})
	}
}

// BenchmarkFig12 covers Figure 12: the three fragment join kernels.
func BenchmarkFig12(b *testing.B) {
	c := benchCollection(b, dataset.PubMed())
	for _, m := range []fragjoin.Method{fragjoin.Loop, fragjoin.Index, fragjoin.Prefix} {
		m := m
		b.Run("pubmed/"+m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.JoinMethod = m
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Pipeline.Counter(fragjoin.CtrComparisons)), "comparisons/op")
			}
		})
	}
}

// BenchmarkFig13 covers Figure 13: FS-Join vs FS-Join-V.
func BenchmarkFig13(b *testing.B) {
	c := benchCollection(b, dataset.Wiki())
	for _, hp := range []int{25, 0} {
		hp := hp
		name := "fs-join"
		if hp == 0 {
			name = "fs-join-v"
		}
		b.Run("wiki/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.HorizontalPivots = hp
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				reportFS(b, res)
			}
		})
	}
}

// BenchmarkTable4Filters covers Table IV: filter-job output volume per
// filter combination.
func BenchmarkTable4Filters(b *testing.B) {
	c := dataset.Sample(benchCollection(b, dataset.Wiki()), 0.5, 11)
	cases := []struct {
		name   string
		set    filters.Set
		method fragjoin.Method
		naive  bool
	}{
		{"StrL", filters.StrL, fragjoin.Index, false},
		{"StrL+SegI", filters.StrL | filters.SegI, fragjoin.Index, false},
		{"All", filters.All, fragjoin.Prefix, false},
		{"All-paper", filters.All, fragjoin.Prefix, true},
	}
	for _, tc := range cases {
		tc := tc
		b.Run("wiki/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.Filters = tc.set
				opt.JoinMethod = tc.method
				opt.PaperPrefix = tc.naive
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FilterOutputRecords), "filter-out/op")
			}
		})
	}
}

// BenchmarkParallelSpeedup measures the wall-clock win of the parallel data
// path on a Figure 7-class end-to-end join: the same FS-Join run
// sequentially (LocalParallelism 1, the cost-model-faithful setting) and
// with one worker per core. Output is identical; only wall clock changes.
func BenchmarkParallelSpeedup(b *testing.B) {
	c := benchCollection(b, dataset.Wiki())
	for _, cfg := range []struct {
		name string
		par  int
	}{
		{"sequential", 1},
		{"parallel", mapreduce.AutoParallelism},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := fsOpts(0.8)
				opt.LocalParallelism = cfg.par
				res, err := core.SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) == 0 {
					b.Fatal("no pairs")
				}
			}
		})
	}
}

// BenchmarkExperimentSuite smoke-runs the full experiment driver at tiny
// scale — the end-to-end path of cmd/experiments.
func BenchmarkExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Config{
			Scale: 0.06, Seed: 1, Out: io.Discard, Budget: 200_000,
		})
		if err := r.Run("table3"); err != nil {
			b.Fatal(err)
		}
		if err := r.Run("cost"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI measures the public entry point end-to-end on text.
func BenchmarkPublicAPI(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := strings.Fields("alpha beta gamma delta epsilon zeta eta theta iota kappa")
	texts := make([]string, 400)
	for i := range texts {
		var sb strings.Builder
		for j := 0; j < rng.Intn(8)+3; j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		texts[i] = sb.String()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelfJoinStrings(texts, Options{Threshold: 0.8, Nodes: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func ftoa(f float64) string {
	switch f {
	case 0.4:
		return "0.4"
	case 0.75:
		return "0.75"
	case 0.9:
		return "0.9"
	case 1.0:
		return "1.0"
	default:
		return "x"
	}
}

func itoa(n int) string {
	digits := "0123456789"
	if n < 10 {
		return digits[n : n+1]
	}
	return itoa(n/10) + digits[n%10:n%10+1]
}
