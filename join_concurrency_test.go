package fsjoin

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"fsjoin/internal/mapreduce"
)

// TestConcurrentJoinsSharedOptions proves the public API never mutates a
// caller-owned Options value: eight goroutines join through one shared
// Options (chaos enabled, so the fault plumbing is exercised too), every
// result matches the sequential run, and the value is bit-identical
// afterwards. Run under -race by make test-serve, which is where a hidden
// mutation would actually trip.
func TestConcurrentJoinsSharedOptions(t *testing.T) {
	texts := corpus(50, 11)
	shared := Options{
		Threshold: 0.7, Algorithm: FSJoin, Nodes: 3,
		Fault: FaultOptions{ChaosSeed: 424243, ChaosIntensity: 0.3, MaxAttempts: 4},
	}
	before := shared
	want, err := SelfJoinStrings(texts, shared)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = SelfJoinStrings(texts, shared)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w].Pairs, want.Pairs) {
			t.Fatalf("worker %d: pairs differ from sequential run", w)
		}
	}
	if !reflect.DeepEqual(shared, before) {
		t.Fatalf("Options mutated by concurrent joins:\n before %+v\n after  %+v", before, shared)
	}
}

// deterministicCrash is a scripted injector: map task 0 panics with the
// same message on every attempt, which the engine classifies as a
// deterministic failure and stops retrying.
type deterministicCrash struct{}

func (deterministicCrash) Decide(phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	if phase == mapreduce.PhaseMap && task == 0 {
		return mapreduce.Fault{Kind: mapreduce.FaultPanic, Msg: "injected deterministic crash"}
	}
	return mapreduce.Fault{}
}

// TestJoinSurfacesTaskError pins the typed-error satellite end to end: a
// task failure inside the engine reaches Join's caller as a *TaskError
// carrying job, phase and task metadata — no string parsing, no raw
// panic escaping the library.
func TestJoinSurfacesTaskError(t *testing.T) {
	opts := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	opts.Fault.injector = deterministicCrash{}
	_, err := SelfJoinStrings(corpus(30, 17), opts)
	if err == nil {
		t.Fatal("join with an always-crashing map task succeeded")
	}
	var te *mapreduce.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a *mapreduce.TaskError in the chain", err)
	}
	if te.Phase != mapreduce.PhaseMap || te.Task != 0 || te.Job == "" {
		t.Fatalf("TaskError = %+v, want map task 0 with a job name", te)
	}
}
