package fsjoin

import (
	"errors"
	"fmt"
	"time"

	"fsjoin/internal/probeindex"
)

// ErrNoIndex is returned by LoadIndex when the directory holds no usable
// index for the given options — nothing saved, a different configuration,
// or a corrupt file. The caller should BuildIndex and Save.
var ErrNoIndex = errors.New("fsjoin: no usable index (build and save one)")

// ErrDurability is wrapped into the error of a durable Insert/Delete whose
// write-ahead-log append or fsync failed. The mutation was neither applied
// nor acknowledged, and the log stays poisoned (every later mutation fails
// the same way) until the index is reloaded — a torn tail is never
// appended to.
var ErrDurability = errors.New("fsjoin: durable mutation failed (not applied, not acknowledged)")

// publishIndexErr folds the internal typed WAL failure into the public
// sentinel so callers outside the module can errors.Is against it.
func publishIndexErr(err error) error {
	var we *probeindex.WALError
	if errors.As(err, &we) {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return err
}

// IndexOptions configures a probe index. The similarity predicate is fixed
// at build time: one index answers exactly one (function, threshold,
// bitmap) configuration, and LoadIndex refuses an index saved under any
// other.
type IndexOptions struct {
	// Threshold is the similarity threshold θ in (0, 1]. Required.
	Threshold float64
	// Function is the similarity function (default Jaccard).
	Function Similarity
	// BitmapFilter toggles the per-record signature filter (default
	// BitmapAuto; see Options.BitmapFilter). Probe results are identical in
	// every mode.
	BitmapFilter BitmapFilterMode
	// BitmapWidth pins the signature width in bits (64, 128 or 256); 0
	// picks it from the corpus's mean record length.
	BitmapWidth int
}

func (o IndexOptions) internal() (probeindex.Options, error) {
	fn, err := o.Function.internal()
	if err != nil {
		return probeindex.Options{}, err
	}
	bm, err := Options{BitmapFilter: o.BitmapFilter, BitmapWidth: o.BitmapWidth}.bitmapConfig()
	if err != nil {
		return probeindex.Options{}, err
	}
	if o.Threshold <= 0 || o.Threshold > 1 {
		return probeindex.Options{}, fmt.Errorf("fsjoin: Threshold %v outside (0, 1]", o.Threshold)
	}
	return probeindex.Options{Fn: fn, Theta: o.Threshold, Bitmap: bm}, nil
}

// WALSyncMode selects when write-ahead-log appends reach stable storage on
// a durable index (see Index.Persist).
type WALSyncMode int

const (
	// WALSyncAlways fsyncs every append before the mutation is
	// acknowledged: an acknowledged Insert/Delete survives power loss.
	WALSyncAlways WALSyncMode = iota
	// WALSyncInterval group-commits: appends hit the OS immediately but are
	// fsynced at most once per interval, so a crash can lose up to one
	// interval of acknowledged mutations — never reorder or corrupt them.
	WALSyncInterval
	// WALSyncNever leaves syncing to the OS (and to Close/compaction).
	WALSyncNever
)

// AutoCompact configures a durable index's self-maintenance: when the
// side-log overlay outgrows these thresholds, the index folds it into a
// fresh snapshot generation and rotates its WAL. The zero value disables
// auto-compaction (manual Compact still checkpoints).
type AutoCompact struct {
	// LogFraction triggers compaction when the overlay reaches this
	// fraction of the live record count; 0 disables the fractional trigger.
	LogFraction float64
	// MaxLogRecords triggers compaction at this absolute overlay size; 0
	// disables the absolute trigger.
	MaxLogRecords int
	// MinInterval spaces automatic compactions; 0 means no spacing.
	MinInterval time.Duration
}

// Durability configures Index.Persist.
type Durability struct {
	// WALSync is the fsync policy for acknowledged mutations (default
	// WALSyncAlways).
	WALSync WALSyncMode
	// WALSyncInterval is the group-commit window under WALSyncInterval;
	// 0 means 100ms.
	WALSyncInterval time.Duration
	// AutoCompact is the self-maintenance policy, evaluated by
	// Server.MaintainIndex (or any caller of the index's maintenance).
	AutoCompact AutoCompact
}

func (d Durability) internal() (probeindex.DurableOptions, error) {
	var mode probeindex.SyncMode
	switch d.WALSync {
	case WALSyncAlways:
		mode = probeindex.SyncAlways
	case WALSyncInterval:
		mode = probeindex.SyncInterval
	case WALSyncNever:
		mode = probeindex.SyncNever
	default:
		return probeindex.DurableOptions{}, fmt.Errorf("fsjoin: unknown WALSync mode %d", int(d.WALSync))
	}
	return probeindex.DurableOptions{
		Sync: probeindex.SyncPolicy{Mode: mode, Interval: d.WALSyncInterval},
		AutoCompact: probeindex.AutoCompactPolicy{
			LogFraction:   d.AutoCompact.LogFraction,
			MaxLogRecords: d.AutoCompact.MaxLogRecords,
			MinInterval:   d.AutoCompact.MinInterval,
		},
	}, nil
}

// Match is one probe hit: an indexed record similar to the probe set.
type Match struct {
	// RID is the matched record's id: its position in the collection the
	// index was built from, or the id Insert returned.
	RID int
	// Common is the exact intersection size.
	Common int
	// Similarity is the exact score, computed by the same kernel the batch
	// joins use.
	Similarity float64
}

// IndexStats snapshots an index's serving counters.
type IndexStats struct {
	// Probes, Candidates and Hits are cumulative (they survive Save/Load):
	// probes served, postings/overlay candidates examined, matches
	// returned.
	Probes     int64
	Candidates int64
	Hits       int64
	// LogSize is the current side-log overlay size: records inserted plus
	// records tombstoned since the last build or Compact.
	LogSize int64
	// Records is the number of live records probes can match.
	Records int64
	// Compactions counts Compact calls; AutoCompactions is the
	// policy-triggered subset.
	Compactions     int64
	AutoCompactions int64
	// Durability counters, all zero for a purely in-memory index:
	// acknowledged mutations appended to the WAL, WAL bytes fsynced, WAL
	// frames replayed at load, torn WAL tails truncated at load, and the
	// size of the current snapshot generation on disk.
	WALAppends         int64
	WALSyncedBytes     int64
	WALReplayed        int64
	WALTruncatedFrames int64
	SnapshotBytes      int64
	// Generation is the current snapshot generation (0 until persisted).
	Generation int64
}

// IndexLoadRejects snapshots the process-wide index.load.rejects.<reason>
// counters ("corrupt", "stale", "invariant", "wal"), incremented each time
// LoadIndex discards an unusable generation — so operators can tell
// corruption from an ordinary configuration change.
func IndexLoadRejects() map[string]int64 { return probeindex.LoadRejects() }

// Index is a persistent probe index: the batch pipeline's filter stack
// (global token order, prefix postings with positions, bitmap signatures)
// built once over a collection and then served read-many. Probe answers a
// single-record similarity query in microseconds with results
// byte-identical to a full join restricted to that record. All methods are
// safe for concurrent use.
type Index struct {
	ix *probeindex.Index
}

// BuildIndex builds a probe index over a prepared collection. The
// collection's record ids (positions) become Match.RID values.
func BuildIndex(c *Collection, opt IndexOptions) (*Index, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, errors.New("fsjoin: nil collection")
	}
	ix, err := probeindex.Build(c.t, c.c.d.Token, iopt)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// LoadIndex restores an index previously saved into dir with Index.Save.
// The options must match the saved configuration; any mismatch, missing or
// damaged file returns an error wrapping ErrNoIndex (the loader verifies
// the file's SHA-256 trailer and every structural invariant before serving
// from it — a corrupt index is discarded, never trusted).
func LoadIndex(dir string, opt IndexOptions) (*Index, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	ix, err := probeindex.Load(dir, iopt)
	if err != nil {
		if errors.Is(err, probeindex.ErrNoIndex) {
			return nil, fmt.Errorf("%w: %v", ErrNoIndex, err)
		}
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Save atomically persists the index (records, tombstones and side-log)
// into dir, so a later LoadIndex skips the build. Derived structures are
// rebuilt at load; the file carries a SHA-256 trailer. Save is a one-shot
// snapshot of an in-memory index; a Persist-ed index checkpoints through
// Compact instead.
func (x *Index) Save(dir string) error { return x.ix.Save(dir) }

// Persist makes the index durable in dir: the current state is written as
// a fresh snapshot generation and a write-ahead log is opened next to it.
// From then on every acknowledged Insert/Delete is WAL-logged (synced per
// d.WALSync) before it is applied, so LoadIndex after a crash recovers
// exactly the acknowledged mutation history; a WAL write failure returns
// an error wrapping ErrDurability and the mutation is neither applied nor
// acknowledged. Close releases the WAL; the on-disk state stays loadable.
func (x *Index) Persist(dir string, d Durability) error {
	dopt, err := d.internal()
	if err != nil {
		return err
	}
	return x.ix.Persist(dir, dopt)
}

// Close flushes and closes the index's write-ahead log, detaching it from
// its directory. Safe (and a no-op) on a never-persisted index.
func (x *Index) Close() error { return x.ix.Close() }

// Durable reports whether the index currently has an attached WAL.
func (x *Index) Durable() bool { return x.ix.Durable() }

// Maintain runs one maintenance pass: pending group-commit WAL bytes are
// flushed and the auto-compaction policy is evaluated. Server.MaintainIndex
// drives this periodically; callers without a Server may run it on their
// own schedule.
func (x *Index) Maintain() error { return x.ix.Maintain() }

// Probe returns every live indexed record whose similarity with the given
// token set reaches the index threshold, sorted by RID. The set may be
// unsorted, contain duplicates, or contain tokens the corpus never saw.
func (x *Index) Probe(set []string) []Match {
	return publishMatches(x.ix.Probe(set))
}

// ProbeBatch probes each set independently; element i of the result
// answers set i.
func (x *Index) ProbeBatch(sets [][]string) [][]Match {
	out := make([][]Match, len(sets))
	for i, set := range sets {
		out[i] = x.Probe(set)
	}
	return out
}

// ProbeRecord probes with an indexed record's own token set, excluding the
// record itself — the self-join result row for that record.
func (x *Index) ProbeRecord(rid int) ([]Match, error) {
	ms, err := x.ix.ProbeRecord(int32(rid))
	if err != nil {
		return nil, err
	}
	return publishMatches(ms), nil
}

// Insert adds a record to the index's side-log overlay and returns its new
// RID. The record is immediately probeable. On a durable index the insert
// is WAL-logged before it is acknowledged; a WAL failure leaves the index
// unchanged and returns the typed error.
func (x *Index) Insert(set []string) (int, error) {
	rid, err := x.ix.Insert(set)
	return int(rid), publishIndexErr(err)
}

// Delete removes a record (built, loaded or inserted) from the index,
// following the same WAL-before-acknowledge contract as Insert.
func (x *Index) Delete(rid int) error { return publishIndexErr(x.ix.Delete(int32(rid))) }

// Compact folds the side-log overlay back into the index's CSR base,
// recomputing the global token order and postings. Probe results are
// unchanged; serving pauses only for the rebuild. On a durable index
// Compact also checkpoints: a fresh snapshot generation is written
// atomically and the WAL rotated.
func (x *Index) Compact() error { return x.ix.Compact() }

// Len returns the number of live records.
func (x *Index) Len() int { return x.ix.Len() }

// Stats snapshots the serving counters.
func (x *Index) Stats() IndexStats {
	s := x.ix.Stats()
	return IndexStats{
		Probes:             s.Probes,
		Candidates:         s.Candidates,
		Hits:               s.Hits,
		LogSize:            s.LogSize,
		Records:            s.Records,
		Compactions:        s.Compactions,
		AutoCompactions:    s.AutoCompactions,
		WALAppends:         s.WALAppends,
		WALSyncedBytes:     s.WALSyncedBytes,
		WALReplayed:        s.WALReplayed,
		WALTruncatedFrames: s.WALTruncatedFrames,
		SnapshotBytes:      s.SnapshotBytes,
		Generation:         s.Generation,
	}
}

func publishMatches(ms []probeindex.Match) []Match {
	if ms == nil {
		return nil
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{RID: int(m.RID), Common: int(m.Common), Similarity: m.Sim}
	}
	return out
}
