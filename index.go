package fsjoin

import (
	"errors"
	"fmt"

	"fsjoin/internal/probeindex"
)

// ErrNoIndex is returned by LoadIndex when the directory holds no usable
// index for the given options — nothing saved, a different configuration,
// or a corrupt file. The caller should BuildIndex and Save.
var ErrNoIndex = errors.New("fsjoin: no usable index (build and save one)")

// IndexOptions configures a probe index. The similarity predicate is fixed
// at build time: one index answers exactly one (function, threshold,
// bitmap) configuration, and LoadIndex refuses an index saved under any
// other.
type IndexOptions struct {
	// Threshold is the similarity threshold θ in (0, 1]. Required.
	Threshold float64
	// Function is the similarity function (default Jaccard).
	Function Similarity
	// BitmapFilter toggles the per-record signature filter (default
	// BitmapAuto; see Options.BitmapFilter). Probe results are identical in
	// every mode.
	BitmapFilter BitmapFilterMode
	// BitmapWidth pins the signature width in bits (64, 128 or 256); 0
	// picks it from the corpus's mean record length.
	BitmapWidth int
}

func (o IndexOptions) internal() (probeindex.Options, error) {
	fn, err := o.Function.internal()
	if err != nil {
		return probeindex.Options{}, err
	}
	bm, err := Options{BitmapFilter: o.BitmapFilter, BitmapWidth: o.BitmapWidth}.bitmapConfig()
	if err != nil {
		return probeindex.Options{}, err
	}
	if o.Threshold <= 0 || o.Threshold > 1 {
		return probeindex.Options{}, fmt.Errorf("fsjoin: Threshold %v outside (0, 1]", o.Threshold)
	}
	return probeindex.Options{Fn: fn, Theta: o.Threshold, Bitmap: bm}, nil
}

// Match is one probe hit: an indexed record similar to the probe set.
type Match struct {
	// RID is the matched record's id: its position in the collection the
	// index was built from, or the id Insert returned.
	RID int
	// Common is the exact intersection size.
	Common int
	// Similarity is the exact score, computed by the same kernel the batch
	// joins use.
	Similarity float64
}

// IndexStats snapshots an index's serving counters.
type IndexStats struct {
	// Probes, Candidates and Hits are cumulative (they survive Save/Load):
	// probes served, postings/overlay candidates examined, matches
	// returned.
	Probes     int64
	Candidates int64
	Hits       int64
	// LogSize is the current side-log overlay size: records inserted plus
	// records tombstoned since the last build or Compact.
	LogSize int64
	// Records is the number of live records probes can match.
	Records int64
	// Compactions counts Compact calls.
	Compactions int64
}

// Index is a persistent probe index: the batch pipeline's filter stack
// (global token order, prefix postings with positions, bitmap signatures)
// built once over a collection and then served read-many. Probe answers a
// single-record similarity query in microseconds with results
// byte-identical to a full join restricted to that record. All methods are
// safe for concurrent use.
type Index struct {
	ix *probeindex.Index
}

// BuildIndex builds a probe index over a prepared collection. The
// collection's record ids (positions) become Match.RID values.
func BuildIndex(c *Collection, opt IndexOptions) (*Index, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, errors.New("fsjoin: nil collection")
	}
	ix, err := probeindex.Build(c.t, c.c.d.Token, iopt)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// LoadIndex restores an index previously saved into dir with Index.Save.
// The options must match the saved configuration; any mismatch, missing or
// damaged file returns an error wrapping ErrNoIndex (the loader verifies
// the file's SHA-256 trailer and every structural invariant before serving
// from it — a corrupt index is discarded, never trusted).
func LoadIndex(dir string, opt IndexOptions) (*Index, error) {
	iopt, err := opt.internal()
	if err != nil {
		return nil, err
	}
	ix, err := probeindex.Load(dir, iopt)
	if err != nil {
		if errors.Is(err, probeindex.ErrNoIndex) {
			return nil, fmt.Errorf("%w: %v", ErrNoIndex, err)
		}
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Save atomically persists the index (records, tombstones and side-log)
// into dir, so a later LoadIndex skips the build. Derived structures are
// rebuilt at load; the file carries a SHA-256 trailer.
func (x *Index) Save(dir string) error { return x.ix.Save(dir) }

// Probe returns every live indexed record whose similarity with the given
// token set reaches the index threshold, sorted by RID. The set may be
// unsorted, contain duplicates, or contain tokens the corpus never saw.
func (x *Index) Probe(set []string) []Match {
	return publishMatches(x.ix.Probe(set))
}

// ProbeBatch probes each set independently; element i of the result
// answers set i.
func (x *Index) ProbeBatch(sets [][]string) [][]Match {
	out := make([][]Match, len(sets))
	for i, set := range sets {
		out[i] = x.Probe(set)
	}
	return out
}

// ProbeRecord probes with an indexed record's own token set, excluding the
// record itself — the self-join result row for that record.
func (x *Index) ProbeRecord(rid int) ([]Match, error) {
	ms, err := x.ix.ProbeRecord(int32(rid))
	if err != nil {
		return nil, err
	}
	return publishMatches(ms), nil
}

// Insert adds a record to the index's side-log overlay and returns its new
// RID. The record is immediately probeable.
func (x *Index) Insert(set []string) int { return int(x.ix.Insert(set)) }

// Delete removes a record (built, loaded or inserted) from the index.
func (x *Index) Delete(rid int) error { return x.ix.Delete(int32(rid)) }

// Compact folds the side-log overlay back into the index's CSR base,
// recomputing the global token order and postings. Probe results are
// unchanged; serving pauses only for the rebuild.
func (x *Index) Compact() { x.ix.Compact() }

// Len returns the number of live records.
func (x *Index) Len() int { return x.ix.Len() }

// Stats snapshots the serving counters.
func (x *Index) Stats() IndexStats {
	s := x.ix.Stats()
	return IndexStats{
		Probes:      s.Probes,
		Candidates:  s.Candidates,
		Hits:        s.Hits,
		LogSize:     s.LogSize,
		Records:     s.Records,
		Compactions: s.Compactions,
	}
}

func publishMatches(ms []probeindex.Match) []Match {
	if ms == nil {
		return nil
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{RID: int(m.RID), Common: int(m.Common), Similarity: m.Sim}
	}
	return out
}
