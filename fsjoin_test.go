package fsjoin

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// corpus builds texts with planted duplicates.
func corpus(n int, seed int64) []string {
	words := strings.Fields("alpha beta gamma delta epsilon zeta eta theta iota kappa " +
		"lambda mu nu xi omicron pi rho sigma tau upsilon")
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(3) == 0 {
			base := strings.Fields(out[rng.Intn(i)])
			if len(base) > 1 && rng.Intn(2) == 0 {
				base = base[:len(base)-1]
			}
			base = append(base, words[rng.Intn(len(words))])
			out = append(out, strings.Join(base, " "))
			continue
		}
		k := rng.Intn(8) + 3
		var sb strings.Builder
		for j := 0; j < k; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		out = append(out, sb.String())
	}
	return out
}

func TestAllAlgorithmsAgree(t *testing.T) {
	texts := corpus(90, 1)
	algos := []Algorithm{FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, MassJoinMerge, MassJoinMergeLight}
	var want []Pair
	for i, algo := range algos {
		res, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Algorithm: algo, Nodes: 3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if i == 0 {
			want = res.Pairs
			if len(want) == 0 {
				t.Fatal("no pairs found — corpus too sparse")
			}
			continue
		}
		if len(res.Pairs) != len(want) {
			t.Fatalf("%v: %d pairs, want %d", algo, len(res.Pairs), len(want))
		}
		for j := range want {
			if res.Pairs[j].A != want[j].A || res.Pairs[j].B != want[j].B ||
				res.Pairs[j].Common != want[j].Common {
				t.Fatalf("%v: pair %d = %+v, want %+v", algo, j, res.Pairs[j], want[j])
			}
		}
	}
}

func TestApproxLSHJoin(t *testing.T) {
	texts := corpus(90, 1)
	exact, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Algorithm: ApproxLSHJoin, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[uint64]bool{}
	for _, p := range exact.Pairs {
		keys[uint64(uint32(p.A))<<32|uint64(uint32(p.B))] = true
	}
	for _, p := range approx.Pairs {
		if !keys[uint64(uint32(p.A))<<32|uint64(uint32(p.B))] {
			t.Fatalf("approx false positive: %+v", p)
		}
	}
	if float64(len(approx.Pairs)) < 0.9*float64(len(exact.Pairs)) {
		t.Fatalf("approx recall too low: %d of %d", len(approx.Pairs), len(exact.Pairs))
	}
	if _, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Algorithm: ApproxLSHJoin, Function: Dice}); err == nil {
		t.Fatal("approx with Dice accepted")
	}
}

func TestAllSimilarityFunctions(t *testing.T) {
	texts := corpus(60, 2)
	for _, fn := range []Similarity{Jaccard, Dice, Cosine} {
		res, err := SelfJoinStrings(texts, Options{Threshold: 0.8, Function: fn, Nodes: 3})
		if err != nil {
			t.Fatalf("fn %d: %v", fn, err)
		}
		for _, p := range res.Pairs {
			if p.Similarity < 0.8-1e-9 {
				t.Fatalf("fn %d: returned pair below threshold: %+v", fn, p)
			}
		}
	}
}

func TestSelfJoinSets(t *testing.T) {
	res, err := SelfJoinSets([][]string{
		{"a", "b", "c"},
		{"a", "b", "c", "d"},
		{"x", "y"},
	}, Options{Threshold: 0.7, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].A != 0 || res.Pairs[0].B != 1 || res.Pairs[0].Common != 3 {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
	if res.Stats.SimulatedTime <= 0 || res.Stats.ShuffleRecords <= 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
}

func TestRSJoin(t *testing.T) {
	dict := NewDictionary()
	r := dict.NewCollection([][]string{{"a", "b", "c"}, {"q", "w", "e"}})
	s := dict.NewCollection([][]string{{"a", "b", "c", "d"}, {"z", "z2"}})
	res, err := r.Join(s, Options{Threshold: 0.7, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].A != 0 || res.Pairs[0].B != 0 {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
}

func TestRSJoinRequiresSharedDictionary(t *testing.T) {
	r := NewDictionary().NewCollection([][]string{{"a"}})
	s := NewDictionary().NewCollection([][]string{{"a"}})
	if _, err := r.Join(s, Options{Threshold: 0.5}); err == nil {
		t.Fatal("cross-dictionary join accepted")
	}
}

func TestRSJoinBaselinesRejected(t *testing.T) {
	dict := NewDictionary()
	r := dict.NewCollection([][]string{{"a"}})
	s := dict.NewCollection([][]string{{"a"}})
	for _, algo := range []Algorithm{MassJoinMerge, MassJoinMergeLight} {
		_, err := r.Join(s, Options{Threshold: 0.5, Algorithm: algo})
		if !errors.Is(err, ErrSelfJoinOnly) {
			t.Fatalf("%v: err = %v, want ErrSelfJoinOnly", algo, err)
		}
	}
	// Every other algorithm accepts R-S input — including the overlapping
	// rid-space case above, where R#0 and S#0 are distinct records.
	for _, algo := range []Algorithm{FSJoin, FSJoinV, RIDPairsPPJoin, VSmartJoin, ApproxLSHJoin} {
		res, err := r.Join(s, Options{Threshold: 0.5, Algorithm: algo, Nodes: 2})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Pairs) != 1 || res.Pairs[0].A != 0 || res.Pairs[0].B != 0 {
			t.Fatalf("%v: pairs = %+v, want the single (0,0) cross pair", algo, res.Pairs)
		}
	}
}

func TestRSJoinRIDPairsMatchesFSJoin(t *testing.T) {
	dict := NewDictionary()
	r := dict.NewTextCollection(corpus(50, 21))
	s := dict.NewTextCollection(corpus(60, 22))
	fs, err := r.Join(s, Options{Threshold: 0.7, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	rid, err := r.Join(s, Options{Threshold: 0.7, Algorithm: RIDPairsPPJoin, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Pairs) != len(rid.Pairs) {
		t.Fatalf("fs %d pairs, ridpairs %d", len(fs.Pairs), len(rid.Pairs))
	}
	for i := range fs.Pairs {
		if fs.Pairs[i].A != rid.Pairs[i].A || fs.Pairs[i].B != rid.Pairs[i].B {
			t.Fatalf("pair %d differs: %+v vs %+v", i, fs.Pairs[i], rid.Pairs[i])
		}
	}
}

func TestInvalidOptions(t *testing.T) {
	texts := []string{"a b"}
	if _, err := SelfJoinStrings(texts, Options{Threshold: 0}); err == nil {
		t.Fatal("theta 0 accepted")
	}
	if _, err := SelfJoinStrings(texts, Options{Threshold: 0.5, Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := SelfJoinStrings(texts, Options{Threshold: 0.5, Function: Similarity(99)}); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestWorkBudgetSurfacesError(t *testing.T) {
	texts := corpus(80, 3)
	_, err := SelfJoinStrings(texts, Options{Threshold: 0.7, Algorithm: VSmartJoin, WorkBudget: 3, Nodes: 2})
	if err == nil {
		t.Fatal("budget exhaustion not surfaced")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		FSJoin:             "fs-join",
		FSJoinV:            "fs-join-v",
		RIDPairsPPJoin:     "ridpairs-ppjoin",
		VSmartJoin:         "v-smart-join",
		MassJoinMerge:      "massjoin-merge",
		MassJoinMergeLight: "massjoin-merge+light",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := SelfJoinStrings(nil, Options{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("pairs from empty input: %v", res.Pairs)
	}
}

func TestCollectionLen(t *testing.T) {
	c := NewDictionary().NewTextCollection([]string{"a b", "c"})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}
