package fsjoin

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fsjoin/internal/mapreduce"
)

// jobRecorder is a fault-free injector that records the distinct job names
// a run executes, in order — how the crash matrix below discovers every
// stage of an algorithm without knowing its internals.
type jobRecorder struct {
	mu   sync.Mutex
	seen map[string]bool
	jobs []string
}

func (r *jobRecorder) Decide(phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	return mapreduce.Fault{}
}

func (r *jobRecorder) DecideJob(job string, phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	r.mu.Lock()
	if !r.seen[job] {
		if r.seen == nil {
			r.seen = map[string]bool{}
		}
		r.seen[job] = true
		r.jobs = append(r.jobs, job)
	}
	r.mu.Unlock()
	return mapreduce.Fault{}
}

// jobKiller fails every real map attempt of one named job — a crash at
// that pipeline stage.
type jobKiller struct{ job string }

func (k jobKiller) Decide(phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	return mapreduce.Fault{}
}

func (k jobKiller) DecideJob(job string, phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	if job == k.job && phase == mapreduce.PhaseMap && attempt < mapreduce.SpeculativeAttempt {
		return mapreduce.Fault{Kind: mapreduce.FaultError, Msg: "injected crash"}
	}
	return mapreduce.Fault{}
}

// recoveryMatrix is every algorithm crossed with FS-Join's fragment join
// kernels, plus every R-S-capable algorithm in R-S mode.
func recoveryMatrix() []struct {
	name string
	opt  Options
	rs   bool
} {
	base := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	mk := func(name string, algo Algorithm, jm JoinMethod, rs bool) struct {
		name string
		opt  Options
		rs   bool
	} {
		o := base
		o.Algorithm = algo
		o.JoinMethod = jm
		return struct {
			name string
			opt  Options
			rs   bool
		}{name, o, rs}
	}
	return []struct {
		name string
		opt  Options
		rs   bool
	}{
		mk("fs-prefix", FSJoin, PrefixJoin, false),
		mk("fs-index", FSJoin, IndexJoin, false),
		mk("fs-loop", FSJoin, LoopJoin, false),
		mk("fs-v", FSJoinV, PrefixJoin, false),
		mk("ridpairs", RIDPairsPPJoin, PrefixJoin, false),
		mk("vsmart", VSmartJoin, PrefixJoin, false),
		mk("massjoin", MassJoinMerge, PrefixJoin, false),
		mk("massjoin-light", MassJoinMergeLight, PrefixJoin, false),
		mk("approx", ApproxLSHJoin, PrefixJoin, false),
		mk("fs-rs", FSJoin, PrefixJoin, true),
		mk("fs-v-rs", FSJoinV, PrefixJoin, true),
		mk("ridpairs-rs", RIDPairsPPJoin, PrefixJoin, true),
		mk("vsmart-rs", VSmartJoin, PrefixJoin, true),
		mk("approx-rs", ApproxLSHJoin, PrefixJoin, true),
	}
}

// runMatrixJoin executes one matrix entry: a self-join, or an R-S join
// over two halves of the corpus.
func runMatrixJoin(texts []string, opt Options, rs bool) (*Result, error) {
	if !rs {
		return SelfJoinStrings(texts, opt)
	}
	dict := NewDictionary()
	tok := func(ts []string) [][]string {
		out := make([][]string, len(ts))
		for i, t := range ts {
			out[i] = strings.Fields(t)
		}
		return out
	}
	r := dict.NewCollection(tok(texts[:len(texts)/2]))
	s := dict.NewCollection(tok(texts[len(texts)/2:]))
	return r.Join(s, opt)
}

// TestCrashResumeEquivalence is the acceptance suite for checkpoint
// durability: for every algorithm × join method, kill the run at each
// stage boundary, resume with the same checkpoint directory, and demand
// the resumed run (a) replays exactly the completed stages and (b) is
// byte-identical — pairs and deterministic statistics — to an
// uninterrupted run.
func TestCrashResumeEquivalence(t *testing.T) {
	texts := corpus(40, 7)
	type detStats struct {
		ShuffleRecords, ShuffleBytes, Candidates int64
	}
	det := func(s Stats) detStats {
		return detStats{s.ShuffleRecords, s.ShuffleBytes, s.Candidates}
	}
	for _, m := range recoveryMatrix() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			want, err := runMatrixJoin(texts, m.opt, m.rs)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}

			// Discover the pipeline's stages.
			rec := &jobRecorder{}
			opt := m.opt
			opt.Fault.injector = rec
			if _, err := runMatrixJoin(texts, opt, m.rs); err != nil {
				t.Fatalf("recording run: %v", err)
			}
			if len(rec.jobs) < 2 {
				t.Fatalf("recorded only %d stages (%v) — matrix entry proves nothing", len(rec.jobs), rec.jobs)
			}

			for k, job := range rec.jobs {
				dir := t.TempDir()

				// Crash at stage k: stages before it complete and checkpoint.
				crash := m.opt
				crash.CheckpointDir = dir
				crash.Fault.injector = jobKiller{job: job}
				crash.Fault.MaxAttempts = 2
				if _, err := runMatrixJoin(texts, crash, m.rs); err == nil {
					t.Fatalf("stage %d (%s): injected crash did not fail the join", k, job)
				} else if !strings.Contains(err.Error(), "injected crash") {
					t.Fatalf("stage %d (%s): failed with %v, want the injected crash", k, job, err)
				}

				// Resume fault-free from the same directory.
				resume := m.opt
				resume.CheckpointDir = dir
				got, err := runMatrixJoin(texts, resume, m.rs)
				if err != nil {
					t.Fatalf("stage %d (%s): resume: %v", k, job, err)
				}
				if !reflect.DeepEqual(got.Pairs, want.Pairs) {
					t.Fatalf("stage %d (%s): resumed pairs differ (%d vs %d)",
						k, job, len(got.Pairs), len(want.Pairs))
				}
				if g, w := det(got.Stats), det(want.Stats); g != w {
					t.Fatalf("stage %d (%s): resumed stats differ\n got %+v\nwant %+v", k, job, g, w)
				}
				if got.Stats.CheckpointHits != int64(k) {
					t.Errorf("stage %d (%s): resume replayed %d stages, want %d",
						k, job, got.Stats.CheckpointHits, k)
				}
				if wantMiss := int64(len(rec.jobs) - k); got.Stats.CheckpointMisses != wantMiss {
					t.Errorf("stage %d (%s): resume executed %d stages, want %d",
						k, job, got.Stats.CheckpointMisses, wantMiss)
				}
			}
		})
	}
}

// TestResumeAfterMidStageKill models a writer dying mid-save: the
// checkpoint directory holds completed stages plus a partial temp file.
// The temp file must be swept, never loaded, and the resume exact.
func TestResumeAfterMidStageKill(t *testing.T) {
	texts := corpus(40, 7)
	opt := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	want, err := SelfJoinStrings(texts, opt)
	if err != nil {
		t.Fatal(err)
	}

	rec := &jobRecorder{}
	o := opt
	o.Fault.injector = rec
	if _, err := SelfJoinStrings(texts, o); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	crash := opt
	crash.CheckpointDir = dir
	crash.Fault.injector = jobKiller{job: rec.jobs[1]}
	crash.Fault.MaxAttempts = 2
	if _, err := SelfJoinStrings(texts, crash); err == nil {
		t.Fatal("injected crash did not fail the join")
	}
	// The "mid-stage" part: a partial write the dying stage left behind.
	tmp := filepath.Join(dir, ".tmp-ckpt-partial")
	if err := os.WriteFile(tmp, []byte("torn stage output"), 0o600); err != nil {
		t.Fatal(err)
	}

	resume := opt
	resume.CheckpointDir = dir
	got, err := SelfJoinStrings(texts, resume)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatal("resume after mid-stage kill produced different pairs")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("partial checkpoint temp file survived the resume")
	}
}

// TestResumeRejectsCorruptCheckpoint corrupts a persisted stage and
// asserts the next run recomputes it rather than trusting the bytes.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	texts := corpus(40, 7)
	dir := t.TempDir()
	opt := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1, CheckpointDir: dir}
	want, err := SelfJoinStrings(texts, opt)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoints written: %v (%v)", files, err)
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/3] ^= 0x80
		if err := os.WriteFile(f, raw, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	got, err := SelfJoinStrings(texts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatal("run over corrupt checkpoints produced different pairs")
	}
	if got.Stats.CheckpointHits != 0 {
		t.Errorf("corrupt checkpoints replayed: %d hits", got.Stats.CheckpointHits)
	}
}

// TestCheckpointSaltCoversOptions: the same directory reused with a
// different threshold must recompute — never replay the old answer.
func TestCheckpointSaltCoversOptions(t *testing.T) {
	texts := corpus(40, 7)
	dir := t.TempDir()
	a := Options{Threshold: 0.9, Nodes: 3, LocalParallelism: 1, CheckpointDir: dir}
	if _, err := SelfJoinStrings(texts, a); err != nil {
		t.Fatal(err)
	}
	b := a
	b.Threshold = 0.6
	got, err := SelfJoinStrings(texts, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.CheckpointHits != 0 {
		t.Fatalf("replayed %d stages across a threshold change", got.Stats.CheckpointHits)
	}
	clean, err := SelfJoinStrings(texts, Options{Threshold: 0.6, Nodes: 3, LocalParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Pairs, clean.Pairs) {
		t.Fatal("threshold change over a reused directory produced wrong pairs")
	}
}

// recordPoisoner injects a FaultRecordPanic on the first record of map
// task 0 of one job (or of every job when job is empty) — the public-API
// poison-record scenario.
type recordPoisoner struct {
	job      string
	allTasks bool
}

func (p recordPoisoner) Decide(phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	return mapreduce.Fault{}
}

func (p recordPoisoner) DecideJob(job string, phase mapreduce.Phase, task, attempt int) mapreduce.Fault {
	if phase != mapreduce.PhaseMap {
		return mapreduce.Fault{}
	}
	if p.job != "" && job != p.job {
		return mapreduce.Fault{}
	}
	if !p.allTasks && task != 0 {
		return mapreduce.Fault{}
	}
	return mapreduce.Fault{Kind: mapreduce.FaultRecordPanic, Record: 0, Msg: "poisoned input record"}
}

// TestSkipBadRecordsPublicAPI poisons one record of the first stage and
// asserts the public skip knobs complete the join, report exactly the
// quarantined record, and emit only pairs the clean run also found
// (verification keeps skipped runs sound: every reported similarity is
// real, so skipping input can only lose pairs, never invent them).
func TestSkipBadRecordsPublicAPI(t *testing.T) {
	texts := corpus(40, 7)
	base := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	want, err := SelfJoinStrings(texts, base)
	if err != nil {
		t.Fatal(err)
	}
	rec := &jobRecorder{}
	o := base
	o.Fault.injector = rec
	if _, err := SelfJoinStrings(texts, o); err != nil {
		t.Fatal(err)
	}

	var quarantined []QuarantinedRecord
	opt := base
	opt.Fault.injector = recordPoisoner{job: rec.jobs[0]}
	opt.Fault.MaxAttempts = 2
	opt.Fault.SkipBadRecords = true
	opt.Fault.MaxSkippedRecords = 1000
	opt.Fault.OnQuarantine = func(r QuarantinedRecord) { quarantined = append(quarantined, r) }
	got, err := SelfJoinStrings(texts, opt)
	if err != nil {
		t.Fatalf("poisoned join with skip enabled: %v", err)
	}
	// An index-keyed injected fault re-fires on whatever record lands at
	// index 0 after each quarantine, so it drains task 0's split; every
	// report must still pinpoint its record, and the public counter must
	// agree with the sink. (Exact single-record quarantine with
	// content-keyed poisons is proven at the engine level in
	// internal/mapreduce/skip_test.go.)
	if len(quarantined) == 0 {
		t.Fatal("no records quarantined")
	}
	for _, q := range quarantined {
		if q.Job != rec.jobs[0] || q.Phase != "map" || q.Task != 0 || !strings.Contains(q.Err, "poisoned") {
			t.Errorf("quarantine report %+v does not identify the poisoned record", q)
		}
	}
	if got.Stats.RecordsSkipped != int64(len(quarantined)) {
		t.Errorf("Stats.RecordsSkipped = %d, sink saw %d", got.Stats.RecordsSkipped, len(quarantined))
	}
	baseline := map[string]bool{}
	for _, p := range want.Pairs {
		baseline[fmt.Sprintf("%d|%d", p.A, p.B)] = true
	}
	for _, p := range got.Pairs {
		if !baseline[fmt.Sprintf("%d|%d", p.A, p.B)] {
			t.Fatalf("skipped run invented pair %+v absent from the clean run", p)
		}
	}

	// Without skip mode the same poison is fatal.
	noSkip := opt
	noSkip.Fault.SkipBadRecords = false
	noSkip.Fault.OnQuarantine = nil
	if _, err := SelfJoinStrings(texts, noSkip); err == nil {
		t.Fatal("poisoned join without skip mode should fail")
	}
}

// TestMaxSkippedRecordsAborts: poison more records than the budget allows
// and demand a loud abort instead of quiet data loss.
func TestMaxSkippedRecordsAborts(t *testing.T) {
	texts := corpus(40, 7)
	opt := Options{Threshold: 0.7, Nodes: 3, LocalParallelism: 1}
	opt.Fault.injector = recordPoisoner{allTasks: true} // every map task of every stage
	opt.Fault.MaxAttempts = 2
	opt.Fault.SkipBadRecords = true
	opt.Fault.MaxSkippedRecords = 1
	_, err := SelfJoinStrings(texts, opt)
	if err == nil || !strings.Contains(err.Error(), "MaxSkippedRecords") {
		t.Fatalf("err = %v, want MaxSkippedRecords abort", err)
	}
}
