package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateImmediateAdmission(t *testing.T) {
	g := New(100, 2, 4)
	a, err := g.Acquire(context.Background(), 60, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Acquire(context.Background(), 40, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Running != 2 || st.MemoryInUse != 100 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want 2 running / 100 in use", st)
	}
	a.Release()
	b.Release()
	if st := g.Stats(); st.Running != 0 || st.MemoryInUse != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestGateLeaseTooLargeIsShed(t *testing.T) {
	g := New(100, 2, 4)
	if _, err := g.Acquire(context.Background(), 101, 0, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := g.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

func TestGateFullQueueSheds(t *testing.T) {
	g := New(100, 1, 0)
	l, err := g.Acquire(context.Background(), 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if _, err := g.Acquire(context.Background(), 10, 0, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

func TestGateQueueTimeout(t *testing.T) {
	g := New(100, 1, 4)
	l, err := g.Acquire(context.Background(), 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	start := time.Now()
	if _, err := g.Acquire(context.Background(), 10, 0, 5*time.Millisecond); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far longer than the bound")
	}
	if st := g.Stats(); st.TimedOut != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 timed out, empty queue", st)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := New(100, 1, 4)
	l, err := g.Acquire(context.Background(), 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(2 * time.Millisecond); cancel() }()
	if _, err := g.Acquire(ctx, 10, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", st.Cancelled)
	}
}

// TestGateWakesWaiterOnRelease proves a queued request is admitted as soon
// as a lease that frees enough of the pool returns.
func TestGateWakesWaiterOnRelease(t *testing.T) {
	g := New(100, 2, 4)
	l, err := g.Acquire(context.Background(), 80, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		l2, err := g.Acquire(context.Background(), 50, 0, 0)
		if err == nil {
			l2.Release()
		}
		got <- err
	}()
	// The waiter must be parked (50 > 20 free), not admitted.
	deadline := time.After(2 * time.Second)
	for g.Stats().Queued == 0 {
		select {
		case <-deadline:
			t.Fatal("second acquire never queued")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	l.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
}

// TestGatePriorityOrder parks three waiters behind a full gate and checks
// they are admitted in (priority desc, arrival) order.
func TestGatePriorityOrder(t *testing.T) {
	g := New(10, 1, 8)
	hold, err := g.Acquire(context.Background(), 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	admit := func(id, priority int) {
		defer wg.Done()
		l, err := g.Acquire(context.Background(), 10, priority, 0)
		if err != nil {
			t.Errorf("waiter %d: %v", id, err)
			return
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
		l.Release()
	}
	for i, p := range []int{0, 5, 1} { // ids 0..2 queue in this order
		wg.Add(1)
		go admit(i, p)
		// Ensure deterministic arrival order before queuing the next.
		deadline := time.After(2 * time.Second)
		for g.Stats().Queued != i+1 {
			select {
			case <-deadline:
				t.Fatalf("waiter %d never queued", i)
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	hold.Release()
	wg.Wait()
	want := []int{1, 2, 0} // priority 5, then FIFO among priority 1 and 0
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("admission order = %v, want %v", order, want)
	}
}

func TestGateCloseWakesQueuedAndRejectsNew(t *testing.T) {
	g := New(10, 1, 8)
	hold, err := g.Acquire(context.Background(), 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background(), 5, 0, 0)
		got <- err
	}()
	deadline := time.After(2 * time.Second)
	for g.Stats().Queued == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	g.Close()
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter err = %v, want ErrClosed", err)
	}
	if _, err := g.Acquire(context.Background(), 1, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close acquire err = %v, want ErrClosed", err)
	}
	// Existing leases survive a close and can still release.
	hold.Release()
	g.Close() // idempotent
}

// TestGateStress hammers the gate from many goroutines under -race and
// checks conservation: the pool is whole once everything is released.
func TestGateStress(t *testing.T) {
	g := New(1000, 4, 64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				l, err := g.Acquire(context.Background(), int64(50+10*(i%5)), i%3, time.Second)
				if err != nil {
					continue
				}
				l.Release()
			}
		}(i)
	}
	wg.Wait()
	st := g.Stats()
	if st.Running != 0 || st.MemoryInUse != 0 || st.Queued != 0 {
		t.Fatalf("pool not whole after stress: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatal("stress admitted nothing")
	}
}
