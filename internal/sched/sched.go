// Package sched is the serving layer's admission control: a weighted
// semaphore over a global memory pool plus a bounded priority/FIFO wait
// queue with typed load shedding. Each admitted job holds a Lease — a
// slice of the pool plus one concurrency slot — for its whole run; jobs
// that cannot be admitted are either queued (bounded, priority-ordered,
// deadline- and timeout-aware) or shed immediately with a typed error so
// callers can distinguish "try later" from "never". DESIGN.md §10
// documents the model; fsjoin.Server is the public face.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Typed admission failures. The public facade maps these onto its own
// sentinels; inside the repo they are matched with errors.Is.
var (
	// ErrOverloaded sheds a request because the wait queue is full or the
	// request can never fit the pool. The request did no work.
	ErrOverloaded = errors.New("sched: overloaded")
	// ErrQueueTimeout sheds a request that waited longer than its
	// queue-wait bound. The request did no work.
	ErrQueueTimeout = errors.New("sched: queue-wait timeout")
	// ErrClosed rejects requests arriving at — or queued on — a closed
	// gate (graceful drain: queued work is cancelled, running leases are
	// left to finish).
	ErrClosed = errors.New("sched: gate closed")
)

// Gate is the admission gate: Capacity bytes of memory and Slots
// concurrent leases, granted in (priority desc, arrival) order through a
// bounded wait queue. All methods are safe for concurrent use.
type Gate struct {
	capacity int64
	slots    int
	maxQueue int

	mu        sync.Mutex
	memFree   int64
	slotsFree int
	waiters   waiterHeap
	seq       uint64
	closed    bool

	admitted  int64
	shed      int64
	timedOut  int64
	cancelled int64
	peakQueue int
}

// Stats is a point-in-time snapshot of a gate's activity.
type Stats struct {
	// Admitted counts leases granted since creation.
	Admitted int64
	// Shed counts requests rejected with ErrOverloaded.
	Shed int64
	// TimedOut counts requests rejected with ErrQueueTimeout.
	TimedOut int64
	// Cancelled counts queued requests abandoned by their context.
	Cancelled int64
	// Running is the number of leases currently held.
	Running int
	// Queued is the current wait-queue depth; PeakQueued its high-water
	// mark.
	Queued     int
	PeakQueued int
	// MemoryInUse is the leased share of the pool.
	MemoryInUse int64
}

// New returns a gate over a capacity-byte memory pool with the given
// concurrency slots and wait-queue bound. maxQueue 0 means no queue:
// anything that cannot be admitted immediately is shed.
func New(capacity int64, slots, maxQueue int) *Gate {
	if capacity < 0 {
		capacity = 0
	}
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{
		capacity: capacity, slots: slots, maxQueue: maxQueue,
		memFree: capacity, slotsFree: slots,
	}
}

// Lease is one admitted request's hold on the gate: mem bytes of the pool
// plus one slot, released exactly once by Release.
type Lease struct {
	g    *Gate
	mem  int64
	once sync.Once
}

// Bytes returns the lease's memory grant.
func (l *Lease) Bytes() int64 { return l.mem }

// Release returns the lease to the pool and wakes admissible waiters.
// Idempotent.
func (l *Lease) Release() {
	l.once.Do(func() {
		g := l.g
		g.mu.Lock()
		g.memFree += l.mem
		g.slotsFree++
		g.grantLocked()
		g.mu.Unlock()
	})
}

// waiter is one queued request. ready is closed when the request is
// resolved; outcome (granted or err) is read back under the gate mutex.
type waiter struct {
	mem      int64
	priority int
	seq      uint64
	ready    chan struct{}
	granted  bool
	err      error
	index    int // heap index; -1 once popped or removed
}

// waiterHeap orders waiters by (priority desc, seq asc) — strict
// head-of-line: the gate only ever grants the top waiter, so a large
// lease at the head is never starved by smaller requests behind it.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old) - 1
	w := old[n]
	old[n] = nil
	w.index = -1
	*h = old[:n]
	return w
}

// grantLocked admits queued waiters in heap order while the head fits.
func (g *Gate) grantLocked() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if w.mem > g.memFree || g.slotsFree == 0 {
			return
		}
		heap.Pop(&g.waiters)
		g.memFree -= w.mem
		g.slotsFree--
		g.admitted++
		w.granted = true
		close(w.ready)
	}
}

// Acquire admits one request for mem bytes, blocking in the bounded wait
// queue when the gate is saturated. queueTimeout > 0 bounds the wait;
// ctx cancels it. A request that can never fit (mem exceeds the whole
// pool) and a request arriving at a full queue are shed immediately with
// ErrOverloaded; an expired wait returns ErrQueueTimeout; a closed gate
// returns ErrClosed. On success the caller owns the returned Lease.
func (g *Gate) Acquire(ctx context.Context, mem int64, priority int, queueTimeout time.Duration) (*Lease, error) {
	if mem < 0 {
		mem = 0
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClosed
	}
	if mem > g.capacity {
		g.shed++
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: lease of %d bytes exceeds the %d-byte pool", ErrOverloaded, mem, g.capacity)
	}
	if len(g.waiters) == 0 && mem <= g.memFree && g.slotsFree > 0 {
		g.memFree -= mem
		g.slotsFree--
		g.admitted++
		g.mu.Unlock()
		return &Lease{g: g, mem: mem}, nil
	}
	if len(g.waiters) >= g.maxQueue {
		g.shed++
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: admission queue full (%d waiting)", ErrOverloaded, g.maxQueue)
	}
	w := &waiter{mem: mem, priority: priority, seq: g.seq, ready: make(chan struct{})}
	g.seq++
	heap.Push(&g.waiters, w)
	if len(g.waiters) > g.peakQueue {
		g.peakQueue = len(g.waiters)
	}
	g.mu.Unlock()

	var timeout <-chan time.Time
	if queueTimeout > 0 {
		t := time.NewTimer(queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-w.ready:
	case <-timeout:
		if err := g.abandon(w, ErrQueueTimeout, &g.timedOut); err != nil {
			return nil, err
		}
	case <-ctxDone:
		if err := g.abandon(w, ctx.Err(), &g.cancelled); err != nil {
			return nil, err
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.err != nil {
		return nil, w.err
	}
	return &Lease{g: g, mem: w.mem}, nil
}

// abandon removes a waiter whose timer or context fired. It returns nil
// when the grant won the race — the caller then owns the lease after all
// — and the shed error (counting it in the given counter) otherwise.
func (g *Gate) abandon(w *waiter, cause error, counter *int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted || w.err != nil {
		return nil // resolved concurrently; outcome read by the caller
	}
	heap.Remove(&g.waiters, w.index)
	*counter++
	return cause
}

// Close drains the gate: subsequent Acquires fail with ErrClosed and
// every queued waiter is woken with ErrClosed. Leases already granted
// stay valid until released. Idempotent.
func (g *Gate) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, w := range g.waiters {
		w.index = -1
		w.err = ErrClosed
		close(w.ready)
	}
	g.waiters = nil
}

// Stats snapshots the gate's counters and occupancy.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Admitted: g.admitted, Shed: g.shed, TimedOut: g.timedOut,
		Cancelled: g.cancelled,
		Running:   g.slots - g.slotsFree,
		Queued:    len(g.waiters), PeakQueued: g.peakQueue,
		MemoryInUse: g.capacity - g.memFree,
	}
}
