// Package testutil provides shared helpers for the correctness tests:
// deterministic random collections with frequent overlaps (so joins return
// non-trivial results) and a small cluster model to keep task counts low.
package testutil

import (
	"math/rand"
	"testing"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/result"
	"fsjoin/internal/tokens"
)

// RandomCollection builds n records over a vocab-sized token domain with
// lengths in [1, maxLen]; about a third of the records are near-duplicates
// of earlier ones so that similarity joins produce results.
func RandomCollection(n, vocab, maxLen int, seed int64) *tokens.Collection {
	rng := rand.New(rand.NewSource(seed))
	c := &tokens.Collection{}
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(3) == 0 {
			base := c.Records[rng.Intn(i)]
			ids := append([]tokens.ID{}, base.Tokens...)
			if len(ids) > 1 && rng.Intn(2) == 0 {
				ids = ids[:len(ids)-1]
			}
			ids = append(ids, tokens.ID(rng.Intn(vocab)))
			c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
			continue
		}
		l := rng.Intn(maxLen) + 1
		ids := make([]tokens.ID, l)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(vocab))
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
	}
	return c
}

// SmallCluster returns a 3-node cost model to keep per-job task counts low
// in tests.
func SmallCluster() *mapreduce.Cluster {
	cl := mapreduce.DefaultCluster()
	cl.Nodes = 3
	return cl
}

// AssertSameResults fails the test when got differs from the oracle's want
// (both need not be pre-sorted).
func AssertSameResults(t *testing.T, label string, got, want []result.Pair) {
	t.Helper()
	g := append([]result.Pair{}, got...)
	w := append([]result.Pair{}, want...)
	result.Sort(g)
	result.Sort(w)
	if diffs := result.Diff(g, w, 10); len(diffs) != 0 {
		t.Errorf("%s: got %d results, oracle %d; diffs:", label, len(g), len(w))
		for _, d := range diffs {
			t.Errorf("  %s", d)
		}
	}
}
