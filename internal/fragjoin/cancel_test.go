package fragjoin

import (
	"context"
	"errors"
	"testing"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// cancelSegs builds enough pairable segments that every kernel performs
// well over a thousand comparisons — past the engine's cancellation
// stride. Token 0 is shared by all segments, so the inverted-list kernels
// see every prior segment as a candidate in every probe round.
func cancelSegs(n int) []Seg {
	segs := make([]Seg, n)
	for i := range segs {
		toks := []tokens.ID{0, tokens.ID(i%7 + 8), tokens.ID(i%7 + 16)}
		segs[i] = Seg{RID: int32(i), StrLen: 3, Tokens: toks}
	}
	return segs
}

// TestKernelsCancelMidFragment proves every kernel aborts mid-fragment
// when the job context is already cancelled: the panic the engine's guard
// recovers carries context.Canceled. This is the satellite's "deadline
// fires on a large fragment" path in isolation.
func TestKernelsCancelMidFragment(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{Loop, Index, Prefix} {
		t.Run(m.String(), func(t *testing.T) {
			mctx := &mapreduce.Context{Job: mapreduce.Config{Context: ctx}}
			p := Params{Fn: similarity.Jaccard, Theta: 0.3, Method: m}
			var recovered error
			func() {
				defer func() {
					if r := recover(); r != nil {
						if err, ok := r.(error); ok {
							recovered = err
							return
						}
						t.Fatalf("kernel panicked with non-error %v", r)
					}
				}()
				Join(mctx, cancelSegs(120), p, func(a, b *Seg, c int) {})
			}()
			if !errors.Is(recovered, context.Canceled) {
				t.Fatalf("recovered = %v, want context.Canceled", recovered)
			}
		})
	}
}

// TestKernelsNilContextUncancellable pins the nil-safety of the kernels'
// cancellation points: ctx-less callers (unit tests, standalone use) run
// to completion.
func TestKernelsNilContextUncancellable(t *testing.T) {
	for _, m := range []Method{Loop, Index, Prefix} {
		pairs := 0
		Join(nil, cancelSegs(120), Params{Fn: similarity.Jaccard, Theta: 0.3, Method: m},
			func(a, b *Seg, c int) { pairs++ })
		if pairs == 0 {
			t.Fatalf("%s: no pairs emitted from an overlapping corpus", m)
		}
	}
}
