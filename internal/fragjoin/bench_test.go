package fragjoin

// Kernel regression benchmarks: the slice-based kernels against verbatim
// copies of the map-based kernels they replaced. The legacy implementation
// is kept here (test-only) as the allocs/op and ns/op baseline recorded in
// BENCH_PR1.json; TestLegacyKernelEquivalence pins the two to identical
// output.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// legacyJoin is the pre-optimisation kernel: inverted lists as
// map[tokens.ID][]int, candidate counts as map[int]int, candidate index
// slices reallocated per probe round, every intersection a sorted merge.
func legacyJoin(segs []Seg, p Params, emit Emit) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Origin != segs[j].Origin {
			return segs[i].Origin < segs[j].Origin
		}
		return segs[i].RID < segs[j].RID
	})
	j := &legacyJoiner{p: p, emit: emit}
	switch p.Method {
	case Loop:
		j.loop(segs)
	case Index:
		j.index(segs)
	case Prefix:
		j.prefix(segs)
	}
}

type legacyJoiner struct {
	p    Params
	emit Emit
}

func (j *legacyJoiner) pairable(a, b *Seg) bool {
	if j.p.RS {
		if a.Origin == b.Origin {
			return false
		}
	} else if a.RID == b.RID {
		return false
	}
	return partition.Joinable(a.Role, b.Role)
}

func (j *legacyJoiner) lengthPrune(a, b *Seg) bool {
	if j.p.Filters.Has(filters.StrL) && filters.StrLPrune(j.p.Fn, j.p.Theta, int(a.StrLen), int(b.StrLen)) {
		return true
	}
	if j.p.Filters.Has(filters.SegL) && filters.SegLPrune(j.p.Fn, j.p.Theta, a.Meta(), b.Meta()) {
		return true
	}
	return false
}

func (j *legacyJoiner) finish(a, b *Seg, c int) {
	if c == 0 {
		return
	}
	if j.p.Filters.Has(filters.SegI) && filters.SegIPrune(j.p.Fn, j.p.Theta, c, a.Meta(), b.Meta()) {
		return
	}
	if j.p.Filters.Has(filters.SegD) && filters.SegDPrune(j.p.Fn, j.p.Theta, c, a.Meta(), b.Meta()) {
		return
	}
	x, y := orient(a, b)
	j.emit(x, y, c)
}

func (j *legacyJoiner) loop(segs []Seg) {
	for i := range segs {
		for k := i + 1; k < len(segs); k++ {
			a, b := &segs[i], &segs[k]
			if !j.pairable(a, b) {
				continue
			}
			if j.lengthPrune(a, b) {
				continue
			}
			j.finish(a, b, tokens.Intersect(a.Tokens, b.Tokens))
		}
	}
}

func (j *legacyJoiner) index(segs []Seg) {
	inv := make(map[tokens.ID][]int)
	counts := make(map[int]int)
	for k := range segs {
		b := &segs[k]
		clear(counts)
		for _, t := range b.Tokens {
			for _, i := range inv[t] {
				counts[i]++
			}
		}
		j.drain(segs, counts, k, nil)
		for _, t := range b.Tokens {
			inv[t] = append(inv[t], k)
		}
	}
}

func (j *legacyJoiner) prefix(segs []Seg) {
	inv := make(map[tokens.ID][]int)
	seen := make(map[int]int)
	for k := range segs {
		b := &segs[k]
		var plen int
		if j.p.PaperPrefix {
			plen = filters.SegPrefixLenNaive(j.p.Theta, b.Meta())
		} else {
			plen = filters.SegPrefixLen(j.p.Fn, j.p.Theta, b.Meta())
		}
		clear(seen)
		for _, t := range b.Tokens[:plen] {
			for _, i := range inv[t] {
				seen[i]++
			}
		}
		j.drain(segs, seen, k, func(a, b *Seg) int { return tokens.Intersect(a.Tokens, b.Tokens) })
		for _, t := range b.Tokens[:plen] {
			inv[t] = append(inv[t], k)
		}
	}
}

func (j *legacyJoiner) drain(segs []Seg, counts map[int]int, k int, intersect func(a, b *Seg) int) {
	if len(counts) == 0 {
		return
	}
	idxs := make([]int, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	b := &segs[k]
	for _, i := range idxs {
		a := &segs[i]
		if !j.pairable(a, b) {
			continue
		}
		if j.lengthPrune(a, b) {
			continue
		}
		c := counts[i]
		if intersect != nil {
			c = intersect(a, b)
		}
		j.finish(a, b, c)
	}
}

// benchFragment builds one realistic fragment: n segments whose tokens are
// dense dictionary ranks confined to a vertical range of the given span.
func benchFragment(n, span int, seed int64) []Seg {
	rng := rand.New(rand.NewSource(seed))
	segs := make([]Seg, 0, n)
	for i := 0; i < n; i++ {
		segLen := rng.Intn(12) + 2
		seen := map[tokens.ID]bool{}
		toks := make([]tokens.ID, 0, segLen)
		for len(toks) < segLen {
			t := tokens.ID(rng.Intn(span))
			if !seen[t] {
				seen[t] = true
				toks = append(toks, t)
			}
		}
		sort.Slice(toks, func(a, b int) bool { return toks[a] < toks[b] })
		head, tail := rng.Intn(12), rng.Intn(12)
		segs = append(segs, Seg{
			RID:    int32(i),
			StrLen: int32(segLen + head + tail),
			Head:   int32(head),
			Tail:   int32(tail),
			Tokens: toks,
		})
	}
	return segs
}

func benchParams(m Method) Params {
	return Params{Fn: similarity.Jaccard, Theta: 0.8, Filters: filters.All, Method: m}
}

// TestLegacyKernelEquivalence pins the optimised kernels to the map-based
// originals they replaced: identical pairs, identical counts, all methods.
func TestLegacyKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		segs := randomFragment(rng, rng.Intn(40)+2, trial%2 == 1)
		for _, m := range []Method{Loop, Index, Prefix} {
			p := benchParams(m)
			p.RS = trial%2 == 1
			got := collect(segs, p)
			cp := make([]Seg, len(segs))
			copy(cp, segs)
			var want []emitted
			legacyJoin(cp, p, func(a, b *Seg, c int) {
				want = append(want, emitted{a.RID, b.RID, c})
			})
			sort.Slice(want, func(i, j int) bool {
				if want[i].a != want[j].a {
					return want[i].a < want[j].a
				}
				return want[i].b < want[j].b
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d method %v: %d pairs vs legacy %d", trial, m, len(got), len(want))
			}
		}
	}
}

// BenchmarkKernels compares the slice-based kernels — with the bitmap
// signature filter on ("new", the default) and forced off ("nobitmap") —
// against the legacy map-based versions on the same fragment; allocs/op
// and the loop kernel's legacy ratio are the headlines.
func BenchmarkKernels(b *testing.B) {
	segs := benchFragment(600, 4096, 1)
	for _, m := range []Method{Index, Prefix, Loop} {
		m := m
		sink := 0
		emit := func(a, bs *Seg, c int) { sink += c }
		run := func(name string, p Params, join func([]Seg, Params, Emit)) {
			b.Run(m.String()+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				cp := make([]Seg, len(segs))
				for i := 0; i < b.N; i++ {
					copy(cp, segs)
					join(cp, p, emit)
				}
			})
		}
		newJoin := func(s []Seg, p Params, e Emit) { Join(nil, s, p, e) }
		on := benchParams(m)
		on.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOn}
		off := benchParams(m)
		off.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOff}
		run("new", on, newJoin)
		run("nobitmap", off, newJoin)
		run("legacy", off, legacyJoin)
	}
}
