package fragjoin

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// randomFragment builds one fragment's segments from random records split
// at a fixed pivot, all metadata consistent.
func randomFragment(rng *rand.Rand, n int, rs bool) []Seg {
	segs := make([]Seg, 0, n)
	for i := 0; i < n; i++ {
		segLen := rng.Intn(8) + 1
		head := rng.Intn(10)
		tail := rng.Intn(10)
		toks := make([]tokens.ID, 0, segLen)
		seen := map[tokens.ID]bool{}
		for len(toks) < segLen {
			t := tokens.ID(rng.Intn(25))
			if !seen[t] {
				seen[t] = true
				toks = append(toks, t)
			}
		}
		sort.Slice(toks, func(a, b int) bool { return toks[a] < toks[b] })
		var origin uint8
		if rs && rng.Intn(2) == 0 {
			origin = 1
		}
		role := partition.RoleRegion
		switch rng.Intn(3) {
		case 1:
			role = partition.RoleSmall
		case 2:
			role = partition.RoleLarge
		}
		segs = append(segs, Seg{
			RID:    int32(i),
			Origin: origin,
			Role:   role,
			StrLen: int32(segLen + head + tail),
			Head:   int32(head),
			Tail:   int32(tail),
			Tokens: toks,
		})
	}
	return segs
}

type emitted struct {
	a, b int32
	c    int
}

func collect(segs []Seg, p Params) []emitted {
	// Copy segments: Join sorts its input.
	cp := make([]Seg, len(segs))
	copy(cp, segs)
	var out []emitted
	Join(nil, cp, p, func(a, b *Seg, c int) {
		out = append(out, emitted{a.RID, b.RID, c})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}

// TestLoopIndexEquivalent: Loop and Index emit identical partials under
// every filter set and join mode.
func TestLoopIndexEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		rs := trial%2 == 0
		segs := randomFragment(rng, rng.Intn(20)+2, rs)
		for _, fset := range []filters.Set{0, filters.StrL, filters.All &^ filters.Prefix, filters.All} {
			base := Params{
				Fn:      similarity.Jaccard,
				Theta:   float64(rng.Intn(5)+5) / 10,
				Filters: fset,
				RS:      rs,
			}
			loop := base
			loop.Method = Loop
			index := base
			index.Method = Index
			a, b := collect(segs, loop), collect(segs, index)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("loop vs index diverge (trial %d, filters %v):\n%v\n%v",
					trial, fset, a, b)
			}
		}
	}
}

// TestPrefixSubsetWithJustifiedMisses: the lossless Prefix kernel emits a
// subset of Index's partials with exact counts, and every skipped pair has
// a fragment overlap below the guaranteed minimum of any θ-similar pair
// (c < max(1, L(s), L(t))) — so final join results are unaffected.
func TestPrefixSubsetWithJustifiedMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		segs := randomFragment(rng, rng.Intn(20)+2, false)
		theta := float64(rng.Intn(5)+5) / 10
		base := Params{Fn: similarity.Jaccard, Theta: theta}
		idx := base
		idx.Method = Index
		pfx := base
		pfx.Method = Prefix
		all := collect(segs, idx)
		found := map[[2]int32]int{}
		for _, e := range collect(segs, pfx) {
			found[[2]int32{e.a, e.b}] = e.c
		}
		meta := map[int32]Seg{}
		for _, s := range segs {
			meta[s.RID] = s
		}
		required := func(s Seg) int {
			l := int(mathCeil(similarity.Jaccard.MinOverlapAnyPartner(theta, int(s.StrLen)))) -
				int(s.Head) - int(s.Tail)
			if l < 1 {
				l = 1
			}
			return l
		}
		for _, e := range all {
			if c, ok := found[[2]int32{e.a, e.b}]; ok {
				if c != e.c {
					t.Fatalf("prefix count %d != index count %d for (%d,%d)", c, e.c, e.a, e.b)
				}
				continue
			}
			la, lb := required(meta[e.a]), required(meta[e.b])
			need := la
			if lb > need {
				need = lb
			}
			if e.c >= need {
				t.Fatalf("prefix missed pair (%d,%d) with c=%d ≥ required %d (θ=%v)",
					e.a, e.b, e.c, need, theta)
			}
		}
	}
}

func TestEmittedCountsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	segs := randomFragment(rng, 15, false)
	out := collect(segs, Params{Fn: similarity.Jaccard, Theta: 0.5, Method: Loop})
	if len(out) == 0 {
		t.Fatal("no pairs emitted")
	}
	byRID := map[int32]Seg{}
	for _, s := range segs {
		byRID[s.RID] = s
	}
	for _, e := range out {
		want := tokens.Intersect(byRID[e.a].Tokens, byRID[e.b].Tokens)
		if e.c != want {
			t.Fatalf("pair (%d,%d): count %d, want %d", e.a, e.b, e.c, want)
		}
		if e.a >= e.b {
			t.Fatalf("self-join pair not ordered: (%d,%d)", e.a, e.b)
		}
	}
}

func TestRSJoinOnlyCrossOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := randomFragment(rng, 20, true)
	origin := map[int32]uint8{}
	for _, s := range segs {
		origin[s.RID] = s.Origin
	}
	out := collect(segs, Params{Fn: similarity.Jaccard, Theta: 0.5, Method: Index, RS: true})
	for _, e := range out {
		if origin[e.a] != 0 || origin[e.b] != 1 {
			t.Fatalf("pair (%d,%d) not oriented R,S: origins %d,%d",
				e.a, e.b, origin[e.a], origin[e.b])
		}
	}
}

func TestRolesRespected(t *testing.T) {
	mk := func(rid int32, role partition.Role, toks ...tokens.ID) Seg {
		return Seg{RID: rid, Role: role, StrLen: int32(len(toks)), Tokens: toks}
	}
	segs := []Seg{
		mk(0, partition.RoleSmall, 1, 2),
		mk(1, partition.RoleSmall, 1, 2),
		mk(2, partition.RoleLarge, 1, 2),
	}
	out := collect(segs, Params{Fn: similarity.Jaccard, Theta: 0.1, Method: Loop})
	want := []emitted{{0, 2, 2}, {1, 2, 2}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("boundary join = %v, want %v", out, want)
	}
}

func TestSameRIDNeverPaired(t *testing.T) {
	segs := []Seg{
		{RID: 5, StrLen: 2, Tokens: []tokens.ID{1, 2}},
		{RID: 5, StrLen: 2, Tokens: []tokens.ID{1, 2}},
	}
	out := collect(segs, Params{Fn: similarity.Jaccard, Theta: 0.1, Method: Loop})
	if len(out) != 0 {
		t.Fatalf("self pair emitted: %v", out)
	}
}

func TestCountersTrackPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	segs := randomFragment(rng, 30, false)
	// Run through a real MapReduce context to exercise the counter path.
	run := func(bm filters.BitmapMode) *mapreduce.Result {
		in := []mapreduce.KV{{Key: "frag", Value: segs}}
		res, err := mapreduce.Run(mapreduce.Config{Name: "frag-test"},
			in, mapreduce.IdentityMapper,
			mapreduce.ReduceFunc(func(ctx *mapreduce.Context, key string, values []any) {
				ss := append([]Seg{}, values[0].([]Seg)...)
				Join(ctx, ss, Params{
					Fn: similarity.Jaccard, Theta: 0.9, Filters: filters.All, Method: Prefix,
					Bitmap: filters.BitmapConfig{Mode: bm},
				}, func(a, b *Seg, c int) {})
			}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// With the bitmap filter off every discovered candidate reaches drain.
	if run(filters.BitmapOff).Counters.Get(CtrComparisons) == 0 {
		t.Fatal("no comparisons counted")
	}
	// With it on the pairs are accounted as built/rejected/passed instead.
	on := run(filters.BitmapOn)
	if on.Counters.Get(filters.CtrBitmapBuilt) == 0 {
		t.Fatal("no signatures built")
	}
	if on.Counters.Get(filters.CtrBitmapRejected)+on.Counters.Get(filters.CtrBitmapPassed) == 0 {
		t.Fatal("no candidates screened by the bitmap filter")
	}
}

func TestMethodString(t *testing.T) {
	if Loop.String() != "loop" || Index.String() != "index" || Prefix.String() != "prefix" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatal("unknown method name")
	}
}

func TestSegSizeBytes(t *testing.T) {
	s := Seg{Tokens: []tokens.ID{1, 2, 3}}
	if s.SizeBytes() != 4+2+12+12 {
		t.Fatalf("SizeBytes = %d", s.SizeBytes())
	}
}

func TestPaperPrefixSubsetOfLossless(t *testing.T) {
	// The naive prefix may only miss pairs, never invent them, and counts
	// of found pairs stay exact.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		segs := randomFragment(rng, rng.Intn(15)+2, false)
		theta := float64(rng.Intn(5)+5) / 10
		base := Params{Fn: similarity.Jaccard, Theta: theta, Method: Prefix}
		exact := collect(segs, base)
		paper := base
		paper.PaperPrefix = true
		lossy := collect(segs, paper)
		em := map[string]int{}
		for _, e := range exact {
			em[fmt.Sprintf("%d-%d", e.a, e.b)] = e.c
		}
		for _, e := range lossy {
			want, ok := em[fmt.Sprintf("%d-%d", e.a, e.b)]
			if !ok {
				t.Fatalf("paper prefix invented pair %v", e)
			}
			if want != e.c {
				t.Fatalf("paper prefix count %d != %d", e.c, want)
			}
		}
		if len(lossy) > len(exact) {
			t.Fatal("paper prefix found more pairs than lossless")
		}
	}
}

// mathCeil avoids importing math at every call site above.
func mathCeil(x float64) float64 { return math.Ceil(x - 1e-9) }
