package fragjoin

// Bitmap-filter equivalence: the signature pre-check may only skip work,
// never change output. These tests pin filtered kernels byte-identical to
// unfiltered ones — exhaustively over a small token universe, and on random
// fragments across kernels, widths and similarity functions.

import (
	"math/rand"
	"reflect"
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// TestBitmapEquivalenceExhaustive enumerates every non-empty subset of a
// 6-token universe as one segment each (63 segments, all pairs compared)
// and checks that every kernel emits byte-identical pairs with the bitmap
// filter forced on — at every supported width — and forced off. The tiny
// universe maximises hash collisions per word, exactly the regime where an
// unsound bound would reject a qualifying pair.
func TestBitmapEquivalenceExhaustive(t *testing.T) {
	const universe = 6
	var segs []Seg
	for mask := 1; mask < 1<<universe; mask++ {
		var toks []tokens.ID
		for b := 0; b < universe; b++ {
			if mask&(1<<b) != 0 {
				toks = append(toks, tokens.ID(b))
			}
		}
		segs = append(segs, Seg{
			RID:    int32(mask),
			StrLen: int32(len(toks)),
			Tokens: toks,
		})
	}
	for _, fn := range []similarity.Func{similarity.Jaccard, similarity.Cosine, similarity.Dice} {
		for _, theta := range []float64{0.5, 0.8} {
			for _, m := range []Method{Loop, Index, Prefix} {
				p := Params{Fn: fn, Theta: theta, Filters: filters.All, Method: m}
				p.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOff}
				want := collect(segs, p)
				if len(want) == 0 {
					t.Fatalf("%v θ=%g %v: empty baseline, test is vacuous", fn, theta, m)
				}
				for _, width := range []int{64, 128, 256} {
					p.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOn, Width: width}
					if got := collect(segs, p); !reflect.DeepEqual(got, want) {
						t.Fatalf("%v θ=%g %v w=%d: %d pairs filtered vs %d unfiltered",
							fn, theta, m, width, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestBitmapEquivalenceRandom drives the same on-vs-off identity over
// random fragments (self and R-S, auto width) for every kernel.
func TestBitmapEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		rs := trial%2 == 1
		segs := randomFragment(rng, rng.Intn(50)+2, rs)
		theta := 0.3 + rng.Float64()*0.65
		fn := similarity.Func(trial % 3)
		for _, m := range []Method{Loop, Index, Prefix} {
			p := Params{Fn: fn, Theta: theta, Filters: filters.All, Method: m, RS: rs}
			p.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOff}
			want := collect(segs, p)
			p.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOn}
			if got := collect(segs, p); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v θ=%g %v: %d pairs filtered vs %d unfiltered",
					trial, fn, theta, m, len(got), len(want))
			}
		}
	}
}
