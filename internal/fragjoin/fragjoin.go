// Package fragjoin implements the reduce-side join kernels of FS-Join's
// filtering phase (Section V-A, "Join Algorithms"): given all segments of
// one fragment, produce (record pair, common-token count) partials.
//
// Loop and Index emit identical partials: one per qualifying segment pair
// with a non-zero intersection. Prefix emits a subset — it skips pairs
// whose fragment overlap is provably below what any θ-similar pair must
// have here (c < max(1, L(s), L(t)), DESIGN.md §3) — which preserves the
// exactness of the final join: every fragment of a similar pair is still
// counted exactly, and dropped partials can only lower the aggregate of
// pairs that are already below the threshold.
package fragjoin

import (
	"fmt"
	"sort"

	"fsjoin/internal/filters"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// Method selects the join kernel.
type Method int

const (
	// Loop compares every qualifying segment pair with a merge intersect.
	Loop Method = iota
	// Index builds an inverted list over all segment tokens and counts
	// overlaps through posting lists.
	Index
	// Prefix indexes only each segment's lossless prefix (DESIGN.md §3) —
	// the kernel FS-Join adopts.
	Prefix
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Loop:
		return "loop"
	case Index:
		return "index"
	case Prefix:
		return "prefix"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Seg is one record segment as shuffled to a fragment reducer: the segment
// tokens plus everything the filters need (Algorithm 1's segInfo).
type Seg struct {
	// RID identifies the source record.
	RID int32
	// Origin is 0 for self-join / R-side records and 1 for S-side records.
	Origin uint8
	// Role is the record's horizontal-partition join role.
	Role partition.Role
	// StrLen, Head, Tail are |s|, |s^h| and |s^e|.
	StrLen int32
	Head   int32
	Tail   int32
	// Tokens is the segment's sorted token slice.
	Tokens []tokens.ID
}

// SizeBytes implements mapreduce.Sized: rid + origin/role + three lengths +
// tokens.
func (s Seg) SizeBytes() int { return 4 + 2 + 12 + 4*len(s.Tokens) }

// Meta converts the segment to the filters' view.
func (s Seg) Meta() filters.SegMeta {
	return filters.SegMeta{SegLen: len(s.Tokens), StrLen: int(s.StrLen), Head: int(s.Head), Tail: int(s.Tail)}
}

// Params configures a fragment join.
type Params struct {
	// Fn and Theta define the similarity predicate.
	Fn    similarity.Func
	Theta float64
	// Filters is the enabled filter set. The Prefix bit selects prefix
	// indexing inside the Prefix method and is implied by Method == Prefix.
	Filters filters.Set
	// Method is the join kernel.
	Method Method
	// RS marks an R-S join: only pairs with different Origin are joined.
	// When false the join is a self-join over Origin-0 segments.
	RS bool
	// PaperPrefix switches the Prefix kernel from the lossless segment
	// prefix (DESIGN.md §3) to the paper's literal segment-local prefix
	// length |Seg| − ⌈θ|Seg|⌉ + 1, which prunes candidates far harder but
	// can miss pairs whose co-occurring segments are individually below θ.
	PaperPrefix bool
}

// Emit receives one qualifying pair and its exact segment intersection
// size. For self-joins a.RID < b.RID; for R-S joins a is the R side.
type Emit func(a, b *Seg, common int)

// Counter names incremented on the context during joins.
const (
	CtrComparisons = "fragjoin.comparisons"
	CtrPrunedStrL  = "fragjoin.pruned.strl"
	CtrPrunedSegL  = "fragjoin.pruned.segl"
	CtrPrunedSegI  = "fragjoin.pruned.segi"
	CtrPrunedSegD  = "fragjoin.pruned.segd"
	CtrEmitted     = "fragjoin.emitted"
)

// Join runs the configured kernel over one fragment's segments. ctx may be
// nil (counters are then skipped). Segments are processed in a canonical
// (Origin, RID) order so output is deterministic.
func Join(ctx *mapreduce.Context, segs []Seg, p Params, emit Emit) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Origin != segs[j].Origin {
			return segs[i].Origin < segs[j].Origin
		}
		return segs[i].RID < segs[j].RID
	})
	j := &joiner{ctx: ctx, p: p, emit: emit}
	switch p.Method {
	case Loop:
		j.loop(segs)
	case Index:
		j.index(segs)
	case Prefix:
		j.prefix(segs)
	default:
		panic("fragjoin: unknown method")
	}
}

type joiner struct {
	ctx  *mapreduce.Context
	p    Params
	emit Emit
}

func (j *joiner) inc(name string, d int64) {
	if j.ctx != nil {
		j.ctx.Inc(name, d)
	}
}

// pairable applies the origin and horizontal-role join rules.
func (j *joiner) pairable(a, b *Seg) bool {
	if j.p.RS {
		if a.Origin == b.Origin {
			return false
		}
	} else if a.RID == b.RID {
		return false
	}
	return partition.Joinable(a.Role, b.Role)
}

// orient orders the pair for emission: R before S, else smaller RID first.
func orient(a, b *Seg) (*Seg, *Seg) {
	if a.Origin != b.Origin {
		if a.Origin == 0 {
			return a, b
		}
		return b, a
	}
	if a.RID < b.RID {
		return a, b
	}
	return b, a
}

// lengthPrune applies StrL and SegL, which need no intersection.
func (j *joiner) lengthPrune(a, b *Seg) bool {
	if j.p.Filters.Has(filters.StrL) && filters.StrLPrune(j.p.Fn, j.p.Theta, int(a.StrLen), int(b.StrLen)) {
		j.inc(CtrPrunedStrL, 1)
		return true
	}
	if j.p.Filters.Has(filters.SegL) && filters.SegLPrune(j.p.Fn, j.p.Theta, a.Meta(), b.Meta()) {
		j.inc(CtrPrunedSegL, 1)
		return true
	}
	return false
}

// finish applies the intersection-dependent filters and emits.
func (j *joiner) finish(a, b *Seg, c int) {
	if c == 0 {
		return
	}
	if j.p.Filters.Has(filters.SegI) && filters.SegIPrune(j.p.Fn, j.p.Theta, c, a.Meta(), b.Meta()) {
		j.inc(CtrPrunedSegI, 1)
		return
	}
	if j.p.Filters.Has(filters.SegD) && filters.SegDPrune(j.p.Fn, j.p.Theta, c, a.Meta(), b.Meta()) {
		j.inc(CtrPrunedSegD, 1)
		return
	}
	j.inc(CtrEmitted, 1)
	x, y := orient(a, b)
	j.emit(x, y, c)
}

// loop is the naive nested-loop kernel.
func (j *joiner) loop(segs []Seg) {
	for i := range segs {
		for k := i + 1; k < len(segs); k++ {
			a, b := &segs[i], &segs[k]
			if !j.pairable(a, b) {
				continue
			}
			j.inc(CtrComparisons, 1)
			if j.lengthPrune(a, b) {
				continue
			}
			j.finish(a, b, tokens.Intersect(a.Tokens, b.Tokens))
		}
	}
}

// index is the inverted-list kernel: postings over every token, counts
// accumulated while probing, probe-then-insert to see each pair once.
func (j *joiner) index(segs []Seg) {
	inv := make(map[tokens.ID][]int)
	counts := make(map[int]int)
	for k := range segs {
		b := &segs[k]
		clear(counts)
		for _, t := range b.Tokens {
			for _, i := range inv[t] {
				counts[i]++
			}
		}
		j.drain(segs, counts, k, nil)
		for _, t := range b.Tokens {
			inv[t] = append(inv[t], k)
		}
	}
}

// prefix is the prefix-filtered inverted-list kernel: only segment prefixes
// are indexed and probed; discovered pairs get their exact intersection via
// a merge.
func (j *joiner) prefix(segs []Seg) {
	inv := make(map[tokens.ID][]int)
	seen := make(map[int]int)
	for k := range segs {
		b := &segs[k]
		var plen int
		if j.p.PaperPrefix {
			plen = filters.SegPrefixLenNaive(j.p.Theta, b.Meta())
		} else {
			plen = filters.SegPrefixLen(j.p.Fn, j.p.Theta, b.Meta())
		}
		clear(seen)
		for _, t := range b.Tokens[:plen] {
			for _, i := range inv[t] {
				seen[i]++
			}
		}
		j.drain(segs, seen, k, func(a, b *Seg) int { return tokens.Intersect(a.Tokens, b.Tokens) })
		for _, t := range b.Tokens[:plen] {
			inv[t] = append(inv[t], k)
		}
	}
}

// drain finalises candidates of segment k found in counts. When intersect
// is nil the candidate count is already the exact intersection size;
// otherwise it is recomputed. Candidates are visited in index order for
// deterministic output and counter values.
func (j *joiner) drain(segs []Seg, counts map[int]int, k int, intersect func(a, b *Seg) int) {
	if len(counts) == 0 {
		return
	}
	idxs := make([]int, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	b := &segs[k]
	for _, i := range idxs {
		a := &segs[i]
		if !j.pairable(a, b) {
			continue
		}
		j.inc(CtrComparisons, 1)
		if j.lengthPrune(a, b) {
			continue
		}
		c := counts[i]
		if intersect != nil {
			c = intersect(a, b)
		}
		j.finish(a, b, c)
	}
}
