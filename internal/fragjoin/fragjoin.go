// Package fragjoin implements the reduce-side join kernels of FS-Join's
// filtering phase (Section V-A, "Join Algorithms"): given all segments of
// one fragment, produce (record pair, common-token count) partials.
//
// Loop and Index emit identical partials: one per qualifying segment pair
// with a non-zero intersection. Prefix emits a subset — it skips pairs
// whose fragment overlap is provably below what any θ-similar pair must
// have here (c < max(1, L(s), L(t)), DESIGN.md §3) — which preserves the
// exactness of the final join: every fragment of a similar pair is still
// counted exactly, and dropped partials can only lower the aggregate of
// pairs that are already below the threshold.
//
// The kernels are allocation-lean: posting lists live in a flat slice
// indexed by token offset (token ids are dense dictionary ranks confined to
// the fragment's vertical range), candidate overlap counts use
// generation-stamped sparse counters, and candidate buffers are reused
// across segments. Candidate pairs are pre-screened by Sandes et al.'s
// bitmap filter (filters.Signature, DESIGN.md §11): a fixed-width hashed
// token bitmap per segment whose XOR+popcount overlap upper bound rejects
// pairs early in every kernel — before the exact intersection in Loop, and
// at candidate registration (a pair's first shared posting) in Index and
// Prefix, so rejected pairs are never registered, sorted or drained. Exact
// intersections of short-span segments take a word-packed bitmap
// AND+popcount fast path instead of a merge.
package fragjoin

import (
	"fmt"
	"math/bits"
	"slices"

	"fsjoin/internal/filters"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// Method selects the join kernel.
type Method int

const (
	// Loop compares every qualifying segment pair with an exact intersect.
	Loop Method = iota
	// Index builds an inverted list over all segment tokens and counts
	// overlaps through posting lists.
	Index
	// Prefix indexes only each segment's lossless prefix (DESIGN.md §3) —
	// the kernel FS-Join adopts.
	Prefix
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Loop:
		return "loop"
	case Index:
		return "index"
	case Prefix:
		return "prefix"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Seg is one record segment as shuffled to a fragment reducer: the segment
// tokens plus everything the filters need (Algorithm 1's segInfo).
type Seg struct {
	// RID identifies the source record.
	RID int32
	// Origin is 0 for self-join / R-side records and 1 for S-side records.
	Origin uint8
	// Role is the record's horizontal-partition join role.
	Role partition.Role
	// StrLen, Head, Tail are |s|, |s^h| and |s^e|.
	StrLen int32
	Head   int32
	Tail   int32
	// Tokens is the segment's sorted token slice.
	Tokens []tokens.ID
}

// SizeBytes implements mapreduce.Sized: rid + origin/role + three lengths +
// tokens.
func (s Seg) SizeBytes() int { return 4 + 2 + 12 + 4*len(s.Tokens) }

// Meta converts the segment to the filters' view.
func (s Seg) Meta() filters.SegMeta {
	return filters.SegMeta{SegLen: len(s.Tokens), StrLen: int(s.StrLen), Head: int(s.Head), Tail: int(s.Tail)}
}

// Params configures a fragment join.
type Params struct {
	// Fn and Theta define the similarity predicate.
	Fn    similarity.Func
	Theta float64
	// Filters is the enabled filter set. The Prefix bit selects prefix
	// indexing inside the Prefix method and is implied by Method == Prefix.
	Filters filters.Set
	// Method is the join kernel.
	Method Method
	// RS marks an R-S join: only pairs with different Origin are joined.
	// When false the join is a self-join over Origin-0 segments.
	RS bool
	// PaperPrefix switches the Prefix kernel from the lossless segment
	// prefix (DESIGN.md §3) to the paper's literal segment-local prefix
	// length |Seg| − ⌈θ|Seg|⌉ + 1, which prunes candidates far harder but
	// can miss pairs whose co-occurring segments are individually below θ.
	PaperPrefix bool
	// Bitmap configures the hashed signature filter (DESIGN.md §11): a
	// per-segment fixed-width token bitmap whose XOR+popcount overlap
	// upper bound rejects candidate pairs before any exact intersection.
	// Callers resolve the environment override (BitmapConfig.ResolveEnv)
	// once per pipeline; the zero value here means auto = enabled.
	Bitmap filters.BitmapConfig
}

// Emit receives one qualifying pair and its exact segment intersection
// size. For self-joins a.RID < b.RID; for R-S joins a is the R side.
type Emit func(a, b *Seg, common int)

// Counter names incremented on the context during joins. The bitmap
// filter's built/rejected/passed counters use the shared filters.CtrBitmap*
// names so fragjoin and ridpairs aggregate into the same Stats fields.
const (
	CtrComparisons = "fragjoin.comparisons"
	CtrPrunedStrL  = "fragjoin.pruned.strl"
	CtrPrunedSegL  = "fragjoin.pruned.segl"
	CtrPrunedSegI  = "fragjoin.pruned.segi"
	CtrPrunedSegD  = "fragjoin.pruned.segd"
	CtrEmitted     = "fragjoin.emitted"
)

// Join runs the configured kernel over one fragment's segments. ctx may be
// nil (counters are then skipped). Segments are processed in a canonical
// (Origin, RID) order so output is deterministic.
func Join(ctx *mapreduce.Context, segs []Seg, p Params, emit Emit) {
	slices.SortFunc(segs, func(a, b Seg) int {
		if a.Origin != b.Origin {
			return int(a.Origin) - int(b.Origin)
		}
		return int(a.RID) - int(b.RID)
	})
	j := &joiner{ctx: ctx, p: p, emit: emit, segs: segs}
	j.buildSigs()
	switch p.Method {
	case Loop:
		j.bitmaps = make([]segBitmap, len(segs))
		j.loop()
	case Index:
		j.initScratch()
		j.index()
	case Prefix:
		j.initScratch()
		j.bitmaps = make([]segBitmap, len(segs))
		j.prefix()
	default:
		panic("fragjoin: unknown method")
	}
}

type joiner struct {
	ctx  *mapreduce.Context
	p    Params
	emit Emit
	segs []Seg

	// Generation-stamped sparse counters: counts[i] is segment i's running
	// overlap with the probing segment, valid only while stamp[i] == gen.
	// Bumping gen invalidates every counter at once, so nothing is cleared
	// between probe rounds; cands collects the touched indexes and is
	// reused round after round.
	counts []int32
	stamp  []uint32
	gen    uint32
	cands  []int32

	// bitmaps are the lazily built word-packed token sets for the exact
	// intersection fast path (Loop and Prefix kernels).
	bitmaps []segBitmap

	// sigs are the fixed-width hashed signatures (filters.Signature) built
	// once per segment; sigW is their word width, 0 when the bitmap filter
	// is off.
	sigs []filters.Signature
	sigW int
}

// buildSigs builds every segment's hashed signature up front when the
// bitmap filter is enabled, with the width picked from the fragment's mean
// segment length (unless pinned by config).
func (j *joiner) buildSigs() {
	if !j.p.Bitmap.Enabled() || len(j.segs) < 2 {
		return
	}
	total := 0
	for i := range j.segs {
		total += len(j.segs[i].Tokens)
	}
	j.sigW = j.p.Bitmap.Words(float64(total) / float64(len(j.segs)))
	j.sigs = make([]filters.Signature, len(j.segs))
	for i := range j.segs {
		filters.BuildSignature(&j.sigs[i], j.segs[i].Tokens, j.sigW)
	}
	j.inc(filters.CtrBitmapBuilt, int64(len(j.segs)))
}

// sigReject is the bitmap-filter pre-check: the signature overlap upper
// bound is run through the same SegI/SegD threshold algebra the exact count
// will face, so a rejected pair is exactly one finish() would drop — output
// is byte-identical with the filter on or off, only the exact intersection
// and candidate bookkeeping are skipped. Loop calls it per pair before
// intersecting; Index and Prefix call it from accumulate at a pair's first
// shared posting.
func (j *joiner) sigReject(i, k int, a, b *Seg) bool {
	if j.sigW == 0 {
		return false
	}
	ub := filters.SigOverlapUB(&j.sigs[i], &j.sigs[k], j.sigW, len(a.Tokens), len(b.Tokens))
	pass := ub > 0 &&
		!(j.p.Filters.Has(filters.SegI) && filters.SegIPrune(j.p.Fn, j.p.Theta, ub, a.Meta(), b.Meta())) &&
		!(j.p.Filters.Has(filters.SegD) && filters.SegDPrune(j.p.Fn, j.p.Theta, ub, a.Meta(), b.Meta()))
	if pass {
		j.inc(filters.CtrBitmapPassed, 1)
		return false
	}
	j.inc(filters.CtrBitmapRejected, 1)
	return true
}

func (j *joiner) initScratch() {
	j.counts = make([]int32, len(j.segs))
	j.stamp = make([]uint32, len(j.segs))
}

func (j *joiner) inc(name string, d int64) {
	if j.ctx != nil {
		j.ctx.Inc(name, d)
	}
}

// cancelPoint is the kernels' bounded-stride cancellation hook: placed in
// each probe/comparison loop so a cancelled or deadline-expired job aborts
// mid-fragment instead of finishing a possibly huge reduce group first.
// Nil-safe for ctx-less callers (unit tests, standalone use).
func (j *joiner) cancelPoint() {
	if j.ctx != nil {
		j.ctx.CheckCancel()
	}
}

// pairable applies the origin and horizontal-role join rules.
func (j *joiner) pairable(a, b *Seg) bool {
	if j.p.RS {
		if a.Origin == b.Origin {
			return false
		}
	} else if a.RID == b.RID {
		return false
	}
	return partition.Joinable(a.Role, b.Role)
}

// orient orders the pair for emission: R before S, else smaller RID first.
func orient(a, b *Seg) (*Seg, *Seg) {
	if a.Origin != b.Origin {
		if a.Origin == 0 {
			return a, b
		}
		return b, a
	}
	if a.RID < b.RID {
		return a, b
	}
	return b, a
}

// lengthPrune applies StrL and SegL, which need no intersection.
func (j *joiner) lengthPrune(a, b *Seg) bool {
	if j.p.Filters.Has(filters.StrL) && filters.StrLPrune(j.p.Fn, j.p.Theta, int(a.StrLen), int(b.StrLen)) {
		j.inc(CtrPrunedStrL, 1)
		return true
	}
	if j.p.Filters.Has(filters.SegL) && filters.SegLPrune(j.p.Fn, j.p.Theta, a.Meta(), b.Meta()) {
		j.inc(CtrPrunedSegL, 1)
		return true
	}
	return false
}

// finish applies the intersection-dependent filters and emits.
func (j *joiner) finish(a, b *Seg, c int) {
	if c == 0 {
		return
	}
	if j.p.Filters.Has(filters.SegI) && filters.SegIPrune(j.p.Fn, j.p.Theta, c, a.Meta(), b.Meta()) {
		j.inc(CtrPrunedSegI, 1)
		return
	}
	if j.p.Filters.Has(filters.SegD) && filters.SegDPrune(j.p.Fn, j.p.Theta, c, a.Meta(), b.Meta()) {
		j.inc(CtrPrunedSegD, 1)
		return
	}
	j.inc(CtrEmitted, 1)
	x, y := orient(a, b)
	j.emit(x, y, c)
}

// loop is the naive nested-loop kernel.
func (j *joiner) loop() {
	segs := j.segs
	for i := range segs {
		for k := i + 1; k < len(segs); k++ {
			j.cancelPoint()
			a, b := &segs[i], &segs[k]
			if !j.pairable(a, b) {
				continue
			}
			j.inc(CtrComparisons, 1)
			if j.lengthPrune(a, b) {
				continue
			}
			if j.sigReject(i, k, a, b) {
				continue
			}
			j.finish(a, b, j.intersect(i, k))
		}
	}
}

// index is the inverted-list kernel: postings over every token, counts
// accumulated while probing, probe-then-insert to see each pair once. The
// accumulated count is already the exact intersection size.
func (j *joiner) index() {
	inv := newPostings(j.segs, func(i int) int { return len(j.segs[i].Tokens) })
	for k := range j.segs {
		j.beginRound()
		for _, t := range j.segs[k].Tokens {
			j.accumulate(inv.get(t), k)
		}
		j.drain(k, true)
		for _, t := range j.segs[k].Tokens {
			inv.add(t, int32(k))
		}
	}
}

// prefix is the prefix-filtered inverted-list kernel: only segment prefixes
// are indexed and probed; discovered pairs get their exact intersection
// from the bitmap fast path or a merge.
func (j *joiner) prefix() {
	plens := make([]int, len(j.segs))
	for i := range j.segs {
		if j.p.PaperPrefix {
			plens[i] = filters.SegPrefixLenNaive(j.p.Theta, j.segs[i].Meta())
		} else {
			plens[i] = filters.SegPrefixLen(j.p.Fn, j.p.Theta, j.segs[i].Meta())
		}
	}
	inv := newPostings(j.segs, func(i int) int { return plens[i] })
	for k := range j.segs {
		j.beginRound()
		for _, t := range j.segs[k].Tokens[:plens[k]] {
			j.accumulate(inv.get(t), k)
		}
		j.drain(k, false)
		for _, t := range j.segs[k].Tokens[:plens[k]] {
			inv.add(t, int32(k))
		}
	}
}

// beginRound invalidates all counters for a new probing segment.
func (j *joiner) beginRound() {
	j.gen++
	j.cands = j.cands[:0]
}

// accumulate bumps the overlap counter of every segment on one posting
// list, registering first-touched segments as candidates. The bitmap
// filter's pre-check runs here, at a pair's first shared posting: a
// rejected segment is stamped but never registered, so it accumulates no
// further counts and never reaches drain. Unregistered segments may keep
// receiving counter bumps on later postings; their counts are stale and
// never read.
func (j *joiner) accumulate(list []int32, k int) {
	b := &j.segs[k]
	for _, i := range list {
		if j.stamp[i] != j.gen {
			j.stamp[i] = j.gen
			if j.sigW != 0 && j.sigReject(int(i), k, &j.segs[i], b) {
				continue
			}
			j.counts[i] = 0
			j.cands = append(j.cands, i)
		}
		j.counts[i]++
	}
}

// drain finalises the current round's candidates against segment k. When
// exact, the accumulated count is already the intersection size; otherwise
// it is recomputed. Candidates are visited in index order for deterministic
// output and counter values.
func (j *joiner) drain(k int, exact bool) {
	if len(j.cands) == 0 {
		return
	}
	slices.Sort(j.cands)
	b := &j.segs[k]
	for _, ci := range j.cands {
		j.cancelPoint()
		i := int(ci)
		a := &j.segs[i]
		if !j.pairable(a, b) {
			continue
		}
		j.inc(CtrComparisons, 1)
		if j.lengthPrune(a, b) {
			continue
		}
		c := int(j.counts[i])
		if !exact {
			c = j.intersect(i, k)
		}
		j.finish(a, b, c)
	}
}

// segBitmap is a lazily built word-packed view of one segment's token set:
// exact intersections become AND + popcount over the overlapping word
// range. Segments whose tokens straddle more than bitmapMaxWords 64-bit
// words are left unpacked and fall back to the merge intersect.
type segBitmap struct {
	state uint8  // 0 unbuilt, 1 packed, 2 ineligible
	first uint32 // index of the first packed word (token >> 6)
	words []uint64
}

// bitmapMaxWords caps a packed segment's word span (128 words = 8192 token
// ranks, 1 KiB). Fragment tokens are dense ranks inside one vertical range,
// so typical segments span a handful of words.
const bitmapMaxWords = 128

func (j *joiner) bitmap(i int) *segBitmap {
	bm := &j.bitmaps[i]
	if bm.state != 0 {
		return bm
	}
	toks := j.segs[i].Tokens
	if len(toks) == 0 {
		bm.state = 2
		return bm
	}
	// Pack only when the AND+popcount sweep beats a merge: the word span
	// bounds the sweep length, a merge costs about the two token counts.
	lo, hi := toks[0]>>6, toks[len(toks)-1]>>6
	if span := hi - lo + 1; span > bitmapMaxWords || int(span) > 2*len(toks) {
		bm.state = 2
		return bm
	}
	bm.first = lo
	bm.words = make([]uint64, hi-lo+1)
	for _, t := range toks {
		bm.words[(t>>6)-lo] |= 1 << (t & 63)
	}
	bm.state = 1
	return bm
}

// intersect returns |segs[i].Tokens ∩ segs[k].Tokens|, via packed bitmaps
// when both segments are short-spanned and a sorted merge otherwise.
func (j *joiner) intersect(i, k int) int {
	a, b := j.bitmap(i), j.bitmap(k)
	if a.state == 1 && b.state == 1 {
		lo := max(a.first, b.first)
		hi := min(a.first+uint32(len(a.words)), b.first+uint32(len(b.words)))
		n := 0
		for w := lo; w < hi; w++ {
			n += bits.OnesCount64(a.words[w-a.first] & b.words[w-b.first])
		}
		return n
	}
	return tokens.Intersect(j.segs[i].Tokens, j.segs[k].Tokens)
}

// postings is the inverted index over segment tokens. Fragment tokens are
// dense dictionary ranks confined to the fragment's vertical range, so the
// index is a CSR layout: every token's final posting-list size is known
// up front (indexed() per segment), one flat backing array holds all lists
// and starts/lens slice it per token — three allocations for the whole
// fragment. A sparse map fallback covers degenerate fragments whose token
// span dwarfs their token count.
type postings struct {
	base   tokens.ID
	starts []int32
	lens   []int32
	flat   []int32
	sparse map[tokens.ID][]int32
}

// newPostings sizes the index; indexed(i) is how many leading tokens of
// segment i will be added (all of them for Index, the prefix for Prefix).
func newPostings(segs []Seg, indexed func(i int) int) *postings {
	var lo, hi tokens.ID
	total, seen := 0, false
	for i := range segs {
		n := indexed(i)
		if n == 0 {
			continue
		}
		toks := segs[i].Tokens[:n]
		total += n
		if !seen {
			lo, hi, seen = toks[0], toks[n-1], true
			continue
		}
		if toks[0] < lo {
			lo = toks[0]
		}
		if toks[n-1] > hi {
			hi = toks[n-1]
		}
	}
	p := &postings{base: lo}
	if !seen {
		return p
	}
	span := int(hi-lo) + 1
	if span > 1<<16 && span > 4*total {
		p.sparse = make(map[tokens.ID][]int32, total)
		return p
	}
	p.starts = make([]int32, span)
	for i := range segs {
		for _, t := range segs[i].Tokens[:indexed(i)] {
			p.starts[t-lo]++
		}
	}
	var off int32
	for o, n := range p.starts {
		p.starts[o] = off
		off += n
	}
	p.lens = make([]int32, span)
	p.flat = make([]int32, total)
	return p
}

func (p *postings) get(t tokens.ID) []int32 {
	if p.flat != nil {
		o := t - p.base
		s := p.starts[o]
		return p.flat[s : s+p.lens[o]]
	}
	return p.sparse[t]
}

func (p *postings) add(t tokens.ID, k int32) {
	if p.flat != nil {
		o := t - p.base
		p.flat[p.starts[o]+p.lens[o]] = k
		p.lens[o]++
		return
	}
	p.sparse[t] = append(p.sparse[t], k)
}
