package fragjoin

import (
	"encoding/binary"

	"fsjoin/internal/partition"
	"fsjoin/internal/spill"
)

// Spill codec for Seg, the dominant shuffle value of the filtering job
// (DESIGN.md §8). Tag 40; this package owns tags 40–42.
func init() {
	spill.RegisterValue(40, Seg{},
		func(buf []byte, v any) []byte {
			s := v.(Seg)
			buf = binary.AppendVarint(buf, int64(s.RID))
			buf = append(buf, s.Origin, byte(s.Role))
			buf = binary.AppendVarint(buf, int64(s.StrLen))
			buf = binary.AppendVarint(buf, int64(s.Head))
			buf = binary.AppendVarint(buf, int64(s.Tail))
			return spill.AppendU32s(buf, s.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			s := Seg{RID: int32(d.Varint())}
			s.Origin = d.Byte()
			s.Role = partition.Role(d.Byte())
			s.StrLen = int32(d.Varint())
			s.Head = int32(d.Varint())
			s.Tail = int32(d.Varint())
			s.Tokens = d.U32s()
			return s, d.Err()
		})
}
