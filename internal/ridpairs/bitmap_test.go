package ridpairs

import (
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

// TestBitmapFilterEquivalence pins the verification-stage bitmap filter to
// byte-identical output: the same pairs with the signature pre-check forced
// on (every width) and forced off, for self and R-S joins — while the
// rejected counter proves the filter actually fired and the
// verify-candidates counter shrinks accordingly.
func TestBitmapFilterEquivalence(t *testing.T) {
	c := testutil.RandomCollection(120, 60, 24, 31)
	s := testutil.RandomCollection(90, 50, 22, 32)
	for _, fn := range []similarity.Func{similarity.Jaccard, similarity.Cosine} {
		for _, theta := range []float64{0.6, 0.8} {
			base := Options{Fn: fn, Theta: theta, Cluster: testutil.SmallCluster()}
			base.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOff}
			off, err := SelfJoin(c, base)
			if err != nil {
				t.Fatal(err)
			}
			offRS, err := Join(c, s, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, width := range []int{0, 64, 128, 256} {
				opt := base
				opt.Bitmap = filters.BitmapConfig{Mode: filters.BitmapOn, Width: width}
				on, err := SelfJoin(c, opt)
				if err != nil {
					t.Fatal(err)
				}
				testutil.AssertSameResults(t, "bitmap-on self", on.Pairs, off.Pairs)
				if on.Pipeline.Counter(filters.CtrBitmapRejected) == 0 {
					t.Fatalf("%v θ=%g w=%d: bitmap filter never rejected", fn, theta, width)
				}
				if onV, offV := on.Pipeline.Counter(filters.CtrVerifyCandidates),
					off.Pipeline.Counter(filters.CtrVerifyCandidates); onV >= offV {
					t.Fatalf("%v θ=%g w=%d: verified candidates %d not below unfiltered %d",
						fn, theta, width, onV, offV)
				}
				onRS, err := Join(c, s, opt)
				if err != nil {
					t.Fatal(err)
				}
				testutil.AssertSameResults(t, "bitmap-on rs", onRS.Pairs, offRS.Pairs)
			}
		}
	}
}
