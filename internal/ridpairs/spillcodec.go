package ridpairs

import (
	"encoding/binary"

	"fsjoin/internal/spill"
	"fsjoin/internal/tokens"
)

// Spill codecs for this package's shuffle values (DESIGN.md §8). Tags
// 43–44; this package owns tags 43–45.
func init() {
	spill.RegisterValue(43, prefixValue{},
		func(buf []byte, v any) []byte {
			p := v.(prefixValue)
			buf = binary.AppendVarint(buf, int64(p.rec.RID))
			buf = append(buf, p.origin)
			return spill.AppendU32s(buf, p.rec.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := prefixValue{rec: tokens.Record{RID: int32(d.Varint())}}
			p.origin = d.Byte()
			p.rec.Tokens = d.U32s()
			return p, d.Err()
		})
	spill.RegisterValue(44, simValue{},
		func(buf []byte, v any) []byte {
			s := v.(simValue)
			buf = binary.AppendVarint(buf, int64(s.c))
			buf = binary.AppendVarint(buf, int64(s.la))
			return binary.AppendVarint(buf, int64(s.lb))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			s := simValue{c: int32(d.Varint()), la: int32(d.Varint()), lb: int32(d.Varint())}
			return s, d.Err()
		})
}
