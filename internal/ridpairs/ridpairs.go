// Package ridpairs implements the RIDPairsPPJoin baseline (Vernica, Carey,
// Li — SIGMOD 2010) the paper compares against: a signature-based MapReduce
// join that keys records by their prefix tokens. Each record is duplicated
// once per prefix token (the duplication the paper's Figure 1 criticises),
// groups are joined with PPJoin-style length and positional filters plus
// early-terminating verification, and a final job deduplicates pairs
// discovered under multiple prefix tokens. Both self-joins and R-S joins
// are supported, as in Vernica et al.'s original system.
package ridpairs

import (
	"context"
	"fmt"
	"sort"

	"fsjoin/internal/filters"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// Options configures a RIDPairsPPJoin run.
type Options struct {
	// Fn and Theta define the similarity predicate.
	Fn    similarity.Func
	Theta float64
	// Cluster is the cost model (default: the paper's 10-node cluster).
	Cluster *mapreduce.Cluster
	// Ctx, when non-nil, cancels the pipeline at the next task boundary.
	Ctx context.Context
	// Parallelism is the local engine parallelism for every stage; see
	// mapreduce.Config.Parallelism.
	Parallelism int
	// Fault is the fault-tolerance and fault-injection policy inherited by
	// every stage; see mapreduce.FaultPolicy.
	Fault mapreduce.FaultPolicy
	// MemoryBudget caps each map task's in-memory shuffle buffer; records
	// beyond it spill to sorted runs on disk and merge back at reduce time
	// (see mapreduce.Config.MemoryBudgetBytes). 0 defers to the engine
	// default (FSJOIN_MEMORY_BUDGET); negative forces unbounded. Results
	// are byte-identical at any budget.
	MemoryBudget int64
	// SpillDir is the parent directory for spill files ("" = OS temp dir).
	SpillDir string
	// CheckpointDir, when non-empty, persists each completed pipeline
	// stage there for crash/restart recovery; see
	// mapreduce.Pipeline.CheckpointDir.
	CheckpointDir string
	// CheckpointSalt folds the caller's configuration into every stage
	// fingerprint, so one checkpoint directory reused under different
	// options recomputes instead of replaying mismatched state.
	CheckpointSalt string
	// Runtime selects the execution substrate (shuffle transport and, for
	// multi-process runs, the task executor); the zero value is the
	// in-process engine. See mapreduce.Runtime.
	Runtime mapreduce.Runtime
	// Bitmap configures the hashed signature filter applied before
	// verification (DESIGN.md §11): per-record fixed-width token bitmaps
	// whose XOR+popcount overlap upper bound skips verifyOverlap calls
	// that cannot reach the required overlap. Output is identical with the
	// filter on or off; only verified-candidate counts change.
	Bitmap filters.BitmapConfig
}

// Result carries the join output and pipeline metrics.
type Result struct {
	// Pairs are the similar pairs, sorted canonically.
	Pairs []result.Pair
	// Pipeline exposes per-stage metrics.
	Pipeline *mapreduce.Pipeline
}

// prefixValue is the shuffled record copy: origin tag plus the full ordered
// token set (the whole record travels once per prefix token).
type prefixValue struct {
	rec    tokens.Record
	origin uint8
}

// SizeBytes implements mapreduce.Sized.
func (v prefixValue) SizeBytes() int { return 5 + 4*len(v.rec.Tokens) }

// simValue carries an exact verified similarity across the dedup job.
type simValue struct {
	c      int32
	la, lb int32
}

// SizeBytes implements mapreduce.Sized.
func (simValue) SizeBytes() int { return 12 }

// SelfJoin runs the three-stage RIDPairsPPJoin pipeline over one
// collection.
func SelfJoin(c *tokens.Collection, opt Options) (*Result, error) {
	return run(c, nil, opt)
}

// Join runs the R-S variant; result pairs carry the R-side id first.
func Join(r, s *tokens.Collection, opt Options) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("ridpairs: nil S collection")
	}
	return run(r, s, opt)
}

func run(r, s *tokens.Collection, opt Options) (*Result, error) {
	if opt.Theta <= 0 || opt.Theta > 1 {
		return nil, fmt.Errorf("ridpairs: theta %v outside (0, 1]", opt.Theta)
	}
	if opt.Cluster == nil {
		opt.Cluster = mapreduce.DefaultCluster()
	}
	rs := s != nil
	p := mapreduce.NewPipeline("ridpairs-ppjoin", opt.Cluster)
	p.Context = opt.Ctx
	p.Parallelism = opt.Parallelism
	p.Fault = opt.Fault
	p.MemoryBudgetBytes = opt.MemoryBudget
	p.SpillDir = opt.SpillDir
	p.CheckpointDir = opt.CheckpointDir
	p.CheckpointSalt = opt.CheckpointSalt
	p.Runtime = opt.Runtime

	// Stage 1: global ordering (same job as FS-Join's) over the union.
	union := r
	if rs {
		union = &tokens.Collection{Records: append(append([]tokens.Record{}, r.Records...), s.Records...)}
	}
	o, err := order.Compute(p, union)
	if err != nil {
		return nil, err
	}
	ordered, err := o.Apply(r)
	if err != nil {
		return nil, err
	}
	input := tagInput(ordered, 0)
	if rs {
		orderedS, err := o.Apply(s)
		if err != nil {
			return nil, err
		}
		input = append(input, tagInput(orderedS, 1)...)
	}

	// Stage 2: RIDPairs kernel — duplicate per prefix token, join groups.
	kernelRes, err := p.Run(mapreduce.Config{Name: "rid-pairs"},
		input,
		&prefixMapper{fn: opt.Fn, theta: opt.Theta},
		&groupJoiner{fn: opt.Fn, theta: opt.Theta, rs: rs, bitmap: opt.Bitmap.ResolveEnv()})
	if err != nil {
		return nil, err
	}

	// Stage 3: deduplicate pairs found under several common prefix tokens.
	dedupRes, err := p.Run(mapreduce.Config{Name: "dedup"},
		kernelRes.Output, mapreduce.IdentityMapper, mapreduce.FirstValue{})
	if err != nil {
		return nil, err
	}

	pairs := make([]result.Pair, 0, len(dedupRes.Output))
	for _, kv := range dedupRes.Output {
		a, b := mapreduce.DecodePairKey(kv.Key)
		sv := kv.Value.(simValue)
		pairs = append(pairs, result.Pair{
			A: int32(a), B: int32(b), Common: int(sv.c),
			Sim: opt.Fn.Sim(int(sv.c), int(sv.la), int(sv.lb)),
		})
	}
	result.Sort(pairs)
	return &Result{Pairs: pairs, Pipeline: p}, nil
}

// tagInput converts a collection into kernel input pairs. The key carries
// the origin (mapreduce.OriginKey), so skip-mode quarantine reports
// distinguish R#x from S#x when the two rid spaces overlap.
func tagInput(c *tokens.Collection, origin uint8) []mapreduce.KV {
	kvs := make([]mapreduce.KV, 0, len(c.Records))
	for _, rec := range c.Records {
		kvs = append(kvs, mapreduce.KV{
			Key:   mapreduce.OriginKey(origin, uint32(rec.RID)),
			Value: prefixValue{rec: rec, origin: origin},
		})
	}
	return kvs
}

// prefixMapper emits one full record copy per prefix token — the
// signature-duplication scheme of Figure 1.
type prefixMapper struct {
	fn    similarity.Func
	theta float64
}

// Map implements mapreduce.Mapper.
func (m *prefixMapper) Map(ctx *mapreduce.Context, kv mapreduce.KV) {
	pv := kv.Value.(prefixValue)
	if pv.rec.Len() == 0 {
		return
	}
	plen := m.fn.ProbePrefixLen(m.theta, pv.rec.Len())
	ctx.Inc("ridpairs.duplicates", int64(plen))
	for _, t := range pv.rec.Tokens[:plen] {
		ctx.Emit(mapreduce.U32Key(t), pv)
	}
}

// groupJoiner joins all records sharing one prefix token using the PPJoin
// length and positional filters and early-terminating verification,
// emitting exact similarities. A pair is emitted in every group it appears
// in; stage 3 dedups. Pruning inside a group is safe because the group of
// the pair's smallest common token always passes the positional bound.
type groupJoiner struct {
	fn     similarity.Func
	theta  float64
	rs     bool
	bitmap filters.BitmapConfig
}

// Reduce implements mapreduce.Reducer.
func (g *groupJoiner) Reduce(ctx *mapreduce.Context, key string, values []any) {
	w := mapreduce.DecodeU32Key(key)
	recs := make([]prefixValue, len(values))
	pos := make([]int, len(values))
	for i, v := range values {
		recs[i] = v.(prefixValue)
		pos[i] = tokenPos(recs[i].rec.Tokens, w)
	}
	// Bitmap filter (DESIGN.md §11): one hashed signature per record in the
	// group, built once, pre-screens every pair before verification.
	sigW := 0
	var sigs []filters.Signature
	if g.bitmap.Enabled() && len(recs) > 1 {
		total := 0
		for i := range recs {
			total += recs[i].rec.Len()
		}
		sigW = g.bitmap.Words(float64(total) / float64(len(recs)))
		sigs = make([]filters.Signature, len(recs))
		for i := range recs {
			filters.BuildSignature(&sigs[i], recs[i].rec.Tokens, sigW)
		}
		ctx.Inc(filters.CtrBitmapBuilt, int64(len(recs)))
	}
	for i := range recs {
		for j := i + 1; j < len(recs); j++ {
			a, b := &recs[i], &recs[j]
			if g.rs {
				if a.origin == b.origin {
					continue
				}
			} else if a.rec.RID == b.rec.RID {
				continue
			}
			ctx.Inc("ridpairs.comparisons", 1)
			la, lb := a.rec.Len(), b.rec.Len()
			lmin, lmax := la, lb
			if lmin > lmax {
				lmin, lmax = lmax, lmin
			}
			if lmin < g.fn.MinLen(g.theta, lmax) {
				ctx.Inc("ridpairs.pruned.length", 1)
				continue
			}
			required := g.fn.MinOverlap(g.theta, la, lb)
			// PPJoin positional filter: all common tokens are ≥ w, so at
			// most 1 + min(remaining after w) can match.
			if bound := 1 + min(la-pos[i]-1, lb-pos[j]-1); bound < required {
				ctx.Inc("ridpairs.pruned.positional", 1)
				continue
			}
			if sigW != 0 {
				// Skip verification when the signature bound already proves
				// the required overlap unreachable; verifyOverlap would
				// return ok=false for any such pair, so output is identical.
				if filters.SigPrune(&sigs[i], &sigs[j], sigW, la, lb, required) {
					ctx.Inc(filters.CtrBitmapRejected, 1)
					continue
				}
				ctx.Inc(filters.CtrBitmapPassed, 1)
			}
			ctx.Inc(filters.CtrVerifyCandidates, 1)
			if g.rs {
				ctx.Inc(result.CtrRSCandidates, 1)
			}
			c, ok := filters.VerifyOverlap(a.rec.Tokens, b.rec.Tokens, required)
			if !ok || !g.fn.AtLeast(c, la, lb, g.theta) {
				continue
			}
			x, y := a, b
			if g.rs {
				ctx.Inc(result.CtrRSEmitted, 1)
				if a.origin != 0 {
					x, y = b, a
				}
			} else if a.rec.RID > b.rec.RID {
				x, y = b, a
			}
			ctx.Emit(mapreduce.PairKey(uint32(x.rec.RID), uint32(y.rec.RID)),
				simValue{c: int32(c), la: int32(x.rec.Len()), lb: int32(y.rec.Len())})
		}
	}
}

// tokenPos locates w in a sorted token set.
func tokenPos(ts []tokens.ID, w uint32) int {
	return sort.Search(len(ts), func(i int) bool { return ts[i] >= w })
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
