package ridpairs

import (
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

func TestRIDPairsMatchesOracle(t *testing.T) {
	c := testutil.RandomCollection(130, 60, 24, 11)
	for _, theta := range []float64{0.5, 0.7, 0.85, 0.95} {
		want := bruteforce.SelfJoin(c, similarity.Jaccard, theta)
		res, err := SelfJoin(c, Options{Theta: theta, Cluster: testutil.SmallCluster()})
		if err != nil {
			t.Fatalf("SelfJoin(theta=%v): %v", theta, err)
		}
		testutil.AssertSameResults(t, "ridpairs", res.Pairs, want)
	}
}

func TestRIDPairsDuplicationGrowsAsThetaFalls(t *testing.T) {
	c := testutil.RandomCollection(200, 80, 30, 12)
	var prev int64 = -1
	for _, theta := range []float64{0.9, 0.75, 0.6} {
		res, err := SelfJoin(c, Options{Theta: theta, Cluster: testutil.SmallCluster()})
		if err != nil {
			t.Fatal(err)
		}
		dups := res.Pipeline.Counter("ridpairs.duplicates")
		if dups <= prev {
			t.Errorf("theta=%v: duplicates %d did not grow (prev %d)", theta, dups, prev)
		}
		prev = dups
	}
}

func TestRIDPairsInvalidTheta(t *testing.T) {
	c := testutil.RandomCollection(5, 10, 5, 1)
	for _, theta := range []float64{0, -1, 1.5} {
		if _, err := SelfJoin(c, Options{Theta: theta}); err == nil {
			t.Errorf("theta=%v: want error", theta)
		}
	}
}

func TestRIDPairsRSJoinMatchesOracle(t *testing.T) {
	r := testutil.RandomCollection(70, 40, 18, 51)
	s := testutil.RandomCollection(80, 40, 18, 52)
	for _, theta := range []float64{0.6, 0.85} {
		want := bruteforce.Join(r, s, similarity.Jaccard, theta)
		res, err := Join(r, s, Options{Theta: theta, Cluster: testutil.SmallCluster()})
		if err != nil {
			t.Fatal(err)
		}
		testutil.AssertSameResults(t, "ridpairs-rs", res.Pairs, want)
	}
}

func TestRIDPairsRSNilS(t *testing.T) {
	if _, err := Join(testutil.RandomCollection(3, 5, 3, 1), nil, Options{Theta: 0.5}); err == nil {
		t.Fatal("nil S accepted")
	}
}

func TestPositionalFilterActiveAndSafe(t *testing.T) {
	c := testutil.RandomCollection(250, 90, 30, 53)
	res, err := SelfJoin(c, Options{Theta: 0.85, Cluster: testutil.SmallCluster()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Counter("ridpairs.pruned.positional") == 0 {
		t.Fatal("positional filter never fired")
	}
	want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.85)
	testutil.AssertSameResults(t, "positional", res.Pairs, want)
}
