package bruteforce

import (
	"testing"

	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

func rec(rid int32, ids ...tokens.ID) tokens.Record { return tokens.NewRecord(rid, ids) }

func TestSelfJoinBasic(t *testing.T) {
	c := &tokens.Collection{Records: []tokens.Record{
		rec(0, 1, 2, 3),
		rec(1, 1, 2, 3, 4),
		rec(2, 9, 10),
	}}
	got := SelfJoin(c, similarity.Jaccard, 0.7)
	if len(got) != 1 || got[0].A != 0 || got[0].B != 1 || got[0].Common != 3 {
		t.Fatalf("got %v", got)
	}
	if got[0].Sim < 0.74 || got[0].Sim > 0.76 {
		t.Fatalf("sim = %v", got[0].Sim)
	}
}

func TestSelfJoinOrdersByRID(t *testing.T) {
	// Records supplied in reverse rid order must still yield A < B.
	c := &tokens.Collection{Records: []tokens.Record{
		rec(5, 1, 2),
		rec(3, 1, 2),
	}}
	got := SelfJoin(c, similarity.Jaccard, 0.9)
	if len(got) != 1 || got[0].A != 3 || got[0].B != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestRSJoinOrientation(t *testing.T) {
	r := &tokens.Collection{Records: []tokens.Record{rec(7, 1, 2)}}
	s := &tokens.Collection{Records: []tokens.Record{rec(2, 1, 2)}}
	got := Join(r, s, similarity.Jaccard, 0.9)
	if len(got) != 1 || got[0].A != 7 || got[0].B != 2 {
		t.Fatalf("R-side must come first: %v", got)
	}
}

func TestThresholdRespected(t *testing.T) {
	c := &tokens.Collection{Records: []tokens.Record{
		rec(0, 1, 2, 3, 4),
		rec(1, 1, 2, 5, 6),
	}}
	// Jaccard = 2/6 = 0.333.
	if got := SelfJoin(c, similarity.Jaccard, 0.34); len(got) != 0 {
		t.Fatalf("above-threshold pair: %v", got)
	}
	if got := SelfJoin(c, similarity.Jaccard, 0.33); len(got) != 1 {
		t.Fatalf("boundary pair missed: %v", got)
	}
}

func TestDiceAndCosine(t *testing.T) {
	c := &tokens.Collection{Records: []tokens.Record{
		rec(0, 1, 2, 3),
		rec(1, 1, 2, 4),
	}}
	// Dice = 4/6 = 0.667, Cosine = 2/3 = 0.667, Jaccard = 0.5.
	if got := SelfJoin(c, similarity.Dice, 0.66); len(got) != 1 {
		t.Fatalf("dice: %v", got)
	}
	if got := SelfJoin(c, similarity.Cosine, 0.66); len(got) != 1 {
		t.Fatalf("cosine: %v", got)
	}
	if got := SelfJoin(c, similarity.Jaccard, 0.66); len(got) != 0 {
		t.Fatalf("jaccard: %v", got)
	}
}
