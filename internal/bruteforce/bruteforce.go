// Package bruteforce provides the exact reference implementation every join
// algorithm in this repository is tested against: enumerate all pairs,
// intersect with a linear merge, keep pairs meeting the threshold. It shares
// the similarity algebra (and therefore tie handling) with the real
// algorithms through package similarity.
package bruteforce

import (
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// SelfJoin returns all pairs within c meeting the threshold, sorted
// canonically.
func SelfJoin(c *tokens.Collection, fn similarity.Func, theta float64) []result.Pair {
	var out []result.Pair
	recs := c.Records
	for i := range recs {
		for j := i + 1; j < len(recs); j++ {
			a, b := &recs[i], &recs[j]
			if a.RID > b.RID {
				a, b = b, a
			}
			if p, ok := check(a, b, fn, theta); ok {
				out = append(out, p)
			}
		}
	}
	result.Sort(out)
	return out
}

// Join returns all cross pairs between r and s meeting the threshold, with
// Pair.A holding the R-side id, sorted canonically.
func Join(r, s *tokens.Collection, fn similarity.Func, theta float64) []result.Pair {
	var out []result.Pair
	for i := range r.Records {
		for j := range s.Records {
			if p, ok := check(&r.Records[i], &s.Records[j], fn, theta); ok {
				out = append(out, p)
			}
		}
	}
	result.Sort(out)
	return out
}

func check(a, b *tokens.Record, fn similarity.Func, theta float64) (result.Pair, bool) {
	c := tokens.Intersect(a.Tokens, b.Tokens)
	if !fn.AtLeast(c, len(a.Tokens), len(b.Tokens), theta) {
		return result.Pair{}, false
	}
	return result.Pair{A: a.RID, B: b.RID, Common: c, Sim: fn.Sim(c, len(a.Tokens), len(b.Tokens))}, true
}
