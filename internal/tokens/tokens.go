// Package tokens defines the record model shared by every join algorithm in
// this repository: raw text records, tokenizers that turn text into token
// sets, and a dictionary that encodes tokens as dense integer ids.
//
// All join algorithms operate on Record values whose Tokens slice is a
// duplicate-free set of token ids sorted ascending by the global ordering
// (see package order). Keeping records in this canonical form makes segment
// splitting, prefix extraction and intersection counting O(n) everywhere.
package tokens

import (
	"fmt"
	"sort"
	"strings"
)

// ID is a dictionary-encoded token identifier. After global ordering is
// applied (package order), smaller IDs denote globally rarer tokens.
type ID = uint32

// Record is a set of tokens with a record identifier. Tokens must be sorted
// ascending and duplicate-free; NewRecord enforces this.
type Record struct {
	// RID identifies the record within its collection. RIDs are unique per
	// collection but two collections joined R-S style may reuse values.
	RID int32
	// Tokens is the sorted, duplicate-free token-id set.
	Tokens []ID
}

// NewRecord builds a canonical Record from possibly unsorted, possibly
// duplicated token ids. The input slice is not retained.
func NewRecord(rid int32, ids []ID) Record {
	ts := make([]ID, len(ids))
	copy(ts, ids)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	ts = dedupSorted(ts)
	return Record{RID: rid, Tokens: ts}
}

// Len returns the number of tokens in the record (|s| in the paper).
func (r Record) Len() int { return len(r.Tokens) }

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	ts := make([]ID, len(r.Tokens))
	copy(ts, r.Tokens)
	return Record{RID: r.RID, Tokens: ts}
}

// Validate reports an error when the token slice is not strictly increasing.
func (r Record) Validate() error {
	for i := 1; i < len(r.Tokens); i++ {
		if r.Tokens[i-1] >= r.Tokens[i] {
			return fmt.Errorf("tokens: record %d not strictly sorted at %d (%d >= %d)",
				r.RID, i, r.Tokens[i-1], r.Tokens[i])
		}
	}
	return nil
}

// String renders the record compactly for debugging.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d{", r.RID)
	for i, t := range r.Tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteByte('}')
	return b.String()
}

// Intersect returns |a ∩ b| for two canonical records using a linear merge.
func Intersect(a, b []ID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Collection is an ordered list of canonical records.
type Collection struct {
	// Records holds the canonical records in RID order.
	Records []Record
}

// Len returns the number of records.
func (c *Collection) Len() int { return len(c.Records) }

// TotalTokens returns Σ|s_i| over the collection.
func (c *Collection) TotalTokens() int {
	n := 0
	for _, r := range c.Records {
		n += len(r.Tokens)
	}
	return n
}

// MaxToken returns the largest token id present, or 0 for an empty
// collection. The token domain U is [0, MaxToken].
func (c *Collection) MaxToken() ID {
	var m ID
	for _, r := range c.Records {
		if n := len(r.Tokens); n > 0 && r.Tokens[n-1] > m {
			m = r.Tokens[n-1]
		}
	}
	return m
}

// Clone deep-copies the collection.
func (c *Collection) Clone() *Collection {
	out := &Collection{Records: make([]Record, len(c.Records))}
	for i, r := range c.Records {
		out.Records[i] = r.Clone()
	}
	return out
}

// Validate checks every record's canonical form and RID uniqueness.
func (c *Collection) Validate() error {
	seen := make(map[int32]bool, len(c.Records))
	for _, r := range c.Records {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.RID] {
			return fmt.Errorf("tokens: duplicate rid %d", r.RID)
		}
		seen[r.RID] = true
	}
	return nil
}

func dedupSorted(ts []ID) []ID {
	if len(ts) == 0 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}
