package tokens

import (
	"strings"
	"unicode"
)

// Tokenizer turns raw record text into a bag of string tokens. The bag may
// contain duplicates; set semantics are applied during dictionary encoding.
type Tokenizer interface {
	// Tokenize splits text into tokens. Implementations must be pure.
	Tokenize(text string) []string
}

// WordTokenizer splits on any non-alphanumeric rune and lower-cases tokens.
// This matches the word-level tokenisation used for the paper's Email,
// PubMed and Wiki datasets.
type WordTokenizer struct{}

// Tokenize implements Tokenizer.
func (WordTokenizer) Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// QGramTokenizer produces overlapping character q-grams, the alternative
// tokenisation common in set-similarity literature for short dirty strings.
type QGramTokenizer struct {
	// Q is the gram length; values < 1 are treated as 1.
	Q int
}

// Tokenize implements Tokenizer.
func (t QGramTokenizer) Tokenize(text string) []string {
	q := t.Q
	if q < 1 {
		q = 1
	}
	runes := []rune(strings.ToLower(text))
	if len(runes) < q {
		if len(runes) == 0 {
			return nil
		}
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// Raw is a record still in text form.
type Raw struct {
	// RID identifies the record.
	RID int32
	// Text is the raw record content.
	Text string
}

// Dictionary maps token strings to dense ids in first-seen order. The ids it
// assigns are provisional: package order later re-ranks them by ascending
// term frequency to form the global ordering.
type Dictionary struct {
	byString map[string]ID
	byID     []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byString: make(map[string]ID)}
}

// Size returns the number of distinct tokens seen (|U| in the paper).
func (d *Dictionary) Size() int { return len(d.byID) }

// Intern returns the id of tok, allocating the next dense id on first sight.
func (d *Dictionary) Intern(tok string) ID {
	if id, ok := d.byString[tok]; ok {
		return id
	}
	id := ID(len(d.byID))
	d.byString[tok] = id
	d.byID = append(d.byID, tok)
	return id
}

// Lookup returns the id for tok and whether it is present.
func (d *Dictionary) Lookup(tok string) (ID, bool) {
	id, ok := d.byString[tok]
	return id, ok
}

// Token returns the string for id; it panics on out-of-range ids, which can
// only arise from a programming error.
func (d *Dictionary) Token(id ID) string { return d.byID[id] }

// Encode tokenizes and dictionary-encodes raw records into a canonical
// Collection, interning unseen tokens.
func (d *Dictionary) Encode(raws []Raw, tk Tokenizer) *Collection {
	c := &Collection{Records: make([]Record, 0, len(raws))}
	for _, raw := range raws {
		toks := tk.Tokenize(raw.Text)
		ids := make([]ID, len(toks))
		for i, t := range toks {
			ids[i] = d.Intern(t)
		}
		c.Records = append(c.Records, NewRecord(raw.RID, ids))
	}
	return c
}
