package tokens

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzWordTokenizer checks WordTokenizer's contract on arbitrary input:
// tokens are non-empty, lower-cased, free of separator runes, pure
// (re-tokenising yields the same bag), and every token occurs as a
// substring of the lower-cased input.
func FuzzWordTokenizer(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "Hello, World!", "a  b\t\nc", "café CAFÉ",
		"123 abc 4d5e", "---", "ümläut 中文 words", "mixed—dash–case",
		"\x00\xff invalid \xc3\x28 utf8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tk := WordTokenizer{}
		toks := tk.Tokenize(text)
		lower := strings.ToLower(text)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lower-cased", tok)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
			if !strings.Contains(lower, tok) {
				t.Fatalf("token %q not a substring of lower-cased input", tok)
			}
		}
		again := tk.Tokenize(text)
		if len(again) != len(toks) {
			t.Fatalf("tokenizer not pure: %d vs %d tokens", len(toks), len(again))
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("tokenizer not pure at %d: %q vs %q", i, toks[i], again[i])
			}
		}
	})
}

// FuzzQGramTokenizer checks the q-gram invariants against a direct rune
// slicing oracle: gram count, gram length in runes, and content.
func FuzzQGramTokenizer(f *testing.F) {
	for _, seed := range []struct {
		text string
		q    int
	}{
		{"", 2}, {"a", 3}, {"abcd", 2}, {"Hello", 3}, {"中文混合abc", 2},
		{"x", 0}, {"short", -1}, {"\xc3\x28", 2},
	} {
		f.Add(seed.text, seed.q)
	}
	f.Fuzz(func(t *testing.T, text string, q int) {
		if q > 64 {
			q = 64 // keep gram windows bounded; larger q adds no coverage
		}
		toks := QGramTokenizer{Q: q}.Tokenize(text)
		if q < 1 {
			q = 1
		}
		runes := []rune(strings.ToLower(text))
		switch {
		case len(runes) == 0:
			if len(toks) != 0 {
				t.Fatalf("empty input produced %d grams", len(toks))
			}
		case len(runes) < q:
			if len(toks) != 1 || toks[0] != string(runes) {
				t.Fatalf("short input: got %q, want [%q]", toks, string(runes))
			}
		default:
			if want := len(runes) - q + 1; len(toks) != want {
				t.Fatalf("gram count %d, want %d", len(toks), want)
			}
			for i, g := range toks {
				if want := string(runes[i : i+q]); g != want {
					t.Fatalf("gram %d = %q, want %q", i, g, want)
				}
			}
		}
	})
}
