package tokens

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRecordCanonicalises(t *testing.T) {
	r := NewRecord(7, []ID{5, 3, 5, 1, 3, 9})
	want := []ID{1, 3, 5, 9}
	if !reflect.DeepEqual(r.Tokens, want) {
		t.Fatalf("tokens = %v, want %v", r.Tokens, want)
	}
	if r.RID != 7 {
		t.Fatalf("rid = %d", r.RID)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRecordDoesNotAliasInput(t *testing.T) {
	in := []ID{3, 1, 2}
	r := NewRecord(0, in)
	in[0] = 99
	if r.Tokens[0] == 99 || r.Tokens[2] == 99 {
		t.Fatal("record aliases caller slice")
	}
}

func TestNewRecordEmpty(t *testing.T) {
	r := NewRecord(1, nil)
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordValidateRejectsUnsorted(t *testing.T) {
	r := Record{RID: 1, Tokens: []ID{2, 1}}
	if r.Validate() == nil {
		t.Fatal("unsorted record validated")
	}
	r = Record{RID: 1, Tokens: []ID{2, 2}}
	if r.Validate() == nil {
		t.Fatal("duplicated record validated")
	}
}

func TestRecordCloneIndependent(t *testing.T) {
	r := NewRecord(1, []ID{1, 2, 3})
	c := r.Clone()
	c.Tokens[0] = 42
	if r.Tokens[0] == 42 {
		t.Fatal("clone shares storage")
	}
}

func TestRecordString(t *testing.T) {
	r := NewRecord(3, []ID{2, 1})
	if got := r.String(); got != "r3{1 2}" {
		t.Fatalf("String() = %q", got)
	}
}

// TestIntersectMatchesMapOracle is a property test: Intersect on canonical
// records equals the map-based intersection count.
func TestIntersectMatchesMapOracle(t *testing.T) {
	f := func(a, b []uint16) bool {
		ra := NewRecord(0, widen(a))
		rb := NewRecord(1, widen(b))
		set := make(map[ID]bool, len(ra.Tokens))
		for _, x := range ra.Tokens {
			set[x] = true
		}
		want := 0
		for _, x := range rb.Tokens {
			if set[x] {
				want++
			}
		}
		return Intersect(ra.Tokens, rb.Tokens) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func widen(xs []uint16) []ID {
	out := make([]ID, len(xs))
	for i, x := range xs {
		out[i] = ID(x)
	}
	return out
}

func TestIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := randomTokens(rng, 30, 40)
		b := randomTokens(rng, 30, 40)
		ca, cb := Intersect(a, b), Intersect(b, a)
		if ca != cb {
			t.Fatalf("not symmetric: %d vs %d", ca, cb)
		}
		if self := Intersect(a, a); self != len(a) {
			t.Fatalf("self intersection %d != %d", self, len(a))
		}
		if ca > len(a) || ca > len(b) {
			t.Fatalf("intersection %d exceeds set sizes %d/%d", ca, len(a), len(b))
		}
	}
}

func randomTokens(rng *rand.Rand, maxLen, vocab int) []ID {
	n := rng.Intn(maxLen)
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(rng.Intn(vocab))
	}
	r := NewRecord(0, ids)
	return r.Tokens
}

func TestCollectionStats(t *testing.T) {
	c := &Collection{Records: []Record{
		NewRecord(0, []ID{1, 2, 3}),
		NewRecord(1, []ID{7}),
		NewRecord(2, nil),
	}}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.TotalTokens() != 4 {
		t.Fatalf("TotalTokens = %d", c.TotalTokens())
	}
	if c.MaxToken() != 7 {
		t.Fatalf("MaxToken = %d", c.MaxToken())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionValidateRejectsDuplicateRID(t *testing.T) {
	c := &Collection{Records: []Record{NewRecord(1, []ID{1}), NewRecord(1, []ID{2})}}
	if c.Validate() == nil {
		t.Fatal("duplicate rid validated")
	}
}

func TestCollectionCloneDeep(t *testing.T) {
	c := &Collection{Records: []Record{NewRecord(0, []ID{1, 2})}}
	cl := c.Clone()
	cl.Records[0].Tokens[0] = 9
	if c.Records[0].Tokens[0] == 9 {
		t.Fatal("clone shares record storage")
	}
}

func TestDedupSortedProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		ids := widen(xs)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := dedupSorted(ids)
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		seen := make(map[ID]bool)
		for _, x := range widen(xs) {
			seen[x] = true
		}
		return len(out) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
