package tokens

import (
	"reflect"
	"testing"
)

func TestWordTokenizer(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"a  b\tc\nd", []string{"a", "b", "c", "d"}},
		{"", nil},
		{"...---...", nil},
		{"Set-Similarity JOINS 2017", []string{"set", "similarity", "joins", "2017"}},
		{"naïve café", []string{"naïve", "café"}},
	}
	var tk WordTokenizer
	for _, c := range cases {
		got := tk.Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQGramTokenizer(t *testing.T) {
	tk := QGramTokenizer{Q: 3}
	got := tk.Tokenize("abcd")
	want := []string{"abc", "bcd"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if got := tk.Tokenize("ab"); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("short input: got %v", got)
	}
	if got := tk.Tokenize(""); got != nil {
		t.Fatalf("empty input: got %v", got)
	}
	if got := (QGramTokenizer{Q: 0}).Tokenize("ab"); len(got) != 2 {
		t.Fatalf("q=0 should behave as q=1, got %v", got)
	}
	// Unicode-aware grams.
	if got := tk.Tokenize("héllo"); got[0] != "hél" {
		t.Fatalf("unicode gram: %q", got[0])
	}
}

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("x")
	b := d.Intern("y")
	if a == b {
		t.Fatal("distinct tokens share an id")
	}
	if again := d.Intern("x"); again != a {
		t.Fatalf("re-intern changed id: %d vs %d", again, a)
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.Token(a) != "x" || d.Token(b) != "y" {
		t.Fatal("Token round-trip failed")
	}
	if id, ok := d.Lookup("y"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := d.Lookup("zzz"); ok {
		t.Fatal("Lookup invented a token")
	}
}

func TestDictionaryEncode(t *testing.T) {
	d := NewDictionary()
	c := d.Encode([]Raw{
		{RID: 0, Text: "b a b"},
		{RID: 1, Text: "a c"},
	}, WordTokenizer{})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Records[0].Len() != 2 { // set semantics: {a, b}
		t.Fatalf("record 0 len = %d", c.Records[0].Len())
	}
	// "a" must map to the same id in both records.
	aID, _ := d.Lookup("a")
	found := 0
	for _, rec := range c.Records {
		for _, tok := range rec.Tokens {
			if tok == aID {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("shared token appears %d times, want 2", found)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
