package experiments

import (
	"fmt"

	"fsjoin/internal/dataset"
	"fsjoin/internal/minhash"
)

// Approx evaluates the future-work extension (Section VII): the approximate
// MinHash/LSH join against exact FS-Join — simulated time, candidate volume
// and recall per dataset and threshold.
func (r *Runner) Approx() error {
	head := []string{"dataset", "theta", "FS-Join (s)", "LSH (s)", "LSH candidates", "recall"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		for _, theta := range []float64{0.75, 0.9} {
			exact, cl, err := runFS(c, fsOptions(theta, 10))
			if err != nil {
				return err
			}
			approx, err := minhash.SelfJoin(c, minhash.Params{
				Theta: theta, Seed: 11, Cluster: cluster(10),
			})
			if err != nil {
				return err
			}
			recall := 1.0
			if len(exact.Pairs) > 0 {
				recall = float64(len(approx.Pairs)) / float64(len(exact.Pairs))
			}
			rows = append(rows, []string{
				p.Name, fmt.Sprintf("%.2f", theta),
				cl.String(),
				fmt.Sprintf("%.1f", approx.Pipeline.TotalSimulatedTime().Seconds()),
				fmt.Sprintf("%d", approx.Candidates),
				fmt.Sprintf("%.1f%%", 100*recall),
			})
		}
	}
	printTable(r.cfg.Out, "Extension: approximate MinHash/LSH join vs exact FS-Join", head, rows)
	return nil
}
