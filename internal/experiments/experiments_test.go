package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fsjoin/internal/dataset"
)

// tinyRunner runs experiments at a very small scale with a tight budget so
// the whole suite smoke-tests quickly.
func tinyRunner(buf *bytes.Buffer) *Runner {
	return NewRunner(Config{Scale: 0.05, Seed: 1, Out: buf, Budget: 100_000})
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite")
	}
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	for _, name := range r.Names() {
		before := buf.Len()
		if err := r.Run(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == before {
			t.Fatalf("%s produced no output", name)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"Table III", "Table I", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Table IV", "Soundness", "Lemma 5", "MinHash",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyRunner(&buf).Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunnerCachesDatasets(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	a := r.full(dataset.Profiles()[0])
	b := r.full(dataset.Profiles()[0])
	if a != b {
		t.Fatal("dataset not cached")
	}
}

func TestOrderingSanity(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyRunner(&buf).orderingSanity(); err != nil {
		t.Fatal(err)
	}
}

func TestPrintTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	printTable(&buf, "T", []string{"a", "bb"}, [][]string{{"xxx", "y"}})
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxx") {
		t.Fatalf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, head, separator, row
		t.Fatalf("table lines = %d", len(lines))
	}
}
