// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the synthetic datasets: Figures 6–13 and
// Tables I, III and IV, plus a Lemma 5 cost-model check. Each experiment
// prints the same rows/series the paper reports; EXPERIMENTS.md records the
// measured shapes against the paper's.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fsjoin/internal/core"
	"fsjoin/internal/dataset"
	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/massjoin"
	"fsjoin/internal/partition"
	"fsjoin/internal/ridpairs"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
	"fsjoin/internal/vsmart"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies every dataset profile's record count; 1.0 is the
	// calibrated laptop-scale default, smaller values give quick runs.
	Scale float64
	// Seed drives dataset generation and random pivot selection.
	Seed int64
	// Out receives the rendered tables.
	Out io.Writer
	// Budget caps intermediate records for V-Smart-Join and MassJoin (the
	// baselines that blow up); runs exceeding it are reported as DNF, the
	// way the paper reports failed runs. 0 means no cap.
	Budget int64
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig(out io.Writer) Config {
	return Config{Scale: 1.0, Seed: 1, Out: out, Budget: 3_000_000}
}

// Runner executes experiments, caching generated datasets across them.
type Runner struct {
	cfg   Config
	cache map[string]*tokens.Collection
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	return &Runner{cfg: cfg, cache: make(map[string]*tokens.Collection)}
}

// full returns the profile's collection at the configured scale.
func (r *Runner) full(p dataset.Profile) *tokens.Collection {
	key := fmt.Sprintf("%s@%g", p.Name, r.cfg.Scale)
	if c, ok := r.cache[key]; ok {
		return c
	}
	c := dataset.Generate(p.Scale(r.cfg.Scale), r.cfg.Seed)
	r.cache[key] = c
	return c
}

// smallFraction mirrors the paper's small datasets: Email(10%), Wiki(1%),
// PubMed(1%). Our profiles are already scaled down uniformly, so the
// fractions are re-calibrated to leave enough records for meaningful joins.
func smallFraction(name string) float64 {
	switch name {
	case "email":
		return 0.30 // stands in for the paper's Email(10%)
	default:
		return 0.15 // stands in for the paper's 1% of the multi-million sets
	}
}

// small returns the profile's small-scale sample.
func (r *Runner) small(p dataset.Profile) *tokens.Collection {
	key := fmt.Sprintf("%s-small@%g", p.Name, r.cfg.Scale)
	if c, ok := r.cache[key]; ok {
		return c
	}
	c := dataset.Sample(r.full(p), smallFraction(p.Name), r.cfg.Seed+100)
	r.cache[key] = c
	return c
}

// cluster returns the paper's cluster model with the given node count.
func cluster(nodes int) *mapreduce.Cluster {
	cl := mapreduce.DefaultCluster()
	cl.Nodes = nodes
	return cl
}

// cell is one measured table entry.
type cell struct {
	seconds float64
	dnf     bool
	extra   string
}

// String renders the cell (seconds, DNF, or a preformatted value).
func (c cell) String() string {
	if c.dnf {
		return "DNF"
	}
	if c.extra != "" {
		return c.extra
	}
	return fmt.Sprintf("%.1f", c.seconds)
}

// fsOptions returns the paper's default FS-Join configuration. Experiments
// pin LocalParallelism to 1: the cluster cost model scales *measured*
// per-task CPU times, and concurrent local tasks would contend for cores
// and distort those measurements (results would be identical either way).
func fsOptions(theta float64, nodes int) core.Options {
	return core.Options{
		Fn:                 similarity.Jaccard,
		Theta:              theta,
		PivotMethod:        partition.EvenTF,
		VerticalPartitions: 30,
		HorizontalPivots:   10,
		JoinMethod:         fragjoin.Prefix,
		Filters:            filters.All,
		Cluster:            cluster(nodes),
		Seed:               7,
		LocalParallelism:   1,
	}
}

// runFS runs FS-Join and returns (result, simulated seconds).
func runFS(c *tokens.Collection, opt core.Options) (*core.Result, cell, error) {
	res, err := core.SelfJoin(c, opt)
	if err != nil {
		return nil, cell{}, err
	}
	return res, cell{seconds: res.Pipeline.TotalSimulatedTime().Seconds()}, nil
}

// runAlgo runs one named algorithm on a collection, mapping budget
// exhaustion to DNF like the paper's failed runs.
func (r *Runner) runAlgo(name string, c *tokens.Collection, theta float64, nodes int) (cell, int, error) {
	switch name {
	case "FS-Join":
		res, cl, err := runFS(c, fsOptions(theta, nodes))
		if err != nil {
			return cell{}, 0, err
		}
		return cl, len(res.Pairs), nil
	case "FS-Join-V":
		opt := fsOptions(theta, nodes)
		opt.HorizontalPivots = 0
		res, cl, err := runFS(c, opt)
		if err != nil {
			return cell{}, 0, err
		}
		return cl, len(res.Pairs), nil
	case "FS-Join-paper":
		opt := fsOptions(theta, nodes)
		opt.PaperPrefix = true
		res, cl, err := runFS(c, opt)
		if err != nil {
			return cell{}, 0, err
		}
		return cl, len(res.Pairs), nil
	case "RIDPairsPPJoin":
		res, err := ridpairs.SelfJoin(c, ridpairs.Options{Fn: similarity.Jaccard, Theta: theta, Cluster: cluster(nodes)})
		if err != nil {
			return cell{}, 0, err
		}
		return cell{seconds: res.Pipeline.TotalSimulatedTime().Seconds()}, len(res.Pairs), nil
	case "V-Smart-Join":
		res, err := vsmart.SelfJoin(c, vsmart.Options{
			Fn: similarity.Jaccard, Theta: theta, Cluster: cluster(nodes), MaxPairEmits: r.cfg.Budget,
		})
		if err != nil {
			return cell{dnf: true}, 0, nil
		}
		return cell{seconds: res.Pipeline.TotalSimulatedTime().Seconds()}, len(res.Pairs), nil
	case "Merge", "Merge+Light":
		variant := massjoin.Merge
		if name == "Merge+Light" {
			variant = massjoin.MergeLight
		}
		res, err := massjoin.SelfJoin(c, massjoin.Options{
			Fn: similarity.Jaccard, Theta: theta, Variant: variant,
			Cluster: cluster(nodes), MaxSignatures: r.cfg.Budget,
		})
		if err != nil {
			return cell{dnf: true}, 0, nil
		}
		return cell{seconds: res.Pipeline.TotalSimulatedTime().Seconds()}, len(res.Pairs), nil
	default:
		return cell{}, 0, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// printTable renders an aligned text table.
func printTable(w io.Writer, title string, head []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n", title)
	widths := make([]int, len(head))
	for i, h := range head {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(head)
	sep := make([]string, len(head))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// secondsOf formats a duration in seconds for table cells.
func secondsOf(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }
