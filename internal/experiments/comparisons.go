package experiments

import (
	"fmt"

	"fsjoin/internal/core"
	"fsjoin/internal/dataset"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/ridpairs"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// fig6Thetas are the thresholds swept in Figures 6 and 7.
var fig6Thetas = []float64{0.75, 0.80, 0.85, 0.90}

// Fig6 reproduces Figure 6: FS-Join vs RIDPairsPPJoin on the (relatively)
// big datasets across thresholds. V-Smart-Join and MassJoin are omitted
// here, as in the paper, because they do not complete at this scale.
//
// Two FS-Join columns are shown: the default exact configuration (lossless
// segment prefix, DESIGN.md §3) and the paper's literal segment prefix,
// which reproduces the paper's aggressive candidate pruning but loses
// recall on adversarial data (reported as found/true pairs).
func (r *Runner) Fig6() error {
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		head := []string{"theta", "FS-Join(s)", "FS-Join-paper(s)", "RIDPairsPPJoin(s)", "speedup", "paper-prefix recall"}
		var rows [][]string
		for _, theta := range fig6Thetas {
			fs, nfs, err := r.runAlgo("FS-Join", c, theta, 10)
			if err != nil {
				return err
			}
			fsp, nfsp, err := r.runAlgo("FS-Join-paper", c, theta, 10)
			if err != nil {
				return err
			}
			rid, nrid, err := r.runAlgo("RIDPairsPPJoin", c, theta, 10)
			if err != nil {
				return err
			}
			if nfs != nrid {
				return fmt.Errorf("fig6 %s theta=%v: exact methods disagree fs=%d rid=%d", p.Name, theta, nfs, nrid)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", theta), fs.String(), fsp.String(), rid.String(),
				fmt.Sprintf("%.1fx", rid.seconds/fs.seconds),
				fmt.Sprintf("%d/%d", nfsp, nfs),
			})
		}
		printTable(r.cfg.Out, fmt.Sprintf("Figure 6 (%s, big): self-join time vs threshold", p.Name), head, rows)
	}
	return nil
}

// fig7Algos are the methods compared on the small datasets.
var fig7Algos = []string{"FS-Join", "RIDPairsPPJoin", "V-Smart-Join", "Merge", "Merge+Light"}

// Fig7 reproduces Figure 7: all five methods on the small datasets. Runs
// that exhaust the work budget print DNF, mirroring the paper's failed
// V-Smart-Join and MassJoin executions.
func (r *Runner) Fig7() error {
	for _, p := range dataset.Profiles() {
		c := r.small(p)
		head := append([]string{"theta"}, fig7Algos...)
		var rows [][]string
		for _, theta := range fig6Thetas {
			row := []string{fmt.Sprintf("%.2f", theta)}
			var wantPairs = -1
			for _, algo := range fig7Algos {
				cl, n, err := r.runAlgo(algo, c, theta, 10)
				if err != nil {
					return err
				}
				if !cl.dnf {
					if wantPairs == -1 {
						wantPairs = n
					} else if n != wantPairs {
						return fmt.Errorf("fig7 %s theta=%v %s: result mismatch %d vs %d", p.Name, theta, algo, n, wantPairs)
					}
				}
				row = append(row, cl.String())
			}
			rows = append(rows, row)
		}
		printTable(r.cfg.Out, fmt.Sprintf("Figure 7 (%s, small %d records): self-join time (s) vs threshold",
			p.Name, c.Len()), head, rows)
	}
	return nil
}

// Table1 quantifies the paper's qualitative comparison (Table I) with
// measured duplication factors (kernel-job map output records per input
// record) and reduce-phase load imbalance per method at θ = 0.8.
func (r *Runner) Table1() error {
	head := []string{"method", "dataset", "dup-factor", "load-imbalance", "filtered"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.small(p)
		records := int64(c.Len())

		// FS-Join: the filtering job's map output shuffles each input token
		// at most once per horizontal assignment — tokens are never
		// duplicated by the vertical partitioning itself.
		fsRes, _, err := runFS(c, fsOptions(0.8, 10))
		if err != nil {
			return err
		}
		fsStages := fsRes.Pipeline.Stages()
		orderedTokens := int64(c.TotalTokens())
		fsTokensShuffled := fsStages[1].ShuffleBytes
		fsDup := float64(fsTokensShuffled) / float64(orderedTokens*4)
		rows = append(rows, []string{"FS-Join", p.Name,
			fmt.Sprintf("%.2fx tokens", fsDup),
			fmt.Sprintf("%.2f", fsStages[1].LoadImbalance()),
			"yes"})

		rid, err := ridpairs.SelfJoin(c, ridpairs.Options{
			Fn: similarity.Jaccard, Theta: 0.8, Cluster: cluster(10),
		})
		if err != nil {
			return err
		}
		ridDup := float64(rid.Pipeline.Counter("ridpairs.duplicates")) / float64(records)
		rows = append(rows, []string{"RIDPairsPPJoin", p.Name,
			fmt.Sprintf("%.2fx records", ridDup),
			fmt.Sprintf("%.2f", rid.Pipeline.Stages()[1].LoadImbalance()),
			"yes"})
	}
	printTable(r.cfg.Out, "Table I (measured): duplication and load balancing at theta=0.8", head, rows)
	return nil
}

// Table3 prints the synthetic datasets' statistics next to the paper's
// Table III quantities they are calibrated to.
func (r *Runner) Table3() error {
	head := []string{"dataset", "records", "min-len", "max-len", "avg-len", "distinct-tokens", "total-tokens"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		s := dataset.Describe(r.full(p))
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", s.Records),
			fmt.Sprintf("%d", s.MinLen),
			fmt.Sprintf("%d", s.MaxLen),
			fmt.Sprintf("%.1f", s.AvgLen),
			fmt.Sprintf("%d", s.Distinct),
			fmt.Sprintf("%d", s.TotalToks),
		})
	}
	printTable(r.cfg.Out, "Table III: synthetic dataset statistics (laptop scale)", head, rows)
	return nil
}

// Soundness quantifies the recall loss of the paper's literal segment
// prefix against the exact lossless configuration — the reproduction
// finding documented in DESIGN.md §3 and EXPERIMENTS.md.
func (r *Runner) Soundness() error {
	head := []string{"dataset", "theta", "true pairs", "paper-prefix found", "recall"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.small(p)
		for _, theta := range []float64{0.75, 0.9} {
			exact, err := core.SelfJoin(c, fsOptions(theta, 10))
			if err != nil {
				return err
			}
			opt := fsOptions(theta, 10)
			opt.PaperPrefix = true
			lossy, err := core.SelfJoin(c, opt)
			if err != nil {
				return err
			}
			recall := 1.0
			if len(exact.Pairs) > 0 {
				recall = float64(len(lossy.Pairs)) / float64(len(exact.Pairs))
			}
			rows = append(rows, []string{
				p.Name, fmt.Sprintf("%.2f", theta),
				fmt.Sprintf("%d", len(exact.Pairs)),
				fmt.Sprintf("%d", len(lossy.Pairs)),
				fmt.Sprintf("%.1f%%", 100*recall),
			})
		}
	}
	printTable(r.cfg.Out, "Soundness: recall of the paper's literal segment prefix vs the exact default", head, rows)
	return nil
}

// orderingSanity verifies the global ordering invariant the experiments
// rely on (ascending term frequency) on one dataset; it is exercised by the
// smoke tests.
func (r *Runner) orderingSanity() error {
	c := r.small(dataset.Wiki())
	p := mapreduce.NewPipeline("ordering-sanity", cluster(10))
	o, err := order.Compute(p, c)
	if err != nil {
		return err
	}
	for i := 1; i < len(o.FreqByRank); i++ {
		if o.FreqByRank[i-1] > o.FreqByRank[i] {
			return fmt.Errorf("ordering not ascending at rank %d", i)
		}
	}
	var _ *tokens.Collection = c
	return nil
}
