package experiments

import (
	"fmt"

	"fsjoin/internal/core"
	"fsjoin/internal/dataset"
	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/partition"
	"fsjoin/internal/tokens"
)

// horizontalSweep mirrors Figure 10's per-dataset horizontal partition
// counts (the numbers above the dataset names in the paper's plot).
func horizontalSweep(name string) []int {
	switch name {
	case "email":
		return []int{5, 10}
	case "wiki":
		return []int{30, 50}
	default: // pubmed
		return []int{50, 70}
	}
}

// Fig10 reproduces Figure 10: the filtering-phase vs verification-phase
// split of FS-Join's time, while sweeping the number of horizontal
// partitions. The paper observes filtering ≫ verification and total time
// decreasing as horizontal partitions increase.
func (r *Runner) Fig10() error {
	theta := 0.8
	head := []string{"dataset", "h-partitions", "filter (s)", "verify (s)", "total (s)"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		for _, hp := range horizontalSweep(p.Name) {
			opt := fsOptions(theta, 10)
			opt.HorizontalPivots = hp / 2 // 2t+1 partitions from t pivots
			res, _, err := runFS(c, opt)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				p.Name, fmt.Sprintf("%d", hp),
				secondsOf(res.Pipeline.StageTime("filtering")),
				secondsOf(res.Pipeline.StageTime("verification")),
				secondsOf(res.Pipeline.TotalSimulatedTime()),
			})
		}
	}
	printTable(r.cfg.Out, "Figure 10: filtering vs verification time across horizontal partitions (theta=0.8)", head, rows)
	return nil
}

// Fig11 reproduces Figure 11: the three pivot selection methods. The paper
// observes Even-TF < Even-Interval < Random, driven by reduce-phase load
// balance.
func (r *Runner) Fig11() error {
	theta := 0.8
	methods := []struct {
		label string
		m     partition.PivotMethod
	}{{"Random", partition.Random}, {"Even-Interval", partition.EvenInterval}, {"Even-TF", partition.EvenTF}}
	head := []string{"dataset", "method", "filter phase (s)", "total (s)", "filter-job imbalance"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		for _, m := range methods {
			opt := fsOptions(theta, 10)
			opt.PivotMethod = m.m
			res, cl, err := runFS(c, opt)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				p.Name, m.label,
				secondsOf(res.Pipeline.StageTime("filtering")),
				cl.String(),
				fmt.Sprintf("%.2f", res.Pipeline.Stages()[1].LoadImbalance()),
			})
		}
	}
	printTable(r.cfg.Out, "Figure 11: pivot selection methods (theta=0.8)", head, rows)
	return nil
}

// Fig12 reproduces Figure 12: the three join methods. The paper observes
// Prefix fastest (about 2× over Loop/Index on the long-string Email set).
func (r *Runner) Fig12() error {
	theta := 0.8
	methods := []struct {
		label string
		m     fragjoin.Method
	}{{"Loop", fragjoin.Loop}, {"Index", fragjoin.Index}, {"Prefix", fragjoin.Prefix}}
	head := []string{"dataset", "method", "filter phase (s)", "total (s)", "comparisons"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		for _, m := range methods {
			opt := fsOptions(theta, 10)
			opt.JoinMethod = m.m
			res, cl, err := runFS(c, opt)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				p.Name, m.label,
				secondsOf(res.Pipeline.StageTime("filtering")),
				cl.String(),
				fmt.Sprintf("%d", res.Pipeline.Counter(fragjoin.CtrComparisons)),
			})
		}
	}
	printTable(r.cfg.Out, "Figure 12: join methods (theta=0.8)", head, rows)
	return nil
}

// Fig13 reproduces Figure 13: FS-Join vs FS-Join-V (no horizontal
// partitioning) with the paper's partition counts: 30 vertical everywhere;
// 10/50/70 horizontal for Email/Wiki/PubMed.
func (r *Runner) Fig13() error {
	hp := map[string]int{"email": 10, "wiki": 50, "pubmed": 70}
	head := []string{"dataset", "theta", "FS-Join (s)", "FS-Join-V (s)", "FS shuffle MB", "FS-V shuffle MB", "FS-V group-spill (s)"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		for _, theta := range []float64{0.8, 0.9} {
			opt := fsOptions(theta, 10)
			opt.HorizontalPivots = hp[p.Name] / 2
			resH, clH, err := runFS(c, opt)
			if err != nil {
				return err
			}
			opt.HorizontalPivots = 0
			resV, clV, err := runFS(c, opt)
			if err != nil {
				return err
			}
			if len(resH.Pairs) != len(resV.Pairs) {
				return fmt.Errorf("fig13 %s: result mismatch %d vs %d", p.Name, len(resH.Pairs), len(resV.Pairs))
			}
			var spillV float64
			for _, g := range resV.Pipeline.Stages()[1].GroupSpillTime {
				spillV += g.Seconds()
			}
			rows = append(rows, []string{
				p.Name, fmt.Sprintf("%.1f", theta), clH.String(), clV.String(),
				fmt.Sprintf("%d", resH.Pipeline.TotalShuffleBytes()>>20),
				fmt.Sprintf("%d", resV.Pipeline.TotalShuffleBytes()>>20),
				fmt.Sprintf("%.1f", spillV),
			})
		}
	}
	printTable(r.cfg.Out, "Figure 13: FS-Join vs FS-Join-V", head, rows)
	return nil
}

// table4Configs are the filter combinations of Table IV.
var table4Configs = []struct {
	label       string
	filters     filters.Set
	method      fragjoin.Method
	paperPrefix bool
}{
	{"StrL", filters.StrL, fragjoin.Index, false},
	{"StrL+SegL", filters.StrL | filters.SegL, fragjoin.Index, false},
	{"StrL+SegI", filters.StrL | filters.SegI, fragjoin.Index, false},
	{"StrL+SegD", filters.StrL | filters.SegD, fragjoin.Index, false},
	{"StrL+Prefix", filters.StrL | filters.Prefix, fragjoin.Prefix, false},
	{"StrL+Prefix(paper)", filters.StrL | filters.Prefix, fragjoin.Prefix, true},
	{"All", filters.All, fragjoin.Prefix, false},
	{"All(paper)", filters.All, fragjoin.Prefix, true},
}

// Table4 reproduces Table IV: the filtering job's output record count under
// each filter combination — the filters' pruning power. The paper observes
// SegD the strongest stable single filter, SegI close, SegL weak, and the
// full combination strongest.
func (r *Runner) Table4() error {
	theta := 0.8
	head := []string{"filter"}
	sets := []*tokens.Collection{}
	for _, p := range dataset.Profiles() {
		head = append(head, p.Name+"(small)")
		sets = append(sets, r.small(p))
	}
	var rows [][]string
	for _, cfg := range table4Configs {
		row := []string{cfg.label}
		for _, c := range sets {
			opt := fsOptions(theta, 10)
			opt.Filters = cfg.filters
			opt.JoinMethod = cfg.method
			opt.PaperPrefix = cfg.paperPrefix
			res, err := core.SelfJoin(c, opt)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%d", res.FilterOutputRecords))
		}
		rows = append(rows, row)
	}
	printTable(r.cfg.Out, "Table IV: filter-job output records per filter combination (theta=0.8)", head, rows)
	return nil
}
