package experiments

import (
	"fmt"

	"fsjoin/internal/dataset"
)

// Fig8 reproduces Figure 8: FS-Join execution time as the dataset scale
// grows 4X → 10X (40%–100% random samples), per dataset and threshold. The
// paper observes sub-quadratic growth (≲33% per 2X step in most cases).
func (r *Runner) Fig8() error {
	scales := []struct {
		label string
		frac  float64
	}{{"4X", 0.4}, {"6X", 0.6}, {"8X", 0.8}, {"10X", 1.0}}
	thetas := []float64{0.8, 0.9}
	for _, p := range dataset.Profiles() {
		full := r.full(p)
		head := []string{"scale", "records"}
		for _, th := range thetas {
			head = append(head, fmt.Sprintf("theta=%.1f (s)", th))
		}
		var rows [][]string
		for _, sc := range scales {
			c := dataset.Sample(full, sc.frac, r.cfg.Seed+int64(sc.frac*100))
			row := []string{sc.label, fmt.Sprintf("%d", c.Len())}
			for _, th := range thetas {
				cl, _, err := r.runAlgo("FS-Join", c, th, 10)
				if err != nil {
					return err
				}
				row = append(row, cl.String())
			}
			rows = append(rows, row)
		}
		printTable(r.cfg.Out, fmt.Sprintf("Figure 8 (%s): FS-Join time vs data scale", p.Name), head, rows)
	}
	return nil
}

// Fig9 reproduces Figure 9: FS-Join execution time on 5, 10 and 15 worker
// nodes (reduce tasks = 3 × nodes). The paper observes a 35–48% drop from
// 5→10 nodes and 10–20% from 10→15.
func (r *Runner) Fig9() error {
	nodeCounts := []int{5, 10, 15}
	theta := 0.8
	head := []string{"dataset", "5 nodes (s)", "10 nodes (s)", "15 nodes (s)", "drop 5→10", "drop 10→15"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.full(p)
		var secs []float64
		for _, n := range nodeCounts {
			cl, _, err := r.runAlgo("FS-Join", c, theta, n)
			if err != nil {
				return err
			}
			secs = append(secs, cl.seconds)
		}
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.1f", secs[0]),
			fmt.Sprintf("%.1f", secs[1]),
			fmt.Sprintf("%.1f", secs[2]),
			fmt.Sprintf("%.0f%%", 100*(secs[0]-secs[1])/secs[0]),
			fmt.Sprintf("%.0f%%", 100*(secs[1]-secs[2])/secs[1]),
		})
	}
	printTable(r.cfg.Out, "Figure 9: FS-Join time vs worker nodes (theta=0.8)", head, rows)
	return nil
}
