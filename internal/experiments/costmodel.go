package experiments

import (
	"fmt"

	"fsjoin/internal/core"
	"fsjoin/internal/dataset"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/similarity"
)

// CostModel checks Lemma 5's cost decomposition against measured job
// metrics: map cost and shuffle cost proportional to Σ|s_i| (no
// duplication), and the candidate-dependent verification cost far below the
// filtering cost.
func (r *Runner) CostModel() error {
	theta := 0.8
	head := []string{"dataset", "input tokens", "filter-map records", "lemma5 est. segments", "filter shuffle tokens", "dup-free", "comparisons", "lemma5 est. comparisons", "verify/filter time"}
	var rows [][]string
	for _, p := range dataset.Profiles() {
		c := r.small(p)
		// Duplicate-freedom is a property of the vertical partitioning, so
		// the check runs FS-Join-V; horizontal partitioning replicates
		// boundary records by design.
		opt := fsOptions(theta, 10)
		opt.HorizontalPivots = 0
		res, _, err := runFS(c, opt)
		if err != nil {
			return err
		}
		stages := res.Pipeline.Stages()
		filter := stages[1]
		verify := stages[2]
		inputTokens := int64(c.TotalTokens())
		// Each shuffled segment value carries 18 framing/meta bytes plus 4
		// bytes per token plus key/record overhead; recover the token count
		// from the segment records and sizes.
		segTokens := (filter.ShuffleBytes - filter.ShuffleRecords*(18+8+8)) / 4
		dupFree := "yes"
		if segTokens > inputTokens*11/10 { // >10% would mean duplication
			dupFree = "NO"
		}
		ratio := verify.SimulatedTotalTime.Seconds() / filter.SimulatedTotalTime.Seconds()
		est := core.EstimateCost(c, similarity.Jaccard, theta, 30, 1.0)
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", inputTokens),
			fmt.Sprintf("%d", filter.MapOutputRecords),
			fmt.Sprintf("%d", est.ExpectedSegments),
			fmt.Sprintf("%d", segTokens),
			dupFree,
			fmt.Sprintf("%d", res.Pipeline.Counter(fragjoin.CtrComparisons)),
			fmt.Sprintf("%d", est.CandidateRecords),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	printTable(r.cfg.Out, "Lemma 5 check: FS-Join cost decomposition (theta=0.8)", head, rows)
	return nil
}

// experimentsByName maps experiment ids to their runners.
func (r *Runner) experimentsByName() []struct {
	Name string
	Run  func() error
} {
	return []struct {
		Name string
		Run  func() error
	}{
		{"table3", r.Table3},
		{"table1", r.Table1},
		{"fig6", r.Fig6},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"fig12", r.Fig12},
		{"fig13", r.Fig13},
		{"table4", r.Table4},
		{"soundness", r.Soundness},
		{"approx", r.Approx},
		{"cost", r.CostModel},
	}
}

// Names lists the available experiment ids in presentation order.
func (r *Runner) Names() []string {
	var out []string
	for _, e := range r.experimentsByName() {
		out = append(out, e.Name)
	}
	return out
}

// Run executes one experiment by id.
func (r *Runner) Run(name string) error {
	for _, e := range r.experimentsByName() {
		if e.Name == name {
			return e.Run()
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, r.Names())
}

// All runs every experiment in presentation order.
func (r *Runner) All() error {
	for _, e := range r.experimentsByName() {
		if err := e.Run(); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
