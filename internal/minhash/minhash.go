// Package minhash implements the approximate set-similarity self-join the
// paper lists as future work ("we plan to extend our methods to approximate
// approaches"): MinHash signatures with locality-sensitive banding, run as
// MapReduce jobs on the same engine as the exact algorithms.
//
// Each record is summarised by k minimum hash values; the signature is cut
// into b bands of r rows (k = b·r). Two records land in the same candidate
// bucket when any band hashes identically, which happens with probability
// 1 − (1 − J^r)^b for Jaccard similarity J — the classic S-curve whose
// steep part is positioned around the threshold by the band shape chosen in
// Params. Candidates are then verified exactly, so the join has perfect
// precision and recall governed by the S-curve.
package minhash

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// Params configures the approximate join.
type Params struct {
	// Theta is the Jaccard threshold candidates are verified against.
	Theta float64
	// Bands and Rows shape the LSH S-curve; Bands·Rows hash functions are
	// evaluated per record. Zero values select a shape whose 50%-recall
	// point sits just below Theta (see Auto).
	Bands int
	Rows  int
	// Seed derives the hash family.
	Seed uint64
	// Cluster is the cost model (default: the paper's 10-node cluster).
	Cluster *mapreduce.Cluster
	// Ctx, when non-nil, cancels the pipeline at the next task boundary.
	Ctx context.Context
	// Parallelism is the local engine parallelism for every stage; see
	// mapreduce.Config.Parallelism.
	Parallelism int
	// Fault is the fault-tolerance and fault-injection policy inherited by
	// every stage; see mapreduce.FaultPolicy.
	Fault mapreduce.FaultPolicy
	// MemoryBudget caps each map task's in-memory shuffle buffer; records
	// beyond it spill to sorted runs on disk and merge back at reduce time
	// (see mapreduce.Config.MemoryBudgetBytes). 0 defers to the engine
	// default (FSJOIN_MEMORY_BUDGET); negative forces unbounded. Results
	// are byte-identical at any budget.
	MemoryBudget int64
	// SpillDir is the parent directory for spill files ("" = OS temp dir).
	SpillDir string
	// CheckpointDir, when non-empty, persists each completed pipeline
	// stage there for crash/restart recovery; see
	// mapreduce.Pipeline.CheckpointDir.
	CheckpointDir string
	// CheckpointSalt folds the caller's configuration into every stage
	// fingerprint, so one checkpoint directory reused under different
	// options recomputes instead of replaying mismatched state.
	CheckpointSalt string
	// Runtime selects the execution substrate (shuffle transport and, for
	// multi-process runs, the task executor); the zero value is the
	// in-process engine. See mapreduce.Runtime.
	Runtime mapreduce.Runtime
}

// Auto fills Bands and Rows so the S-curve's steep section brackets theta:
// the similarity at which a pair becomes a candidate with probability 50%
// is (1/b)^(1/r) ≈ theta − margin.
func Auto(theta float64) (bands, rows int) {
	best := math.Inf(1)
	bands, rows = 16, 4
	target := theta * 0.9
	for r := 2; r <= 12; r++ {
		for b := 4; b <= 64; b++ {
			mid := math.Pow(1/float64(b), 1/float64(r))
			if d := math.Abs(mid - target); d < best {
				best = d
				bands, rows = b, r
			}
		}
	}
	return bands, rows
}

// Result carries the approximate join's output and diagnostics.
type Result struct {
	// Pairs are the verified similar pairs found, sorted canonically.
	Pairs []result.Pair
	// Candidates is the number of distinct candidate pairs verified.
	Candidates int64
	// Pipeline exposes per-stage metrics.
	Pipeline *mapreduce.Pipeline
}

// sigValue ships a record's id, length and one band signature. The origin
// tag (0 = R/self, 1 = S) — not rid inequality — decides pairability in
// R-S mode, because R and S rid spaces may overlap.
type sigValue struct {
	rid    int32
	l      int32
	origin uint8
}

// SizeBytes implements mapreduce.Sized.
func (sigValue) SizeBytes() int { return 9 }

// recValue ships a full record for verification.
type recValue struct {
	rec tokens.Record
}

// SizeBytes implements mapreduce.Sized.
func (v recValue) SizeBytes() int { return 4 + 4*len(v.rec.Tokens) }

// taggedRecord is the banding job's input value: a record plus its origin
// relation (0 = R/self, 1 = S).
type taggedRecord struct {
	rec    tokens.Record
	origin uint8
}

// SizeBytes implements mapreduce.Sized.
func (t taggedRecord) SizeBytes() int { return 5 + 4*len(t.rec.Tokens) }

// tagInput converts a collection into banding-job input pairs.
func tagInput(c *tokens.Collection, origin uint8) []mapreduce.KV {
	kvs := make([]mapreduce.KV, 0, len(c.Records))
	for _, rec := range c.Records {
		kvs = append(kvs, mapreduce.KV{
			Key:   mapreduce.OriginKey(origin, uint32(rec.RID)),
			Value: taggedRecord{rec: rec, origin: origin},
		})
	}
	return kvs
}

// SelfJoin runs the two-job approximate pipeline: banding (map: signatures,
// reduce: bucket pair enumeration + dedup) and verification (records
// shipped to candidate pairs, exact Jaccard check).
func SelfJoin(c *tokens.Collection, p Params) (*Result, error) {
	return run(c, nil, p)
}

// Join runs the R-S variant: signatures are built for both relations, only
// cross-relation bucket pairs become candidates, and verification routes by
// the R-side rid with partner records resolved against S — so overlapping
// R and S rid spaces never alias. Result pairs carry the R-side id first.
func Join(r, s *tokens.Collection, p Params) (*Result, error) {
	if s == nil {
		return nil, errors.New("minhash: nil S collection")
	}
	return run(r, s, p)
}

func run(r, s *tokens.Collection, p Params) (*Result, error) {
	if p.Theta <= 0 || p.Theta > 1 {
		return nil, fmt.Errorf("minhash: theta %v outside (0, 1]", p.Theta)
	}
	if p.Bands <= 0 || p.Rows <= 0 {
		p.Bands, p.Rows = Auto(p.Theta)
	}
	if p.Cluster == nil {
		p.Cluster = mapreduce.DefaultCluster()
	}
	rs := s != nil
	pipe := mapreduce.NewPipeline("minhash-lsh", p.Cluster)
	pipe.Context = p.Ctx
	pipe.Parallelism = p.Parallelism
	pipe.Fault = p.Fault
	pipe.MemoryBudgetBytes = p.MemoryBudget
	pipe.SpillDir = p.SpillDir
	pipe.CheckpointDir = p.CheckpointDir
	pipe.CheckpointSalt = p.CheckpointSalt
	pipe.Runtime = p.Runtime

	// Job 1: band signatures → candidate pairs. Token ids hash directly, so
	// no global ordering job is needed; r and s share a dictionary.
	input := tagInput(r, 0)
	if rs {
		input = append(input, tagInput(s, 1)...)
	}
	hashes := newFamily(p.Seed, p.Bands*p.Rows)
	bandRes, err := pipe.Run(mapreduce.Config{Name: "banding"},
		input,
		mapreduce.MapFunc(func(ctx *mapreduce.Context, kv mapreduce.KV) {
			tr := kv.Value.(taggedRecord)
			rec := tr.rec
			if rec.Len() == 0 {
				return
			}
			sig := hashes.signature(rec.Tokens)
			for b := 0; b < p.Bands; b++ {
				key := bandKey(b, sig[b*p.Rows:(b+1)*p.Rows])
				ctx.Emit(key, sigValue{rid: rec.RID, l: int32(rec.Len()), origin: tr.origin})
			}
		}),
		&bucketJoiner{theta: p.Theta, rs: rs})
	if err != nil {
		return nil, err
	}
	dedup, err := pipe.Run(mapreduce.Config{Name: "candidates"},
		bandRes.Output, mapreduce.IdentityMapper, mapreduce.FirstValue{})
	if err != nil {
		return nil, err
	}

	// Job 2: verification with shipped records (Merge-style routing). Each
	// candidate routes to its R-side (self: smaller) rid; the partner side
	// resolves from the driver-shared index — S for R-S joins, so equal R
	// and S rids never alias.
	partnerSide := r
	if rs {
		partnerSide = s
	}
	verifyIn := make([]mapreduce.KV, 0, len(dedup.Output)+r.Len())
	for _, rec := range r.Records {
		verifyIn = append(verifyIn, mapreduce.KV{
			Key:   mapreduce.U32Key(uint32(rec.RID)),
			Value: recValue{rec: rec},
		})
	}
	for _, kv := range dedup.Output {
		a, b := mapreduce.DecodePairKey(kv.Key)
		verifyIn = append(verifyIn, mapreduce.KV{Key: mapreduce.U32Key(a), Value: partner(b)})
	}
	verRes, err := pipe.Run(mapreduce.Config{Name: "verify"},
		verifyIn, mapreduce.IdentityMapper,
		&verifier{theta: p.Theta, byRID: indexRecords(partnerSide), rs: rs})
	if err != nil {
		return nil, err
	}

	pairs := make([]result.Pair, 0, len(verRes.Output))
	for _, kv := range verRes.Output {
		a, b := mapreduce.DecodePairKey(kv.Key)
		v := kv.Value.(verified)
		pairs = append(pairs, result.Pair{A: int32(a), B: int32(b), Common: int(v.c), Sim: v.sim})
	}
	result.Sort(pairs)
	return &Result{
		Pairs:      pairs,
		Candidates: int64(len(dedup.Output)),
		Pipeline:   pipe,
	}, nil
}

// family is a seeded multiply-shift hash family over token ids.
type family struct {
	a, b []uint64
}

func newFamily(seed uint64, k int) *family {
	f := &family{a: make([]uint64, k), b: make([]uint64, k)}
	state := seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < k; i++ {
		f.a[i] = next() | 1 // odd multiplier
		f.b[i] = next()
	}
	return f
}

// signature returns the k min-hash values of a token set.
func (f *family) signature(ts []tokens.ID) []uint64 {
	sig := make([]uint64, len(f.a))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, t := range ts {
		x := uint64(t)
		for i := range f.a {
			h := f.a[i]*x + f.b[i]
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// bandKey hashes one band's rows into a bucket key.
func bandKey(band int, rows []uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(band))
	_, _ = h.Write(buf[:])
	for _, r := range rows {
		binary.BigEndian.PutUint64(buf[:], r)
		_, _ = h.Write(buf[:])
	}
	var out [10]byte
	binary.BigEndian.PutUint16(out[:2], uint16(band))
	binary.BigEndian.PutUint64(out[2:], h.Sum64())
	return string(out[:])
}

// bucketJoiner enumerates pairs within one band bucket, length-filtered.
// In R-S mode only cross-relation pairs qualify (origin, not rid
// inequality, decides — R#x may legitimately pair with S#x) and the
// candidate key carries the R-side rid first.
type bucketJoiner struct {
	theta float64
	rs    bool
}

// Reduce implements mapreduce.Reducer.
func (j *bucketJoiner) Reduce(ctx *mapreduce.Context, key string, values []any) {
	ps := make([]sigValue, len(values))
	for i, v := range values {
		ps[i] = v.(sigValue)
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].origin != ps[b].origin {
			return ps[a].origin < ps[b].origin
		}
		return ps[a].rid < ps[b].rid
	})
	fn := similarity.Jaccard
	for i := range ps {
		for k := i + 1; k < len(ps); k++ {
			a, b := ps[i], ps[k]
			if j.rs {
				if a.origin == b.origin {
					continue
				}
				if a.origin != 0 {
					a, b = b, a
				}
			} else if a.rid == b.rid {
				continue
			}
			la, lb := int(a.l), int(b.l)
			if la > lb {
				la, lb = lb, la
			}
			if la < fn.MinLen(j.theta, lb) {
				ctx.Inc("minhash.pruned.length", 1)
				continue
			}
			ctx.Inc("minhash.bucket.pairs", 1)
			ctx.Emit(mapreduce.PairKey(uint32(a.rid), uint32(b.rid)), candMark{})
		}
	}
}

// candMark is the zero-size candidate marker deduplicated by FirstValue.
type candMark struct{}

// SizeBytes implements mapreduce.Sized.
func (candMark) SizeBytes() int { return 0 }

// partner marks a candidate partner id in the verification job.
type partner int32

// SizeBytes implements mapreduce.Sized.
func (partner) SizeBytes() int { return 4 }

// verified is an accepted pair's payload.
type verified struct {
	c   int32
	sim float64
}

// SizeBytes implements mapreduce.Sized.
func (verified) SizeBytes() int { return 12 }

// verifier resolves candidate partners against its routed record and checks
// the exact similarity. Like MassJoin's Merge, partner records are looked
// up from the driver-shared index (the S side for R-S joins) while the
// candidate list arrives through the shuffle; the routed record itself
// travels as a recValue so shuffle accounting includes it.
type verifier struct {
	theta float64
	byRID map[int32]tokens.Record
	rs    bool
}

// Reduce implements mapreduce.Reducer.
func (v *verifier) Reduce(ctx *mapreduce.Context, key string, values []any) {
	rid := int32(mapreduce.DecodeU32Key(key))
	var own tokens.Record
	var partners []int32
	for _, val := range values {
		switch x := val.(type) {
		case recValue:
			own = x.rec
		case partner:
			partners = append(partners, int32(x))
		}
	}
	if own.Tokens == nil {
		return
	}
	sort.Slice(partners, func(i, j int) bool { return partners[i] < partners[j] })
	fn := similarity.Jaccard
	for _, p := range partners {
		other, ok := v.byRID[p]
		if !ok {
			continue
		}
		ctx.Inc("minhash.verifications", 1)
		if v.rs {
			ctx.Inc(result.CtrRSCandidates, 1)
		}
		c := tokens.Intersect(own.Tokens, other.Tokens)
		if fn.AtLeast(c, own.Len(), other.Len(), v.theta) {
			if v.rs {
				ctx.Inc(result.CtrRSEmitted, 1)
			}
			ctx.Emit(mapreduce.PairKey(uint32(rid), uint32(p)),
				verified{c: int32(c), sim: fn.Sim(c, own.Len(), other.Len())})
		}
	}
}

// indexRecords builds the verification-side record lookup.
func indexRecords(c *tokens.Collection) map[int32]tokens.Record {
	m := make(map[int32]tokens.Record, c.Len())
	for _, r := range c.Records {
		m[r.RID] = r
	}
	return m
}
