package minhash

import (
	"math"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

func TestApproxJoinHighRecallPerfectPrecision(t *testing.T) {
	c := testutil.RandomCollection(150, 60, 25, 5)
	for _, theta := range []float64{0.7, 0.85} {
		want := bruteforce.SelfJoin(c, similarity.Jaccard, theta)
		res, err := SelfJoin(c, Params{Theta: theta, Cluster: testutil.SmallCluster(), Bands: 48, Rows: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Perfect precision: every returned pair is verified similar.
		wantKeys := map[uint64]bool{}
		for _, p := range want {
			wantKeys[p.Key()] = true
		}
		for _, p := range res.Pairs {
			if !wantKeys[p.Key()] {
				t.Fatalf("theta=%v: false positive %v", theta, p)
			}
		}
		// High recall with a generous band shape (48 bands of 3 rows put
		// the 50% point at ~0.27, so recall at θ≥0.7 should be ≈ 1).
		if len(want) > 0 {
			recall := float64(len(res.Pairs)) / float64(len(want))
			if recall < 0.95 {
				t.Fatalf("theta=%v: recall %.2f (%d/%d)", theta, recall, len(res.Pairs), len(want))
			}
		}
	}
}

func TestApproxJoinDeterministic(t *testing.T) {
	c := testutil.RandomCollection(80, 40, 15, 6)
	a, err := SelfJoin(c, Params{Theta: 0.8, Seed: 3, Cluster: testutil.SmallCluster()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfJoin(c, Params{Theta: 0.8, Seed: 3, Cluster: testutil.SmallCluster()})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) || a.Candidates != b.Candidates {
		t.Fatal("same seed, different outcome")
	}
}

func TestApproxJoinRSHighRecallPerfectPrecision(t *testing.T) {
	// Overlapping rid spaces: verification must resolve a candidate's S
	// side against S, never against the R record that shares the rid.
	r := testutil.RandomCollection(80, 60, 25, 7)
	s := testutil.RandomCollection(80, 60, 25, 8)
	theta := 0.7
	want := bruteforce.Join(r, s, similarity.Jaccard, theta)
	res, err := Join(r, s, Params{Theta: theta, Cluster: testutil.SmallCluster(), Bands: 48, Rows: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := map[uint64]bool{}
	for _, p := range want {
		wantKeys[p.Key()] = true
	}
	for _, p := range res.Pairs {
		if !wantKeys[p.Key()] {
			t.Fatalf("false positive %v", p)
		}
	}
	if len(want) > 0 {
		if recall := float64(len(res.Pairs)) / float64(len(want)); recall < 0.95 {
			t.Fatalf("recall %.2f (%d/%d)", recall, len(res.Pairs), len(want))
		}
	}
}

func TestApproxJoinNilS(t *testing.T) {
	c := testutil.RandomCollection(5, 10, 5, 9)
	if _, err := Join(c, nil, Params{Theta: 0.5, Cluster: testutil.SmallCluster()}); err == nil {
		t.Fatal("nil S collection accepted")
	}
}

func TestAutoBandShape(t *testing.T) {
	for _, theta := range []float64{0.5, 0.7, 0.9} {
		b, r := Auto(theta)
		if b < 1 || r < 1 {
			t.Fatalf("degenerate shape %d×%d", b, r)
		}
		mid := math.Pow(1/float64(b), 1/float64(r))
		if mid > theta {
			t.Fatalf("theta=%v: 50%% point %.3f above threshold", theta, mid)
		}
		if mid < theta*0.5 {
			t.Fatalf("theta=%v: 50%% point %.3f too loose", theta, mid)
		}
	}
}

func TestSignatureProperties(t *testing.T) {
	f := newFamily(1, 64)
	a := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	sigA := f.signature(a)
	// Identical sets → identical signatures.
	sigA2 := f.signature(append([]uint32{}, a...))
	for i := range sigA {
		if sigA[i] != sigA2[i] {
			t.Fatal("signature not deterministic")
		}
	}
	// Signature of a superset can only keep or lower each min-hash.
	super := append(append([]uint32{}, a...), 100, 101)
	sigS := f.signature(super)
	for i := range sigA {
		if sigS[i] > sigA[i] {
			t.Fatal("superset raised a min-hash")
		}
	}
}

func TestMinhashEstimatesJaccard(t *testing.T) {
	// The fraction of agreeing min-hash positions estimates Jaccard.
	f := newFamily(7, 512)
	a := make([]uint32, 0, 60)
	b := make([]uint32, 0, 60)
	for i := uint32(0); i < 40; i++ {
		a = append(a, i)
		b = append(b, i)
	}
	for i := uint32(100); i < 120; i++ {
		a = append(a, i)
		b = append(b, i+1000)
	}
	// |a∩b| = 40, |a∪b| = 80 → J = 0.5.
	sa, sb := f.signature(a), f.signature(b)
	agree := 0
	for i := range sa {
		if sa[i] == sb[i] {
			agree++
		}
	}
	est := float64(agree) / float64(len(sa))
	if math.Abs(est-0.5) > 0.08 {
		t.Fatalf("minhash estimate %.3f far from 0.5", est)
	}
}

func TestInvalidTheta(t *testing.T) {
	c := testutil.RandomCollection(5, 10, 5, 1)
	if _, err := SelfJoin(c, Params{Theta: 0}); err == nil {
		t.Fatal("theta 0 accepted")
	}
}
