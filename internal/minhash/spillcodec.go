package minhash

import (
	"encoding/binary"
	"math"

	"fsjoin/internal/spill"
	"fsjoin/internal/tokens"
)

// Spill codecs for this package's shuffle values (DESIGN.md §8) and for
// verified, the verify stage's output, which makes the final stage
// checkpointable (DESIGN.md §9). taggedRecord is the banding job's input
// (an R/S-tagged record), registered so R-S joins checkpoint and
// fingerprint that stage boundary. Tags 56–60 and 62; this package owns
// tags 56–60 and 62.
func init() {
	spill.RegisterValue(62, taggedRecord{},
		func(buf []byte, v any) []byte {
			t := v.(taggedRecord)
			buf = append(buf, t.origin)
			buf = binary.AppendVarint(buf, int64(t.rec.RID))
			return spill.AppendU32s(buf, t.rec.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			t := taggedRecord{origin: d.Byte()}
			t.rec.RID = int32(d.Varint())
			t.rec.Tokens = d.U32s()
			return t, d.Err()
		})
	spill.RegisterValue(60, verified{},
		func(buf []byte, v any) []byte {
			x := v.(verified)
			buf = binary.AppendVarint(buf, int64(x.c))
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x.sim))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			x := verified{c: int32(d.Varint())}
			x.sim = math.Float64frombits(d.U64())
			return x, d.Err()
		})
	spill.RegisterValue(56, sigValue{},
		func(buf []byte, v any) []byte {
			s := v.(sigValue)
			buf = append(buf, s.origin)
			buf = binary.AppendVarint(buf, int64(s.rid))
			return binary.AppendVarint(buf, int64(s.l))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			s := sigValue{origin: d.Byte(), rid: int32(d.Varint()), l: int32(d.Varint())}
			return s, d.Err()
		})
	spill.RegisterValue(57, candMark{},
		func(buf []byte, v any) []byte { return buf },
		func(b []byte) (any, error) { return candMark{}, nil })
	spill.RegisterValue(58, recValue{},
		func(buf []byte, v any) []byte {
			r := v.(recValue)
			buf = binary.AppendVarint(buf, int64(r.rec.RID))
			return spill.AppendU32s(buf, r.rec.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			r := recValue{rec: tokens.Record{RID: int32(d.Varint())}}
			r.rec.Tokens = d.U32s()
			return r, d.Err()
		})
	spill.RegisterValue(59, partner(0),
		func(buf []byte, v any) []byte {
			return binary.AppendVarint(buf, int64(v.(partner)))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := partner(d.Varint())
			return p, d.Err()
		})
}
