// Bitmap signature filter (Sandes, Teodoro, Melo — "Bitmap Filter:
// Speeding up Exact Set Similarity Joins with Bitwise Operations", arXiv
// 1711.07295): every record/segment gets a fixed-width hashed token bitmap
// built once, and candidate pairs are rejected with one XOR + popcount
// before any postings walk, token merge or verification.
//
// The bound: with presence bitmaps (bit h(t) set for every token t), a bit
// set in sig(A) but not sig(B) proves at least one token of A∖B, and
// distinct bits prove distinct tokens. Hence
//
//	|AΔB| ≥ popcount(sig(A) XOR sig(B))
//	|A∩B| ≤ ⌊(|A| + |B| − popcount(XOR)) / 2⌋
//
// regardless of hash collisions — collisions only loosen the bound, never
// break it, so the filter is exact: it rejects only pairs that true
// verification would reject too. The threshold algebra is shared with the
// paper's filters: the upper bound feeds the same SegI/SegD inequalities
// (Jaccard, Dice, Cosine via similarity.Func.MinOverlap*), turning a
// similarity threshold into a minimum-popcount reject test.
package filters

import (
	"fmt"
	"math/bits"
	"os"
	"strconv"
)

// BitmapMode selects how the bitmap signature filter is applied.
type BitmapMode uint8

const (
	// BitmapAuto enables the filter with the width chosen from length
	// statistics; the FSJOIN_BITMAP / FSJOIN_BITMAP_WIDTH environment
	// variables may override it (the test-filters CI job forces both
	// directions through them).
	BitmapAuto BitmapMode = iota
	// BitmapOn forces the filter on, ignoring the environment.
	BitmapOn
	// BitmapOff disables the filter, ignoring the environment.
	BitmapOff
)

// String implements fmt.Stringer.
func (m BitmapMode) String() string {
	switch m {
	case BitmapAuto:
		return "auto"
	case BitmapOn:
		return "on"
	case BitmapOff:
		return "off"
	default:
		return fmt.Sprintf("BitmapMode(%d)", int(m))
	}
}

// ParseBitmapMode parses "auto", "on" or "off".
func ParseBitmapMode(s string) (BitmapMode, error) {
	switch s {
	case "auto", "":
		return BitmapAuto, nil
	case "on":
		return BitmapOn, nil
	case "off":
		return BitmapOff, nil
	default:
		return 0, fmt.Errorf("filters: bitmap mode %q (want auto, on or off)", s)
	}
}

// BitmapConfig configures the signature filter for one join.
type BitmapConfig struct {
	// Mode toggles the filter (default BitmapAuto: enabled).
	Mode BitmapMode
	// Width forces the signature width in bits (64, 128 or 256); 0 picks
	// the width per fragment/group from its mean set length.
	Width int
}

// Counter names every bitmap-filter call site increments, surfaced through
// fsjoin.Stats and cmd/benchreport's filter_effectiveness section.
const (
	// CtrBitmapBuilt counts signatures built (one per segment or record
	// occurrence in a reduce group).
	CtrBitmapBuilt = "bitmap.built"
	// CtrBitmapRejected counts candidate pairs the popcount bound rejected
	// before any exact intersection or verification.
	CtrBitmapRejected = "bitmap.rejected"
	// CtrBitmapPassed counts candidate pairs that survived the bound and
	// went on to exact work.
	CtrBitmapPassed = "bitmap.passed"
	// CtrVerifyCandidates counts candidate pairs reaching exact
	// verification, so the bitmap filter's verified-candidate delta is a
	// number: ridpairs increments it per verifyOverlap call, FS-Join per
	// aggregated pair reaching the verification reducer.
	CtrVerifyCandidates = "verify.candidates"
)

// Validate rejects unsupported widths.
func (c BitmapConfig) Validate() error {
	switch c.Width {
	case 0, 64, 128, 256:
		return nil
	default:
		return fmt.Errorf("filters: bitmap width %d (want 0, 64, 128 or 256)", c.Width)
	}
}

// ResolveEnv applies the FSJOIN_BITMAP and FSJOIN_BITMAP_WIDTH environment
// overrides to an auto-mode config, mirroring FSJOIN_MEMORY_BUDGET: an
// explicit Mode wins, auto defers to the environment. Invalid environment
// values are ignored (the environment must never break a join). Call once
// per pipeline, not per reduce group.
func (c BitmapConfig) ResolveEnv() BitmapConfig {
	if c.Mode != BitmapAuto {
		return c
	}
	if m, err := ParseBitmapMode(os.Getenv("FSJOIN_BITMAP")); err == nil {
		c.Mode = m
	}
	if c.Width == 0 {
		if w, err := strconv.Atoi(os.Getenv("FSJOIN_BITMAP_WIDTH")); err == nil {
			if (BitmapConfig{Width: w}).Validate() == nil {
				c.Width = w
			}
		}
	}
	return c
}

// Enabled reports whether signatures should be built at all.
func (c BitmapConfig) Enabled() bool { return c.Mode != BitmapOff }

// SigMaxWords is the storage capacity of a Signature: 256 bits.
const SigMaxWords = 4

// Signature is one fixed-width hashed token bitmap. Only the first w words
// (as returned by BitmapConfig.Words) are meaningful; both sides of a
// comparison must use the same w.
type Signature [SigMaxWords]uint64

// Words picks the signature width in 64-bit words for sets of the given
// mean length. The bound loosens as the load factor |set|/bits grows (every
// collision hides one symmetric-difference token), so the width tracks
// roughly 3 bits per expected token, clamped to the supported 64/128/256
// range: DESIGN.md §11 derives the ≲⅓ load-factor target.
func (c BitmapConfig) Words(meanLen float64) int {
	switch {
	case c.Width != 0:
		return c.Width / 64
	case meanLen <= 24:
		return 1
	case meanLen <= 88:
		return 2
	default:
		return SigMaxWords
	}
}

// sigShift maps a mixed 64-bit hash to a bit index in a w-word signature
// by keeping its top 6 (w=1), 7 (w=2) or 8 (w=4) bits.
func sigShift(w int) uint {
	switch w {
	case 1:
		return 58
	case 2:
		return 57
	default:
		return 56
	}
}

// sigMix is the Fibonacci-hashing multiplier (2^64/φ); token ids are dense
// dictionary ranks, so consecutive ids must spread across the word.
const sigMix = 0x9E3779B97F4A7C15

// BuildSignature fills sig with the w-word hashed bitmap of toks.
// Duplicate, unsorted or empty inputs are all safe: duplicates land on one
// bit, order is irrelevant, empty builds the zero signature.
func BuildSignature(sig *Signature, toks []uint32, w int) {
	*sig = Signature{}
	shift := sigShift(w)
	for _, t := range toks {
		idx := (uint64(t) * sigMix) >> shift
		sig[idx>>6] |= 1 << (idx & 63)
	}
}

// SigOverlapUB returns the signature upper bound on |A∩B| for sets of
// sizes la, lb: ⌊(la+lb − popcount(a XOR b))/2⌋, additionally clamped to
// min(la, lb). The true overlap never exceeds it.
func SigOverlapUB(a, b *Signature, w, la, lb int) int {
	x := 0
	for i := 0; i < w; i++ {
		x += bits.OnesCount64(a[i] ^ b[i])
	}
	ub := (la + lb - x) / 2
	if m := min(la, lb); ub > m {
		ub = m
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}

// SigPrune reports whether the popcount bound alone proves the pair cannot
// reach the required overlap — the minimum-popcount reject test: it is
// equivalent to popcount(XOR) > la + lb − 2·required.
func SigPrune(a, b *Signature, w, la, lb, required int) bool {
	return SigOverlapUB(a, b, w, la, lb) < required
}
