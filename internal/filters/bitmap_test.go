package filters

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsjoin/internal/similarity"
)

// exactOverlap is the reference |A∩B| for possibly-duplicated inputs,
// counted over the deduplicated sets like the signature bound is.
func exactOverlap(a, b []uint32) (c, la, lb int) {
	sa := map[uint32]bool{}
	for _, t := range a {
		sa[t] = true
	}
	sb := map[uint32]bool{}
	for _, t := range b {
		sb[t] = true
	}
	for t := range sa {
		if sb[t] {
			c++
		}
	}
	return c, len(sa), len(sb)
}

func dedup(toks []uint32) []uint32 {
	seen := map[uint32]bool{}
	out := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// TestSigBoundNeverBelowTrueOverlap is the filter's soundness property: for
// random token sets, every width and every similarity function, the
// popcount upper bound is ≥ the true overlap, so SigPrune never rejects a
// pair the exact filters would keep. Run under -race by the test-filters
// target.
func TestSigBoundNeverBelowTrueOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(rawA, rawB []uint32, span16 uint16) bool {
		// Confine tokens to a smallish span so overlaps actually happen.
		span := uint32(span16)%4096 + 8
		for i := range rawA {
			rawA[i] %= span
		}
		for i := range rawB {
			rawB[i] %= span
		}
		a, b := dedup(rawA), dedup(rawB)
		c, la, lb := exactOverlap(a, b)
		for _, w := range []int{1, 2, 4} {
			var sa, sb Signature
			BuildSignature(&sa, a, w)
			BuildSignature(&sb, b, w)
			ub := SigOverlapUB(&sa, &sb, w, la, lb)
			if ub < c {
				t.Logf("w=%d: ub %d < true overlap %d (la=%d lb=%d)", w, ub, c, la, lb)
				return false
			}
			if ub > min(la, lb) {
				t.Logf("w=%d: ub %d above min(la,lb)=%d", w, ub, min(la, lb))
				return false
			}
			// SigPrune must agree with the bound, and never fire when the
			// true overlap meets the requirement.
			for _, fn := range []similarity.Func{similarity.Jaccard, similarity.Cosine, similarity.Dice} {
				theta := 0.5 + rng.Float64()/2
				req := fn.MinOverlap(theta, la, lb)
				if SigPrune(&sa, &sb, w, la, lb, req) && c >= req {
					t.Logf("w=%d %v θ=%g: pruned pair with overlap %d ≥ required %d", w, fn, theta, c, req)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestSigIdenticalSetsPassthrough pins the no-collision-harm direction: a
// set compared against itself has XOR zero, so the bound is min(la,lb)
// and SigPrune can only fire when even full overlap is insufficient.
func TestSigIdenticalSetsPassthrough(t *testing.T) {
	toks := []uint32{3, 9, 77, 1024, 99999}
	for _, w := range []int{1, 2, 4} {
		var s Signature
		BuildSignature(&s, toks, w)
		if ub := SigOverlapUB(&s, &s, w, len(toks), len(toks)); ub != len(toks) {
			t.Fatalf("w=%d: self bound %d, want %d", w, ub, len(toks))
		}
		if SigPrune(&s, &s, w, len(toks), len(toks), len(toks)) {
			t.Fatalf("w=%d: self pair pruned at required=%d", w, len(toks))
		}
		if !SigPrune(&s, &s, w, len(toks), len(toks), len(toks)+1) {
			t.Fatalf("w=%d: impossible requirement not pruned", w)
		}
	}
}

// TestBuildSignatureSetsEveryTokenBit checks membership: every token's
// hashed bit is set, and only the first w words are ever touched.
func TestBuildSignatureSetsEveryTokenBit(t *testing.T) {
	toks := []uint32{0, 1, 2, 500, 1 << 20, 4294967295}
	for _, w := range []int{1, 2, 4} {
		var s Signature
		BuildSignature(&s, toks, w)
		shift := sigShift(w)
		for _, tok := range toks {
			idx := (uint64(tok) * sigMix) >> shift
			if s[idx>>6]&(1<<(idx&63)) == 0 {
				t.Fatalf("w=%d: token %d bit not set", w, tok)
			}
		}
		for i := w; i < SigMaxWords; i++ {
			if s[i] != 0 {
				t.Fatalf("w=%d: word %d written outside width", w, i)
			}
		}
	}
}

func TestBitmapWords(t *testing.T) {
	var c BitmapConfig
	for _, tc := range []struct {
		mean float64
		want int
	}{{0, 1}, {10, 1}, {24, 1}, {25, 2}, {88, 2}, {89, 4}, {1000, 4}} {
		if got := c.Words(tc.mean); got != tc.want {
			t.Fatalf("Words(%g) = %d, want %d", tc.mean, got, tc.want)
		}
	}
	for _, tc := range []struct{ width, want int }{{64, 1}, {128, 2}, {256, 4}} {
		pinned := BitmapConfig{Width: tc.width}
		if got := pinned.Words(1000); got != tc.want {
			t.Fatalf("pinned Words(width=%d) = %d, want %d", tc.width, got, tc.want)
		}
	}
}

func TestBitmapModeStringParse(t *testing.T) {
	for _, m := range []BitmapMode{BitmapAuto, BitmapOn, BitmapOff} {
		got, err := ParseBitmapMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v, %v", m, got, err)
		}
	}
	if m, err := ParseBitmapMode(""); err != nil || m != BitmapAuto {
		t.Fatalf("empty mode: %v, %v", m, err)
	}
	if _, err := ParseBitmapMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if BitmapMode(9).String() != "BitmapMode(9)" {
		t.Fatal("unknown mode name")
	}
}

func TestBitmapConfigValidate(t *testing.T) {
	for _, w := range []int{0, 64, 128, 256} {
		if err := (BitmapConfig{Width: w}).Validate(); err != nil {
			t.Fatalf("width %d rejected: %v", w, err)
		}
	}
	for _, w := range []int{1, 32, 63, 65, 512, -64} {
		if err := (BitmapConfig{Width: w}).Validate(); err == nil {
			t.Fatalf("width %d accepted", w)
		}
	}
}

func TestBitmapResolveEnv(t *testing.T) {
	t.Setenv("FSJOIN_BITMAP", "off")
	t.Setenv("FSJOIN_BITMAP_WIDTH", "128")
	got := BitmapConfig{}.ResolveEnv()
	if got.Mode != BitmapOff || got.Width != 128 {
		t.Fatalf("auto config ignored environment: %+v", got)
	}
	// Explicit mode wins over the environment entirely.
	got = (BitmapConfig{Mode: BitmapOn}).ResolveEnv()
	if got.Mode != BitmapOn || got.Width != 0 {
		t.Fatalf("explicit mode overridden: %+v", got)
	}
	// Explicit width survives even when the environment disagrees.
	got = (BitmapConfig{Width: 64}).ResolveEnv()
	if got.Width != 64 {
		t.Fatalf("explicit width overridden: %+v", got)
	}
	// Invalid environment values are ignored, never an error.
	t.Setenv("FSJOIN_BITMAP", "banana")
	t.Setenv("FSJOIN_BITMAP_WIDTH", "65")
	got = BitmapConfig{}.ResolveEnv()
	if got.Mode != BitmapAuto || got.Width != 0 {
		t.Fatalf("invalid environment applied: %+v", got)
	}
	if !got.Enabled() {
		t.Fatal("auto mode should be enabled")
	}
	if (BitmapConfig{Mode: BitmapOff}).Enabled() {
		t.Fatal("off mode should be disabled")
	}
}
