package filters

import (
	"math/rand"
	"testing"

	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// segPair builds a random record pair sorted under one global order, splits
// both at the same random pivots, and returns aligned per-fragment segment
// metadata plus the exact intersection facts.
type segPair struct {
	sMeta, tMeta []SegMeta // per fragment
	segC         []int     // per-fragment segment intersections
	ls, lt       int
	c            int // total intersection
}

func makeSegPair(rng *rand.Rand, similar bool) segPair {
	vocab := 200
	var a, b []tokens.ID
	if similar {
		n := rng.Intn(30) + 10
		base := randSet(rng, n, vocab)
		a = base
		b = append([]tokens.ID{}, base...)
		if rng.Intn(2) == 0 && len(b) > 1 {
			b = b[:len(b)-1]
		}
	} else {
		a = randSet(rng, rng.Intn(30)+1, vocab)
		b = randSet(rng, rng.Intn(30)+1, vocab)
	}
	ra := tokens.NewRecord(0, a)
	rb := tokens.NewRecord(1, b)

	np := rng.Intn(6) + 1
	pivots := make([]int, 0, np)
	prev := 0
	for i := 0; i < np; i++ {
		p := prev + rng.Intn(vocab/np) + 1
		if p >= vocab {
			break
		}
		pivots = append(pivots, p)
		prev = p
	}
	frags := len(pivots) + 1
	fragOf := func(tok tokens.ID) int {
		f := 0
		for f < len(pivots) && int(tok) >= pivots[f] {
			f++
		}
		return f
	}
	sp := segPair{
		sMeta: make([]SegMeta, frags),
		tMeta: make([]SegMeta, frags),
		segC:  make([]int, frags),
		ls:    ra.Len(), lt: rb.Len(),
		c: tokens.Intersect(ra.Tokens, rb.Tokens),
	}
	fill := func(rec tokens.Record, metas []SegMeta) {
		pos := 0
		for f := 0; f < frags; f++ {
			start := pos
			for pos < rec.Len() && fragOf(rec.Tokens[pos]) == f {
				pos++
			}
			metas[f] = SegMeta{SegLen: pos - start, StrLen: rec.Len(), Head: start, Tail: rec.Len() - pos}
		}
	}
	fill(ra, sp.sMeta)
	fill(rb, sp.tMeta)
	// Per-fragment intersections.
	i, j := 0, 0
	for i < ra.Len() && j < rb.Len() {
		switch {
		case ra.Tokens[i] == rb.Tokens[j]:
			sp.segC[fragOf(ra.Tokens[i])]++
			i++
			j++
		case ra.Tokens[i] < rb.Tokens[j]:
			i++
		default:
			j++
		}
	}
	return sp
}

func randSet(rng *rand.Rand, n, vocab int) []tokens.ID {
	ids := make([]tokens.ID, n)
	for i := range ids {
		ids[i] = tokens.ID(rng.Intn(vocab))
	}
	return ids
}

// TestFiltersNeverPruneSimilarPairs is the lemmas' soundness property: for
// pairs meeting the threshold, no filter's prune condition holds in any
// fragment.
func TestFiltersNeverPruneSimilarPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fn := similarity.Jaccard
	checked := 0
	for trial := 0; trial < 30000 && checked < 4000; trial++ {
		sp := makeSegPair(rng, true)
		theta := float64(rng.Intn(5)+5) / 10
		if !fn.AtLeast(sp.c, sp.ls, sp.lt, theta) {
			continue
		}
		checked++
		if StrLPrune(fn, theta, sp.ls, sp.lt) {
			t.Fatalf("StrL pruned similar pair (c=%d ls=%d lt=%d θ=%v)", sp.c, sp.ls, sp.lt, theta)
		}
		for f := range sp.sMeta {
			s, tm := sp.sMeta[f], sp.tMeta[f]
			if s.SegLen == 0 || tm.SegLen == 0 {
				continue
			}
			if SegLPrune(fn, theta, s, tm) {
				t.Fatalf("SegL pruned similar pair at fragment %d (θ=%v s=%+v t=%+v)", f, theta, s, tm)
			}
			if SegIPrune(fn, theta, sp.segC[f], s, tm) {
				t.Fatalf("SegI pruned similar pair at fragment %d (c_f=%d θ=%v)", f, sp.segC[f], theta)
			}
			if SegDPrune(fn, theta, sp.segC[f], s, tm) {
				t.Fatalf("SegD pruned similar pair at fragment %d (c_f=%d θ=%v)", f, sp.segC[f], theta)
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d similar pairs generated", checked)
	}
}

// TestFilterPruneImpliesDissimilar: whenever a filter prunes, the pair is
// in fact below the threshold (per-fragment safety, DESIGN.md §3).
func TestFilterPruneImpliesDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fn := similarity.Jaccard
	pruned := 0
	for trial := 0; trial < 20000; trial++ {
		sp := makeSegPair(rng, trial%3 == 0)
		theta := float64(rng.Intn(5)+5) / 10
		similar := fn.AtLeast(sp.c, sp.ls, sp.lt, theta)
		anyPrune := StrLPrune(fn, theta, sp.ls, sp.lt)
		for f := range sp.sMeta {
			s, tm := sp.sMeta[f], sp.tMeta[f]
			if s.SegLen == 0 || tm.SegLen == 0 {
				continue
			}
			if SegLPrune(fn, theta, s, tm) ||
				SegIPrune(fn, theta, sp.segC[f], s, tm) ||
				SegDPrune(fn, theta, sp.segC[f], s, tm) {
				anyPrune = true
			}
		}
		if anyPrune {
			pruned++
			if similar {
				t.Fatalf("pruned a similar pair (c=%d ls=%d lt=%d θ=%v)", sp.c, sp.ls, sp.lt, theta)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("filters never pruned anything — test vacuous")
	}
}

// TestSegIEquivalentToSegD documents the reproduction finding (DESIGN.md
// §3): with the only evaluable bounds (min for intersections, abs for
// differences), Lemma 3's and Lemma 4's prune conditions are algebraically
// identical.
func TestSegIEquivalentToSegD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fn := similarity.Jaccard
	for trial := 0; trial < 20000; trial++ {
		sp := makeSegPair(rng, trial%2 == 0)
		theta := float64(rng.Intn(9)+1) / 10
		for f := range sp.sMeta {
			s, tm := sp.sMeta[f], sp.tMeta[f]
			if s.SegLen == 0 || tm.SegLen == 0 {
				continue
			}
			i := SegIPrune(fn, theta, sp.segC[f], s, tm)
			d := SegDPrune(fn, theta, sp.segC[f], s, tm)
			if i != d {
				t.Fatalf("SegI=%v SegD=%v diverge (c=%d s=%+v t=%+v θ=%v)", i, d, sp.segC[f], s, tm, theta)
			}
		}
	}
}

// TestSegPrefixLossless: for similar pairs, every fragment with a non-zero
// segment overlap has its smallest common token inside both segments'
// lossless prefixes (the exactness guarantee of the prefix join).
func TestSegPrefixLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fn := similarity.Jaccard
	checked := 0
	for trial := 0; trial < 30000 && checked < 3000; trial++ {
		sp := makeSegPair(rng, true)
		theta := float64(rng.Intn(5)+5) / 10
		if !fn.AtLeast(sp.c, sp.ls, sp.lt, theta) {
			continue
		}
		checked++
		for f := range sp.sMeta {
			if sp.segC[f] == 0 {
				continue
			}
			ps := SegPrefixLen(fn, theta, sp.sMeta[f])
			pt := SegPrefixLen(fn, theta, sp.tMeta[f])
			// Derive the guaranteed requirement L for both sides: the
			// smallest common token's position must be < prefix length.
			// We can't reconstruct tokens here, but the requirement test
			// is: segC ≥ segLen − prefixLen + 1 is NOT needed; instead we
			// check the bound arithmetic: L(s) ≤ segC.
			ls := sp.sMeta[f].SegLen - ps + 1
			lt := sp.tMeta[f].SegLen - pt + 1
			if sp.segC[f] < ls || sp.segC[f] < lt {
				t.Fatalf("lossless prefix bound violated: c_f=%d required ≥ (%d,%d) (θ=%v)",
					sp.segC[f], ls, lt, theta)
			}
		}
	}
	if checked < 500 {
		t.Fatalf("only %d similar pairs checked", checked)
	}
}

func TestSegPrefixLenBounds(t *testing.T) {
	fn := similarity.Jaccard
	for _, theta := range []float64{0.5, 0.8, 0.95} {
		for seg := 0; seg <= 20; seg++ {
			for head := 0; head <= 30; head += 5 {
				m := SegMeta{SegLen: seg, StrLen: seg + head + 3, Head: head, Tail: 3}
				p := SegPrefixLen(fn, theta, m)
				if seg == 0 && p != 0 {
					t.Fatalf("empty segment prefix %d", p)
				}
				if seg > 0 && (p < 1 || p > seg) {
					t.Fatalf("prefix %d out of [1,%d]", p, seg)
				}
				n := SegPrefixLenNaive(theta, m)
				if seg > 0 && (n < 1 || n > seg) {
					t.Fatalf("naive prefix %d out of [1,%d]", n, seg)
				}
			}
		}
	}
}

func TestSetString(t *testing.T) {
	if All.String() != "StrL+SegL+SegI+SegD+Prefix" {
		t.Fatalf("All = %q", All.String())
	}
	if Set(0).String() != "none" {
		t.Fatal("zero set name")
	}
	if !(StrL | SegD).Has(SegD) || (StrL | SegD).Has(SegI) {
		t.Fatal("Has broken")
	}
}
