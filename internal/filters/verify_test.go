package filters

import "testing"

func TestVerifyOverlapEarlyTermination(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{6, 7, 8, 9, 10}
	if c, ok := VerifyOverlap(a, b, 3); ok {
		t.Errorf("disjoint sets reported ok with c=%d", c)
	}
	c, ok := VerifyOverlap(a, a, 5)
	if !ok || c != 5 {
		t.Errorf("identical sets: got c=%d ok=%v", c, ok)
	}
	if c, ok := VerifyOverlap(a, []uint32{1, 2, 9, 10, 11}, 3); ok {
		t.Errorf("overlap 2 passed required 3 (c=%d)", c)
	}
}

func TestVerifyOverlapExactWhenUnrequired(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{3, 4, 5, 6, 9}
	c, ok := VerifyOverlap(a, b, 0)
	if !ok || c != 2 {
		t.Errorf("required 0: got c=%d ok=%v, want exact 2", c, ok)
	}
	if c, ok := VerifyOverlap(nil, b, 0); !ok || c != 0 {
		t.Errorf("empty side: got c=%d ok=%v", c, ok)
	}
	if _, ok := VerifyOverlap(nil, b, 1); ok {
		t.Error("empty side reached required 1")
	}
}
