package filters

import (
	"encoding/binary"
	"testing"
)

// FuzzBitmapSignature stresses the signature build and popcount bound with
// arbitrary byte-derived token sets: raw bytes become two token slices
// (duplicates and any ordering allowed), and the invariants of DESIGN.md
// §11 must hold exactly for every width:
//
//   - every token's hashed bit is set in its own signature;
//   - no word outside the configured width is written;
//   - the XOR+popcount upper bound is never below the true deduplicated
//     overlap (soundness — collisions may only loosen the bound);
//   - SigPrune is consistent with the bound and monotone in the
//     requirement.
func FuzzBitmapSignature(f *testing.F) {
	f.Add([]byte{}, []byte{1, 2, 3, 4}, uint8(0))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1}, []byte{0, 0, 0, 1}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, []byte{9, 10, 11, 12}, uint8(2))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, wsel uint8) {
		w := []int{1, 2, 4}[int(wsel)%3]
		decode := func(raw []byte) []uint32 {
			toks := make([]uint32, 0, len(raw)/4)
			for len(raw) >= 4 {
				toks = append(toks, binary.LittleEndian.Uint32(raw))
				raw = raw[4:]
			}
			return toks
		}
		a, b := decode(rawA), decode(rawB)
		var sa, sb Signature
		BuildSignature(&sa, a, w)
		BuildSignature(&sb, b, w)
		shift := sigShift(w)
		for _, side := range []struct {
			toks []uint32
			sig  *Signature
		}{{a, &sa}, {b, &sb}} {
			for _, tok := range side.toks {
				idx := (uint64(tok) * sigMix) >> shift
				if side.sig[idx>>6]&(1<<(idx&63)) == 0 {
					t.Fatalf("w=%d: token %d bit missing", w, tok)
				}
			}
		}
		for i := w; i < SigMaxWords; i++ {
			if sa[i] != 0 || sb[i] != 0 {
				t.Fatalf("w=%d: word %d written outside width", w, i)
			}
		}
		c, la, lb := exactOverlap(a, b)
		ub := SigOverlapUB(&sa, &sb, w, la, lb)
		if ub < c {
			t.Fatalf("w=%d: bound %d below true overlap %d (la=%d lb=%d)", w, ub, c, la, lb)
		}
		if ub > min(la, lb) || ub < 0 {
			t.Fatalf("w=%d: bound %d outside [0, %d]", w, ub, min(la, lb))
		}
		// SigPrune ⇔ ub < required, and must never fire at required ≤ c.
		for req := 0; req <= c; req++ {
			if SigPrune(&sa, &sb, w, la, lb, req) {
				t.Fatalf("w=%d: pruned at required %d ≤ overlap %d", w, req, c)
			}
		}
		if !SigPrune(&sa, &sb, w, la, lb, ub+1) {
			t.Fatalf("w=%d: not pruned above its own bound %d", w, ub)
		}
	})
}
