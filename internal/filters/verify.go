package filters

// VerifyOverlap merges two sorted, duplicate-free token sets and counts
// their intersection, aborting as soon as the tokens still unread on the
// shorter side cannot lift the count to required — PPJoin's
// early-terminating verification. ok reports whether the count reached
// required; when ok is false the returned count is a lower bound only (the
// merge may have stopped early), which is all a caller pruning on the
// bound needs. required ≤ 0 degenerates to a full exact intersection.
//
// This is the one exact verification kernel shared by the candidate-pair
// paths that hold both full token sets — RIDPairsPPJoin's group joiner and
// the probe index's serving path — so threshold semantics cannot drift
// between batch and online serving.
func VerifyOverlap(a, b []uint32, required int) (c int, ok bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		rem := len(a) - i
		if r2 := len(b) - j; r2 < rem {
			rem = r2
		}
		if c+rem < required {
			return c, false
		}
		switch {
		case a[i] == b[j]:
			c++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return c, c >= required
}
