// Package filters implements the paper's four pruning filters (Section V-A):
// string length filtering (StrL, Lemma 1), segment length filtering (SegL,
// Lemma 2), segment intersection filtering (SegI, Lemma 3) and segment
// difference filtering (SegD, Lemma 4), plus the lossless segment prefix
// filter used by the prefix join (DESIGN.md §3).
//
// Every filter is safe per fragment: each inequality replaces the unknown
// cross-fragment quantities with bounds that hold unconditionally
// (|A∩B| ≤ min(|A|,|B|), |A−B|+|B−A| ≥ abs(|A|−|B|)), so a pair pruned in
// one fragment is guaranteed dissimilar globally and similar pairs are never
// pruned anywhere.
package filters

import (
	"math"
	"strings"

	"fsjoin/internal/similarity"
)

// Set is a bitmask of enabled filters.
type Set uint8

// The individual filters. Prefix selects the prefix-based index join's
// pruning inside candidate generation; the others prune candidate pairs.
const (
	StrL Set = 1 << iota
	SegL
	SegI
	SegD
	Prefix
)

// All enables every filter — the paper's "All" configuration.
const All = StrL | SegL | SegI | SegD | Prefix

// Has reports whether f is enabled in s.
func (s Set) Has(f Set) bool { return s&f != 0 }

// String lists the enabled filters.
func (s Set) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	for _, e := range [...]struct {
		f    Set
		name string
	}{{StrL, "StrL"}, {SegL, "SegL"}, {SegI, "SegI"}, {SegD, "SegD"}, {Prefix, "Prefix"}} {
		if s.Has(e.f) {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "+")
}

// SegMeta carries the per-segment quantities the filters consume: the
// segment length |Seg_i^s|, the record length |s|, and the head/tail token
// counts |s^h| and |s^e|.
type SegMeta struct {
	SegLen int
	StrLen int
	Head   int
	Tail   int
}

// StrLPrune implements Lemma 1: prune when the shorter record is below the
// similarity function's minimum partner length of the longer one
// (|s| < θ·|t| for Jaccard).
func StrLPrune(fn similarity.Func, theta float64, ls, lt int) bool {
	if ls > lt {
		ls, lt = lt, ls
	}
	return ls < fn.MinLen(theta, lt)
}

// SegLPrune implements Lemma 2: prune when even the best case
// min(|Seg_i^s|, |Seg_i^t|) segment overlap plus the head/tail bounds cannot
// reach the required overlap θ/(1+θ)·(|s|+|t|).
func SegLPrune(fn similarity.Func, theta float64, s, t SegMeta) bool {
	bound := fn.MinOverlapReal(theta, s.StrLen, t.StrLen) -
		float64(min(s.Head, t.Head)) - float64(min(s.Tail, t.Tail))
	return float64(min(s.SegLen, t.SegLen)) < bound-fpEps
}

// SegIPrune implements Lemma 3: prune when the actual segment intersection c
// plus the head/tail bounds cannot reach the required overlap.
func SegIPrune(fn similarity.Func, theta float64, c int, s, t SegMeta) bool {
	bound := fn.MinOverlapReal(theta, s.StrLen, t.StrLen) -
		float64(min(s.Head, t.Head)) - float64(min(s.Tail, t.Tail))
	return float64(c) < bound-fpEps
}

// SegDPrune implements Lemma 4: prune when the segment symmetric difference
// plus the head/tail length gaps already exceeds the largest symmetric
// difference a similar pair may have, (1−θ)/(1+θ)·(|s|+|t|) for Jaccard.
// The segment symmetric difference is |Seg^s|+|Seg^t|−2c.
func SegDPrune(fn similarity.Func, theta float64, c int, s, t SegMeta) bool {
	symdiff := float64(s.SegLen + t.SegLen - 2*c)
	symdiff += math.Abs(float64(s.Head - t.Head))
	symdiff += math.Abs(float64(s.Tail - t.Tail))
	total := s.StrLen + t.StrLen
	allowed := float64(total) - 2*fn.MinOverlapReal(theta, s.StrLen, t.StrLen)
	return symdiff > allowed+fpEps
}

// SegPrefixLen returns the lossless segment prefix length for the prefix
// join (DESIGN.md §3): any partner t with sim ≥ θ shares at least
// L = ⌈minOverlapAnyPartner(|s|)⌉ − |s^h| − |s^e| tokens inside this
// fragment, so the smallest common fragment token must fall within the first
// |Seg| − max(1, L) + 1 segment tokens. When L ≤ 0 the whole segment is the
// prefix (lossless fallback).
func SegPrefixLen(fn similarity.Func, theta float64, s SegMeta) int {
	if s.SegLen == 0 {
		return 0
	}
	l := int(math.Ceil(fn.MinOverlapAnyPartner(theta, s.StrLen)-fpEps)) - s.Head - s.Tail
	if l < 1 {
		l = 1
	}
	p := s.SegLen - l + 1
	if p < 1 {
		p = 1
	}
	if p > s.SegLen {
		p = s.SegLen
	}
	return p
}

// SegPrefixLenNaive returns the segment prefix length the paper's Section
// V-A describes when read literally: the classic prefix-filter length
// applied to the segment itself, |Seg| − ⌈θ·|Seg|⌉ + 1. This is much more
// aggressive than SegPrefixLen — it collapses candidate generation in dense
// fragments — but it is only guaranteed complete when each co-occurring
// segment pair of a similar record pair is itself θ-similar, which real
// near-duplicate data approximates but adversarial inputs violate. It is
// offered as an explicit option; the default prefix is the lossless one.
func SegPrefixLenNaive(theta float64, s SegMeta) int {
	if s.SegLen == 0 {
		return 0
	}
	p := s.SegLen - int(math.Ceil(theta*float64(s.SegLen)-fpEps)) + 1
	if p < 1 {
		p = 1
	}
	if p > s.SegLen {
		p = s.SegLen
	}
	return p
}

// fpEps absorbs floating-point noise so filters never prune a pair that
// sits exactly on the threshold boundary.
const fpEps = 1e-9

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
