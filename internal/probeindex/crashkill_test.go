package probeindex

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fsjoin/internal/checkpoint"
	"fsjoin/internal/testutil"
)

// The crash-kill harness proves the durability contract at every protocol
// boundary: it dies (panics in-process, or SIGKILLs a forked child) at a
// named kill point, reopens the directory, and checks the recovered index
// against a brute-force oracle over the acknowledged mutation prefix. One
// op may be in flight at the kill moment; its fate is indeterminate by
// construction (the crash razor falls between append and acknowledgement),
// so the recovered state must equal the oracle either with or without it —
// but never anything else.

// killPanic is the sentinel the harness panics with; anything else
// escaping a scenario is a real bug and re-panicked.
type killPanic struct{ point string }

// killPoints is the full durability boundary matrix: WAL append (before,
// mid-frame and after the append), the compaction protocol, and the
// snapshot writer's temp/fsync/rename boundaries.
var killPoints = []string{
	"wal.append.pre", "wal.append.mid", "wal.append.post",
	"compact.pre", "compact.snapshot.written", "compact.wal.created", "compact.retired",
	"save.start", "save.synced", "save.renamed",
}

// scriptOp is one scripted mutation: run drives the index, apply replays
// the same logical change onto the oracle once the op is acknowledged.
type scriptOp struct {
	desc  string
	run   func(ix *Index) error
	apply func(live map[int32][]string)
}

// killScript mixes inserts, deletes and explicit compactions so every kill
// point in the matrix has something to fire on. The base corpus holds rids
// 0..39, so scripted inserts are assigned 40, 41, ... in order.
func killScript() []scriptOp {
	ins := func(rid int32, toks ...string) scriptOp {
		return scriptOp{
			desc: fmt.Sprintf("insert %d", rid),
			run: func(ix *Index) error {
				got, err := ix.Insert(toks)
				if err == nil && got != rid {
					return fmt.Errorf("insert assigned rid %d, script expects %d", got, rid)
				}
				return err
			},
			apply: func(live map[int32][]string) { live[rid] = toks },
		}
	}
	del := func(rid int32) scriptOp {
		return scriptOp{
			desc:  fmt.Sprintf("delete %d", rid),
			run:   func(ix *Index) error { return ix.Delete(rid) },
			apply: func(live map[int32][]string) { delete(live, rid) },
		}
	}
	compact := scriptOp{
		desc:  "compact",
		run:   func(ix *Index) error { return ix.Compact() },
		apply: func(map[int32][]string) {},
	}
	return []scriptOp{
		ins(40, "alpha", "beta"),
		ins(41, "beta", "gamma", "delta"),
		del(5),
		ins(42, "alpha", "delta"),
		del(40),
		compact,
		ins(43, "epsilon", "beta"),
		del(41),
		ins(44, "alpha", "gamma"),
		compact,
		ins(45, "zeta"),
	}
}

func copyState(m map[int32][]string) map[int32][]string {
	out := make(map[int32][]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// stateEqual compares two rid→token-set maps as sets.
func stateEqual(a, b map[int32][]string) bool {
	norm := func(m map[int32][]string) map[int32]string {
		out := make(map[int32]string, len(m))
		for rid, ts := range m {
			set := map[string]bool{}
			for _, s := range ts {
				set[s] = true
			}
			uniq := make([]string, 0, len(set))
			for s := range set {
				uniq = append(uniq, s)
			}
			for i := range uniq {
				for j := i + 1; j < len(uniq); j++ {
					if uniq[j] < uniq[i] {
						uniq[i], uniq[j] = uniq[j], uniq[i]
					}
				}
			}
			out[rid] = strings.Join(uniq, "\x00")
		}
		return out
	}
	na, nb := norm(a), norm(b)
	if len(na) != len(nb) {
		return false
	}
	for rid, s := range na {
		if nb[rid] != s {
			return false
		}
	}
	return true
}

// checkProbeOracle verifies probe answers over the recovered state are
// byte-identical to the brute-force oracle on a sample of live records.
func checkProbeOracle(t *testing.T, label string, ix *Index, live map[int32][]string) {
	t.Helper()
	n := 0
	for rid, toks := range live {
		got, err := ix.ProbeRecord(rid)
		if err != nil {
			t.Fatalf("%s: probe rid %d: %v", label, rid, err)
		}
		want := oracleProbe(live, toks, durOpt.Fn, durOpt.Theta, rid, true)
		assertMatches(t, fmt.Sprintf("%s rid %d", label, rid), got, want)
		if n++; n >= 6 {
			break
		}
	}
}

// runKillScenario drives the script against a fresh durable index with a
// panic armed at the (after+1)-th hit of point. It reports whether the
// kill fired; when it did, the reopened directory must hold exactly the
// acknowledged prefix (± the single in-flight op), answer probes like the
// oracle, and accept a fresh Persist + mutation afterwards.
func runKillScenario(t *testing.T, point string, after int) bool {
	t.Helper()
	dir := t.TempDir()
	ix, live := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}})
	ops := killScript()

	hits := 0
	hook := func(p string) {
		if p == point {
			hits++
			if hits > after {
				panic(killPanic{p})
			}
		}
	}
	killHook = hook
	checkpoint.SetKillHook(hook)
	defer func() {
		killHook = nil
		checkpoint.SetKillHook(nil)
	}()

	killed := false
	inflight := -1
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(killPanic); !ok {
				panic(r)
			}
			killed = true
		}()
		for i := range ops {
			inflight = i
			if err := ops[i].run(ix); err != nil {
				t.Fatalf("%s: op %d (%s): %v", point, i, ops[i].desc, err)
			}
			ops[i].apply(live)
			inflight = -1
		}
	}()
	killHook = nil
	checkpoint.SetKillHook(nil)
	if !killed {
		return false
	}

	// The process "died". Reopen the directory cold.
	ld, err := Load(dir, durOpt)
	if err != nil {
		t.Fatalf("%s after op %d: recovery failed: %v", point, inflight, err)
	}
	got := liveSets(ld)
	withInflight := copyState(live)
	if inflight >= 0 {
		ops[inflight].apply(withInflight)
	}
	if !stateEqual(got, live) && !stateEqual(got, withInflight) {
		t.Fatalf("%s killed during op %d (%s): recovered state matches neither the acknowledged prefix nor prefix+inflight\n got: %v\nwant: %v", point, inflight, ops[inflight].desc, got, live)
	}
	checkProbeOracle(t, point, ld, got)

	// The directory must stay fully writable: roll a fresh generation
	// forward and push one more durable mutation through it.
	if err := ld.Persist(dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}}); err != nil {
		t.Fatalf("%s: re-Persist after recovery: %v", point, err)
	}
	rid, err := ld.Insert([]string{"post-crash"})
	if err != nil {
		t.Fatalf("%s: insert after recovery: %v", point, err)
	}
	got[rid] = []string{"post-crash"}
	if err := ld.Close(); err != nil {
		t.Fatalf("%s: close after recovery: %v", point, err)
	}
	ld2, err := Load(dir, durOpt)
	if err != nil {
		t.Fatalf("%s: second recovery: %v", point, err)
	}
	if !stateEqual(liveSets(ld2), got) {
		t.Fatalf("%s: post-crash mutation lost across reopen", point)
	}
	return true
}

// TestCrashKillMatrix dies at every durability boundary (several
// occurrences each) and proves recovery: zero acknowledged mutations lost,
// no unacknowledged mutation surfaced beyond the single in-flight op, and
// probe answers byte-identical to the brute-force oracle.
func TestCrashKillMatrix(t *testing.T) {
	for _, point := range killPoints {
		t.Run(point, func(t *testing.T) {
			fired := 0
			for after := 0; after < 3; after++ {
				if runKillScenario(t, point, after) {
					fired++
				}
			}
			if fired == 0 {
				t.Fatalf("kill point %s never fired", point)
			}
		})
	}
}

// --- Forked-process SIGKILL harness -----------------------------------

// crashChild is the re-exec'd workload: build, persist, then hammer the
// index with deterministic mutations, journaling each op's intent (before
// running it) and acknowledgement (after it returns) to a synced side
// file, until the parent SIGKILLs the process. Exit codes: 3 = setup or
// mutation failure (the parent fails the test on anything it can observe
// via the side file's integrity check).
func crashChild(dir, side string) {
	c := testutil.RandomCollection(40, 25, 10, 91)
	ix, err := Build(c, tokenName, durOpt)
	if err != nil {
		os.Exit(3)
	}
	d := DurableOptions{
		Sync:        SyncPolicy{Mode: SyncAlways},
		AutoCompact: AutoCompactPolicy{MaxLogRecords: 6},
	}
	if err := ix.Persist(dir, d); err != nil {
		os.Exit(3)
	}
	sf, err := os.OpenFile(side, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		os.Exit(3)
	}
	rng := rand.New(rand.NewSource(7))
	liveRids := make([]int32, 0, 64)
	for rid := int32(0); rid < 40; rid++ {
		liveRids = append(liveRids, rid)
	}
	nextRID := int32(40)
	for i := 0; i < 1_000_000; i++ {
		if rng.Intn(4) > 0 || len(liveRids) == 0 {
			n := 1 + rng.Intn(3)
			toks := make([]string, n)
			for j := range toks {
				toks[j] = fmt.Sprintf("t%06d", rng.Intn(25))
			}
			fmt.Fprintf(sf, "ins %s\n", strings.Join(toks, " "))
			sf.Sync()
			rid, err := ix.Insert(toks)
			if err != nil || rid != nextRID {
				os.Exit(3)
			}
			nextRID++
			liveRids = append(liveRids, rid)
		} else {
			k := rng.Intn(len(liveRids))
			rid := liveRids[k]
			fmt.Fprintf(sf, "del %d\n", rid)
			sf.Sync()
			if err := ix.Delete(rid); err != nil {
				os.Exit(3)
			}
			liveRids = append(liveRids[:k], liveRids[k+1:]...)
		}
		fmt.Fprintln(sf, "ack")
		sf.Sync()
		if i%7 == 6 {
			if err := ix.Maintain(); err != nil {
				os.Exit(3)
			}
		}
	}
	os.Exit(0)
}

// sideOp is one journaled child mutation.
type sideOp struct {
	del  bool
	rid  int32
	toks []string
}

// parseSideLog reads the child's intent/ack journal: ops in order, plus
// how many of them were acknowledged. A torn final line (the write the
// SIGKILL interrupted) is ignored.
func parseSideLog(raw []byte) (ops []sideOp, acked int) {
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case line == "ack":
			acked = len(ops)
		case strings.HasPrefix(line, "ins "):
			ops = append(ops, sideOp{toks: strings.Fields(line[4:])})
		case strings.HasPrefix(line, "del "):
			rid, err := strconv.Atoi(line[4:])
			if err != nil {
				continue
			}
			ops = append(ops, sideOp{del: true, rid: int32(rid)})
		}
	}
	return ops, acked
}

// TestCrashKillProcess SIGKILLs a real child process mid-workload (so the
// kill can land anywhere: mid-append, mid-compaction, mid-rename) and
// verifies the reopened index equals the journaled acknowledged prefix,
// give or take the one indeterminate in-flight op.
func TestCrashKillProcess(t *testing.T) {
	if os.Getenv("FSJOIN_CRASH_CHILD") == "1" {
		crashChild(os.Getenv("FSJOIN_CRASH_DIR"), os.Getenv("FSJOIN_CRASH_SIDE"))
		return
	}
	if testing.Short() {
		t.Skip("forked crash harness skipped in -short")
	}
	for round, delay := range []time.Duration{15 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond} {
		dir := t.TempDir()
		side := filepath.Join(t.TempDir(), "ops.journal")
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashKillProcess$")
		cmd.Env = append(os.Environ(),
			"FSJOIN_CRASH_CHILD=1",
			"FSJOIN_CRASH_DIR="+dir,
			"FSJOIN_CRASH_SIDE="+side,
		)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(delay)
		cmd.Process.Kill()
		cmd.Wait()

		raw, err := os.ReadFile(side)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			t.Fatal(err)
		}
		ops, acked := parseSideLog(raw)

		// Oracle: base corpus plus the acknowledged prefix.
		want := map[int32][]string{}
		for _, r := range testutil.RandomCollection(40, 25, 10, 91).Records {
			want[r.RID] = dedupStrings(names(r.Tokens))
		}
		nextRID := int32(40)
		applyOp := func(m map[int32][]string, op sideOp, next *int32) {
			if op.del {
				delete(m, op.rid)
				return
			}
			m[*next] = op.toks
			*next++
		}
		for _, op := range ops[:acked] {
			applyOp(want, op, &nextRID)
		}
		withInflight := copyState(want)
		nextWith := nextRID
		if acked < len(ops) {
			applyOp(withInflight, ops[acked], &nextWith)
		}

		ld, err := Load(dir, durOpt)
		if err != nil {
			// The only excuse is dying before the initial Persist finished —
			// in which case nothing was ever acknowledged.
			if errors.Is(err, ErrNoIndex) && len(ops) == 0 {
				t.Logf("round %d: child died before Persist completed", round)
				continue
			}
			t.Fatalf("round %d: recovery failed with %d acked ops: %v", round, acked, err)
		}
		got := liveSets(ld)
		if !stateEqual(got, want) && !stateEqual(got, withInflight) {
			t.Fatalf("round %d: recovered state matches neither the %d acknowledged ops nor +inflight (%d ops journaled)", round, acked, len(ops))
		}
		checkProbeOracle(t, fmt.Sprintf("round %d", round), ld, got)
		t.Logf("round %d: %d ops journaled, %d acked, recovered gen %d", round, len(ops), acked, ld.Stats().Generation)
	}
}

// --- Concurrency under maintenance ------------------------------------

// TestConcurrentDurableMaintenance races probes and stats readers against
// a mutating writer while the maintenance path (group-commit flush +
// auto-compaction) runs concurrently — under -race this proves the lock
// discipline, and the final reload proves no mutation was lost across the
// auto-compactions.
func TestConcurrentDurableMaintenance(t *testing.T) {
	dir := t.TempDir()
	d := DurableOptions{
		Sync:        SyncPolicy{Mode: SyncInterval, Interval: time.Millisecond},
		AutoCompact: AutoCompactPolicy{MaxLogRecords: 8},
	}
	ix, live := buildDurable(t, dir, d)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix.Probe([]string{"t000001", "t000002", "alpha"})
				_ = ix.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ix.Maintain(); err != nil {
				t.Errorf("maintain: %v", err)
				return
			}
		}
	}()

	// Single mutator keeps the oracle deterministic.
	rng := rand.New(rand.NewSource(13))
	var rids []int32
	for rid := range live {
		rids = append(rids, rid)
	}
	for i := range rids { // deterministic order for the rng choices
		for j := i + 1; j < len(rids); j++ {
			if rids[j] < rids[i] {
				rids[i], rids[j] = rids[j], rids[i]
			}
		}
	}
	for i := 0; i < 400; i++ {
		if rng.Intn(3) > 0 || len(rids) == 0 {
			toks := []string{fmt.Sprintf("c%d", rng.Intn(40)), "alpha"}
			rid, err := ix.Insert(toks)
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = toks
			rids = append(rids, rid)
		} else {
			k := rng.Intn(len(rids))
			rid := rids[k]
			if err := ix.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(live, rid)
			rids = append(rids[:k], rids[k+1:]...)
		}
		if i%25 == 24 {
			// Yield so the maintenance goroutine can observe an overgrown
			// overlay and compact while probes keep hammering.
			time.Sleep(2 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	if st := ix.Stats(); st.AutoCompactions == 0 {
		t.Error("auto-compaction never triggered under the mutation load")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir, durOpt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "post-race reload", liveSets(ld), live)
}
