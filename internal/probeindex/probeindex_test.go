package probeindex

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
	"fsjoin/internal/tokens"
)

// tokenName is the injective id→string mapping tests build indexes with.
func tokenName(t tokens.ID) string { return fmt.Sprintf("t%06d", t) }

// names maps a record's token ids to strings.
func names(ts []tokens.ID) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = tokenName(t)
	}
	return out
}

// oracleProbe answers a probe by brute force over live string sets.
func oracleProbe(live map[int32][]string, q []string, fn similarity.Func, theta float64, exclude int32, hasExcl bool) []Match {
	qset := map[string]bool{}
	for _, s := range q {
		qset[s] = true
	}
	var out []Match
	for rid, toks := range live {
		if hasExcl && rid == exclude {
			continue
		}
		tset := map[string]bool{}
		c := 0
		for _, s := range toks {
			if !tset[s] {
				tset[s] = true
				if qset[s] {
					c++
				}
			}
		}
		if len(qset) == 0 || len(tset) == 0 {
			continue
		}
		if fn.AtLeast(c, len(qset), len(tset), theta) {
			out = append(out, Match{RID: rid, Common: int32(c), Sim: fn.Sim(c, len(qset), len(tset))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RID < out[j].RID })
	return out
}

func assertMatches(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d matches, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d differs: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

func TestProbeRecordMatchesSelfJoinOracle(t *testing.T) {
	c := testutil.RandomCollection(120, 60, 24, 21)
	for _, fn := range []similarity.Func{similarity.Jaccard, similarity.Dice, similarity.Cosine} {
		for _, theta := range []float64{0.6, 0.8, 0.95} {
			for _, mode := range []filters.BitmapMode{filters.BitmapOn, filters.BitmapOff} {
				ix, err := Build(c, tokenName, Options{Fn: fn, Theta: theta, Bitmap: filters.BitmapConfig{Mode: mode}})
				if err != nil {
					t.Fatal(err)
				}
				oracle := bruteforce.SelfJoin(c, fn, theta)
				want := map[int32][]Match{}
				for _, p := range oracle {
					want[p.A] = append(want[p.A], Match{RID: p.B, Common: int32(p.Common), Sim: p.Sim})
					want[p.B] = append(want[p.B], Match{RID: p.A, Common: int32(p.Common), Sim: p.Sim})
				}
				for _, r := range c.Records {
					got, err := ix.ProbeRecord(r.RID)
					if err != nil {
						t.Fatal(err)
					}
					w := want[r.RID]
					sort.Slice(w, func(i, j int) bool { return w[i].RID < w[j].RID })
					assertMatches(t, fmt.Sprintf("fn=%v theta=%v bitmap=%v rid=%d", fn, theta, mode, r.RID), got, w)
				}
			}
		}
	}
}

func TestProbeUnknownTokens(t *testing.T) {
	c := testutil.RandomCollection(100, 50, 20, 22)
	live := map[int32][]string{}
	for _, r := range c.Records {
		live[r.RID] = names(r.Tokens)
	}
	ix, err := Build(c, tokenName, Options{Fn: similarity.Jaccard, Theta: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for qi := 0; qi < 60; qi++ {
		base := c.Records[rng.Intn(len(c.Records))]
		q := names(base.Tokens)
		for k := rng.Intn(3); k > 0; k-- {
			q = append(q, fmt.Sprintf("unknown-%d", rng.Intn(5)))
		}
		// Duplicates in the probe must be harmless.
		if len(q) > 0 {
			q = append(q, q[0])
		}
		got := ix.Probe(q)
		want := oracleProbe(live, q, similarity.Jaccard, 0.6, 0, false)
		assertMatches(t, fmt.Sprintf("query %d", qi), got, want)
	}
}

func TestInsertDeleteCompactMatchesOracle(t *testing.T) {
	c := testutil.RandomCollection(80, 40, 16, 23)
	for _, mode := range []filters.BitmapMode{filters.BitmapOn, filters.BitmapOff} {
		live := map[int32][]string{}
		for _, r := range c.Records {
			live[r.RID] = names(r.Tokens)
		}
		ix, err := Build(c, tokenName, Options{Fn: similarity.Jaccard, Theta: 0.7, Bitmap: filters.BitmapConfig{Mode: mode}})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(31 + mode)))
		check := func(step string) {
			t.Helper()
			for _, r := range c.Records[:20] {
				q := names(r.Tokens)
				assertMatches(t, step, ix.Probe(q), oracleProbe(live, q, similarity.Jaccard, 0.7, 0, false))
			}
			if got, want := ix.Len(), len(live); got != want {
				t.Fatalf("%s: Len=%d want %d", step, got, want)
			}
		}
		for round := 0; round < 4; round++ {
			// Insert a few records, some reusing corpus tokens, some new.
			for k := 0; k < 6; k++ {
				var set []string
				if rng.Intn(2) == 0 {
					set = names(c.Records[rng.Intn(len(c.Records))].Tokens)
				} else {
					for j := rng.Intn(8) + 1; j > 0; j-- {
						set = append(set, fmt.Sprintf("new-%d-%d", round, rng.Intn(20)))
					}
				}
				rid, err := ix.Insert(set)
				if err != nil {
					t.Fatal(err)
				}
				if _, clash := live[rid]; clash {
					t.Fatalf("Insert reused rid %d", rid)
				}
				dedup := map[string]bool{}
				var ds []string
				for _, s := range set {
					if !dedup[s] {
						dedup[s] = true
						ds = append(ds, s)
					}
				}
				live[rid] = ds
			}
			// Delete a few live records (base and overlay alike).
			rids := make([]int32, 0, len(live))
			for rid := range live {
				rids = append(rids, rid)
			}
			sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
			for k := 0; k < 4; k++ {
				rid := rids[rng.Intn(len(rids))]
				if _, ok := live[rid]; !ok {
					continue
				}
				if err := ix.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(live, rid)
			}
			check(fmt.Sprintf("bitmap=%v round %d pre-compact", mode, round))
			if round%2 == 1 {
				before := ix.Stats()
				if err := ix.Compact(); err != nil {
					t.Fatal(err)
				}
				after := ix.Stats()
				if after.LogSize != 0 {
					t.Fatalf("LogSize %d after Compact", after.LogSize)
				}
				if after.Compactions != before.Compactions+1 {
					t.Fatalf("Compactions %d -> %d", before.Compactions, after.Compactions)
				}
				check(fmt.Sprintf("bitmap=%v round %d post-compact", mode, round))
			}
		}
		if err := ix.Delete(99999); err == nil {
			t.Fatal("Delete of unknown rid succeeded")
		}
		if _, err := ix.ProbeRecord(99999); err == nil {
			t.Fatal("ProbeRecord of unknown rid succeeded")
		}
	}
}

func TestStatsCounters(t *testing.T) {
	c := testutil.RandomCollection(60, 30, 12, 24)
	ix, err := Build(c, tokenName, Options{Fn: similarity.Jaccard, Theta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Records[:10] {
		ix.Probe(names(r.Tokens))
	}
	st := ix.Stats()
	if st.Probes != 10 {
		t.Fatalf("Probes=%d want 10", st.Probes)
	}
	if st.Hits == 0 || st.Candidates < st.Hits {
		t.Fatalf("implausible counters: %+v", st)
	}
	if st.Records != int64(len(c.Records)) {
		t.Fatalf("Records=%d want %d", st.Records, len(c.Records))
	}
	if _, err := ix.Insert([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(c.Records[0].RID); err != nil {
		t.Fatal(err)
	}
	if st = ix.Stats(); st.LogSize != 2 {
		t.Fatalf("LogSize=%d want 2 (1 insert + 1 tombstone)", st.LogSize)
	}
}

func TestBuildValidation(t *testing.T) {
	c := testutil.RandomCollection(5, 10, 5, 1)
	if _, err := Build(c, tokenName, Options{Fn: similarity.Jaccard, Theta: 0}); err == nil {
		t.Error("theta 0 accepted")
	}
	if _, err := Build(c, tokenName, Options{Fn: similarity.Func(9), Theta: 0.5}); err == nil {
		t.Error("bogus function accepted")
	}
	if _, err := Build(nil, tokenName, Options{Fn: similarity.Jaccard, Theta: 0.5}); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := Build(c, func(tokens.ID) string { return "same" },
		Options{Fn: similarity.Jaccard, Theta: 0.5}); err == nil {
		t.Error("non-injective tokenOf accepted")
	}
	if _, err := Build(c, tokenName,
		Options{Fn: similarity.Jaccard, Theta: 0.5, Bitmap: filters.BitmapConfig{Width: 65}}); err == nil {
		t.Error("bad bitmap width accepted")
	}
}

func TestEmptyIndexAndEmptyProbe(t *testing.T) {
	ix, err := Build(&tokens.Collection{}, tokenName, Options{Fn: similarity.Jaccard, Theta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Probe([]string{"a", "b"}); got != nil {
		t.Fatalf("probe of empty index returned %v", got)
	}
	rid, err := ix.Insert([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Probe([]string{"a", "b"}); len(got) != 1 || got[0].RID != rid {
		t.Fatalf("probe after insert: %v", got)
	}
	if got := ix.Probe(nil); got != nil {
		t.Fatalf("empty probe returned %v", got)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Probe([]string{"b", "a", "a"}); len(got) != 1 || got[0].RID != rid {
		t.Fatalf("probe after compact: %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := testutil.RandomCollection(90, 45, 18, 25)
	opt := Options{Fn: similarity.Dice, Theta: 0.75, Bitmap: filters.BitmapConfig{Mode: filters.BitmapOn}}
	ix, err := Build(c, tokenName, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert([]string{"alpha", "beta", "gamma"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(names(c.Records[3].Tokens)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(c.Records[5].RID); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Records[:5] {
		ix.Probe(names(r.Tokens))
	}
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Identical probe answers, stats history and live count.
	for _, r := range c.Records {
		q := names(r.Tokens)
		assertMatches(t, fmt.Sprintf("rid %d", r.RID), ld.Probe(q), ix.Probe(q))
	}
	assertMatches(t, "unknown-token probe",
		ld.Probe([]string{"alpha", "beta", "gamma"}), ix.Probe([]string{"alpha", "beta", "gamma"}))
	if a, b := ix.Len(), ld.Len(); a != b {
		t.Fatalf("Len %d vs %d", a, b)
	}
	ist, lst := ix.Stats(), ld.Stats()
	if lst.LogSize != ist.LogSize || lst.Records != ist.Records {
		t.Fatalf("stats drift: saved %+v loaded %+v", ist, lst)
	}
	// RID allocation continues past everything persisted.
	rid, err := ld.Insert([]string{"delta"})
	if err != nil {
		t.Fatal(err)
	}
	other, err := ix.Insert([]string{"delta"})
	if err != nil {
		t.Fatal(err)
	}
	if rid != other {
		t.Fatalf("loaded index allocated rid %d, original %d", rid, other)
	}
}

func TestLoadStaleAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	c := testutil.RandomCollection(40, 30, 12, 26)
	opt := Options{Fn: similarity.Jaccard, Theta: 0.8, Bitmap: filters.BitmapConfig{Mode: filters.BitmapOff}}
	ix, err := Build(c, tokenName, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Different serving configuration: stale, never served — and the
	// rejection names its reason.
	stale := opt
	stale.Theta = 0.6
	if _, err := Load(dir, stale); err == nil {
		t.Fatal("stale load succeeded")
	} else if !errors.Is(err, ErrNoIndex) || !errors.Is(err, ErrStaleConfig) {
		t.Fatalf("stale load error %v does not wrap ErrNoIndex+ErrStaleConfig", err)
	}
	// The stale load removed the file; a matching load now misses too.
	if _, err := Load(dir, opt); err == nil {
		t.Fatal("load after stale discard succeeded")
	}

	// Corrupt trailer: flip one byte in the body.
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files: %v %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(files[0], raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, opt); err == nil {
		t.Fatal("corrupt load succeeded")
	} else if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("corrupt load error %v does not wrap ErrCorruptSnapshot", err)
	}
	if rej := LoadRejects(); rej["index.load.rejects.stale"] == 0 || rej["index.load.rejects.corrupt"] == 0 {
		t.Fatalf("load-reject counters missing: %v", rej)
	}
	// Rebuild-never-trust: after the failed load a fresh Save works again.
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, opt); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProbesAndMutations(t *testing.T) {
	c := testutil.RandomCollection(100, 50, 16, 27)
	ix, err := Build(c, tokenName, Options{Fn: similarity.Jaccard, Theta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				r := c.Records[rng.Intn(len(c.Records))]
				ix.Probe(names(r.Tokens))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			rid, err := ix.Insert([]string{fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i+1)})
			if err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if err := ix.Delete(rid); err != nil {
					t.Error(err)
				}
			}
			if i%20 == 19 {
				if err := ix.Compact(); err != nil {
					t.Error(err)
				}
			}
		}
	}()
	wg.Wait()
}
