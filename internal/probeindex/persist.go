// Index persistence rides the internal/checkpoint codec: one atomic,
// SHA-256-trailed file per directory holding the token table, the CSR base
// records, the tombstone set and the live side-log. Derived structure —
// postings, signatures, the rank map — is rebuilt at load rather than
// trusted from disk, so a file that decodes but lies about derived state
// cannot make probes return wrong results: everything that influences a
// probe answer is either validated against the record data or recomputed
// from it (rebuild-never-trust, DESIGN.md §13).
//
// The checkpoint fingerprint covers only the serving configuration
// (format version, similarity function, threshold, resolved bitmap mode
// and width), so Load can decide hit/stale before reading a record, and an
// index saved under one θ can never answer probes for another.

package probeindex

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"fsjoin/internal/checkpoint"
	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
)

// ErrNoIndex reports that a directory holds no usable index for the given
// options: nothing saved yet, a stale configuration, a corrupt file, or a
// body that decoded but failed validation. Callers rebuild and Save.
var ErrNoIndex = errors.New("probeindex: no usable index")

const (
	persistPipeline = "probeindex"
	persistStage    = 0
	persistJob      = "index"
	// persistVersion must change whenever the record layout does.
	persistVersion = 1
)

// persistMeta is the JSON "meta" record: the scalars the record frames
// cannot carry.
type persistMeta struct {
	Version int     `json:"version"`
	Fn      int     `json:"fn"`
	Theta   float64 `json:"theta"`
	NextRID int32   `json:"next_rid"`
	LogN    int     `json:"log_n"`
}

// fingerprint keys the checkpoint by serving configuration. The bitmap
// config is environment-resolved first, so flipping FSJOIN_BITMAP between
// runs reads as Stale (rebuild) rather than silently serving with a
// mismatched filter.
func fingerprint(fn similarity.Func, theta float64, bm filters.BitmapConfig) string {
	f := checkpoint.NewFingerprint()
	f.Str(fmt.Sprintf("probeindex/v%d", persistVersion))
	f.I64(int64(fn))
	f.Str(strconv.FormatFloat(theta, 'g', -1, 64))
	f.Str(bm.Mode.String())
	f.I64(int64(bm.Width))
	return f.Hex()
}

// Save atomically persists the index into dir (temp write → fsync →
// rename, SHA-256 trailer). Cumulative counters travel in the manifest so
// a restart keeps its history.
func (ix *Index) Save(dir string) error {
	st, err := checkpoint.Open(dir)
	if err != nil {
		return err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var deleted []int32
	for s, d := range ix.dead {
		if d {
			deleted = append(deleted, ix.recRID[s])
		}
	}
	var logRIDs []int32
	var logToks [][]uint32
	for li := range ix.log {
		if !ix.log[li].dead {
			logRIDs = append(logRIDs, ix.log[li].rid)
			logToks = append(logToks, ix.log[li].toks)
		}
	}
	meta, err := json.Marshal(persistMeta{
		Version: persistVersion,
		Fn:      int(ix.fn),
		Theta:   ix.theta,
		NextRID: ix.nextRID,
		LogN:    len(logRIDs),
	})
	if err != nil {
		return fmt.Errorf("probeindex: %w", err)
	}
	recs := []checkpoint.Record{
		{Key: "meta", Value: string(meta)},
		{Key: "tokens", Value: ix.tokStr},
		{Key: "recoff", Value: ix.recOff},
		{Key: "rectok", Value: ix.recTok},
		{Key: "recrid", Value: ix.recRID},
		{Key: "deleted", Value: deleted},
		{Key: "logrid", Value: logRIDs},
	}
	for i, ts := range logToks {
		recs = append(recs, checkpoint.Record{Key: logKey(i), Value: ts})
	}
	m := checkpoint.Manifest{
		Pipeline:    persistPipeline,
		Stage:       persistStage,
		Job:         persistJob,
		Fingerprint: fingerprint(ix.fn, ix.theta, ix.bitmap),
		Counters: map[string]int64{
			CtrProbes:          ix.probes.Load(),
			CtrCandidates:      ix.candidates.Load(),
			CtrHits:            ix.hits.Load(),
			"index.compactions": ix.compactions.Load(),
		},
	}
	return st.Save(m, recs)
}

func logKey(i int) string { return fmt.Sprintf("log.%08d", i) }

// Load reconstructs an index saved into dir under the same serving
// configuration. Any miss — no file, stale fingerprint, bad checksum, or a
// body that decodes but fails structural validation — returns an error
// wrapping ErrNoIndex, directing the caller to rebuild.
func Load(dir string, opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		return nil, err
	}
	ix := newIndex(opt)
	snap, status := st.Load(persistStage, persistJob, fingerprint(ix.fn, ix.theta, ix.bitmap))
	if status != checkpoint.Hit {
		return nil, fmt.Errorf("%w: checkpoint %s in %s", ErrNoIndex, status, dir)
	}
	if err := ix.restore(snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoIndex, err)
	}
	return ix, nil
}

// restore rebuilds the index from a decoded snapshot, validating every
// structural invariant the probe path relies on. The checksum only proves
// the bytes are what Save wrote; this proves the content is an index.
func (ix *Index) restore(snap *checkpoint.Snapshot) error {
	vals := make(map[string]any, len(snap.Records))
	for _, r := range snap.Records {
		if _, dup := vals[r.Key]; dup {
			return fmt.Errorf("duplicate record %q", r.Key)
		}
		vals[r.Key] = r.Value
	}
	metaStr, ok := vals["meta"].(string)
	if !ok {
		return errors.New("missing meta record")
	}
	var meta persistMeta
	dec := json.NewDecoder(strings.NewReader(metaStr))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&meta); err != nil {
		return fmt.Errorf("meta: %v", err)
	}
	if meta.Version != persistVersion {
		return fmt.Errorf("version %d (want %d)", meta.Version, persistVersion)
	}
	if meta.Fn != int(ix.fn) || meta.Theta != ix.theta {
		return errors.New("meta disagrees with fingerprint")
	}
	tokStr, ok := vals["tokens"].([]string)
	if !ok {
		return errors.New("missing tokens record")
	}
	recOff, ok := vals["recoff"].([]int)
	if !ok {
		return errors.New("missing recoff record")
	}
	recTok, ok := vals["rectok"].([]uint32)
	if !ok {
		return errors.New("missing rectok record")
	}
	recRID, ok := vals["recrid"].([]int32)
	if !ok {
		return errors.New("missing recrid record")
	}
	deleted, ok := vals["deleted"].([]int32)
	if !ok {
		return errors.New("missing deleted record")
	}
	logRIDs, ok := vals["logrid"].([]int32)
	if !ok {
		return errors.New("missing logrid record")
	}
	if meta.LogN != len(logRIDs) {
		return errors.New("log count disagrees with logrid")
	}

	// Token table: strings must be unique (the rank map inverts them).
	tokRank := make(map[string]uint32, len(tokStr))
	for r, s := range tokStr {
		if _, dup := tokRank[s]; dup {
			return fmt.Errorf("duplicate token %q", s)
		}
		tokRank[s] = uint32(r)
	}

	// CSR shape: monotone offsets bracketing rectok; per-record token
	// slices strictly increasing with ranks inside the table; unique rids.
	if len(recOff) == 0 || recOff[0] != 0 || recOff[len(recOff)-1] != len(recTok) {
		return errors.New("recoff does not bracket rectok")
	}
	if len(recRID) != len(recOff)-1 {
		return errors.New("recrid length disagrees with recoff")
	}
	maxRID := int32(-1)
	seenRID := make(map[int32]bool, len(recRID)+len(logRIDs))
	recs := make([]baseRec, len(recRID))
	for s := range recRID {
		lo, hi := recOff[s], recOff[s+1]
		if lo > hi || hi > len(recTok) {
			return fmt.Errorf("recoff not monotone at slot %d", s)
		}
		ts := recTok[lo:hi]
		for i, t := range ts {
			if int(t) >= len(tokStr) {
				return fmt.Errorf("slot %d rank %d outside token table", s, t)
			}
			if i > 0 && ts[i-1] >= t {
				return fmt.Errorf("slot %d tokens not strictly increasing", s)
			}
		}
		rid := recRID[s]
		if seenRID[rid] {
			return fmt.Errorf("duplicate rid %d", rid)
		}
		seenRID[rid] = true
		if rid > maxRID {
			maxRID = rid
		}
		recs[s] = baseRec{rid: rid, toks: ts}
	}

	// Rebuild derived structure (postings, signatures, maps) from the
	// validated records, then replay the overlay.
	ix.tokStr = tokStr
	ix.tokRank = tokRank
	ix.assemble(recs)

	for _, rid := range deleted {
		s, ok := ix.slotOf[rid]
		if !ok || ix.dead[s] {
			return fmt.Errorf("tombstone for unknown rid %d", rid)
		}
		ix.dead[s] = true
		ix.baseDead++
		ix.liveN--
	}
	for i, rid := range logRIDs {
		ts, ok := vals[logKey(i)].([]uint32)
		if !ok {
			return fmt.Errorf("missing log record %d", i)
		}
		for j, t := range ts {
			if int(t) >= len(tokStr) {
				return fmt.Errorf("log %d rank %d outside token table", i, t)
			}
			if j > 0 && ts[j-1] >= t {
				return fmt.Errorf("log %d tokens not strictly increasing", i)
			}
		}
		if seenRID[rid] {
			return fmt.Errorf("duplicate rid %d", rid)
		}
		seenRID[rid] = true
		if rid > maxRID {
			maxRID = rid
		}
		e := logRec{rid: rid, toks: ts}
		if ix.sigWords > 0 {
			filters.BuildSignature(&e.sig, ts, ix.sigWords)
		}
		ix.logSlot[rid] = len(ix.log)
		ix.log = append(ix.log, e)
		ix.logLive++
		ix.liveN++
	}
	if meta.NextRID <= maxRID {
		return fmt.Errorf("next_rid %d not past max rid %d", meta.NextRID, maxRID)
	}
	ix.nextRID = meta.NextRID

	ix.probes.Store(snap.Manifest.Counters[CtrProbes])
	ix.candidates.Store(snap.Manifest.Counters[CtrCandidates])
	ix.hits.Store(snap.Manifest.Counters[CtrHits])
	ix.compactions.Store(snap.Manifest.Counters["index.compactions"])
	return nil
}
