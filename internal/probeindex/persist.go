// Index persistence rides the internal/checkpoint codec: one atomic,
// SHA-256-trailed snapshot file per generation holding the token table, the
// CSR base records, the tombstone set and the live side-log, with the
// checkpoint stage number doubling as the generation. Derived structure —
// postings, signatures, the rank map — is rebuilt at load rather than
// trusted from disk, so a file that decodes but lies about derived state
// cannot make probes return wrong results: everything that influences a
// probe answer is either validated against the record data or recomputed
// from it (rebuild-never-trust, DESIGN.md §13).
//
// Generations (DESIGN.md §14): `stage-%03d-index.ckpt` is generation g's
// snapshot, `wal.g%08d` its write-ahead log. Load scans generations newest
// first, restores the first loadable snapshot and replays its WAL on top
// (truncate-to-last-valid), so a crash anywhere in the compaction protocol
// recovers from either the old generation (snapshot + WAL) or the new one —
// never a mix. Each rejected generation is counted under
// index.load.rejects.<reason> and woven into the returned error, so
// operators can tell corruption from a config change.
//
// The checkpoint fingerprint covers only the serving configuration
// (format version, similarity function, threshold, resolved bitmap mode
// and width), so Load can decide hit/stale before reading a record, and an
// index saved under one θ can never answer probes for another.

package probeindex

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"fsjoin/internal/checkpoint"
	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
)

// ErrNoIndex reports that a directory holds no usable index for the given
// options: nothing saved yet, a stale configuration, a corrupt file, or a
// body that decoded but failed validation. Callers rebuild and Save. The
// returned error also wraps the per-generation reason sentinel
// (ErrCorruptSnapshot, ErrStaleConfig, ErrInvariant, ErrWALRejected), so
// errors.Is can separate corruption from an ordinary config change.
var ErrNoIndex = errors.New("probeindex: no usable index")

// Load rejection reasons, wrapped into the ErrNoIndex error and counted
// under index.load.rejects.<reason> (see LoadRejects).
var (
	// ErrCorruptSnapshot: the snapshot failed its SHA-256 trailer or could
	// not be decoded. Reason "corrupt".
	ErrCorruptSnapshot = errors.New("corrupt snapshot")
	// ErrStaleConfig: the snapshot is valid but was written under a
	// different serving configuration (fn, θ, bitmap mode/width or format
	// version). Reason "stale".
	ErrStaleConfig = errors.New("config fingerprint mismatch")
	// ErrInvariant: the snapshot decoded but its content failed structural
	// validation (the checksum proves the bytes, not the semantics). Reason
	// "invariant".
	ErrInvariant = errors.New("snapshot invariant failure")
	// ErrWALRejected: the generation's WAL exists but its header does not
	// bind to this snapshot (wrong magic, generation or fingerprint), or
	// the file cannot be read; the whole log is ignored. Reason "wal".
	ErrWALRejected = errors.New("wal rejected")
)

const (
	persistPipeline = "probeindex"
	persistJob      = "index"
	// persistVersion must change whenever the record layout does.
	persistVersion = 1
)

// Process-wide load-rejection counters: index.load.rejects.<reason>. They
// outlive any single Index because a rejected load returns no Index to
// hang a counter on.
var (
	rejectMu  sync.Mutex
	rejectCtr = map[string]int64{}
)

func noteReject(reason string) {
	rejectMu.Lock()
	rejectCtr["index.load.rejects."+reason]++
	rejectMu.Unlock()
}

// LoadRejects snapshots the process-wide index.load.rejects.<reason>
// counters ("corrupt", "stale", "invariant", "wal"). Empty until a Load
// has rejected something.
func LoadRejects() map[string]int64 {
	rejectMu.Lock()
	defer rejectMu.Unlock()
	out := make(map[string]int64, len(rejectCtr))
	for k, v := range rejectCtr {
		out[k] = v
	}
	return out
}

// persistMeta is the JSON "meta" record: the scalars the record frames
// cannot carry.
type persistMeta struct {
	Version int     `json:"version"`
	Fn      int     `json:"fn"`
	Theta   float64 `json:"theta"`
	NextRID int32   `json:"next_rid"`
	LogN    int     `json:"log_n"`
}

// fingerprint keys the checkpoint by serving configuration. The bitmap
// config is environment-resolved first, so flipping FSJOIN_BITMAP between
// runs reads as Stale (rebuild) rather than silently serving with a
// mismatched filter. Durability knobs (sync policy, compaction thresholds)
// are deliberately excluded: they shape when bytes hit disk, not what an
// index answers.
func fingerprint(fn similarity.Func, theta float64, bm filters.BitmapConfig) string {
	f := checkpoint.NewFingerprint()
	f.Str(fmt.Sprintf("probeindex/v%d", persistVersion))
	f.I64(int64(fn))
	f.Str(strconv.FormatFloat(theta, 'g', -1, 64))
	f.Str(bm.Mode.String())
	f.I64(int64(bm.Width))
	return f.Hex()
}

// snapshotPath names generation gen's snapshot file; it must agree with
// the checkpoint store's naming for stage=gen, job=persistJob.
func snapshotPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("stage-%03d-%s.ckpt", gen, persistJob))
}

func genOfSnapshot(name string) (int, bool) {
	const pre = "stage-"
	const suf = "-" + persistJob + ".ckpt"
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	g, err := strconv.Atoi(name[len(pre) : len(name)-len(suf)])
	if err != nil || g < 0 {
		return 0, false
	}
	return g, true
}

func genOfWAL(name string) (int, bool) {
	const pre = "wal.g"
	if !strings.HasPrefix(name, pre) {
		return 0, false
	}
	g, err := strconv.Atoi(name[len(pre):])
	if err != nil || g < 0 {
		return 0, false
	}
	return g, true
}

// maxGeneration scans dir for the highest generation present as either a
// snapshot or a WAL (a crash can leave one without the other); 0 when the
// directory holds neither.
func maxGeneration(dir string) int {
	max := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range ents {
		if g, ok := genOfSnapshot(e.Name()); ok && g > max {
			max = g
		}
		if g, ok := genOfWAL(e.Name()); ok && g > max {
			max = g
		}
	}
	return max
}

// retireGenerations removes every snapshot and WAL older than keep. Best
// effort: a straggler only wastes disk, it can never be loaded over a
// newer valid generation.
func retireGenerations(dir string, keep int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if g, ok := genOfSnapshot(e.Name()); ok && g < keep {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if g, ok := genOfWAL(e.Name()); ok && g < keep {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Save atomically persists the index into dir as a fresh generation (temp
// write → fsync → rename, SHA-256 trailer) and retires older generations.
// Cumulative counters travel in the manifest so a restart keeps its
// history. Save serves the in-memory index; a durable one checkpoints
// through Compact/Checkpoint, which also rotate the WAL.
func (ix *Index) Save(dir string) error {
	st, err := checkpoint.Open(dir)
	if err != nil {
		return err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.wal != nil {
		return errors.New("probeindex: Save on a durable index (use Checkpoint or Compact)")
	}
	gen := maxGeneration(dir) + 1
	if err := ix.writeSnapshotLocked(st, gen); err != nil {
		return err
	}
	retireGenerations(dir, gen)
	return nil
}

// writeSnapshotLocked writes the current state as generation gen's
// snapshot. Callers hold at least the read lock.
func (ix *Index) writeSnapshotLocked(st *checkpoint.Store, gen int) error {
	var deleted []int32
	for s, d := range ix.dead {
		if d {
			deleted = append(deleted, ix.recRID[s])
		}
	}
	var logRIDs []int32
	var logToks [][]uint32
	for li := range ix.log {
		if !ix.log[li].dead {
			logRIDs = append(logRIDs, ix.log[li].rid)
			logToks = append(logToks, ix.log[li].toks)
		}
	}
	meta, err := json.Marshal(persistMeta{
		Version: persistVersion,
		Fn:      int(ix.fn),
		Theta:   ix.theta,
		NextRID: ix.nextRID,
		LogN:    len(logRIDs),
	})
	if err != nil {
		return fmt.Errorf("probeindex: %w", err)
	}
	recs := []checkpoint.Record{
		{Key: "meta", Value: string(meta)},
		{Key: "tokens", Value: ix.tokStr},
		{Key: "recoff", Value: ix.recOff},
		{Key: "rectok", Value: ix.recTok},
		{Key: "recrid", Value: ix.recRID},
		{Key: "deleted", Value: deleted},
		{Key: "logrid", Value: logRIDs},
	}
	for i, ts := range logToks {
		recs = append(recs, checkpoint.Record{Key: logKey(i), Value: ts})
	}
	m := checkpoint.Manifest{
		Pipeline:    persistPipeline,
		Stage:       gen,
		Job:         persistJob,
		Fingerprint: fingerprint(ix.fn, ix.theta, ix.bitmap),
		Counters: map[string]int64{
			CtrProbes:                ix.probes.Load(),
			CtrCandidates:            ix.candidates.Load(),
			CtrHits:                  ix.hits.Load(),
			CtrCompactions:           ix.compactions.Load(),
			CtrCompactions + ".auto": ix.autoCompactions.Load(),
			CtrWALAppends:            ix.walAppends.Load(),
			CtrWALSyncedBytes:        ix.walSynced.Load(),
		},
	}
	if err := st.Save(m, recs); err != nil {
		return err
	}
	if fi, err := os.Stat(snapshotPath(st.Dir(), gen)); err == nil {
		ix.snapshotBytes.Store(fi.Size())
	}
	return nil
}

func logKey(i int) string { return fmt.Sprintf("log.%08d", i) }

// Load reconstructs an index saved into dir under the same serving
// configuration: generations are tried newest first, the first loadable
// snapshot is restored, and its write-ahead log is replayed on top
// (truncating the log at the first torn or invalid frame), so recovery
// after a crash yields exactly the acknowledged mutation prefix. A
// generation that fails — corrupt trailer, stale fingerprint, invariant
// failure, rejected WAL — is counted, discarded and the next older one
// tried. When nothing loads, the error wraps ErrNoIndex and every
// generation's reason sentinel, directing the caller to rebuild.
//
// The returned index is in-memory (no WAL attached); call Persist to make
// it durable again — which rolls a fresh generation forward, bounding WAL
// growth across restarts.
func Load(dir string, opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		return nil, err
	}
	probe := newIndex(opt)
	fp := fingerprint(probe.fn, probe.theta, probe.bitmap)

	var reasons []error
	for gen := maxGeneration(dir); gen >= 1; gen-- {
		if _, err := os.Stat(snapshotPath(dir, gen)); errors.Is(err, os.ErrNotExist) {
			continue // generation present only as an orphan WAL
		}
		ix := newIndex(opt)
		snap, status := st.Load(gen, persistJob, fp)
		switch status {
		case checkpoint.Hit:
		case checkpoint.Miss:
			continue
		case checkpoint.Stale:
			noteReject("stale")
			reasons = append(reasons, fmt.Errorf("gen %d: %w", gen, ErrStaleConfig))
			continue
		default: // Corrupt
			noteReject("corrupt")
			reasons = append(reasons, fmt.Errorf("gen %d: %w", gen, ErrCorruptSnapshot))
			continue
		}
		if err := ix.restore(snap); err != nil {
			noteReject("invariant")
			os.Remove(snapshotPath(dir, gen))
			reasons = append(reasons, fmt.Errorf("gen %d: %w: %v", gen, ErrInvariant, err))
			continue
		}
		res, werr := replayWAL(walPath(dir, gen), gen, fp, ix.applyWALOp)
		if werr != nil {
			// The log cannot bind to this snapshot (foreign header) or
			// cannot be read at all. The snapshot itself is good: recover
			// it with an empty replayed prefix rather than rejecting the
			// whole index, and count the rejected log.
			noteReject("wal")
			reasons = append(reasons, fmt.Errorf("gen %d: %w: %v", gen, ErrWALRejected, werr))
			ix.walTruncated.Add(1)
			os.Remove(walPath(dir, gen))
		}
		ix.walReplayed.Store(res.replayed)
		ix.walTruncated.Add(res.truncated)
		if fi, err := os.Stat(snapshotPath(dir, gen)); err == nil {
			ix.snapshotBytes.Store(fi.Size())
		}
		ix.gen = gen
		return ix, nil
	}
	if len(reasons) == 0 {
		return nil, fmt.Errorf("%w: checkpoint miss in %s", ErrNoIndex, dir)
	}
	return nil, fmt.Errorf("%w: %w", ErrNoIndex, errors.Join(reasons...))
}

// applyWALOp replays one decoded WAL frame onto the restoring index. An
// op that cannot apply — an insert off the rid sequence, a delete of a
// dead rid — was never acknowledged in this history; the error makes
// replayWAL truncate there.
func (ix *Index) applyWALOp(op walOp) error {
	switch op.op {
	case walOpInsert:
		if op.rid != ix.nextRID {
			return fmt.Errorf("insert rid %d off sequence (want %d)", op.rid, ix.nextRID)
		}
		ix.applyInsertLocked(op.rid, op.set)
		return nil
	case walOpDelete:
		return ix.applyDeleteLocked(op.rid)
	default:
		return fmt.Errorf("unknown op %d", op.op)
	}
}

// restore rebuilds the index from a decoded snapshot, validating every
// structural invariant the probe path relies on. The checksum only proves
// the bytes are what Save wrote; this proves the content is an index.
func (ix *Index) restore(snap *checkpoint.Snapshot) error {
	vals := make(map[string]any, len(snap.Records))
	for _, r := range snap.Records {
		if _, dup := vals[r.Key]; dup {
			return fmt.Errorf("duplicate record %q", r.Key)
		}
		vals[r.Key] = r.Value
	}
	metaStr, ok := vals["meta"].(string)
	if !ok {
		return errors.New("missing meta record")
	}
	var meta persistMeta
	dec := json.NewDecoder(strings.NewReader(metaStr))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&meta); err != nil {
		return fmt.Errorf("meta: %v", err)
	}
	if meta.Version != persistVersion {
		return fmt.Errorf("version %d (want %d)", meta.Version, persistVersion)
	}
	if meta.Fn != int(ix.fn) || meta.Theta != ix.theta {
		return errors.New("meta disagrees with fingerprint")
	}
	tokStr, ok := vals["tokens"].([]string)
	if !ok {
		return errors.New("missing tokens record")
	}
	recOff, ok := vals["recoff"].([]int)
	if !ok {
		return errors.New("missing recoff record")
	}
	recTok, ok := vals["rectok"].([]uint32)
	if !ok {
		return errors.New("missing rectok record")
	}
	recRID, ok := vals["recrid"].([]int32)
	if !ok {
		return errors.New("missing recrid record")
	}
	deleted, ok := vals["deleted"].([]int32)
	if !ok {
		return errors.New("missing deleted record")
	}
	logRIDs, ok := vals["logrid"].([]int32)
	if !ok {
		return errors.New("missing logrid record")
	}
	if meta.LogN != len(logRIDs) {
		return errors.New("log count disagrees with logrid")
	}

	// Token table: strings must be unique (the rank map inverts them).
	tokRank := make(map[string]uint32, len(tokStr))
	for r, s := range tokStr {
		if _, dup := tokRank[s]; dup {
			return fmt.Errorf("duplicate token %q", s)
		}
		tokRank[s] = uint32(r)
	}

	// CSR shape: monotone offsets bracketing rectok; per-record token
	// slices strictly increasing with ranks inside the table; unique rids.
	if len(recOff) == 0 || recOff[0] != 0 || recOff[len(recOff)-1] != len(recTok) {
		return errors.New("recoff does not bracket rectok")
	}
	if len(recRID) != len(recOff)-1 {
		return errors.New("recrid length disagrees with recoff")
	}
	maxRID := int32(-1)
	seenRID := make(map[int32]bool, len(recRID)+len(logRIDs))
	recs := make([]baseRec, len(recRID))
	for s := range recRID {
		lo, hi := recOff[s], recOff[s+1]
		if lo > hi || hi > len(recTok) {
			return fmt.Errorf("recoff not monotone at slot %d", s)
		}
		ts := recTok[lo:hi]
		for i, t := range ts {
			if int(t) >= len(tokStr) {
				return fmt.Errorf("slot %d rank %d outside token table", s, t)
			}
			if i > 0 && ts[i-1] >= t {
				return fmt.Errorf("slot %d tokens not strictly increasing", s)
			}
		}
		rid := recRID[s]
		if seenRID[rid] {
			return fmt.Errorf("duplicate rid %d", rid)
		}
		seenRID[rid] = true
		if rid > maxRID {
			maxRID = rid
		}
		recs[s] = baseRec{rid: rid, toks: ts}
	}

	// Rebuild derived structure (postings, signatures, maps) from the
	// validated records, then replay the overlay.
	ix.tokStr = tokStr
	ix.tokRank = tokRank
	ix.assemble(recs)

	for _, rid := range deleted {
		s, ok := ix.slotOf[rid]
		if !ok || ix.dead[s] {
			return fmt.Errorf("tombstone for unknown rid %d", rid)
		}
		ix.dead[s] = true
		ix.baseDead++
		ix.liveN--
	}
	for i, rid := range logRIDs {
		ts, ok := vals[logKey(i)].([]uint32)
		if !ok {
			return fmt.Errorf("missing log record %d", i)
		}
		for j, t := range ts {
			if int(t) >= len(tokStr) {
				return fmt.Errorf("log %d rank %d outside token table", i, t)
			}
			if j > 0 && ts[j-1] >= t {
				return fmt.Errorf("log %d tokens not strictly increasing", i)
			}
		}
		if seenRID[rid] {
			return fmt.Errorf("duplicate rid %d", rid)
		}
		seenRID[rid] = true
		if rid > maxRID {
			maxRID = rid
		}
		e := logRec{rid: rid, toks: ts}
		if ix.sigWords > 0 {
			filters.BuildSignature(&e.sig, ts, ix.sigWords)
		}
		ix.logSlot[rid] = len(ix.log)
		ix.log = append(ix.log, e)
		ix.logLive++
		ix.liveN++
	}
	if meta.NextRID <= maxRID {
		return fmt.Errorf("next_rid %d not past max rid %d", meta.NextRID, maxRID)
	}
	ix.nextRID = meta.NextRID

	ix.probes.Store(snap.Manifest.Counters[CtrProbes])
	ix.candidates.Store(snap.Manifest.Counters[CtrCandidates])
	ix.hits.Store(snap.Manifest.Counters[CtrHits])
	ix.compactions.Store(snap.Manifest.Counters[CtrCompactions])
	ix.autoCompactions.Store(snap.Manifest.Counters[CtrCompactions+".auto"])
	ix.walAppends.Store(snap.Manifest.Counters[CtrWALAppends])
	ix.walSynced.Store(snap.Manifest.Counters[CtrWALSyncedBytes])
	return nil
}
