// Package probeindex implements the persistent probe index: a build-once,
// read-many fragment index answering single-record similarity queries
// without re-running the batch pipeline.
//
// The index stores the corpus in the PR 1 fragment layout — a global
// frequency-ascending token order plus CSR postings over each record's
// probing prefix, with the posting position retained for the PPJoin
// positional filter — and precomputes one hashed bitmap signature per record
// (DESIGN.md §11). A probe canonicalises its token set against the stored
// order, walks only the postings of its own probing prefix, and funnels the
// survivors of the length, positional and bitmap filters into the same
// filters.VerifyOverlap / similarity.Func.AtLeast kernel the batch joins
// use, so a probe result is byte-identical to the full join restricted to
// that record.
//
// Mutations after Build go to a side-log overlay: Insert appends to the log
// (new tokens extend the global order at the rare end, which preserves
// every prefix already indexed), Delete tombstones either a base slot or a
// log entry, and probes take the union view — postings minus tombstones
// plus a linear scan of the live log — under one RWMutex. Compact folds the
// log back into the CSR base and recomputes the token order. Persistence
// (Save/Load) lives in persist.go and rides the internal/checkpoint
// atomic-write, SHA-256-verified codec.
package probeindex

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// Counter names surfaced through Stats and fsjoin.Server job stats.
const (
	// CtrProbes counts Probe/ProbeRecord calls served.
	CtrProbes = "index.probes"
	// CtrCandidates counts postings-walk and overlay candidates examined
	// (after the seen-dedup, before the length filter).
	CtrCandidates = "index.candidates"
	// CtrHits counts matches returned.
	CtrHits = "index.hits"
	// CtrLogSize gauges the side-log overlay: live log inserts plus base
	// tombstones not yet folded by Compact.
	CtrLogSize = "index.log.size"
	// CtrCompactions counts Compact calls (manual and automatic).
	CtrCompactions = "index.compactions"
	// CtrWALAppends counts acknowledged durable mutations appended to the
	// write-ahead log.
	CtrWALAppends = "wal.appends"
	// CtrWALSyncedBytes counts WAL bytes made durable by an fsync.
	CtrWALSyncedBytes = "wal.synced.bytes"
	// CtrWALReplayed counts WAL frames replayed by Load on top of the
	// snapshot.
	CtrWALReplayed = "wal.replayed"
	// CtrWALTruncated counts torn or invalid WAL tails dropped by
	// truncate-to-last-valid recovery.
	CtrWALTruncated = "wal.truncated.frames"
	// CtrSnapshotBytes gauges the size of the current snapshot generation
	// on disk (0 until the index is persisted).
	CtrSnapshotBytes = "snapshot.bytes"
)

// Options configures an index. The similarity function, threshold and
// bitmap policy are fixed at build time and persisted with the index; a
// probe answers exactly the query "which indexed records are θ-similar to
// this set under Fn".
type Options struct {
	// Fn is the similarity function (Jaccard, Dice or Cosine).
	Fn similarity.Func
	// Theta is the similarity threshold in (0, 1].
	Theta float64
	// Bitmap configures the per-record signature filter (DESIGN.md §11).
	// Auto mode honours FSJOIN_BITMAP / FSJOIN_BITMAP_WIDTH, resolved once
	// at Build/Load.
	Bitmap filters.BitmapConfig
}

func (o Options) validate() error {
	if o.Theta <= 0 || o.Theta > 1 {
		return fmt.Errorf("probeindex: theta %v outside (0, 1]", o.Theta)
	}
	switch o.Fn {
	case similarity.Jaccard, similarity.Dice, similarity.Cosine:
	default:
		return fmt.Errorf("probeindex: unknown similarity function %d", int(o.Fn))
	}
	return o.Bitmap.Validate()
}

// Match is one probe result: an indexed record meeting the threshold.
type Match struct {
	// RID is the matched record's identifier.
	RID int32
	// Common is the exact intersection size.
	Common int32
	// Sim is the exact similarity, computed by the same Func.Sim the batch
	// pipeline publishes.
	Sim float64
}

// Stats is a snapshot of index counters.
type Stats struct {
	// Probes, Candidates and Hits are cumulative since build/load.
	Probes     int64
	Candidates int64
	Hits       int64
	// LogSize is the current overlay size (live inserts + base tombstones).
	LogSize int64
	// Records is the number of live records probes can match.
	Records int64
	// Compactions counts Compact calls since build/load (manual plus
	// automatic); AutoCompactions is the policy-triggered subset.
	Compactions     int64
	AutoCompactions int64
	// Durability counters (all zero for a purely in-memory index):
	// mutations appended to the WAL, WAL bytes fsynced, frames replayed at
	// load, torn tails truncated at load, and the size of the current
	// snapshot generation on disk.
	WALAppends         int64
	WALSyncedBytes     int64
	WALReplayed        int64
	WALTruncatedFrames int64
	SnapshotBytes      int64
	// Generation is the current snapshot generation (0 until persisted).
	Generation int64
}

// logRec is one side-log overlay entry: a record inserted after the last
// build/compact, or its tombstone once deleted.
type logRec struct {
	rid  int32
	toks []uint32 // ranks, sorted ascending, duplicate-free
	sig  filters.Signature
	dead bool
}

// scratch is the per-probe candidate-dedup workspace, generation-stamped so
// reuse across probes never needs a clear.
type scratch struct {
	seen []uint32
	gen  uint32
}

// Index is the probe index. All exported methods are safe for concurrent
// use: probes share a read lock, mutations take the write lock.
type Index struct {
	fn       similarity.Func
	theta    float64
	bitmap   filters.BitmapConfig // resolved once at Build/Load
	sigWords int                  // 0 when the bitmap filter is off

	mu sync.RWMutex

	// Token table: rank = position in the global frequency-ascending order
	// (ties broken by token string). Insert extends it at the frequent end;
	// ranks are stable between compactions.
	tokStr  []string
	tokRank map[string]uint32

	// Base records, CSR: record slot s owns recTok[recOff[s]:recOff[s+1]],
	// sorted ranks. dead marks tombstoned slots still present in postings.
	recOff []int
	recTok []uint32
	recRID []int32
	recSig []filters.Signature // nil when sigWords == 0
	dead   []bool
	slotOf map[int32]int

	// Prefix postings, CSR: rank w owns postSlot/postPos[postOff[w]:
	// postOff[w+1]] — the base slots whose probing prefix contains w, with
	// w's position inside each record.
	postOff  []int
	postSlot []int32
	postPos  []int32

	// Side-log overlay.
	log      []logRec
	logSlot  map[int32]int
	logLive  int
	baseDead int

	nextRID int32
	liveN   int

	// Durability state (nil/zero for a purely in-memory index): the
	// directory and snapshot generation the index is bound to, the open
	// WAL accepting acknowledged mutations, and the maintenance policy.
	dir         string
	gen         int
	wal         *wal
	dopt        DurableOptions
	lastCompact time.Time

	probes, candidates, hits, compactions atomic.Int64

	autoCompactions, walAppends, walSynced   atomic.Int64
	walReplayed, walTruncated, snapshotBytes atomic.Int64

	scratchPool sync.Pool
}

// Build constructs an index over a canonical collection. tokenOf maps the
// collection's dictionary ids back to token strings (it must be injective
// over the ids in use); the index keys on strings so probes may carry
// tokens the corpus has never seen.
func Build(c *tokens.Collection, tokenOf func(tokens.ID) string, opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("probeindex: nil collection")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("probeindex: %w", err)
	}
	ix := newIndex(opt)

	// Global order: frequency ascending, ties by token string — the same
	// rare-first order the batch pipeline computes, made self-contained so
	// the index needs no external order to probe.
	freq := make([]int64, int(c.MaxToken())+1)
	for _, r := range c.Records {
		for _, t := range r.Tokens {
			freq[t]++
		}
	}
	ids := make([]tokens.ID, 0, len(freq))
	for id, f := range freq {
		if f > 0 {
			ids = append(ids, tokens.ID(id))
		}
	}
	strOf := make([]string, len(freq))
	for _, id := range ids {
		strOf[id] = tokenOf(id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if freq[a] != freq[b] {
			return freq[a] < freq[b]
		}
		return strOf[a] < strOf[b]
	})
	rankOf := make([]uint32, len(freq))
	ix.tokStr = make([]string, len(ids))
	ix.tokRank = make(map[string]uint32, len(ids))
	for rank, id := range ids {
		s := strOf[id]
		if _, dup := ix.tokRank[s]; dup {
			return nil, fmt.Errorf("probeindex: tokenOf not injective at %q", s)
		}
		rankOf[id] = uint32(rank)
		ix.tokStr[rank] = s
		ix.tokRank[s] = uint32(rank)
	}

	// Re-encode records into ranks, sorted per record.
	recs := make([]baseRec, 0, len(c.Records))
	ix.nextRID = 0
	for _, r := range c.Records {
		rs := make([]uint32, len(r.Tokens))
		for i, t := range r.Tokens {
			rs[i] = rankOf[t]
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		recs = append(recs, baseRec{rid: r.RID, toks: rs})
		if r.RID >= ix.nextRID {
			ix.nextRID = r.RID + 1
		}
	}
	ix.assemble(recs)
	return ix, nil
}

func newIndex(opt Options) *Index {
	ix := &Index{
		fn:      opt.Fn,
		theta:   opt.Theta,
		bitmap:  opt.Bitmap.ResolveEnv(),
		tokRank: map[string]uint32{},
		slotOf:  map[int32]int{},
		logSlot: map[int32]int{},
	}
	ix.scratchPool.New = func() any { return &scratch{} }
	return ix
}

// baseRec is one record headed for the CSR base.
type baseRec struct {
	rid  int32
	toks []uint32
}

// assemble (re)builds the CSR base, signatures and postings from rank-coded
// records, leaving the overlay empty. Records are stored in RID order so
// the layout — and therefore the persisted bytes — is deterministic.
func (ix *Index) assemble(recs []baseRec) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].rid < recs[j].rid })

	total := 0
	for _, r := range recs {
		total += len(r.toks)
	}
	ix.recOff = make([]int, len(recs)+1)
	ix.recTok = make([]uint32, 0, total)
	ix.recRID = make([]int32, len(recs))
	ix.dead = make([]bool, len(recs))
	ix.slotOf = make(map[int32]int, len(recs))
	for s, r := range recs {
		ix.recOff[s] = len(ix.recTok)
		ix.recTok = append(ix.recTok, r.toks...)
		ix.recRID[s] = r.rid
		ix.slotOf[r.rid] = s
	}
	ix.recOff[len(recs)] = len(ix.recTok)

	ix.sigWords = 0
	ix.recSig = nil
	if ix.bitmap.Enabled() && len(recs) > 0 {
		ix.sigWords = ix.bitmap.Words(float64(total) / float64(len(recs)))
		ix.recSig = make([]filters.Signature, len(recs))
		for s := range recs {
			filters.BuildSignature(&ix.recSig[s], ix.slotToks(s), ix.sigWords)
		}
	}

	ix.rebuildPostings()

	ix.log = nil
	ix.logSlot = map[int32]int{}
	ix.logLive = 0
	ix.baseDead = 0
	ix.liveN = len(recs)
}

// rebuildPostings fills the prefix-postings CSR from the base records: rank
// w lists every base slot whose probing prefix contains w, with w's
// position. Indexing the probing (not the shorter indexing) prefix keeps
// the index complete for arbitrary external probes, not only self-joins.
func (ix *Index) rebuildPostings() {
	counts := make([]int, len(ix.tokStr)+1)
	nrec := len(ix.recRID)
	for s := 0; s < nrec; s++ {
		ts := ix.slotToks(s)
		p := ix.fn.ProbePrefixLen(ix.theta, len(ts))
		for i := 0; i < p; i++ {
			counts[ts[i]+1]++
		}
	}
	for w := 1; w < len(counts); w++ {
		counts[w] += counts[w-1]
	}
	ix.postOff = counts
	n := counts[len(counts)-1]
	ix.postSlot = make([]int32, n)
	ix.postPos = make([]int32, n)
	cur := make([]int, len(ix.tokStr))
	copy(cur, ix.postOff[:len(ix.tokStr)])
	for s := 0; s < nrec; s++ {
		ts := ix.slotToks(s)
		p := ix.fn.ProbePrefixLen(ix.theta, len(ts))
		for i := 0; i < p; i++ {
			w := ts[i]
			k := cur[w]
			ix.postSlot[k] = int32(s)
			ix.postPos[k] = int32(i)
			cur[w] = k + 1
		}
	}
}

func (ix *Index) slotToks(s int) []uint32 {
	return ix.recTok[ix.recOff[s]:ix.recOff[s+1]]
}

// canonicalize maps a probe's token strings to sorted, duplicate-free known
// ranks plus the count of distinct unknown tokens. Unknown tokens are
// treated as ranked after every known rank: the prefix-filter theorem holds
// under any total order, the stored prefixes are unchanged by appending new
// tokens at the end of the order, and an unknown token can never match an
// indexed one — so scanning only the known ranks inside the probe's prefix
// stays complete, while the probe's full length L = known + unknown feeds
// the same prefix/overlap algebra the batch pipeline uses.
func (ix *Index) canonicalize(set []string) (ranks []uint32, total int) {
	ranks = make([]uint32, 0, len(set))
	var unk map[string]struct{}
	for _, tok := range set {
		if r, ok := ix.tokRank[tok]; ok {
			ranks = append(ranks, r)
		} else {
			if unk == nil {
				unk = make(map[string]struct{}, 4)
			}
			unk[tok] = struct{}{}
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	w := 0
	for i, r := range ranks {
		if i == 0 || r != ranks[i-1] {
			ranks[w] = r
			w++
		}
	}
	ranks = ranks[:w]
	return ranks, w + len(unk)
}

// Probe returns every live indexed record θ-similar to the given token set,
// sorted by RID. The set may be unsorted and contain duplicates or tokens
// the index has never seen.
func (ix *Index) Probe(set []string) []Match {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ranks, total := ix.canonicalize(set)
	return ix.probeLocked(ranks, total, 0, false)
}

// ProbeRecord probes with an indexed record's own token set, excluding the
// record itself — the self-join view restricted to rid.
func (ix *Index) ProbeRecord(rid int32) ([]Match, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if s, ok := ix.slotOf[rid]; ok && !ix.dead[s] {
		ts := ix.slotToks(s)
		return ix.probeLocked(ts, len(ts), rid, true), nil
	}
	if li, ok := ix.logSlot[rid]; ok && !ix.log[li].dead {
		ts := ix.log[li].toks
		return ix.probeLocked(ts, len(ts), rid, true), nil
	}
	return nil, fmt.Errorf("probeindex: record %d not in index", rid)
}

// probeLocked runs the filter chain under a held read lock. ranks is the
// probe's known ranks (sorted, deduped); total its full length including
// unknown tokens; exclude/hasExcl optionally drops one rid (self-probes).
//
// Soundness of pruning at first contact: postings are walked in ascending
// rank order over the probe's prefix, so the first posting that reaches a
// slot corresponds to the pair's globally smallest common token — exactly
// the group RIDPairsPPJoin would discover the pair in — and the positional
// bound is loosest there. A slot rejected at first contact is therefore
// rejected in every group, and the seen-stamp may finalise it.
func (ix *Index) probeLocked(ranks []uint32, total int, exclude int32, hasExcl bool) []Match {
	ix.probes.Add(1)
	if total == 0 {
		return nil
	}
	var out []Match
	var cand int64

	var psig filters.Signature
	if ix.sigWords > 0 {
		filters.BuildSignature(&psig, ranks, ix.sigWords)
	}

	nBase := len(ix.recRID)
	sc := ix.scratchPool.Get().(*scratch)
	if len(sc.seen) < nBase {
		sc.seen = make([]uint32, nBase)
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 {
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.gen = 1
	}

	p := ix.fn.ProbePrefixLen(ix.theta, total)
	if p > len(ranks) {
		p = len(ranks) // the tail of the prefix is unknown tokens: no postings
	}
	for i := 0; i < p; i++ {
		w := ranks[i]
		if int(w) >= len(ix.tokStr) || int(w)+1 >= len(ix.postOff) {
			continue // rank added by Insert after the last compact: no base postings
		}
		for k := ix.postOff[w]; k < ix.postOff[w+1]; k++ {
			slot := ix.postSlot[k]
			if sc.seen[slot] == sc.gen {
				continue
			}
			sc.seen[slot] = sc.gen
			if ix.dead[slot] {
				continue
			}
			rid := ix.recRID[slot]
			if hasExcl && rid == exclude {
				continue
			}
			cand++
			ts := ix.slotToks(int(slot))
			lx := len(ts)
			if filters.StrLPrune(ix.fn, ix.theta, total, lx) {
				continue
			}
			required := ix.fn.MinOverlap(ix.theta, total, lx)
			// PPJoin positional filter at the smallest common token: w is
			// probe position i and record position postPos[k]; at most
			// 1 + min(remaining on each side) tokens can still match.
			if bound := 1 + minInt(total-i-1, lx-int(ix.postPos[k])-1); bound < required {
				continue
			}
			if ix.sigWords > 0 &&
				filters.SigPrune(&psig, &ix.recSig[slot], ix.sigWords, len(ranks), lx, required) {
				// psig covers only the known ranks, but unknown probe tokens
				// cannot intersect an indexed set, so the bound on the known
				// part bounds the true overlap; required still reflects the
				// full probe length. Exact, never lossy.
				continue
			}
			c, ok := filters.VerifyOverlap(ranks, ts, required)
			if !ok || !ix.fn.AtLeast(c, total, lx, ix.theta) {
				continue
			}
			out = append(out, Match{RID: rid, Common: int32(c), Sim: ix.fn.Sim(c, total, lx)})
		}
	}
	ix.scratchPool.Put(sc)

	// Overlay: linear scan of live log entries with the same filter chain
	// minus the positional filter (the log has no postings positions).
	for li := range ix.log {
		e := &ix.log[li]
		if e.dead || len(e.toks) == 0 {
			continue
		}
		if hasExcl && e.rid == exclude {
			continue
		}
		cand++
		lx := len(e.toks)
		if filters.StrLPrune(ix.fn, ix.theta, total, lx) {
			continue
		}
		required := ix.fn.MinOverlap(ix.theta, total, lx)
		if ix.sigWords > 0 &&
			filters.SigPrune(&psig, &e.sig, ix.sigWords, len(ranks), lx, required) {
			continue
		}
		c, ok := filters.VerifyOverlap(ranks, e.toks, required)
		if !ok || !ix.fn.AtLeast(c, total, lx, ix.theta) {
			continue
		}
		out = append(out, Match{RID: e.rid, Common: int32(c), Sim: ix.fn.Sim(c, total, lx)})
	}

	sort.Slice(out, func(i, j int) bool { return out[i].RID < out[j].RID })
	ix.candidates.Add(cand)
	ix.hits.Add(int64(len(out)))
	return out
}

// Insert adds a record to the side-log overlay and returns its assigned
// RID. Tokens unknown to the index extend the global order at the frequent
// end — a sound extension, because every already-indexed prefix stays a
// prefix under any order completion that only appends new ranks.
//
// On a durable index the mutation is appended to the write-ahead log
// (synced per the configured policy) BEFORE it is applied or acknowledged;
// a WAL failure returns a *WALError and leaves the index unchanged — a
// mutation is never acknowledged without its durable record.
func (ix *Index) Insert(set []string) (int32, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	rid := ix.nextRID
	if ix.wal != nil {
		if err := ix.walAppendLocked(encodeInsertFrame(rid, set)); err != nil {
			return 0, err
		}
		kill("wal.append.post")
	}
	ix.applyInsertLocked(rid, set)
	return rid, nil
}

// applyInsertLocked commits one insert to the in-memory overlay under a
// held write lock: rid becomes live, new tokens extend the rank table.
func (ix *Index) applyInsertLocked(rid int32, set []string) {
	ix.nextRID = rid + 1
	ranks := make([]uint32, 0, len(set))
	for _, tok := range set {
		r, ok := ix.tokRank[tok]
		if !ok {
			r = uint32(len(ix.tokStr))
			ix.tokStr = append(ix.tokStr, tok)
			ix.tokRank[tok] = r
		}
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	w := 0
	for i, r := range ranks {
		if i == 0 || r != ranks[i-1] {
			ranks[w] = r
			w++
		}
	}
	ranks = ranks[:w]
	e := logRec{rid: rid, toks: ranks}
	if ix.sigWords > 0 {
		filters.BuildSignature(&e.sig, ranks, ix.sigWords)
	}
	ix.logSlot[rid] = len(ix.log)
	ix.log = append(ix.log, e)
	ix.logLive++
	ix.liveN++
}

// Delete removes a record: base slots are tombstoned (their postings decay
// at the next Compact), log entries are tombstoned in place. Durable
// deletes follow the same WAL-before-acknowledge contract as Insert.
func (ix *Index) Delete(rid int32) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.liveLocked(rid) {
		return fmt.Errorf("probeindex: record %d not in index", rid)
	}
	if ix.wal != nil {
		if err := ix.walAppendLocked(encodeDeleteFrame(rid)); err != nil {
			return err
		}
		kill("wal.append.post")
	}
	return ix.applyDeleteLocked(rid)
}

// liveLocked reports whether rid is currently probeable.
func (ix *Index) liveLocked(rid int32) bool {
	if s, ok := ix.slotOf[rid]; ok && !ix.dead[s] {
		return true
	}
	li, ok := ix.logSlot[rid]
	return ok && !ix.log[li].dead
}

// applyDeleteLocked commits one delete under a held write lock.
func (ix *Index) applyDeleteLocked(rid int32) error {
	if s, ok := ix.slotOf[rid]; ok && !ix.dead[s] {
		ix.dead[s] = true
		ix.baseDead++
		ix.liveN--
		return nil
	}
	if li, ok := ix.logSlot[rid]; ok && !ix.log[li].dead {
		ix.log[li].dead = true
		delete(ix.logSlot, rid)
		ix.logLive--
		ix.liveN--
		return nil
	}
	return fmt.Errorf("probeindex: record %d not in index", rid)
}

// walAppendLocked appends one frame to the open WAL, folding the sync
// outcome into the durability counters.
func (ix *Index) walAppendLocked(frame []byte) error {
	synced, err := ix.wal.append(frame)
	if err != nil {
		return err
	}
	ix.walAppends.Add(1)
	ix.walSynced.Add(synced)
	return nil
}

// Compact folds the overlay into the CSR base: live log records join the
// base, tombstones vanish, the global token order is recomputed from the
// surviving corpus (frequency ascending, ties by string, dead tokens
// dropped) and postings and signatures are rebuilt. Probe results are
// unchanged; only the layout moves.
//
// On a durable index compaction also checkpoints: a fresh snapshot
// generation is written atomically, a new empty WAL is installed and the
// old generation retired — see checkpointLocked for the crash protocol.
func (ix *Index) Compact() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.wal != nil {
		return ix.checkpointLocked(true)
	}
	ix.compactLocked()
	return nil
}

// compactLocked is the in-memory fold, shared by Compact and the durable
// checkpoint path.
func (ix *Index) compactLocked() {
	// Collect live records in old ranks.
	type oldRec struct {
		rid  int32
		toks []uint32
	}
	live := make([]oldRec, 0, ix.liveN)
	for s := range ix.recRID {
		if !ix.dead[s] {
			live = append(live, oldRec{rid: ix.recRID[s], toks: ix.slotToks(s)})
		}
	}
	for li := range ix.log {
		if !ix.log[li].dead {
			live = append(live, oldRec{rid: ix.log[li].rid, toks: ix.log[li].toks})
		}
	}

	// Recompute the order over surviving tokens.
	freq := make([]int64, len(ix.tokStr))
	for _, r := range live {
		for _, t := range r.toks {
			freq[t]++
		}
	}
	oldRanks := make([]uint32, 0, len(ix.tokStr))
	for t, f := range freq {
		if f > 0 {
			oldRanks = append(oldRanks, uint32(t))
		}
	}
	sort.Slice(oldRanks, func(i, j int) bool {
		a, b := oldRanks[i], oldRanks[j]
		if freq[a] != freq[b] {
			return freq[a] < freq[b]
		}
		return ix.tokStr[a] < ix.tokStr[b]
	})
	oldToNew := make([]uint32, len(ix.tokStr))
	newStr := make([]string, len(oldRanks))
	newRank := make(map[string]uint32, len(oldRanks))
	for nr, or := range oldRanks {
		oldToNew[or] = uint32(nr)
		newStr[nr] = ix.tokStr[or]
		newRank[ix.tokStr[or]] = uint32(nr)
	}
	ix.tokStr = newStr
	ix.tokRank = newRank

	recs := make([]baseRec, len(live))
	for i, r := range live {
		rs := make([]uint32, len(r.toks))
		for j, t := range r.toks {
			rs[j] = oldToNew[t]
		}
		sort.Slice(rs, func(a, b int) bool { return rs[a] < rs[b] })
		recs[i] = baseRec{rid: r.rid, toks: rs}
	}
	ix.assemble(recs)
	ix.compactions.Add(1)
	ix.lastCompact = time.Now()
}

// Len returns the number of live records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveN
}

// Options returns the build-time configuration (bitmap already resolved).
func (ix *Index) Options() Options {
	return Options{Fn: ix.fn, Theta: ix.theta, Bitmap: ix.bitmap}
}

// Stats snapshots the index counters.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	logSize := int64(ix.logLive + ix.baseDead)
	records := int64(ix.liveN)
	gen := int64(ix.gen)
	ix.mu.RUnlock()
	return Stats{
		Probes:             ix.probes.Load(),
		Candidates:         ix.candidates.Load(),
		Hits:               ix.hits.Load(),
		LogSize:            logSize,
		Records:            records,
		Compactions:        ix.compactions.Load(),
		AutoCompactions:    ix.autoCompactions.Load(),
		WALAppends:         ix.walAppends.Load(),
		WALSyncedBytes:     ix.walSynced.Load(),
		WALReplayed:        ix.walReplayed.Load(),
		WALTruncatedFrames: ix.walTruncated.Load(),
		SnapshotBytes:      ix.snapshotBytes.Load(),
		Generation:         gen,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
