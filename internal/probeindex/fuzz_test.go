package probeindex

import (
	"os"
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

// fuzzOpt is the fixed serving configuration the fuzz target loads under.
var fuzzOpt = Options{Fn: similarity.Jaccard, Theta: 0.8, Bitmap: filters.BitmapConfig{Mode: filters.BitmapOn, Width: 64}}

// ckptPath is where checkpoint.Store materialises the index file: a Save
// into an empty directory writes generation 1.
func ckptPath(dir string) string {
	return snapshotPath(dir, 1)
}

// validIndexFile renders one real saved index to seed the corpus.
func validIndexFile(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	ix, err := Build(testutil.RandomCollection(30, 20, 10, 41), tokenName, fuzzOpt)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := ix.Insert([]string{"x", "y", "z"}); err != nil {
		tb.Fatal(err)
	}
	if err := ix.Delete(0); err != nil {
		tb.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(ckptPath(dir))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzIndexCodec feeds arbitrary bytes to the index loader: truncated,
// bit-flipped or wholly fabricated files (including garbage bodies behind
// a freshly valid SHA-256 trailer, which the fuzzer will synthesise from
// the seed) must either load into a servable index or fail with an error —
// never panic. Whatever loads must survive a probe and a save/load
// round-trip.
func FuzzIndexCodec(f *testing.F) {
	valid := validIndexFile(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("FSCKPT01 not really"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(ckptPath(dir), data, 0o600); err != nil {
			t.Skip()
		}
		ix, err := Load(dir, fuzzOpt)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		// Whatever passed validation must behave like an index.
		ix.Probe([]string{"x", "y", "z"})
		if ix.Len() > 0 {
			rid, err := ix.Insert([]string{"q1", "q2"})
			if err != nil {
				t.Fatalf("insert into loaded index: %v", err)
			}
			if err := ix.Delete(rid); err != nil {
				t.Fatalf("delete of fresh insert: %v", err)
			}
		}
		dir2 := t.TempDir()
		if err := ix.Save(dir2); err != nil {
			t.Fatalf("save of loaded index: %v", err)
		}
		ix2, err := Load(dir2, fuzzOpt)
		if err != nil {
			t.Fatalf("round-trip load: %v", err)
		}
		if ix2.Len() != ix.Len() {
			t.Fatalf("round-trip Len %d != %d", ix2.Len(), ix.Len())
		}
	})
}

// validWALSeed renders one real snapshot + WAL pair (the WAL holding two
// inserts and a delete) to seed the WAL fuzz corpus.
func validWALSeed(tb testing.TB) (snap, walRaw []byte) {
	tb.Helper()
	dir := tb.TempDir()
	ix, err := Build(testutil.RandomCollection(20, 15, 8, 17), tokenName, fuzzOpt)
	if err != nil {
		tb.Fatal(err)
	}
	if err := ix.Persist(dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}}); err != nil {
		tb.Fatal(err)
	}
	if _, err := ix.Insert([]string{"a", "b"}); err != nil {
		tb.Fatal(err)
	}
	if _, err := ix.Insert([]string{"b", "c", "d"}); err != nil {
		tb.Fatal(err)
	}
	if err := ix.Delete(0); err != nil {
		tb.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		tb.Fatal(err)
	}
	snap, err = os.ReadFile(snapshotPath(dir, 1))
	if err != nil {
		tb.Fatal(err)
	}
	walRaw, err = os.ReadFile(walPath(dir, 1))
	if err != nil {
		tb.Fatal(err)
	}
	return snap, walRaw
}

// FuzzWAL places arbitrary bytes where generation 1's write-ahead log
// belongs, next to a valid snapshot. Whatever the bytes — torn tails,
// bit-flipped frames, fabricated headers, garbage — Load must never panic
// and never reject the index: the worst acceptable outcome is recovering
// the snapshot with an empty replayed prefix. Recovery must also be
// deterministic: the first load repairs (truncates) or rejects (removes)
// the log, so a second load sees a clean tail and the identical state.
func FuzzWAL(f *testing.F) {
	snap, walRaw := validWALSeed(f)
	f.Add(walRaw)
	f.Add(walRaw[:len(walRaw)-3]) // torn tail: final frame cut mid-payload
	f.Add(walRaw[:len(walRaw)/2]) // torn earlier
	flip := append([]byte(nil), walRaw...)
	flip[len(flip)-2] ^= 0x40 // bit rot inside the last frame's payload
	f.Add(flip)
	f.Add([]byte(walMagic))            // magic, no header
	f.Add([]byte("FSWAL001 garbage?")) // header bytes that cannot parse
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(snapshotPath(dir, 1), snap, 0o600); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(walPath(dir, 1), data, 0o600); err != nil {
			t.Skip()
		}
		ix, err := Load(dir, fuzzOpt)
		if err != nil {
			t.Fatalf("load must recover the snapshot whatever the WAL bytes: %v", err)
		}
		ix.Probe([]string{"a", "b", "c"})

		ix2, err := Load(dir, fuzzOpt)
		if err != nil {
			t.Fatalf("second load after repair: %v", err)
		}
		if !stateEqual(liveSets(ix), liveSets(ix2)) {
			t.Fatal("recovery is not deterministic: second load differs after repair")
		}
		if st := ix2.Stats(); st.WALTruncatedFrames != 0 {
			t.Fatalf("second load still truncates (%d): first load did not repair the tail", st.WALTruncatedFrames)
		}
	})
}
