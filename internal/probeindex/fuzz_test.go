package probeindex

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

// fuzzOpt is the fixed serving configuration the fuzz target loads under.
var fuzzOpt = Options{Fn: similarity.Jaccard, Theta: 0.8, Bitmap: filters.BitmapConfig{Mode: filters.BitmapOn, Width: 64}}

// ckptPath is where checkpoint.Store materialises the index file.
func ckptPath(dir string) string {
	return filepath.Join(dir, fmt.Sprintf("stage-%03d-%s.ckpt", persistStage, persistJob))
}

// validIndexFile renders one real saved index to seed the corpus.
func validIndexFile(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	ix, err := Build(testutil.RandomCollection(30, 20, 10, 41), tokenName, fuzzOpt)
	if err != nil {
		tb.Fatal(err)
	}
	ix.Insert([]string{"x", "y", "z"})
	if err := ix.Delete(0); err != nil {
		tb.Fatal(err)
	}
	if err := ix.Save(dir); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(ckptPath(dir))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzIndexCodec feeds arbitrary bytes to the index loader: truncated,
// bit-flipped or wholly fabricated files (including garbage bodies behind
// a freshly valid SHA-256 trailer, which the fuzzer will synthesise from
// the seed) must either load into a servable index or fail with an error —
// never panic. Whatever loads must survive a probe and a save/load
// round-trip.
func FuzzIndexCodec(f *testing.F) {
	valid := validIndexFile(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("FSCKPT01 not really"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(ckptPath(dir), data, 0o600); err != nil {
			t.Skip()
		}
		ix, err := Load(dir, fuzzOpt)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		// Whatever passed validation must behave like an index.
		ix.Probe([]string{"x", "y", "z"})
		if ix.Len() > 0 {
			rid := ix.Insert([]string{"q1", "q2"})
			if err := ix.Delete(rid); err != nil {
				t.Fatalf("delete of fresh insert: %v", err)
			}
		}
		dir2 := t.TempDir()
		if err := ix.Save(dir2); err != nil {
			t.Fatalf("save of loaded index: %v", err)
		}
		ix2, err := Load(dir2, fuzzOpt)
		if err != nil {
			t.Fatalf("round-trip load: %v", err)
		}
		if ix2.Len() != ix.Len() {
			t.Fatalf("round-trip Len %d != %d", ix2.Len(), ix.Len())
		}
	})
}
