// Durable attachment and self-maintenance for the probe index
// (DESIGN.md §14). Persist binds an index to a directory: a fresh snapshot
// generation is written and an empty WAL opened, after which every
// acknowledged Insert/Delete is WAL-logged before it is applied. The
// AutoCompact policy then keeps the index healthy without operator help:
// MaybeCompact (driven by fsjoin.Server's maintenance goroutine, or by any
// caller on its own schedule) folds the overlay and rolls the generation
// forward when the side-log outgrows its thresholds.
//
// Checkpoint crash protocol (checkpointLocked): write snapshot g+1
// (temp → fsync → rename, via internal/checkpoint) → create empty wal.g+1
// (fsync file and directory) → switch appends to the new log → retire
// wal.g and snapshot g. A crash at any boundary recovers from either the
// old snapshot+WAL or the new snapshot — never a mix — because recovery
// always picks the newest loadable snapshot generation and replays only
// that generation's WAL (the header binds gen and fingerprint).
package probeindex

import (
	"errors"
	"fmt"
	"os"
	"time"

	"fsjoin/internal/checkpoint"
)

// AutoCompactPolicy decides when a durable index folds its side-log
// overlay into a fresh snapshot generation. The zero value disables
// auto-compaction (manual Compact still works).
type AutoCompactPolicy struct {
	// LogFraction triggers compaction when the overlay (live log inserts +
	// base tombstones) reaches this fraction of the live record count;
	// 0 disables the fractional trigger.
	LogFraction float64
	// MaxLogRecords triggers compaction when the overlay reaches this many
	// records regardless of corpus size; 0 disables the absolute trigger.
	MaxLogRecords int
	// MinInterval spaces compactions: once one has run, another will not
	// auto-trigger for this long, bounding snapshot-write churn under
	// mutation storms. 0 means no spacing.
	MinInterval time.Duration
}

// enabled reports whether any trigger is armed.
func (p AutoCompactPolicy) enabled() bool {
	return p.LogFraction > 0 || p.MaxLogRecords > 0
}

func (p AutoCompactPolicy) validate() error {
	if p.LogFraction < 0 || p.MaxLogRecords < 0 || p.MinInterval < 0 {
		return fmt.Errorf("probeindex: negative auto-compact policy %+v", p)
	}
	return nil
}

// DurableOptions configures Persist: how WAL appends reach disk and when
// the index compacts itself. Durability knobs are deliberately NOT part of
// the persistence fingerprint — changing the fsync policy between runs
// must not invalidate a saved index.
type DurableOptions struct {
	Sync        SyncPolicy
	AutoCompact AutoCompactPolicy
}

func (d DurableOptions) validate() error {
	if err := d.Sync.validate(); err != nil {
		return err
	}
	return d.AutoCompact.validate()
}

// Persist makes the index durable in dir: the current state is written as
// a fresh snapshot generation (atomic rename, SHA-256 trailer) and an
// empty WAL is opened next to it. From then on every Insert/Delete is
// appended to the WAL — synced per d.Sync — before it is acknowledged, so
// Load(dir) after a crash recovers exactly the acknowledged history.
// Older generations and their logs are retired. Close releases the WAL.
func (ix *Index) Persist(dir string, d DurableOptions) error {
	if err := d.validate(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.wal != nil {
		return fmt.Errorf("probeindex: index already durable in %s", ix.dir)
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		return err
	}
	gen := maxGeneration(dir) + 1
	ix.dir, ix.dopt = dir, d
	if err := ix.writeSnapshotLocked(st, gen); err != nil {
		ix.dir = ""
		return err
	}
	w, err := createWAL(dir, gen, fingerprint(ix.fn, ix.theta, ix.bitmap), d.Sync)
	if err != nil {
		os.Remove(snapshotPath(dir, gen))
		ix.dir = ""
		return err
	}
	ix.wal, ix.gen = w, gen
	ix.lastCompact = time.Now()
	retireGenerations(dir, gen)
	return nil
}

// Close flushes and closes the WAL, detaching the index from its
// directory. The on-disk state stays loadable; further mutations are
// purely in-memory again. Safe on a never-persisted index.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.wal == nil {
		return nil
	}
	err := ix.wal.close()
	ix.wal = nil
	ix.dir = ""
	return err
}

// Durable reports whether the index has an attached WAL.
func (ix *Index) Durable() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.wal != nil
}

// Maintain runs one maintenance pass: pending group-commit WAL bytes are
// flushed (so SyncInterval's loss window holds even when no mutation
// arrives to piggyback on) and the auto-compaction policy is evaluated.
// fsjoin.Server drives this from its supervised maintenance goroutine.
func (ix *Index) Maintain() error {
	ix.mu.Lock()
	if ix.wal != nil && ix.wal.policy.Mode == SyncInterval &&
		time.Since(ix.wal.lastSync) >= ix.wal.policy.interval() {
		synced, err := ix.wal.flush()
		ix.walSynced.Add(synced)
		if err != nil {
			ix.mu.Unlock()
			return err
		}
	}
	ix.mu.Unlock()
	_, err := ix.MaybeCompact()
	return err
}

// MaybeCompact compacts and checkpoints if the auto-compaction policy says
// the overlay has outgrown its thresholds, reporting whether it ran. A
// non-durable index, a disabled policy, an empty overlay or an unelapsed
// MinInterval all make it a cheap no-op.
func (ix *Index) MaybeCompact() (bool, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	p := ix.dopt.AutoCompact
	if ix.wal == nil || !p.enabled() {
		return false, nil
	}
	logSize := ix.logLive + ix.baseDead
	if logSize == 0 {
		return false, nil
	}
	due := p.MaxLogRecords > 0 && logSize >= p.MaxLogRecords
	if !due && p.LogFraction > 0 {
		base := ix.liveN
		if base < 1 {
			base = 1
		}
		due = float64(logSize) >= p.LogFraction*float64(base)
	}
	if !due {
		return false, nil
	}
	if p.MinInterval > 0 && time.Since(ix.lastCompact) < p.MinInterval {
		return false, nil
	}
	if err := ix.checkpointLocked(true); err != nil {
		return false, err
	}
	ix.autoCompactions.Add(1)
	return true, nil
}

// checkpointLocked rolls the durable state one generation forward under a
// held write lock: optionally fold the overlay, write snapshot gen+1,
// install a fresh WAL, retire the old generation. Failure handling keeps
// the invariant "the newest snapshot on disk + its WAL = the acknowledged
// history":
//
//   - snapshot write fails → nothing changed on disk; the old generation
//     (snapshot + WAL) stays authoritative. The in-memory fold is harmless:
//     WAL records are logical (strings and rids), so appends to the OLD log
//     still replay correctly onto the OLD snapshot.
//   - WAL create fails → the new snapshot must not be left to shadow the
//     still-active old WAL; it is removed. If even that fails the old log
//     is poisoned so no further mutation can be acknowledged against a
//     directory whose recovery would diverge.
func (ix *Index) checkpointLocked(fold bool) error {
	kill("compact.pre")
	if fold {
		ix.compactLocked()
	}
	st, err := checkpoint.Open(ix.dir)
	if err != nil {
		return err
	}
	newGen := ix.gen + 1
	if err := ix.writeSnapshotLocked(st, newGen); err != nil {
		return err
	}
	kill("compact.snapshot.written")
	w, err := createWAL(ix.dir, newGen, fingerprint(ix.fn, ix.theta, ix.bitmap), ix.dopt.Sync)
	if err != nil {
		if rerr := os.Remove(snapshotPath(ix.dir, newGen)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			ix.wal.broken = true
		}
		return err
	}
	kill("compact.wal.created")
	old := ix.wal
	ix.wal, ix.gen = w, newGen
	old.close()
	os.Remove(old.path)
	os.Remove(snapshotPath(ix.dir, newGen-1))
	retireGenerations(ix.dir, newGen)
	kill("compact.retired")
	return nil
}

// Checkpoint forces a durable snapshot of the current state (overlay
// included, not folded) and a WAL rotation — Save for a live durable
// index. Callers wanting the fold too use Compact.
func (ix *Index) Checkpoint() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.wal == nil {
		return errors.New("probeindex: Checkpoint on a non-durable index (use Save)")
	}
	return ix.checkpointLocked(false)
}
