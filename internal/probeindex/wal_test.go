package probeindex

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"fsjoin/internal/filters"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

// durOpt is the fixed serving configuration durability tests run under.
var durOpt = Options{Fn: similarity.Jaccard, Theta: 0.7, Bitmap: filters.BitmapConfig{Mode: filters.BitmapOff}}

// buildDurable builds a small corpus index, persists it into dir and
// returns it with the rid→token-set oracle of its live records.
func buildDurable(t *testing.T, dir string, d DurableOptions) (*Index, map[int32][]string) {
	t.Helper()
	c := testutil.RandomCollection(40, 25, 10, 91)
	ix, err := Build(c, tokenName, durOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Persist(dir, d); err != nil {
		t.Fatal(err)
	}
	live := map[int32][]string{}
	for _, r := range c.Records {
		live[r.RID] = dedupStrings(names(r.Tokens))
	}
	return ix, live
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// liveSets reads the recovered index's logical state: every live record's
// rid and token strings (ranks decoded through the token table).
func liveSets(ix *Index) map[int32][]string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := map[int32][]string{}
	for s := range ix.recRID {
		if ix.dead[s] {
			continue
		}
		var toks []string
		for _, r := range ix.slotToks(s) {
			toks = append(toks, ix.tokStr[r])
		}
		out[ix.recRID[s]] = toks
	}
	for li := range ix.log {
		if ix.log[li].dead {
			continue
		}
		var toks []string
		for _, r := range ix.log[li].toks {
			toks = append(toks, ix.tokStr[r])
		}
		out[ix.log[li].rid] = toks
	}
	return out
}

// assertSameState fails unless two rid→token-set maps hold the same sets
// (order-insensitive inside a record).
func assertSameState(t *testing.T, label string, got, want map[int32][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d live records, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for rid, ws := range want {
		gs, ok := got[rid]
		if !ok {
			t.Fatalf("%s: rid %d missing", label, rid)
		}
		wset := map[string]bool{}
		for _, s := range ws {
			wset[s] = true
		}
		if len(gs) != len(wset) {
			t.Fatalf("%s: rid %d has %d tokens, want %d (%v vs %v)", label, rid, len(gs), len(wset), gs, ws)
		}
		for _, s := range gs {
			if !wset[s] {
				t.Fatalf("%s: rid %d has unexpected token %q", label, rid, s)
			}
		}
	}
}

// TestWALReplayRoundTrip: durable mutations survive a reopen exactly.
func TestWALReplayRoundTrip(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNever} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			ix, live := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: mode, Interval: time.Hour}})
			for i := 0; i < 12; i++ {
				rid, err := ix.Insert([]string{fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i+1), "shared"})
				if err != nil {
					t.Fatal(err)
				}
				live[rid] = []string{fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i+1), "shared"}
			}
			for _, rid := range []int32{0, 3, 41} {
				if err := ix.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(live, rid)
			}
			// Close flushes even under interval/never sync.
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}
			ld, err := Load(dir, durOpt)
			if err != nil {
				t.Fatal(err)
			}
			assertSameState(t, mode.String(), liveSets(ld), live)
			st := ld.Stats()
			if st.WALReplayed != 15 {
				t.Fatalf("WALReplayed=%d want 15", st.WALReplayed)
			}
			if st.WALTruncatedFrames != 0 {
				t.Fatalf("WALTruncatedFrames=%d want 0", st.WALTruncatedFrames)
			}
			// Probe answers over the recovered state match brute force.
			for rid := range live {
				got, err := ld.ProbeRecord(rid)
				if err != nil {
					t.Fatal(err)
				}
				want := oracleProbe(live, live[rid], durOpt.Fn, durOpt.Theta, rid, true)
				assertMatches(t, fmt.Sprintf("recovered rid %d", rid), got, want)
			}
		})
	}
}

// TestWALTornTailTruncated: a torn final frame is dropped, every earlier
// acknowledged mutation survives, and the file is repaired in place.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ix, live := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}})
	var rids []int32
	for i := 0; i < 8; i++ {
		rid, err := ix.Insert([]string{fmt.Sprintf("torn%d", i), "x"})
		if err != nil {
			t.Fatal(err)
		}
		live[rid] = []string{fmt.Sprintf("torn%d", i), "x"}
		rids = append(rids, rid)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	path := walPath(dir, ix.gen)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 3 bytes.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o600); err != nil {
		t.Fatal(err)
	}
	delete(live, rids[len(rids)-1])

	ld, err := Load(dir, durOpt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "torn tail", liveSets(ld), live)
	st := ld.Stats()
	if st.WALReplayed != 7 || st.WALTruncatedFrames != 1 {
		t.Fatalf("replayed=%d truncated=%d want 7/1", st.WALReplayed, st.WALTruncatedFrames)
	}
	// The truncate repaired the file: a second load sees a clean tail.
	ld2, err := Load(dir, durOpt)
	if err != nil {
		t.Fatal(err)
	}
	if st2 := ld2.Stats(); st2.WALTruncatedFrames != 0 || st2.WALReplayed != 7 {
		t.Fatalf("second load replayed=%d truncated=%d want 7/0", st2.WALReplayed, st2.WALTruncatedFrames)
	}
}

// TestWALMidCorruptionStopsReplay: a bit flip in the middle of the log
// truncates there — the prefix is recovered, the suffix (even if it holds
// decodable frames) is never trusted.
func TestWALMidCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	ix, live := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}})
	headerEnd := int64(0)
	if fi, err := os.Stat(walPath(dir, ix.gen)); err == nil {
		headerEnd = fi.Size()
	}
	var sizes []int64
	var rids []int32
	for i := 0; i < 6; i++ {
		rid, err := ix.Insert([]string{fmt.Sprintf("mid%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		live[rid] = []string{fmt.Sprintf("mid%d", i)}
		fi, err := os.Stat(walPath(dir, ix.gen))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside frame 3 (offsets sizes[2]..sizes[3]).
	path := walPath(dir, ix.gen)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[(sizes[2]+sizes[3])/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids[3:] {
		delete(live, rid)
	}
	_ = headerEnd

	ld, err := Load(dir, durOpt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "mid corruption", liveSets(ld), live)
	if st := ld.Stats(); st.WALReplayed != 3 || st.WALTruncatedFrames != 1 {
		t.Fatalf("replayed=%d truncated=%d want 3/1", st.WALReplayed, st.WALTruncatedFrames)
	}
}

// TestWALForeignHeaderIgnored: a log whose header binds to another
// generation or configuration is ignored wholesale — the snapshot still
// loads, and the rejection is counted.
func TestWALForeignHeaderIgnored(t *testing.T) {
	dir := t.TempDir()
	ix, live := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}})
	if _, err := ix.Insert([]string{"ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the log with one whose header claims another generation.
	path := walPath(dir, ix.gen)
	foreign := walHeader(ix.gen+7, fingerprint(ix.fn, ix.theta, ix.bitmap))
	foreign = append(foreign, encodeInsertFrame(int32(len(live)), []string{"ghost"})...)
	if err := os.WriteFile(path, foreign, 0o600); err != nil {
		t.Fatal(err)
	}
	before := LoadRejects()["index.load.rejects.wal"]
	ld, err := Load(dir, durOpt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "foreign header", liveSets(ld), live)
	if after := LoadRejects()["index.load.rejects.wal"]; after != before+1 {
		t.Fatalf("index.load.rejects.wal %d -> %d, want +1", before, after)
	}
}

// TestWALErrorPoisonsLog: an injected write/sync failure fails the
// mutation loudly with the typed error, leaves the index unchanged, and
// poisons every later mutation until the index is reopened — while reads
// keep working and the durable prefix stays recoverable.
func TestWALErrorPoisonsLog(t *testing.T) {
	for _, failOp := range []string{"write", "sync"} {
		t.Run(failOp, func(t *testing.T) {
			dir := t.TempDir()
			ix, live := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: SyncAlways}})
			rid, err := ix.Insert([]string{"pre-failure"})
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = []string{"pre-failure"}

			boom := errors.New("disk on fire")
			testWALErr = func(op string) error {
				if op == failOp {
					return boom
				}
				return nil
			}
			defer func() { testWALErr = nil }()

			lenBefore := ix.Len()
			_, err = ix.Insert([]string{"lost"})
			var werr *WALError
			if !errors.As(err, &werr) || !errors.Is(err, boom) {
				t.Fatalf("Insert error %v is not a *WALError wrapping the cause", err)
			}
			if ix.Len() != lenBefore {
				t.Fatalf("failed insert changed Len %d -> %d", lenBefore, ix.Len())
			}
			// The log is poisoned: even with the fault healed, mutations
			// keep failing until reopen.
			testWALErr = nil
			if _, err := ix.Insert([]string{"after"}); !errors.As(err, &werr) || !errors.Is(err, errWALBroken) {
				t.Fatalf("post-failure insert error %v does not report the broken log", err)
			}
			if err := ix.Delete(rid); !errors.As(err, &werr) {
				t.Fatalf("post-failure delete error %v is not a *WALError", err)
			}
			// Reads still serve.
			if got := ix.Probe([]string{"pre-failure"}); len(got) != 1 || got[0].RID != rid {
				t.Fatalf("probe during poisoned log: %v", got)
			}
			ix.Close()

			// Recovery yields exactly the acknowledged prefix.
			ld, err := Load(dir, durOpt)
			if err != nil {
				t.Fatal(err)
			}
			assertSameState(t, "post-poison recovery", liveSets(ld), live)
		})
	}
}

// TestWALGroupCommitFlush: under SyncInterval, Maintain flushes pending
// bytes once the window elapses, and the synced-bytes counter advances.
func TestWALGroupCommitFlush(t *testing.T) {
	dir := t.TempDir()
	ix, _ := buildDurable(t, dir, DurableOptions{Sync: SyncPolicy{Mode: SyncInterval, Interval: time.Millisecond}})
	if _, err := ix.Insert([]string{"grouped"}); err != nil {
		t.Fatal(err)
	}
	ix.mu.Lock()
	pending := ix.wal.pending
	ix.mu.Unlock()
	if pending == 0 {
		t.Fatal("append was synced eagerly under interval mode")
	}
	time.Sleep(2 * time.Millisecond)
	if err := ix.Maintain(); err != nil {
		t.Fatal(err)
	}
	ix.mu.Lock()
	pending = ix.wal.pending
	ix.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d bytes still pending after Maintain", pending)
	}
	if st := ix.Stats(); st.WALSyncedBytes == 0 {
		t.Fatal("WALSyncedBytes did not advance")
	}
	ix.Close()
}

// TestPersistValidation: bad policies and double attachment are refused.
func TestPersistValidation(t *testing.T) {
	dir := t.TempDir()
	ix, _ := buildDurable(t, dir, DurableOptions{})
	if err := ix.Persist(dir, DurableOptions{}); err == nil {
		t.Fatal("double Persist accepted")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Persist(dir, DurableOptions{Sync: SyncPolicy{Mode: SyncMode(9)}}); err == nil {
		t.Fatal("bogus sync mode accepted")
	}
	if err := ix.Persist(dir, DurableOptions{AutoCompact: AutoCompactPolicy{LogFraction: -1}}); err == nil {
		t.Fatal("negative auto-compact policy accepted")
	}
	// Save on a durable index is refused; Checkpoint on a plain one too.
	if err := ix.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on non-durable index accepted")
	}
	if err := ix.Persist(dir, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(dir); err == nil {
		t.Fatal("Save on durable index accepted")
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ix.Close()
}
