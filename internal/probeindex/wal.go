// Write-ahead log for probe-index mutations (DESIGN.md §14). The snapshot
// (persist.go) is the durable base; every acknowledged Insert/Delete after
// the snapshot is appended here as one length-prefixed, CRC-framed record,
// so a crash of a long-lived server loses nothing it acknowledged. Records
// are *logical* — token strings and rids, never ranks or slots — so a
// replay is independent of the in-memory layout and stays valid even after
// the live index compacts without managing to write its next snapshot.
//
// File layout (wal.g<gen> next to the snapshot generations):
//
//	magic "FSWAL001"
//	header: uvarint gen · uvarint len(fingerprint) · fingerprint
//	        · crc32c(header)
//	frames: u32le len(payload) · u32le crc32c(payload) · payload
//	payload: op byte (1=insert, 2=delete) · uvarint rid
//	         · insert only: uvarint n · n × (uvarint len · token bytes)
//
// The header binds the log to one snapshot generation and serving
// configuration: wal.g3 can never replay onto snapshot g4, and a log
// written under another θ is ignored wholesale. Replay walks frames until
// the first torn or invalid one and truncates the file there
// (truncate-to-last-valid): the tail of a crashed append is never trusted,
// and recovery yields exactly the durable prefix of acknowledged
// mutations.
package probeindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"fsjoin/internal/spill"
)

// walMagic opens every WAL file; the trailing digits are the format
// version and must change whenever the header or frame layout does.
const walMagic = "FSWAL001"

// walMaxFrame bounds a frame payload; a length prefix beyond it is treated
// as corruption, so fabricated lengths cannot force huge allocations.
const walMaxFrame = 64 << 20

// WAL op codes.
const (
	walOpInsert byte = 1
	walOpDelete byte = 2
)

// crcTable is the Castagnoli table shared by header and frame checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs every append before the mutation is acknowledged:
	// an acknowledged mutation survives power loss. The fsync sits on the
	// mutation path (and, since mutations hold the index write lock, briefly
	// blocks probes).
	SyncAlways SyncMode = iota
	// SyncInterval group-commits: appends are written immediately but
	// fsynced at most once per Interval (opportunistically on the next
	// append, and from Maintain). A crash can lose up to Interval of
	// acknowledged mutations — never reorder or corrupt them.
	SyncInterval
	// SyncNever leaves syncing to the OS (and to Close/compaction, which
	// always sync). Fastest; weakest.
	SyncNever
)

// String implements fmt.Stringer.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// SyncPolicy is a SyncMode plus its interval.
type SyncPolicy struct {
	Mode SyncMode
	// Interval is the maximum age of unsynced appends under SyncInterval;
	// 0 defaults to 100ms. Ignored by the other modes.
	Interval time.Duration
}

func (p SyncPolicy) validate() error {
	switch p.Mode {
	case SyncAlways, SyncInterval, SyncNever:
	default:
		return fmt.Errorf("probeindex: unknown sync mode %d", int(p.Mode))
	}
	if p.Interval < 0 {
		return fmt.Errorf("probeindex: negative sync interval %v", p.Interval)
	}
	return nil
}

func (p SyncPolicy) interval() time.Duration {
	if p.Interval > 0 {
		return p.Interval
	}
	return 100 * time.Millisecond
}

// WALError is the typed failure of a durable mutation: the WAL append or
// fsync failed, so the mutation was NOT applied and NOT acknowledged. The
// log is marked broken — every later mutation fails the same way until the
// index is reopened — because a partially written frame makes the tail
// position untrustworthy.
type WALError struct {
	// Op is the failing operation ("append", "sync", "create", "rotate").
	Op string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *WALError) Error() string {
	return fmt.Sprintf("probeindex: wal %s: %v", e.Op, e.Err)
}

// Unwrap exposes the cause.
func (e *WALError) Unwrap() error { return e.Err }

// errWALBroken poisons a log after its first write failure.
var errWALBroken = errors.New("log broken by an earlier write failure; reopen the index")

// killHook, when non-nil, is invoked at every durability boundary with a
// named kill point; the crash-kill harness sets it to panic mid-protocol
// and then reopens the directory to prove recovery. Test-only: nil in
// production, so the hot path pays one predictable branch.
var killHook func(point string)

func kill(point string) {
	if killHook != nil {
		killHook(point)
	}
}

// testWALErr, when non-nil, injects a failure into WAL file operations
// (op is "write" or "sync"). Test-only.
var testWALErr func(op string) error

// wal is one open, appendable log generation. All methods are called with
// the owning Index's write lock held, so the struct needs no locking of
// its own.
type wal struct {
	f      *os.File
	path   string
	policy SyncPolicy
	broken bool

	pending  int64 // bytes appended since the last successful sync
	acked    int64 // file size covering only acknowledged appends
	lastSync time.Time
}

// walPath names generation gen's log file inside dir.
func walPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("wal.g%08d", gen))
}

// walHeader renders the file header (magic through header CRC).
func walHeader(gen int, fingerprint string) []byte {
	buf := []byte(walMagic)
	var body []byte
	body = binary.AppendUvarint(body, uint64(gen))
	body = binary.AppendUvarint(body, uint64(len(fingerprint)))
	body = append(body, fingerprint...)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))
	return buf
}

// createWAL writes a fresh, empty log for generation gen, syncing the file
// and its directory so the log itself survives a crash that follows.
func createWAL(dir string, gen int, fingerprint string, policy SyncPolicy) (*wal, error) {
	path := walPath(dir, gen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, &WALError{Op: "create", Err: err}
	}
	if _, err := f.Write(walHeader(gen, fingerprint)); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(path)
		return nil, &WALError{Op: "create", Err: err}
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		os.Remove(path)
		return nil, &WALError{Op: "create", Err: err}
	}
	return &wal{f: f, path: path, policy: policy, acked: int64(len(walHeader(gen, fingerprint))), lastSync: time.Now()}, nil
}

// write appends raw bytes, honouring the injected-failure hook.
func (w *wal) write(b []byte) error {
	if testWALErr != nil {
		if err := testWALErr("write"); err != nil {
			return err
		}
	}
	_, err := w.f.Write(b)
	return err
}

// sync flushes the file, honouring the injected-failure hook.
func (w *wal) sync() error {
	if testWALErr != nil {
		if err := testWALErr("sync"); err != nil {
			return err
		}
	}
	return w.f.Sync()
}

// poison marks the log unusable after a failed append or sync and makes a
// best effort to erase the unacknowledged tail: the file is truncated back
// to the last acknowledged frame, so even if the failing write reached the
// platter, recovery cannot surface a mutation whose caller saw an error.
// The broken flag stays set regardless — after an I/O failure the file
// state is unknowable, so no further append is trusted until reopen.
func (w *wal) poison() {
	w.broken = true
	_ = os.Truncate(w.path, w.acked)
}

// append writes one framed record and applies the sync policy. synced
// reports how many buffered bytes an fsync made durable (0 when the policy
// deferred it). On any failure the log is poisoned: the tail may hold a
// torn frame, so no further append can be trusted to land at a valid
// offset — recovery (replay + truncate) is the only way back.
func (w *wal) append(frame []byte) (synced int64, err error) {
	if w.broken {
		return 0, &WALError{Op: "append", Err: errWALBroken}
	}
	kill("wal.append.pre")
	if killHook != nil && len(frame) > 1 {
		// Two writes with a kill point between them, so the harness can die
		// with a genuinely torn frame on disk.
		h := len(frame) / 2
		if err = w.write(frame[:h]); err == nil {
			kill("wal.append.mid")
			err = w.write(frame[h:])
		}
	} else {
		err = w.write(frame)
	}
	if err != nil {
		w.poison()
		return 0, &WALError{Op: "append", Err: err}
	}
	w.pending += int64(len(frame))

	switch w.policy.Mode {
	case SyncAlways:
		if err := w.sync(); err != nil {
			w.poison()
			return 0, &WALError{Op: "sync", Err: err}
		}
	case SyncInterval:
		if time.Since(w.lastSync) < w.policy.interval() {
			w.acked += int64(len(frame))
			return 0, nil
		}
		if err := w.sync(); err != nil {
			w.poison()
			return 0, &WALError{Op: "sync", Err: err}
		}
	case SyncNever:
		w.acked += int64(len(frame))
		return 0, nil
	}
	w.lastSync = time.Now()
	w.acked += int64(len(frame))
	synced, w.pending = w.pending, 0
	return synced, nil
}

// flush syncs any pending appends (interval mode's group commit; also the
// final sync in Close). Returns the bytes made durable.
func (w *wal) flush() (int64, error) {
	if w.broken {
		return 0, &WALError{Op: "sync", Err: errWALBroken}
	}
	if w.pending == 0 {
		return 0, nil
	}
	if err := w.sync(); err != nil {
		w.broken = true
		return 0, &WALError{Op: "sync", Err: err}
	}
	w.lastSync = time.Now()
	synced := w.pending
	w.pending = 0
	return synced, nil
}

// close syncs (best effort when already broken) and closes the file.
func (w *wal) close() error {
	var err error
	if !w.broken {
		_, err = w.flush()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeInsertFrame frames one acknowledged Insert.
func encodeInsertFrame(rid int32, set []string) []byte {
	var p []byte
	p = append(p, walOpInsert)
	p = binary.AppendUvarint(p, uint64(uint32(rid)))
	p = binary.AppendUvarint(p, uint64(len(set)))
	for _, tok := range set {
		p = binary.AppendUvarint(p, uint64(len(tok)))
		p = append(p, tok...)
	}
	return frameBytes(p)
}

// encodeDeleteFrame frames one acknowledged Delete.
func encodeDeleteFrame(rid int32) []byte {
	var p []byte
	p = append(p, walOpDelete)
	p = binary.AppendUvarint(p, uint64(uint32(rid)))
	return frameBytes(p)
}

func frameBytes(payload []byte) []byte {
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// walOp is one decoded frame.
type walOp struct {
	op  byte
	rid int32
	set []string // insert only
}

// decodeFrame parses one payload. Errors mean corruption: the caller
// truncates at this frame.
func decodeFrame(payload []byte) (walOp, error) {
	d := spill.NewDec(payload)
	op := d.Byte()
	rid := int32(uint32(d.Uvarint()))
	var out walOp
	switch op {
	case walOpInsert:
		n := d.Uvarint()
		if d.Err() != nil || n > uint64(len(payload)) {
			return out, errors.New("bad insert token count")
		}
		set := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			set = append(set, d.String())
		}
		if d.Err() != nil || d.Rest() != 0 {
			return out, errors.New("bad insert frame")
		}
		return walOp{op: op, rid: rid, set: set}, nil
	case walOpDelete:
		if d.Err() != nil || d.Rest() != 0 {
			return out, errors.New("bad delete frame")
		}
		return walOp{op: op, rid: rid}, nil
	default:
		return out, fmt.Errorf("unknown op %d", op)
	}
}

// walReplayResult summarises one replay.
type walReplayResult struct {
	// replayed counts frames applied.
	replayed int64
	// truncated counts invalid tails dropped (0 or 1 per file; the torn
	// tail is one undecodable region, not a countable number of frames).
	truncated int64
	// validSize is the offset of the last valid byte; the file is
	// truncated to it when it is shorter than the file.
	validSize int64
}

// errWALHeader reports a log whose header does not match the snapshot it
// sits next to (wrong magic, generation, or fingerprint): the whole file
// is ignored — it belongs to another index state and replaying any of it
// would mix generations.
var errWALHeader = errors.New("wal header mismatch")

// replayWAL reads path and applies every valid frame in order through
// apply. The first torn or invalid frame ends the replay and the file is
// truncated to the end of the last valid one, so a later append continues
// from a trustworthy tail. An apply error is corruption too (a logical op
// that cannot apply was never acknowledged in this history): same
// truncation. Missing file: zero ops, no error.
func replayWAL(path string, gen int, fingerprint string, apply func(walOp) error) (walReplayResult, error) {
	var res walReplayResult
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return res, nil
	}
	if err != nil {
		return res, &WALError{Op: "read", Err: err}
	}

	// Header: magic, gen, fingerprint, CRC.
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != walMagic {
		return res, errWALHeader
	}
	body := raw[len(walMagic):]
	d := spill.NewDec(body)
	hgen := d.Uvarint()
	fpLen := d.Uvarint()
	if d.Err() != nil || fpLen > uint64(d.Rest()) {
		return res, errWALHeader
	}
	headerLen := len(body) - d.Rest() + int(fpLen)
	if headerLen+4 > len(body) {
		return res, errWALHeader
	}
	fp := string(body[len(body)-d.Rest() : headerLen])
	gotCRC := binary.LittleEndian.Uint32(body[headerLen : headerLen+4])
	if crc32.Checksum(body[:headerLen], crcTable) != gotCRC {
		return res, errWALHeader
	}
	if hgen != uint64(gen) || fp != fingerprint {
		return res, errWALHeader
	}
	off := len(walMagic) + headerLen + 4
	res.validSize = int64(off)

	// Frames: stop at the first torn or invalid one.
	for off < len(raw) {
		if off+8 > len(raw) {
			break // torn length/CRC prefix
		}
		plen := binary.LittleEndian.Uint32(raw[off : off+4])
		pcrc := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if plen == 0 || plen > walMaxFrame || off+8+int(plen) > len(raw) {
			break // impossible or torn payload
		}
		payload := raw[off+8 : off+8+int(plen)]
		if crc32.Checksum(payload, crcTable) != pcrc {
			break // bit rot or torn write inside the payload
		}
		op, err := decodeFrame(payload)
		if err != nil {
			break
		}
		if err := apply(op); err != nil {
			break // logically impossible op: not part of this history
		}
		off += 8 + int(plen)
		res.replayed++
		res.validSize = int64(off)
	}
	if int64(len(raw)) > res.validSize {
		res.truncated = 1
		// Best effort: a read-only reopen still recovered the valid prefix
		// even when the truncate itself cannot be persisted.
		_ = os.Truncate(path, res.validSize)
	}
	return res, nil
}

// syncDir fsyncs a directory so a freshly created or renamed entry
// survives a crash. Filesystems that refuse to sync directories are
// tolerated (their rename durability is their own contract).
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, os.ErrInvalid) || errors.Is(err, os.ErrPermission)) {
		return nil
	}
	return err
}
