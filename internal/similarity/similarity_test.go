package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var allFuncs = []Func{Jaccard, Dice, Cosine}

func TestSimKnownValues(t *testing.T) {
	cases := []struct {
		fn        Func
		c, ls, lt int
		want      float64
	}{
		{Jaccard, 3, 4, 5, 3.0 / 6.0},
		{Jaccard, 4, 4, 4, 1.0},
		{Jaccard, 0, 4, 4, 0.0},
		{Dice, 3, 4, 5, 6.0 / 9.0},
		{Dice, 4, 4, 4, 1.0},
		{Cosine, 2, 4, 4, 0.5},
		{Cosine, 4, 4, 4, 1.0},
	}
	for _, c := range cases {
		if got := c.fn.Sim(c.c, c.ls, c.lt); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Sim(%d,%d,%d) = %v, want %v", c.fn, c.c, c.ls, c.lt, got, c.want)
		}
	}
	if Jaccard.Sim(0, 0, 5) != 0 {
		t.Error("empty set similarity must be 0")
	}
}

func TestAtLeastBoundaryExact(t *testing.T) {
	// 3/6 = 0.5 exactly: must count as ≥ 0.5 despite float noise.
	if !Jaccard.AtLeast(3, 4, 5, 0.5) {
		t.Error("exact boundary rejected")
	}
	if Jaccard.AtLeast(2, 4, 5, 0.5) {
		t.Error("2/7 accepted at 0.5")
	}
}

// TestMinOverlapTight verifies MinOverlap is the tight bound: c =
// MinOverlap satisfies the threshold and c−1 does not, whenever such c is
// feasible.
func TestMinOverlapTight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		fn := allFuncs[rng.Intn(len(allFuncs))]
		ls := rng.Intn(50) + 1
		lt := rng.Intn(50) + 1
		theta := float64(rng.Intn(9)+1) / 10
		h := fn.MinOverlap(theta, ls, lt)
		min := ls
		if lt < min {
			min = lt
		}
		if h <= min && h > 0 {
			if !fn.AtLeast(h, ls, lt, theta) {
				t.Fatalf("%v: c=MinOverlap=%d rejected (ls=%d lt=%d θ=%v)", fn, h, ls, lt, theta)
			}
			if fn.AtLeast(h-1, ls, lt, theta) {
				t.Fatalf("%v: c=MinOverlap−1=%d accepted (ls=%d lt=%d θ=%v)", fn, h-1, ls, lt, theta)
			}
		}
	}
}

// TestLengthBoundsSound verifies no partner outside [MinLen, MaxLen] can
// reach the threshold, and the extreme inside lengths can (with c = full
// overlap of the shorter set).
func TestLengthBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		fn := allFuncs[rng.Intn(len(allFuncs))]
		l := rng.Intn(60) + 1
		theta := float64(rng.Intn(9)+1) / 10
		lo, hi := fn.MinLen(theta, l), fn.MaxLen(theta, l)
		if lo < 1 {
			t.Fatalf("MinLen < 1")
		}
		// Below the bound: even a full-containment partner fails.
		if lo > 1 {
			bad := lo - 1
			c := bad
			if l < c {
				c = l
			}
			if fn.AtLeast(c, l, bad, theta) {
				t.Fatalf("%v: partner %d below MinLen(%v,%d)=%d reaches θ", fn, bad, theta, l, lo)
			}
		}
		// Above the bound: fails even with c = l.
		if fn.AtLeast(l, l, hi+1, theta) {
			t.Fatalf("%v: partner %d above MaxLen(%v,%d)=%d reaches θ", fn, hi+1, theta, l, hi)
		}
		// At the bounds: best case reaches θ.
		cLo := lo
		if l < cLo {
			cLo = l
		}
		if !fn.AtLeast(cLo, l, lo, theta) {
			t.Fatalf("%v: best case at MinLen fails (l=%d θ=%v lo=%d)", fn, l, theta, lo)
		}
	}
}

// TestMinOverlapAnyPartnerIsMinimum checks the any-partner bound really is
// the minimum of MinOverlapReal over admissible partner lengths.
func TestMinOverlapAnyPartnerIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		fn := allFuncs[rng.Intn(len(allFuncs))]
		l := rng.Intn(60) + 1
		theta := float64(rng.Intn(9)+1) / 10
		bound := fn.MinOverlapAnyPartner(theta, l)
		for lt := fn.MinLen(theta, l); lt <= fn.MaxLen(theta, l) && lt < l+80; lt++ {
			if v := fn.MinOverlapReal(theta, l, lt); v < bound-1e-9 {
				t.Fatalf("%v: partner %d has overlap bound %v < any-partner %v (l=%d θ=%v)",
					fn, lt, v, bound, l, theta)
			}
		}
	}
}

// TestProbePrefixComplete is the prefix-filter theorem end-to-end: any two
// sets meeting the threshold share a token within both probe prefixes.
func TestProbePrefixComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4000; trial++ {
		theta := float64(rng.Intn(5)+5) / 10 // 0.5..0.9
		// Build a similar pair: shared core plus noise.
		core := rng.Intn(20) + 5
		a := seq(0, core+rng.Intn(3))
		b := seq(0, core)
		b = append(b, seq(1000, rng.Intn(3))...)
		c := intersectCount(a, b)
		if !Jaccard.AtLeast(c, len(a), len(b), theta) {
			continue
		}
		pa := Jaccard.ProbePrefixLen(theta, len(a))
		pb := Jaccard.ProbePrefixLen(theta, len(b))
		if intersectCount(a[:pa], b[:pb]) == 0 {
			t.Fatalf("similar pair shares no probe-prefix token (θ=%v |a|=%d |b|=%d c=%d pa=%d pb=%d)",
				theta, len(a), len(b), c, pa, pb)
		}
	}
}

func TestIndexPrefixShorterThanProbe(t *testing.T) {
	for _, theta := range []float64{0.5, 0.7, 0.9} {
		for l := 1; l <= 100; l++ {
			ip := Jaccard.IndexPrefixLen(theta, l)
			pp := Jaccard.ProbePrefixLen(theta, l)
			if ip > pp {
				t.Fatalf("index prefix %d > probe prefix %d (l=%d θ=%v)", ip, pp, l, theta)
			}
			if ip < 1 || pp > l {
				t.Fatalf("prefix out of range (l=%d θ=%v)", l, theta)
			}
		}
	}
}

func TestFuncString(t *testing.T) {
	if Jaccard.String() != "jaccard" || Dice.String() != "dice" || Cosine.String() != "cosine" {
		t.Fatal("String() names wrong")
	}
	if Func(42).String() == "" {
		t.Fatal("unknown Func must still render")
	}
}

// TestSimMonotoneInC: similarity increases with the intersection size.
func TestSimMonotoneInC(t *testing.T) {
	f := func(ls, lt uint8) bool {
		l1, l2 := int(ls%40)+2, int(lt%40)+2
		for _, fn := range allFuncs {
			prev := -1.0
			max := l1
			if l2 < max {
				max = l2
			}
			for c := 0; c <= max; c++ {
				s := fn.Sim(c, l1, l2)
				if s < prev {
					return false
				}
				prev = s
			}
			if prev > 1.0+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func seq(start, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(start + i)
	}
	return out
}

func intersectCount(a, b []uint32) int {
	set := make(map[uint32]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}
