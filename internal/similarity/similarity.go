// Package similarity centralises the set-similarity algebra used by every
// join implementation in this repository: the Jaccard, Dice and Cosine
// functions, their threshold-equivalent overlap bounds, the length-filter
// bounds, and prefix-length computations.
//
// Every algorithm (FS-Join, the three baselines, and the brute-force oracle)
// decides "is this pair a result?" through exactly one function — AtLeast —
// so floating-point tie handling is identical across implementations.
package similarity

import (
	"fmt"
	"math"
)

// eps absorbs floating-point noise in threshold comparisons: a pair counts
// as similar when sim ≥ θ − eps. All implementations share this definition
// through AtLeast.
const eps = 1e-9

// Func identifies a set-similarity function.
type Func int

// The supported similarity functions. The paper's experiments use Jaccard;
// its verification phase also supports Dice and Cosine (Section V-B).
const (
	Jaccard Func = iota
	Dice
	Cosine
)

// String implements fmt.Stringer.
func (f Func) String() string {
	switch f {
	case Jaccard:
		return "jaccard"
	case Dice:
		return "dice"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// Sim returns the similarity of two sets given their intersection size c and
// lengths ls, lt. Empty inputs yield 0.
func (f Func) Sim(c, ls, lt int) float64 {
	if ls == 0 || lt == 0 {
		return 0
	}
	switch f {
	case Jaccard:
		return float64(c) / float64(ls+lt-c)
	case Dice:
		return 2 * float64(c) / float64(ls+lt)
	case Cosine:
		return float64(c) / math.Sqrt(float64(ls)*float64(lt))
	default:
		panic("similarity: unknown function")
	}
}

// AtLeast reports whether sets with intersection c and lengths ls, lt meet
// threshold theta. This is the paper's Section V-B verification: the exact
// score is derived from the aggregated common-token count alone, never from
// the original strings.
func (f Func) AtLeast(c, ls, lt int, theta float64) bool {
	return f.Sim(c, ls, lt) >= theta-eps
}

// MinOverlapReal returns the real-valued lower bound on |s∩t| implied by
// sim(s,t) ≥ θ: the paper's θ/(1+θ)·(|s|+|t|) for Jaccard, and the
// analogous bounds for Dice and Cosine. Filters compare against this value
// directly; verification uses MinOverlap (its integer ceiling).
func (f Func) MinOverlapReal(theta float64, ls, lt int) float64 {
	switch f {
	case Jaccard:
		return theta / (1 + theta) * float64(ls+lt)
	case Dice:
		return theta / 2 * float64(ls+lt)
	case Cosine:
		return theta * math.Sqrt(float64(ls)*float64(lt))
	default:
		panic("similarity: unknown function")
	}
}

// MinOverlap returns the smallest integer intersection size that can satisfy
// the threshold for lengths ls, lt.
func (f Func) MinOverlap(theta float64, ls, lt int) int {
	h := int(math.Ceil(f.MinOverlapReal(theta, ls, lt) - eps))
	if h < 0 {
		return 0
	}
	return h
}

// MinLen returns the smallest partner length a record of length l can form a
// result with (Lemma 1's length filter; |t| ≥ θ|s| for Jaccard).
func (f Func) MinLen(theta float64, l int) int {
	var lo float64
	switch f {
	case Jaccard:
		lo = theta * float64(l)
	case Dice:
		// 2c/(ls+lt) ≥ θ with c ≤ lt gives lt ≥ θ·ls/(2−θ).
		lo = theta * float64(l) / (2 - theta)
	case Cosine:
		// c/√(ls·lt) ≥ θ with c ≤ lt gives lt ≥ θ²·ls.
		lo = theta * theta * float64(l)
	default:
		panic("similarity: unknown function")
	}
	m := int(math.Ceil(lo - eps))
	if m < 1 {
		return 1
	}
	return m
}

// MaxLen returns the largest partner length a record of length l can form a
// result with (|t| ≤ |s|/θ for Jaccard).
func (f Func) MaxLen(theta float64, l int) int {
	if theta <= 0 {
		return math.MaxInt32
	}
	var hi float64
	switch f {
	case Jaccard:
		hi = float64(l) / theta
	case Dice:
		hi = (2 - theta) * float64(l) / theta
	case Cosine:
		hi = float64(l) / (theta * theta)
	default:
		panic("similarity: unknown function")
	}
	return int(math.Floor(hi + eps))
}

// MinOverlapAnyPartner returns the smallest possible required overlap over
// all partner lengths admitted by the length filter — i.e. the value of
// MinOverlapReal at lt = MinLen. For Jaccard this equals θ·|s|, the bound
// used to derive lossless segment prefixes (DESIGN.md §3). MinOverlapReal is
// increasing in lt for all three functions, so the minimum is at MinLen.
func (f Func) MinOverlapAnyPartner(theta float64, ls int) float64 {
	return f.MinOverlapReal(theta, ls, f.MinLen(theta, ls))
}

// ProbePrefixLen returns the probing prefix length |s| − ⌈θ·|s|⌉ + 1 (for
// Jaccard): any partner within the length bounds that reaches the threshold
// shares a token inside this prefix. Used by RIDPairsPPJoin signatures.
func (f Func) ProbePrefixLen(theta float64, l int) int {
	if l == 0 {
		return 0
	}
	p := l - int(math.Ceil(f.MinOverlapAnyPartner(theta, l)-eps)) + 1
	if p < 1 {
		p = 1
	}
	if p > l {
		p = l
	}
	return p
}

// IndexPrefixLen returns the shorter indexing prefix usable for self-joins:
// |s| − ⌈2θ/(1+θ)·|s|⌉ + 1 for Jaccard (overlap bound at lt = ls). PPJoin
// indexes this prefix and probes with ProbePrefixLen.
func (f Func) IndexPrefixLen(theta float64, l int) int {
	if l == 0 {
		return 0
	}
	p := l - f.MinOverlap(theta, l, l) + 1
	if p < 1 {
		p = 1
	}
	if p > l {
		p = l
	}
	return p
}
