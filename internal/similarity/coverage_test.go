package similarity

import "testing"

func TestMaxLenDegenerateTheta(t *testing.T) {
	if Jaccard.MaxLen(0, 10) < 1<<30 {
		t.Fatal("theta 0 must impose no upper bound")
	}
}

func TestPrefixLenZeroLength(t *testing.T) {
	if Jaccard.ProbePrefixLen(0.8, 0) != 0 || Jaccard.IndexPrefixLen(0.8, 0) != 0 {
		t.Fatal("empty record must have empty prefixes")
	}
}

func TestUnknownFuncPanics(t *testing.T) {
	cases := []func(){
		func() { Func(42).Sim(1, 2, 2) },
		func() { Func(42).MinOverlapReal(0.5, 2, 2) },
		func() { Func(42).MinLen(0.5, 2) },
		func() { Func(42).MaxLen(0.5, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: unknown Func did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDiceCosineLengthBoundsKnownValues(t *testing.T) {
	// Dice: lt ≥ θ·ls/(2−θ); θ=1 → lt ≥ ls.
	if got := Dice.MinLen(1.0, 10); got != 10 {
		t.Fatalf("Dice.MinLen(1,10) = %d", got)
	}
	// Cosine: lt ≥ θ²·ls; θ=0.5 → lt ≥ 2.5 → 3.
	if got := Cosine.MinLen(0.5, 10); got != 3 {
		t.Fatalf("Cosine.MinLen(0.5,10) = %d", got)
	}
	// Cosine MaxLen: ls/θ²; θ=0.5 → 40.
	if got := Cosine.MaxLen(0.5, 10); got != 40 {
		t.Fatalf("Cosine.MaxLen(0.5,10) = %d", got)
	}
	// Dice MaxLen: (2−θ)ls/θ; θ=1 → 10.
	if got := Dice.MaxLen(1.0, 10); got != 10 {
		t.Fatalf("Dice.MaxLen(1,10) = %d", got)
	}
}

func TestMinOverlapFloor(t *testing.T) {
	if Jaccard.MinOverlap(0.0001, 1, 1) < 0 {
		t.Fatal("negative overlap bound")
	}
}
