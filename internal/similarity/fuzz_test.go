package similarity

import (
	"math"
	"testing"
)

// FuzzThresholdAlgebra stresses the similarity algebra every join builds
// on. Raw fuzz inputs are clamped into the valid domain (0 ≤ c ≤
// min(ls,lt), θ ∈ (0,1]); the invariants then must hold exactly:
//
//   - Sim stays within [0, 1] (up to float noise) and is symmetric in the
//     two lengths;
//   - self-similarity is exactly 1;
//   - AtLeast agrees with Sim vs θ−eps;
//   - MinOverlap is achievable (a full-overlap pair of admissible lengths
//     passes) and necessary (one token fewer fails);
//   - the length-filter window [MinLen, MaxLen] contains l itself, and a
//     partner at either end can still reach θ with full overlap;
//   - prefix lengths lie in [1, l] with IndexPrefixLen ≤ ProbePrefixLen.
func FuzzThresholdAlgebra(f *testing.F) {
	f.Add(uint8(0), 3, 10, 20, 0.8)
	f.Add(uint8(1), 0, 1, 1, 0.5)
	f.Add(uint8(2), 100, 100, 100, 1.0)
	f.Add(uint8(0), 7, 9, 8, 0.731)
	f.Add(uint8(1), 0, 0, 5, 0.1)
	f.Fuzz(func(t *testing.T, fsel uint8, c, ls, lt int, theta float64) {
		fn := Func(int(fsel) % 3)
		// Clamp into the valid domain instead of discarding, so every fuzz
		// input exercises the algebra.
		if ls < 0 {
			ls = -ls
		}
		if lt < 0 {
			lt = -lt
		}
		ls %= 1 << 20
		lt %= 1 << 20
		if c < 0 {
			c = -c
		}
		if m := min(ls, lt); c > m {
			c = m
		}
		if math.IsNaN(theta) || theta <= 0 || theta > 1 {
			theta = 0.5
		}

		sim := fn.Sim(c, ls, lt)
		if sim < 0 || sim > 1+1e-9 || math.IsNaN(sim) {
			t.Fatalf("%v.Sim(%d,%d,%d) = %v outside [0,1]", fn, c, ls, lt, sim)
		}
		if got := fn.Sim(c, lt, ls); got != sim {
			t.Fatalf("%v.Sim not symmetric: (%d,%d,%d)=%v vs swapped %v", fn, c, ls, lt, sim, got)
		}
		if ls > 0 && fn.Sim(ls, ls, ls) != 1 {
			t.Fatalf("%v self-similarity = %v, want 1", fn, fn.Sim(ls, ls, ls))
		}
		if got, want := fn.AtLeast(c, ls, lt, theta), sim >= theta-1e-9; got != want {
			t.Fatalf("%v.AtLeast(%d,%d,%d,%v) = %v disagrees with Sim %v", fn, c, ls, lt, theta, got, sim)
		}

		if ls == 0 {
			return
		}
		// MinOverlap is tight: at the admissible partner lengths, meeting it
		// suffices and missing it by one fails.
		minL, maxL := fn.MinLen(theta, ls), fn.MaxLen(theta, ls)
		if minL < 1 || minL > ls || maxL < ls {
			t.Fatalf("%v length window [%d,%d] excludes l=%d (θ=%v)", fn, minL, maxL, ls, theta)
		}
		for _, partner := range []int{minL, ls, maxL} {
			if partner > 1<<21 {
				continue // Cosine/Dice windows can explode at tiny θ; overlap math overflows nothing, just skip huge partners
			}
			o := fn.MinOverlap(theta, ls, partner)
			if o > min(ls, partner) {
				t.Fatalf("%v.MinOverlap(θ=%v,%d,%d) = %d exceeds min length", fn, theta, ls, partner, o)
			}
			if !fn.AtLeast(o, ls, partner, theta) {
				t.Fatalf("%v: overlap %d at lengths (%d,%d) misses θ=%v", fn, o, ls, partner, theta)
			}
			if o > 0 && fn.AtLeast(o-1, ls, partner, theta) && fn.MinOverlap(theta, ls, partner) != o {
				t.Fatalf("%v.MinOverlap not minimal at (%d,%d)", fn, ls, partner)
			}
		}

		pp, ip := fn.ProbePrefixLen(theta, ls), fn.IndexPrefixLen(theta, ls)
		if pp < 1 || pp > ls || ip < 1 || ip > ls {
			t.Fatalf("%v prefix lengths probe=%d index=%d outside [1,%d]", fn, pp, ip, ls)
		}
		if ip > pp {
			t.Fatalf("%v index prefix %d longer than probe prefix %d (l=%d θ=%v)", fn, ip, pp, ls, theta)
		}
	})
}
