// Package checkpoint persists completed pipeline stages so a crashed or
// killed join can restart without redoing upstream work — the durability
// Hadoop got for free from inter-job HDFS output and this in-process
// engine has to build itself (DESIGN.md §9).
//
// A checkpoint file holds one stage's complete result: its output KVs in
// the spill run codec (so replayed values decode to the same concrete
// types the shuffle restores), the job's counters, and its metrics. Files
// are written to a temp name and atomically renamed into place, carry a
// SHA-256 trailer over every preceding byte, and are keyed by a stage
// fingerprint covering the pipeline identity, caller configuration and
// the stage's full input content. A loader that finds a bad checksum, an
// undecodable body or a fingerprint mismatch discards the file and
// reports a miss — stale or corrupt state triggers recompute, never a
// wrong resume.
package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fsjoin/internal/spill"
)

// magic opens every checkpoint file; the trailing digit is the format
// version and must change whenever the manifest or record framing does.
const magic = "FSCKPT01"

// tmpPrefix names in-flight checkpoint writes. Open sweeps leftovers from
// crashed writers, so an aborted save never leaks files into the
// directory (the same leak-checked discipline the spill path follows).
const tmpPrefix = ".tmp-ckpt-"

// checksumLen is the length of the SHA-256 trailer.
const checksumLen = sha256.Size

// ErrUnencodable marks a snapshot whose values have no spill codec. The
// pipeline treats it as "this stage cannot be checkpointed" and keeps
// running — mirroring the spill buffer, which pins unencodable values in
// memory instead of failing the job.
var ErrUnencodable = errors.New("checkpoint: value has no spill codec")

// saveKillHook, when non-nil, fires at the named durability boundaries of
// Save ("save.start" after the temp file exists, "save.synced" after the
// fsync but before the rename, "save.renamed" after the rename). The
// crash-kill harness uses it to die mid-protocol and prove that recovery
// never observes a partial snapshot. Nil in production.
var saveKillHook func(point string)

// SetKillHook installs (or, with nil, removes) the save-boundary kill
// hook. Test-only; not safe to flip while saves are in flight.
func SetKillHook(fn func(point string)) { saveKillHook = fn }

func killPoint(p string) {
	if saveKillHook != nil {
		saveKillHook(p)
	}
}

// Record is one persisted output pair.
type Record struct {
	Key   string
	Value any
}

// Manifest describes one checkpointed stage. It is embedded in the file
// as JSON between the magic and the record frames.
type Manifest struct {
	// Format is the writer's format version (currently 1).
	Format int `json:"format"`
	// Pipeline and Stage locate the stage within its pipeline.
	Pipeline string `json:"pipeline"`
	Stage    int    `json:"stage"`
	// Job is the stage's job name.
	Job string `json:"job"`
	// Fingerprint is the hex stage fingerprint the loader must match.
	Fingerprint string `json:"fingerprint"`
	// Records is the number of record frames that follow the manifest.
	Records int64 `json:"records"`
	// Counters is the stage's full counter snapshot.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Metrics is the stage's metrics, marshalled by the engine (the
	// checkpoint layer treats it as opaque JSON so it does not import the
	// engine).
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// Snapshot is one loaded checkpoint.
type Snapshot struct {
	Manifest Manifest
	Records  []Record
}

// LoadStatus classifies a Load outcome.
type LoadStatus int

// Load outcomes. Stale and Corrupt both remove the offending file and
// lead the caller to recompute; they are distinguished so callers can
// count corruption separately from ordinary configuration drift.
const (
	// Hit: a valid checkpoint with the wanted fingerprint was replayed.
	Hit LoadStatus = iota
	// Miss: no checkpoint exists for the stage.
	Miss
	// Stale: a valid checkpoint exists but its fingerprint differs (the
	// configuration or input changed); it was discarded.
	Stale
	// Corrupt: the file failed its checksum or could not be decoded; it
	// was discarded.
	Corrupt
)

// String implements fmt.Stringer.
func (s LoadStatus) String() string {
	switch s {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Stale:
		return "stale"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("LoadStatus(%d)", int(s))
	}
}

// Store is one checkpoint directory.
type Store struct {
	dir string
}

// Open creates the directory if needed and sweeps temp files left by
// writers that died mid-save, so a crashed run's partial checkpoint can
// never be confused with a durable one.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{dir: dir}, nil
}

// SweepTemps removes in-flight temp files under dir and every directory
// below it, leaving durable checkpoints in place. The serving layer calls
// it on shutdown: jobs cancelled mid-save (deadline, drain) may have died
// between CreateTemp and the atomic rename, and their partials must not
// outlive the server. A missing dir is not an error.
func SweepTemps(dir string) error {
	if dir == "" {
		return nil
	}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			os.Remove(path)
		}
		return nil
	})
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Clear removes every completed checkpoint file in the store, leaving
// unrelated files alone. Used by callers that want fresh-run semantics in
// a reused directory.
func (s *Store) Clear() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	return nil
}

// fileName derives the stage's checkpoint path. Job names pass through a
// conservative character filter so they are always valid path components.
func (s *Store) fileName(stage int, job string) string {
	clean := make([]byte, 0, len(job))
	for i := 0; i < len(job); i++ {
		c := job[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return filepath.Join(s.dir, fmt.Sprintf("stage-%03d-%s.ckpt", stage, clean))
}

// Save atomically persists one stage: the file is streamed to a temp name
// (hashed as it is written), fsynced, then renamed into place, so readers
// only ever observe complete checkpoints. A value without a spill codec
// aborts the write, removes the temp file and returns ErrUnencodable.
func (s *Store) Save(m Manifest, recs []Record) (err error) {
	m.Format = 1
	m.Records = int64(len(recs))
	manifest, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	killPoint("save.start")
	h := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(f, h), 64<<10)
	var scratch []byte
	write := func(b []byte) {
		if err == nil {
			_, err = bw.Write(b)
		}
	}
	write([]byte(magic))
	scratch = binary.AppendUvarint(scratch[:0], uint64(len(manifest)))
	write(scratch)
	write(manifest)
	for _, r := range recs {
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(r.Key)))
		scratch = append(scratch, r.Key...)
		var val []byte
		if val, err = spill.AppendEncoded(nil, r.Value); err != nil {
			err = fmt.Errorf("%w: %v", ErrUnencodable, err)
			return err
		}
		scratch = binary.AppendUvarint(scratch, uint64(len(val)))
		scratch = append(scratch, val...)
		write(scratch)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		_, err = f.Write(h.Sum(nil))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	killPoint("save.synced")
	if err = os.Rename(tmp, s.fileName(m.Stage, m.Job)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	killPoint("save.renamed")
	return nil
}

// Load replays the stage's checkpoint if a valid one with the wanted
// fingerprint exists. The checksum is verified over the whole file before
// a single byte is parsed, so corrupt content is never interpreted; any
// Stale or Corrupt file is removed so it cannot shadow a future save.
func (s *Store) Load(stage int, job, fingerprint string) (*Snapshot, LoadStatus) {
	name := s.fileName(stage, job)
	raw, err := os.ReadFile(name)
	if errors.Is(err, os.ErrNotExist) {
		return nil, Miss
	}
	if err != nil {
		os.Remove(name)
		return nil, Corrupt
	}
	snap, err := decode(raw)
	if err != nil {
		os.Remove(name)
		return nil, Corrupt
	}
	if snap.Manifest.Fingerprint != fingerprint ||
		snap.Manifest.Stage != stage || snap.Manifest.Job != job {
		os.Remove(name)
		return nil, Stale
	}
	return snap, Hit
}

// decode parses and fully validates one checkpoint file image.
func decode(raw []byte) (*Snapshot, error) {
	if len(raw) < len(magic)+checksumLen {
		return nil, errors.New("checkpoint: short file")
	}
	body, sum := raw[:len(raw)-checksumLen], raw[len(raw)-checksumLen:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, errors.New("checkpoint: checksum mismatch")
	}
	if string(body[:len(magic)]) != magic {
		return nil, errors.New("checkpoint: bad magic")
	}
	d := spill.NewDec(body[len(magic):])
	manifest := d.String()
	if d.Err() != nil {
		return nil, fmt.Errorf("checkpoint: %w", d.Err())
	}
	snap := &Snapshot{}
	dec := json.NewDecoder(strings.NewReader(manifest))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap.Manifest); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if snap.Manifest.Format != 1 {
		return nil, fmt.Errorf("checkpoint: unsupported format %d", snap.Manifest.Format)
	}
	n := snap.Manifest.Records
	if n < 0 {
		return nil, errors.New("checkpoint: negative record count")
	}
	snap.Records = make([]Record, 0, minI64(n, 1<<16))
	for i := int64(0); i < n; i++ {
		key := d.String()
		val := d.String()
		if d.Err() != nil {
			return nil, fmt.Errorf("checkpoint: record %d: %w", i, d.Err())
		}
		v, err := spill.DecodeEncoded([]byte(val))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: record %d: %w", i, err)
		}
		snap.Records = append(snap.Records, Record{Key: key, Value: v})
	}
	if d.Rest() != 0 {
		return nil, errors.New("checkpoint: trailing bytes after records")
	}
	return snap, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
