package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testSnapshot is a representative stage result: builtin-codec values of
// several types, counters and opaque metrics.
func testSnapshot() (Manifest, []Record) {
	m := Manifest{
		Pipeline:    "test-pipe",
		Stage:       2,
		Job:         "verify",
		Fingerprint: "abc123",
		Counters:    map[string]int64{"pairs": 7, "spill.runs": 0},
		Metrics:     json.RawMessage(`{"Job":"verify","OutputRecords":3}`),
	}
	recs := []Record{
		{Key: "\x00\x00\x00\x01", Value: int(42)},
		{Key: "k2", Value: "hello"},
		{Key: "k3", Value: []uint32{1, 2, 3}},
		{Key: "", Value: nil},
	}
	return m, recs
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	m, recs := testSnapshot()
	if err := s.Save(m, recs); err != nil {
		t.Fatal(err)
	}
	snap, status := s.Load(2, "verify", "abc123")
	if status != Hit {
		t.Fatalf("Load status = %v, want hit", status)
	}
	if !reflect.DeepEqual(snap.Records, recs) {
		t.Errorf("records = %#v, want %#v", snap.Records, recs)
	}
	if !reflect.DeepEqual(snap.Manifest.Counters, m.Counters) {
		t.Errorf("counters = %v, want %v", snap.Manifest.Counters, m.Counters)
	}
	if string(snap.Manifest.Metrics) != string(m.Metrics) {
		t.Errorf("metrics = %s, want %s", snap.Manifest.Metrics, m.Metrics)
	}
	if snap.Manifest.Records != int64(len(recs)) {
		t.Errorf("manifest.Records = %d, want %d", snap.Manifest.Records, len(recs))
	}
}

func TestLoadMiss(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if snap, status := s.Load(0, "nothing", "fp"); status != Miss || snap != nil {
		t.Fatalf("Load = (%v, %v), want (nil, miss)", snap, status)
	}
}

func TestStaleFingerprintDiscarded(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	m, recs := testSnapshot()
	if err := s.Save(m, recs); err != nil {
		t.Fatal(err)
	}
	if _, status := s.Load(2, "verify", "different-fp"); status != Stale {
		t.Fatalf("Load with wrong fingerprint = %v, want stale", status)
	}
	// The stale file must be gone so it cannot shadow a future save.
	if _, status := s.Load(2, "verify", "abc123"); status != Miss {
		t.Fatalf("Load after stale discard = %v, want miss", status)
	}
}

// TestCorruptionDetected flips every byte position in a valid checkpoint
// file (in larger strides for speed) and asserts Load never yields a hit
// with altered content.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	m, recs := testSnapshot()
	if err := s.Save(m, recs); err != nil {
		t.Fatal(err)
	}
	name := s.fileName(2, "verify")
	orig, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(orig); pos += 7 {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0x5a
		if err := os.WriteFile(name, mut, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, status := s.Load(2, "verify", "abc123"); status != Corrupt {
			t.Fatalf("byte %d flipped: Load = %v, want corrupt", pos, status)
		}
		if _, err := os.Stat(name); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("byte %d flipped: corrupt file not removed", pos)
		}
	}
	// Truncations likewise.
	for _, n := range []int{0, 1, len(magic), len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(name, orig[:n], 0o600); err != nil {
			t.Fatal(err)
		}
		if _, status := s.Load(2, "verify", "abc123"); status != Corrupt {
			t.Fatalf("truncated to %d bytes: Load = %v, want corrupt", n, status)
		}
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"12345")
	if err := os.WriteFile(tmp, []byte("partial write from a crashed save"), 0o600); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir)
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Open did not sweep the leftover temp file")
	}
}

func TestClear(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	m, recs := testSnapshot()
	if err := s.Save(m, recs); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "README")
	if err := os.WriteFile(other, []byte("not a checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, status := s.Load(2, "verify", "abc123"); status != Miss {
		t.Fatal("checkpoint survived Clear")
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatal("Clear removed an unrelated file")
	}
}

func TestSaveUnencodableValue(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	m, _ := testSnapshot()
	type opaque struct{ ch chan int }
	err := s.Save(m, []Record{{Key: "k", Value: opaque{}}})
	if !errors.Is(err, ErrUnencodable) {
		t.Fatalf("Save = %v, want ErrUnencodable", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		t.Fatalf("Save left %s behind", e.Name())
	}
}

func TestFileNameSanitised(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	name := filepath.Base(s.fileName(1, "weird/job name:*"))
	if strings.ContainsAny(name, "/: *") {
		t.Fatalf("fileName %q contains unsafe characters", name)
	}
}

func TestFingerprint(t *testing.T) {
	base := func() *Fingerprint {
		f := NewFingerprint()
		f.Str("pipe")
		f.I64(3)
		f.KV("key", []uint32{1, 2})
		return f
	}
	a, b := base(), base()
	if a.Hex() == "" || a.Hex() != b.Hex() {
		t.Fatalf("identical fingerprints differ: %q vs %q", a.Hex(), b.Hex())
	}
	c := base()
	c.KV("key", []uint32{1, 3})
	if c.Hex() == a.Hex() {
		t.Fatal("fingerprint ignored an input value change")
	}
	// Length framing: ("ab","c") must not collide with ("a","bc").
	x, y := NewFingerprint(), NewFingerprint()
	x.Str("ab")
	x.Str("c")
	y.Str("a")
	y.Str("bc")
	if x.Hex() == y.Hex() {
		t.Fatal("fingerprint fields collide by concatenation")
	}
	// An unencodable value poisons the fingerprint.
	z := NewFingerprint()
	z.KV("k", struct{ ch chan int }{})
	if z.Err() == nil || z.Hex() != "" {
		t.Fatalf("unencodable value: Err=%v Hex=%q, want error and empty", z.Err(), z.Hex())
	}
}
