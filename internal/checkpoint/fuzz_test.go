package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary byte images through the checkpoint decoder.
// The safety property under test is the one DESIGN.md §9 promises: a
// mutated or arbitrary file either fails decoding (→ recompute) or decodes
// to a well-formed snapshot — it can never crash the loader or smuggle a
// wrong resume past the fingerprint check. Seeds include a valid file so
// the fuzzer explores the accept path's neighbourhood, where single-bit
// flips must be caught by the checksum.
func FuzzDecode(f *testing.F) {
	dir := f.TempDir()
	s, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	m := Manifest{
		Pipeline:    "fuzz-pipe",
		Stage:       1,
		Job:         "job",
		Fingerprint: "fp",
		Counters:    map[string]int64{"n": 1},
		Metrics:     json.RawMessage(`{"Job":"job"}`),
	}
	recs := []Record{
		{Key: "a", Value: int(1)},
		{Key: "b", Value: "text"},
		{Key: "c", Value: []uint32{9, 8, 7}},
	}
	if err := s.Save(m, recs); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(s.fileName(1, "job"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decode(data)
		if err != nil {
			return // rejected: the loader reports Corrupt and recomputes
		}
		// Accepted images must be internally consistent...
		if int64(len(snap.Records)) != snap.Manifest.Records {
			t.Fatalf("accepted image with %d records but manifest says %d",
				len(snap.Records), snap.Manifest.Records)
		}
		if snap.Manifest.Format != 1 {
			t.Fatalf("accepted unsupported format %d", snap.Manifest.Format)
		}
		// ...and, with a checksum over every byte, an accepted image that
		// claims our fingerprint must BE our checkpoint.
		if snap.Manifest.Fingerprint == "fp" && snap.Manifest.Stage == 1 &&
			snap.Manifest.Job == "job" && !reflect.DeepEqual(snap.Records, recs) {
			t.Fatalf("fingerprint-matched image decoded different records: %#v", snap.Records)
		}
	})
}

// FuzzLoadViaStore drives the full Load path (file on disk, removal on
// rejection) with mutated images, asserting a non-Hit never leaves the
// file behind to shadow a future save.
func FuzzLoadViaStore(f *testing.F) {
	f.Add([]byte("FSCKPT01 garbage"), uint8(0))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, flip uint8) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		name := s.fileName(0, "j")
		if err := os.WriteFile(name, data, 0o600); err != nil {
			t.Fatal(err)
		}
		snap, status := s.Load(0, "j", "want-fp")
		switch status {
		case Hit:
			if snap.Manifest.Fingerprint != "want-fp" {
				t.Fatal("hit with mismatched fingerprint")
			}
		case Miss, Stale, Corrupt:
			if _, err := os.Stat(name); err == nil && status != Miss {
				t.Fatalf("status %v left the file in place", status)
			}
		}
		// The store directory must hold nothing but completed checkpoints.
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".ckpt" {
				t.Fatalf("unexpected file %s in store", e.Name())
			}
		}
	})
}
