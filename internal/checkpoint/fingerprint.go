package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"fsjoin/internal/spill"
)

// Fingerprint accumulates a stage identity — pipeline name, caller
// configuration salt, stage position, job name, and the stage's full
// input content — into one SHA-256 digest. Every field is length-framed
// before hashing so distinct field sequences can never collide by
// concatenation. Input values are hashed in their spill encoding; a value
// with no codec poisons the fingerprint (Err reports it), which callers
// treat as "this stage cannot be fingerprinted, run it uncheckpointed".
type Fingerprint struct {
	h       hash.Hash
	scratch []byte
	err     error
}

// NewFingerprint starts an empty fingerprint.
func NewFingerprint() *Fingerprint {
	return &Fingerprint{h: sha256.New()}
}

// Str folds one length-framed string field into the fingerprint.
func (f *Fingerprint) Str(s string) {
	f.scratch = binary.AppendUvarint(f.scratch[:0], uint64(len(s)))
	f.h.Write(f.scratch)
	f.h.Write([]byte(s))
}

// I64 folds one integer field into the fingerprint.
func (f *Fingerprint) I64(n int64) {
	f.scratch = binary.AppendVarint(f.scratch[:0], n)
	f.h.Write(f.scratch)
}

// KV folds one input pair into the fingerprint: the key as a string field
// and the value in its length-framed spill encoding.
func (f *Fingerprint) KV(key string, v any) {
	if f.err != nil {
		return
	}
	f.Str(key)
	val, err := spill.AppendEncoded(f.scratch[:0], v)
	if err != nil {
		f.err = ErrUnencodable
		return
	}
	f.scratch = val
	var lead [binary.MaxVarintLen64]byte
	f.h.Write(lead[:binary.PutUvarint(lead[:], uint64(len(val)))])
	f.h.Write(val)
}

// Err reports whether any folded value was unencodable.
func (f *Fingerprint) Err() error { return f.err }

// Hex returns the accumulated digest ("" once Err is set).
func (f *Fingerprint) Hex() string {
	if f.err != nil {
		return ""
	}
	return hex.EncodeToString(f.h.Sum(nil))
}
