// Package result defines the join-result pair type shared by all join
// implementations and the brute-force oracle, plus comparison helpers used
// by the correctness tests.
package result

import (
	"fmt"
	"sort"
)

// Pair is one similarity-join result.
type Pair struct {
	// A and B are record ids: A < B for self-joins, A is the R-side id for
	// R-S joins.
	A, B int32
	// Common is the exact intersection size |s ∩ t|.
	Common int
	// Sim is the similarity score.
	Sim float64
}

// Key returns a canonical 64-bit key for the pair ids.
func (p Pair) Key() uint64 { return uint64(uint32(p.A))<<32 | uint64(uint32(p.B)) }

// Counter names every R-S join path increments at its final verifying
// stage, surfaced through fsjoin.Stats (always zero for self-joins).
const (
	// CtrRSCandidates counts cross-relation pairs the verifying stage
	// examined (for RIDPairsPPJoin: per prefix group, before dedup).
	CtrRSCandidates = "rs.pairs.candidates"
	// CtrRSEmitted counts cross-relation pairs that passed the threshold
	// (for RIDPairsPPJoin: per prefix group, before dedup).
	CtrRSEmitted = "rs.pairs.emitted"
)

// String implements fmt.Stringer.
func (p Pair) String() string {
	return fmt.Sprintf("(%d,%d c=%d sim=%.4f)", p.A, p.B, p.Common, p.Sim)
}

// Sort orders pairs canonically by (A, B).
func Sort(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// Diff compares two canonical result sets by id pairs and intersection
// counts, returning human-readable discrepancies (at most limit entries).
// Both inputs must be sorted with Sort. Sim values are not compared — they
// are derived from Common and the lengths.
func Diff(got, want []Pair, limit int) []string {
	var out []string
	add := func(format string, args ...any) {
		if len(out) < limit {
			out = append(out, fmt.Sprintf(format, args...))
		}
	}
	i, j := 0, 0
	for i < len(got) && j < len(want) {
		g, w := got[i], want[j]
		switch {
		case g.Key() == w.Key():
			if g.Common != w.Common {
				add("pair (%d,%d): common %d, want %d", g.A, g.B, g.Common, w.Common)
			}
			i++
			j++
		case g.Key() < w.Key():
			add("unexpected pair %v", g)
			i++
		default:
			add("missing pair %v", w)
			j++
		}
	}
	for ; i < len(got); i++ {
		add("unexpected pair %v", got[i])
	}
	for ; j < len(want); j++ {
		add("missing pair %v", want[j])
	}
	return out
}
