package result

import (
	"reflect"
	"strings"
	"testing"
)

func TestSort(t *testing.T) {
	ps := []Pair{{A: 2, B: 1}, {A: 1, B: 9}, {A: 1, B: 2}}
	Sort(ps)
	want := []Pair{{A: 1, B: 2}, {A: 1, B: 9}, {A: 2, B: 1}}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("sorted = %v", ps)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := []Pair{{A: 1, B: 2, Common: 3}, {A: 4, B: 5, Common: 6}}
	if d := Diff(a, a, 10); len(d) != 0 {
		t.Fatalf("identical sets diff: %v", d)
	}
}

func TestDiffFindsAll(t *testing.T) {
	got := []Pair{{A: 1, B: 2, Common: 3}, {A: 7, B: 8, Common: 1}}
	want := []Pair{{A: 1, B: 2, Common: 4}, {A: 4, B: 5, Common: 6}}
	d := Diff(got, want, 10)
	if len(d) != 3 {
		t.Fatalf("diff = %v", d)
	}
	joined := strings.Join(d, "\n")
	for _, frag := range []string{"common 3, want 4", "unexpected", "missing"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("diff missing %q: %v", frag, d)
		}
	}
}

func TestDiffLimit(t *testing.T) {
	var got []Pair
	var want []Pair
	for i := int32(0); i < 20; i++ {
		want = append(want, Pair{A: i, B: i + 1})
	}
	if d := Diff(got, want, 5); len(d) != 5 {
		t.Fatalf("limit ignored: %d", len(d))
	}
}

func TestKeyAndString(t *testing.T) {
	p := Pair{A: 1, B: 2, Common: 3, Sim: 0.5}
	q := Pair{A: 1, B: 3}
	if p.Key() == q.Key() {
		t.Fatal("keys collide")
	}
	if !strings.Contains(p.String(), "(1,2") {
		t.Fatalf("String = %q", p.String())
	}
}
