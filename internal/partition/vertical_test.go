package partition

import (
	"math/rand"
	"testing"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/tokens"
)

// buildOrder computes a real global ordering over a random collection.
func buildOrder(t *testing.T, n, vocab, maxLen int, seed int64) (*order.Order, *tokens.Collection) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := &tokens.Collection{}
	for i := 0; i < n; i++ {
		l := rng.Intn(maxLen) + 1
		ids := make([]tokens.ID, l)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(vocab))
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
	}
	p := mapreduce.NewPipeline("t", mapreduce.DefaultCluster())
	o, err := order.Compute(p, c)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := o.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	return o, oc
}

func checkPivots(t *testing.T, pivots []uint32, domain, np int, label string) {
	t.Helper()
	if len(pivots) > np {
		t.Fatalf("%s: %d pivots, asked %d", label, len(pivots), np)
	}
	for i, p := range pivots {
		if p == 0 || int(p) >= domain {
			t.Fatalf("%s: pivot %d out of (0,%d)", label, p, domain)
		}
		if i > 0 && pivots[i-1] >= p {
			t.Fatalf("%s: pivots not strictly increasing: %v", label, pivots)
		}
	}
}

func TestSelectPivotsAllMethods(t *testing.T) {
	o, _ := buildOrder(t, 200, 150, 20, 1)
	for _, m := range []PivotMethod{Random, EvenInterval, EvenTF} {
		for _, np := range []int{1, 5, 29} {
			pivots := SelectPivots(m, o, np, 42)
			checkPivots(t, pivots, o.Domain(), np, m.String())
		}
	}
}

func TestSelectPivotsDegenerate(t *testing.T) {
	o, _ := buildOrder(t, 10, 5, 3, 2)
	if got := SelectPivots(EvenTF, o, 0, 1); got != nil {
		t.Fatalf("0 pivots: got %v", got)
	}
	// More pivots than domain: clamped.
	pivots := SelectPivots(EvenInterval, o, 100, 1)
	checkPivots(t, pivots, o.Domain(), o.Domain()-1, "clamped")
}

func TestSelectPivotsRandomDeterministicPerSeed(t *testing.T) {
	o, _ := buildOrder(t, 100, 80, 15, 3)
	a := SelectPivots(Random, o, 7, 99)
	b := SelectPivots(Random, o, 7, 99)
	if len(a) != len(b) {
		t.Fatal("same seed, different pivot count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different pivots")
		}
	}
}

// TestEvenTFBalancesFragmentMass: Even-TF fragments hold near-equal term
// frequency; Even-Interval fragments hold near-equal distinct-token counts.
func TestEvenTFBalancesFragmentMass(t *testing.T) {
	o, _ := buildOrder(t, 400, 120, 30, 4)
	const np = 9
	pivots := SelectPivots(EvenTF, o, np, 1)
	sp := NewSplitter(pivots)
	mass := make([]int64, sp.Fragments())
	for rank, f := range o.FreqByRank {
		mass[sp.FragmentOf(uint32(rank))] += f
	}
	target := o.TotalFreq / int64(len(mass))
	for i, m := range mass {
		// Individual token frequencies are lumpy; allow 3× headroom.
		if m > 3*target+int64(o.FreqByRank[o.Domain()-1]) {
			t.Errorf("fragment %d mass %d ≫ target %d", i, m, target)
		}
	}
}

func TestSplitterSplitInvariants(t *testing.T) {
	o, oc := buildOrder(t, 150, 90, 25, 5)
	for _, m := range []PivotMethod{Random, EvenInterval, EvenTF} {
		sp := NewSplitter(SelectPivots(m, o, 7, 3))
		for _, rec := range oc.Records {
			segs := sp.Split(rec)
			// Segments reassemble the record exactly, in order.
			var rebuilt []tokens.ID
			prevFrag := -1
			for _, seg := range segs {
				if len(seg.Tokens) == 0 {
					t.Fatalf("empty segment emitted")
				}
				if seg.Fragment <= prevFrag {
					t.Fatalf("fragments not strictly increasing")
				}
				prevFrag = seg.Fragment
				if seg.StrLen != rec.Len() {
					t.Fatalf("StrLen %d != %d", seg.StrLen, rec.Len())
				}
				if seg.Head != len(rebuilt) {
					t.Fatalf("Head %d != position %d", seg.Head, len(rebuilt))
				}
				rebuilt = append(rebuilt, seg.Tokens...)
				if seg.Tail != rec.Len()-len(rebuilt) {
					t.Fatalf("Tail %d wrong", seg.Tail)
				}
				// Every token belongs to the declared fragment.
				for _, tok := range seg.Tokens {
					if sp.FragmentOf(tok) != seg.Fragment {
						t.Fatalf("token %d in wrong fragment %d", tok, seg.Fragment)
					}
				}
			}
			if len(rebuilt) != rec.Len() {
				t.Fatalf("segments lose tokens: %d vs %d", len(rebuilt), rec.Len())
			}
			for i, tok := range rebuilt {
				if tok != rec.Tokens[i] {
					t.Fatalf("segment order broken at %d", i)
				}
			}
		}
	}
}

func TestSplitEmptyRecord(t *testing.T) {
	sp := NewSplitter([]uint32{5})
	if segs := sp.Split(tokens.NewRecord(0, nil)); segs != nil {
		t.Fatalf("empty record produced segments: %v", segs)
	}
}

func TestFragmentOfBoundaries(t *testing.T) {
	sp := NewSplitter([]uint32{3, 7})
	cases := []struct {
		rank uint32
		want int
	}{{0, 0}, {2, 0}, {3, 1}, {6, 1}, {7, 2}, {100, 2}}
	for _, c := range cases {
		if got := sp.FragmentOf(c.rank); got != c.want {
			t.Errorf("FragmentOf(%d) = %d, want %d", c.rank, got, c.want)
		}
	}
	if sp.Fragments() != 3 {
		t.Fatalf("Fragments = %d", sp.Fragments())
	}
}

func TestNoPivotsSingleFragment(t *testing.T) {
	sp := NewSplitter(nil)
	rec := tokens.NewRecord(1, []tokens.ID{1, 5, 9})
	segs := sp.Split(rec)
	if len(segs) != 1 || segs[0].Fragment != 0 || len(segs[0].Tokens) != 3 {
		t.Fatalf("no-pivot split wrong: %+v", segs)
	}
}

func TestPivotMethodString(t *testing.T) {
	if Random.String() != "random" || EvenInterval.String() != "even-interval" || EvenTF.String() != "even-tf" {
		t.Fatal("method names wrong")
	}
}
