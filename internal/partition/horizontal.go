package partition

import (
	"sort"

	"fsjoin/internal/similarity"
)

// Role describes how a record participates in a horizontal partition's join.
type Role uint8

const (
	// RoleRegion marks membership in a plain length-region partition, where
	// all qualifying pairs are joined.
	RoleRegion Role = iota
	// RoleSmall marks the short side of a boundary partition (|s| < L_i).
	RoleSmall
	// RoleLarge marks the long side of a boundary partition (|s| ≥ L_i).
	RoleLarge
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleRegion:
		return "region"
	case RoleSmall:
		return "small"
	case RoleLarge:
		return "large"
	default:
		return "role?"
	}
}

// Assignment maps a record into one horizontal partition with a join role.
type Assignment struct {
	// Partition is the horizontal partition id in [0, Partitions()).
	Partition int
	// Role is the record's join role inside that partition.
	Role Role
}

// Horizontal implements the paper's length-based horizontal partitioning:
// t pivots L_1..L_t yield 2t+1 partitions — t+1 length regions h_0..h_t and
// t boundary partitions h_{t+1}..h_{2t}, where boundary i receives strings
// with lengths in [MinLen(L_i), MaxLen(L_i)] from regions i−1 and i, and
// joins only small × large pairs so no result is produced twice.
type Horizontal struct {
	fn     similarity.Func
	theta  float64
	pivots []int
}

// SelectLengthPivots chooses up to maxPivots length pivots that split the
// record-length histogram into near-equal-count regions. To guarantee that
// no similar pair spans two non-adjacent regions (DESIGN.md §3), a candidate
// pivot X is only kept when MinLen(θ, X) ≥ previous pivot — i.e. adjacent
// pivots are at least a θ-factor apart (L_{i+1} ≥ L_i/θ for Jaccard).
func SelectLengthPivots(fn similarity.Func, theta float64, lengths []int, maxPivots int) []int {
	if maxPivots <= 0 || len(lengths) == 0 {
		return nil
	}
	ls := make([]int, len(lengths))
	copy(ls, lengths)
	sort.Ints(ls)
	var pivots []int
	per := len(ls) / (maxPivots + 1)
	if per < 1 {
		per = 1
	}
	for k := 1; k <= maxPivots; k++ {
		idx := k * per
		if idx >= len(ls) {
			break
		}
		cand := ls[idx]
		if cand <= 1 {
			continue
		}
		if len(pivots) > 0 {
			prev := pivots[len(pivots)-1]
			if cand <= prev || fn.MinLen(theta, cand) < prev {
				continue
			}
		}
		if cand > ls[len(ls)-1] {
			break
		}
		pivots = append(pivots, cand)
	}
	return pivots
}

// NewHorizontal builds a horizontal partitioner from pre-selected pivots.
// The pivots must be strictly increasing and θ-spaced (use
// SelectLengthPivots); NewHorizontal re-validates and drops violators.
func NewHorizontal(fn similarity.Func, theta float64, pivots []int) *Horizontal {
	var ps []int
	for _, p := range pivots {
		if len(ps) > 0 && (p <= ps[len(ps)-1] || fn.MinLen(theta, p) < ps[len(ps)-1]) {
			continue
		}
		ps = append(ps, p)
	}
	return &Horizontal{fn: fn, theta: theta, pivots: ps}
}

// Pivots returns the accepted length pivots.
func (h *Horizontal) Pivots() []int { return h.pivots }

// Regions returns the number of length-region partitions (t+1).
func (h *Horizontal) Regions() int { return len(h.pivots) + 1 }

// Partitions returns the total number of horizontal partitions (2t+1).
func (h *Horizontal) Partitions() int { return 2*len(h.pivots) + 1 }

// RegionOf returns the region index of a record length: the number of
// pivots ≤ l.
func (h *Horizontal) RegionOf(l int) int {
	return sort.Search(len(h.pivots), func(i int) bool { return h.pivots[i] > l })
}

// Assign returns every horizontal partition a record of length l joins in:
// its region, plus up to two adjacent boundary partitions whose length
// window contains l. Length-0 records are assigned nowhere.
func (h *Horizontal) Assign(l int) []Assignment {
	if l <= 0 {
		return nil
	}
	region := h.RegionOf(l)
	out := []Assignment{{Partition: region, Role: RoleRegion}}
	t := len(h.pivots)
	// Boundary i sits between regions i−1 and i (pivot index i−1).
	// As the short side: record in region i−1 with l ≥ MinLen(L_i).
	if region < t {
		pivot := h.pivots[region]
		if l >= h.fn.MinLen(h.theta, pivot) {
			out = append(out, Assignment{Partition: t + 1 + region, Role: RoleSmall})
		}
	}
	// As the long side: record in region i with l ≤ MaxLen(L_i).
	if region > 0 {
		pivot := h.pivots[region-1]
		if l <= h.fn.MaxLen(h.theta, pivot) {
			out = append(out, Assignment{Partition: t + region, Role: RoleLarge})
		}
	}
	return out
}

// Joinable reports whether two records with the given roles may be paired
// inside one horizontal partition without duplicating results: region
// partitions join everything, boundary partitions only small × large.
func Joinable(a, b Role) bool {
	if a == RoleRegion && b == RoleRegion {
		return true
	}
	return (a == RoleSmall && b == RoleLarge) || (a == RoleLarge && b == RoleSmall)
}

// NoHorizontal returns the degenerate single-partition scheme used by
// FS-Join-V (vertical partitioning only).
func NoHorizontal(fn similarity.Func, theta float64) *Horizontal {
	return &Horizontal{fn: fn, theta: theta}
}
