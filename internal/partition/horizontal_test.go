package partition

import (
	"math/rand"
	"testing"

	"fsjoin/internal/similarity"
)

func TestSelectLengthPivotsSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		theta := float64(rng.Intn(4)+6) / 10 // 0.6..0.9
		lengths := make([]int, 500)
		for i := range lengths {
			lengths[i] = rng.Intn(300) + 1
		}
		pivots := SelectLengthPivots(similarity.Jaccard, theta, lengths, rng.Intn(20)+1)
		for i := 1; i < len(pivots); i++ {
			if pivots[i] <= pivots[i-1] {
				t.Fatalf("pivots not increasing: %v", pivots)
			}
			if similarity.Jaccard.MinLen(theta, pivots[i]) < pivots[i-1] {
				t.Fatalf("pivots too close for θ=%v: %v", theta, pivots)
			}
		}
	}
}

func TestSelectLengthPivotsEmpty(t *testing.T) {
	if p := SelectLengthPivots(similarity.Jaccard, 0.8, nil, 5); p != nil {
		t.Fatalf("pivots from empty lengths: %v", p)
	}
	if p := SelectLengthPivots(similarity.Jaccard, 0.8, []int{5, 6}, 0); p != nil {
		t.Fatalf("pivots with maxPivots=0: %v", p)
	}
}

func TestNewHorizontalDropsViolators(t *testing.T) {
	// 10 and 11 are far closer than 1/θ apart at θ=0.8.
	h := NewHorizontal(similarity.Jaccard, 0.8, []int{10, 11, 50})
	p := h.Pivots()
	if len(p) != 2 || p[0] != 10 || p[1] != 50 {
		t.Fatalf("pivots = %v, want [10 50]", p)
	}
}

func TestPartitionCounts(t *testing.T) {
	h := NewHorizontal(similarity.Jaccard, 0.8, []int{10, 100})
	if h.Regions() != 3 || h.Partitions() != 5 {
		t.Fatalf("regions=%d partitions=%d", h.Regions(), h.Partitions())
	}
	n := NoHorizontal(similarity.Jaccard, 0.8)
	if n.Partitions() != 1 || n.Regions() != 1 {
		t.Fatal("NoHorizontal not degenerate")
	}
	if got := n.Assign(17); len(got) != 1 || got[0].Partition != 0 || got[0].Role != RoleRegion {
		t.Fatalf("NoHorizontal.Assign = %v", got)
	}
}

func TestAssignRegionsAndBoundaries(t *testing.T) {
	theta := 0.8
	h := NewHorizontal(similarity.Jaccard, theta, []int{10, 100})
	// Length 5: region 0 only (too short for boundary of pivot 10? 5 <
	// MinLen(0.8,10)=8).
	a := h.Assign(5)
	if len(a) != 1 || a[0] != (Assignment{Partition: 0, Role: RoleRegion}) {
		t.Fatalf("Assign(5) = %v", a)
	}
	// Length 9: region 0 + small side of boundary for pivot 10 (partition
	// t+1+0 = 3).
	a = h.Assign(9)
	if len(a) != 2 || a[1] != (Assignment{Partition: 3, Role: RoleSmall}) {
		t.Fatalf("Assign(9) = %v", a)
	}
	// Length 12: region 1 + large side of boundary 10 (12 ≤ 10/0.8).
	a = h.Assign(12)
	if len(a) != 2 || a[1] != (Assignment{Partition: 3, Role: RoleLarge}) {
		t.Fatalf("Assign(12) = %v", a)
	}
	// Length 0: nothing.
	if got := h.Assign(0); got != nil {
		t.Fatalf("Assign(0) = %v", got)
	}
}

func TestJoinable(t *testing.T) {
	if !Joinable(RoleRegion, RoleRegion) {
		t.Error("region pairs must join")
	}
	if !Joinable(RoleSmall, RoleLarge) || !Joinable(RoleLarge, RoleSmall) {
		t.Error("cross boundary pairs must join")
	}
	if Joinable(RoleSmall, RoleSmall) || Joinable(RoleLarge, RoleLarge) {
		t.Error("same-side boundary pairs must not join")
	}
	if Joinable(RoleRegion, RoleSmall) || Joinable(RoleLarge, RoleRegion) {
		t.Error("region × boundary roles must not join")
	}
}

// TestEverySimilarPairMeetsExactlyOnce is the horizontal partitioning
// correctness property: for any two lengths that could belong to a similar
// pair, there is exactly one (partition, role-pair) where they join — no
// misses, no duplicate results.
func TestEverySimilarPairMeetsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		theta := float64(rng.Intn(5)+5) / 10
		fn := similarity.Jaccard
		lengths := make([]int, 300)
		for i := range lengths {
			lengths[i] = rng.Intn(400) + 1
		}
		h := NewHorizontal(fn, theta, SelectLengthPivots(fn, theta, lengths, rng.Intn(12)+1))
		for pair := 0; pair < 300; pair++ {
			ls := rng.Intn(400) + 1
			lt := rng.Intn(400) + 1
			// Only pairs that could be similar must meet.
			lo, hi := ls, lt
			if lo > hi {
				lo, hi = hi, lo
			}
			compatible := lo >= fn.MinLen(theta, hi)
			meets := 0
			for _, as := range h.Assign(ls) {
				for _, at := range h.Assign(lt) {
					if as.Partition == at.Partition && Joinable(as.Role, at.Role) {
						meets++
					}
				}
			}
			if compatible && meets != 1 {
				t.Fatalf("θ=%v pivots=%v: lengths (%d,%d) meet %d times, want 1",
					theta, h.Pivots(), ls, lt, meets)
			}
			if !compatible && meets > 1 {
				t.Fatalf("θ=%v: incompatible lengths (%d,%d) meet %d times", theta, ls, lt, meets)
			}
		}
	}
}

func TestRoleString(t *testing.T) {
	if RoleRegion.String() != "region" || RoleSmall.String() != "small" || RoleLarge.String() != "large" {
		t.Fatal("role names wrong")
	}
}
