// Package partition implements the paper's two partitioning schemes:
// vertical partitioning (Section IV — pivots over the global ordering split
// every record into disjoint segments, segments with equal partition id form
// a fragment) and the horizontal length-based partitioning optimisation
// (Section V-A).
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"fsjoin/internal/order"
	"fsjoin/internal/tokens"
)

// PivotMethod selects how vertical pivots are chosen from the global
// ordering (Section IV, "Pivots Selection Methods").
type PivotMethod int

const (
	// Random assigns every token an equal probability of being a pivot.
	Random PivotMethod = iota
	// EvenInterval splits the global ordering into equal-width rank
	// intervals.
	EvenInterval
	// EvenTF splits the cumulative term frequency evenly — the method
	// FS-Join adopts, because equal fragment token counts balance reducers.
	EvenTF
)

// String implements fmt.Stringer.
func (m PivotMethod) String() string {
	switch m {
	case Random:
		return "random"
	case EvenInterval:
		return "even-interval"
	case EvenTF:
		return "even-tf"
	default:
		return fmt.Sprintf("PivotMethod(%d)", int(m))
	}
}

// SelectPivots chooses np pivot ranks from the global ordering using the
// given method. Pivots are strictly increasing ranks in (0, |U|); a record
// token with rank r belongs to fragment k where k is the number of pivots
// ≤ r. seed drives the Random method only.
func SelectPivots(method PivotMethod, o *order.Order, np int, seed int64) []uint32 {
	domain := o.Domain()
	if np <= 0 || domain <= 1 {
		return nil
	}
	if np >= domain {
		np = domain - 1
	}
	switch method {
	case Random:
		rng := rand.New(rand.NewSource(seed))
		seen := make(map[uint32]bool, np)
		pivots := make([]uint32, 0, np)
		for len(pivots) < np {
			p := uint32(rng.Intn(domain-1) + 1)
			if !seen[p] {
				seen[p] = true
				pivots = append(pivots, p)
			}
		}
		sort.Slice(pivots, func(i, j int) bool { return pivots[i] < pivots[j] })
		return pivots
	case EvenInterval:
		pivots := make([]uint32, 0, np)
		for k := 1; k <= np; k++ {
			p := uint32(k * domain / (np + 1))
			if p == 0 {
				p = 1
			}
			if len(pivots) > 0 && p <= pivots[len(pivots)-1] {
				p = pivots[len(pivots)-1] + 1
			}
			if int(p) >= domain {
				break
			}
			pivots = append(pivots, p)
		}
		return pivots
	case EvenTF:
		pivots := make([]uint32, 0, np)
		target := o.TotalFreq / int64(np+1)
		if target <= 0 {
			target = 1
		}
		var cum int64
		var nextBoundary = target
		for rank := 0; rank < domain && len(pivots) < np; rank++ {
			cum += o.FreqByRank[rank]
			if cum >= nextBoundary {
				p := uint32(rank + 1)
				if int(p) >= domain {
					break
				}
				if len(pivots) == 0 || p > pivots[len(pivots)-1] {
					pivots = append(pivots, p)
				}
				nextBoundary = cum + target
			}
		}
		return pivots
	default:
		panic("partition: unknown pivot method")
	}
}

// Splitter splits canonical records into segments at a fixed pivot set.
type Splitter struct {
	pivots []uint32
}

// NewSplitter returns a splitter for the given strictly-increasing pivots.
func NewSplitter(pivots []uint32) *Splitter {
	ps := make([]uint32, len(pivots))
	copy(ps, pivots)
	return &Splitter{pivots: ps}
}

// Fragments returns the number of fragments (|P|+1).
func (sp *Splitter) Fragments() int { return len(sp.pivots) + 1 }

// Pivots returns the pivot ranks.
func (sp *Splitter) Pivots() []uint32 { return sp.pivots }

// FragmentOf returns the fragment index of a token rank: the number of
// pivots ≤ rank. Segment k of a record holds ranks in [P[k-1], P[k]).
func (sp *Splitter) FragmentOf(rank uint32) int {
	return sort.Search(len(sp.pivots), func(i int) bool { return sp.pivots[i] > rank })
}

// Segment is one vertical slice of a record plus the metadata the filters
// need (Section V-A): the record length |s|, tokens ahead of the segment
// |s^h| and behind it |s^e|.
type Segment struct {
	// Fragment is the vertical partition id this segment belongs to.
	Fragment int
	// Tokens is the segment's token slice (a subslice of the record).
	Tokens []tokens.ID
	// StrLen is |s|, the full record length.
	StrLen int
	// Head is |s^h|, the number of record tokens before this segment.
	Head int
	// Tail is |s^e|, the number of record tokens after this segment.
	Tail int
}

// Split cuts a canonical record into its non-empty segments in fragment
// order. Segments share the record's token storage.
func (sp *Splitter) Split(rec tokens.Record) []Segment {
	ts := rec.Tokens
	if len(ts) == 0 {
		return nil
	}
	segs := make([]Segment, 0, 4)
	start := 0
	for start < len(ts) {
		frag := sp.FragmentOf(ts[start])
		end := start + 1
		if frag < len(sp.pivots) {
			bound := sp.pivots[frag]
			for end < len(ts) && ts[end] < bound {
				end++
			}
		} else {
			end = len(ts)
		}
		segs = append(segs, Segment{
			Fragment: frag,
			Tokens:   ts[start:end],
			StrLen:   len(ts),
			Head:     start,
			Tail:     len(ts) - end,
		})
		start = end
	}
	return segs
}
