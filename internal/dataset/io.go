package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fsjoin/internal/tokens"
)

// WriteTSV writes a collection as lines of "rid<TAB>tok tok ...", with
// tokens as integer ids.
func WriteTSV(w io.Writer, c *tokens.Collection) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.Records {
		if _, err := fmt.Fprintf(bw, "%d\t", r.RID); err != nil {
			return err
		}
		for i, t := range r.Tokens {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(t), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV reads a collection written by WriteTSV.
func ReadTSV(r io.Reader) (*tokens.Collection, error) {
	c := &tokens.Collection{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		rid, rest, ok := strings.Cut(text, "\t")
		if !ok {
			return nil, fmt.Errorf("dataset: line %d: missing tab separator", line)
		}
		id, err := strconv.ParseInt(rid, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad rid %q: %v", line, rid, err)
		}
		fields := strings.Fields(rest)
		ids := make([]tokens.ID, 0, len(fields))
		for _, f := range fields {
			t, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad token %q: %v", line, f, err)
			}
			ids = append(ids, tokens.ID(t))
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(id), ids))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadText tokenises one raw text record per line (rid = line index) with
// the given tokenizer and dictionary-encodes them. The dictionary may be
// shared across calls so two collections can be joined.
func ReadText(r io.Reader, tk tokens.Tokenizer, dict *tokens.Dictionary) (*tokens.Collection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var raws []tokens.Raw
	for sc.Scan() {
		raws = append(raws, tokens.Raw{RID: int32(len(raws)), Text: sc.Text()})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return dict.Encode(raws, tk), nil
}
