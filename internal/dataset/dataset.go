// Package dataset provides the synthetic workloads standing in for the
// paper's three real datasets (Table III): Enron Email, PubMed abstracts and
// Wiki abstracts. Generators reproduce the properties the join algorithms
// are sensitive to — Zipfian token-frequency skew, the length distribution,
// and a controllable rate of near-duplicate records so joins return
// non-trivial results — scaled down uniformly to laptop size (DESIGN.md §2).
package dataset

import (
	"math"
	"math/rand"

	"fsjoin/internal/tokens"
)

// Profile parameterises a synthetic dataset.
type Profile struct {
	// Name labels the profile in reports ("email", "pubmed", "wiki").
	Name string
	// Records is the number of records at scale 1.0 (the "10X" scale of
	// the paper's sampling experiments).
	Records int
	// Vocab is the token-domain size |U| at scale 1.0.
	Vocab int
	// ZipfS is the Zipf skew exponent (> 1; larger = more skew).
	ZipfS float64
	// ZipfV is the Zipf offset: p(k) ∝ 1/(v+k)^s. Larger values flatten
	// the head so the most frequent token lands at realistic stopword
	// frequencies (~0.5–2%% of occurrences) instead of dominating.
	ZipfV float64
	// MeanLen, MinLen, MaxLen bound the per-record token-set sizes.
	MeanLen int
	MinLen  int
	MaxLen  int
	// LenSigma is the lognormal shape of the length distribution; larger
	// values give the heavy tails of the Email dataset.
	LenSigma float64
	// DupRate is the fraction of records generated as near-duplicates of
	// an earlier record — these create the join's result pairs.
	DupRate float64
	// DupNoise is the per-token mutation probability for near-duplicates.
	DupNoise float64
}

// Email approximates the Enron Email dataset: few records, very long and
// extremely variable token sets (Table III: min 51 tokens, heavy tail).
func Email() Profile {
	return Profile{
		Name: "email", Records: 800, Vocab: 30000, ZipfS: 1.08, ZipfV: 60,
		MeanLen: 280, MinLen: 51, MaxLen: 3000, LenSigma: 1.0,
		DupRate: 0.25, DupNoise: 0.08,
	}
}

// PubMed approximates the PubMed abstract dataset: many short records
// (Table III: avg 80.4 tokens, max 1142, min 1).
func PubMed() Profile {
	return Profile{
		Name: "pubmed", Records: 4000, Vocab: 60000, ZipfS: 1.05, ZipfV: 100,
		MeanLen: 80, MinLen: 1, MaxLen: 1142, LenSigma: 0.7,
		DupRate: 0.2, DupNoise: 0.06,
	}
}

// Wiki approximates the Wiki abstract dataset: many very short records
// (Table III: avg 56.0 tokens, min 1).
func Wiki() Profile {
	return Profile{
		Name: "wiki", Records: 5000, Vocab: 80000, ZipfS: 1.05, ZipfV: 100,
		MeanLen: 56, MinLen: 1, MaxLen: 1500, LenSigma: 0.8,
		DupRate: 0.2, DupNoise: 0.07,
	}
}

// Profiles returns the three paper datasets in presentation order.
func Profiles() []Profile { return []Profile{Email(), PubMed(), Wiki()} }

// Scale returns a copy of p with Records (and Vocab, sub-linearly — Heaps'
// law) multiplied by f. Used for the paper's 4X/6X/8X/10X experiment.
func (p Profile) Scale(f float64) Profile {
	out := p
	out.Records = int(float64(p.Records) * f)
	if out.Records < 1 {
		out.Records = 1
	}
	out.Vocab = int(float64(p.Vocab) * math.Pow(f, 0.6))
	if out.Vocab < 64 {
		out.Vocab = 64
	}
	return out
}

// Generate builds the synthetic collection deterministically from the seed.
func Generate(p Profile, seed int64) *tokens.Collection {
	rng := rand.New(rand.NewSource(seed))
	v := p.ZipfV
	if v < 1 {
		v = 1
	}
	zipf := rand.NewZipf(rng, p.ZipfS, v, uint64(p.Vocab-1))
	lenMu := math.Log(float64(p.MeanLen)) - p.LenSigma*p.LenSigma/2

	c := &tokens.Collection{Records: make([]tokens.Record, 0, p.Records)}
	for i := 0; i < p.Records; i++ {
		rid := int32(i)
		if i > 0 && rng.Float64() < p.DupRate {
			base := c.Records[rng.Intn(i)]
			c.Records = append(c.Records, mutate(rng, zipf, base, rid, p.DupNoise))
			continue
		}
		n := sampleLen(rng, lenMu, p.LenSigma, p.MinLen, p.MaxLen)
		ids := make([]tokens.ID, n)
		for j := range ids {
			ids[j] = tokens.ID(zipf.Uint64())
		}
		c.Records = append(c.Records, tokens.NewRecord(rid, ids))
	}
	return c
}

// mutate derives a near-duplicate: each token is replaced with probability
// noise, and with probability noise/2 a token is added or dropped.
func mutate(rng *rand.Rand, zipf *rand.Zipf, base tokens.Record, rid int32, noise float64) tokens.Record {
	ids := make([]tokens.ID, 0, len(base.Tokens)+2)
	for _, t := range base.Tokens {
		switch {
		case rng.Float64() < noise:
			ids = append(ids, tokens.ID(zipf.Uint64()))
		case rng.Float64() < noise/2:
			// dropped
		default:
			ids = append(ids, t)
		}
	}
	if rng.Float64() < noise {
		ids = append(ids, tokens.ID(zipf.Uint64()))
	}
	if len(ids) == 0 {
		ids = append(ids, tokens.ID(zipf.Uint64()))
	}
	return tokens.NewRecord(rid, ids)
}

func sampleLen(rng *rand.Rand, mu, sigma float64, lo, hi int) int {
	n := int(math.Round(math.Exp(rng.NormFloat64()*sigma + mu)))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Sample returns a deterministic random fraction of the collection,
// mirroring the paper's "6X means 60% of strings extracted randomly".
// Record ids are preserved.
func Sample(c *tokens.Collection, frac float64, seed int64) *tokens.Collection {
	if frac >= 1 {
		return c.Clone()
	}
	rng := rand.New(rand.NewSource(seed))
	out := &tokens.Collection{}
	for _, r := range c.Records {
		if rng.Float64() < frac {
			out.Records = append(out.Records, r.Clone())
		}
	}
	return out
}

// Stats summarises a collection the way Table III does.
type Stats struct {
	Records   int
	MinLen    int
	MaxLen    int
	AvgLen    float64
	TotalToks int
	Distinct  int
}

// Describe computes Table III-style statistics.
func Describe(c *tokens.Collection) Stats {
	s := Stats{Records: len(c.Records), MinLen: math.MaxInt}
	seen := make(map[tokens.ID]struct{})
	for _, r := range c.Records {
		n := r.Len()
		s.TotalToks += n
		if n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
		for _, t := range r.Tokens {
			seen[t] = struct{}{}
		}
	}
	if s.Records > 0 {
		s.AvgLen = float64(s.TotalToks) / float64(s.Records)
	} else {
		s.MinLen = 0
	}
	s.Distinct = len(seen)
	return s
}
