package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Wiki().Scale(0.05)
	a := Generate(p, 42)
	b := Generate(p, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different collections")
	}
	c := Generate(p, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestGenerateRespectsProfileShape(t *testing.T) {
	for _, p := range Profiles() {
		small := p.Scale(0.1)
		c := Generate(small, 1)
		s := Describe(c)
		if s.Records != small.Records {
			t.Errorf("%s: records %d != %d", p.Name, s.Records, small.Records)
		}
		if s.MaxLen > p.MaxLen {
			t.Errorf("%s: max len %d > %d", p.Name, s.MaxLen, p.MaxLen)
		}
		if s.AvgLen < float64(p.MeanLen)/4 || s.AvgLen > float64(p.MeanLen)*4 {
			t.Errorf("%s: avg len %.1f far from mean %d", p.Name, s.AvgLen, p.MeanLen)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestGenerateProducesSimilarPairs(t *testing.T) {
	// The duplicate mechanism must create join results, or every
	// experiment would report empty joins.
	c := Generate(Wiki().Scale(0.05), 7)
	pairs := bruteforce.SelfJoin(c, similarity.Jaccard, 0.8)
	if len(pairs) == 0 {
		t.Fatal("no similar pairs at θ=0.8")
	}
}

func TestTokenFrequencySkewIsRealistic(t *testing.T) {
	// The most frequent token should sit at stopword-like frequency:
	// present in a meaningful share of records but nowhere near all
	// positions (the ZipfV head-flattening).
	c := Generate(PubMed().Scale(0.25), 1)
	counts := map[tokens.ID]int{}
	total := 0
	for _, r := range c.Records {
		for _, tok := range r.Tokens {
			counts[tok]++
			total++
		}
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	share := float64(max) / float64(total)
	if share > 0.05 {
		t.Fatalf("top token holds %.1f%% of occurrences — head too fat", share*100)
	}
	if share < 0.0005 {
		t.Fatalf("top token holds %.3f%% — no skew at all", share*100)
	}
}

func TestScale(t *testing.T) {
	p := PubMed()
	h := p.Scale(0.5)
	if h.Records != p.Records/2 {
		t.Fatalf("records %d", h.Records)
	}
	if h.Vocab >= p.Vocab || h.Vocab <= p.Vocab/2 {
		t.Fatalf("vocab should shrink sub-linearly: %d from %d", h.Vocab, p.Vocab)
	}
	tiny := p.Scale(0.000001)
	if tiny.Records < 1 || tiny.Vocab < 64 {
		t.Fatal("scale floors violated")
	}
}

func TestSampleFraction(t *testing.T) {
	c := Generate(Wiki().Scale(0.2), 1)
	s := Sample(c, 0.5, 9)
	frac := float64(s.Len()) / float64(c.Len())
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("sample fraction %.2f far from 0.5", frac)
	}
	// RIDs preserved and records identical.
	byRID := map[int32]tokens.Record{}
	for _, r := range c.Records {
		byRID[r.RID] = r
	}
	for _, r := range s.Records {
		orig, ok := byRID[r.RID]
		if !ok || !reflect.DeepEqual(orig.Tokens, r.Tokens) {
			t.Fatal("sampled record mangled")
		}
	}
	if full := Sample(c, 1.0, 9); full.Len() != c.Len() {
		t.Fatal("full sample lost records")
	}
}

func TestDescribeEmpty(t *testing.T) {
	s := Describe(&tokens.Collection{})
	if s.Records != 0 || s.MinLen != 0 || s.MaxLen != 0 || s.AvgLen != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	c := Generate(Wiki().Scale(0.02), 3)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, back) {
		t.Fatal("TSV round trip changed the collection")
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("no-tab-here\n")); err == nil {
		t.Fatal("missing tab accepted")
	}
	if _, err := ReadTSV(strings.NewReader("x\t1 2\n")); err == nil {
		t.Fatal("bad rid accepted")
	}
	if _, err := ReadTSV(strings.NewReader("1\ta b\n")); err == nil {
		t.Fatal("bad token accepted")
	}
	c, err := ReadTSV(strings.NewReader("7\t3 1 2\n\n8\t\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Records[0].RID != 7 || c.Records[0].Len() != 3 || c.Records[1].Len() != 0 {
		t.Fatalf("parsed wrong: %+v", c.Records)
	}
}

func TestReadText(t *testing.T) {
	dict := tokens.NewDictionary()
	c, err := ReadText(strings.NewReader("Hello world\nhello again\n"), tokens.WordTokenizer{}, dict)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("records = %d", c.Len())
	}
	// "hello" shared between both records.
	if n := tokens.Intersect(c.Records[0].Tokens, c.Records[1].Tokens); n != 1 {
		t.Fatalf("shared tokens = %d", n)
	}
}
