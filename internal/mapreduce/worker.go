package mapreduce

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// This file is the coordination half of the multi-process runner
// (DESIGN.md §15): a Supervisor that leases tasks to worker processes over
// a unix socket, watches their heartbeats, and reassigns work from dead or
// stalled workers with exponential backoff; and a WorkerClient, the
// Executor each participant (worker process or driver) plugs into
// Config.Runtime. The protocol is line-delimited JSON — one request, one
// reply — chosen for debuggability over throughput: the messages are tiny
// (task grants and completions), the data plane is the filesystem
// transport.
//
// Failure detection is two-tier. A SIGKILLed worker's control connection
// EOFs immediately, so its leases release on the spot; a stalled worker
// (alive but wedged) is caught by lease deadlines and heartbeat timeouts.
// Either way the task returns to the grant queue after an exponential
// backoff, and the supervisor counts the reassignment. Because every task
// is deterministic and delivery is generation-stamped newest-complete-wins,
// a reassigned task that races its presumed-dead original is harmless:
// both commits carry identical bytes.

// ctlSocketName is the supervisor's unix socket, created in the run's
// work directory.
const ctlSocketName = "ctl.sock"

// ControlSocket returns the supervisor's socket path within a work
// directory — what worker processes dial.
func ControlSocket(dir string) string { return filepath.Join(dir, ctlSocketName) }

// driverWorkerID is the Executor id the driver process registers under.
// The supervisor never grants tasks to the driver: its job is to replay
// the pipeline for Result assembly, staying responsive for the user even
// when every worker is busy.
const driverWorkerID = -1

// DriverID is the reserved participant id for the non-executing driver;
// callers pass it to DialWorker from the process that owns the run.
const DriverID = driverWorkerID

// SupervisorConfig tunes failure detection.
type SupervisorConfig struct {
	// Dir is the run's work directory; the control socket lives here.
	Dir string
	// LeaseDuration bounds how long a granted task may run before the
	// supervisor presumes the holder stalled and re-queues the task.
	// 0 means a minute.
	LeaseDuration time.Duration
	// HeartbeatTimeout declares a worker dead when no heartbeat arrives
	// for this long. 0 means 10 s.
	HeartbeatTimeout time.Duration
	// ReassignBackoff is the base delay before a released task is granted
	// again, doubling per release of the same task. 0 means 10 ms.
	ReassignBackoff time.Duration
}

// SupervisorCounters is a snapshot of the supervisor's fault accounting,
// published into fsjoin.Stats after a clustered run.
type SupervisorCounters struct {
	Heartbeats            int64
	WorkerDeaths          int64
	TasksReassigned       int64
	PartitionsRedelivered int64
}

// taskState is one task's position in the lease lifecycle.
type taskState int

const (
	taskQueued taskState = iota
	taskLeased
	taskDone
)

// superTask is the supervisor's view of one task of the current phase.
type superTask struct {
	state    taskState
	holder   int       // worker id while leased
	deadline time.Time // lease expiry while leased
	releases int       // grants lost to death/expiry, drives backoff
	notUntil time.Time // backoff gate for the next grant
}

// superPhase is the currently announced phase: what remains to grant and
// which participants have reached its barrier.
type superPhase struct {
	seq   int
	job   string
	phase Phase
	tasks []superTask
	done  int
}

// superWorker is one registered participant.
type superWorker struct {
	id       int
	ctl      net.Conn
	lastBeat time.Time
	dead     bool
	phaseSeq int // highest phase seq this worker announced
}

// Supervisor coordinates one clustered run. It is phase-synchronous:
// every participant announces the same deterministic sequence of
// (job, phase, n) phases; the supervisor grants each phase's tasks to
// whichever live non-driver participants ask, and holds the barrier until
// all tasks commit.
type Supervisor struct {
	cfg SupervisorConfig
	ln  net.Listener

	mu       sync.Mutex
	phases   map[int]*superPhase // by seq; phases are created on first announce
	nextSeq  int                 // highest seq announced by anyone
	workers  map[int]*superWorker
	counters SupervisorCounters
	started  time.Time
	everWork bool // a non-driver participant has registered at least once
	closed   bool
	fatal    error
}

// StartSupervisor listens on the control socket and begins accepting
// participants.
func StartSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = time.Minute
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.ReassignBackoff <= 0 {
		cfg.ReassignBackoff = 10 * time.Millisecond
	}
	ln, err := net.Listen("unix", filepath.Join(cfg.Dir, ctlSocketName))
	if err != nil {
		return nil, fmt.Errorf("mapreduce: supervisor: %w", err)
	}
	s := &Supervisor{
		cfg:     cfg,
		ln:      ln,
		phases:  make(map[int]*superPhase),
		workers: make(map[int]*superWorker),
		started: time.Now(),
	}
	go s.accept()
	go s.reap()
	return s, nil
}

// Addr returns the control socket path workers dial.
func (s *Supervisor) Addr() string { return filepath.Join(s.cfg.Dir, ctlSocketName) }

// Counters snapshots the fault accounting.
func (s *Supervisor) Counters() SupervisorCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Close shuts the supervisor down and disconnects every participant.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.workers))
	for _, w := range s.workers {
		if w.ctl != nil {
			conns = append(conns, w.ctl)
		}
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// ctlMsg is the one message shape both directions share; unused fields
// stay zero. Kind discriminates.
type ctlMsg struct {
	Kind string `json:"kind"`
	// hello
	Worker int    `json:"worker,omitempty"`
	Role   string `json:"role,omitempty"` // "ctl" or "beat"
	// begin
	Seq   int    `json:"seq,omitempty"`
	Job   string `json:"job,omitempty"`
	Phase int    `json:"phase,omitempty"`
	N     int    `json:"n,omitempty"`
	// next / done replies
	Task        int    `json:"task"`
	OK          bool   `json:"ok,omitempty"`
	Wait        bool   `json:"wait,omitempty"`
	Redelivered bool   `json:"redelivered,omitempty"`
	Err         string `json:"err,omitempty"`
}

// accept registers participants: each dials twice, a "ctl" connection for
// the request/reply protocol and a fire-and-forget "beat" stream.
func (s *Supervisor) accept() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

// serve handles one connection from hello to EOF.
func (s *Supervisor) serve(conn net.Conn) {
	dec := json.NewDecoder(conn)
	var hello ctlMsg
	if err := dec.Decode(&hello); err != nil || hello.Kind != "hello" {
		conn.Close()
		return
	}
	switch hello.Role {
	case "beat":
		s.serveBeats(conn, dec, hello.Worker)
	default:
		s.serveCtl(conn, dec, hello.Worker)
	}
}

// serveBeats consumes one worker's heartbeat stream.
func (s *Supervisor) serveBeats(conn net.Conn, dec *json.Decoder, id int) {
	defer conn.Close()
	for {
		var m ctlMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		s.mu.Lock()
		s.counters.Heartbeats++
		if w := s.workers[id]; w != nil {
			w.lastBeat = time.Now()
		}
		s.mu.Unlock()
	}
}

// serveCtl runs one participant's request/reply loop. EOF without a "bye"
// is a death: the worker's leases release immediately.
func (s *Supervisor) serveCtl(conn net.Conn, dec *json.Decoder, id int) {
	enc := json.NewEncoder(conn)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	w := &superWorker{id: id, ctl: conn, lastBeat: time.Now(), phaseSeq: -1}
	s.workers[id] = w
	if id != driverWorkerID {
		s.everWork = true
	}
	s.mu.Unlock()
	graceful := false
	defer func() {
		conn.Close()
		if !graceful {
			s.declareDead(id, "control connection lost")
		}
	}()
	for {
		var m ctlMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		var reply ctlMsg
		switch m.Kind {
		case "begin":
			reply = s.handleBegin(w, m)
		case "next":
			reply = s.handleNext(w, m.Seq)
		case "done":
			reply = s.handleDone(w, m.Seq, m.Task, m.Redelivered)
		case "barrier":
			reply = s.handleBarrier(m.Seq)
		case "bye":
			graceful = true
			s.retireWorker(id)
			return
		default:
			reply = ctlMsg{Kind: "err", Err: fmt.Sprintf("unknown request %q", m.Kind)}
		}
		if err := enc.Encode(reply); err != nil {
			return
		}
	}
}

// handleBegin validates a phase announcement against what other
// participants announced for the same seq — the SPMD contract says they
// must be identical — and creates the phase on first sight.
func (s *Supervisor) handleBegin(w *superWorker, m ctlMsg) ctlMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fatalErr(); err != nil {
		return ctlMsg{Kind: "err", Err: err.Error()}
	}
	ph := s.phases[m.Seq]
	if ph == nil {
		ph = &superPhase{seq: m.Seq, job: m.Job, phase: Phase(m.Phase), tasks: make([]superTask, m.N)}
		s.phases[m.Seq] = ph
		if m.Seq > s.nextSeq {
			s.nextSeq = m.Seq
		}
	} else if ph.job != m.Job || ph.phase != Phase(m.Phase) || len(ph.tasks) != m.N {
		err := fmt.Errorf("phase %d divergence: worker %d announced %s/%v/%d, run has %s/%v/%d",
			m.Seq, w.id, m.Job, Phase(m.Phase), m.N, ph.job, ph.phase, len(ph.tasks))
		s.fatal = err
		return ctlMsg{Kind: "err", Err: err.Error()}
	}
	w.phaseSeq = m.Seq
	return ctlMsg{Kind: "ok"}
}

// handleNext grants the next available task of phase seq, or tells the
// caller to wait (tasks leased elsewhere, or backoff pending) or that the
// phase has drained. The driver is never granted tasks.
func (s *Supervisor) handleNext(w *superWorker, seq int) ctlMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fatalErr(); err != nil {
		return ctlMsg{Kind: "err", Err: err.Error()}
	}
	ph := s.phases[seq]
	if ph == nil {
		return ctlMsg{Kind: "err", Err: fmt.Sprintf("next for unannounced phase %d", seq)}
	}
	if w.id == driverWorkerID {
		if ph.done == len(ph.tasks) {
			return ctlMsg{Kind: "drained"}
		}
		if err := s.workersLost(ph); err != nil {
			return ctlMsg{Kind: "err", Err: err.Error()}
		}
		return ctlMsg{Kind: "wait", Wait: true}
	}
	now := time.Now()
	for t := range ph.tasks {
		st := &ph.tasks[t]
		if st.state != taskQueued || now.Before(st.notUntil) {
			continue
		}
		st.state = taskLeased
		st.holder = w.id
		st.deadline = now.Add(s.cfg.LeaseDuration)
		if st.releases > 0 {
			s.counters.TasksReassigned++
		}
		return ctlMsg{Kind: "task", Task: t, OK: true}
	}
	if ph.done == len(ph.tasks) {
		return ctlMsg{Kind: "drained"}
	}
	// Remaining tasks are leased elsewhere or in backoff. The worker must
	// keep polling rather than retreat to the barrier: if a lease holder
	// dies, its task requeues and someone still asking has to pick it up.
	return ctlMsg{Kind: "wait", Wait: true}
}

// handleDone commits a lease. A done for a task someone else already
// completed is the benign race the redelivery contract exists for.
func (s *Supervisor) handleDone(w *superWorker, seq, task int, redelivered bool) ctlMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	ph := s.phases[seq]
	if ph == nil || task < 0 || task >= len(ph.tasks) {
		return ctlMsg{Kind: "err", Err: fmt.Sprintf("done for unknown task %d of phase %d", task, seq)}
	}
	st := &ph.tasks[task]
	if redelivered {
		s.counters.PartitionsRedelivered++
	}
	switch st.state {
	case taskDone:
		s.counters.PartitionsRedelivered++ // duplicate completion: the commit was idempotent
	default:
		st.state = taskDone
		ph.done++
	}
	return ctlMsg{Kind: "ok"}
}

// handleBarrier reports whether phase seq has fully committed.
func (s *Supervisor) handleBarrier(seq int) ctlMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fatalErr(); err != nil {
		return ctlMsg{Kind: "err", Err: err.Error()}
	}
	ph := s.phases[seq]
	if ph == nil {
		return ctlMsg{Kind: "err", Err: fmt.Sprintf("barrier for unannounced phase %d", seq)}
	}
	if ph.done == len(ph.tasks) {
		return ctlMsg{Kind: "ok"}
	}
	if err := s.workersLost(ph); err != nil {
		return ctlMsg{Kind: "err", Err: err.Error()}
	}
	return ctlMsg{Kind: "wait", Wait: true}
}

// workersLost declares the run dead when no worker can finish the phase:
// every registered worker is gone, or none ever registered within the
// startup grace (the heartbeat timeout). Callers hold s.mu; the error is
// sticky.
func (s *Supervisor) workersLost(ph *superPhase) error {
	if s.liveWorkers() {
		return nil
	}
	if !s.everWork && time.Since(s.started) <= s.cfg.HeartbeatTimeout {
		return nil // startup grace: workers are still launching
	}
	err := fmt.Errorf("phase %d (%s/%v): all workers dead with %d/%d tasks incomplete",
		ph.seq, ph.job, ph.phase, ph.done, len(ph.tasks))
	s.fatal = err
	return err
}

// liveWorkers reports whether any non-driver participant is still alive.
// Callers hold s.mu.
func (s *Supervisor) liveWorkers() bool {
	for id, w := range s.workers {
		if id != driverWorkerID && !w.dead {
			return true
		}
	}
	return false
}

// fatalErr returns the sticky run-fatal error. Callers hold s.mu.
func (s *Supervisor) fatalErr() error {
	if s.fatal != nil {
		return fmt.Errorf("run aborted: %w", s.fatal)
	}
	return nil
}

// retireWorker removes a gracefully departing worker without counting a
// death; its leases (it should hold none) release without backoff credit.
func (s *Supervisor) retireWorker(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.workers[id]; w != nil {
		w.dead = true
	}
	s.releaseLeases(id, false)
}

// declareDead marks a worker dead and requeues its leases with backoff.
func (s *Supervisor) declareDead(id int, cause string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || w.dead || s.closed || id == driverWorkerID {
		return
	}
	w.dead = true
	s.counters.WorkerDeaths++
	_ = cause
	s.releaseLeases(id, true)
}

// releaseLeases requeues every task the worker holds. backoff credits the
// task's release count, delaying and de-prioritising its next grant.
// Callers hold s.mu.
func (s *Supervisor) releaseLeases(id int, backoff bool) {
	now := time.Now()
	for _, ph := range s.phases {
		for t := range ph.tasks {
			st := &ph.tasks[t]
			if st.state != taskLeased || st.holder != id {
				continue
			}
			st.state = taskQueued
			if backoff {
				st.releases++
				shift := st.releases - 1
				if shift > 6 {
					shift = 6
				}
				st.notUntil = now.Add(s.cfg.ReassignBackoff << shift)
			}
		}
	}
}

// reap periodically expires stalled leases and heartbeat-silent workers.
func (s *Supervisor) reap() {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		now := time.Now()
		var silent []int
		for id, w := range s.workers {
			if id == driverWorkerID || w.dead {
				continue
			}
			if now.Sub(w.lastBeat) > s.cfg.HeartbeatTimeout {
				silent = append(silent, id)
			}
		}
		for _, ph := range s.phases {
			for t := range ph.tasks {
				st := &ph.tasks[t]
				if st.state == taskLeased && now.After(st.deadline) {
					st.state = taskQueued
					st.releases++
					shift := st.releases - 1
					if shift > 6 {
						shift = 6
					}
					st.notUntil = now.Add(s.cfg.ReassignBackoff << shift)
				}
			}
		}
		s.mu.Unlock()
		for _, id := range silent {
			s.declareDead(id, "heartbeat timeout")
		}
	}
}

// ---------------------------------------------------------------------------
// Worker side

// WorkerClient is the Executor a participant plugs into Config.Runtime: it
// leases tasks from the supervisor over the control socket and streams
// heartbeats on a second connection. The driver participates with id
// driverWorkerID and is never granted tasks.
type WorkerClient struct {
	id   int
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	mu   sync.Mutex // serialises request/reply exchanges

	beat     net.Conn
	beatStop chan struct{}
	beatWG   sync.WaitGroup

	seq  int // phase announcements so far
	kill killSpec
	// die, when non-nil, replaces the armed SIGKILL with an in-process
	// stand-in (tests drop the connections instead of killing the test
	// binary). From the supervisor's side the two are indistinguishable.
	die func()
}

// killSpec is the parsed FSJOIN_KILL_AT contract: SIGKILL self when the
// n-th boundary of the given kind is reached. Zero value means never.
type killSpec struct {
	kind string
	n    int
	seen int
}

// parseKillSpec parses "<boundary>:<n>", e.g. "handoff:2". Empty means no
// kill. Malformed specs are an error: a typo silently disarming the chaos
// harness would void what the harness proves.
func parseKillSpec(s string) (killSpec, error) {
	if s == "" {
		return killSpec{}, nil
	}
	var k killSpec
	i := -1
	for j := 0; j < len(s); j++ {
		if s[j] == ':' {
			i = j
			break
		}
	}
	if i <= 0 {
		return killSpec{}, fmt.Errorf("kill spec %q: want <boundary>:<n>", s)
	}
	k.kind = s[:i]
	if _, err := fmt.Sscanf(s[i+1:], "%d", &k.n); err != nil || k.n <= 0 {
		return killSpec{}, fmt.Errorf("kill spec %q: want <boundary>:<n>", s)
	}
	switch k.kind {
	case "map", "handoff", "reduce":
	default:
		return killSpec{}, fmt.Errorf("kill spec %q: unknown boundary", s)
	}
	return k, nil
}

// DialWorker connects a participant to the supervisor at socketPath.
// killAt, when non-empty, arms the chaos harness's self-kill (see
// parseKillSpec).
func DialWorker(socketPath string, id int, killAt string) (*WorkerClient, error) {
	kill, err := parseKillSpec(killAt)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: worker %d: %w", id, err)
	}
	conn, err := net.Dial("unix", socketPath)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: worker %d: %w", id, err)
	}
	w := &WorkerClient{
		id:   id,
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(conn),
		kill: kill,
	}
	if err := w.enc.Encode(ctlMsg{Kind: "hello", Worker: id, Role: "ctl"}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mapreduce: worker %d: %w", id, err)
	}
	beat, err := net.Dial("unix", socketPath)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mapreduce: worker %d: %w", id, err)
	}
	benc := json.NewEncoder(beat)
	if err := benc.Encode(ctlMsg{Kind: "hello", Worker: id, Role: "beat"}); err != nil {
		conn.Close()
		beat.Close()
		return nil, fmt.Errorf("mapreduce: worker %d: %w", id, err)
	}
	w.beat = beat
	w.beatStop = make(chan struct{})
	w.beatWG.Add(1)
	go func() {
		defer w.beatWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.beatStop:
				return
			case <-tick.C:
				if benc.Encode(ctlMsg{Kind: "beat", Worker: id}) != nil {
					return
				}
			}
		}
	}()
	return w, nil
}

// Close ends participation gracefully: a "bye" so the supervisor retires
// the worker instead of declaring it dead.
func (w *WorkerClient) Close() {
	w.mu.Lock()
	w.enc.Encode(ctlMsg{Kind: "bye", Worker: w.id})
	w.mu.Unlock()
	close(w.beatStop)
	w.beat.Close()
	w.conn.Close()
	w.beatWG.Wait()
}

// call runs one request/reply exchange.
func (w *WorkerClient) call(req ctlMsg) (ctlMsg, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(req); err != nil {
		return ctlMsg{}, fmt.Errorf("mapreduce: worker %d: supervisor lost: %w", w.id, err)
	}
	var reply ctlMsg
	if err := w.dec.Decode(&reply); err != nil {
		if errors.Is(err, io.EOF) {
			err = fmt.Errorf("supervisor closed the run")
		}
		return ctlMsg{}, fmt.Errorf("mapreduce: worker %d: %w", w.id, err)
	}
	if reply.Kind == "err" {
		return ctlMsg{}, fmt.Errorf("mapreduce: worker %d: %s", w.id, reply.Err)
	}
	return reply, nil
}

// BeginPhase implements Executor. The phase sequence number is local
// monotone state: determinism makes every participant's sequence line up.
func (w *WorkerClient) BeginPhase(job string, phase Phase, n int) (PhaseLease, error) {
	w.seq++
	seq := w.seq
	if _, err := w.call(ctlMsg{Kind: "begin", Worker: w.id, Seq: seq, Job: job, Phase: int(phase), N: n}); err != nil {
		return nil, err
	}
	return &workerLease{w: w, seq: seq}, nil
}

// atBoundary implements boundaryObserver: the armed kill boundary
// SIGKILLs this process mid-protocol, exactly what the recovery machinery
// must survive.
func (w *WorkerClient) atBoundary(kind string) {
	if w.kill.kind != kind {
		return
	}
	w.kill.seen++
	if w.kill.seen != w.kill.n {
		return
	}
	if w.die != nil {
		w.die()
		return
	}
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	select {} // never proceed past the boundary, even if Kill raced
}

// workerLease is one phase's lease source.
type workerLease struct {
	w   *WorkerClient
	seq int
}

// Next implements PhaseLease, polling through "wait" replies.
func (l *workerLease) Next() (int, bool, error) {
	for {
		reply, err := l.w.call(ctlMsg{Kind: "next", Worker: l.w.id, Seq: l.seq})
		if err != nil {
			return 0, false, err
		}
		switch reply.Kind {
		case "task":
			return reply.Task, true, nil
		case "drained":
			return 0, false, nil
		case "wait":
			time.Sleep(2 * time.Millisecond)
		default:
			return 0, false, fmt.Errorf("mapreduce: worker %d: unexpected reply %q", l.w.id, reply.Kind)
		}
	}
}

// Done implements PhaseLease.
func (l *workerLease) Done(task int, redelivered bool) error {
	_, err := l.w.call(ctlMsg{Kind: "done", Worker: l.w.id, Seq: l.seq, Task: task, Redelivered: redelivered})
	return err
}

// Barrier implements PhaseLease, polling until the phase commits.
func (l *workerLease) Barrier() error {
	for {
		reply, err := l.w.call(ctlMsg{Kind: "barrier", Worker: l.w.id, Seq: l.seq})
		if err != nil {
			return err
		}
		if reply.Kind == "ok" {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}
