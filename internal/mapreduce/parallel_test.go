package mapreduce

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestParallelMatchesSequential: any parallelism level produces exactly the
// sequential output (per-task output slots assemble in task order).
func TestParallelMatchesSequential(t *testing.T) {
	input := wcInput("a b a c d", "d e f a", "b b c", "x y z a")
	want, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		got, err := Run(Config{Cluster: tinyCluster(), Parallelism: par}, input, wcMapper{}, wcReducer{})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got.Output, want.Output) {
			t.Fatalf("parallelism %d output differs", par)
		}
		if got.Counters.Get("seen") != want.Counters.Get("seen") {
			t.Fatalf("parallelism %d counters differ", par)
		}
		if got.Metrics.ShuffleRecords != want.Metrics.ShuffleRecords {
			t.Fatalf("parallelism %d metrics differ", par)
		}
	}
}

// countingWCMapper is wcMapper plus a user counter, so counter equivalence
// is meaningful in the property test below. Stateless, concurrency-safe.
var countingWCMapper = MapFunc(func(ctx *Context, kv KV) {
	words := strings.Fields(kv.Value.(string))
	ctx.Inc("words.mapped", int64(len(words)))
	for _, w := range words {
		ctx.Emit(w, int64(1))
	}
})

// sameMetrics compares every deterministic metric field (timings and the
// simulated makespan derived from them are wall-clock-based and excluded).
func sameMetrics(t *testing.T, label string, got, want *Metrics) {
	t.Helper()
	type det struct {
		MapTasks, ReduceTasks                             int
		MapInputRecords, MapOutputRecords, MapOutputBytes int64
		ShuffleRecords, ShuffleBytes                      int64
		ReduceInputGroups, OutputRecords, OutputBytes     int64
		PerReduceRecords, PerReduceBytes                  []int64
		LoadImbalance                                     float64
	}
	extract := func(m *Metrics) det {
		return det{
			MapTasks: m.MapTasks, ReduceTasks: m.ReduceTasks,
			MapInputRecords: m.MapInputRecords, MapOutputRecords: m.MapOutputRecords,
			MapOutputBytes: m.MapOutputBytes, ShuffleRecords: m.ShuffleRecords,
			ShuffleBytes: m.ShuffleBytes, ReduceInputGroups: m.ReduceInputGroups,
			OutputRecords: m.OutputRecords, OutputBytes: m.OutputBytes,
			PerReduceRecords: m.PerReduceRecords, PerReduceBytes: m.PerReduceBytes,
			LoadImbalance: m.LoadImbalance(),
		}
	}
	if g, w := extract(got), extract(want); !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: metrics differ\n got %+v\nwant %+v", label, g, w)
	}
}

// TestParallelEquivalenceProperty: over random inputs, task counts and job
// shapes (no combiner, plain combiner, folding combiner; plain or folding
// reducer), every parallelism level — including AutoParallelism — must
// reproduce the sequential run's Output, counters and shuffle metrics
// byte-for-byte.
func TestParallelEquivalenceProperty(t *testing.T) {
	f := func(seed uint32, combinerKind, reducerKind uint8, taskSeed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		lines := make([]string, 1+rng.Intn(12))
		for i := range lines {
			words := make([]string, rng.Intn(24))
			for w := range words {
				words[w] = string(rune('a' + rng.Intn(9)))
			}
			lines[i] = strings.Join(words, " ")
		}
		cfg := Config{
			Cluster:     tinyCluster(),
			MapTasks:    1 + int(taskSeed%5),
			ReduceTasks: 1 + int(taskSeed%7),
		}
		switch combinerKind % 3 {
		case 1:
			cfg.Combiner = wcReducer{} // plain combiner: grouped combine pass
		case 2:
			cfg.Combiner = foldingWC{} // Folder combiner: folds at Emit time
		}
		var reducer Reducer = wcReducer{}
		if reducerKind%2 == 1 {
			reducer = foldingWC{} // FoldingReducer fast path
		}
		input := wcInput(lines...)
		want, err := Run(cfg, input, countingWCMapper, reducer)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 16, AutoParallelism} {
			pcfg := cfg
			pcfg.Parallelism = par
			got, err := Run(pcfg, input, countingWCMapper, reducer)
			if err != nil {
				t.Fatalf("parallelism %d: %v", par, err)
			}
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Fatalf("parallelism %d: output differs", par)
			}
			if !reflect.DeepEqual(got.Counters.Snapshot(), want.Counters.Snapshot()) {
				t.Fatalf("parallelism %d: counters differ: %v vs %v",
					par, got.Counters.Snapshot(), want.Counters.Snapshot())
			}
			sameMetrics(t, "parallel-equivalence", &got.Metrics, &want.Metrics)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// alwaysPanic is a stateless (concurrency-safe) permanently failing mapper.
type alwaysPanic struct{}

func (alwaysPanic) Map(ctx *Context, kv KV) { panic("permanent failure") }

func TestParallelPropagatesErrors(t *testing.T) {
	_, err := Run(Config{Cluster: tinyCluster(), Parallelism: 4, MaxAttempts: 2, MapTasks: 4},
		wcInput("a", "b", "c", "d"), alwaysPanic{}, wcReducer{})
	if err == nil {
		t.Fatal("parallel phase swallowed the error")
	}
}

func TestRunPhaseProperty(t *testing.T) {
	// runPhase must call work exactly once per index, any parallelism.
	f := func(n, par uint8) bool {
		count := int(n % 40)
		seen := make([]int, count)
		var mu chan struct{} = make(chan struct{}, 1)
		err := runPhase(int(par%8), count, func(t int) error {
			mu <- struct{}{}
			seen[t]++
			<-mu
			return nil
		})
		if err != nil {
			return false
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
