package mapreduce

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestParallelMatchesSequential: any parallelism level produces exactly the
// sequential output (per-task output slots assemble in task order).
func TestParallelMatchesSequential(t *testing.T) {
	input := wcInput("a b a c d", "d e f a", "b b c", "x y z a")
	want, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		got, err := Run(Config{Cluster: tinyCluster(), Parallelism: par}, input, wcMapper{}, wcReducer{})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got.Output, want.Output) {
			t.Fatalf("parallelism %d output differs", par)
		}
		if got.Counters.Get("seen") != want.Counters.Get("seen") {
			t.Fatalf("parallelism %d counters differ", par)
		}
		if got.Metrics.ShuffleRecords != want.Metrics.ShuffleRecords {
			t.Fatalf("parallelism %d metrics differ", par)
		}
	}
}

// alwaysPanic is a stateless (concurrency-safe) permanently failing mapper.
type alwaysPanic struct{}

func (alwaysPanic) Map(ctx *Context, kv KV) { panic("permanent failure") }

func TestParallelPropagatesErrors(t *testing.T) {
	_, err := Run(Config{Cluster: tinyCluster(), Parallelism: 4, MaxAttempts: 2, MapTasks: 4},
		wcInput("a", "b", "c", "d"), alwaysPanic{}, wcReducer{})
	if err == nil {
		t.Fatal("parallel phase swallowed the error")
	}
}

func TestRunPhaseProperty(t *testing.T) {
	// runPhase must call work exactly once per index, any parallelism.
	f := func(n, par uint8) bool {
		count := int(n % 40)
		seen := make([]int, count)
		var mu chan struct{} = make(chan struct{}, 1)
		err := runPhase(int(par%8), count, func(t int) error {
			mu <- struct{}{}
			seen[t]++
			<-mu
			return nil
		})
		if err != nil {
			return false
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
