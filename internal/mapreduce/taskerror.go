package mapreduce

import (
	"context"
	"errors"
	"fmt"
)

// TaskError is the typed failure of one task: which job, phase and task
// index failed, and the underlying cause. Every task-boundary failure the
// engine reports — exhausted retries, shuffle spill or fetch breakage,
// mid-task cancellation — is wrapped in one, so callers as far up as the
// public Join API can recover the metadata with errors.As instead of
// parsing strings, and errors.Is still reaches the cause (notably
// context.Canceled / context.DeadlineExceeded from cancelled joins).
type TaskError struct {
	// Job is the job name (Config.Name).
	Job string
	// Phase is the failing phase (map or reduce; combine faults surface as
	// part of their map attempt, as in Hadoop).
	Phase Phase
	// Task is the task index within the phase.
	Task int
	// Err is the underlying failure.
	Err error
}

// Error implements error, preserving the engine's historical message
// shape ("mapreduce: job %q map task %d: ...").
func (e *TaskError) Error() string {
	return fmt.Sprintf("mapreduce: job %q %s task %d: %v", e.Job, e.Phase, e.Task, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *TaskError) Unwrap() error { return e.Err }

// taskErr wraps one task-boundary failure, collapsing nested TaskErrors
// (a cancellation panic already carries its own metadata) so a failure is
// tagged with job/phase/task exactly once.
func taskErr(job string, phase Phase, task int, err error) error {
	var te *TaskError
	if errors.As(err, &te) {
		return err
	}
	return &TaskError{Job: job, Phase: phase, Task: task, Err: err}
}

// enginePanic carries an engine-internal failure (spill I/O, shuffle
// fetch, partitioner contract violations, mid-task cancellation) across a
// panic so guard can return it as an error with its errors.Is/As chain
// intact. User-code panics, by contrast, stay opaque and become "task
// failed" errors — the engine makes no claims about their values.
type enginePanic struct{ err error }

// Error implements error (tests that recover the panic value directly can
// treat it as one).
func (p *enginePanic) Error() string { return p.err.Error() }

// Unwrap exposes the carried failure.
func (p *enginePanic) Unwrap() error { return p.err }

// isCancellation reports whether err is a context cancellation or
// deadline expiry — failures retrying cannot cure and skip mode must not
// bisect.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// cancelStride is how many CheckCancel calls pass between context polls —
// frequent enough that deadlines fire mid-stage on large fragments, cheap
// enough (one masked increment per call) to sit in kernel inner loops.
const cancelStride = 1024

// CheckCancel is the bounded-stride cancellation point for long-running
// task bodies (the fragment-join kernels, big reduce groups): every
// cancelStride calls it polls the job context and, when cancelled, aborts
// the attempt by panicking with the context's error. The attempt loop
// recognises cancellation and returns it immediately — no retries, no
// skip-mode bisection — so deadlines fire mid-stage instead of waiting
// for the next task boundary. No-op for jobs without a context.
func (c *Context) CheckCancel() {
	if c.Job.Context == nil {
		return
	}
	c.polls++
	if c.polls&(cancelStride-1) != 0 {
		return
	}
	select {
	case <-c.Job.Context.Done():
		panic(&enginePanic{err: c.Job.Context.Err()})
	default:
	}
}
