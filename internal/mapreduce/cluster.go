package mapreduce

import (
	"sort"
	"time"
)

// Cluster models the distributed testbed the paper ran on: a set of worker
// nodes each offering a fixed number of task slots, a network over which the
// shuffle travels, and local disks absorbing map-side spills. The engine
// runs every task for real, measures its CPU time and byte counts, and then
// uses this model to compute the makespan the same job would have on the
// cluster.
//
// The default values approximate the paper's setup: 10 workers, 3 slots per
// worker ("we set the number of reduce tasks to be three times the number of
// nodes"), gigabit-class network shared per node, and a multi-second Hadoop
// per-task startup overhead.
type Cluster struct {
	// Nodes is the number of worker nodes (the paper uses 5/10/15).
	Nodes int
	// SlotsPerNode is the number of concurrent map or reduce tasks a node
	// runs (3 in the paper).
	SlotsPerNode int
	// ShuffleBytesPerSec is the per-node network drain rate during shuffle.
	ShuffleBytesPerSec float64
	// SpillBytesPerSec is the per-node disk rate used for map-side sort
	// spills; large map outputs pay this twice (write + read back).
	SpillBytesPerSec float64
	// SpillBufferBytes is the in-memory sort buffer per map task; only map
	// output beyond this spills to disk.
	SpillBufferBytes int64
	// TaskOverhead is the fixed per-task scheduling/JVM-startup latency.
	TaskOverhead time.Duration
	// CPUScale multiplies measured local CPU time to account for the speed
	// difference between the local machine and one cluster core. 1.0 means
	// "cluster core as fast as local core".
	CPUScale float64
	// DataScaleFactor multiplies byte volumes before rate division: the
	// synthetic datasets are miniatures of the paper's (≈1000× smaller), so
	// each simulated byte stands for DataScaleFactor real bytes when
	// computing shuffle and spill transfer times. This calibrates the
	// simulator to the shuffle-bound regime the paper's Hadoop cluster
	// operated in.
	DataScaleFactor float64
	// ReducerMemoryBytes is the memory available to one reduce task for
	// materialising a key group. A group larger than this (after data
	// scaling) is charged external-memory passes on the local disk — the
	// paper's explanation for why whole-fragment reducers (FS-Join-V, or
	// badly balanced pivots) fall behind: "the spilling procedure is
	// invoked multiple times ... each reduce node will incur on high time
	// latency" (Section VI-F).
	ReducerMemoryBytes int64
}

// DefaultCluster returns the paper's 10-worker configuration.
func DefaultCluster() *Cluster {
	return &Cluster{
		Nodes:              10,
		SlotsPerNode:       3,
		ShuffleBytesPerSec: 40e6,
		SpillBytesPerSec:   60e6,
		SpillBufferBytes:   64 << 10, // scaled with DataScaleFactor
		TaskOverhead:       1500 * time.Millisecond,
		CPUScale:           20,
		DataScaleFactor:    1000,
		ReducerMemoryBytes: 256 << 20,
	}
}

// WithNodes returns a copy of c with a different node count.
func (c *Cluster) WithNodes(n int) *Cluster {
	out := *c
	out.Nodes = n
	return &out
}

// Slots returns the total number of concurrent task slots.
func (c *Cluster) Slots() int {
	n := c.Nodes * c.SlotsPerNode
	if n < 1 {
		return 1
	}
	return n
}

// makespan schedules task durations onto the cluster's slots using LPT
// (longest processing time first), the classic 4/3-approximation that
// mirrors Hadoop's greedy scheduler behaviour, and returns the finish time.
func (c *Cluster) makespan(durations []time.Duration) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	slots := c.Slots()
	sorted := make([]time.Duration, len(durations))
	copy(sorted, durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, slots)
	for _, d := range sorted {
		// Place on the least-loaded slot.
		min := 0
		for i := 1; i < slots; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// shuffleTime converts total shuffle bytes into transfer seconds, assuming
// all nodes drain the network concurrently.
func (c *Cluster) shuffleTime(bytes int64) time.Duration {
	if bytes <= 0 || c.ShuffleBytesPerSec <= 0 {
		return 0
	}
	sec := float64(bytes) * c.dataScale() / (c.ShuffleBytesPerSec * float64(c.Nodes))
	return time.Duration(sec * float64(time.Second))
}

// dataScale returns the byte-volume multiplier (≥ 1).
func (c *Cluster) dataScale() float64 {
	if c.DataScaleFactor < 1 {
		return 1
	}
	return c.DataScaleFactor
}

// spillTime charges disk time for map output beyond the per-task sort
// buffer: spilled bytes are written and read back once.
func (c *Cluster) spillTime(mapOutputBytes int64, mapTasks int) time.Duration {
	if mapOutputBytes <= 0 || c.SpillBytesPerSec <= 0 || mapTasks <= 0 {
		return 0
	}
	buffered := c.SpillBufferBytes * int64(mapTasks)
	spilled := mapOutputBytes - buffered
	if spilled <= 0 {
		return 0
	}
	sec := 2 * float64(spilled) * c.dataScale() / (c.SpillBytesPerSec * float64(c.Nodes))
	return time.Duration(sec * float64(time.Second))
}

// measuredSpillTime charges disk time for bytes the out-of-core shuffle
// actually spilled under a memory budget (Metrics.SpillBytes): each byte
// is written once into a sorted run and read back once by the reduce-side
// k-way merge. This complements spillTime, which models the buffer Hadoop
// would have had; this term reflects the buffer this engine really had.
func (c *Cluster) measuredSpillTime(spilledBytes int64) time.Duration {
	if spilledBytes <= 0 || c.SpillBytesPerSec <= 0 {
		return 0
	}
	sec := 2 * float64(spilledBytes) * c.dataScale() / (c.SpillBytesPerSec * float64(c.Nodes))
	return time.Duration(sec * float64(time.Second))
}

// mergeFactor is the external-merge fan-in used to estimate how many disk
// passes an oversized reduce group needs (Hadoop's io.sort.factor regime).
const mergeFactor = 10

// groupSpillTime charges external-memory merge passes for one reduce-side
// key group: a group whose (scaled) bytes exceed the reducer's memory is
// written and read back once per merge pass on the task's local disk —
// ⌈log_mf(group/memory)⌉ passes, each touching the whole group.
func (c *Cluster) groupSpillTime(groupBytes int64) time.Duration {
	if c.ReducerMemoryBytes <= 0 || c.SpillBytesPerSec <= 0 {
		return 0
	}
	scaled := float64(groupBytes) * c.dataScale()
	ratio := scaled / float64(c.ReducerMemoryBytes)
	if ratio <= 1 {
		return 0
	}
	passes := 0
	for r := ratio; r > 1; r /= mergeFactor {
		passes++
	}
	sec := float64(passes) * 2 * scaled / c.SpillBytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// fetchTime is the time one reduce task needs to pull its shuffle input
// over its node's network share (the per-node rate divided across the
// node's concurrent task slots). Skewed reducers therefore stall the phase,
// which is the load-imbalance effect Even-TF pivots exist to avoid.
func (c *Cluster) fetchTime(taskBytes int64) time.Duration {
	if taskBytes <= 0 || c.ShuffleBytesPerSec <= 0 {
		return 0
	}
	slots := c.SlotsPerNode
	if slots < 1 {
		slots = 1
	}
	rate := c.ShuffleBytesPerSec / float64(slots)
	sec := float64(taskBytes) * c.dataScale() / rate
	return time.Duration(sec * float64(time.Second))
}

// scaleCPU converts measured local CPU time into modelled cluster-core time.
func (c *Cluster) scaleCPU(d time.Duration) time.Duration {
	if c.CPUScale == 0 || c.CPUScale == 1.0 {
		return d
	}
	return time.Duration(float64(d) * c.CPUScale)
}
