package mapreduce

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestU32KeyRoundTripAndOrder(t *testing.T) {
	f := func(a, b uint32) bool {
		ka, kb := U32Key(a), U32Key(b)
		if DecodeU32Key(ka) != a {
			return false
		}
		// Lexicographic key order must equal numeric order.
		return (a < b) == (ka < kb) || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := DecodePairKey(PairKey(a, b))
		return x == a && y == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOriginKeyRoundTripAndDisambiguation(t *testing.T) {
	f := func(origin uint8, rid uint32) bool {
		o, r := DecodeOriginKey(OriginKey(origin, rid))
		if o != origin || r != rid {
			return false
		}
		// R#rid and S#rid must never share a key — the rid spaces of the
		// two relations of an R-S join overlap.
		if origin != 0 && OriginKey(origin, rid) == OriginKey(0, rid) {
			return false
		}
		// Origin 0 keys stay the plain U32Key so self-join inputs (and
		// their checkpoint fingerprints) are unchanged by R-S support.
		return origin != 0 || OriginKey(0, rid) == U32Key(rid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersMergeAndSnapshot(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Inc("x", 2)
	b.Inc("x", 3)
	b.Inc("y", 1)
	a.Merge(b)
	if a.Get("x") != 5 || a.Get("y") != 1 {
		t.Fatalf("merge wrong: %v", a.Snapshot())
	}
	snap := a.Snapshot()
	a.Inc("x", 1)
	if snap["x"] != 5 {
		t.Fatal("snapshot not isolated")
	}
	if !strings.Contains(a.String(), "x=6") {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestCountersGetMissing(t *testing.T) {
	c := NewCounters()
	if c.Get("nope") != 0 {
		t.Fatal("missing counter not zero")
	}
}

func TestDFS(t *testing.T) {
	d := NewDFS()
	d.Write("a/b", 42)
	v, err := d.Read("a/b")
	if err != nil || v.(int) != 42 {
		t.Fatalf("Read = %v, %v", v, err)
	}
	if _, err := d.Read("missing"); err == nil {
		t.Fatal("missing file read succeeded")
	}
	d.Write("a/a", "x")
	if got := d.List(); len(got) != 2 || got[0] != "a/a" {
		t.Fatalf("List = %v", got)
	}
	d.Delete("a/b")
	if _, err := d.Read("a/b"); err == nil {
		t.Fatal("deleted file still readable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRead on missing file did not panic")
		}
	}()
	d.MustRead("gone")
}

func TestSizeOf(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{"abc", 3},
		{[]byte{1, 2}, 2},
		{int64(1), 8},
		{int32(1), 4},
		{true, 1},
		{[]uint32{1, 2, 3}, 12},
		{[]string{"ab", "c"}, 11},
		{struct{}{}, 16}, // unknown: conservative flat cost
	}
	for _, c := range cases {
		if got := sizeOf(c.v); got != c.want {
			t.Errorf("sizeOf(%T) = %d, want %d", c.v, got, c.want)
		}
	}
}

type sized struct{ n int }

func (s sized) SizeBytes() int { return s.n }

func TestSizeOfSized(t *testing.T) {
	if sizeOf(sized{n: 99}) != 99 {
		t.Fatal("Sized not honoured")
	}
}

func TestPipelineAggregation(t *testing.T) {
	p := NewPipeline("test", tinyCluster())
	in := wcInput("a b", "b c c")
	r1, err := p.Run(Config{Name: "first"}, in, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(Config{Name: "second"}, r1.Output, IdentityMapper, FirstValue{}); err != nil {
		t.Fatal(err)
	}
	if len(p.Stages()) != 2 {
		t.Fatalf("stages = %d", len(p.Stages()))
	}
	if p.TotalShuffleRecords() != r1.Metrics.ShuffleRecords+int64(len(r1.Output)) {
		t.Fatal("shuffle records not aggregated")
	}
	if p.StageTime("first") <= 0 || p.StageTime("missing") != 0 {
		t.Fatal("StageTime wrong")
	}
	if p.TotalSimulatedTime() < p.StageTime("first") {
		t.Fatal("total below stage")
	}
	if !strings.Contains(p.Report(), "pipeline test") {
		t.Fatal("report missing name")
	}
	if p.MaxLoadImbalance() < 1.0 {
		t.Fatalf("MaxLoadImbalance = %v", p.MaxLoadImbalance())
	}
}

func TestPipelineCounter(t *testing.T) {
	p := NewPipeline("c", tinyCluster())
	mapper := MapFunc(func(ctx *Context, kv KV) {
		ctx.Inc("n", 2)
		ctx.Emit(kv.Key, kv.Value)
	})
	if _, err := p.Run(Config{Name: "j"}, wcInput("a"), mapper, nil); err != nil {
		t.Fatal(err)
	}
	if p.Counter("n") != 2 {
		t.Fatalf("Counter = %d", p.Counter("n"))
	}
}
