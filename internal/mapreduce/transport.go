package mapreduce

import (
	"fmt"

	"fsjoin/internal/spill"
)

// This file defines the transport seam of the engine: the map→reduce
// hand-off (and, for distributed runs, the reduce-output hand-off) sits
// behind the Transport interface so the same job logic drives both the
// historical in-process in-memory path and the multi-process filesystem
// shuffle (DESIGN.md §15). The default — Config.Runtime left zero — is
// MemoryTransport, which preserves the engine's original behaviour
// byte-for-byte: each map task's pre-partitioned, spill-aware shuffleSink
// is handed to the reduce phase directly.

// Transport counter names. Supervised multi-process runs report them
// through fsjoin.Stats; chaos-injected transport faults (FaultWorkerLoss,
// FaultRedeliver) record the same names in the job counters.
const (
	// CounterHeartbeats counts worker heartbeats the supervisor received.
	CounterHeartbeats = "transport.heartbeats"
	// CounterWorkerDeaths counts workers declared dead (heartbeat timeout,
	// control-connection EOF, or wait failure).
	CounterWorkerDeaths = "transport.worker.deaths"
	// CounterTasksReassigned counts task leases granted to a new worker
	// after the previous holder died or stalled past its deadline.
	CounterTasksReassigned = "transport.tasks.reassigned"
	// CounterPartitionsRedelivered counts partition deliveries that
	// duplicated an already-committed generation (idempotent delivery).
	CounterPartitionsRedelivered = "transport.partitions.redelivered"
)

// Runtime selects the execution substrate for a job: the shuffle transport
// and, for multi-process runs, the task executor that leases tasks from a
// supervisor. The zero value is the in-process engine with the in-memory
// transport — the default and the fastest path.
type Runtime struct {
	// Transport carries map output to the reduce phase; nil means the
	// in-memory transport.
	Transport Transport
	// Executor, when non-nil, switches the job to the distributed SPMD
	// path: the process executes only the tasks its executor leases, all
	// task artifacts flow through the (then mandatory filesystem)
	// transport, and every participant assembles the identical Result
	// after each phase barrier.
	Executor Executor
}

// TransportSpec identifies one job execution to a Transport. Every SPMD
// participant opens the same sequence of specs, which is what lets a
// filesystem transport lay out one stage directory per job without any
// coordination beyond determinism.
type TransportSpec struct {
	// Job is the job name (Config.Name).
	Job string
	// MapTasks and ReduceTasks are the resolved task counts.
	MapTasks    int
	ReduceTasks int
}

// fingerprint is the validation string written into transport frames; a
// reader that opens a frame from a different job shape fails fast instead
// of decoding garbage.
func (s TransportSpec) fingerprint() string {
	return fmt.Sprintf("%s|m%d|r%d", s.Job, s.MapTasks, s.ReduceTasks)
}

// Transport opens per-job transports. Implementations must allow the same
// Transport value to be shared by every stage of a pipeline (Open is
// called once per stage, in deterministic order).
type Transport interface {
	Open(spec TransportSpec) (JobTransport, error)
}

// CommitInfo reports what a commit did.
type CommitInfo struct {
	// Redelivered is true when the commit duplicated partitions that a
	// previous complete commit of the same task already delivered.
	Redelivered bool
	// Partitions is the number of reduce partitions the commit carried
	// (1 for reduce-output commits).
	Partitions int
}

// TaskMeta travels with a committed task: the measured facts the driver
// needs to assemble Metrics and Counters without having executed the task
// itself. The in-memory transport ignores it (the local engine measures
// in place).
type TaskMeta struct {
	// Records and Bytes are the task's shuffle (map) or fetched-input
	// (reduce) totals.
	Records int64 `json:"records,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	// Groups is the reduce task's key-group count.
	Groups int64 `json:"groups,omitempty"`
	// TaskNanos is the measured task execution time.
	TaskNanos int64 `json:"task_nanos,omitempty"`
	// GroupSpillNanos is the reduce task's external-memory charge for
	// oversized key groups (cost model).
	GroupSpillNanos int64 `json:"group_spill_nanos,omitempty"`
	// Spill is the winning map attempt's out-of-core shuffle accounting.
	Spill spill.Stats `json:"spill,omitempty"`
	// Counters is the task-local counter snapshot (distributed runs only;
	// the local engine flushes counters into the job directly).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// JobTransport is one job's shuffle channel. The local engine uses
// CommitMap / FetchPartition / ReleasePartition / Close; the distributed
// path additionally publishes reduce outputs and per-task metadata so a
// non-executing participant can assemble the full Result.
//
// Delivery is idempotent: committing a task that was already committed
// must replace or duplicate it harmlessly (the engine's tasks are
// deterministic, so any complete commit of a task carries identical
// bytes) and report Redelivered. Redeliver republishes an existing
// commit as a newer generation — the primitive behind the chaos
// harness's worker-loss and redelivery fault kinds.
type JobTransport interface {
	// CommitMap publishes map task t's partitioned shuffle output. The
	// transport takes ownership of the sink: in-memory it is held live
	// for the reduce phase; a serialising transport drains it into its
	// frames and closes it.
	CommitMap(t int, sink *shuffleSink, meta TaskMeta) (CommitInfo, error)
	// Redeliver republishes task t's committed partitions as a newer
	// generation, simulating (or performing) a reassigned execution's
	// duplicate delivery.
	Redeliver(t int) (CommitInfo, error)
	// FetchPartition streams map task t's partition r in committed order,
	// reporting the merge fan-in that produced it (spill accounting).
	FetchPartition(t, r int, emit func(key string, value any, bytes int64)) (ways int, err error)
	// ReleasePartition reclaims partition (t, r) once a reduce task has
	// consumed it. Transports that must keep partitions for possible
	// redelivery treat it as a no-op.
	ReleasePartition(t, r int)
	// MapMeta returns the meta committed with map task t.
	MapMeta(t int) (TaskMeta, error)
	// CommitOutput publishes task t's final output (reduce output, or map
	// output for map-only jobs).
	CommitOutput(t int, out []KV, meta TaskMeta) (CommitInfo, error)
	// FetchOutput returns task t's committed output and meta.
	FetchOutput(t int) ([]KV, TaskMeta, error)
	// Close releases everything the job still holds. Abort paths call it
	// with partitions unconsumed.
	Close()
}

// MemoryTransport returns the default in-process transport: committed
// sinks are held live and the reduce phase drains them directly, exactly
// the engine's historical hand-off.
func MemoryTransport() Transport { return memTransport{} }

type memTransport struct{}

// Open implements Transport.
func (memTransport) Open(spec TransportSpec) (JobTransport, error) {
	return &memJob{sinks: make([]*shuffleSink, spec.MapTasks), reducers: spec.ReduceTasks}, nil
}

// memJob holds one job's committed sinks. Not safe for cross-process use;
// the distributed path requires a filesystem transport.
type memJob struct {
	sinks    []*shuffleSink
	reducers int
}

// CommitMap implements JobTransport by keeping the sink live. A repeated
// commit of the same task replaces the previous sink (newest wins).
func (j *memJob) CommitMap(t int, sink *shuffleSink, meta TaskMeta) (CommitInfo, error) {
	info := CommitInfo{Partitions: j.reducers}
	if prev := j.sinks[t]; prev != nil {
		info.Redelivered = true
		if prev != sink {
			prev.close()
		}
	}
	j.sinks[t] = sink
	return info, nil
}

// Redeliver implements JobTransport. In memory the committed sink already
// is the newest generation, so redelivery is the identity — which is the
// idempotence contract the fault kinds exist to exercise.
func (j *memJob) Redeliver(t int) (CommitInfo, error) {
	if j.sinks[t] == nil {
		return CommitInfo{}, fmt.Errorf("mapreduce: redeliver of uncommitted map task %d", t)
	}
	return CommitInfo{Redelivered: true, Partitions: j.reducers}, nil
}

// FetchPartition implements JobTransport.
func (j *memJob) FetchPartition(t, r int, emit func(key string, value any, bytes int64)) (int, error) {
	return j.sinks[t].drain(r, emit)
}

// ReleasePartition implements JobTransport.
func (j *memJob) ReleasePartition(t, r int) { j.sinks[t].release(r) }

// MapMeta implements JobTransport; the in-memory engine measures tasks in
// place and never stores metas.
func (j *memJob) MapMeta(t int) (TaskMeta, error) {
	return TaskMeta{}, fmt.Errorf("mapreduce: memory transport keeps no task metas")
}

// CommitOutput implements JobTransport; the local engine keeps reduce
// outputs in process instead of publishing them.
func (j *memJob) CommitOutput(t int, out []KV, meta TaskMeta) (CommitInfo, error) {
	return CommitInfo{}, fmt.Errorf("mapreduce: memory transport does not publish outputs")
}

// FetchOutput implements JobTransport.
func (j *memJob) FetchOutput(t int) ([]KV, TaskMeta, error) {
	return nil, TaskMeta{}, fmt.Errorf("mapreduce: memory transport does not publish outputs")
}

// Close implements JobTransport, reclaiming surviving sinks' spill files.
func (j *memJob) Close() {
	for i, s := range j.sinks {
		s.close()
		j.sinks[i] = nil
	}
}

// injectDeliveryFault realises a scheduled transport fault for map task t
// right after its commit: the committed partitions are delivered again
// under a newer generation, proving the reduce phase immune to duplicate
// hand-offs. FaultWorkerLoss additionally models the re-execution path
// (a dead worker's task re-run by a survivor), so it also counts a
// reassignment. Both kinds leave output byte-identical by construction —
// that is the contract the chaos schedules verify.
func injectDeliveryFault(cfg Config, counters *Counters, jt JobTransport, t int) error {
	f := cfg.decideFault(PhaseMap, t, DeliveryAttempt)
	if !isDeliveryKind(f.Kind) {
		return nil
	}
	info, err := jt.Redeliver(t)
	if err != nil {
		return fmt.Errorf("injected %s: %w", f.Kind, err)
	}
	countDeliveryFault(f, counters, info.Partitions)
	return nil
}

// countDeliveryFault records one realised transport fault's counters. The
// distributed path counts into the task-local set before snapshotting the
// meta (so every participant assembles identical counters) and performs
// the redelivery after the commit; the local path does both in
// injectDeliveryFault.
func countDeliveryFault(f Fault, counters *Counters, partitions int) {
	counters.Inc(counterInjectedPrefix+f.Kind.String(), 1)
	counters.Inc(CounterPartitionsRedelivered, int64(partitions))
	if f.Kind == FaultWorkerLoss {
		counters.Inc(CounterTasksReassigned, 1)
	}
}

// mergeTaskCounters folds one task's counter snapshot into the job
// counters, routing the engine's max-valued counters through Max so a
// distributed merge agrees with the local engine's accounting.
func mergeTaskCounters(dst *Counters, snap map[string]int64) {
	for k, v := range snap {
		switch k {
		case CounterSpillMergeWays, CounterShufflePeak:
			dst.Max(k, v)
		default:
			dst.Inc(k, v)
		}
	}
}
