package mapreduce

import (
	"fmt"

	"fsjoin/internal/spill"
)

// shuffleSink is one map task's pre-partitioned output: a spill.Buffer
// with one partition per reduce task, filled at Emit time through the job
// partitioner (map-side pre-partitioning). When the job's combiner is a
// Folder, emissions fold into per-key accumulator slots as they arrive, so
// the separate combine pass disappears entirely. Under a memory budget the
// buffer sorts and spills runs to disk and the reduce-side drain merges
// them back (DESIGN.md §8); with no budget it is a pure in-memory buffer,
// the engine's historical behaviour.
//
// Record order within a partition equals the order a global partition pass
// would produce: without spilling, the restriction of the task's emission
// order to one partition; with spilling, the key-sorted merge of that
// order, which the reduce phase's group-and-sort normalises to the same
// downstream bytes.
type shuffleSink struct {
	part     func(key string, reducers int) int
	reducers int
	folder   Folder
	buf      *spill.Buffer
	// prior carries the spill activity of a sink this one replaced (the
	// pre-combine sink, whose runs would otherwise vanish from the
	// counters when combineSink swaps it out).
	prior spill.Stats
}

func newShuffleSink(part func(string, int) int, reducers int, folder Folder, budget int64, dir string, cancel func() error) *shuffleSink {
	s := &shuffleSink{part: part, reducers: reducers, folder: folder}
	sc := spill.Config{
		Parts:  reducers,
		Budget: budget,
		Dir:    dir,
		Size:   func(key string, v any) int64 { return int64(len(key) + sizeOf(v) + 8) },
		Cancel: cancel,
	}
	if folder != nil {
		sc.Fold = folder.Fold
	}
	s.buf = spill.NewBuffer(sc)
	return s
}

// add routes one emission to its reduce partition, folding into an existing
// accumulator slot when a Folder combiner is active. A spill failure (disk
// full, unwritable dir) panics like any task fault, so the attempt fails
// and the engine's retry machinery takes over.
func (s *shuffleSink) add(key string, value any) {
	r := s.part(key, s.reducers)
	if r < 0 || r >= s.reducers {
		panic(&enginePanic{err: fmt.Errorf("partitioner returned %d for %d reducers", r, s.reducers)})
	}
	if err := s.buf.Add(r, key, value); err != nil {
		panic(&enginePanic{err: fmt.Errorf("shuffle spill: %w", err)})
	}
}

// drain replays one partition's records with per-record accounted sizes,
// merging spilled runs back in; it returns the merge fan-in (≤ 1 when the
// partition never touched disk). Concurrent drains of distinct partitions
// are safe.
func (s *shuffleSink) drain(r int, emit func(key string, value any, bytes int64)) (int, error) {
	return s.buf.Drain(r, emit)
}

// totals returns the task's shuffle record and byte counts.
func (s *shuffleSink) totals() (records, bytes int64, err error) {
	return s.buf.Totals()
}

// release drops one consumed partition so its memory (and, once all
// partitions are consumed, its spill files) is reclaimed before the whole
// reduce phase finishes. Distinct reduce workers release distinct
// partitions, so concurrent calls do not race.
func (s *shuffleSink) release(r int) {
	s.buf.Release(r)
}

// close removes any spill files. Used for sinks that lose their attempt
// (retry, lost speculation) or whose job aborts; release covers the happy
// path.
func (s *shuffleSink) close() {
	if s != nil {
		s.buf.Close()
	}
}

// stats exposes the task's spill activity: the underlying buffer's plus
// any replaced sink's (sums for runs/bytes, maxes for the watermarks).
func (s *shuffleSink) stats() spill.Stats {
	st := s.buf.Stats()
	st.Runs += s.prior.Runs
	st.SpilledBytes += s.prior.SpilledBytes
	if s.prior.PeakBytes > st.PeakBytes {
		st.PeakBytes = s.prior.PeakBytes
	}
	if s.prior.MergeWays > st.MergeWays {
		st.MergeWays = s.prior.MergeWays
	}
	return st
}

// combineSink runs a non-folding combiner over one map task's
// pre-partitioned output, grouping each partition's records per key in
// drain order and routing the combined records through a fresh sink.
// Combiners follow the standard key-preservation contract (output keys
// equal input keys), which keeps combined records in the partitions and
// relative order a post-combine partition pass would produce; a
// key-rewriting combiner is still routed correctly because the replacement
// sink re-partitions every emission. The source sink's spill files are
// removed as soon as it is replaced; if the combiner panics mid-pass the
// half-built replacement is cleaned up and the source stays owned by the
// attempt context, which the retry machinery discards.
func combineSink(cfg Config, mapCtx *Context, combiner Reducer, counters *Counters) *shuffleSink {
	src := mapCtx.shuffle
	dst := newShuffleSink(src.part, src.reducers, nil, cfg.memoryBudget(), cfg.spillDir(), cfg.cancelCheck())
	done := false
	defer func() {
		if !done {
			dst.close()
		}
	}()
	cctx := &Context{TaskID: mapCtx.TaskID, Job: cfg, counters: counters, shuffle: dst}
	if s, ok := combiner.(Setupper); ok {
		s.Setup(cctx)
	}
	for r := 0; r < src.reducers; r++ {
		grouped := make(map[string][]any)
		var order []string
		if _, err := src.drain(r, func(key string, v any, _ int64) {
			vs, seen := grouped[key]
			if !seen {
				order = append(order, key)
			}
			grouped[key] = append(vs, v)
		}); err != nil {
			panic(&enginePanic{err: fmt.Errorf("combine fetch: %w", err)})
		}
		for _, k := range order {
			combiner.Reduce(cctx, k, grouped[k])
		}
	}
	if c, ok := combiner.(Cleanupper); ok {
		c.Cleanup(cctx)
	}
	mapCtx.absorb(cctx)
	dst.prior = src.stats()
	src.close()
	done = true
	return dst
}
