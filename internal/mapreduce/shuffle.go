package mapreduce

import "fmt"

// shuffleSink is one map task's pre-partitioned output: one KV buffer per
// reduce task, filled at Emit time through the job partitioner (map-side
// pre-partitioning). When the job's combiner is a Folder, emissions fold
// into per-key accumulator slots as they arrive, so the separate combine
// pass disappears entirely.
//
// Record order within a partition equals the order a global partition pass
// would produce: the restriction of the task's emission order to one
// partition is exactly the per-partition emission order.
type shuffleSink struct {
	part     func(key string, reducers int) int
	reducers int
	parts    [][]KV
	sizes    [][]int32 // filled by computeSizes once the task finishes
	folder   Folder
	slots    []map[string]int // per-partition key -> index in parts[r]
}

func newShuffleSink(part func(string, int) int, reducers int, folder Folder) *shuffleSink {
	s := &shuffleSink{
		part:     part,
		reducers: reducers,
		parts:    make([][]KV, reducers),
		folder:   folder,
	}
	if folder != nil {
		s.slots = make([]map[string]int, reducers)
	}
	return s
}

// add routes one emission to its reduce partition, folding into an existing
// accumulator slot when a Folder combiner is active.
func (s *shuffleSink) add(key string, value any) {
	r := s.part(key, s.reducers)
	if r < 0 || r >= s.reducers {
		panic(fmt.Sprintf("mapreduce: partitioner returned %d for %d reducers", r, s.reducers))
	}
	if s.folder != nil {
		slot := s.slots[r]
		if slot == nil {
			slot = make(map[string]int)
			s.slots[r] = slot
		}
		if i, ok := slot[key]; ok {
			s.parts[r][i].Value = s.folder.Fold(s.parts[r][i].Value, value)
			return
		}
		slot[key] = len(s.parts[r])
	}
	s.parts[r] = append(s.parts[r], KV{Key: key, Value: value})
}

// computeSizes sizes every record exactly once and returns the task's total
// record and byte counts; the reduce phase reuses the per-record sizes
// instead of re-deriving them.
func (s *shuffleSink) computeSizes() (records, bytes int64) {
	s.sizes = make([][]int32, s.reducers)
	for r, pkvs := range s.parts {
		sz := make([]int32, len(pkvs))
		for i, kv := range pkvs {
			b := int32(kvBytes(kv))
			sz[i] = b
			bytes += int64(b)
		}
		records += int64(len(pkvs))
		s.sizes[r] = sz
	}
	return records, bytes
}

// release drops one consumed partition so its memory is reclaimable before
// the whole reduce phase finishes. Distinct reduce workers touch distinct
// slice elements, so concurrent release calls do not race.
func (s *shuffleSink) release(r int) {
	s.parts[r] = nil
	s.sizes[r] = nil
}

// combineSink runs a non-folding combiner over one map task's
// pre-partitioned output, grouping each partition's records per key in
// first-appearance order and routing the combined records through a fresh
// sink. Combiners follow the standard key-preservation contract (output
// keys equal input keys), which keeps combined records in the partitions
// and relative order a post-combine partition pass would produce; a
// key-rewriting combiner is still routed correctly because the replacement
// sink re-partitions every emission.
func combineSink(cfg Config, mapCtx *Context, combiner Reducer, counters *Counters) *shuffleSink {
	src := mapCtx.shuffle
	dst := newShuffleSink(src.part, src.reducers, nil)
	cctx := &Context{TaskID: mapCtx.TaskID, Job: cfg, counters: counters, shuffle: dst}
	if s, ok := combiner.(Setupper); ok {
		s.Setup(cctx)
	}
	for r := 0; r < src.reducers; r++ {
		pkvs := src.parts[r]
		if len(pkvs) == 0 {
			continue
		}
		grouped := make(map[string][]any, len(pkvs)/2+1)
		order := make([]string, 0, len(pkvs)/2+1)
		for _, kv := range pkvs {
			vs, seen := grouped[kv.Key]
			if !seen {
				order = append(order, kv.Key)
			}
			grouped[kv.Key] = append(vs, kv.Value)
		}
		for _, k := range order {
			combiner.Reduce(cctx, k, grouped[k])
		}
	}
	if c, ok := combiner.(Cleanupper); ok {
		c.Cleanup(cctx)
	}
	mapCtx.absorb(cctx)
	return dst
}
