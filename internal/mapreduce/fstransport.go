package mapreduce

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"fsjoin/internal/spill"
)

// FSTransport is the filesystem shuffle transport (DESIGN.md §15): every
// committed task becomes one frame file under a shared root, written with
// the spill codec's value encoding, a per-partition CRC32 and a job
// fingerprint, and published atomically (write-temp → fsync → rename —
// the probeindex WAL discipline). Commits are generation-stamped and
// reads are newest-complete-wins, so duplicate deliveries from
// reassigned or raced workers are harmless by construction: tasks are
// deterministic, hence every complete generation of a task carries
// identical bytes.
//
// One FSTransport value serves a whole pipeline: each stage's Open gets
// the next stage sequence number, and because every SPMD participant
// replays the same stages in the same order, participants agree on stage
// directories with no coordination beyond determinism.
type FSTransport struct {
	root string
	keep bool
	seq  atomic.Int64
}

// NewFSTransport returns a transport rooted at dir. keep leaves committed
// frames on disk when a job transport closes — required for multi-process
// runs, where partitions must outlive any single participant and the
// driver removes the root when the run ends; in-process uses pass false
// and each job cleans up after itself.
func NewFSTransport(dir string, keep bool) *FSTransport {
	return &FSTransport{root: dir, keep: keep}
}

// Open implements Transport.
func (f *FSTransport) Open(spec TransportSpec) (JobTransport, error) {
	seq := f.seq.Add(1)
	dir := filepath.Join(f.root, fmt.Sprintf("s%03d-%s", seq, sanitizeJobName(spec.Job)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &fsJob{
		dir:  dir,
		keep: f.keep,
		spec: spec,
		fp:   spec.fingerprint(),
	}, nil
}

// sanitizeJobName makes a job name safe as a path component.
func sanitizeJobName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// Frame file layout. All integers are uvarints unless noted; CRCs are
// 4-byte little-endian IEEE CRC32 over the preceding blob.
//
//	magic "FSSHUF1\x00"
//	fpLen fp                      job fingerprint (name|mN|rN)
//	kind                          0 = map partitions, 1 = task output
//	task                          task index
//	parts                         partition count (1 for outputs)
//	per partition: count ways blobLen blob crc32
//	metaLen metaJSON crc32
//	magic "FSSHUFE\x00"
//
// A record inside a blob is klen key vlen value, with value in the spill
// codec's tag+payload encoding. Record byte accounting is recomputed at
// fetch with the engine's size function, so frames carry no sizes.
const (
	fsFrameMagic   = "FSSHUF1\x00"
	fsFrameTrailer = "FSSHUFE\x00"
	fsKindMap      = 0
	fsKindOutput   = 1
)

// fsJob is one job's window onto the shared transport directory.
type fsJob struct {
	dir  string
	keep bool
	spec TransportSpec
	fp   string

	mu      sync.Mutex
	mapIdx  map[int]*fsFrame // validated newest frame per map task
	outIdx  map[int]*fsFrame // validated newest frame per output task
	genSeen int64            // bumps per commit for unique temp names
}

// fsPart is one partition's location inside a validated frame.
type fsPart struct {
	off   int64
	blen  int64
	count int64
	ways  int64
	crc   uint32
}

// fsFrame is a validated frame file's index.
type fsFrame struct {
	path  string
	parts []fsPart
	meta  TaskMeta
}

// taskFileName names one committed generation. gen orders deliveries
// (newest-complete-wins); pid breaks ties between racing processes —
// safely, because racing commits of one task are byte-identical.
func taskFileName(kind byte, task int, gen int64, pid int) string {
	prefix := "m"
	if kind == fsKindOutput {
		prefix = "o"
	}
	return fmt.Sprintf("%s%d.g%d-%d", prefix, task, gen, pid)
}

// parseGen extracts (gen, pid) from a task file name, reporting ok=false
// for temp files and aliens.
func parseGen(name string) (gen, pid int64, ok bool) {
	i := strings.IndexByte(name, 'g')
	if i < 0 || !strings.Contains(name[:i], ".") {
		return 0, 0, false
	}
	rest := name[i+1:]
	j := strings.IndexByte(rest, '-')
	if j < 0 {
		return 0, 0, false
	}
	g, err1 := strconv.ParseInt(rest[:j], 10, 64)
	p, err2 := strconv.ParseInt(rest[j+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return g, p, true
}

// CommitMap implements JobTransport: the sink is drained into a frame —
// one blob per reduce partition, recording the drain's merge fan-in so
// reduce-side spill accounting is identical to the in-memory path — and
// the transport owns (closes) the sink from here.
func (j *fsJob) CommitMap(t int, sink *shuffleSink, meta TaskMeta) (CommitInfo, error) {
	defer sink.close()
	parts := make([]fsPartData, j.spec.ReduceTasks)
	for r := 0; r < j.spec.ReduceTasks; r++ {
		var encErr error
		ways, err := sink.drain(r, func(key string, v any, _ int64) {
			if encErr != nil {
				return
			}
			parts[r].blob = binary.AppendUvarint(parts[r].blob, uint64(len(key)))
			parts[r].blob = append(parts[r].blob, key...)
			val, err := spill.AppendEncoded(nil, v)
			if err != nil {
				encErr = err
				return
			}
			parts[r].blob = binary.AppendUvarint(parts[r].blob, uint64(len(val)))
			parts[r].blob = append(parts[r].blob, val...)
			parts[r].count++
		})
		if err == nil {
			err = encErr
		}
		if err != nil {
			return CommitInfo{}, fmt.Errorf("transport: commit map task %d: %w", t, err)
		}
		parts[r].ways = int64(ways)
	}
	return j.commitFrame(fsKindMap, t, parts, meta)
}

// CommitOutput implements JobTransport.
func (j *fsJob) CommitOutput(t int, out []KV, meta TaskMeta) (CommitInfo, error) {
	var p fsPartData
	for _, kv := range out {
		p.blob = binary.AppendUvarint(p.blob, uint64(len(kv.Key)))
		p.blob = append(p.blob, kv.Key...)
		val, err := spill.AppendEncoded(nil, kv.Value)
		if err != nil {
			return CommitInfo{}, fmt.Errorf("transport: commit output %d: %w", t, err)
		}
		p.blob = binary.AppendUvarint(p.blob, uint64(len(val)))
		p.blob = append(p.blob, val...)
		p.count++
	}
	return j.commitFrame(fsKindOutput, t, []fsPartData{p}, meta)
}

// fsPartData is one partition being assembled for a commit.
type fsPartData struct {
	blob  []byte
	count int64
	ways  int64
}

// commitFrame encodes and atomically publishes one frame as the task's
// next generation.
func (j *fsJob) commitFrame(kind byte, t int, parts []fsPartData, meta TaskMeta) (CommitInfo, error) {
	buf := []byte(fsFrameMagic)
	buf = binary.AppendUvarint(buf, uint64(len(j.fp)))
	buf = append(buf, j.fp...)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(t))
	buf = binary.AppendUvarint(buf, uint64(len(parts)))
	for _, p := range parts {
		buf = binary.AppendUvarint(buf, uint64(p.count))
		buf = binary.AppendUvarint(buf, uint64(p.ways))
		buf = binary.AppendUvarint(buf, uint64(len(p.blob)))
		buf = append(buf, p.blob...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(p.blob))
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return CommitInfo{}, fmt.Errorf("transport: meta: %w", err)
	}
	buf = binary.AppendUvarint(buf, uint64(len(mj)))
	buf = append(buf, mj...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(mj))
	buf = append(buf, fsFrameTrailer...)

	gen, redelivered := j.nextGen(kind, t)
	pid := os.Getpid()
	j.mu.Lock()
	j.genSeen++
	tmpSeq := j.genSeen
	j.mu.Unlock()
	tmp := filepath.Join(j.dir, fmt.Sprintf(".tmp-%d-%d-%d", pid, t, tmpSeq))
	if err := writeFileSync(tmp, buf); err != nil {
		return CommitInfo{}, fmt.Errorf("transport: %w", err)
	}
	final := filepath.Join(j.dir, taskFileName(kind, t, gen, pid))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return CommitInfo{}, fmt.Errorf("transport: %w", err)
	}
	syncDir(j.dir)
	return CommitInfo{Redelivered: redelivered, Partitions: len(parts)}, nil
}

// writeFileSync writes data and fsyncs before closing — the frame must be
// durable before the rename publishes it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename survives a crash. Best-effort:
// some filesystems refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// nextGen picks the next generation number for a task and reports whether
// a complete generation already exists (the commit is a redelivery).
func (j *fsJob) nextGen(kind byte, t int) (int64, bool) {
	var max int64
	for _, c := range j.candidates(kind, t) {
		if c.gen > max {
			max = c.gen
		}
	}
	return max + 1, max > 0
}

// fsCandidate is one on-disk generation of a task.
type fsCandidate struct {
	path string
	gen  int64
	pid  int64
}

// candidates lists a task's committed generations, newest first.
func (j *fsJob) candidates(kind byte, t int) []fsCandidate {
	prefix := taskPrefix(kind, t)
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil
	}
	var out []fsCandidate
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		gen, pid, ok := parseGen(name)
		if !ok {
			continue
		}
		out = append(out, fsCandidate{path: filepath.Join(j.dir, name), gen: gen, pid: pid})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].gen != out[b].gen {
			return out[a].gen > out[b].gen
		}
		return out[a].pid > out[b].pid
	})
	return out
}

// taskPrefix is the file-name prefix shared by all of a task's
// generations, dot-terminated so task 1 does not match task 12.
func taskPrefix(kind byte, t int) string {
	if kind == fsKindOutput {
		return fmt.Sprintf("o%d.", t)
	}
	return fmt.Sprintf("m%d.", t)
}

// frame returns the validated newest complete frame for a task,
// falling back to older generations when the newest fails validation
// (newest-complete-wins). The parsed index is cached: once a complete
// generation is visible its content is final — later generations are
// byte-identical by the determinism contract.
func (j *fsJob) frame(kind byte, t int) (*fsFrame, error) {
	j.mu.Lock()
	cache := &j.mapIdx
	if kind == fsKindOutput {
		cache = &j.outIdx
	}
	if *cache != nil {
		if fr, ok := (*cache)[t]; ok {
			j.mu.Unlock()
			return fr, nil
		}
	}
	j.mu.Unlock()
	var lastErr error
	for _, c := range j.candidates(kind, t) {
		fr, err := j.validateFrame(c.path, kind, t)
		if err != nil {
			lastErr = err
			continue
		}
		j.mu.Lock()
		if *cache == nil {
			*cache = make(map[int]*fsFrame)
		}
		(*cache)[t] = fr
		j.mu.Unlock()
		return fr, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("transport: no valid frame for task %d: %w", t, lastErr)
	}
	return nil, fmt.Errorf("transport: task %d has no committed frame", t)
}

// validateFrame reads one frame file end-to-end, verifying magic,
// fingerprint, structure, every CRC and the trailer, and returns its
// partition index.
func (j *fsJob) validateFrame(path string, kind byte, t int) (*fsFrame, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := &frameParser{data: data}
	if string(p.take(len(fsFrameMagic))) != fsFrameMagic {
		return nil, fmt.Errorf("%s: bad magic", path)
	}
	fp := string(p.take(int(p.uvarint())))
	if p.err == nil && fp != j.fp {
		return nil, fmt.Errorf("%s: fingerprint %q, want %q", path, fp, j.fp)
	}
	gotKind := p.take(1)
	if p.err == nil && gotKind[0] != kind {
		return nil, fmt.Errorf("%s: frame kind %d, want %d", path, gotKind[0], kind)
	}
	gotTask := p.uvarint()
	if p.err == nil && int(gotTask) != t {
		return nil, fmt.Errorf("%s: frame task %d, want %d", path, gotTask, t)
	}
	nparts := int(p.uvarint())
	wantParts := j.spec.ReduceTasks
	if kind == fsKindOutput {
		wantParts = 1
	}
	if p.err == nil && nparts != wantParts {
		return nil, fmt.Errorf("%s: %d partitions, want %d", path, nparts, wantParts)
	}
	fr := &fsFrame{path: path, parts: make([]fsPart, 0, nparts)}
	for r := 0; r < nparts && p.err == nil; r++ {
		count := p.uvarint()
		ways := p.uvarint()
		blen := p.uvarint()
		off := int64(p.pos)
		blob := p.take(int(blen))
		crc := p.u32()
		if p.err == nil && crc32.ChecksumIEEE(blob) != crc {
			return nil, fmt.Errorf("%s: partition %d CRC mismatch", path, r)
		}
		fr.parts = append(fr.parts, fsPart{off: off, blen: int64(blen), count: int64(count), ways: int64(ways), crc: crc})
	}
	mj := p.take(int(p.uvarint()))
	mcrc := p.u32()
	if p.err == nil && crc32.ChecksumIEEE(mj) != mcrc {
		return nil, fmt.Errorf("%s: meta CRC mismatch", path)
	}
	if p.err == nil && string(p.take(len(fsFrameTrailer))) != fsFrameTrailer {
		return nil, fmt.Errorf("%s: missing trailer (incomplete frame)", path)
	}
	if p.err == nil && p.pos != len(p.data) {
		return nil, fmt.Errorf("%s: %d trailing bytes", path, len(p.data)-p.pos)
	}
	if p.err != nil {
		return nil, fmt.Errorf("%s: %w", path, p.err)
	}
	if err := json.Unmarshal(mj, &fr.meta); err != nil {
		return nil, fmt.Errorf("%s: meta: %w", path, err)
	}
	return fr, nil
}

// frameParser is a bounds-checked cursor over a frame file.
type frameParser struct {
	data []byte
	pos  int
	err  error
}

func (p *frameParser) take(n int) []byte {
	if p.err != nil || n < 0 || p.pos+n > len(p.data) {
		if p.err == nil {
			p.err = fmt.Errorf("truncated frame at offset %d", p.pos)
		}
		return nil
	}
	b := p.data[p.pos : p.pos+n]
	p.pos += n
	return b
}

func (p *frameParser) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.data[p.pos:])
	if n <= 0 {
		p.err = fmt.Errorf("bad uvarint at offset %d", p.pos)
		return 0
	}
	p.pos += n
	return v
}

func (p *frameParser) u32() uint32 {
	b := p.take(4)
	if p.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// FetchPartition implements JobTransport: the partition blob is re-read
// from the committed frame, CRC-verified, decoded through the spill codec
// and emitted with byte accounting recomputed by the engine's size
// function — identical to what the in-memory sink reports.
func (j *fsJob) FetchPartition(t, r int, emit func(key string, value any, bytes int64)) (int, error) {
	fr, err := j.frame(fsKindMap, t)
	if err != nil {
		return 0, err
	}
	if r < 0 || r >= len(fr.parts) {
		return 0, fmt.Errorf("transport: partition %d out of range", r)
	}
	if err := emitBlob(fr, r, emit); err != nil {
		return 0, fmt.Errorf("transport: task %d partition %d: %w", t, r, err)
	}
	return int(fr.parts[r].ways), nil
}

// emitBlob preads one partition blob and streams its records.
func emitBlob(fr *fsFrame, r int, emit func(key string, value any, bytes int64)) error {
	part := fr.parts[r]
	if part.blen == 0 {
		return nil
	}
	f, err := os.Open(fr.path)
	if err != nil {
		return err
	}
	defer f.Close()
	blob := make([]byte, part.blen)
	if _, err := f.ReadAt(blob, part.off); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(blob) != part.crc {
		return fmt.Errorf("CRC mismatch on read")
	}
	p := &frameParser{data: blob}
	for i := int64(0); i < part.count; i++ {
		key := string(p.take(int(p.uvarint())))
		vb := p.take(int(p.uvarint()))
		if p.err != nil {
			return p.err
		}
		v, err := spill.DecodeEncoded(vb)
		if err != nil {
			return err
		}
		emit(key, v, int64(len(key)+sizeOf(v))+8)
	}
	if p.pos != len(p.data) {
		return fmt.Errorf("%d trailing bytes in partition blob", len(p.data)-p.pos)
	}
	return nil
}

// Redeliver implements JobTransport: the newest complete generation is
// re-published verbatim as the next generation — what a reassigned
// worker's re-execution would deliver, without re-executing.
func (j *fsJob) Redeliver(t int) (CommitInfo, error) {
	kind := byte(fsKindMap)
	fr, err := j.frame(kind, t)
	if err != nil {
		return CommitInfo{}, err
	}
	data, err := os.ReadFile(fr.path)
	if err != nil {
		return CommitInfo{}, fmt.Errorf("transport: %w", err)
	}
	gen, _ := j.nextGen(kind, t)
	pid := os.Getpid()
	j.mu.Lock()
	j.genSeen++
	tmpSeq := j.genSeen
	j.mu.Unlock()
	tmp := filepath.Join(j.dir, fmt.Sprintf(".tmp-%d-%d-%d", pid, t, tmpSeq))
	if err := writeFileSync(tmp, data); err != nil {
		return CommitInfo{}, fmt.Errorf("transport: %w", err)
	}
	final := filepath.Join(j.dir, taskFileName(kind, t, gen, pid))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return CommitInfo{}, fmt.Errorf("transport: %w", err)
	}
	syncDir(j.dir)
	return CommitInfo{Redelivered: true, Partitions: len(fr.parts)}, nil
}

// ReleasePartition implements JobTransport. Frames must outlive any one
// consumer (a reassigned reduce task may re-fetch), so release is a no-op;
// Close reclaims the stage directory.
func (j *fsJob) ReleasePartition(t, r int) {}

// MapMeta implements JobTransport.
func (j *fsJob) MapMeta(t int) (TaskMeta, error) {
	fr, err := j.frame(fsKindMap, t)
	if err != nil {
		return TaskMeta{}, err
	}
	return fr.meta, nil
}

// FetchOutput implements JobTransport.
func (j *fsJob) FetchOutput(t int) ([]KV, TaskMeta, error) {
	fr, err := j.frame(fsKindOutput, t)
	if err != nil {
		return nil, TaskMeta{}, err
	}
	var out []KV
	if err := emitBlob(fr, 0, func(key string, v any, _ int64) {
		out = append(out, KV{Key: key, Value: v})
	}); err != nil {
		return nil, TaskMeta{}, fmt.Errorf("transport: output %d: %w", t, err)
	}
	return out, fr.meta, nil
}

// Close implements JobTransport.
func (j *fsJob) Close() {
	j.mu.Lock()
	j.mapIdx, j.outIdx = nil, nil
	j.mu.Unlock()
	if !j.keep {
		os.RemoveAll(j.dir)
	}
}
