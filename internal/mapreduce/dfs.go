package mapreduce

import (
	"fmt"
	"sort"
	"sync"
)

// DFS is a tiny in-memory stand-in for HDFS: a named store for side data
// that jobs publish and later stages load in their setup hooks (the paper's
// ordering job writes the global order to HDFS; the filter job's setup loads
// it). It exists so drivers mirror the paper's job structure instead of
// passing Go values through closures.
type DFS struct {
	mu    sync.RWMutex
	files map[string]any
}

// NewDFS returns an empty store.
func NewDFS() *DFS { return &DFS{files: make(map[string]any)} }

// Write stores value under path, replacing any previous file.
func (d *DFS) Write(path string, value any) {
	d.mu.Lock()
	d.files[path] = value
	d.mu.Unlock()
}

// Read loads the file at path.
func (d *DFS) Read(path string) (any, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	return v, nil
}

// MustRead loads the file at path and panics when absent — for setup hooks
// whose missing input is a driver bug, not a runtime condition.
func (d *DFS) MustRead(path string) any {
	v, err := d.Read(path)
	if err != nil {
		panic(err)
	}
	return v
}

// Delete removes the file at path if present.
func (d *DFS) Delete(path string) {
	d.mu.Lock()
	delete(d.files, path)
	d.mu.Unlock()
}

// List returns all stored paths in sorted order.
func (d *DFS) List() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
