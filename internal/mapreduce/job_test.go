package mapreduce

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func tinyCluster() *Cluster {
	cl := DefaultCluster()
	cl.Nodes = 2
	return cl
}

// wordcount pieces used across tests.
type wcMapper struct{}

func (wcMapper) Map(ctx *Context, kv KV) {
	for _, w := range strings.Fields(kv.Value.(string)) {
		ctx.Emit(w, int64(1))
	}
}

type wcReducer struct{}

func (wcReducer) Reduce(ctx *Context, key string, values []any) {
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
}

func wcInput(lines ...string) []KV {
	kvs := make([]KV, len(lines))
	for i, l := range lines {
		kvs[i] = KV{Key: fmt.Sprint(i), Value: l}
	}
	return kvs
}

func runWC(t *testing.T, cfg Config, input []KV) map[string]int64 {
	t.Helper()
	res, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	for _, kv := range res.Output {
		out[kv.Key] = kv.Value.(int64)
	}
	return out
}

func TestWordCount(t *testing.T) {
	got := runWC(t, Config{Name: "wc", Cluster: tinyCluster()},
		wcInput("a b a", "b c", "a"))
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	got := runWC(t, Config{Name: "wc", Cluster: tinyCluster(), Combiner: wcReducer{}},
		wcInput("a b a", "b c", "a a a"))
	want := map[string]int64{"a": 5, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	input := wcInput("a a a a a a a a", "a a a a a a a a")
	plain, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(Config{Cluster: tinyCluster(), Combiner: wcReducer{}}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if combined.Metrics.ShuffleRecords >= plain.Metrics.ShuffleRecords {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			combined.Metrics.ShuffleRecords, plain.Metrics.ShuffleRecords)
	}
	if plain.Metrics.ShuffleRecords != 16 {
		t.Fatalf("plain shuffle records = %d, want 16", plain.Metrics.ShuffleRecords)
	}
}

func TestMapOnlyJob(t *testing.T) {
	res, err := Run(Config{Cluster: tinyCluster()}, wcInput("x y"), wcMapper{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 {
		t.Fatalf("map-only output = %d records", len(res.Output))
	}
	if res.Metrics.ReduceTasks != 0 {
		t.Fatalf("map-only job reports %d reduce tasks", res.Metrics.ReduceTasks)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	input := wcInput("d c b a", "a b c d", "d d a")
	var first []KV
	for i := 0; i < 5; i++ {
		res, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Output
			continue
		}
		if !reflect.DeepEqual(res.Output, first) {
			t.Fatalf("run %d produced different output order", i)
		}
	}
}

func TestKeysSortedWithinReducer(t *testing.T) {
	// With one reducer, output keys must be globally sorted.
	res, err := Run(Config{Cluster: tinyCluster(), ReduceTasks: 1},
		wcInput("zeta alpha mid", "beta omega"), wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i-1].Key > res.Output[i].Key {
			t.Fatalf("keys not sorted: %q > %q", res.Output[i-1].Key, res.Output[i].Key)
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	part := func(key string, n int) int { return 0 } // everything to reducer 0
	res, err := Run(Config{Cluster: tinyCluster(), Partitioner: part, ReduceTasks: 4},
		wcInput("a b c d e"), wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PerReduceRecords[0] != 5 {
		t.Fatalf("reducer 0 got %d records", res.Metrics.PerReduceRecords[0])
	}
	for i := 1; i < 4; i++ {
		if res.Metrics.PerReduceRecords[i] != 0 {
			t.Fatalf("reducer %d got records", i)
		}
	}
	if li := res.Metrics.LoadImbalance(); li != 4.0 {
		t.Fatalf("LoadImbalance = %v, want 4.0", li)
	}
}

func TestBadPartitionerRejected(t *testing.T) {
	part := func(key string, n int) int { return n } // out of range
	if _, err := Run(Config{Cluster: tinyCluster(), Partitioner: part},
		wcInput("a"), wcMapper{}, wcReducer{}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestNilMapperRejected(t *testing.T) {
	if _, err := Run(Config{}, nil, nil, wcReducer{}); err == nil {
		t.Fatal("nil mapper accepted")
	}
}

func TestCounters(t *testing.T) {
	mapper := MapFunc(func(ctx *Context, kv KV) {
		ctx.Inc("seen", 1)
		ctx.Emit(kv.Key, kv.Value)
	})
	res, err := Run(Config{Cluster: tinyCluster()}, wcInput("a", "b", "c"), mapper, FirstValue{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get("seen"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

// lifecycleRecorder checks Setup/Cleanup ordering per task.
type lifecycleRecorder struct {
	events *[]string
}

func (l lifecycleRecorder) Setup(ctx *Context)      { *l.events = append(*l.events, "setup") }
func (l lifecycleRecorder) Cleanup(ctx *Context)    { *l.events = append(*l.events, "cleanup") }
func (l lifecycleRecorder) Map(ctx *Context, kv KV) { *l.events = append(*l.events, "map") }

func TestMapperLifecycleHooks(t *testing.T) {
	var events []string
	_, err := Run(Config{Cluster: tinyCluster(), MapTasks: 1},
		wcInput("x", "y"), lifecycleRecorder{&events}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"setup", "map", "map", "cleanup"}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

// TestFoldingReducerEquivalence: a FoldingReducer job produces exactly what
// the plain Reduce path produces.
func TestFoldingReducerEquivalence(t *testing.T) {
	input := wcInput("a b a c", "c c b", "a a")
	folded, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, foldingWC{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(folded.Output, plain.Output) {
		t.Fatalf("fold path diverges: %v vs %v", folded.Output, plain.Output)
	}
}

type foldingWC struct{ wcReducer }

func (foldingWC) Fold(acc, v any) any                          { return acc.(int64) + v.(int64) }
func (foldingWC) FinishFold(ctx *Context, key string, acc any) { ctx.Emit(key, acc) }

// TestSplitInputProperty: splits cover the input exactly, in order.
func TestSplitInputProperty(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		in := make([]KV, int(n))
		for i := range in {
			in[i] = KV{Key: fmt.Sprint(i)}
		}
		p := int(parts%16) + 1
		splits := splitInput(in, p)
		if len(splits) != p {
			return false
		}
		var joined []KV
		for _, s := range splits {
			joined = append(joined, s...)
		}
		if len(joined) != len(in) {
			return false
		}
		for i := range joined {
			if joined[i].Key != in[i].Key {
				return false
			}
		}
		// Near-equal sizes: max-min ≤ 1.
		min, max := len(in), 0
		for _, s := range splits {
			if len(s) < min {
				min = len(s)
			}
			if len(s) > max {
				max = len(s)
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	res, err := Run(Config{Cluster: tinyCluster()}, wcInput("a b", "c"), wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.MapInputRecords != 2 {
		t.Errorf("MapInputRecords = %d", m.MapInputRecords)
	}
	if m.MapOutputRecords != 3 || m.ShuffleRecords != 3 {
		t.Errorf("map/shuffle records = %d/%d", m.MapOutputRecords, m.ShuffleRecords)
	}
	if m.OutputRecords != 3 {
		t.Errorf("OutputRecords = %d", m.OutputRecords)
	}
	var perReduce int64
	for _, n := range m.PerReduceRecords {
		perReduce += n
	}
	if perReduce != m.ShuffleRecords {
		t.Errorf("per-reduce records %d != shuffle %d", perReduce, m.ShuffleRecords)
	}
	if m.SimulatedTotalTime <= 0 {
		t.Error("no simulated time")
	}
}
