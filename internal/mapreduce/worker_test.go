package mapreduce

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// distFixture runs one wordcount distributed across nWorkers in-process
// WorkerClients plus the driver, all over a shared FSTransport, and
// returns the driver's Result. mutateWorker lets a test sabotage one
// worker's run (to simulate death) — it receives the worker id and the
// dialed client before the run starts.
func distFixture(t *testing.T, nWorkers int, input []KV, mutateWorker func(id int, w *WorkerClient)) (*Result, *Supervisor) {
	t.Helper()
	dir := t.TempDir()
	sup, err := StartSupervisor(SupervisorConfig{
		Dir:              dir,
		LeaseDuration:    300 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		ReassignBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Close)
	// Each participant opens its own transport over the shared directory,
	// as separate processes would: stage sequence numbers are per handle,
	// and keep=true stops an early finisher from deleting frames that
	// slower participants still read during Result assembly.
	runOne := func(id int, w *WorkerClient) (*Result, error) {
		cfg := Config{Name: "wc-dist", Cluster: tinyCluster(), MapTasks: 4}
		cfg.Runtime = Runtime{Transport: NewFSTransport(dir, true), Executor: w}
		return Run(cfg, input, wcMapper{}, wcReducer{})
	}
	var wg sync.WaitGroup
	for id := 0; id < nWorkers; id++ {
		w, err := DialWorker(sup.Addr(), id, "")
		if err != nil {
			t.Fatal(err)
		}
		if mutateWorker != nil {
			mutateWorker(id, w)
		}
		wg.Add(1)
		// Stagger the starts so grants land in worker order — the death
		// test relies on worker 0 holding the first lease.
		go func(id int, w *WorkerClient) {
			defer wg.Done()
			time.Sleep(time.Duration(id) * 10 * time.Millisecond)
			if _, err := runOne(id, w); err == nil {
				w.Close() // graceful exit only on success
			}
		}(id, w)
	}
	driver, err := DialWorker(sup.Addr(), driverWorkerID, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runOne(driverWorkerID, driver)
	if err != nil {
		t.Fatal(err)
	}
	driver.Close()
	wg.Wait()
	return res, sup
}

// TestDistributedMatchesLocal proves the SPMD path end to end in-process:
// the driver's assembled Result matches a plain local run's output and
// deterministic counters exactly.
func TestDistributedMatchesLocal(t *testing.T) {
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("d%d x y shared d%d", i%9, i%4))
	}
	input := wcInput(lines...)
	local, err := Run(Config{Name: "wc-dist", Cluster: tinyCluster(), MapTasks: 4}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	dist, sup := distFixture(t, 3, input, nil)
	if !reflect.DeepEqual(local.Output, dist.Output) {
		t.Fatalf("distributed output differs from local: %d vs %d records", len(local.Output), len(dist.Output))
	}
	if lc, dc := local.Counters.Snapshot(), dist.Counters.Snapshot(); !reflect.DeepEqual(lc, dc) {
		t.Fatalf("counters differ:\nlocal %v\ndist  %v", lc, dc)
	}
	if got := sup.Counters(); got.Heartbeats == 0 {
		t.Fatal("supervisor saw no heartbeats")
	}
	if dist.Metrics.ShuffleRecords != local.Metrics.ShuffleRecords ||
		dist.Metrics.ReduceInputGroups != local.Metrics.ReduceInputGroups {
		t.Fatalf("shuffle metrics differ: dist %+v local %+v",
			dist.Metrics.ShuffleRecords, local.Metrics.ShuffleRecords)
	}
}

// TestDistributedSurvivesWorkerDeath kills one worker's control
// connection mid-run (EOF without bye — exactly what SIGKILL produces)
// and proves the survivors absorb its leases: output stays byte-identical
// and the supervisor counts the death and the reassignments.
func TestDistributedSurvivesWorkerDeath(t *testing.T) {
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("d%d x y shared d%d", i%9, i%4))
	}
	input := wcInput(lines...)
	local, err := Run(Config{Name: "wc-dist", Cluster: tinyCluster(), MapTasks: 4}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 "dies" at its first map boundary: the boundary hook drops
	// both connections without a bye, so its granted lease is mid-flight.
	dist, sup := distFixture(t, 2, input, func(id int, w *WorkerClient) {
		if id != 0 {
			return
		}
		w.kill = killSpec{kind: "map", n: 1}
		// Replace the SIGKILL with a connection drop so the test stays
		// in-process: from the supervisor's view the two are identical.
		w.die = func() {
			w.conn.Close()
			w.beat.Close()
		}
	})
	if !reflect.DeepEqual(local.Output, dist.Output) {
		t.Fatal("output differs after worker death")
	}
	got := sup.Counters()
	if got.WorkerDeaths == 0 {
		t.Fatal("supervisor counted no worker deaths")
	}
	if got.TasksReassigned == 0 {
		t.Fatal("supervisor counted no task reassignments")
	}
}

// TestSupervisorRejectsDivergentPhase proves the SPMD announce contract:
// a participant announcing a different (job, phase, n) for the same
// sequence number aborts the run instead of corrupting it.
func TestSupervisorRejectsDivergentPhase(t *testing.T) {
	dir := t.TempDir()
	sup, err := StartSupervisor(SupervisorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	a, err := DialWorker(sup.Addr(), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialWorker(sup.Addr(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.BeginPhase("job-a", PhaseMap, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := b.BeginPhase("job-a", PhaseMap, 7); err == nil {
		t.Fatal("divergent task count accepted")
	}
}

// TestParseKillSpec pins the harness env contract.
func TestParseKillSpec(t *testing.T) {
	if k, err := parseKillSpec("handoff:2"); err != nil || k.kind != "handoff" || k.n != 2 {
		t.Fatalf("got %+v, %v", k, err)
	}
	if k, err := parseKillSpec(""); err != nil || k.kind != "" {
		t.Fatalf("empty spec: got %+v, %v", k, err)
	}
	for _, bad := range []string{"handoff", "handoff:", "handoff:0", ":3", "nonsense:1"} {
		if _, err := parseKillSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
