package mapreduce

import "encoding/binary"

// Key-encoding helpers. Keys are binary strings; encoding integers
// big-endian makes lexicographic key order equal numeric order, which keeps
// reducer iteration deterministic and meaningful.

// U32Key encodes a uint32 as a 4-byte big-endian key.
func U32Key(x uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], x)
	return string(b[:])
}

// DecodeU32Key decodes a key produced by U32Key.
func DecodeU32Key(k string) uint32 {
	return binary.BigEndian.Uint32([]byte(k))
}

// PairKey encodes an ordered pair of uint32s as an 8-byte key — used for
// (rid, rid) candidate-pair keys in verification jobs.
func PairKey(a, b uint32) string {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], a)
	binary.BigEndian.PutUint32(buf[4:], b)
	return string(buf[:])
}

// DecodePairKey decodes a key produced by PairKey.
func DecodePairKey(k string) (a, b uint32) {
	bs := []byte(k)
	return binary.BigEndian.Uint32(bs[:4]), binary.BigEndian.Uint32(bs[4:])
}
