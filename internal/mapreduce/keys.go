package mapreduce

import "encoding/binary"

// Key-encoding helpers. Keys are binary strings; encoding integers
// big-endian makes lexicographic key order equal numeric order, which keeps
// reducer iteration deterministic and meaningful.

// U32Key encodes a uint32 as a 4-byte big-endian key.
func U32Key(x uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], x)
	return string(b[:])
}

// DecodeU32Key decodes a key produced by U32Key.
func DecodeU32Key(k string) uint32 {
	return binary.BigEndian.Uint32([]byte(k))
}

// PairKey encodes an ordered pair of uint32s as an 8-byte key — used for
// (rid, rid) candidate-pair keys in verification jobs.
func PairKey(a, b uint32) string {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], a)
	binary.BigEndian.PutUint32(buf[4:], b)
	return string(buf[:])
}

// DecodePairKey decodes a key produced by PairKey.
func DecodePairKey(k string) (a, b uint32) {
	bs := []byte(k)
	return binary.BigEndian.Uint32(bs[:4]), binary.BigEndian.Uint32(bs[4:])
}

// OriginKey encodes an input-record key for a join that may read two
// relations whose rid spaces overlap. Origin 0 (R, and every self-join
// record) keeps the plain 4-byte rid key; other origins get the 8-byte
// (origin, rid) form. Map input keys are informational — splits are
// positional — but skip-mode quarantine reports quote them, so R#x and
// S#x must not collide (DESIGN.md §12).
func OriginKey(origin uint8, rid uint32) string {
	if origin == 0 {
		return U32Key(rid)
	}
	return PairKey(uint32(origin), rid)
}

// DecodeOriginKey decodes a key produced by OriginKey.
func DecodeOriginKey(k string) (origin uint8, rid uint32) {
	if len(k) == 4 {
		return 0, DecodeU32Key(k)
	}
	a, b := DecodePairKey(k)
	return uint8(a), b
}
