package mapreduce

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// poisonWCMapper is a word-count mapper that panics on any line containing
// the marker token — a deterministic poison record, Hadoop's classic skip
// scenario.
type poisonWCMapper struct{ marker string }

func (m poisonWCMapper) Map(ctx *Context, kv KV) {
	line := kv.Value.(string)
	if strings.Contains(line, m.marker) {
		panic("poison: cannot parse " + m.marker)
	}
	for _, w := range strings.Fields(line) {
		ctx.Emit(w, int64(1))
	}
}

// poisonKeyReducer panics on one key group.
type poisonKeyReducer struct{ key string }

func (r poisonKeyReducer) Reduce(ctx *Context, key string, values []any) {
	if key == r.key {
		panic("poison group " + key)
	}
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
}

func skipConfig(max int) Config {
	return Config{
		Name: "skip-test", Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		Fault: FaultPolicy{MaxAttempts: 2, SkipBadRecords: true, MaxSkippedRecords: max},
	}
}

func TestSkipMapPoisonRecord(t *testing.T) {
	input := wcInput("a b c", "a POISON b", "c c", "b a")
	var quarantined []QuarantinedRecord
	cfg := skipConfig(0)
	cfg.Fault.Quarantine = func(r QuarantinedRecord) { quarantined = append(quarantined, r) }

	res, err := Run(cfg, input, poisonWCMapper{marker: "POISON"}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	// The output must equal a clean run over the input minus the poison
	// record — the skip contract.
	clean := wcInput("a b c", "c c", "b a")
	want := runWC(t, Config{Name: "skip-test", Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2}, clean)
	got := map[string]int64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Value.(int64)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("output = %v, want %v", got, want)
	}
	if n := res.Counters.Get(CounterRecordsSkipped); n != 1 {
		t.Errorf("%s = %d, want 1", CounterRecordsSkipped, n)
	}
	if len(quarantined) != 1 {
		t.Fatalf("quarantined %d records, want 1: %+v", len(quarantined), quarantined)
	}
	q := quarantined[0]
	if q.Phase != PhaseMap || q.Value != "a POISON b" || q.Job != "skip-test" {
		t.Errorf("quarantined wrong record: %+v", q)
	}
	if !strings.Contains(q.Err, "poison") {
		t.Errorf("quarantine cause %q does not carry the panic", q.Err)
	}
}

func TestSkipMapMultiplePoisons(t *testing.T) {
	input := wcInput("x BAD1 y", "a b", "BAD2", "b b", "BAD3 z")
	var quarantined []QuarantinedRecord
	cfg := skipConfig(0)
	cfg.MapTasks = 1 // all poisons in one task: the bisection loop must find each in turn
	cfg.Fault.Quarantine = func(r QuarantinedRecord) { quarantined = append(quarantined, r) }

	res, err := Run(cfg, input, poisonWCMapper{marker: "BAD"}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 3 {
		t.Fatalf("quarantined %d records, want 3: %+v", len(quarantined), quarantined)
	}
	var bad []string
	for _, q := range quarantined {
		bad = append(bad, q.Value.(string))
	}
	sort.Strings(bad)
	if want := []string{"BAD2", "BAD3 z", "x BAD1 y"}; !reflect.DeepEqual(bad, want) {
		t.Errorf("quarantined %v, want %v", bad, want)
	}
	got := map[string]int64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Value.(int64)
	}
	if want := map[string]int64{"a": 1, "b": 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("output = %v, want %v", got, want)
	}
}

func TestSkipReducePoisonGroup(t *testing.T) {
	input := wcInput("a b c", "b c", "c")
	var quarantined []QuarantinedRecord
	cfg := skipConfig(0)
	cfg.Fault.Quarantine = func(r QuarantinedRecord) { quarantined = append(quarantined, r) }

	res, err := Run(cfg, input, wcMapper{}, poisonKeyReducer{key: "b"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Value.(int64)
	}
	if want := map[string]int64{"a": 1, "c": 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("output = %v, want %v", got, want)
	}
	if len(quarantined) != 1 || quarantined[0].Key != "b" || quarantined[0].Phase != PhaseReduce {
		t.Errorf("quarantined = %+v, want one reduce-phase record with key b", quarantined)
	}
}

func TestSkipBudgetAborts(t *testing.T) {
	input := wcInput("BAD1", "BAD2", "BAD3", "ok")
	cfg := skipConfig(2)
	cfg.MapTasks = 1
	_, err := Run(cfg, input, poisonWCMapper{marker: "BAD"}, wcReducer{})
	if err == nil || !strings.Contains(err.Error(), "MaxSkippedRecords") {
		t.Fatalf("err = %v, want MaxSkippedRecords abort", err)
	}
}

// combinerPanic fails in the combiner, which skip-mode probes deliberately
// do not replay: the failure must stay unskippable and surface as-is.
type combinerPanic struct{}

func (combinerPanic) Reduce(ctx *Context, key string, values []any) { panic("combiner broken") }

func TestSkipCombinerFaultUnskippable(t *testing.T) {
	cfg := skipConfig(0)
	cfg.Combiner = combinerPanic{}
	_, err := Run(cfg, wcInput("a b", "b c"), wcMapper{}, wcReducer{})
	if err == nil || !strings.Contains(err.Error(), "combiner broken") {
		t.Fatalf("err = %v, want the original combiner failure", err)
	}
}

// setupPanicMapper fails before any record: probe(0) reproduces it, so no
// record can be blamed and the job must fail with the original error.
type setupPanicMapper struct{ wcMapper }

func (setupPanicMapper) Setup(ctx *Context) { panic("setup broken") }

func TestSkipSetupFaultUnskippable(t *testing.T) {
	cfg := skipConfig(0)
	_, err := Run(cfg, wcInput("a b"), setupPanicMapper{}, wcReducer{})
	if err == nil || !strings.Contains(err.Error(), "setup broken") {
		t.Fatalf("err = %v, want the original setup failure", err)
	}
}

func TestSkipMapOnlyJob(t *testing.T) {
	input := wcInput("a b", "POISON", "c")
	cfg := skipConfig(0)
	cfg.MapTasks = 1
	res, err := Run(cfg, input, poisonWCMapper{marker: "POISON"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var words []string
	for _, kv := range res.Output {
		words = append(words, kv.Key)
	}
	sort.Strings(words)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(words, want) {
		t.Errorf("map-only output keys = %v, want %v", words, want)
	}
	if n := res.Counters.Get(CounterRecordsSkipped); n != 1 {
		t.Errorf("%s = %d, want 1", CounterRecordsSkipped, n)
	}
}

// recordFaultInjector arms an injected FaultRecordPanic: one record index
// of one map task fails on every attempt, including probes — the injected
// analogue of a poison record.
type recordFaultInjector struct {
	task, record int
}

func (i recordFaultInjector) Decide(phase Phase, task, attempt int) Fault {
	if phase == PhaseMap && task == i.task {
		return Fault{Kind: FaultRecordPanic, Record: i.record, Msg: "injected record fault"}
	}
	return Fault{}
}

func TestInjectedRecordFaultSkipped(t *testing.T) {
	input := wcInput("a a", "b b", "c c", "d d")
	cfg := Config{
		Name: "inject-skip", Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		Fault: FaultPolicy{
			MaxAttempts: 3, SkipBadRecords: true,
			Injector: recordFaultInjector{task: 0, record: 1},
		},
	}
	var quarantined []QuarantinedRecord
	cfg.Fault.Quarantine = func(r QuarantinedRecord) { quarantined = append(quarantined, r) }
	res, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 || quarantined[0].Task != 0 {
		t.Fatalf("quarantined = %+v, want one record from map task 0", quarantined)
	}
	// Without the second record of task 0's split, exactly one word pair is
	// missing from the count.
	got := map[string]int64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Value.(int64)
	}
	total := int64(0)
	for _, n := range got {
		total += n
	}
	if total != 6 || len(got) != 3 {
		t.Errorf("output = %v, want 3 surviving words with 6 occurrences", got)
	}
	// An injector fault without skip mode keeps failing the job — skip is
	// what makes it survivable.
	cfg2 := cfg
	cfg2.Fault.SkipBadRecords = false
	cfg2.Fault.Quarantine = nil
	if _, err := Run(cfg2, input, wcMapper{}, wcReducer{}); err == nil {
		t.Fatal("injected record fault without skip mode should fail the job")
	}
}

// TestSkipDeterministicAcrossParallelism asserts the skip path keeps the
// engine's determinism contract: same output and skip counter at any
// parallelism.
func TestSkipDeterministicAcrossParallelism(t *testing.T) {
	input := wcInput("a b BAD c", "a a", "b BAD", "c c c", "d")
	run := func(par int) (map[string]int64, int64) {
		cfg := skipConfig(0)
		cfg.MapTasks = 3
		cfg.Parallelism = par
		res, err := Run(cfg, input, poisonWCMapper{marker: "BAD"}, wcReducer{})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, kv := range res.Output {
			out[kv.Key] = kv.Value.(int64)
		}
		return out, res.Counters.Get(CounterRecordsSkipped)
	}
	seqOut, seqSkip := run(1)
	parOut, parSkip := run(8)
	if !reflect.DeepEqual(seqOut, parOut) || seqSkip != parSkip {
		t.Errorf("parallel run diverged: seq=(%v,%d) par=(%v,%d)", seqOut, seqSkip, parOut, parSkip)
	}
	if seqSkip != 2 {
		t.Errorf("skipped = %d, want 2", seqSkip)
	}
}
