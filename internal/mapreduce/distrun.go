package mapreduce

import (
	"fmt"
	"time"
)

// This file is the distributed (multi-process) execution path, DESIGN.md
// §15. The model is SPMD: every participant — the driver and each worker
// process — deterministically replays the same pipeline over the same
// input, but executes only the tasks its Executor leases from the
// supervisor. All task artifacts (map partitions, reduce outputs,
// per-task counter snapshots and metas) commit through a shared
// filesystem transport, so after each phase barrier every participant
// assembles the identical Result from the transport alone — whether it
// executed zero tasks or all of them. Determinism is what makes worker
// loss recoverable: a reassigned task re-executes to byte-identical
// output, so generation-stamped, newest-complete-wins delivery is
// trivially idempotent.

// Executor leases tasks for the distributed path. Implementations are
// WorkerClient (a supervised worker or the driver); tests may supply
// in-process fakes.
type Executor interface {
	// BeginPhase announces the next phase in the participant's
	// deterministic phase sequence and returns its lease source. n is the
	// phase's task count; every participant must announce identical
	// (job, phase, n) sequences or the supervisor aborts the run.
	BeginPhase(job string, phase Phase, n int) (PhaseLease, error)
}

// PhaseLease hands out one phase's tasks.
type PhaseLease interface {
	// Next blocks until a task is granted (ok true), the phase has no
	// further work for this participant (ok false), or the run is dead.
	Next() (task int, ok bool, err error)
	// Done reports task completion after its artifact committed.
	// redelivered notes that the commit duplicated an earlier generation.
	Done(task int, redelivered bool) error
	// Barrier blocks until every task of the phase has committed.
	Barrier() error
}

// boundaryObserver is an optional Executor extension: the engine announces
// the injected kill boundaries ("map" before a map commit, "handoff"
// after a map commit but before its Done, "reduce" before an output
// commit) so a worker under the kill harness can SIGKILL itself there.
type boundaryObserver interface {
	atBoundary(kind string)
}

// notifyBoundary announces a kill boundary to executors that observe them.
func notifyBoundary(ex Executor, kind string) {
	if o, ok := ex.(boundaryObserver); ok {
		o.atBoundary(kind)
	}
}

// runDistributed executes one job as an SPMD participant. It differs from
// runLocal in three ways: tasks are executed only when leased, every task
// measurement travels through TaskMeta (with a task-local counter
// snapshot) instead of being recorded in place, and the Result is
// assembled from the transport after each barrier.
func runDistributed(env *jobEnv, input []KV) (*Result, error) {
	cfg, cl, mapTasks, reduceTasks := env.cfg, env.cl, env.mapTasks, env.reduceTasks
	ex := env.cfg.Runtime.Executor
	if cfg.Runtime.Transport == nil {
		return nil, fmt.Errorf("mapreduce: job %q: a distributed run requires a shared filesystem transport", cfg.Name)
	}
	jt, err := env.openTransport()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
	}
	defer jt.Close()
	res := &Result{Counters: NewCounters()}
	m := &res.Metrics
	m.Job = cfg.Name
	m.MapTasks = mapTasks
	m.ReduceTasks = reduceTasks
	m.MapInputRecords = int64(len(input))
	wallStart := time.Now()
	splits := splitInput(input, mapTasks)
	mapOnly := env.reducer == nil

	// ---- Map phase ----
	lease, err := ex.BeginPhase(cfg.Name, PhaseMap, mapTasks)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
	}
	for {
		if err := cfg.cancelled(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		t, ok, err := lease.Next()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		if !ok {
			break
		}
		tc := NewCounters()
		start := time.Now()
		ctx, err := env.runMapAttempts(tc, t, splits[t])
		if err != nil {
			return nil, taskErr(cfg.Name, PhaseMap, t, err)
		}
		elapsed := time.Since(start)
		var (
			meta TaskMeta
			info CommitInfo
			cerr error
		)
		if mapOnly {
			ctx.flushCounters()
			meta = TaskMeta{TaskNanos: int64(elapsed), Counters: tc.Snapshot()}
			notifyBoundary(ex, "map")
			info, cerr = jt.CommitOutput(t, ctx.out, meta)
		} else {
			recs, bytes, st, ferr := env.finishMapTask(tc, ctx)
			if ferr != nil {
				return nil, taskErr(cfg.Name, PhaseMap, t, ferr)
			}
			// A scheduled transport fault is counted into the task-local
			// set before the snapshot (the counters must travel with the
			// meta) and realised right after the commit.
			df := cfg.decideFault(PhaseMap, t, DeliveryAttempt)
			if isDeliveryKind(df.Kind) {
				countDeliveryFault(df, tc, env.reduceTasks)
			}
			meta = TaskMeta{
				Records: recs, Bytes: bytes, TaskNanos: int64(elapsed),
				Spill: st, Counters: tc.Snapshot(),
			}
			notifyBoundary(ex, "map")
			info, cerr = jt.CommitMap(t, ctx.shuffle, meta)
			if cerr == nil && isDeliveryKind(df.Kind) {
				if _, derr := jt.Redeliver(t); derr != nil {
					return nil, taskErr(cfg.Name, PhaseMap, t, derr)
				}
			}
		}
		if cerr != nil {
			return nil, taskErr(cfg.Name, PhaseMap, t, cerr)
		}
		notifyBoundary(ex, "handoff")
		if err := lease.Done(t, info.Redelivered); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
	}
	if err := lease.Barrier(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
	}

	if mapOnly {
		// Assemble the map-only Result from committed outputs in task
		// order; every participant computes identical totals.
		m.MapTaskTime = make([]time.Duration, mapTasks)
		for t := 0; t < mapTasks; t++ {
			out, meta, err := jt.FetchOutput(t)
			if err != nil {
				return nil, taskErr(cfg.Name, PhaseMap, t, err)
			}
			m.MapTaskTime[t] = time.Duration(meta.TaskNanos)
			mergeTaskCounters(res.Counters, meta.Counters)
			for _, kv := range out {
				m.ShuffleRecords++
				m.ShuffleBytes += int64(kvBytes(kv))
			}
			res.Output = append(res.Output, out...)
		}
		m.MapOutputRecords = m.ShuffleRecords
		m.MapOutputBytes = m.ShuffleBytes
		m.OutputRecords = int64(len(res.Output))
		m.OutputBytes = m.ShuffleBytes
		m.ReduceTasks = 0
		m.SimulatedMapTime = simPhase(cl, m.MapTaskTime)
		m.SimulatedTotalTime = m.SimulatedMapTime
		m.WallTime = time.Since(wallStart)
		return res, nil
	}

	// Assemble map-phase metrics and counters from committed metas.
	m.MapTaskTime = make([]time.Duration, mapTasks)
	for t := 0; t < mapTasks; t++ {
		meta, err := jt.MapMeta(t)
		if err != nil {
			return nil, taskErr(cfg.Name, PhaseMap, t, err)
		}
		m.MapTaskTime[t] = time.Duration(meta.TaskNanos)
		m.ShuffleRecords += meta.Records
		m.ShuffleBytes += meta.Bytes
		m.SpillRuns += meta.Spill.Runs
		m.SpillBytes += meta.Spill.SpilledBytes
		if meta.Spill.PeakBytes > m.ShufflePeakBytes {
			m.ShufflePeakBytes = meta.Spill.PeakBytes
		}
		mergeTaskCounters(res.Counters, meta.Counters)
	}
	m.MapOutputRecords = m.ShuffleRecords
	m.MapOutputBytes = m.ShuffleBytes

	// ---- Reduce phase ----
	lease, err = ex.BeginPhase(cfg.Name, PhaseReduce, reduceTasks)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
	}
	for {
		if err := cfg.cancelled(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		t, ok, err := lease.Next()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		if !ok {
			break
		}
		in, gerr := env.fetchReduceInput(jt, t)
		if gerr != nil {
			return nil, taskErr(cfg.Name, PhaseReduce, t, gerr)
		}
		tc := NewCounters()
		if in.maxWays > 1 {
			tc.Max(CounterSpillMergeWays, int64(in.maxWays))
		}
		start := time.Now()
		ctx, err := env.runReduceAttempts(tc, t, in)
		if err != nil {
			return nil, taskErr(cfg.Name, PhaseReduce, t, err)
		}
		elapsed := time.Since(start)
		ctx.flushCounters()
		var groupSpill time.Duration
		for _, b := range in.gBytes {
			groupSpill += cl.groupSpillTime(b)
		}
		meta := TaskMeta{
			Records: in.recs, Bytes: in.bytes, Groups: int64(len(in.keys)),
			TaskNanos: int64(elapsed), GroupSpillNanos: int64(groupSpill),
			Counters: tc.Snapshot(),
		}
		notifyBoundary(ex, "reduce")
		info, cerr := jt.CommitOutput(t, ctx.out, meta)
		if cerr != nil {
			return nil, taskErr(cfg.Name, PhaseReduce, t, cerr)
		}
		if err := lease.Done(t, info.Redelivered); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
	}
	if err := lease.Barrier(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
	}

	// Assemble the reduce-phase Result from committed outputs and metas.
	m.PerReduceRecords = make([]int64, reduceTasks)
	m.PerReduceBytes = make([]int64, reduceTasks)
	m.ReduceTaskTime = make([]time.Duration, reduceTasks)
	m.GroupSpillTime = make([]time.Duration, reduceTasks)
	for t := 0; t < reduceTasks; t++ {
		out, meta, err := jt.FetchOutput(t)
		if err != nil {
			return nil, taskErr(cfg.Name, PhaseReduce, t, err)
		}
		m.PerReduceRecords[t] = meta.Records
		m.PerReduceBytes[t] = meta.Bytes
		m.ReduceTaskTime[t] = time.Duration(meta.TaskNanos)
		m.GroupSpillTime[t] = time.Duration(meta.GroupSpillNanos)
		m.ReduceInputGroups += meta.Groups
		mergeTaskCounters(res.Counters, meta.Counters)
		res.Output = append(res.Output, out...)
	}
	m.OutputRecords = int64(len(res.Output))
	for _, kv := range res.Output {
		m.OutputBytes += int64(kvBytes(kv))
	}
	applyCostModel(cl, m, mapTasks, reduceTasks)
	m.WallTime = time.Since(wallStart)
	return res, nil
}
