package mapreduce

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// countEmitter is a mapper that also bumps a user counter, so replay tests
// can assert checkpointed counters come back exactly.
type countEmitter struct{ wcMapper }

func (m countEmitter) Map(ctx *Context, kv KV) {
	ctx.Inc("user.lines", 1)
	m.wcMapper.Map(ctx, kv)
}

// runTwoStagePipe executes the canonical two-stage shape (wordcount, then
// an identity stage over its output) on a fresh pipeline, optionally
// stopping after stage 1 — the engine-level model of a crash at a stage
// boundary. It returns the pipeline and the final output (nil when
// killed).
func runTwoStagePipe(t *testing.T, dir, salt string, killAfter1 bool) (*Pipeline, []KV) {
	t.Helper()
	p := NewPipeline("ckpt-pipe", tinyCluster())
	p.CheckpointDir = dir
	p.CheckpointSalt = salt
	input := wcInput("a b c", "b c", "c c", "a")
	r1, err := p.Run(Config{Name: "count", MapTasks: 2, ReduceTasks: 2}, input, countEmitter{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if killAfter1 {
		return p, nil
	}
	r2, err := p.Run(Config{Name: "pass", MapTasks: 2, ReduceTasks: 2}, r1.Output, identityMapper{}, FirstValue{})
	if err != nil {
		t.Fatal(err)
	}
	return p, r2.Output
}

type identityMapper struct{}

func (identityMapper) Map(ctx *Context, kv KV) { ctx.Emit(kv.Key, kv.Value) }

func TestPipelineCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	// Baseline: no checkpointing at all.
	_, want := runTwoStagePipe(t, "", "", false)

	// Run 1 "crashes" after stage 1 completes and checkpoints.
	p1, _ := runTwoStagePipe(t, dir, "s", true)
	if st := p1.CheckpointStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("killed run stats = %+v, want 1 miss", st)
	}

	// Run 2 resumes: stage 1 replays from disk, stage 2 executes.
	p2, got := runTwoStagePipe(t, dir, "s", false)
	if st := p2.CheckpointStats(); st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("resumed run stats = %+v, want 1 hit + 1 miss", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed output differs from uninterrupted run:\n got %v\nwant %v", got, want)
	}
	// Replayed stage counters must equal the original execution's.
	if n := p2.Counter("user.lines"); n != 4 {
		t.Errorf("replayed user.lines = %d, want 4", n)
	}

	// Run 3 finds both stages checkpointed.
	p3, got3 := runTwoStagePipe(t, dir, "s", false)
	if st := p3.CheckpointStats(); st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("third run stats = %+v, want 2 hits", st)
	}
	if !reflect.DeepEqual(got3, want) {
		t.Error("fully replayed output differs from uninterrupted run")
	}
}

func TestPipelineCheckpointCorruptRecompute(t *testing.T) {
	dir := t.TempDir()
	_, want := runTwoStagePipe(t, dir, "s", false)
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 2 {
		t.Fatalf("expected 2 checkpoint files, got %v (%v)", files, err)
	}
	// Corrupt one byte of the first stage's file.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(files[0], raw, 0o600); err != nil {
		t.Fatal(err)
	}
	p, got := runTwoStagePipe(t, dir, "s", false)
	st := p.CheckpointStats()
	if st.Corrupt != 1 {
		t.Errorf("stats = %+v, want exactly 1 corrupt", st)
	}
	if st.Hits+st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 stages accounted", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("output after corrupt-recompute differs from clean run")
	}
}

func TestPipelineCheckpointSaltMismatch(t *testing.T) {
	dir := t.TempDir()
	runTwoStagePipe(t, dir, "salt-A", false)
	p, got := runTwoStagePipe(t, dir, "salt-B", false)
	if st := p.CheckpointStats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats with changed salt = %+v, want 2 misses", st)
	}
	_, want := runTwoStagePipe(t, "", "", false)
	if !reflect.DeepEqual(got, want) {
		t.Error("recomputed output differs from clean run")
	}
}

func TestPipelineCheckpointInputChangeMisses(t *testing.T) {
	dir := t.TempDir()
	p1 := NewPipeline("ckpt-pipe", tinyCluster())
	p1.CheckpointDir = dir
	if _, err := p1.Run(Config{Name: "count", ReduceTasks: 2}, wcInput("a b"), wcMapper{}, wcReducer{}); err != nil {
		t.Fatal(err)
	}
	p2 := NewPipeline("ckpt-pipe", tinyCluster())
	p2.CheckpointDir = dir
	res, err := p2.Run(Config{Name: "count", ReduceTasks: 2}, wcInput("a b c"), wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p2.CheckpointStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats after input change = %+v, want 1 miss", st)
	}
	if len(res.Output) != 3 {
		t.Errorf("recomputed output has %d keys, want 3", len(res.Output))
	}
}

// unencodableValue has no spill codec, so stages consuming or producing it
// must run uncheckpointed rather than fail.
type unencodableValue struct{ ch chan int }

type emitUnencodable struct{}

func (emitUnencodable) Map(ctx *Context, kv KV) { ctx.Emit(kv.Key, unencodableValue{}) }

func TestPipelineCheckpointSkipsUnencodable(t *testing.T) {
	dir := t.TempDir()
	p := NewPipeline("ckpt-pipe", tinyCluster())
	p.CheckpointDir = dir
	// Stage 1: output is unencodable → save aborts, stage counts Skipped.
	r1, err := p.Run(Config{Name: "emit"}, wcInput("a"), emitUnencodable{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 2: input is unencodable → no fingerprint, stage counts Skipped.
	if _, err := p.Run(Config{Name: "consume"}, r1.Output, identityMapper{}, nil); err != nil {
		t.Fatal(err)
	}
	if st := p.CheckpointStats(); st.Skipped != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 skipped", st)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 0 {
		t.Errorf("unencodable stages left checkpoint files: %v", files)
	}
}

// TestPipelineCheckpointTempSwept models a crash mid-save: a leftover temp
// file must be swept on the next open and never treated as a checkpoint.
func TestPipelineCheckpointTempSwept(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ".tmp-ckpt-999")
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	p, got := runTwoStagePipe(t, dir, "s", false)
	if st := p.CheckpointStats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 plain misses", st)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Error("leftover temp file survived")
	}
	_, want := runTwoStagePipe(t, "", "", false)
	if !reflect.DeepEqual(got, want) {
		t.Error("output differs from clean run")
	}
}

// killInjector fails every real attempt of one named job — the
// JobAwareInjector hook crash tests use to stop a pipeline at stage k.
type killInjector struct{ job string }

func (k killInjector) Decide(phase Phase, task, attempt int) Fault { return Fault{} }

func (k killInjector) DecideJob(job string, phase Phase, task, attempt int) Fault {
	if job == k.job && phase == PhaseMap && attempt < SpeculativeAttempt {
		return Fault{Kind: FaultError, Msg: "injected crash"}
	}
	return Fault{}
}

func TestPipelineCheckpointSurvivesInjectedCrash(t *testing.T) {
	dir := t.TempDir()
	input := wcInput("a b c", "b c", "c c", "a")

	// Crashing run: stage 1 completes and checkpoints, stage 2's job is
	// killed on every attempt.
	p1 := NewPipeline("ckpt-pipe", tinyCluster())
	p1.CheckpointDir = dir
	p1.Fault = FaultPolicy{MaxAttempts: 2, Injector: killInjector{job: "pass"}}
	r1, err := p1.Run(Config{Name: "count", ReduceTasks: 2}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Run(Config{Name: "pass", ReduceTasks: 2}, r1.Output, identityMapper{}, FirstValue{}); err == nil {
		t.Fatal("injected crash did not fail stage 2")
	} else if !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("stage 2 failed with %v, want the injected crash", err)
	}

	// Resumed run, fault-free: stage 1 replays, stage 2 executes.
	p2, got := runTwoStagePipe(t, dir, "", false)
	if st := p2.CheckpointStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("resume stats = %+v, want 1 hit + 1 miss", st)
	}
	_, want := runTwoStagePipe(t, "", "", false)
	if !reflect.DeepEqual(got, want) {
		t.Error("post-crash resume output differs from uninterrupted run")
	}
}
