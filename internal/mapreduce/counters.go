package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a thread-safe named counter set, mirroring Hadoop job
// counters. Tasks increment local counters which the engine merges into the
// job result.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// RestoreCounters rebuilds a counter set from a Snapshot copy — how a
// checkpoint replay hands a stage back the exact counters its original
// execution produced.
func RestoreCounters(snap map[string]int64) *Counters {
	c := &Counters{m: make(map[string]int64, len(snap))}
	for k, v := range snap {
		c.m[k] = v
	}
	return c
}

// Spill counters (DESIGN.md §8). Recorded only when a memory budget is
// active, from winning attempts only, so they are deterministic at any
// parallelism and under any chaos schedule for a fixed budget.
const (
	// CounterSpillRuns counts sorted runs written by map-side shuffle
	// buffers that exceeded the memory budget.
	CounterSpillRuns = "spill.runs"
	// CounterSpillBytes totals the accounted bytes those runs carried.
	CounterSpillBytes = "spill.bytes"
	// CounterSpillMergeWays is the widest k-way merge fan-in any reduce
	// fetch needed (max-valued, via Counters.Max).
	CounterSpillMergeWays = "spill.merge.ways"
	// CounterShufflePeak is the largest in-memory shuffle buffer any map
	// task held (max-valued, via Counters.Max).
	CounterShufflePeak = "shuffle.peak.bytes"
)

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Add adds delta to the named counter and returns the new value — the
// atomic check-and-act primitive budget enforcement needs (concurrent
// tasks charging a shared limit each see a distinct running total).
func (c *Counters) Add(name string, delta int64) int64 {
	c.mu.Lock()
	c.m[name] += delta
	v := c.m[name]
	c.mu.Unlock()
	return v
}

// Max raises the named counter to v if v is larger. Because max is
// commutative, concurrent tasks can record high-water marks and still
// produce parallelism-independent counter values.
func (c *Counters) Max(name string, v int64) {
	c.mu.Lock()
	if v > c.m[name] {
		c.m[name] = v
	}
	c.mu.Unlock()
}

// Get returns the current value of the named counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Merge folds other into c.
func (c *Counters) Merge(other *Counters) {
	other.mu.Lock()
	snapshot := make(map[string]int64, len(other.m))
	for k, v := range other.m {
		snapshot[k] = v
	}
	other.mu.Unlock()
	c.mu.Lock()
	for k, v := range snapshot {
		c.m[k] += v
	}
	c.mu.Unlock()
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
	}
	return b.String()
}
