package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a thread-safe named counter set, mirroring Hadoop job
// counters. Tasks increment local counters which the engine merges into the
// job result.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the current value of the named counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Merge folds other into c.
func (c *Counters) Merge(other *Counters) {
	other.mu.Lock()
	snapshot := make(map[string]int64, len(other.m))
	for k, v := range other.m {
		snapshot[k] = v
	}
	other.mu.Unlock()
	c.mu.Lock()
	for k, v := range snapshot {
		c.m[k] += v
	}
	c.mu.Unlock()
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
	}
	return b.String()
}
