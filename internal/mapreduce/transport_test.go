package mapreduce

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// injFunc adapts a function to Injector for scripted schedules.
type injFunc func(phase Phase, task, attempt int) Fault

func (f injFunc) Decide(phase Phase, task, attempt int) Fault { return f(phase, task, attempt) }

// transportFixture runs wordcount over a meaty input with the given
// config mutations on both transports and returns the two results.
func transportFixture(t *testing.T, mutate func(*Config)) (mem, fs *Result) {
	t.Helper()
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, fmt.Sprintf("w%d a b common w%d w%d", i%7, i%3, i))
	}
	input := wcInput(lines...)
	run := func(tr Transport) *Result {
		cfg := Config{Name: "wc-transport", Cluster: tinyCluster(), MapTasks: 5}
		if mutate != nil {
			mutate(&cfg)
		}
		cfg.Runtime.Transport = tr
		res, err := Run(cfg, input, wcMapper{}, wcReducer{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return run(nil), run(NewFSTransport(t.TempDir(), false))
}

// assertSameResult compares everything deterministic between two runs:
// output bytes, the full counter set, and the shuffle-shape metrics.
func assertSameResult(t *testing.T, mem, fs *Result) {
	t.Helper()
	if !reflect.DeepEqual(mem.Output, fs.Output) {
		t.Fatalf("output differs: mem %d records, fs %d records", len(mem.Output), len(fs.Output))
	}
	if mc, fc := mem.Counters.Snapshot(), fs.Counters.Snapshot(); !reflect.DeepEqual(mc, fc) {
		t.Fatalf("counters differ:\nmem %v\nfs  %v", mc, fc)
	}
	mm, fm := mem.Metrics, fs.Metrics
	type shape struct {
		ShuffleRecords, ShuffleBytes, ReduceInputGroups, OutputRecords, OutputBytes, SpillRuns, SpillBytes int64
		PerReduceRecords, PerReduceBytes                                                                   []int64
	}
	ms := shape{mm.ShuffleRecords, mm.ShuffleBytes, mm.ReduceInputGroups, mm.OutputRecords, mm.OutputBytes, mm.SpillRuns, mm.SpillBytes, mm.PerReduceRecords, mm.PerReduceBytes}
	fss := shape{fm.ShuffleRecords, fm.ShuffleBytes, fm.ReduceInputGroups, fm.OutputRecords, fm.OutputBytes, fm.SpillRuns, fm.SpillBytes, fm.PerReduceRecords, fm.PerReduceBytes}
	if !reflect.DeepEqual(ms, fss) {
		t.Fatalf("metrics differ:\nmem %+v\nfs  %+v", ms, fss)
	}
}

func TestFSTransportEquivalence(t *testing.T) {
	cases := map[string]func(*Config){
		"plain":          nil,
		"combiner":       func(c *Config) { c.Combiner = wcReducer{} },
		"spill":          func(c *Config) { c.MemoryBudgetBytes = 256 },
		"spill-combiner": func(c *Config) { c.MemoryBudgetBytes = 256; c.Combiner = wcReducer{} },
		"parallel":       func(c *Config) { c.Parallelism = 4 },
		"folding":        func(c *Config) { c.Combiner = FirstValue{} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			mem, fs := transportFixture(t, mutate)
			assertSameResult(t, mem, fs)
		})
	}
}

// TestInjectedDeliveryFaults proves the idempotent-delivery contract: a
// schedule redelivering every map task's partitions (half as worker-loss
// reassignments, half as duplicate hand-offs) leaves output and
// deterministic counters byte-identical on both transports, while the
// transport counters record what happened.
func TestInjectedDeliveryFaults(t *testing.T) {
	inj := injFunc(func(phase Phase, task, attempt int) Fault {
		if phase == PhaseMap && attempt == DeliveryAttempt {
			if task%2 == 0 {
				return Fault{Kind: FaultWorkerLoss}
			}
			return Fault{Kind: FaultRedeliver}
		}
		return Fault{}
	})
	clean, _ := transportFixture(t, nil)
	for _, tr := range []struct {
		name string
		make func() Transport
	}{
		{"memory", func() Transport { return nil }},
		{"fs", func() Transport { return NewFSTransport(t.TempDir(), false) }},
	} {
		t.Run(tr.name, func(t *testing.T) {
			var lines []string
			for i := 0; i < 40; i++ {
				lines = append(lines, fmt.Sprintf("w%d a b common w%d w%d", i%7, i%3, i))
			}
			cfg := Config{Name: "wc-transport", Cluster: tinyCluster(), MapTasks: 5}
			cfg.Fault.Injector = inj
			cfg.Runtime.Transport = tr.make()
			res, err := Run(cfg, wcInput(lines...), wcMapper{}, wcReducer{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(clean.Output, res.Output) {
				t.Fatal("output differs under injected delivery faults")
			}
			if n := res.Counters.Get(CounterPartitionsRedelivered); n == 0 {
				t.Fatal("expected redelivered partitions > 0")
			}
			if n := res.Counters.Get(CounterTasksReassigned); n == 0 {
				t.Fatal("expected reassigned tasks > 0")
			}
		})
	}
}

// TestSeededPlanTransportKinds proves the satellite contract: a seeded
// chaos schedule drawing worker-loss/redelivery kinds (alongside the
// regular mix) yields byte-identical output at parallelism 1 and 4.
func TestSeededPlanTransportKinds(t *testing.T) {
	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, fmt.Sprintf("k%d v%d shared k%d", i%11, i, i%5))
	}
	input := wcInput(lines...)
	var redelivered int64
	for seed := int64(1); seed <= 4; seed++ {
		plan := NewSeededPlan(PlanConfig{
			Seed:       seed,
			TargetRate: 0.9,
			Kinds: []FaultKind{
				FaultPanic, FaultError, FaultWorkerLoss, FaultRedeliver,
			},
		})
		run := func(par int) *Result {
			cfg := Config{Name: "wc-chaos", Cluster: tinyCluster(), MapTasks: 6, Parallelism: par}
			cfg.Fault.Injector = plan
			cfg.Runtime.Transport = NewFSTransport(t.TempDir(), false)
			res, err := Run(cfg, input, wcMapper{}, wcReducer{})
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			return res
		}
		r1, r4 := run(1), run(4)
		if !reflect.DeepEqual(r1.Output, r4.Output) {
			t.Fatalf("seed %d: output differs between parallelism 1 and 4", seed)
		}
		if !reflect.DeepEqual(r1.Counters.Snapshot(), r4.Counters.Snapshot()) {
			t.Fatalf("seed %d: counters differ between parallelism 1 and 4", seed)
		}
		redelivered += r1.Counters.Get(CounterPartitionsRedelivered)
	}
	if redelivered == 0 {
		t.Fatal("no seed's schedule injected a transport fault")
	}
}

// TestFSTransportCorruptFallback proves newest-complete-wins: when the
// newest generation of a task's partitions is corrupt, the fetch falls
// back to the previous complete generation.
func TestFSTransportCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	tr := NewFSTransport(dir, true)
	jtI, err := tr.Open(TransportSpec{Job: "fallback", MapTasks: 1, ReduceTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	jt := jtI.(*fsJob)
	sink := newShuffleSink(DefaultPartitioner, 2, nil, 0, "", nil)
	sink.add("alpha", int64(1))
	sink.add("beta", int64(2))
	sink.add("gamma", int64(3))
	if _, err := jt.CommitMap(0, sink, TaskMeta{Records: 3}); err != nil {
		t.Fatal(err)
	}
	if info, err := jt.Redeliver(0); err != nil || !info.Redelivered {
		t.Fatalf("redeliver: info=%+v err=%v", info, err)
	}
	// Corrupt the newest generation (truncate it mid-frame) and force a
	// fresh read through a second transport handle on the same directory.
	cands := jt.candidates(fsKindMap, 0)
	if len(cands) != 2 {
		t.Fatalf("expected 2 generations, got %d", len(cands))
	}
	if err := os.Truncate(cands[0].path, 10); err != nil {
		t.Fatal(err)
	}
	tr2 := NewFSTransport(dir, true)
	jt2, err := tr2.Open(TransportSpec{Job: "fallback", MapTasks: 1, ReduceTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for r := 0; r < 2; r++ {
		if _, err := jt2.FetchPartition(0, r, func(key string, v any, b int64) {
			got = append(got, fmt.Sprintf("%s=%d", key, v.(int64)))
		}); err != nil {
			t.Fatalf("fetch after corruption: %v", err)
		}
	}
	if len(got) != 3 {
		t.Fatalf("expected 3 records from fallback generation, got %v", got)
	}
	meta, err := jt2.MapMeta(0)
	if err != nil || meta.Records != 3 {
		t.Fatalf("meta after fallback: %+v err=%v", meta, err)
	}
}

// TestFSTransportFingerprintRejected proves a frame from a different job
// shape fails validation instead of decoding garbage.
func TestFSTransportFingerprintRejected(t *testing.T) {
	dir := t.TempDir()
	tr := NewFSTransport(dir, true)
	jt, err := tr.Open(TransportSpec{Job: "shape-a", MapTasks: 1, ReduceTasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := newShuffleSink(DefaultPartitioner, 1, nil, 0, "", nil)
	sink.add("k", int64(1))
	if _, err := jt.CommitMap(0, sink, TaskMeta{}); err != nil {
		t.Fatal(err)
	}
	// A second transport over the same directory restarts its stage
	// sequence, so a job with a different shape opens the SAME stage dir
	// and finds shape-a's frame — its fingerprint must be rejected.
	stage := filepath.Join(dir, "s001-shape-a")
	frames, err := os.ReadDir(stage)
	if err != nil {
		t.Fatal(err)
	}
	var planted bool
	for _, e := range frames {
		if strings.HasPrefix(e.Name(), "m0.") {
			planted = true
		}
	}
	if !planted {
		t.Fatal("no committed frame found")
	}
	tr2 := NewFSTransport(dir, true)
	jt2, err := tr2.Open(TransportSpec{Job: "shape-a", MapTasks: 1, ReduceTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jt2.FetchPartition(0, 0, func(string, any, int64) {}); err == nil {
		t.Fatal("expected fingerprint/shape mismatch error")
	} else if !strings.Contains(err.Error(), "fingerprint") && !strings.Contains(err.Error(), "no valid frame") {
		t.Fatalf("unexpected error: %v", err)
	}
}
