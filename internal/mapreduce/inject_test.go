package mapreduce

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedInjector replays a fixed decision table, for point tests of each
// injection site.
type scriptedInjector struct {
	faults map[[3]int]Fault // (phase, task, attempt) -> fault
}

func (s scriptedInjector) Decide(phase Phase, task, attempt int) Fault {
	return s.faults[[3]int{int(phase), task, attempt}]
}

func runWCWithInjector(t *testing.T, inj Injector, combiner Reducer) (*Result, *Result) {
	t.Helper()
	input := wcInput("a b a c", "b c d", "d e a")
	cfg := Config{Cluster: tinyCluster(), MapTasks: 3, ReduceTasks: 2, Combiner: combiner}
	want, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = FaultPolicy{Injector: inj}
	got, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	return got, want
}

// TestInjectedFaultKinds: each kind fires at its phase, is counted, is
// retried where retriable, and leaves the output untouched.
func TestInjectedFaultKinds(t *testing.T) {
	cases := []struct {
		name        string
		fault       Fault
		phase       Phase
		counter     string
		wantRetries int64
	}{
		{"map panic", Fault{Kind: FaultPanic, Msg: "m0"}, PhaseMap,
			"mapreduce.fault.injected.panic", 1},
		{"map emit panic", Fault{Kind: FaultEmitPanic, Msg: "e0"}, PhaseMap,
			"mapreduce.fault.injected.emit-panic", 1},
		{"map transient error", Fault{Kind: FaultError, Msg: "x0"}, PhaseMap,
			"mapreduce.fault.injected.error", 1},
		{"map delay", Fault{Kind: FaultDelay, Delay: time.Millisecond}, PhaseMap,
			"mapreduce.fault.injected.delay", 0},
		{"combine panic", Fault{Kind: FaultPanic, Msg: "c0"}, PhaseCombine,
			"mapreduce.fault.injected.panic", 1},
		{"combine error degrades to panic", Fault{Kind: FaultError, Msg: "ce0"}, PhaseCombine,
			"mapreduce.fault.injected.error", 1},
		{"reduce panic", Fault{Kind: FaultPanic, Msg: "r0"}, PhaseReduce,
			"mapreduce.fault.injected.panic", 1},
		{"reduce emit panic", Fault{Kind: FaultEmitPanic, Msg: "re0"}, PhaseReduce,
			"mapreduce.fault.injected.emit-panic", 1},
		{"reduce delay", Fault{Kind: FaultDelay, Delay: time.Millisecond}, PhaseReduce,
			"mapreduce.fault.injected.delay", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := scriptedInjector{faults: map[[3]int]Fault{
				{int(tc.phase), 0, 0}: tc.fault,
			}}
			var combiner Reducer
			if tc.phase == PhaseCombine {
				combiner = wcReducer{}
			}
			got, want := runWCWithInjector(t, inj, combiner)
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Fatalf("output perturbed: %v vs %v", got.Output, want.Output)
			}
			if got.Counters.Get(tc.counter) == 0 {
				t.Fatalf("fault not counted under %s:\n%s", tc.counter, got.Counters)
			}
			if got.Counters.Get(CounterRetries) != tc.wantRetries {
				t.Fatalf("retries = %d, want %d", got.Counters.Get(CounterRetries), tc.wantRetries)
			}
		})
	}
}

// TestInjectedPermanentFaultAborts: a fault that outlasts MaxAttempts
// surfaces as a job error carrying the injected message.
func TestInjectedPermanentFaultAborts(t *testing.T) {
	faults := map[[3]int]Fault{}
	for a := 0; a < 4; a++ {
		faults[[3]int{int(PhaseMap), 0, a}] = Fault{Kind: FaultPanic, Msg: "永 persistent"}
	}
	cfg := Config{Cluster: tinyCluster(), MapTasks: 1, MaxAttempts: 3,
		Fault: FaultPolicy{Injector: scriptedInjector{faults: faults}}}
	_, err := Run(cfg, wcInput("a b"), wcMapper{}, wcReducer{})
	if err == nil || !strings.Contains(err.Error(), "永 persistent") {
		t.Fatalf("err = %v, want injected message surfaced", err)
	}
}

// TestFaultPolicyMaxAttemptsOverrides: FaultPolicy.MaxAttempts wins over
// Config.MaxAttempts.
func TestFaultPolicyMaxAttemptsOverrides(t *testing.T) {
	var attempts atomic.Int64
	mapper := MapFunc(func(ctx *Context, kv KV) {
		panic(fmt_attempt(attempts.Add(1)))
	})
	cfg := Config{Cluster: tinyCluster(), MapTasks: 1, MaxAttempts: 2,
		Fault: FaultPolicy{MaxAttempts: 6}}
	if _, err := Run(cfg, wcInput("a"), mapper, wcReducer{}); err == nil {
		t.Fatal("always-failing task succeeded")
	}
	if got := attempts.Load(); got != 6 {
		t.Fatalf("attempts = %d, want 6 (policy override)", got)
	}
}

func fmt_attempt(n int64) string { return "boom " + string(rune('0'+n)) }

// TestSpeculativeExecutionBeatsStraggler: an injected straggler delay far
// above the speculative threshold is rescued by a clean backup copy —
// identical output, speculation counted.
func TestSpeculativeExecutionBeatsStraggler(t *testing.T) {
	inj := scriptedInjector{faults: map[[3]int]Fault{
		{int(PhaseMap), 0, 0}: {Kind: FaultDelay, Delay: 200 * time.Millisecond},
	}}
	input := wcInput("a b a c", "b c d", "d e a")
	cfg := Config{Cluster: tinyCluster(), MapTasks: 3, ReduceTasks: 2}
	want, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = FaultPolicy{Injector: inj, SpeculativeDelay: 2 * time.Millisecond}
	start := time.Now()
	got, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Fatal("speculative execution changed output")
	}
	if got.Counters.Get(CounterSpeculative) == 0 {
		t.Fatal("no speculative launch counted")
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("job waited out the straggler (%v) — speculation ineffective", elapsed)
	}
}

// TestSpeculativeBackupFailureFallsBack: if the backup crashes while the
// original is merely slow, the original's result is kept.
func TestSpeculativeBackupFailureFallsBack(t *testing.T) {
	inj := scriptedInjector{faults: map[[3]int]Fault{
		{int(PhaseMap), 0, 0}:                      {Kind: FaultDelay, Delay: 20 * time.Millisecond},
		{int(PhaseMap), 0, 0 + SpeculativeAttempt}: {Kind: FaultPanic, Msg: "backup dies"},
	}}
	input := wcInput("a b a c", "b c d")
	cfg := Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2}
	want, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = FaultPolicy{Injector: inj, SpeculativeDelay: time.Millisecond}
	got, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Fatal("backup failure corrupted output")
	}
}

// TestSeededPlanDeterministicAndOrderIndependent: Decide is a pure
// function of (seed, phase, task, attempt) — same inputs, same fault, in
// any call order — and distinct seeds differ somewhere.
func TestSeededPlanDeterministicAndOrderIndependent(t *testing.T) {
	a := NewSeededPlan(PlanConfig{Seed: 42})
	b := NewSeededPlan(PlanConfig{Seed: 42})
	other := NewSeededPlan(PlanConfig{Seed: 43})
	differs := false
	for task := 19; task >= 0; task-- { // reversed order on purpose
		for _, ph := range []Phase{PhaseMap, PhaseCombine, PhaseReduce} {
			for attempt := 0; attempt < 3; attempt++ {
				x := a.Decide(ph, task, attempt)
				if y := b.Decide(ph, task, attempt); x != y {
					t.Fatalf("same seed diverged at (%v,%d,%d): %+v vs %+v", ph, task, attempt, x, y)
				}
				if x != other.Decide(ph, task, attempt) {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical schedules — seed unused?")
	}
}

// TestSeededPlanRespectsContract: failures per task stay within
// MaxFailures, messages vary by attempt (transient symptom), backups run
// clean, and a zero-rate plan injects nothing.
func TestSeededPlanRespectsContract(t *testing.T) {
	p := NewSeededPlan(PlanConfig{Seed: 7, TargetRate: 1, MaxFailures: 2})
	sawFault := false
	for task := 0; task < 30; task++ {
		for _, ph := range []Phase{PhaseMap, PhaseReduce} {
			first := p.Decide(ph, task, 0)
			if first.Kind == FaultNone {
				continue
			}
			sawFault = true
			if p.Decide(ph, task, 2).Kind != FaultNone && first.Kind != FaultDelay {
				t.Fatalf("(%v,%d): still failing at attempt 2 with MaxFailures 2", ph, task)
			}
			second := p.Decide(ph, task, 1)
			if second.Kind == first.Kind && second.Msg == first.Msg && first.Msg != "" {
				t.Fatalf("(%v,%d): identical message across attempts defeats transient retry", ph, task)
			}
			if bk := p.Decide(ph, task, SpeculativeAttempt); bk.Kind != FaultNone {
				t.Fatalf("(%v,%d): speculative backup not clean: %+v", ph, task, bk)
			}
		}
	}
	if !sawFault {
		t.Fatal("TargetRate 1 injected nothing")
	}
	quiet := NewSeededPlan(PlanConfig{Seed: 7, TargetRate: -1})
	// -1 normalises to the default rate; an explicit epsilon rate must be
	// nearly silent while remaining valid.
	_ = quiet
	none := 0
	tiny := NewSeededPlan(PlanConfig{Seed: 7, TargetRate: 1e-12})
	for task := 0; task < 50; task++ {
		if tiny.Decide(PhaseMap, task, 0).Kind == FaultNone {
			none++
		}
	}
	if none != 50 {
		t.Fatalf("near-zero rate injected %d faults", 50-none)
	}
}

// TestExponentialBackoff pins the doubling-and-cap shape.
func TestExponentialBackoff(t *testing.T) {
	b := ExponentialBackoff(10*time.Millisecond, 40*time.Millisecond)
	for retry, want := range map[int]time.Duration{
		0: 0,
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 40 * time.Millisecond, // capped
	} {
		if got := b(retry); got != want {
			t.Errorf("backoff(%d) = %v, want %v", retry, got, want)
		}
	}
	if d := ExponentialBackoff(0, time.Second)(3); d != 0 {
		t.Errorf("zero base must disable backoff, got %v", d)
	}
}
