package mapreduce

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"fsjoin/internal/spill"
)

// Mapper consumes one input pair and emits zero or more intermediate pairs
// through the context.
type Mapper interface {
	Map(ctx *Context, kv KV)
}

// Reducer consumes one key group and emits zero or more output pairs.
type Reducer interface {
	Reduce(ctx *Context, key string, values []any)
}

// Setupper is an optional lifecycle hook run once per task before records,
// mirroring Hadoop's setup(). The paper's Algorithm 1 loads the global
// ordering and selects pivots in setup.
type Setupper interface {
	Setup(ctx *Context)
}

// Cleanupper is an optional lifecycle hook run once per task after records.
type Cleanupper interface {
	Cleanup(ctx *Context)
}

// MapFunc adapts a function to Mapper.
type MapFunc func(ctx *Context, kv KV)

// Map implements Mapper.
func (f MapFunc) Map(ctx *Context, kv KV) { f(ctx, kv) }

// ReduceFunc adapts a function to Reducer.
type ReduceFunc func(ctx *Context, key string, values []any)

// Reduce implements Reducer.
func (f ReduceFunc) Reduce(ctx *Context, key string, values []any) { f(ctx, key, values) }

// Folder is an optional fast path for combiners whose reduction is an
// associative fold (sums, counts). When a Config.Combiner implements
// Folder, the engine folds values into per-key accumulator slots as the
// mapper emits them, which removes the combine pass and most of its
// allocation cost. Fold must return the merged value; it may mutate and
// return acc.
type Folder interface {
	Fold(acc, v any) any
}

// FoldingReducer is the analogous fast path for reduce: when the job's
// reducer implements it, the shuffle folds each key's values as they arrive
// instead of building per-key value lists, and the reduce phase calls
// FinishFold once per key with the folded accumulator. Reduce is never
// called on such a job but must behave equivalently (it documents the
// semantics and serves any generic caller).
type FoldingReducer interface {
	Reducer
	Folder
	// FinishFold emits the output for one key from its folded accumulator.
	FinishFold(ctx *Context, key string, acc any)
}

// IdentityMapper forwards its input unchanged.
var IdentityMapper Mapper = MapFunc(func(ctx *Context, kv KV) { ctx.Emit(kv.Key, kv.Value) })

// FirstValue is a dedup reducer: each key is emitted once with its first
// value. It implements the folding fast path.
type FirstValue struct{}

// Reduce implements Reducer.
func (FirstValue) Reduce(ctx *Context, key string, values []any) { ctx.Emit(key, values[0]) }

// Fold implements Folder by keeping the first value.
func (FirstValue) Fold(acc, v any) any { return acc }

// FinishFold implements FoldingReducer.
func (FirstValue) FinishFold(ctx *Context, key string, acc any) { ctx.Emit(key, acc) }

// Config describes one MapReduce job.
type Config struct {
	// Name labels the job in metrics output.
	Name string
	// MapTasks is the number of map tasks; 0 means one per cluster slot.
	MapTasks int
	// ReduceTasks is the number of reduce tasks; 0 means 3 × nodes, the
	// paper's setting. Ignored for map-only jobs.
	ReduceTasks int
	// Partitioner routes keys to reduce tasks; nil means FNV-1a hashing.
	Partitioner func(key string, reducers int) int
	// Combiner, when non-nil, runs over each map task's output to shrink
	// shuffle volume (map-side aggregation). Combiners follow the standard
	// key-preservation contract: output keys equal input keys.
	Combiner Reducer
	// Cluster is the cost model; nil means DefaultCluster().
	Cluster *Cluster
	// MaxAttempts is how many times a failing (panicking) task is retried
	// before the job aborts, mirroring Hadoop's task-level fault
	// tolerance; 0 means 4, Hadoop's default.
	MaxAttempts int
	// Context, when non-nil, is checked at task boundaries: a cancelled
	// context aborts the job with the context's error. Long joins remain
	// cancellable without cooperative checks inside user map/reduce code.
	Context context.Context
	// Fault bundles retry backoff, speculative execution of stragglers and
	// (for tests) scheduled fault injection; the zero value keeps the
	// engine's default fault tolerance. See FaultPolicy.
	Fault FaultPolicy
	// Parallelism is the number of tasks executed concurrently on the
	// local machine; 0 or 1 means sequential (the default, which also
	// gives the most accurate per-task CPU measurements for the cost
	// model), and a negative value (AutoParallelism) means one worker per
	// core. Values other than 0 and 1 require the mapper, combiner and
	// reducer to be safe for concurrent use (the Context emit surface is
	// always per-task). Output, counters and shuffle metrics are identical
	// at every parallelism level.
	Parallelism int
	// MemoryBudgetBytes caps the intermediate bytes one map task buffers
	// in memory before sorting and spilling a run to a temp file
	// (out-of-core shuffle, DESIGN.md §8). 0 defers to the
	// FSJOIN_MEMORY_BUDGET environment variable (unbounded when unset);
	// negative forces unbounded. Output is byte-identical at any budget.
	MemoryBudgetBytes int64
	// SpillDir is the parent directory for spill files; "" defers to
	// FSJOIN_SPILL_DIR, then the OS temp dir.
	SpillDir string
	// CheckpointDir, when non-empty and the job runs as a pipeline stage,
	// persists the stage's result there after it completes and replays it
	// on a fingerprint-matched re-run (crash/restart recovery, DESIGN.md
	// §9). Plain Run ignores it; inheritance and replay live in Pipeline.
	CheckpointDir string
	// Runtime selects the shuffle transport and, for multi-process runs,
	// the task executor (DESIGN.md §15). The zero value is the in-process
	// engine with the in-memory transport. A non-nil Executor requires a
	// shared filesystem Transport and is incompatible with CheckpointDir.
	Runtime Runtime
}

// cancelled reports the context's error once it is done.
func (c Config) cancelled() error {
	if c.Context == nil {
		return nil
	}
	select {
	case <-c.Context.Done():
		return c.Context.Err()
	default:
	}
	return nil
}

// cancelCheck returns the polling form of cancelled for components that
// cannot see the Config (the spill merge); nil when the job has no
// context, so the unconfigured path stays a nil comparison.
func (c Config) cancelCheck() func() error {
	if c.Context == nil {
		return nil
	}
	ctx := c.Context
	return func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
}

func (c Config) maxAttempts() int {
	if c.Fault.MaxAttempts > 0 {
		return c.Fault.MaxAttempts
	}
	if c.MaxAttempts <= 0 {
		return 4
	}
	return c.MaxAttempts
}

func (c Config) cluster() *Cluster {
	if c.Cluster != nil {
		return c.Cluster
	}
	return DefaultCluster()
}

// resolvedReduceTasks resolves the effective reduce-task count — shared
// by Run and the pipeline's checkpoint fingerprinting, which must agree
// with the execution for a replayed stage to be byte-identical.
func (c Config) resolvedReduceTasks() int {
	n := c.ReduceTasks
	if n <= 0 {
		n = 3 * c.cluster().Nodes
	}
	if n < 1 {
		n = 1
	}
	return n
}

// memoryBudget resolves the effective shuffle memory budget: an explicit
// positive value wins, zero defers to FSJOIN_MEMORY_BUDGET (so a CI job
// can force the whole suite through the spill path), and any negative
// value — from config or environment — means unbounded.
func (c Config) memoryBudget() int64 {
	b := c.MemoryBudgetBytes
	if b == 0 {
		if s := os.Getenv("FSJOIN_MEMORY_BUDGET"); s != "" {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				b = v
			}
		}
	}
	if b < 0 {
		return 0
	}
	return b
}

// spillDir resolves where spill temp dirs are created ("" = OS temp dir).
func (c Config) spillDir() string {
	if c.SpillDir != "" {
		return c.SpillDir
	}
	return os.Getenv("FSJOIN_SPILL_DIR")
}

// Context is the per-task emit/counter surface handed to mappers, combiners
// and reducers.
type Context struct {
	// TaskID is the index of the running task within its phase.
	TaskID int
	// Job exposes the job configuration to tasks.
	Job Config

	out      []KV
	shuffle  *shuffleSink
	counters *Counters
	local    map[string]int64
	polls    uint32 // CheckCancel call count (per-task, single goroutine)
}

// Emit appends an output pair. Map tasks of jobs with a reduce phase route
// the pair straight into its reduce partition.
func (c *Context) Emit(key string, value any) {
	if c.shuffle != nil {
		c.shuffle.add(key, value)
		return
	}
	c.out = append(c.out, KV{Key: key, Value: value})
}

// Inc adds delta to a job counter. Increments accumulate task-locally and
// are merged into the job counters when the task finishes.
func (c *Context) Inc(counter string, delta int64) {
	if c.local == nil {
		c.local = make(map[string]int64, 8)
	}
	c.local[counter] += delta
}

// flushCounters merges task-local counters into the job counters.
func (c *Context) flushCounters() {
	for k, v := range c.local {
		c.counters.Inc(k, v)
	}
	c.local = nil
}

// discard releases everything a failed or abandoned task attempt buffered
// — notably its shuffle sink's spill files. Only losing attempts are
// discarded (retry predecessors, lost speculative copies, final failures);
// the winning context's sink is handed to the reduce phase and reclaimed
// through release.
func (c *Context) discard() {
	if c == nil {
		return
	}
	c.shuffle.close()
	c.local = nil
}

// absorb folds another context's task-local counters into c. Nested
// contexts (the combiner's) absorb into their owning map context instead
// of flushing to the job directly, so their counts ride the attempt's
// winner-only flush: a retried or abandoned attempt must contribute
// nothing, combiner increments included.
func (c *Context) absorb(other *Context) {
	for k, v := range other.local {
		c.Inc(k, v)
	}
	other.local = nil
}

// Metrics records everything measured while running a job, plus the
// simulated cluster makespan.
type Metrics struct {
	Job               string
	MapTasks          int
	ReduceTasks       int
	MapInputRecords   int64
	MapOutputRecords  int64
	MapOutputBytes    int64
	ShuffleRecords    int64 // after combiner
	ShuffleBytes      int64 // after combiner
	ReduceInputGroups int64
	OutputRecords     int64
	OutputBytes       int64
	PerReduceRecords  []int64
	PerReduceBytes    []int64
	MapTaskTime       []time.Duration
	ReduceTaskTime    []time.Duration
	// GroupSpillTime is the per-reduce-task external-memory charge for key
	// groups exceeding the reducer memory (see Cluster.ReducerMemoryBytes).
	GroupSpillTime []time.Duration
	// SpillRuns and SpillBytes total the sorted runs the out-of-core
	// shuffle wrote under Config.MemoryBudgetBytes (winning attempts
	// only); ShufflePeakBytes is the largest in-memory shuffle buffer any
	// map task held. All zero when the budget is unbounded.
	SpillRuns          int64
	SpillBytes         int64
	ShufflePeakBytes   int64
	SimulatedMapTime   time.Duration
	SimulatedShuffle   time.Duration
	SimulatedReduce    time.Duration
	SimulatedTotalTime time.Duration
	WallTime           time.Duration
}

// LoadImbalance returns max/mean of per-reducer shuffle bytes — 1.0 is a
// perfectly balanced reduce phase. Returns 0 when there was no reduce input.
func (m *Metrics) LoadImbalance() float64 {
	var sum, max int64
	for _, b := range m.PerReduceBytes {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 || len(m.PerReduceBytes) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(m.PerReduceBytes))
	return float64(max) / mean
}

// Result is the outcome of one job.
type Result struct {
	// Output holds all reducer (or mapper, for map-only jobs) emissions in
	// deterministic order: by reduce task, then key, then emission order.
	Output []KV
	// Counters are the merged user counters.
	Counters *Counters
	// Metrics are the measured and simulated execution statistics.
	Metrics Metrics
}

// DefaultPartitioner hashes the key with FNV-1a. The loop is inlined over
// the string — routing is bit-identical to hash/fnv, without allocating a
// hasher or a []byte copy per key.
func DefaultPartitioner(key string, reducers int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(reducers))
}

// Run executes one MapReduce job over the input. A nil reducer makes the
// job map-only. Map tasks emit straight into per-reduce-task buffers
// (map-side pre-partitioning), so there is no separate partition pass; each
// reduce task then fetches, groups and sorts its own partition — through
// the configured transport (Config.Runtime), in memory by default. Tasks
// run sequentially or on a bounded worker pool per Config.Parallelism,
// with per-task output slots so assembly order — and therefore Output,
// counters and every shuffle metric — is identical at any parallelism
// level, any transport, and any worker-process count.
func Run(cfg Config, input []KV, mapper Mapper, reducer Reducer) (*Result, error) {
	if mapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", cfg.Name)
	}
	cl := cfg.cluster()
	mapTasks := cfg.MapTasks
	if mapTasks <= 0 {
		mapTasks = cl.Slots()
	}
	if mapTasks > len(input) {
		mapTasks = len(input)
	}
	if mapTasks < 1 {
		mapTasks = 1
	}
	reduceTasks := cfg.resolvedReduceTasks()
	part := cfg.Partitioner
	if part == nil {
		part = DefaultPartitioner
	}
	combineFolder, _ := cfg.Combiner.(Folder)
	foldingReducer, folding := reducer.(FoldingReducer)
	env := &jobEnv{
		cfg:            cfg,
		cl:             cl,
		mapper:         mapper,
		reducer:        reducer,
		part:           part,
		mapTasks:       mapTasks,
		reduceTasks:    reduceTasks,
		combineFolder:  combineFolder,
		folding:        folding,
		foldingReducer: foldingReducer,
		budget:         cfg.memoryBudget(),
		sdir:           cfg.spillDir(),
		quarantine:     &quarantineState{},
	}
	if cfg.Runtime.Executor != nil {
		return runDistributed(env, input)
	}
	return runLocal(env, input)
}

// jobEnv bundles one run's resolved execution parameters, shared by every
// task of the local and distributed paths.
type jobEnv struct {
	cfg            Config
	cl             *Cluster
	mapper         Mapper
	reducer        Reducer
	part           func(string, int) int
	mapTasks       int
	reduceTasks    int
	combineFolder  Folder
	folding        bool
	foldingReducer FoldingReducer
	budget         int64
	sdir           string
	quarantine     *quarantineState
}

// openTransport opens the job's shuffle channel on the configured (or
// default in-memory) transport.
func (env *jobEnv) openTransport() (JobTransport, error) {
	tr := env.cfg.Runtime.Transport
	if tr == nil {
		tr = MemoryTransport()
	}
	return tr.Open(TransportSpec{Job: env.cfg.Name, MapTasks: env.mapTasks, ReduceTasks: env.reduceTasks})
}

// runLocal is the in-process engine: every task executes here, and only
// the map→reduce hand-off goes through the transport.
func runLocal(env *jobEnv, input []KV) (*Result, error) {
	cfg, cl, mapTasks, reduceTasks := env.cfg, env.cl, env.mapTasks, env.reduceTasks
	reducer := env.reducer
	res := &Result{Counters: NewCounters()}
	m := &res.Metrics
	m.Job = cfg.Name
	m.MapTasks = mapTasks
	m.ReduceTasks = reduceTasks
	m.MapInputRecords = int64(len(input))
	wallStart := time.Now()

	// ---- Map phase ----
	splits := splitInput(input, mapTasks)
	m.MapTaskTime = make([]time.Duration, mapTasks)
	var (
		mapOutputs [][]KV       // map-only jobs
		jt         JobTransport // jobs with a reduce phase
		taskRecs   []int64
		taskBytes  []int64
		taskStats  []spill.Stats
	)
	if reducer == nil {
		mapOutputs = make([][]KV, mapTasks)
	} else {
		var err error
		if jt, err = env.openTransport(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		taskRecs = make([]int64, mapTasks)
		taskBytes = make([]int64, mapTasks)
		taskStats = make([]spill.Stats, mapTasks)
	}
	mapErr := runPhase(cfg.Parallelism, mapTasks, func(t int) error {
		if err := cfg.cancelled(); err != nil {
			return fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		start := time.Now()
		ctx, err := env.runMapAttempts(res.Counters, t, splits[t])
		if err != nil {
			return taskErr(cfg.Name, PhaseMap, t, err)
		}
		m.MapTaskTime[t] = time.Since(start)
		if reducer == nil {
			ctx.flushCounters()
			mapOutputs[t] = ctx.out
			return nil
		}
		recs, bytes, st, ferr := env.finishMapTask(res.Counters, ctx)
		if ferr != nil {
			return taskErr(cfg.Name, PhaseMap, t, ferr)
		}
		taskStats[t], taskRecs[t], taskBytes[t] = st, recs, bytes
		// Hand the winning attempt's partitions to the reduce phase. The
		// in-memory transport keeps the sink live; a filesystem transport
		// serialises and owns it from here.
		if _, cerr := jt.CommitMap(t, ctx.shuffle, TaskMeta{
			Records: recs, Bytes: bytes, TaskNanos: int64(m.MapTaskTime[t]), Spill: st,
		}); cerr != nil {
			ctx.shuffle.close()
			return taskErr(cfg.Name, PhaseMap, t, cerr)
		}
		if derr := injectDeliveryFault(cfg, res.Counters, jt, t); derr != nil {
			return taskErr(cfg.Name, PhaseMap, t, derr)
		}
		return nil
	})
	if mapErr != nil {
		if jt != nil {
			jt.Close()
		}
		return nil, mapErr
	}

	if reducer == nil {
		// Map-only job: concatenate map outputs in task order.
		for _, out := range mapOutputs {
			for _, kv := range out {
				m.ShuffleRecords++
				m.ShuffleBytes += int64(kvBytes(kv))
			}
			res.Output = append(res.Output, out...)
		}
		m.MapOutputRecords = m.ShuffleRecords
		m.MapOutputBytes = m.ShuffleBytes
		m.OutputRecords = int64(len(res.Output))
		m.OutputBytes = m.ShuffleBytes
		m.ReduceTasks = 0
		m.SimulatedMapTime = simPhase(cl, m.MapTaskTime)
		m.SimulatedTotalTime = m.SimulatedMapTime
		m.WallTime = time.Since(wallStart)
		return res, nil
	}
	for t := 0; t < mapTasks; t++ {
		m.ShuffleRecords += taskRecs[t]
		m.ShuffleBytes += taskBytes[t]
		m.SpillRuns += taskStats[t].Runs
		m.SpillBytes += taskStats[t].SpilledBytes
		if taskStats[t].PeakBytes > m.ShufflePeakBytes {
			m.ShufflePeakBytes = taskStats[t].PeakBytes
		}
	}
	m.MapOutputRecords = m.ShuffleRecords
	m.MapOutputBytes = m.ShuffleBytes

	// ---- Reduce phase (per-reducer shuffle, group, sort, reduce) ----
	m.PerReduceRecords = make([]int64, reduceTasks)
	m.PerReduceBytes = make([]int64, reduceTasks)
	m.ReduceTaskTime = make([]time.Duration, reduceTasks)
	m.GroupSpillTime = make([]time.Duration, reduceTasks)
	reduceOuts := make([][]KV, reduceTasks)
	groupCounts := make([]int64, reduceTasks)
	reduceErr := runPhase(cfg.Parallelism, reduceTasks, func(t int) error {
		if err := cfg.cancelled(); err != nil {
			return fmt.Errorf("mapreduce: job %q: %w", cfg.Name, err)
		}
		in, gerr := env.fetchReduceInput(jt, t)
		if gerr != nil {
			return taskErr(cfg.Name, PhaseReduce, t, gerr)
		}
		m.PerReduceRecords[t] = in.recs
		m.PerReduceBytes[t] = in.bytes
		if in.maxWays > 1 {
			res.Counters.Max(CounterSpillMergeWays, int64(in.maxWays))
		}
		groupCounts[t] = int64(len(in.keys))
		start := time.Now()
		ctx, err := env.runReduceAttempts(res.Counters, t, in)
		if err != nil {
			return taskErr(cfg.Name, PhaseReduce, t, err)
		}
		m.ReduceTaskTime[t] = time.Since(start)
		ctx.flushCounters()
		reduceOuts[t] = ctx.out
		for _, b := range in.gBytes {
			m.GroupSpillTime[t] += cl.groupSpillTime(b)
		}
		for mt := 0; mt < mapTasks; mt++ {
			jt.ReleasePartition(mt, t)
		}
		return nil
	})
	if reduceErr != nil {
		jt.Close()
		return nil, reduceErr
	}
	jt.Close()
	for t := 0; t < reduceTasks; t++ {
		m.ReduceInputGroups += groupCounts[t]
		res.Output = append(res.Output, reduceOuts[t]...)
	}
	m.OutputRecords = int64(len(res.Output))
	for _, kv := range res.Output {
		m.OutputBytes += int64(kvBytes(kv))
	}

	applyCostModel(cl, m, mapTasks, reduceTasks)
	m.WallTime = time.Since(wallStart)
	return res, nil
}

// runMapAttempts executes one map task's full attempt loop — retries,
// speculation and, on deterministic failure, skip mode — and returns the
// winning context. The attempt loop is parameterised by its split so skip
// mode can re-enter it over a working set with poison records removed.
// counters receives the attempt bookkeeping: the job counters locally, a
// task-local set on a distributed worker.
func (env *jobEnv) runMapAttempts(counters *Counters, t int, split []KV) (*Context, error) {
	cfg := env.cfg
	mapAttempts := func(split []KV) (*Context, error) {
		return runAttempts(cfg, counters, func(a int) (*Context, error) {
			ctx := &Context{TaskID: t, Job: cfg, counters: counters}
			if env.reducer != nil {
				ctx.shuffle = newShuffleSink(env.part, env.reduceTasks, env.combineFolder, env.budget, env.sdir, cfg.cancelCheck())
			} else {
				ctx.out = make([]KV, 0, len(split)+16)
			}
			f := cfg.decideFault(PhaseMap, t, a)
			if err := f.injectErr(counters); err != nil {
				return ctx, err
			}
			return ctx, guard(func() {
				f.injectEnter(counters)
				runTask(ctx, split, recordFaultWrap(env.mapper, f, counters))
				if cfg.Combiner != nil {
					fc := cfg.decideFault(PhaseCombine, t, a)
					fc.injectEnter(counters)
					switch {
					case env.reducer == nil:
						ctx.out = combine(cfg, ctx, cfg.Combiner, counters)
					case env.combineFolder == nil:
						ctx.shuffle = combineSink(cfg, ctx, cfg.Combiner, counters)
					default:
						// A Folder combiner already folded at Emit time.
					}
					fc.injectExit(counters)
				}
				f.injectExit(counters)
			})
		})
	}
	ctx, err := mapAttempts(split)
	if err != nil && cfg.Fault.SkipBadRecords && !isCancellation(err) {
		ctx, err = skipMapRecords(cfg, counters, env.quarantine, t,
			split, env.mapper, mapAttempts, err)
	}
	return ctx, err
}

// finishMapTask settles a winning map attempt's shuffle accounting: spill
// counters are flushed winner-only (the surviving attempt's buffer is the
// one whose runs the reduce phase merges; counters are recorded only
// under an active budget so unbounded runs keep their historical counter
// surface) and the sink's totals are taken outside the timed section — a
// folding sink that spilled pays one merge pass here.
func (env *jobEnv) finishMapTask(counters *Counters, ctx *Context) (recs, bytes int64, st spill.Stats, err error) {
	st = ctx.shuffle.stats()
	if st.Runs > 0 {
		ctx.Inc(CounterSpillRuns, st.Runs)
		ctx.Inc(CounterSpillBytes, st.SpilledBytes)
	}
	if st.MergeWays > 1 {
		// A non-folding combiner already merged spilled runs map-side.
		counters.Max(CounterSpillMergeWays, st.MergeWays)
	}
	ctx.flushCounters()
	if env.budget > 0 {
		counters.Max(CounterShufflePeak, st.PeakBytes)
	}
	recs, bytes, terr := ctx.shuffle.totals()
	if terr != nil {
		ctx.shuffle.close()
		return 0, 0, st, terr
	}
	return recs, bytes, st, nil
}

// reduceInput is one reduce task's fetched, grouped and key-sorted input.
type reduceInput struct {
	keys    []string
	groups  map[string][]any // non-folding reducers
	folded  map[string]any   // folding reducers
	maxWays int
	recs    int64
	bytes   int64
	gBytes  map[string]int64
}

// fetchReduceInput pulls reduce task t's partition from every map task in
// map-task order — the record order a global partition pass would produce
// (its key-sorted merge when the task spilled; grouping plus the key sort
// below make both orders identical downstream) — then groups and sorts.
// Guarded so a panicking Fold aborts the task, not the process.
func (env *jobEnv) fetchReduceInput(jt JobTransport, t int) (*reduceInput, error) {
	in := &reduceInput{gBytes: make(map[string]int64)}
	if gerr := guard(func() {
		if env.folding {
			in.folded = make(map[string]any)
		} else {
			in.groups = make(map[string][]any)
		}
		for mt := 0; mt < env.mapTasks; mt++ {
			ways, derr := jt.FetchPartition(mt, t, func(key string, value any, b int64) {
				if env.folding {
					if acc, seen := in.folded[key]; seen {
						in.folded[key] = env.foldingReducer.Fold(acc, value)
					} else {
						in.keys = append(in.keys, key)
						in.folded[key] = value
					}
				} else {
					vs, seen := in.groups[key]
					if !seen {
						in.keys = append(in.keys, key)
					}
					in.groups[key] = append(vs, value)
				}
				in.recs++
				in.bytes += b
				in.gBytes[key] += b
			})
			if derr != nil {
				panic(&enginePanic{err: fmt.Errorf("shuffle fetch: %w", derr)})
			}
			if ways > in.maxWays {
				in.maxWays = ways
			}
		}
		sort.Strings(in.keys)
	}); gerr != nil {
		return nil, gerr
	}
	return in, nil
}

// runReduceAttempts executes one reduce task's attempt loop (plus skip
// mode) over fetched input and returns the winning context.
func (env *jobEnv) runReduceAttempts(counters *Counters, t int, in *reduceInput) (*Context, error) {
	cfg, reducer := env.cfg, env.reducer
	// reduceKeys is the task body shared by real attempts and skip-mode
	// probes: the reducer run over one key slice, realising a
	// FaultRecordPanic at its group index. counters is nil for probes,
	// which inject without counting.
	reduceKeys := func(ctx *Context, ks []string, f Fault, counters *Counters) {
		if s, ok := reducer.(Setupper); ok {
			s.Setup(ctx)
		}
		for i, k := range ks {
			ctx.CheckCancel()
			if f.Kind == FaultRecordPanic && i == f.Record {
				if counters != nil {
					counters.Inc(counterInjectedPrefix+f.Kind.String(), 1)
				}
				panic(f.Msg)
			}
			if env.folding {
				env.foldingReducer.FinishFold(ctx, k, in.folded[k])
			} else {
				reducer.Reduce(ctx, k, in.groups[k])
			}
		}
		if c, ok := reducer.(Cleanupper); ok {
			c.Cleanup(ctx)
		}
	}
	reduceAttempts := func(ks []string) (*Context, error) {
		return runAttempts(cfg, counters, func(a int) (*Context, error) {
			ctx := &Context{TaskID: t, Job: cfg, counters: counters}
			f := cfg.decideFault(PhaseReduce, t, a)
			if err := f.injectErr(counters); err != nil {
				return ctx, err
			}
			return ctx, guard(func() {
				f.injectEnter(counters)
				reduceKeys(ctx, ks, f, counters)
				f.injectExit(counters)
			})
		})
	}
	ctx, err := reduceAttempts(in.keys)
	if err != nil && cfg.Fault.SkipBadRecords && !isCancellation(err) {
		probeBody := func(ctx *Context, ks []string, f Fault) {
			reduceKeys(ctx, ks, f, nil)
		}
		ctx, err = skipReduceGroups(cfg, counters, env.quarantine, t,
			in.keys, probeBody, reduceAttempts, err)
	}
	return ctx, err
}

// applyCostModel fills the simulated cluster times from measured metrics.
func applyCostModel(cl *Cluster, m *Metrics, mapTasks, reduceTasks int) {
	m.SimulatedMapTime = simPhase(cl, m.MapTaskTime)
	m.SimulatedShuffle = cl.spillTime(m.MapOutputBytes, mapTasks) +
		cl.measuredSpillTime(m.SpillBytes)
	reduceDurs := make([]time.Duration, reduceTasks)
	for t := range reduceDurs {
		// Each reduce task fetches its own shuffle share (skewed reducers
		// stall the phase), pays its measured CPU, and any external-merge
		// passes for oversized groups.
		reduceDurs[t] = cl.fetchTime(m.PerReduceBytes[t]) + cl.scaleCPU(m.ReduceTaskTime[t]) +
			cl.TaskOverhead + m.GroupSpillTime[t]
	}
	m.SimulatedReduce = cl.makespan(reduceDurs)
	m.SimulatedTotalTime = m.SimulatedMapTime + m.SimulatedShuffle + m.SimulatedReduce
}

// runTask feeds one split through a mapper with lifecycle hooks, polling
// for cancellation on the engine's bounded stride.
func runTask(ctx *Context, split []KV, mapper Mapper) {
	if s, ok := mapper.(Setupper); ok {
		s.Setup(ctx)
	}
	for _, kv := range split {
		ctx.CheckCancel()
		mapper.Map(ctx, kv)
	}
	if c, ok := mapper.(Cleanupper); ok {
		c.Cleanup(ctx)
	}
}

// combine runs the combiner over one map-only task's output, preserving key
// first-appearance order for determinism. Combiners implementing Folder use
// an allocation-light pairwise fold. (Jobs with a reduce phase combine
// through the pre-partitioned sink instead; see shuffle.go.)
func combine(cfg Config, mapCtx *Context, combiner Reducer, counters *Counters) []KV {
	if f, ok := combiner.(Folder); ok {
		return foldCombine(mapCtx.out, f)
	}
	grouped := make(map[string][]any, len(mapCtx.out)/2+1)
	order := make([]string, 0, len(mapCtx.out)/2+1)
	for _, kv := range mapCtx.out {
		vs, seen := grouped[kv.Key]
		if !seen {
			order = append(order, kv.Key)
		}
		grouped[kv.Key] = append(vs, kv.Value)
	}
	cctx := &Context{TaskID: mapCtx.TaskID, Job: cfg, counters: counters}
	cctx.out = make([]KV, 0, len(order))
	if s, ok := combiner.(Setupper); ok {
		s.Setup(cctx)
	}
	for _, k := range order {
		combiner.Reduce(cctx, k, grouped[k])
	}
	if c, ok := combiner.(Cleanupper); ok {
		c.Cleanup(cctx)
	}
	mapCtx.absorb(cctx)
	return cctx.out
}

// foldCombine merges one map task's output with a pairwise fold, keeping
// key first-appearance order.
func foldCombine(out []KV, f Folder) []KV {
	slot := make(map[string]int, len(out)/2+1)
	merged := make([]KV, 0, len(out)/2+1)
	for _, kv := range out {
		if i, ok := slot[kv.Key]; ok {
			merged[i].Value = f.Fold(merged[i].Value, kv.Value)
			continue
		}
		slot[kv.Key] = len(merged)
		merged = append(merged, kv)
	}
	return merged
}

// simPhase converts measured task times into a simulated phase makespan.
func simPhase(cl *Cluster, taskTimes []time.Duration) time.Duration {
	if len(taskTimes) == 0 {
		return 0
	}
	durs := make([]time.Duration, len(taskTimes))
	for i, d := range taskTimes {
		durs[i] = cl.scaleCPU(d) + cl.TaskOverhead
	}
	return cl.makespan(durs)
}

// splitInput slices input into n contiguous, near-equal splits.
func splitInput(input []KV, n int) [][]KV {
	splits := make([][]KV, n)
	base, rem := len(input)/n, len(input)%n
	off := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		splits[i] = input[off : off+sz]
		off += sz
	}
	return splits
}
