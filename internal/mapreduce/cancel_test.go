package mapreduce

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestMidMapCancelPromptAndClean cancels the job context from inside a
// map task and asserts the job aborts mid-task — within the bounded
// CheckCancel stride, not at the next task boundary — with an error that
// is both a *TaskError and a context.Canceled, and that every spill file
// the aborted attempt wrote is removed.
func TestMidMapCancelPromptAndClean(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Enough records that the per-record stride fires mid-task: the
	// single map task sees 4000 records and cancels at the 10th.
	input := budgetInput(4000, 6, 400)
	seen := 0
	mapper := MapFunc(func(c *Context, kv KV) {
		seen++
		if seen == 10 {
			cancel()
		}
		wcMapper{}.Map(c, kv)
	})
	cfg := Config{
		Cluster: tinyCluster(), MapTasks: 1, ReduceTasks: 2,
		Context: ctx, MemoryBudgetBytes: 2 << 10, SpillDir: t.TempDir(),
	}
	_, err := Run(cfg, input, mapper, wcReducer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a *TaskError", err)
	}
	if te.Phase != PhaseMap || te.Task != 0 {
		t.Fatalf("TaskError = %+v, want map task 0", te)
	}
	// Cancellation must not be retried: the single attempt's records are
	// all the mapper ever saw (10 before cancel plus at most one stride).
	if seen > 10+cancelStride {
		t.Fatalf("mapper saw %d records after cancel; stride bound is %d", seen, cancelStride)
	}
	noSpillFiles(t, cfg.SpillDir, time.Second)
}

// TestMidReduceCancelPromptAndClean cancels from inside a reduce task's
// key loop (the satellite case: a deadline firing mid-stage on a large
// fragment) and asserts prompt typed abort plus spill-file cleanup.
func TestMidReduceCancelPromptAndClean(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	input := budgetInput(24, 40, 400)
	reducer := ReduceFunc(func(c *Context, key string, vs []any) {
		cancel()
		// Simulate a huge group: the stride must interrupt this loop.
		for i := 0; i < 64*cancelStride; i++ {
			c.CheckCancel()
		}
		wcReducer{}.Reduce(c, key, vs)
	})
	cfg := Config{
		Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		Context: ctx, MemoryBudgetBytes: 2 << 10, SpillDir: t.TempDir(),
	}
	start := time.Now()
	_, err := Run(cfg, input, wcMapper{}, reducer)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Phase != PhaseReduce {
		t.Fatalf("err = %v, want a reduce *TaskError", err)
	}
	// Promptness: one stride of no-op CheckCancels, not 64 of them per key
	// times retries.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled reduce took %v", d)
	}
	noSpillFiles(t, cfg.SpillDir, time.Second)
}

// TestCancellationSkipsRetriesAndSkipMode proves a cancellation is never
// treated as a task failure to retry or a poison record to bisect: with
// skip mode armed, a cancelled job still returns the cancellation and
// quarantines nothing.
func TestCancellationSkipsRetriesAndSkipMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	mapper := MapFunc(func(c *Context, kv KV) {
		attempts++
		cancel()
		for i := 0; i < 2*cancelStride; i++ {
			c.CheckCancel()
		}
	})
	cfg := Config{
		Cluster: tinyCluster(), MapTasks: 1, ReduceTasks: 1, Context: ctx,
		Fault: FaultPolicy{SkipBadRecords: true, MaxAttempts: 4},
	}
	res, err := Run(cfg, []KV{{Key: "a", Value: "x"}, {Key: "b", Value: "y"}}, mapper, wcReducer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled job returned a result")
	}
	if attempts != 1 {
		t.Fatalf("map body ran %d times, want 1 (no retries, no bisection probes)", attempts)
	}
}

// TestEnginePanicPreservesErrorChain pins guard's contract: an
// engine-internal panic carries its error through unwrapped, while a
// user-code panic stays an opaque "task failed" error.
func TestEnginePanicPreservesErrorChain(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	if err := guard(func() { panic(&enginePanic{err: sentinel}) }); !errors.Is(err, sentinel) {
		t.Fatalf("engine panic: err = %v, want chain to sentinel", err)
	}
	if err := guard(func() { panic("user boom") }); err == nil || errors.Is(err, sentinel) {
		t.Fatalf("user panic: err = %v, want opaque task failure", err)
	}
}
