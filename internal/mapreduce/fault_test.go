package mapreduce

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakyMapper panics on its first failUntil attempts of each task, then
// behaves like wcMapper — the classic transient-task-failure scenario. The
// panic message carries the attempt number: a transient fault presents a
// different symptom each time, unlike a deterministic bug, which the engine
// gives up on after one identical confirming retry. The attempt counters
// are mutex-guarded: with Parallelism > 1 (or speculation) concurrent task
// attempts hit the shared map.
type flakyMapper struct {
	mu        sync.Mutex
	attempts  map[int]int
	failUntil int
}

func (f *flakyMapper) Map(ctx *Context, kv KV) {
	f.mu.Lock()
	if f.attempts[ctx.TaskID] < f.failUntil {
		f.attempts[ctx.TaskID]++
		n := f.attempts[ctx.TaskID]
		f.mu.Unlock()
		panic(fmt.Sprintf("injected map failure (attempt %d)", n))
	}
	f.mu.Unlock()
	for _, w := range strings.Fields(kv.Value.(string)) {
		ctx.Emit(w, int64(1))
	}
}

func TestTransientMapFailureRetried(t *testing.T) {
	input := wcInput("a b a", "b c")
	want, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		flaky := &flakyMapper{attempts: map[int]int{}, failUntil: 2}
		res, err := Run(Config{Cluster: tinyCluster(), MaxAttempts: 4, Parallelism: par},
			input, flaky, wcReducer{})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(res.Output, want.Output) {
			t.Fatalf("parallelism %d: retried job output differs: %v vs %v",
				par, res.Output, want.Output)
		}
		if res.Counters.Get(CounterRetries) == 0 {
			t.Fatalf("parallelism %d: no retries counted", par)
		}
	}
}

func TestPermanentMapFailureAborts(t *testing.T) {
	for _, par := range []int{1, 4} {
		flaky := &flakyMapper{attempts: map[int]int{}, failUntil: 1 << 30}
		_, err := Run(Config{Cluster: tinyCluster(), MaxAttempts: 3, Parallelism: par},
			wcInput("a"), flaky, wcReducer{})
		if err == nil {
			t.Fatalf("parallelism %d: permanently failing task did not abort the job", par)
		}
		if !strings.Contains(err.Error(), "injected map failure") {
			t.Fatalf("parallelism %d: error lost the cause: %v", par, err)
		}
	}
}

// TestDeterministicFailureStopsEarly: a task that fails identically on its
// retry is a deterministic bug; the engine must stop after one confirming
// retry instead of burning all MaxAttempts.
func TestDeterministicFailureStopsEarly(t *testing.T) {
	attempts := 0
	mapper := MapFunc(func(ctx *Context, kv KV) {
		attempts++
		panic("deterministic boom")
	})
	_, err := Run(Config{Cluster: tinyCluster(), MapTasks: 1, MaxAttempts: 4}, wcInput("only"), mapper, wcReducer{})
	if err == nil {
		t.Fatal("deterministically failing task did not abort the job")
	}
	if !strings.Contains(err.Error(), "deterministic boom") {
		t.Fatalf("error lost the cause: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (first failure + one confirming retry)", attempts)
	}
}

// flakyReducer panics on its first attempt of every task; mutex-guarded
// for the same reason as flakyMapper.
type flakyReducer struct {
	mu       sync.Mutex
	attempts map[int]int
}

func (f *flakyReducer) Reduce(ctx *Context, key string, values []any) {
	f.mu.Lock()
	if f.attempts[ctx.TaskID] == 0 {
		f.attempts[ctx.TaskID]++
		f.mu.Unlock()
		panic("injected reduce failure")
	}
	f.mu.Unlock()
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
}

func TestTransientReduceFailureRetried(t *testing.T) {
	input := wcInput("x y x", "y z")
	want, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		res, err := Run(Config{Cluster: tinyCluster(), Parallelism: par},
			input, wcMapper{}, &flakyReducer{attempts: map[int]int{}})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(res.Output, want.Output) {
			t.Fatalf("parallelism %d: reduce retry changed output", par)
		}
	}
}

func TestRetriesDoNotDuplicateEmissions(t *testing.T) {
	// A task that emits before panicking must not leak its partial output.
	calls := 0
	mapper := MapFunc(func(ctx *Context, kv KV) {
		ctx.Emit("k", int64(1))
		if calls == 0 {
			calls++
			panic("after emit")
		}
	})
	res, err := Run(Config{Cluster: tinyCluster(), MapTasks: 1}, wcInput("only"), mapper, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Value.(int64) != 1 {
		t.Fatalf("partial emissions leaked: %v", res.Output)
	}
}

// TestWithRetriesTable pins withRetries' edge cases: the MaxAttempts 0/1
// boundaries, error-message propagation from the final attempt, and the
// retry counter under the identical-deterministic-panic early stop.
func TestWithRetriesTable(t *testing.T) {
	// failures[i] is attempt i's error message ("" = success); attempts
	// beyond the slice succeed.
	cases := []struct {
		name         string
		maxAttempts  int
		failures     []string
		wantErr      string // "" = success expected
		wantAttempts int
		wantRetries  int64
	}{
		{
			name:        "zero max attempts means four",
			maxAttempts: 0,
			failures:    []string{"e0", "e1", "e2", "e3", "e4"},
			wantErr:     "e3", wantAttempts: 4, wantRetries: 3,
		},
		{
			name:        "one attempt means no retry",
			maxAttempts: 1,
			failures:    []string{"only"},
			wantErr:     "only", wantAttempts: 1, wantRetries: 0,
		},
		{
			name:        "success on first attempt",
			maxAttempts: 3,
			failures:    nil,
			wantErr:     "", wantAttempts: 1, wantRetries: 0,
		},
		{
			name:        "success on final attempt",
			maxAttempts: 3,
			failures:    []string{"a", "b"},
			wantErr:     "", wantAttempts: 3, wantRetries: 2,
		},
		{
			name:        "final attempt error propagates verbatim",
			maxAttempts: 3,
			failures:    []string{"first", "second", "third"},
			wantErr:     "third", wantAttempts: 3, wantRetries: 2,
		},
		{
			name:        "identical deterministic failure stops after one confirming retry",
			maxAttempts: 4,
			failures:    []string{"same", "same", "same", "same"},
			wantErr:     "same", wantAttempts: 2, wantRetries: 1,
		},
		{
			name:        "distinct then identical failure stops at the repeat",
			maxAttempts: 8,
			failures:    []string{"flaky", "flaky", "flaky", "flaky"},
			wantErr:     "flaky", wantAttempts: 2, wantRetries: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counters := NewCounters()
			attempts := 0
			err := withRetries(Config{MaxAttempts: tc.maxAttempts}, counters, func(a int) error {
				if a != attempts {
					t.Fatalf("attempt index %d, want %d", a, attempts)
				}
				attempts++
				if a < len(tc.failures) && tc.failures[a] != "" {
					return errors.New(tc.failures[a])
				}
				return nil
			})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("err = %v, want success", err)
				}
			} else if err == nil || err.Error() != tc.wantErr {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
			if attempts != tc.wantAttempts {
				t.Fatalf("attempts = %d, want %d", attempts, tc.wantAttempts)
			}
			if got := counters.Get(CounterRetries); got != tc.wantRetries {
				t.Fatalf("retries = %d, want %d", got, tc.wantRetries)
			}
		})
	}
}

// TestWithRetriesBackoff: a backoff policy is consulted before every
// retry (not the first attempt) and its sleeps are counted.
func TestWithRetriesBackoff(t *testing.T) {
	counters := NewCounters()
	var consulted []int
	cfg := Config{MaxAttempts: 3, Fault: FaultPolicy{
		Backoff: func(retry int) time.Duration {
			consulted = append(consulted, retry)
			return time.Microsecond
		},
	}}
	calls := 0
	err := withRetries(cfg, counters, func(a int) error {
		calls++
		if a < 2 {
			return fmt.Errorf("fail %d", a)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if !reflect.DeepEqual(consulted, []int{1, 2}) {
		t.Fatalf("backoff consulted for retries %v, want [1 2]", consulted)
	}
	if counters.Get(CounterBackoffs) != 2 {
		t.Fatalf("backoffs = %d, want 2", counters.Get(CounterBackoffs))
	}
}
