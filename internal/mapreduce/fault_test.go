package mapreduce

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// flakyMapper panics on its first failUntil attempts of each task, then
// behaves like wcMapper — the classic transient-task-failure scenario. The
// panic message carries the attempt number: a transient fault presents a
// different symptom each time, unlike a deterministic bug, which the engine
// gives up on after one identical confirming retry.
type flakyMapper struct {
	attempts  map[int]int
	failUntil int
}

func (f *flakyMapper) Map(ctx *Context, kv KV) {
	if f.attempts[ctx.TaskID] < f.failUntil {
		f.attempts[ctx.TaskID]++
		panic(fmt.Sprintf("injected map failure (attempt %d)", f.attempts[ctx.TaskID]))
	}
	for _, w := range strings.Fields(kv.Value.(string)) {
		ctx.Emit(w, int64(1))
	}
}

func TestTransientMapFailureRetried(t *testing.T) {
	input := wcInput("a b a", "b c")
	flaky := &flakyMapper{attempts: map[int]int{}, failUntil: 2}
	res, err := Run(Config{Cluster: tinyCluster(), MaxAttempts: 4}, input, flaky, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, want.Output) {
		t.Fatalf("retried job output differs: %v vs %v", res.Output, want.Output)
	}
	if res.Counters.Get("mapreduce.task.retries") == 0 {
		t.Fatal("no retries counted")
	}
}

func TestPermanentMapFailureAborts(t *testing.T) {
	flaky := &flakyMapper{attempts: map[int]int{}, failUntil: 1 << 30}
	_, err := Run(Config{Cluster: tinyCluster(), MaxAttempts: 3}, wcInput("a"), flaky, wcReducer{})
	if err == nil {
		t.Fatal("permanently failing task did not abort the job")
	}
	if !strings.Contains(err.Error(), "injected map failure") {
		t.Fatalf("error lost the cause: %v", err)
	}
}

// TestDeterministicFailureStopsEarly: a task that fails identically on its
// retry is a deterministic bug; the engine must stop after one confirming
// retry instead of burning all MaxAttempts.
func TestDeterministicFailureStopsEarly(t *testing.T) {
	attempts := 0
	mapper := MapFunc(func(ctx *Context, kv KV) {
		attempts++
		panic("deterministic boom")
	})
	_, err := Run(Config{Cluster: tinyCluster(), MapTasks: 1, MaxAttempts: 4}, wcInput("only"), mapper, wcReducer{})
	if err == nil {
		t.Fatal("deterministically failing task did not abort the job")
	}
	if !strings.Contains(err.Error(), "deterministic boom") {
		t.Fatalf("error lost the cause: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (first failure + one confirming retry)", attempts)
	}
}

// flakyReducer panics on its first attempt of every task.
type flakyReducer struct {
	attempts map[int]int
}

func (f *flakyReducer) Reduce(ctx *Context, key string, values []any) {
	if f.attempts[ctx.TaskID] == 0 {
		f.attempts[ctx.TaskID]++
		panic("injected reduce failure")
	}
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
}

func TestTransientReduceFailureRetried(t *testing.T) {
	input := wcInput("x y x", "y z")
	res, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, &flakyReducer{attempts: map[int]int{}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Config{Cluster: tinyCluster()}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, want.Output) {
		t.Fatal("reduce retry changed output")
	}
}

func TestRetriesDoNotDuplicateEmissions(t *testing.T) {
	// A task that emits before panicking must not leak its partial output.
	calls := 0
	mapper := MapFunc(func(ctx *Context, kv KV) {
		ctx.Emit("k", int64(1))
		if calls == 0 {
			calls++
			panic("after emit")
		}
	})
	res, err := Run(Config{Cluster: tinyCluster(), MapTasks: 1}, wcInput("only"), mapper, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Value.(int64) != 1 {
		t.Fatalf("partial emissions leaked: %v", res.Output)
	}
}
