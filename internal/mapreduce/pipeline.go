package mapreduce

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Pipeline chains MapReduce jobs, feeding each job's output into the next
// and accumulating per-job metrics — the shape of every algorithm in this
// repository (ordering job → filter job → verification job).
type Pipeline struct {
	// Name labels the pipeline in reports.
	Name string
	// Cluster is the shared cost model for all stages; nil means default.
	Cluster *Cluster
	// Context, when non-nil, is inherited by every stage that does not set
	// its own; cancellation aborts the pipeline at the next task boundary.
	Context context.Context
	// Parallelism is inherited by every stage that leaves its
	// Config.Parallelism at zero; see Config.Parallelism for the semantics.
	Parallelism int
	// Fault is inherited by every stage that leaves its Config.Fault at
	// the zero value; see FaultPolicy. This is how a chaos schedule reaches
	// every job of a multi-stage algorithm.
	Fault FaultPolicy
	// MemoryBudgetBytes is inherited by every stage that leaves its
	// Config.MemoryBudgetBytes at zero; see Config.MemoryBudgetBytes. This
	// is how one Options.MemoryBudget reaches every job of an algorithm.
	MemoryBudgetBytes int64
	// SpillDir is inherited by every stage that leaves its Config.SpillDir
	// empty; see Config.SpillDir.
	SpillDir string

	stages []stageResult
}

type stageResult struct {
	metrics  Metrics
	counters map[string]int64
}

// NewPipeline returns a pipeline with the given name and cluster model.
func NewPipeline(name string, cluster *Cluster) *Pipeline {
	return &Pipeline{Name: name, Cluster: cluster}
}

// Run executes one stage, recording its metrics. The stage inherits the
// pipeline's cluster unless cfg already set one.
func (p *Pipeline) Run(cfg Config, input []KV, mapper Mapper, reducer Reducer) (*Result, error) {
	if cfg.Cluster == nil {
		cfg.Cluster = p.Cluster
	}
	if cfg.Context == nil {
		cfg.Context = p.Context
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = p.Parallelism
	}
	if cfg.Fault.isZero() {
		cfg.Fault = p.Fault
	}
	if cfg.MemoryBudgetBytes == 0 {
		cfg.MemoryBudgetBytes = p.MemoryBudgetBytes
	}
	if cfg.SpillDir == "" {
		cfg.SpillDir = p.SpillDir
	}
	res, err := Run(cfg, input, mapper, reducer)
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", p.Name, err)
	}
	p.stages = append(p.stages, stageResult{metrics: res.Metrics, counters: res.Counters.Snapshot()})
	return res, nil
}

// Stages returns the metrics of every executed stage in order.
func (p *Pipeline) Stages() []Metrics {
	out := make([]Metrics, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.metrics
	}
	return out
}

// StageTime returns the simulated time of the named stage (0 if absent).
func (p *Pipeline) StageTime(name string) time.Duration {
	for _, s := range p.stages {
		if s.metrics.Job == name {
			return s.metrics.SimulatedTotalTime
		}
	}
	return 0
}

// TotalSimulatedTime sums the simulated makespans of all stages — the
// pipeline's modelled end-to-end cluster time.
func (p *Pipeline) TotalSimulatedTime() time.Duration {
	var t time.Duration
	for _, s := range p.stages {
		t += s.metrics.SimulatedTotalTime
	}
	return t
}

// TotalShuffleBytes sums shuffle volume over all stages.
func (p *Pipeline) TotalShuffleBytes() int64 {
	var b int64
	for _, s := range p.stages {
		b += s.metrics.ShuffleBytes
	}
	return b
}

// TotalShuffleRecords sums shuffled record counts over all stages.
func (p *Pipeline) TotalShuffleRecords() int64 {
	var n int64
	for _, s := range p.stages {
		n += s.metrics.ShuffleRecords
	}
	return n
}

// Counter sums the named user counter over all stages.
func (p *Pipeline) Counter(name string) int64 {
	var n int64
	for _, s := range p.stages {
		n += s.counters[name]
	}
	return n
}

// MaxCounter returns the largest value the named counter took in any
// stage — the right aggregation for high-water marks such as
// "shuffle.peak.bytes", which summing would overstate.
func (p *Pipeline) MaxCounter(name string) int64 {
	var max int64
	for _, s := range p.stages {
		if v := s.counters[name]; v > max {
			max = v
		}
	}
	return max
}

// MaxLoadImbalance returns the worst reduce-phase load imbalance across
// stages (see Metrics.LoadImbalance).
func (p *Pipeline) MaxLoadImbalance() float64 {
	var worst float64
	for _, s := range p.stages {
		m := s.metrics
		if li := m.LoadImbalance(); li > worst {
			worst = li
		}
	}
	return worst
}

// Report renders a per-stage summary table.
func (p *Pipeline) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s\n", p.Name)
	fmt.Fprintf(&b, "%-24s %12s %14s %12s %12s %8s\n",
		"stage", "map-out", "shuffle-bytes", "groups", "output", "sim-time")
	for _, s := range p.stages {
		m := s.metrics
		fmt.Fprintf(&b, "%-24s %12d %14d %12d %12d %8.1fs\n",
			m.Job, m.MapOutputRecords, m.ShuffleBytes, m.ReduceInputGroups,
			m.OutputRecords, m.SimulatedTotalTime.Seconds())
	}
	fmt.Fprintf(&b, "%-24s %12d %14d %12s %12s %8.1fs\n",
		"TOTAL", p.TotalShuffleRecords(), p.TotalShuffleBytes(), "", "",
		p.TotalSimulatedTime().Seconds())
	return b.String()
}
