package mapreduce

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"fsjoin/internal/checkpoint"
)

// Pipeline chains MapReduce jobs, feeding each job's output into the next
// and accumulating per-job metrics — the shape of every algorithm in this
// repository (ordering job → filter job → verification job).
type Pipeline struct {
	// Name labels the pipeline in reports.
	Name string
	// Cluster is the shared cost model for all stages; nil means default.
	Cluster *Cluster
	// Context, when non-nil, is inherited by every stage that does not set
	// its own; cancellation aborts the pipeline at the next task boundary.
	Context context.Context
	// Parallelism is inherited by every stage that leaves its
	// Config.Parallelism at zero; see Config.Parallelism for the semantics.
	Parallelism int
	// Fault is inherited by every stage that leaves its Config.Fault at
	// the zero value; see FaultPolicy. This is how a chaos schedule reaches
	// every job of a multi-stage algorithm.
	Fault FaultPolicy
	// MemoryBudgetBytes is inherited by every stage that leaves its
	// Config.MemoryBudgetBytes at zero; see Config.MemoryBudgetBytes. This
	// is how one Options.MemoryBudget reaches every job of an algorithm.
	MemoryBudgetBytes int64
	// SpillDir is inherited by every stage that leaves its Config.SpillDir
	// empty; see Config.SpillDir.
	SpillDir string
	// CheckpointDir, when non-empty, is inherited by every stage that
	// leaves its Config.CheckpointDir empty and makes the pipeline
	// durable: each completed stage's output, counters and metrics are
	// atomically persisted there, and a later run whose stage fingerprint
	// (pipeline name + CheckpointSalt + stage position + job name +
	// reduce-task count + full input content) matches replays the stage
	// from disk byte-identically instead of re-executing it. Stale or
	// corrupt checkpoints are discarded and recomputed, never trusted.
	// Stages whose input or output values have no spill codec are run
	// uncheckpointed (counted in CheckpointStats.Skipped).
	CheckpointDir string
	// CheckpointSalt folds the caller's configuration into every stage
	// fingerprint, so one directory reused under different algorithm
	// options recomputes instead of replaying mismatched state.
	CheckpointSalt string
	// Runtime is inherited by every stage that leaves its Config.Runtime
	// at the zero value — how one execution substrate (transport +
	// executor, DESIGN.md §15) reaches every job of an algorithm. A
	// distributed runtime (non-nil Executor) is incompatible with
	// CheckpointDir: replaying a stage on some participants but not
	// others would desynchronise the SPMD phase sequence.
	Runtime Runtime

	stages []stageResult
	stores map[string]*checkpoint.Store
	ckpt   CheckpointStats
}

// CheckpointStats reports a pipeline's checkpoint activity. Every stage
// that runs with a checkpoint directory lands in exactly one of Hits,
// Misses or Skipped; Corrupt additionally counts the subset of misses
// caused by a checksum-failing or undecodable file (a stale fingerprint —
// ordinary configuration or input drift — is a plain miss).
type CheckpointStats struct {
	// Hits is the number of stages replayed from disk.
	Hits int64
	// Misses is the number of stages executed and persisted.
	Misses int64
	// Corrupt is the number of discarded corrupt checkpoint files.
	Corrupt int64
	// Skipped is the number of stages that could not be checkpointed
	// because a value had no spill codec.
	Skipped int64
}

type stageResult struct {
	metrics  Metrics
	counters map[string]int64
}

// NewPipeline returns a pipeline with the given name and cluster model.
func NewPipeline(name string, cluster *Cluster) *Pipeline {
	return &Pipeline{Name: name, Cluster: cluster}
}

// Run executes one stage, recording its metrics. The stage inherits the
// pipeline's cluster unless cfg already set one.
func (p *Pipeline) Run(cfg Config, input []KV, mapper Mapper, reducer Reducer) (*Result, error) {
	if cfg.Cluster == nil {
		cfg.Cluster = p.Cluster
	}
	if cfg.Context == nil {
		cfg.Context = p.Context
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = p.Parallelism
	}
	if cfg.Fault.isZero() {
		cfg.Fault = p.Fault
	}
	if cfg.MemoryBudgetBytes == 0 {
		cfg.MemoryBudgetBytes = p.MemoryBudgetBytes
	}
	if cfg.SpillDir == "" {
		cfg.SpillDir = p.SpillDir
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = p.CheckpointDir
	}
	if cfg.Runtime.Transport == nil && cfg.Runtime.Executor == nil {
		cfg.Runtime = p.Runtime
	}
	if cfg.Runtime.Executor != nil && cfg.CheckpointDir != "" {
		return nil, fmt.Errorf("pipeline %s: a distributed Runtime is incompatible with CheckpointDir", p.Name)
	}
	stage := len(p.stages)
	var (
		store *checkpoint.Store
		fp    string
	)
	if cfg.CheckpointDir != "" {
		var err error
		if store, err = p.store(cfg.CheckpointDir); err != nil {
			return nil, fmt.Errorf("pipeline %s: %w", p.Name, err)
		}
		fp = p.stageFingerprint(stage, cfg, input)
		if fp == "" {
			// An input value has no spill codec: the stage cannot be
			// fingerprinted, so it runs uncheckpointed.
			store, p.ckpt.Skipped = nil, p.ckpt.Skipped+1
		} else if res := p.replay(store, stage, cfg, fp); res != nil {
			p.stages = append(p.stages, stageResult{metrics: res.Metrics, counters: res.Counters.Snapshot()})
			return res, nil
		}
	}
	res, err := Run(cfg, input, mapper, reducer)
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", p.Name, err)
	}
	if store != nil {
		if err := p.save(store, stage, cfg, fp, res); err != nil {
			return nil, fmt.Errorf("pipeline %s: %w", p.Name, err)
		}
	}
	p.stages = append(p.stages, stageResult{metrics: res.Metrics, counters: res.Counters.Snapshot()})
	return res, nil
}

// store opens (and caches) the checkpoint store for one directory.
func (p *Pipeline) store(dir string) (*checkpoint.Store, error) {
	if s, ok := p.stores[dir]; ok {
		return s, nil
	}
	s, err := checkpoint.Open(dir)
	if err != nil {
		return nil, err
	}
	if p.stores == nil {
		p.stores = map[string]*checkpoint.Store{}
	}
	p.stores[dir] = s
	return s, nil
}

// stageFingerprint derives the stage's checkpoint key. It covers
// everything a replay must agree on: the format epoch, pipeline identity,
// caller configuration salt, stage position, job name, resolved
// reduce-task count (partitioning differs with it) and the stage's full
// input content in spill encoding. Returns "" when an input value has no
// codec.
func (p *Pipeline) stageFingerprint(stage int, cfg Config, input []KV) string {
	f := checkpoint.NewFingerprint()
	f.Str("fsjoin/checkpoint/v1")
	f.Str(p.Name)
	f.Str(p.CheckpointSalt)
	f.I64(int64(stage))
	f.Str(cfg.Name)
	f.I64(int64(cfg.resolvedReduceTasks()))
	f.I64(int64(len(input)))
	for _, kv := range input {
		f.KV(kv.Key, kv.Value)
		if f.Err() != nil {
			return ""
		}
	}
	return f.Hex()
}

// replay loads a fingerprint-matched checkpoint for the stage, rebuilding
// the stage result the original execution produced. A miss — including a
// discarded stale or corrupt file — returns nil and the stage runs.
func (p *Pipeline) replay(store *checkpoint.Store, stage int, cfg Config, fp string) *Result {
	snap, status := store.Load(stage, cfg.Name, fp)
	switch status {
	case checkpoint.Corrupt:
		p.ckpt.Corrupt++
		fallthrough
	case checkpoint.Miss, checkpoint.Stale:
		p.ckpt.Misses++
		return nil
	}
	res := &Result{
		Output:   make([]KV, len(snap.Records)),
		Counters: RestoreCounters(snap.Manifest.Counters),
	}
	for i, r := range snap.Records {
		res.Output[i] = KV{Key: r.Key, Value: r.Value}
	}
	if err := json.Unmarshal(snap.Manifest.Metrics, &res.Metrics); err != nil {
		// The checksum passed, so this is a writer/reader version skew the
		// format bump should have caught; recompute rather than trust it.
		p.ckpt.Corrupt++
		p.ckpt.Misses++
		return nil
	}
	p.ckpt.Hits++
	return res
}

// save persists one completed stage. A stage whose output values have no
// spill codec is left uncheckpointed (Skipped); any other failure is a
// real durability error and aborts, because the caller asked for a
// guarantee the engine cannot give.
func (p *Pipeline) save(store *checkpoint.Store, stage int, cfg Config, fp string, res *Result) error {
	metrics, err := json.Marshal(res.Metrics)
	if err != nil {
		return err
	}
	recs := make([]checkpoint.Record, len(res.Output))
	for i, kv := range res.Output {
		recs[i] = checkpoint.Record{Key: kv.Key, Value: kv.Value}
	}
	err = store.Save(checkpoint.Manifest{
		Pipeline:    p.Name,
		Stage:       stage,
		Job:         cfg.Name,
		Fingerprint: fp,
		Counters:    res.Counters.Snapshot(),
		Metrics:     metrics,
	}, recs)
	if errors.Is(err, checkpoint.ErrUnencodable) {
		p.ckpt.Misses--
		p.ckpt.Skipped++
		return nil
	}
	return err
}

// CheckpointStats reports the pipeline's checkpoint activity so far.
func (p *Pipeline) CheckpointStats() CheckpointStats { return p.ckpt }

// Stages returns the metrics of every executed stage in order.
func (p *Pipeline) Stages() []Metrics {
	out := make([]Metrics, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.metrics
	}
	return out
}

// StageTime returns the simulated time of the named stage (0 if absent).
func (p *Pipeline) StageTime(name string) time.Duration {
	for _, s := range p.stages {
		if s.metrics.Job == name {
			return s.metrics.SimulatedTotalTime
		}
	}
	return 0
}

// TotalSimulatedTime sums the simulated makespans of all stages — the
// pipeline's modelled end-to-end cluster time.
func (p *Pipeline) TotalSimulatedTime() time.Duration {
	var t time.Duration
	for _, s := range p.stages {
		t += s.metrics.SimulatedTotalTime
	}
	return t
}

// TotalShuffleBytes sums shuffle volume over all stages.
func (p *Pipeline) TotalShuffleBytes() int64 {
	var b int64
	for _, s := range p.stages {
		b += s.metrics.ShuffleBytes
	}
	return b
}

// TotalShuffleRecords sums shuffled record counts over all stages.
func (p *Pipeline) TotalShuffleRecords() int64 {
	var n int64
	for _, s := range p.stages {
		n += s.metrics.ShuffleRecords
	}
	return n
}

// Counter sums the named user counter over all stages.
func (p *Pipeline) Counter(name string) int64 {
	var n int64
	for _, s := range p.stages {
		n += s.counters[name]
	}
	return n
}

// MaxCounter returns the largest value the named counter took in any
// stage — the right aggregation for high-water marks such as
// "shuffle.peak.bytes", which summing would overstate.
func (p *Pipeline) MaxCounter(name string) int64 {
	var max int64
	for _, s := range p.stages {
		if v := s.counters[name]; v > max {
			max = v
		}
	}
	return max
}

// MaxLoadImbalance returns the worst reduce-phase load imbalance across
// stages (see Metrics.LoadImbalance).
func (p *Pipeline) MaxLoadImbalance() float64 {
	var worst float64
	for _, s := range p.stages {
		m := s.metrics
		if li := m.LoadImbalance(); li > worst {
			worst = li
		}
	}
	return worst
}

// Report renders a per-stage summary table.
func (p *Pipeline) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s\n", p.Name)
	fmt.Fprintf(&b, "%-24s %12s %14s %12s %12s %8s\n",
		"stage", "map-out", "shuffle-bytes", "groups", "output", "sim-time")
	for _, s := range p.stages {
		m := s.metrics
		fmt.Fprintf(&b, "%-24s %12d %14d %12d %12d %8.1fs\n",
			m.Job, m.MapOutputRecords, m.ShuffleBytes, m.ReduceInputGroups,
			m.OutputRecords, m.SimulatedTotalTime.Seconds())
	}
	fmt.Fprintf(&b, "%-24s %12d %14d %12s %12s %8.1fs\n",
		"TOTAL", p.TotalShuffleRecords(), p.TotalShuffleBytes(), "", "",
		p.TotalSimulatedTime().Seconds())
	return b.String()
}
