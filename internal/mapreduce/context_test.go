package mapreduce

import (
	"context"
	"errors"
	"testing"
)

func TestCancelledContextAbortsJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Config{Cluster: tinyCluster(), Context: ctx},
		wcInput("a b", "c d"), wcMapper{}, wcReducer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelMidJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the first map task: the job must stop at the next
	// task boundary instead of completing.
	fired := false
	mapper := MapFunc(func(c *Context, kv KV) {
		if !fired {
			fired = true
			cancel()
		}
		c.Emit(kv.Key, kv.Value)
	})
	_, err := Run(Config{Cluster: tinyCluster(), Context: ctx, MapTasks: 4},
		wcInput("a", "b", "c", "d"), mapper, FirstValue{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPipelineInheritsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPipeline("ctx", tinyCluster())
	p.Context = ctx
	_, err := p.Run(Config{Name: "stage"}, wcInput("a"), wcMapper{}, wcReducer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilContextMeansNoCancellation(t *testing.T) {
	if _, err := Run(Config{Cluster: tinyCluster()}, wcInput("a"), wcMapper{}, wcReducer{}); err != nil {
		t.Fatal(err)
	}
}
