package mapreduce

import (
	"testing"
	"time"
)

func TestMakespanSingleSlot(t *testing.T) {
	cl := &Cluster{Nodes: 1, SlotsPerNode: 1}
	d := cl.makespan([]time.Duration{time.Second, 2 * time.Second, time.Second})
	if d != 4*time.Second {
		t.Fatalf("makespan = %v, want 4s", d)
	}
}

func TestMakespanPerfectSplit(t *testing.T) {
	cl := &Cluster{Nodes: 2, SlotsPerNode: 1}
	d := cl.makespan([]time.Duration{time.Second, time.Second})
	if d != time.Second {
		t.Fatalf("makespan = %v, want 1s", d)
	}
}

func TestMakespanLPTBound(t *testing.T) {
	// LPT is within 4/3 of optimal; with identical tasks it is optimal.
	cl := &Cluster{Nodes: 3, SlotsPerNode: 1}
	tasks := make([]time.Duration, 9)
	for i := range tasks {
		tasks[i] = time.Second
	}
	if d := cl.makespan(tasks); d != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", d)
	}
}

func TestMakespanEmpty(t *testing.T) {
	cl := DefaultCluster()
	if d := cl.makespan(nil); d != 0 {
		t.Fatalf("empty makespan = %v", d)
	}
}

func TestMakespanDominatedByLongest(t *testing.T) {
	cl := &Cluster{Nodes: 10, SlotsPerNode: 3}
	tasks := []time.Duration{10 * time.Second, time.Second, time.Second}
	if d := cl.makespan(tasks); d != 10*time.Second {
		t.Fatalf("makespan = %v, want 10s (straggler dominates)", d)
	}
}

func TestShuffleTimeScalesWithNodes(t *testing.T) {
	cl := DefaultCluster()
	t5 := cl.WithNodes(5).shuffleTime(1 << 20)
	t10 := cl.WithNodes(10).shuffleTime(1 << 20)
	if t10 >= t5 {
		t.Fatalf("shuffle does not speed up with nodes: %v vs %v", t10, t5)
	}
	if cl.shuffleTime(0) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
}

func TestShuffleTimeUsesDataScale(t *testing.T) {
	cl := DefaultCluster()
	cl.DataScaleFactor = 1
	base := cl.shuffleTime(1 << 20)
	cl.DataScaleFactor = 1000
	scaled := cl.shuffleTime(1 << 20)
	if scaled < 900*base {
		t.Fatalf("data scale not applied: %v vs %v", scaled, base)
	}
}

func TestSpillTimeOnlyBeyondBuffer(t *testing.T) {
	cl := DefaultCluster()
	if d := cl.spillTime(cl.SpillBufferBytes, 1); d != 0 {
		t.Fatalf("buffered output spilled: %v", d)
	}
	if d := cl.spillTime(cl.SpillBufferBytes*10, 1); d <= 0 {
		t.Fatal("large output did not spill")
	}
}

func TestSlotsFloor(t *testing.T) {
	cl := &Cluster{Nodes: 0, SlotsPerNode: 0}
	if cl.Slots() != 1 {
		t.Fatalf("Slots = %d, want 1", cl.Slots())
	}
}

func TestScaleCPU(t *testing.T) {
	cl := &Cluster{CPUScale: 2}
	if d := cl.scaleCPU(time.Second); d != 2*time.Second {
		t.Fatalf("scaleCPU = %v", d)
	}
	cl.CPUScale = 0
	if d := cl.scaleCPU(time.Second); d != time.Second {
		t.Fatalf("zero scale must mean identity, got %v", d)
	}
}

func TestWithNodesCopies(t *testing.T) {
	cl := DefaultCluster()
	cl2 := cl.WithNodes(15)
	if cl.Nodes != 10 || cl2.Nodes != 15 {
		t.Fatal("WithNodes mutated the receiver")
	}
}

func TestSimPhaseIncludesOverhead(t *testing.T) {
	cl := &Cluster{Nodes: 1, SlotsPerNode: 1, TaskOverhead: time.Second, CPUScale: 1}
	d := simPhase(cl, []time.Duration{time.Second, time.Second})
	if d != 4*time.Second { // 2×(1s work + 1s overhead) on one slot
		t.Fatalf("simPhase = %v, want 4s", d)
	}
}
