package mapreduce

import (
	"fmt"
	"runtime"
	"sync"
)

// AutoParallelism, assigned to Config.Parallelism (or the facade's
// LocalParallelism), runs one task worker per available CPU core.
const AutoParallelism = -1

// runPhase executes n independent tasks, sequentially or on a bounded
// worker pool; the output slots are per-task, so results assemble in task
// order regardless of completion order. The first error wins. A negative
// parallelism means one worker per core (AutoParallelism).
func runPhase(parallelism, n int, work func(t int) error) error {
	if parallelism < 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism <= 1 || n <= 1 {
		for t := 0; t < n; t++ {
			if err := work(t); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, parallelism)
	for t := 0; t < n; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := work(t); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	return firstErr
}

// guard converts a task panic into an error, Hadoop-style task isolation.
func guard(task func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task failed: %v", r)
		}
	}()
	task()
	return nil
}

// withRetries re-attempts a failing task up to the job's MaxAttempts,
// counting retries in the "mapreduce.task.retries" counter. Tasks run over
// identical inputs on every attempt, so when a retry fails with exactly the
// first attempt's error the failure is deterministic and the remaining
// attempts are skipped — they cannot succeed, and burning them would both
// waste work and overstate the retry counter.
func withRetries(cfg Config, counters *Counters, attempt func() error) error {
	var first, err error
	for a := 0; a < cfg.maxAttempts(); a++ {
		if a > 0 {
			counters.Inc("mapreduce.task.retries", 1)
		}
		if err = attempt(); err == nil {
			return nil
		}
		if first == nil {
			first = err
		} else if err.Error() == first.Error() {
			return err
		}
	}
	return err
}
