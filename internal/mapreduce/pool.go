package mapreduce

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// AutoParallelism, assigned to Config.Parallelism (or the facade's
// LocalParallelism), runs one task worker per available CPU core.
const AutoParallelism = -1

// runPhase executes n independent tasks, sequentially or on a bounded
// worker pool; the output slots are per-task, so results assemble in task
// order regardless of completion order. The first error wins. A negative
// parallelism means one worker per core (AutoParallelism).
func runPhase(parallelism, n int, work func(t int) error) error {
	if parallelism < 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism <= 1 || n <= 1 {
		for t := 0; t < n; t++ {
			if err := work(t); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, parallelism)
	for t := 0; t < n; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := work(t); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	return firstErr
}

// guard converts a task panic into an error, Hadoop-style task isolation.
// Engine-internal failures travel as *enginePanic and come back out as
// their carried error — errors.Is/As chain intact, which is what lets a
// mid-task cancellation surface as context.Canceled — while user-code
// panics stay opaque "task failed" errors.
func guard(task func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(*enginePanic); ok {
				err = p.err
				return
			}
			err = fmt.Errorf("task failed: %v", r)
		}
	}()
	task()
	return nil
}

// withRetries re-attempts a failing task up to the job's MaxAttempts,
// passing the attempt index (0 = first attempt) to each try, counting
// retries in the "mapreduce.task.retries" counter, and sleeping per the
// job's backoff policy before each retry. Tasks run over identical inputs
// on every attempt, so when a retry fails with exactly the first attempt's
// error the failure is deterministic and the remaining attempts are
// skipped — they cannot succeed, and burning them would both waste work
// and overstate the retry counter.
func withRetries(cfg Config, counters *Counters, attempt func(a int) error) error {
	var first, err error
	for a := 0; a < cfg.maxAttempts(); a++ {
		if a > 0 {
			counters.Inc(CounterRetries, 1)
			if b := cfg.Fault.Backoff; b != nil {
				if d := b(a); d > 0 {
					counters.Inc(CounterBackoffs, 1)
					time.Sleep(d)
				}
			}
		}
		if err = attempt(a); err == nil {
			return nil
		}
		if isCancellation(err) {
			// Retrying cannot outrun a cancelled context; return at once so
			// deadlines abort the job promptly instead of burning attempts.
			return err
		}
		if first == nil {
			first = err
		} else if err.Error() == first.Error() {
			return err
		}
	}
	return err
}

// runAttempts drives one task's full attempt loop: retries with backoff
// via withRetries, each attempt optionally raced against a speculative
// backup copy. Every attempt builds and returns its own Context, so
// racing copies never share state; the winning attempt's context — whose
// emissions and task-local counters are the ones the job keeps — is
// returned.
func runAttempts(cfg Config, counters *Counters, attempt func(a int) (*Context, error)) (*Context, error) {
	var winner *Context
	err := withRetries(cfg, counters, func(a int) error {
		ctx, err := speculate(cfg, counters, a, attempt)
		if err != nil {
			return err
		}
		winner = ctx
		return nil
	})
	if err != nil {
		return nil, err
	}
	return winner, nil
}

// speculate runs one attempt, launching a backup copy if the original is
// still running after the policy's SpeculativeDelay — Hadoop's straggler
// mitigation. The backup is handed the attempt index offset by
// SpeculativeAttempt so injectors can distinguish it (seeded plans run
// backups clean, modelling a healthy node). The first copy to succeed
// wins and the loser is abandoned mid-flight — safe because attempts
// share nothing; it is left to finish emitting into its own context,
// which a drainer goroutine discards (spill files included) once it
// crosses the finish line. Failed copies are discarded as their outcomes
// arrive. If every launched copy fails, the first failure is returned.
func speculate(cfg Config, counters *Counters, a int, attempt func(a int) (*Context, error)) (*Context, error) {
	delay := cfg.Fault.SpeculativeDelay
	if delay <= 0 {
		ctx, err := attempt(a)
		if err != nil {
			ctx.discard()
			return nil, err
		}
		return ctx, nil
	}
	type outcome struct {
		ctx *Context
		err error
	}
	results := make(chan outcome, 2)
	go func() {
		ctx, err := attempt(a)
		results <- outcome{ctx, err}
	}()
	launched := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var firstErr error
	for done := 0; done < launched; {
		select {
		case o := <-results:
			if o.err == nil {
				if pending := launched - done - 1; pending > 0 {
					// A loser copy is still running; reap its output —
					// including any spill files — once it finishes.
					go func() {
						for i := 0; i < pending; i++ {
							lost := <-results
							lost.ctx.discard()
						}
					}()
				}
				return o.ctx, nil
			}
			done++
			o.ctx.discard()
			if firstErr == nil {
				firstErr = o.err
			}
		case <-timer.C:
			if launched == 1 {
				counters.Inc(CounterSpeculative, 1)
				go func() {
					ctx, err := attempt(a + SpeculativeAttempt)
					results <- outcome{ctx, err}
				}()
				launched = 2
			}
		}
	}
	return nil, firstErr
}
