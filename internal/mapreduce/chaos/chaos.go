// Package chaos is the harness side of the engine's fault model
// (DESIGN.md §7): it derives reproducible fault schedules from seeds and
// provides the comparison helpers chaos tests use to assert that a run
// under injected faults is byte-identical to the fault-free run.
//
// A Schedule is fully determined by a base seed and an index, so any
// failing schedule reported by a test can be re-run from its seed alone:
//
//	sched := chaos.Schedules(base, n)[i]   // or chaos.At(base, i)
//	res, err := mapreduce.Run(cfg-with-sched.Policy(), ...)
package chaos

import (
	"fmt"
	"time"

	"fsjoin/internal/mapreduce"
)

// Schedule describes one reproducible chaos run: the seeded fault plan
// plus the fault-tolerance knobs (attempts, backoff, speculation) active
// while it plays out. Every field is derived deterministically from
// (BaseSeed, Index) by Schedules.
type Schedule struct {
	// Seed drives the fault plan; see mapreduce.PlanConfig.Seed.
	Seed int64
	// Intensity is the plan's TargetRate.
	Intensity float64
	// MaxFailures is the plan's per-task failure cap.
	MaxFailures int
	// MaxDelay bounds injected straggler sleeps.
	MaxDelay time.Duration
	// MaxAttempts is the engine retry budget the schedule runs under.
	MaxAttempts int
	// BackoffBase, when positive, enables exponential retry backoff.
	BackoffBase time.Duration
	// SpeculativeDelay, when positive, enables speculative re-execution.
	SpeculativeDelay time.Duration
}

// Policy converts the schedule into the engine policy that realises it.
func (s Schedule) Policy() mapreduce.FaultPolicy {
	p := mapreduce.FaultPolicy{
		MaxAttempts:      s.MaxAttempts,
		SpeculativeDelay: s.SpeculativeDelay,
		Injector: mapreduce.NewSeededPlan(mapreduce.PlanConfig{
			Seed:        s.Seed,
			TargetRate:  s.Intensity,
			MaxFailures: s.MaxFailures,
			MaxDelay:    s.MaxDelay,
		}),
	}
	if s.BackoffBase > 0 {
		p.Backoff = mapreduce.ExponentialBackoff(s.BackoffBase, 8*s.BackoffBase)
	}
	return p
}

// At derives the i-th schedule of a base seed. The derivation varies
// intensity, failure depth, backoff and speculation across indices so a
// modest schedule count still covers the policy space: every third
// schedule adds backoff, every second adds speculation, intensity cycles
// through {0.2, 0.35, 0.5, 0.8}, and failure depth through {1, 2}.
func At(base int64, i int) Schedule {
	s := Schedule{
		Seed:        base + int64(i)*1_000_003,
		Intensity:   []float64{0.2, 0.35, 0.5, 0.8}[i%4],
		MaxFailures: 1 + i%2,
		MaxDelay:    time.Duration(1+i%3) * time.Millisecond,
		MaxAttempts: 4,
	}
	if i%3 == 0 {
		s.BackoffBase = 50 * time.Microsecond
	}
	if i%2 == 1 {
		s.SpeculativeDelay = 500 * time.Microsecond
	}
	return s
}

// Schedules derives n schedules from a base seed.
func Schedules(base int64, n int) []Schedule {
	out := make([]Schedule, n)
	for i := range out {
		out[i] = At(base, i)
	}
	return out
}

// DeterministicCounters strips the engine's fault-handling bookkeeping
// ("mapreduce.task.*" retry/speculation/backoff counts,
// "mapreduce.fault.*" injection counts and "transport.*" delivery
// accounting) from a counter snapshot, leaving exactly the counters a
// fault-free run must reproduce.
func DeterministicCounters(snap map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(snap))
	for k, v := range snap {
		if hasPrefix(k, "mapreduce.task.") || hasPrefix(k, "mapreduce.fault.") ||
			hasPrefix(k, "transport.") {
			continue
		}
		out[k] = v
	}
	return out
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Fingerprint is the deterministic slice of a job's metrics: everything a
// fault schedule must not perturb. Time-derived fields (task times,
// simulated makespans, wall time) are intentionally absent — injected
// delays and retries change them by design.
type Fingerprint struct {
	MapTasks          int
	ReduceTasks       int
	MapInputRecords   int64
	MapOutputRecords  int64
	MapOutputBytes    int64
	ShuffleRecords    int64
	ShuffleBytes      int64
	ReduceInputGroups int64
	OutputRecords     int64
	OutputBytes       int64
	PerReduceRecords  string
	PerReduceBytes    string
}

// FingerprintOf extracts the deterministic metrics of one job result.
func FingerprintOf(m mapreduce.Metrics) Fingerprint {
	return Fingerprint{
		MapTasks:          m.MapTasks,
		ReduceTasks:       m.ReduceTasks,
		MapInputRecords:   m.MapInputRecords,
		MapOutputRecords:  m.MapOutputRecords,
		MapOutputBytes:    m.MapOutputBytes,
		ShuffleRecords:    m.ShuffleRecords,
		ShuffleBytes:      m.ShuffleBytes,
		ReduceInputGroups: m.ReduceInputGroups,
		OutputRecords:     m.OutputRecords,
		OutputBytes:       m.OutputBytes,
		PerReduceRecords:  fmt.Sprint(m.PerReduceRecords),
		PerReduceBytes:    fmt.Sprint(m.PerReduceBytes),
	}
}
