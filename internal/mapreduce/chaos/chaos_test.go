package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fsjoin/internal/mapreduce"
)

// The engine-level chaos suite: a wordcount job with a combiner (so map,
// combine and reduce injection points are all live) runs under dozens of
// seeded schedules and must stay byte-identical to the fault-free run in
// output, deterministic counters and shuffle metrics.

type chaosMapper struct{}

func (chaosMapper) Map(ctx *mapreduce.Context, kv mapreduce.KV) {
	for _, w := range strings.Fields(kv.Value.(string)) {
		ctx.Emit(w, int64(1))
		ctx.Inc("wc.tokens", 1)
	}
}

type chaosReducer struct{}

func (chaosReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
	ctx.Inc("wc.groups", 1)
}

func chaosInput(n int) []mapreduce.KV {
	words := strings.Fields("alpha beta gamma delta epsilon zeta eta theta iota kappa")
	kvs := make([]mapreduce.KV, n)
	for i := range kvs {
		var sb strings.Builder
		for j := 0; j < 4+i%5; j++ {
			sb.WriteString(words[(i*7+j*3)%len(words)])
			sb.WriteByte(' ')
		}
		kvs[i] = mapreduce.KV{Key: fmt.Sprint(i), Value: sb.String()}
	}
	return kvs
}

func cluster() *mapreduce.Cluster {
	cl := mapreduce.DefaultCluster()
	cl.Nodes = 2
	return cl
}

type outcome struct {
	output   []mapreduce.KV
	counters map[string]int64
	fp       Fingerprint
}

func runJob(t *testing.T, parallelism int, fault mapreduce.FaultPolicy) outcome {
	t.Helper()
	res, err := mapreduce.Run(mapreduce.Config{
		Name:        "chaos-wc",
		Cluster:     cluster(),
		MapTasks:    6,
		ReduceTasks: 5,
		Parallelism: parallelism,
		Combiner:    chaosReducer{},
		Fault:       fault,
	}, chaosInput(40), chaosMapper{}, chaosReducer{})
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	return outcome{
		output:   res.Output,
		counters: DeterministicCounters(res.Counters.Snapshot()),
		fp:       FingerprintOf(res.Metrics),
	}
}

// TestChaosEngineEquivalence runs 40 seeded schedules at parallelism 1
// and 4 and asserts each is indistinguishable from the fault-free run.
func TestChaosEngineEquivalence(t *testing.T) {
	want := runJob(t, 1, mapreduce.FaultPolicy{})
	for _, sched := range Schedules(1234, 40) {
		for _, par := range []int{1, 4} {
			got := runJob(t, par, sched.Policy())
			if !reflect.DeepEqual(got.output, want.output) {
				t.Fatalf("seed %d par %d: output differs", sched.Seed, par)
			}
			if !reflect.DeepEqual(got.counters, want.counters) {
				t.Fatalf("seed %d par %d: counters differ\n got %v\nwant %v",
					sched.Seed, par, got.counters, want.counters)
			}
			if got.fp != want.fp {
				t.Fatalf("seed %d par %d: shuffle metrics differ\n got %+v\nwant %+v",
					sched.Seed, par, got.fp, want.fp)
			}
		}
	}
}

// TestChaosScheduleReRunnable: a schedule is reproducible from its seed
// alone — two runs of the same schedule agree on output, and, for
// schedules without speculation (whose backup launches are wall-clock
// dependent) at parallelism 1, on the complete counter set including
// retry and injection bookkeeping.
func TestChaosScheduleReRunnable(t *testing.T) {
	for i := 0; i < 8; i++ {
		sched := At(977, i)
		a := runJob(t, 1, sched.Policy())
		b := runJob(t, 1, sched.Policy())
		if !reflect.DeepEqual(a.output, b.output) {
			t.Fatalf("schedule %d: re-run changed output", i)
		}
		if sched.SpeculativeDelay == 0 {
			full := func(p mapreduce.FaultPolicy) map[string]int64 {
				res, err := mapreduce.Run(mapreduce.Config{
					Name: "rerun", Cluster: cluster(), MapTasks: 4, ReduceTasks: 3,
					Combiner: chaosReducer{}, Fault: p,
				}, chaosInput(24), chaosMapper{}, chaosReducer{})
				if err != nil {
					t.Fatalf("schedule %d: %v", i, err)
				}
				return res.Counters.Snapshot()
			}
			if x, y := full(sched.Policy()), full(sched.Policy()); !reflect.DeepEqual(x, y) {
				t.Fatalf("schedule %d: bookkeeping counters not reproducible\n%v\n%v", i, x, y)
			}
		}
	}
}

// TestChaosFaultsActuallyFire guards against a silently inert harness:
// across the schedule set, every fault kind must have been injected and
// retries must have happened.
func TestChaosFaultsActuallyFire(t *testing.T) {
	totals := map[string]int64{}
	for _, sched := range Schedules(1234, 40) {
		res, err := mapreduce.Run(mapreduce.Config{
			Name: "fire", Cluster: cluster(), MapTasks: 6, ReduceTasks: 5,
			Parallelism: 4, Combiner: chaosReducer{}, Fault: sched.Policy(),
		}, chaosInput(40), chaosMapper{}, chaosReducer{})
		if err != nil {
			t.Fatalf("seed %d: %v", sched.Seed, err)
		}
		for k, v := range res.Counters.Snapshot() {
			totals[k] += v
		}
	}
	for _, want := range []string{
		"mapreduce.fault.injected.panic",
		"mapreduce.fault.injected.emit-panic",
		"mapreduce.fault.injected.error",
		"mapreduce.fault.injected.delay",
		"mapreduce.task.retries",
		"mapreduce.task.backoffs",
	} {
		if totals[want] == 0 {
			t.Errorf("no %s across 40 schedules — harness inert", want)
		}
	}
}
