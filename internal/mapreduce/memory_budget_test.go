package mapreduce

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// budgetInput is a wordcount corpus big enough that a few-KiB budget forces
// several spills per map task.
func budgetInput(lines, wordsPerLine, vocab int) []KV {
	kvs := make([]KV, lines)
	for i := 0; i < lines; i++ {
		var b strings.Builder
		for j := 0; j < wordsPerLine; j++ {
			fmt.Fprintf(&b, "word%03d ", (i*wordsPerLine+j*7)%vocab)
		}
		kvs[i] = KV{Key: fmt.Sprint(i), Value: b.String()}
	}
	return kvs
}

// noSpillFiles fails the test if dir still holds any entries. wait allows
// asynchronous cleanup (a lost speculative copy is discarded by a reaper
// goroutine) to finish.
func noSpillFiles(t *testing.T, dir string, wait time.Duration) {
	t.Helper()
	deadline := time.Now().Add(wait)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			return
		}
		if time.Now().After(deadline) {
			names := make([]string, len(ents))
			for i, e := range ents {
				names[i] = e.Name()
			}
			t.Fatalf("spill files leaked in %s: %v", dir, names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMemoryBudgetEquivalence is the tentpole property at engine level:
// for plain, combining and folding wordcount jobs, output and user-visible
// counters are byte-identical at any budget and any parallelism, while
// tiny budgets actually spill.
func TestMemoryBudgetEquivalence(t *testing.T) {
	// Vocabulary large enough that even per-key folded slots overflow a
	// 4 KiB budget.
	input := budgetInput(24, 40, 400)
	configs := map[string]func() Config{
		"plain": func() Config { return Config{Cluster: tinyCluster(), MapTasks: 4, ReduceTasks: 3} },
		"combiner": func() Config {
			return Config{Cluster: tinyCluster(), MapTasks: 4, ReduceTasks: 3, Combiner: wcReducer{}}
		},
		"folding": func() Config {
			return Config{Cluster: tinyCluster(), MapTasks: 4, ReduceTasks: 3, Combiner: foldingWC{}}
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			base, err := Run(mk(), input, wcMapper{}, wcReducer{})
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []int64{64 << 10, 4 << 10} {
				for _, par := range []int{1, 4} {
					cfg := mk()
					cfg.Parallelism = par
					cfg.MemoryBudgetBytes = budget
					cfg.SpillDir = t.TempDir()
					res, err := Run(cfg, input, wcMapper{}, wcReducer{})
					if err != nil {
						t.Fatalf("budget %d par %d: %v", budget, par, err)
					}
					if !reflect.DeepEqual(res.Output, base.Output) {
						t.Fatalf("budget %d par %d: output differs from unbounded", budget, par)
					}
					if res.Metrics.ShuffleRecords != base.Metrics.ShuffleRecords ||
						res.Metrics.ShuffleBytes != base.Metrics.ShuffleBytes {
						t.Fatalf("budget %d par %d: shuffle accounting drifted: (%d,%d) vs (%d,%d)",
							budget, par, res.Metrics.ShuffleRecords, res.Metrics.ShuffleBytes,
							base.Metrics.ShuffleRecords, base.Metrics.ShuffleBytes)
					}
					if budget == 4<<10 && res.Counters.Get(CounterSpillRuns) == 0 {
						t.Fatalf("budget %d par %d: nothing spilled", budget, par)
					}
					noSpillFiles(t, cfg.SpillDir, 0)
				}
			}
		})
	}
}

// TestMemoryBudgetSpillCounters pins the counter semantics: a budget small
// enough forces >= 2 runs per map task; runs, bytes, merge ways and peak
// are recorded, deterministic across parallelism, and absent without a
// budget.
func TestMemoryBudgetSpillCounters(t *testing.T) {
	input := budgetInput(24, 40, 90)
	const mapTasks = 4
	mk := func(par int) Config {
		return Config{Cluster: tinyCluster(), MapTasks: mapTasks, ReduceTasks: 3,
			Parallelism: par, MemoryBudgetBytes: 2 << 10, SpillDir: t.TempDir()}
	}
	res1, err := Run(mk(1), input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if runs := res1.Counters.Get(CounterSpillRuns); runs < 2*mapTasks {
		t.Fatalf("spill.runs = %d, want >= %d (2 per map task)", runs, 2*mapTasks)
	}
	if res1.Counters.Get(CounterSpillBytes) == 0 {
		t.Fatal("spill.bytes = 0 despite runs")
	}
	if ways := res1.Counters.Get(CounterSpillMergeWays); ways < 2 {
		t.Fatalf("spill.merge.ways = %d, want >= 2", ways)
	}
	peak := res1.Counters.Get(CounterShufflePeak)
	if peak == 0 {
		t.Fatal("shuffle.peak.bytes not recorded")
	}
	if m := res1.Metrics; m.SpillRuns != res1.Counters.Get(CounterSpillRuns) ||
		m.SpillBytes != res1.Counters.Get(CounterSpillBytes) ||
		m.ShufflePeakBytes != peak {
		t.Fatalf("Metrics spill fields disagree with counters: %+v", m)
	}
	res4, err := Run(mk(4), input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Counters.Snapshot(), res4.Counters.Snapshot()) {
		t.Fatalf("spill counters parallelism-dependent:\npar1 %v\npar4 %v",
			res1.Counters.Snapshot(), res4.Counters.Snapshot())
	}

	// Budget -1 (not 0) so the assertion holds even when the suite runs
	// with FSJOIN_MEMORY_BUDGET exported, as the CI low-memory job does.
	unbounded, err := Run(Config{Cluster: tinyCluster(), MapTasks: mapTasks, ReduceTasks: 3,
		MemoryBudgetBytes: -1}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{CounterSpillRuns, CounterSpillBytes, CounterSpillMergeWays, CounterShufflePeak} {
		if v := unbounded.Counters.Get(c); v != 0 {
			t.Fatalf("unbounded run recorded %s=%d", c, v)
		}
	}
	if unbounded.Metrics.SimulatedShuffle > res1.Metrics.SimulatedShuffle {
		t.Fatal("cost model does not charge spilled runs")
	}
}

// TestMemoryBudgetEnvDefault: Config.MemoryBudgetBytes == 0 defers to
// FSJOIN_MEMORY_BUDGET; a negative config value forces unbounded even with
// the env set.
func TestMemoryBudgetEnvDefault(t *testing.T) {
	t.Setenv("FSJOIN_MEMORY_BUDGET", "2048")
	input := budgetInput(16, 40, 80)
	dir := t.TempDir()
	t.Setenv("FSJOIN_SPILL_DIR", dir)
	res, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2},
		input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(CounterSpillRuns) == 0 {
		t.Fatal("env budget did not take effect")
	}
	noSpillFiles(t, dir, 0)

	forced, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		MemoryBudgetBytes: -1}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Counters.Get(CounterSpillRuns) != 0 {
		t.Fatal("negative budget did not force unbounded")
	}
	if !reflect.DeepEqual(forced.Output, res.Output) {
		t.Fatal("budgeted and unbounded outputs differ")
	}
}

// TestSpillCleanupOnJobAbort: a mid-map failure after spills leaves no
// files behind — failed attempts discard their buffers and surviving
// sinks are closed when the phase errors out.
func TestSpillCleanupOnJobAbort(t *testing.T) {
	input := budgetInput(16, 40, 80)
	dir := t.TempDir()
	boom := MapFunc(func(ctx *Context, kv KV) {
		wcMapper{}.Map(ctx, kv)
		if kv.Key == "15" {
			panic("abort after spilling")
		}
	})
	_, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		MaxAttempts: 1, MemoryBudgetBytes: 1 << 10, SpillDir: dir},
		input, boom, wcReducer{})
	if err == nil {
		t.Fatal("job should have aborted")
	}
	noSpillFiles(t, dir, time.Second)
}

// TestSpillCleanupOnRetry: attempts that fail after spilling are discarded
// (files removed) and the retry's fresh buffer wins; output is identical to
// the fault-free run.
func TestSpillCleanupOnRetry(t *testing.T) {
	input := budgetInput(16, 40, 80)
	want, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2},
		input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	flaky := &flakyMapper{attempts: map[int]int{}, failUntil: 2}
	// flakyMapper panics before emitting, so spills come from surviving
	// attempts; panic at the END of a task instead, after its spills.
	late := MapFunc(func(ctx *Context, kv KV) {
		wcMapper{}.Map(ctx, kv)
		flaky.mu.Lock()
		n := flaky.attempts[ctx.TaskID]
		fail := kv.Key == "15" && n < flaky.failUntil
		if fail {
			flaky.attempts[ctx.TaskID] = n + 1
		}
		flaky.mu.Unlock()
		if fail {
			panic(fmt.Sprintf("late failure (attempt %d)", n+1))
		}
	})
	res, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		MaxAttempts: 4, MemoryBudgetBytes: 1 << 10, SpillDir: dir},
		input, late, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, want.Output) {
		t.Fatal("retried spilling job output differs")
	}
	if res.Counters.Get(CounterRetries) == 0 {
		t.Fatal("no retry happened")
	}
	noSpillFiles(t, dir, time.Second)
}

// TestSpillCleanupAfterLostSpeculation: a straggling original keeps
// spilling after the backup wins; the reaper goroutine must still remove
// the loser's files.
func TestSpillCleanupAfterLostSpeculation(t *testing.T) {
	input := budgetInput(16, 40, 80)
	want, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2},
		input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inj := scriptedInjector{faults: map[[3]int]Fault{
		{int(PhaseMap), 0, 0}: {Kind: FaultDelay, Delay: 50 * time.Millisecond},
	}}
	cfg := Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		MemoryBudgetBytes: 1 << 10, SpillDir: dir,
		Fault: FaultPolicy{Injector: inj, SpeculativeDelay: 2 * time.Millisecond}}
	res, err := Run(cfg, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, want.Output) {
		t.Fatal("speculative spilling job output differs")
	}
	if res.Counters.Get(CounterSpeculative) == 0 {
		t.Fatal("no speculation launched")
	}
	// The losing copy finishes asynchronously; its discard must remove
	// every file eventually.
	noSpillFiles(t, dir, 2*time.Second)
}

// TestSpillUnencodableValuesStayCorrect: a job shuffling values without a
// codec still runs correctly under a tiny budget (records pin in memory
// instead of spilling — the process-wide env budget must never break
// arbitrary jobs).
func TestSpillUnencodableValuesStayCorrect(t *testing.T) {
	type opaque struct{ n int64 } // no spill codec registered
	input := budgetInput(8, 20, 30)
	mapper := MapFunc(func(ctx *Context, kv KV) {
		for _, w := range strings.Fields(kv.Value.(string)) {
			ctx.Emit(w, opaque{n: 1})
		}
	})
	reducer := ReduceFunc(func(ctx *Context, key string, values []any) {
		var n int64
		for _, v := range values {
			n += v.(opaque).n
		}
		ctx.Emit(key, n)
	})
	dir := t.TempDir()
	res, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2,
		MemoryBudgetBytes: 256, SpillDir: dir}, input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Config{Cluster: tinyCluster(), MapTasks: 2, ReduceTasks: 2},
		input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, want.Output) {
		t.Fatal("pinned-value job output differs")
	}
	if res.Counters.Get(CounterSpillRuns) != 0 {
		t.Fatal("unencodable values were spilled")
	}
	noSpillFiles(t, dir, 0)
}

// TestPipelineInheritsMemoryBudget: stages inherit the pipeline's budget
// and spill dir, and MaxCounter aggregates the peak across stages.
func TestPipelineInheritsMemoryBudget(t *testing.T) {
	dir := t.TempDir()
	p := NewPipeline("budgeted", tinyCluster())
	p.MemoryBudgetBytes = 2 << 10
	p.SpillDir = dir
	input := budgetInput(16, 40, 80)
	res, err := p.Run(Config{Name: "stage1"}, input, wcMapper{}, wcReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(Config{Name: "stage2"}, res.Output, MapFunc(func(ctx *Context, kv KV) {
		ctx.Emit(kv.Key, kv.Value)
	}), wcReducer{}); err != nil {
		t.Fatal(err)
	}
	if p.Counter(CounterSpillRuns) == 0 {
		t.Fatal("pipeline stages did not inherit the budget")
	}
	if p.MaxCounter(CounterShufflePeak) == 0 {
		t.Fatal("MaxCounter(shuffle.peak.bytes) = 0")
	}
	if p.MaxCounter(CounterShufflePeak) > p.Counter(CounterShufflePeak) {
		t.Fatal("max across stages exceeds sum across stages")
	}
	noSpillFiles(t, dir, 0)
}
