package mapreduce

import (
	"errors"
	"fmt"
	"time"
)

// This file is the engine's fault model: what can go wrong inside a task
// attempt, how faults are injected deterministically for chaos testing,
// and the retry/backoff/speculation policy that recovers from them. The
// execution wiring lives in pool.go (attempt loop) and job.go (the
// map/combine/reduce injection points); DESIGN.md §7 documents the model.

// Phase identifies which attempt path a fault targets. Combine faults hit
// the combiner step inside the map attempt (the two fail together, as one
// Hadoop task), reduce faults hit the reduce attempt.
type Phase uint8

// The injectable phases.
const (
	PhaseMap Phase = iota
	PhaseCombine
	PhaseReduce
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseMap:
		return "map"
	case PhaseCombine:
		return "combine"
	case PhaseReduce:
		return "reduce"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// FaultKind enumerates the misbehaviours the engine can inject into a task
// attempt.
type FaultKind uint8

// The injectable fault kinds.
const (
	// FaultNone injects nothing.
	FaultNone FaultKind = iota
	// FaultPanic panics before the phase body runs — a task crash.
	FaultPanic
	// FaultEmitPanic panics after the phase body has emitted all of its
	// records — the emit-phase failure that exercises the engine's
	// no-partial-output guarantee (a retried attempt must not leak the
	// crashed attempt's emissions).
	FaultEmitPanic
	// FaultError fails the attempt with a plain error, no panic — a task
	// that reports failure cleanly (lost container, fetch failure). Inside
	// a combine step, which has no error return path, it degrades to a
	// panic.
	FaultError
	// FaultDelay makes the attempt a straggler: it sleeps, then proceeds
	// normally. Recoverable only by waiting — or by speculative
	// re-execution (FaultPolicy.SpeculativeDelay).
	FaultDelay
	// FaultRecordPanic panics when the task reaches its Fault.Record'th
	// input record (map) or key group (reduce) — a poison record. Unlike
	// the other kinds it fails on every attempt that replays the record,
	// so it is recoverable only by FaultPolicy.SkipBadRecords; injectors
	// modelling it must return the same fault for every attempt index,
	// ProbeAttempt included, or the bisection probes cannot reproduce it.
	// Realised in the map and reduce phases only (a combiner sees folded
	// output, not input records). Not part of SeededPlan's default mix.
	FaultRecordPanic
	// FaultWorkerLoss models a worker dying after committing a map task but
	// before its completion was acknowledged: the supervisor reassigns the
	// task and the survivor's re-execution delivers the same partitions
	// again under a newer generation. Realised at the transport commit
	// boundary (DeliveryAttempt), not inside an attempt; output must be
	// byte-identical because delivery is idempotent. Not part of
	// SeededPlan's default mix.
	FaultWorkerLoss
	// FaultRedeliver models a duplicate partition delivery without a worker
	// death — a retried hand-off whose first copy also arrived. Like
	// FaultWorkerLoss it is realised at the commit boundary and must leave
	// output byte-identical. Not part of SeededPlan's default mix.
	FaultRedeliver
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultEmitPanic:
		return "emit-panic"
	case FaultError:
		return "error"
	case FaultDelay:
		return "delay"
	case FaultRecordPanic:
		return "record-panic"
	case FaultWorkerLoss:
		return "worker-loss"
	case FaultRedeliver:
		return "redeliver"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected misbehaviour for one task attempt.
type Fault struct {
	// Kind selects the misbehaviour; the zero value injects nothing.
	Kind FaultKind
	// Delay is how long a FaultDelay attempt sleeps before proceeding.
	Delay time.Duration
	// Msg labels injected panics and errors. Transient faults must vary it
	// per attempt: the engine treats a retry failing with exactly the
	// previous attempt's message as a deterministic bug and stops retrying.
	// FaultRecordPanic faults must instead keep it attempt-invariant, so
	// the early stop fires and skip mode takes over.
	Msg string
	// Record is the zero-based input record (map) or sorted key group
	// (reduce) index a FaultRecordPanic fires on; an index past the task's
	// input injects nothing.
	Record int
}

// Injector schedules faults. Decide is consulted once per (phase, task,
// attempt) at the start of every attempt. Implementations must be pure
// functions of their arguments: the engine calls Decide from concurrent
// workers in nondeterministic order, and a chaos run is reproducible only
// because the schedule depends on nothing else.
type Injector interface {
	Decide(phase Phase, task, attempt int) Fault
}

// JobAwareInjector is an optional Injector extension consulted with the
// job's name, letting one injector inherited through a Pipeline target a
// specific stage — how crash/recovery tests kill an algorithm "after
// stage k" without knowing its task layout. When an injector implements
// both interfaces, DecideJob wins; the same purity contract applies.
type JobAwareInjector interface {
	DecideJob(job string, phase Phase, task, attempt int) Fault
}

// SpeculativeAttempt is the offset added to the attempt index passed to
// Decide for speculative backup copies (see FaultPolicy.SpeculativeDelay).
// Backups model re-execution on a healthy node, so seeded plans leave
// attempts at or above this offset fault-free; a custom Injector may
// target them to chaos-test speculation itself.
const SpeculativeAttempt = 1 << 16

// ProbeAttempt is the attempt index skip-mode bisection probes pass to
// Decide (see FaultPolicy.SkipBadRecords). Probes replay prefixes of a
// deterministically failing task's input outside the normal attempt loop;
// like speculative backups they sit above SpeculativeAttempt, so seeded
// chaos plans leave them fault-free, while injectors modelling a poison
// record (FaultRecordPanic, pure in phase and task) reproduce it for the
// probes to find.
const ProbeAttempt = 2 << 16

// DeliveryAttempt is the attempt index the engine passes to Decide when a
// map task's committed partitions are about to be handed to the reduce
// phase — the transport commit boundary. It is consulted once per map
// task, after the attempt loop has produced a winner, and realises only
// the transport fault kinds (FaultWorkerLoss, FaultRedeliver); seeded
// plans whose Kinds include neither leave the boundary fault-free.
const DeliveryAttempt = 3 << 16

// isDeliveryKind reports whether a kind is realised at the transport
// commit boundary rather than inside a task attempt.
func isDeliveryKind(k FaultKind) bool {
	return k == FaultWorkerLoss || k == FaultRedeliver
}

// BackoffFunc maps a retry number (1 = first retry) to the sleep taken
// before that retry starts.
type BackoffFunc func(retry int) time.Duration

// ExponentialBackoff returns base << (retry-1), capped at max — the
// standard doubling schedule. A non-positive base disables backoff.
func ExponentialBackoff(base, max time.Duration) BackoffFunc {
	return func(retry int) time.Duration {
		if base <= 0 || retry < 1 {
			return 0
		}
		d := base
		for i := 1; i < retry && d < max; i++ {
			d <<= 1
		}
		if max > 0 && d > max {
			d = max
		}
		return d
	}
}

// FaultPolicy bundles a job's fault-tolerance and fault-injection knobs so
// pipelines and algorithm options can carry them as one value. The zero
// value keeps the engine's default behaviour: MaxAttempts from the job
// config (default 4), no backoff, no speculation, no injection.
type FaultPolicy struct {
	// MaxAttempts, when positive, overrides Config.MaxAttempts.
	MaxAttempts int
	// Backoff, when non-nil, sleeps between retry attempts.
	Backoff BackoffFunc
	// SpeculativeDelay, when positive, launches a backup copy of any
	// attempt still running after this duration (straggler mitigation,
	// Hadoop's speculative execution). The first copy to finish decides
	// the attempt; the loser is abandoned. Requires the same concurrency
	// safety from user code as Config.Parallelism > 1.
	SpeculativeDelay time.Duration
	// Injector, when non-nil, injects scheduled faults into every task
	// attempt. Intended for tests; production jobs leave it nil.
	Injector Injector
	// SkipBadRecords enables Hadoop-style skip mode: when a task exhausts
	// its attempts on the same deterministic panic, the engine bisects to
	// the poison input record (map) or key group (reduce), quarantines it
	// through the CounterRecordsSkipped counter and the Quarantine sink,
	// and re-runs the task without it. Failures the task body alone cannot
	// reproduce (transient faults, Setup/Cleanup or combiner crashes)
	// are not skippable and abort as before.
	SkipBadRecords bool
	// MaxSkippedRecords bounds how many records one job may quarantine
	// before skipping itself is treated as the bug and the job aborts;
	// 0 means DefaultMaxSkippedRecords.
	MaxSkippedRecords int
	// Quarantine, when non-nil, receives every skipped record. The engine
	// serialises calls, so the sink needs no locking of its own.
	Quarantine func(QuarantinedRecord)
}

// DefaultMaxSkippedRecords is the skip-mode quarantine budget when
// FaultPolicy.MaxSkippedRecords is zero: generous enough for scattered
// poison records, small enough that systematic failure still aborts.
const DefaultMaxSkippedRecords = 16

// maxSkippedRecords resolves the job-wide quarantine budget.
func (f FaultPolicy) maxSkippedRecords() int64 {
	if f.MaxSkippedRecords > 0 {
		return int64(f.MaxSkippedRecords)
	}
	return DefaultMaxSkippedRecords
}

// isZero reports whether the policy is entirely unset (FaultPolicy holds
// funcs, so it is not comparable with ==).
func (f FaultPolicy) isZero() bool {
	return f.MaxAttempts == 0 && f.Backoff == nil && f.SpeculativeDelay == 0 &&
		f.Injector == nil && !f.SkipBadRecords && f.MaxSkippedRecords == 0 &&
		f.Quarantine == nil
}

// QuarantinedRecord identifies one input record (map) or key group
// (reduce) that skip mode removed from a job, and the deterministic
// failure it caused.
type QuarantinedRecord struct {
	// Job is the job the record poisoned.
	Job string
	// Phase is PhaseMap for an input record, PhaseReduce for a key group.
	Phase Phase
	// Task is the task index within the phase.
	Task int
	// Key and Value are the poison pair; Value is nil for a reduce-side
	// key group (the group's values are not retained).
	Key   string
	Value any
	// Err is the failure message the record deterministically produced.
	Err string
}

// Counter names under which the engine surfaces every fault-handling
// decision. The "mapreduce.task." and "mapreduce.fault." namespaces are
// bookkeeping: they vary with the fault schedule (and, for speculation,
// with wall-clock timing), so equivalence checks compare counters modulo
// these prefixes — see chaos.DeterministicCounters.
const (
	// CounterRetries counts re-attempts after a failed task attempt.
	CounterRetries = "mapreduce.task.retries"
	// CounterSpeculative counts speculative backup launches.
	CounterSpeculative = "mapreduce.task.speculative"
	// CounterBackoffs counts backoff sleeps taken before retries.
	CounterBackoffs = "mapreduce.task.backoffs"
	// counterInjectedPrefix prefixes one counter per injected fault kind,
	// e.g. "mapreduce.fault.injected.panic".
	counterInjectedPrefix = "mapreduce.fault.injected."
	// CounterRecordsSkipped counts records and key groups quarantined by
	// skip mode (FaultPolicy.SkipBadRecords). Deliberately outside the
	// bookkeeping namespaces: a skipped record changes job output, so
	// equivalence checks must see it.
	CounterRecordsSkipped = "fault.records.skipped"
)

// decideFault is the nil-safe injector lookup for one attempt.
func (c Config) decideFault(phase Phase, task, attempt int) Fault {
	if c.Fault.Injector == nil {
		return Fault{}
	}
	if ja, ok := c.Fault.Injector.(JobAwareInjector); ok {
		return ja.DecideJob(c.Name, phase, task, attempt)
	}
	return c.Fault.Injector.Decide(phase, task, attempt)
}

// injectErr realises FaultError at the top of an attempt, outside the
// panic guard: the attempt fails with a plain error. All other kinds are
// handled by injectEnter/injectExit inside the guard.
func (f Fault) injectErr(counters *Counters) error {
	if f.Kind != FaultError {
		return nil
	}
	counters.Inc(counterInjectedPrefix+f.Kind.String(), 1)
	return errors.New(f.Msg)
}

// injectEnter realises a fault at the start of a phase body, inside the
// attempt's guard: FaultPanic panics, FaultDelay sleeps and lets the body
// proceed. FaultError reaches here only from phases without an error
// return path (combine), where it degrades to a panic.
func (f Fault) injectEnter(counters *Counters) {
	switch f.Kind {
	case FaultPanic, FaultError:
		counters.Inc(counterInjectedPrefix+f.Kind.String(), 1)
		panic(f.Msg)
	case FaultDelay:
		counters.Inc(counterInjectedPrefix+f.Kind.String(), 1)
		time.Sleep(f.Delay)
	}
}

// injectExit realises FaultEmitPanic after the phase body has emitted.
func (f Fault) injectExit(counters *Counters) {
	if f.Kind != FaultEmitPanic {
		return
	}
	counters.Inc(counterInjectedPrefix+f.Kind.String(), 1)
	panic(f.Msg)
}

// PlanConfig parameterises a seeded fault schedule. The zero value of
// every field except Seed selects a sensible default.
type PlanConfig struct {
	// Seed is the schedule's only source of randomness: two plans built
	// from equal configs make identical decisions, regardless of task
	// execution order or parallelism.
	Seed int64
	// TargetRate is the probability that a given (phase, task) pair is
	// targeted at all (default 0.3).
	TargetRate float64
	// MaxFailures caps how many consecutive attempts of a targeted task
	// fail before it succeeds (default 2). Keep it below the job's
	// MaxAttempts, or targeted tasks abort the job.
	MaxFailures int
	// MaxDelay bounds straggler sleeps (default 2ms; chaos suites keep
	// this small so dozens of schedules stay fast).
	MaxDelay time.Duration
	// Kinds is the fault mix drawn from (default: FaultPanic,
	// FaultEmitPanic, FaultError and FaultDelay). The transport kinds
	// (FaultWorkerLoss, FaultRedeliver) may be mixed in; they are drawn
	// from an independent per-task decision at the commit boundary
	// (DeliveryAttempt) instead of the attempt loop.
	Kinds []FaultKind
}

// withDefaults normalises a plan config.
func (c PlanConfig) withDefaults() PlanConfig {
	if c.TargetRate <= 0 {
		c.TargetRate = 0.3
	}
	if c.TargetRate > 1 {
		c.TargetRate = 1
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 2
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []FaultKind{FaultPanic, FaultEmitPanic, FaultError, FaultDelay}
	}
	return c
}

// SeededPlan is a deterministic, order-independent Injector: every
// decision is a pure hash of (seed, phase, task), so a schedule is
// re-runnable from its PlanConfig alone. A targeted task draws one fault
// kind; crash kinds fail the task's first 1..MaxFailures attempts with
// attempt-varying messages (transient faults present different symptoms
// each time, so the deterministic-failure early stop never trips), and
// delay kinds make the first attempt a straggler. Speculative backup
// attempts run clean, modelling re-execution on a healthy node.
type SeededPlan struct {
	cfg PlanConfig
	// attemptKinds and deliveryKinds split cfg.Kinds by injection site:
	// attempt-loop faults versus transport commit-boundary faults.
	attemptKinds  []FaultKind
	deliveryKinds []FaultKind
}

// NewSeededPlan builds the schedule for one seed.
func NewSeededPlan(cfg PlanConfig) *SeededPlan {
	p := &SeededPlan{cfg: cfg.withDefaults()}
	for _, k := range p.cfg.Kinds {
		if isDeliveryKind(k) {
			p.deliveryKinds = append(p.deliveryKinds, k)
		} else {
			p.attemptKinds = append(p.attemptKinds, k)
		}
	}
	return p
}

// Decide implements Injector.
func (p *SeededPlan) Decide(phase Phase, task, attempt int) Fault {
	if attempt >= DeliveryAttempt {
		return p.decideDelivery(phase, task)
	}
	if attempt >= SpeculativeAttempt || len(p.attemptKinds) == 0 {
		return Fault{}
	}
	h := mix64(uint64(p.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(phase)*0xbf58476d1ce4e5b9 + uint64(task)*0x94d049bb133111eb + 1)
	if float64(h>>11)/float64(1<<53) >= p.cfg.TargetRate {
		return Fault{}
	}
	h2 := mix64(h)
	kind := p.attemptKinds[int(h2%uint64(len(p.attemptKinds)))]
	switch kind {
	case FaultDelay:
		if attempt > 0 {
			return Fault{}
		}
		delay := time.Duration(mix64(h2)%uint64(p.cfg.MaxDelay)) + 1
		return Fault{Kind: FaultDelay, Delay: delay}
	default:
		failures := 1 + int(mix64(h2)%uint64(p.cfg.MaxFailures))
		if attempt >= failures {
			return Fault{}
		}
		return Fault{Kind: kind, Msg: fmt.Sprintf(
			"injected %s fault: seed=%d phase=%s task=%d attempt=%d",
			kind, p.cfg.Seed, phase, task, attempt)}
	}
}

// decideDelivery is the commit-boundary decision: a pure hash of (seed,
// phase, task) on an independent stream from the attempt-loop decisions,
// so mixing transport kinds into a plan does not perturb which tasks the
// attempt faults target. Only map tasks have a partition hand-off, so
// other phases are never targeted.
func (p *SeededPlan) decideDelivery(phase Phase, task int) Fault {
	if phase != PhaseMap || len(p.deliveryKinds) == 0 {
		return Fault{}
	}
	h := mix64(uint64(p.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(phase)*0xbf58476d1ce4e5b9 + uint64(task)*0x94d049bb133111eb + 0x2545f4914f6cdd1d)
	if float64(h>>11)/float64(1<<53) >= p.cfg.TargetRate {
		return Fault{}
	}
	h2 := mix64(h)
	return Fault{Kind: p.deliveryKinds[int(h2%uint64(len(p.deliveryKinds)))]}
}

// mix64 is the SplitMix64 finalizer — a cheap, well-distributed bijection
// used to derive independent decisions from one seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
