package mapreduce

import (
	"fmt"
	"sync"
)

// This file implements skip mode (FaultPolicy.SkipBadRecords): Hadoop's
// answer to the poison record. The attempt loop already classifies a
// failure as deterministic when a retry reproduces the first attempt's
// exact error (pool.go); once that happens, retrying cannot help — but
// the job need not die if a single input unit is to blame. Skip mode
// re-runs the task body over input prefixes with a throwaway context
// (probes), binary-searches the smallest failing prefix — valid because
// a deterministic single-record failure makes "prefix of length n fails"
// monotone in n — quarantines the unit at its end, and re-enters the
// real attempt loop without it, repeating while distinct poisons remain.
// DESIGN.md §9 documents the model.

// skipRun drives the skip loop for one task. probe(n) runs the task body
// over the first n units of the current working set and returns its
// failure, if any; quarantine(i, cause) removes unit i from the working
// set and charges the job-wide budget (its error aborts the job); rerun
// re-executes the real attempt loop over the shrunken working set. size
// reports the working set's current length. orig is the attempt-loop
// failure that triggered skip mode, returned verbatim whenever the
// failure turns out not to be record-skippable.
func skipRun(size func() int, probe func(n int) error,
	quarantine func(i int, cause error) error,
	rerun func() (*Context, error), orig error) (*Context, error) {
	for {
		n := size()
		cause := probe(n)
		if cause == nil {
			// The task body alone cannot reproduce the failure — a
			// transient fault, or one in a part of the attempt probes do
			// not replay (combiner, injected attempt-scoped faults).
			return nil, orig
		}
		if probe(0) != nil {
			// Even the empty prefix fails: Setup/Cleanup is broken, no
			// record is to blame.
			return nil, orig
		}
		// Invariant: probe(lo) succeeds, probe(hi) fails.
		lo, hi := 0, n
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if err := probe(mid); err != nil {
				hi, cause = mid, err
			} else {
				lo = mid
			}
		}
		if err := quarantine(hi-1, cause); err != nil {
			return nil, err
		}
		ctx, err := rerun()
		if err == nil {
			return ctx, nil
		}
		// Another poison (or a genuinely new failure) — keep bisecting.
		orig = err
	}
}

// quarantineState is one job's shared skip bookkeeping: the budget lives
// in the job counters (so it is charged once across concurrent tasks) and
// the mutex serialises the user's Quarantine sink.
type quarantineState struct {
	mu sync.Mutex
}

// quarantine charges one skipped unit against the job budget and reports
// it to the policy's sink. Exceeding the budget returns the abort error.
func (q *quarantineState) quarantine(cfg Config, counters *Counters, rec QuarantinedRecord) error {
	limit := cfg.Fault.maxSkippedRecords()
	if n := counters.Add(CounterRecordsSkipped, 1); n > limit {
		return fmt.Errorf("mapreduce: job %q: %d skipped records exceed MaxSkippedRecords %d (last: %s)",
			cfg.Name, n, limit, rec.Err)
	}
	if sink := cfg.Fault.Quarantine; sink != nil {
		q.mu.Lock()
		sink(rec)
		q.mu.Unlock()
	}
	return nil
}

// skipMapRecords re-runs a deterministically failing map task with poison
// records bisected out. rerun must execute the task's full attempt loop
// over the given split. Probes feed the mapper alone — combiner faults
// are deliberately not reproduced, so they stay unskippable.
func skipMapRecords(cfg Config, counters *Counters, q *quarantineState, task int,
	split []KV, mapper Mapper,
	rerun func(split []KV) (*Context, error), orig error) (*Context, error) {
	work := append([]KV(nil), split...)
	pf := cfg.decideFault(PhaseMap, task, ProbeAttempt)
	probe := func(n int) error {
		sctx := &Context{TaskID: task, Job: cfg}
		sctx.out = make([]KV, 0, n)
		return guard(func() {
			runTask(sctx, work[:n], recordFaultWrap(mapper, pf, nil))
		})
	}
	quarantine := func(i int, cause error) error {
		kv := work[i]
		work = append(work[:i:i], work[i+1:]...)
		return q.quarantine(cfg, counters, QuarantinedRecord{
			Job: cfg.Name, Phase: PhaseMap, Task: task,
			Key: kv.Key, Value: kv.Value, Err: cause.Error(),
		})
	}
	return skipRun(func() int { return len(work) }, probe, quarantine,
		func() (*Context, error) { return rerun(work) }, orig)
}

// skipReduceGroups is the reduce-phase analogue: the bisected units are
// the task's sorted key groups. body runs the reducer over a key slice
// into the given context, realising fault f (the probe passes the
// ProbeAttempt decision, the rerun path its own per-attempt decision).
func skipReduceGroups(cfg Config, counters *Counters, q *quarantineState, task int,
	keys []string, body func(ctx *Context, keys []string, f Fault),
	rerun func(keys []string) (*Context, error), orig error) (*Context, error) {
	work := append([]string(nil), keys...)
	pf := cfg.decideFault(PhaseReduce, task, ProbeAttempt)
	probe := func(n int) error {
		sctx := &Context{TaskID: task, Job: cfg}
		sctx.out = make([]KV, 0, n)
		return guard(func() { body(sctx, work[:n], pf) })
	}
	quarantine := func(i int, cause error) error {
		key := work[i]
		work = append(work[:i:i], work[i+1:]...)
		return q.quarantine(cfg, counters, QuarantinedRecord{
			Job: cfg.Name, Phase: PhaseReduce, Task: task,
			Key: key, Err: cause.Error(),
		})
	}
	return skipRun(func() int { return len(work) }, probe, quarantine,
		func() (*Context, error) { return rerun(work) }, orig)
}

// recordFaultWrap arms a FaultRecordPanic on a mapper: the wrapped mapper
// panics with the fault's message when the task reaches its Record'th
// input record. Other kinds pass the mapper through untouched. counters
// may be nil (probes inject without counting).
func recordFaultWrap(m Mapper, f Fault, counters *Counters) Mapper {
	if f.Kind != FaultRecordPanic {
		return m
	}
	return &recordFaultMapper{inner: m, fault: f, counters: counters}
}

type recordFaultMapper struct {
	inner    Mapper
	fault    Fault
	counters *Counters
	n        int
}

// Map implements Mapper, firing the armed record fault at its index.
func (m *recordFaultMapper) Map(ctx *Context, kv KV) {
	if m.n == m.fault.Record {
		if m.counters != nil {
			m.counters.Inc(counterInjectedPrefix+m.fault.Kind.String(), 1)
		}
		panic(m.fault.Msg)
	}
	m.n++
	m.inner.Map(ctx, kv)
}

// Setup forwards the lifecycle hook the wrapper would otherwise hide from
// the engine's interface probes.
func (m *recordFaultMapper) Setup(ctx *Context) {
	if s, ok := m.inner.(Setupper); ok {
		s.Setup(ctx)
	}
}

// Cleanup forwards the lifecycle hook.
func (m *recordFaultMapper) Cleanup(ctx *Context) {
	if c, ok := m.inner.(Cleanupper); ok {
		c.Cleanup(ctx)
	}
}
