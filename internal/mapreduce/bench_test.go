package mapreduce

// Engine micro-benchmarks, including the fold-path ablation that motivated
// Folder/FoldingReducer (DESIGN.md §2).

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchInput builds n records with k-way key collisions.
func benchInput(n, distinctKeys int) []KV {
	rng := rand.New(rand.NewSource(1))
	in := make([]KV, n)
	for i := range in {
		in[i] = KV{Key: fmt.Sprintf("k%06d", rng.Intn(distinctKeys)), Value: int64(1)}
	}
	return in
}

type plainSum struct{}

func (plainSum) Reduce(ctx *Context, key string, values []any) {
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
}

type foldSum struct{ plainSum }

func (foldSum) Fold(acc, v any) any                          { return acc.(int64) + v.(int64) }
func (foldSum) FinishFold(ctx *Context, key string, acc any) { ctx.Emit(key, acc) }

// BenchmarkReducePlainVsFold ablates the folding fast path.
func BenchmarkReducePlainVsFold(b *testing.B) {
	in := benchInput(200_000, 20_000)
	cl := DefaultCluster()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(Config{Cluster: cl}, in, IdentityMapper, plainSum{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(Config{Cluster: cl}, in, IdentityMapper, foldSum{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCombinerAblation measures the shuffle shrink a combiner buys.
func BenchmarkCombinerAblation(b *testing.B) {
	in := benchInput(100_000, 2_000)
	cl := DefaultCluster()
	b.Run("without", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Run(Config{Cluster: cl}, in, IdentityMapper, foldSum{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Metrics.ShuffleRecords), "shuffle-recs/op")
		}
	})
	b.Run("with", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Run(Config{Cluster: cl, Combiner: foldSum{}}, in, IdentityMapper, foldSum{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Metrics.ShuffleRecords), "shuffle-recs/op")
		}
	})
}

// BenchmarkMemoryBudget measures the out-of-core shuffle against the
// in-memory baseline on the same workload: identical output at every
// budget, with the spill volume and merge fan-in reported alongside the
// time so the cost of each extra disk pass is visible in one table.
func BenchmarkMemoryBudget(b *testing.B) {
	in := benchInput(100_000, 20_000)
	cl := DefaultCluster()
	for _, bc := range []struct {
		name   string
		budget int64
	}{
		{"unbounded", -1},
		{"64KiB", 64 << 10},
		{"4KiB", 4 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			var runs, spilled, peak, ways float64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{Cluster: cl, MemoryBudgetBytes: bc.budget, SpillDir: dir},
					in, IdentityMapper, foldSum{})
				if err != nil {
					b.Fatal(err)
				}
				runs = float64(res.Metrics.SpillRuns)
				spilled = float64(res.Metrics.SpillBytes)
				peak = float64(res.Metrics.ShufflePeakBytes)
				ways = float64(res.Counters.Get(CounterSpillMergeWays))
			}
			b.ReportMetric(runs, "spill-runs/op")
			b.ReportMetric(spilled, "spill-B/op")
			b.ReportMetric(peak, "shuffle-peak-B")
			b.ReportMetric(ways, "merge-ways")
		})
	}
}

// BenchmarkShuffleThroughput is the raw per-record engine cost.
func BenchmarkShuffleThroughput(b *testing.B) {
	in := benchInput(100_000, 50_000)
	cl := DefaultCluster()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Cluster: cl}, in, IdentityMapper, FirstValue{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(in)) * 16)
}
