// Package mapreduce implements the shared-nothing execution substrate the
// paper assumes: a MapReduce engine with mappers, combiners, reducers, a
// deterministic sort-based shuffle, user counters, and a cluster cost model
// that converts measured per-task work into a simulated distributed
// makespan.
//
// The engine runs in-process. This is the documented substitution for the
// paper's Hadoop/EC2 testbed (see DESIGN.md §2): every quantity the paper's
// comparisons depend on — map output records, shuffle bytes, duplication
// factors, per-reducer skew, comparison counts — is measured exactly from
// real algorithm executions; only the conversion to "cluster seconds" is
// modelled.
package mapreduce

// KV is a key/value pair flowing through a MapReduce job. Keys are strings
// (binary-safe); values are arbitrary. Values crossing the shuffle should
// either implement Sized or be one of the natively sized kinds so that
// shuffle-byte accounting stays meaningful.
type KV struct {
	// Key groups values in the shuffle.
	Key string
	// Value is the payload delivered to reducers.
	Value any
}

// Sized lets shuffle values report their serialized size in bytes for cost
// accounting. Aggregate types used as shuffle values should implement it.
type Sized interface {
	// SizeBytes returns the approximate wire size of the value.
	SizeBytes() int
}

// sizeOf estimates the wire size of a value for shuffle accounting.
func sizeOf(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.SizeBytes()
	case string:
		return len(x)
	case []byte:
		return len(x)
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint, uint64, float64:
		return 8
	case []uint32:
		return 4 * len(x)
	case []int32:
		return 4 * len(x)
	case []int:
		return 8 * len(x)
	case []string:
		n := 0
		for _, s := range x {
			n += len(s) + 4
		}
		return n
	default:
		// Unknown aggregate: charge a conservative flat cost so that
		// accounting never silently reports zero.
		return 16
	}
}

// kvBytes is the accounted wire size of a pair: key, value and a small
// per-record framing overhead (Hadoop writes key/value lengths).
func kvBytes(kv KV) int { return len(kv.Key) + sizeOf(kv.Value) + 8 }
