package vsmart

import (
	"encoding/binary"

	"fsjoin/internal/spill"
)

// Spill codecs for this package's shuffle values (DESIGN.md §8). The
// partial fold is pure addition on c, so re-folding merged runs is exact.
// taggedRecord is the join phase's input (an R/S-tagged record),
// registered so R-S joins checkpoint and fingerprint that stage boundary
// (DESIGN.md §9). Tags 46–48; this package owns tags 46–48.
func init() {
	spill.RegisterValue(46, posting{},
		func(buf []byte, v any) []byte {
			p := v.(posting)
			buf = append(buf, p.origin)
			buf = binary.AppendVarint(buf, int64(p.rid))
			return binary.AppendVarint(buf, int64(p.l))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := posting{origin: d.Byte(), rid: int32(d.Varint()), l: int32(d.Varint())}
			return p, d.Err()
		})
	spill.RegisterValue(48, taggedRecord{},
		func(buf []byte, v any) []byte {
			t := v.(taggedRecord)
			buf = append(buf, t.origin)
			buf = binary.AppendVarint(buf, int64(t.rec.RID))
			return spill.AppendU32s(buf, t.rec.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			t := taggedRecord{origin: d.Byte()}
			t.rec.RID = int32(d.Varint())
			t.rec.Tokens = d.U32s()
			return t, d.Err()
		})
	spill.RegisterValue(47, partial{},
		func(buf []byte, v any) []byte {
			p := v.(partial)
			buf = binary.AppendVarint(buf, int64(p.c))
			buf = binary.AppendVarint(buf, int64(p.la))
			return binary.AppendVarint(buf, int64(p.lb))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := partial{c: int32(d.Varint()), la: int32(d.Varint()), lb: int32(d.Varint())}
			return p, d.Err()
		})
}
