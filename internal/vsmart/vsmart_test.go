package vsmart

import (
	"errors"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

func TestVSmartMatchesOracle(t *testing.T) {
	c := testutil.RandomCollection(110, 60, 20, 21)
	for _, theta := range []float64{0.5, 0.75, 0.9} {
		want := bruteforce.SelfJoin(c, similarity.Jaccard, theta)
		res, err := SelfJoin(c, Options{Theta: theta, Cluster: testutil.SmallCluster()})
		if err != nil {
			t.Fatalf("SelfJoin(theta=%v): %v", theta, err)
		}
		testutil.AssertSameResults(t, "vsmart", res.Pairs, want)
	}
}

func TestVSmartShuffleInsensitiveToTheta(t *testing.T) {
	// The paper notes V-Smart-Join's cost is insensitive to θ because the
	// threshold is only applied in the final reduce.
	c := testutil.RandomCollection(100, 50, 18, 22)
	var bytes []int64
	for _, theta := range []float64{0.6, 0.9} {
		res, err := SelfJoin(c, Options{Theta: theta, Cluster: testutil.SmallCluster()})
		if err != nil {
			t.Fatal(err)
		}
		// Shuffle volume of the join phase (stage index 1 after ordering).
		bytes = append(bytes, res.Pipeline.Stages()[1].ShuffleBytes)
	}
	if bytes[0] != bytes[1] {
		t.Errorf("join-phase shuffle varies with theta: %v", bytes)
	}
}

func TestVSmartJoinRSMatchesOracle(t *testing.T) {
	// Both collections number their records from zero, so the rid spaces
	// overlap — pairing must be decided by relation, never by rid.
	r := testutil.RandomCollection(70, 50, 18, 31)
	s := testutil.RandomCollection(70, 50, 18, 32)
	for _, fn := range []similarity.Func{similarity.Jaccard, similarity.Dice, similarity.Cosine} {
		for _, theta := range []float64{0.5, 0.8} {
			want := bruteforce.Join(r, s, fn, theta)
			res, err := Join(r, s, Options{Fn: fn, Theta: theta, Cluster: testutil.SmallCluster()})
			if err != nil {
				t.Fatalf("Join(%v, theta=%v): %v", fn, theta, err)
			}
			testutil.AssertSameResults(t, "vsmart-rs", res.Pairs, want)
		}
	}
}

func TestVSmartJoinNilS(t *testing.T) {
	c := testutil.RandomCollection(5, 10, 5, 33)
	if _, err := Join(c, nil, Options{Theta: 0.5, Cluster: testutil.SmallCluster()}); err == nil {
		t.Fatal("nil S collection accepted")
	}
}

func TestVSmartBudget(t *testing.T) {
	c := testutil.RandomCollection(80, 30, 15, 23)
	_, err := SelfJoin(c, Options{Theta: 0.8, Cluster: testutil.SmallCluster(), MaxPairEmits: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}
