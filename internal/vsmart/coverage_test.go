package vsmart

import (
	"testing"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/tokens"
)

// fakeCtxRun exercises the non-fold Reduce paths directly through a tiny
// job, covering the code a FoldingReducer-aware engine never calls.
func TestPlainReducePathsEquivalent(t *testing.T) {
	in := []mapreduce.KV{
		{Key: "p", Value: partial{c: 1, la: 4, lb: 5}},
		{Key: "p", Value: partial{c: 1, la: 4, lb: 5}},
		{Key: "p", Value: partial{c: 2, la: 4, lb: 5}},
	}
	// sumPartials.Reduce must equal folding through the engine.
	var direct []mapreduce.KV
	ctxRes, err := mapreduce.Run(mapreduce.Config{Name: "plain"},
		in, mapreduce.IdentityMapper,
		mapreduce.ReduceFunc(func(ctx *mapreduce.Context, key string, values []any) {
			sumPartials{}.Reduce(ctx, key, values)
		}))
	if err != nil {
		t.Fatal(err)
	}
	direct = ctxRes.Output
	if len(direct) != 1 || direct[0].Value.(partial).c != 4 {
		t.Fatalf("plain sum = %v", direct)
	}

	// thresholdReducer.Reduce: 4 of {4,5} → Jaccard 4/5 = 0.8.
	res, err := mapreduce.Run(mapreduce.Config{Name: "thr"},
		in, mapreduce.IdentityMapper,
		mapreduce.ReduceFunc(func(ctx *mapreduce.Context, key string, values []any) {
			(&thresholdReducer{fn: 0, theta: 0.8}).Reduce(ctx, key, values)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("threshold output = %v", res.Output)
	}
	res2, err := mapreduce.Run(mapreduce.Config{Name: "thr2"},
		in, mapreduce.IdentityMapper,
		mapreduce.ReduceFunc(func(ctx *mapreduce.Context, key string, values []any) {
			(&thresholdReducer{fn: 0, theta: 0.81}).Reduce(ctx, key, values)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Output) != 0 {
		t.Fatalf("above-threshold output = %v", res2.Output)
	}
}

func TestPostingSizes(t *testing.T) {
	if (posting{}).SizeBytes() != 9 || (partial{}).SizeBytes() != 12 {
		t.Fatal("wire sizes changed")
	}
	if (taggedRecord{rec: tokens.NewRecord(0, []tokens.ID{1, 2})}).SizeBytes() != 13 {
		t.Fatal("tagged-record wire size changed")
	}
}
