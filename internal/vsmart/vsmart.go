// Package vsmart implements the V-Smart-Join baseline (Metwally &
// Faloutsos, VLDB 2012) in its Online-Aggregation variant, as described in
// the paper's related work: the Join phase emits every token of every
// record (building, in effect, a distributed inverted index) and enumerates
// all record pairs inside each token's posting list; the Similarity phase
// aggregates the per-token partial counts and applies the threshold. No
// filtering is performed before the final aggregation — the drawback the
// paper highlights.
package vsmart

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// ErrBudgetExceeded reports that the pairwise enumeration exceeded
// Options.MaxPairEmits — the in-process stand-in for the paper's
// observation that V-Smart-Join "cannot run completely" on larger datasets.
var ErrBudgetExceeded = errors.New("vsmart: pair-enumeration budget exceeded")

// Options configures a V-Smart-Join run.
type Options struct {
	// Fn and Theta define the similarity predicate.
	Fn    similarity.Func
	Theta float64
	// Cluster is the cost model (default: the paper's 10-node cluster).
	Cluster *mapreduce.Cluster
	// MaxPairEmits caps the number of (pair, partial) records the Join
	// phase may emit; 0 means unlimited. When exceeded, SelfJoin returns
	// ErrBudgetExceeded, mirroring the runs the paper reports as failures.
	MaxPairEmits int64
	// Ctx, when non-nil, cancels the pipeline at the next task boundary.
	Ctx context.Context
	// Parallelism is the local engine parallelism for every stage; see
	// mapreduce.Config.Parallelism.
	Parallelism int
	// Fault is the fault-tolerance and fault-injection policy inherited by
	// every stage; see mapreduce.FaultPolicy.
	Fault mapreduce.FaultPolicy
	// MemoryBudget caps each map task's in-memory shuffle buffer; records
	// beyond it spill to sorted runs on disk and merge back at reduce time
	// (see mapreduce.Config.MemoryBudgetBytes). 0 defers to the engine
	// default (FSJOIN_MEMORY_BUDGET); negative forces unbounded. Results
	// are byte-identical at any budget.
	MemoryBudget int64
	// SpillDir is the parent directory for spill files ("" = OS temp dir).
	SpillDir string
	// CheckpointDir, when non-empty, persists each completed pipeline
	// stage there for crash/restart recovery; see
	// mapreduce.Pipeline.CheckpointDir.
	CheckpointDir string
	// CheckpointSalt folds the caller's configuration into every stage
	// fingerprint, so one checkpoint directory reused under different
	// options recomputes instead of replaying mismatched state.
	CheckpointSalt string
	// Runtime selects the execution substrate (shuffle transport and, for
	// multi-process runs, the task executor); the zero value is the
	// in-process engine. See mapreduce.Runtime.
	Runtime mapreduce.Runtime
}

// Result carries the join output and pipeline metrics.
type Result struct {
	// Pairs are the similar pairs, sorted canonically.
	Pairs []result.Pair
	// Pipeline exposes per-stage metrics.
	Pipeline *mapreduce.Pipeline
}

// posting is one inverted-list entry: rid, record length and origin
// relation (0 = R/self, 1 = S). The origin tag — not rid inequality —
// decides pairability in R-S mode, because R and S rid spaces may overlap.
type posting struct {
	rid    int32
	l      int32
	origin uint8
}

// SizeBytes implements mapreduce.Sized.
func (posting) SizeBytes() int { return 9 }

// partial is a per-token pair contribution: one common token plus lengths.
type partial struct {
	c, la, lb int32
}

// SizeBytes implements mapreduce.Sized.
func (partial) SizeBytes() int { return 12 }

// taggedRecord is the join phase's input value: a record plus its origin
// relation (0 = R/self, 1 = S).
type taggedRecord struct {
	rec    tokens.Record
	origin uint8
}

// SizeBytes implements mapreduce.Sized.
func (t taggedRecord) SizeBytes() int { return 5 + 4*len(t.rec.Tokens) }

// tagInput converts a collection into join-phase input pairs.
func tagInput(c *tokens.Collection, origin uint8) []mapreduce.KV {
	kvs := make([]mapreduce.KV, 0, len(c.Records))
	for _, rec := range c.Records {
		kvs = append(kvs, mapreduce.KV{
			Key:   mapreduce.OriginKey(origin, uint32(rec.RID)),
			Value: taggedRecord{rec: rec, origin: origin},
		})
	}
	return kvs
}

// SelfJoin runs the two-phase Online-Aggregation pipeline.
func SelfJoin(c *tokens.Collection, opt Options) (*Result, error) {
	return run(c, nil, opt)
}

// Join runs the R-S variant: only cross-relation pairs are enumerated and
// result pairs carry the R-side id first. R and S rid spaces may overlap.
func Join(r, s *tokens.Collection, opt Options) (*Result, error) {
	if s == nil {
		return nil, errors.New("vsmart: nil S collection")
	}
	return run(r, s, opt)
}

func run(r, s *tokens.Collection, opt Options) (*Result, error) {
	if opt.Theta <= 0 || opt.Theta > 1 {
		return nil, fmt.Errorf("vsmart: theta %v outside (0, 1]", opt.Theta)
	}
	if opt.Cluster == nil {
		opt.Cluster = mapreduce.DefaultCluster()
	}
	rs := s != nil
	p := mapreduce.NewPipeline("v-smart-join", opt.Cluster)
	p.Context = opt.Ctx
	p.Parallelism = opt.Parallelism
	p.Fault = opt.Fault
	p.MemoryBudgetBytes = opt.MemoryBudget
	p.SpillDir = opt.SpillDir
	p.CheckpointDir = opt.CheckpointDir
	p.CheckpointSalt = opt.CheckpointSalt
	p.Runtime = opt.Runtime

	// Ordering is not required for correctness here, but running the same
	// frequency job keeps the end-to-end comparison fair across methods.
	union := r
	if rs {
		union = &tokens.Collection{Records: append(append([]tokens.Record{}, r.Records...), s.Records...)}
	}
	o, err := order.Compute(p, union)
	if err != nil {
		return nil, err
	}
	ordered, err := o.Apply(r)
	if err != nil {
		return nil, err
	}
	input := tagInput(ordered, 0)
	if rs {
		orderedS, err := o.Apply(s)
		if err != nil {
			return nil, err
		}
		input = append(input, tagInput(orderedS, 1)...)
	}

	// Join phase: emit every token, enumerate pairs per posting list.
	joinRes, err := p.Run(mapreduce.Config{Name: "join"},
		input,
		mapreduce.MapFunc(func(ctx *mapreduce.Context, kv mapreduce.KV) {
			tr := kv.Value.(taggedRecord)
			for _, t := range tr.rec.Tokens {
				ctx.Emit(mapreduce.U32Key(t),
					posting{rid: tr.rec.RID, l: int32(tr.rec.Len()), origin: tr.origin})
			}
		}),
		&pairEnumerator{budget: opt.MaxPairEmits, rs: rs})
	if err != nil {
		return nil, err
	}
	if dropped := joinRes.Counters.Get("vsmart.pair.dropped"); dropped > 0 {
		return nil, fmt.Errorf("%w (budget %d, dropped %d partials)",
			ErrBudgetExceeded, opt.MaxPairEmits, dropped)
	}

	// Similarity phase: aggregate counts per pair, apply the threshold.
	simRes, err := p.Run(mapreduce.Config{Name: "similarity", Combiner: sumPartials{}},
		joinRes.Output, mapreduce.IdentityMapper,
		&thresholdReducer{fn: opt.Fn, theta: opt.Theta, rs: rs})
	if err != nil {
		return nil, err
	}

	pairs := make([]result.Pair, 0, len(simRes.Output))
	for _, kv := range simRes.Output {
		a, b := mapreduce.DecodePairKey(kv.Key)
		sv := kv.Value.(partial)
		pairs = append(pairs, result.Pair{
			A: int32(a), B: int32(b), Common: int(sv.c),
			Sim: opt.Fn.Sim(int(sv.c), int(sv.la), int(sv.lb)),
		})
	}
	result.Sort(pairs)
	return &Result{Pairs: pairs, Pipeline: p}, nil
}

// pairEnumerator emits a partial for every pair of records in one token's
// posting list — quadratic per list, with no filtering (the algorithm's
// defining drawback). In R-S mode only cross-relation pairs qualify
// (origin, not rid inequality, decides — R#x may legitimately pair with
// S#x) and the pair key carries the R-side rid first. Emission stops once
// the budget is exhausted so the process stays bounded; the driver then
// reports the failure. One instance is shared by all reduce tasks, which
// may run concurrently, so the running count is atomic.
type pairEnumerator struct {
	budget  int64
	rs      bool
	emitted atomic.Int64
}

// Reduce implements mapreduce.Reducer.
func (e *pairEnumerator) Reduce(ctx *mapreduce.Context, key string, values []any) {
	ps := make([]posting, len(values))
	for i, v := range values {
		ps[i] = v.(posting)
	}
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			a, b := ps[i], ps[j]
			if e.rs {
				if a.origin == b.origin {
					continue
				}
				if a.origin != 0 {
					a, b = b, a
				}
			} else {
				if a.rid == b.rid {
					continue
				}
				if a.rid > b.rid {
					a, b = b, a
				}
			}
			if e.budget > 0 && e.emitted.Add(1) > e.budget {
				ctx.Inc("vsmart.pair.dropped", 1)
				continue
			}
			ctx.Inc("vsmart.pair.emits", 1)
			ctx.Emit(mapreduce.PairKey(uint32(a.rid), uint32(b.rid)),
				partial{c: 1, la: a.l, lb: b.l})
		}
	}
}

// sumPartials is the Similarity phase's combiner (fold fast path).
type sumPartials struct{}

// Reduce implements mapreduce.Reducer.
func (s sumPartials) Reduce(ctx *mapreduce.Context, key string, values []any) {
	acc := values[0]
	for _, v := range values[1:] {
		acc = s.Fold(acc, v)
	}
	ctx.Emit(key, acc)
}

// Fold implements mapreduce.Folder.
func (sumPartials) Fold(acc, v any) any {
	a := acc.(partial)
	a.c += v.(partial).c
	return a
}

// thresholdReducer aggregates per-pair counts and applies the threshold,
// using the engine's fold fast path. In R-S mode it also feeds the
// rs.pairs.* counters surfaced through fsjoin.Stats.
type thresholdReducer struct {
	fn    similarity.Func
	theta float64
	rs    bool
}

// Reduce implements mapreduce.Reducer.
func (r *thresholdReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	acc := values[0]
	for _, v := range values[1:] {
		acc = r.Fold(acc, v)
	}
	r.FinishFold(ctx, key, acc)
}

// Fold implements mapreduce.Folder.
func (r *thresholdReducer) Fold(acc, v any) any {
	a := acc.(partial)
	a.c += v.(partial).c
	return a
}

// FinishFold implements mapreduce.FoldingReducer.
func (r *thresholdReducer) FinishFold(ctx *mapreduce.Context, key string, acc any) {
	sum := acc.(partial)
	if r.rs {
		ctx.Inc(result.CtrRSCandidates, 1)
	}
	if r.fn.AtLeast(int(sum.c), int(sum.la), int(sum.lb), r.theta) {
		if r.rs {
			ctx.Inc(result.CtrRSEmitted, 1)
		}
		ctx.Emit(key, sum)
	}
}
