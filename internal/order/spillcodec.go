package order

import (
	"encoding/binary"

	"fsjoin/internal/spill"
	"fsjoin/internal/tokens"
)

// Spill codec for recordValue — the input every algorithm's first stage
// (and several later ones) consumes via RecordsToKV. Registering it makes
// those stages' inputs fingerprintable and their upstream outputs
// checkpointable (DESIGN.md §9). Tag 61; this package owns tags 61–62.
func init() {
	spill.RegisterValue(61, recordValue{},
		func(buf []byte, v any) []byte {
			r := v.(recordValue)
			buf = binary.AppendVarint(buf, int64(r.rec.RID))
			return spill.AppendU32s(buf, r.rec.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			r := recordValue{rec: tokens.Record{RID: int32(d.Varint())}}
			r.rec.Tokens = d.U32s()
			return r, d.Err()
		})
}
