// Package order implements the paper's Ordering phase (Section III): a
// MapReduce job that counts per-token term frequency and derives the global
// ordering O — tokens sorted ascending by frequency, ties broken by token
// id. Records re-encoded under O have their rarest tokens first, which is
// what makes prefix filtering effective and what Even-TF pivot selection
// consumes.
package order

import (
	"fmt"
	"sort"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/tokens"
)

// noRank marks token ids inside the RankOf range that never occurred in the
// ordered collection.
const noRank = ^uint32(0)

// Kind selects the global ordering strategy. The paper adopts ascending
// term frequency (Section IV) but notes lexicographic and other orders as
// alternatives explored in the literature.
type Kind int

const (
	// FreqAscending ranks rare tokens first — the paper's choice: prefixes
	// hold rare tokens, and Even-TF pivots can balance fragment mass.
	FreqAscending Kind = iota
	// FreqDescending ranks frequent tokens first (an anti-pattern for
	// prefix filtering; provided for ablation).
	FreqDescending
	// Lexicographic ranks by original token id, ignoring frequency.
	Lexicographic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FreqAscending:
		return "freq-asc"
	case FreqDescending:
		return "freq-desc"
	case Lexicographic:
		return "lexicographic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Order is the global ordering O over the token domain U.
type Order struct {
	// RankOf maps original token id → rank under O (0 = globally rarest).
	RankOf []uint32
	// TokenAt maps rank → original token id (the inverse of RankOf).
	TokenAt []uint32
	// FreqByRank maps rank → term frequency of that token.
	FreqByRank []int64
	// TotalFreq is Σ FreqByRank, the total number of token occurrences.
	TotalFreq int64
}

// Domain returns |U|, the number of distinct tokens.
func (o *Order) Domain() int { return len(o.TokenAt) }

// Apply re-encodes a collection under the ordering: every token id is
// replaced by its rank and each record is re-canonicalised. Tokens unknown
// to the ordering are rejected — the ordering must be computed over (a
// superset of) the collection.
func (o *Order) Apply(c *tokens.Collection) (*tokens.Collection, error) {
	out := &tokens.Collection{Records: make([]tokens.Record, 0, len(c.Records))}
	for _, r := range c.Records {
		ids := make([]tokens.ID, len(r.Tokens))
		for i, t := range r.Tokens {
			if int(t) >= len(o.RankOf) || o.RankOf[t] == noRank {
				return nil, fmt.Errorf("order: token %d outside ordered domain (|U|=%d)", t, len(o.TokenAt))
			}
			ids[i] = o.RankOf[t]
		}
		out.Records = append(out.Records, tokens.NewRecord(r.RID, ids))
	}
	return out, nil
}

// recordValue wraps a record as a shuffle value with size accounting.
type recordValue struct{ rec tokens.Record }

// SizeBytes implements mapreduce.Sized.
func (v recordValue) SizeBytes() int { return 4 + 4*len(v.rec.Tokens) }

// RecordsToKV converts a collection into MapReduce input pairs, one record
// per pair, keyed by rid.
func RecordsToKV(c *tokens.Collection) []mapreduce.KV {
	in := make([]mapreduce.KV, len(c.Records))
	for i, r := range c.Records {
		in[i] = mapreduce.KV{Key: mapreduce.U32Key(uint32(r.RID)), Value: recordValue{rec: r}}
	}
	return in
}

// KVRecord extracts the record from a pair produced by RecordsToKV.
func KVRecord(kv mapreduce.KV) tokens.Record { return kv.Value.(recordValue).rec }

// sumReducer adds int64 values per key; used as combiner and reducer, with
// the engine's fold fast paths.
type sumReducer struct{}

// Reduce implements mapreduce.Reducer.
func (sumReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	var n int64
	for _, v := range values {
		n += v.(int64)
	}
	ctx.Emit(key, n)
}

// Fold implements mapreduce.Folder.
func (sumReducer) Fold(acc, v any) any { return acc.(int64) + v.(int64) }

// FinishFold implements mapreduce.FoldingReducer.
func (sumReducer) FinishFold(ctx *mapreduce.Context, key string, acc any) { ctx.Emit(key, acc) }

// Compute runs the ordering MapReduce job over the collection and builds
// the paper's global order (ascending term frequency, ties by token id).
func Compute(p *mapreduce.Pipeline, c *tokens.Collection) (*Order, error) {
	return ComputeKind(p, c, FreqAscending)
}

// ComputeKind runs the ordering MapReduce job over the collection and
// builds the global order of the given kind. The job mirrors [18]: map
// emits (token, 1) per occurrence, a combiner pre-aggregates, the reducer
// sums, and the driver sorts tokens by the kind's comparator.
func ComputeKind(p *mapreduce.Pipeline, c *tokens.Collection, kind Kind) (*Order, error) {
	in := RecordsToKV(c)
	mapper := mapreduce.MapFunc(func(ctx *mapreduce.Context, kv mapreduce.KV) {
		for _, t := range KVRecord(kv).Tokens {
			ctx.Emit(mapreduce.U32Key(t), int64(1))
		}
	})
	res, err := p.Run(mapreduce.Config{
		Name:     "ordering",
		Combiner: sumReducer{},
	}, in, mapper, sumReducer{})
	if err != nil {
		return nil, err
	}

	type tf struct {
		tok  uint32
		freq int64
	}
	tfs := make([]tf, 0, len(res.Output))
	var maxTok uint32
	for _, kv := range res.Output {
		t := mapreduce.DecodeU32Key(kv.Key)
		tfs = append(tfs, tf{tok: t, freq: kv.Value.(int64)})
		if t > maxTok {
			maxTok = t
		}
	}
	sort.Slice(tfs, func(i, j int) bool {
		switch kind {
		case FreqDescending:
			if tfs[i].freq != tfs[j].freq {
				return tfs[i].freq > tfs[j].freq
			}
		case Lexicographic:
			// fall through to token-id comparison
		default: // FreqAscending
			if tfs[i].freq != tfs[j].freq {
				return tfs[i].freq < tfs[j].freq
			}
		}
		return tfs[i].tok < tfs[j].tok
	})

	o := &Order{
		RankOf:     make([]uint32, maxTok+1),
		TokenAt:    make([]uint32, len(tfs)),
		FreqByRank: make([]int64, len(tfs)),
	}
	if len(tfs) == 0 {
		o.RankOf = nil
	}
	for i := range o.RankOf {
		o.RankOf[i] = noRank
	}
	for rank, e := range tfs {
		o.RankOf[e.tok] = uint32(rank)
		o.TokenAt[rank] = e.tok
		o.FreqByRank[rank] = e.freq
		o.TotalFreq += e.freq
	}
	return o, nil
}
