package order

import (
	"math/rand"
	"testing"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/tokens"
)

func pipeline() *mapreduce.Pipeline {
	cl := mapreduce.DefaultCluster()
	cl.Nodes = 2
	return mapreduce.NewPipeline("order-test", cl)
}

func randomCollection(n, vocab, maxLen int, seed int64) *tokens.Collection {
	rng := rand.New(rand.NewSource(seed))
	c := &tokens.Collection{}
	for i := 0; i < n; i++ {
		l := rng.Intn(maxLen) + 1
		ids := make([]tokens.ID, l)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(vocab))
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
	}
	return c
}

func TestComputeAscendingFrequency(t *testing.T) {
	c := randomCollection(200, 50, 20, 1)
	o, err := Compute(pipeline(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(o.FreqByRank); i++ {
		if o.FreqByRank[i-1] > o.FreqByRank[i] {
			t.Fatalf("frequency not ascending at rank %d: %d > %d",
				i, o.FreqByRank[i-1], o.FreqByRank[i])
		}
	}
	// Frequencies must match a direct count.
	counts := map[tokens.ID]int64{}
	for _, r := range c.Records {
		for _, tok := range r.Tokens {
			counts[tok]++
		}
	}
	if len(counts) != o.Domain() {
		t.Fatalf("domain %d != distinct %d", o.Domain(), len(counts))
	}
	var total int64
	for rank, tok := range o.TokenAt {
		if counts[tok] != o.FreqByRank[rank] {
			t.Fatalf("token %d freq %d != counted %d", tok, o.FreqByRank[rank], counts[tok])
		}
		total += o.FreqByRank[rank]
	}
	if total != o.TotalFreq {
		t.Fatalf("TotalFreq %d != %d", o.TotalFreq, total)
	}
}

func TestRankBijection(t *testing.T) {
	c := randomCollection(100, 40, 15, 2)
	o, err := Compute(pipeline(), c)
	if err != nil {
		t.Fatal(err)
	}
	for rank, tok := range o.TokenAt {
		if o.RankOf[tok] != uint32(rank) {
			t.Fatalf("RankOf[TokenAt[%d]] = %d", rank, o.RankOf[tok])
		}
	}
}

func TestApplyPreservesSetsAndIntersections(t *testing.T) {
	c := randomCollection(80, 40, 15, 3)
	o, err := Compute(pipeline(), c)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := o.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range c.Records {
		if oc.Records[i].Len() != c.Records[i].Len() {
			t.Fatalf("record %d length changed", i)
		}
	}
	// Re-encoding is a bijection on tokens, so intersections are preserved.
	for i := 0; i < 30; i++ {
		a, b := &c.Records[i], &c.Records[i+30]
		oa, ob := &oc.Records[i], &oc.Records[i+30]
		if tokens.Intersect(a.Tokens, b.Tokens) != tokens.Intersect(oa.Tokens, ob.Tokens) {
			t.Fatalf("intersection changed for pair %d", i)
		}
	}
}

func TestApplyRejectsUnknownToken(t *testing.T) {
	c := randomCollection(20, 10, 5, 4)
	o, err := Compute(pipeline(), c)
	if err != nil {
		t.Fatal(err)
	}
	bad := &tokens.Collection{Records: []tokens.Record{tokens.NewRecord(0, []tokens.ID{9999})}}
	if _, err := o.Apply(bad); err == nil {
		t.Fatal("unknown token accepted")
	}
}

func TestComputeEmptyCollection(t *testing.T) {
	o, err := Compute(pipeline(), &tokens.Collection{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Domain() != 0 || o.TotalFreq != 0 {
		t.Fatalf("empty collection: domain=%d freq=%d", o.Domain(), o.TotalFreq)
	}
}

func TestTiesBrokenByTokenID(t *testing.T) {
	// Two tokens with equal frequency: the smaller id ranks first.
	c := &tokens.Collection{Records: []tokens.Record{
		tokens.NewRecord(0, []tokens.ID{5, 9}),
		tokens.NewRecord(1, []tokens.ID{5, 9}),
	}}
	o, err := Compute(pipeline(), c)
	if err != nil {
		t.Fatal(err)
	}
	if o.TokenAt[0] != 5 || o.TokenAt[1] != 9 {
		t.Fatalf("tie order wrong: %v", o.TokenAt)
	}
}

func TestRecordsToKVRoundTrip(t *testing.T) {
	c := randomCollection(10, 10, 5, 5)
	kvs := RecordsToKV(c)
	if len(kvs) != c.Len() {
		t.Fatalf("kv count %d", len(kvs))
	}
	for i, kv := range kvs {
		rec := KVRecord(kv)
		if rec.RID != c.Records[i].RID || rec.Len() != c.Records[i].Len() {
			t.Fatalf("record %d mangled", i)
		}
	}
}

func TestOrderingKinds(t *testing.T) {
	c := randomCollection(150, 40, 15, 9)
	desc, err := ComputeKind(pipeline(), c, FreqDescending)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(desc.FreqByRank); i++ {
		if desc.FreqByRank[i-1] < desc.FreqByRank[i] {
			t.Fatalf("descending order not descending at %d", i)
		}
	}
	lex, err := ComputeKind(pipeline(), c, Lexicographic)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(lex.TokenAt); i++ {
		if lex.TokenAt[i-1] >= lex.TokenAt[i] {
			t.Fatalf("lexicographic order not by token id at %d", i)
		}
	}
	if FreqAscending.String() != "freq-asc" || FreqDescending.String() != "freq-desc" ||
		Lexicographic.String() != "lexicographic" {
		t.Fatal("Kind names wrong")
	}
}
