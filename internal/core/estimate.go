package core

import (
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// CostEstimate is the analytic cost model of Lemma 5, evaluated on a
// collection's statistics: the expected record volumes of FS-Join's
// filtering and verification jobs. It predicts *volumes* (what the paper's
// C_m/C_s/C_r unit costs multiply), which the experiments compare against
// the engine's measured metrics.
type CostEstimate struct {
	// MapRecords is Σ|s_i| in tokens — the map and shuffle volume of the
	// filtering job (duplicate-free, so shuffle = input).
	MapRecords int64
	// ExpectedSegments is the expected number of non-empty segments, i.e.
	// the filtering job's map output record count, assuming tokens spread
	// independently over N fragments.
	ExpectedSegments int64
	// CandidateRecords is α·(M·p/N)²·N from Lemma 5 with p estimated from
	// the data: the expected number of per-fragment co-occurring pairs
	// before filtering.
	CandidateRecords int64
}

// EstimateCost evaluates Lemma 5's quantities for a self-join over c with
// n vertical fragments and pruning proportion alpha (the fraction of
// fragment pair comparisons surviving the filters; 1.0 gives the unpruned
// bound).
func EstimateCost(c *tokens.Collection, fn similarity.Func, theta float64, n int, alpha float64) CostEstimate {
	if n < 1 {
		n = 1
	}
	var est CostEstimate
	m := len(c.Records)
	if m == 0 {
		return est
	}
	est.MapRecords = int64(c.TotalTokens())

	// P(record has ≥1 token in a fragment) with |s| tokens spread over n
	// even-mass fragments ≈ 1 − (1−1/n)^{|s|}; summed over records gives
	// the expected segment count, and its mean is Lemma 5's M·p/N (the
	// expected fragment population divided by N).
	pow := func(base float64, k int) float64 {
		out := 1.0
		for i := 0; i < k; i++ {
			out *= base
		}
		return out
	}
	q := 1.0 - 1.0/float64(n)
	var segs float64
	for _, r := range c.Records {
		segs += (1.0 - pow(q, r.Len())) * float64(n)
	}
	est.ExpectedSegments = int64(segs)

	// Lemma 5's reducer term: N · (M·p/N)²/2 pairwise comparisons, of
	// which a proportion alpha are emitted as candidates.
	perFragment := segs / float64(n) // E[segments in one fragment] = M·p/N·N... (M·p)
	pairs := float64(n) * perFragment * perFragment / 2
	est.CandidateRecords = int64(alpha * pairs)
	return est
}
