package core

import (
	"math/rand"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/partition"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// randomCollection builds a collection with frequent overlaps: small vocab,
// short records, plus near-duplicates.
func randomCollection(t *testing.T, n, vocab, maxLen int, seed int64) *tokens.Collection {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := &tokens.Collection{}
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(3) == 0 {
			base := c.Records[rng.Intn(i)]
			ids := append([]tokens.ID{}, base.Tokens...)
			if len(ids) > 1 && rng.Intn(2) == 0 {
				ids = ids[:len(ids)-1]
			}
			ids = append(ids, tokens.ID(rng.Intn(vocab)))
			c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
			continue
		}
		l := rng.Intn(maxLen) + 1
		ids := make([]tokens.ID, l)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(vocab))
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
	}
	return c
}

func smallCluster() *mapreduce.Cluster {
	cl := mapreduce.DefaultCluster()
	cl.Nodes = 3
	return cl
}

func checkAgainstOracle(t *testing.T, got []result.Pair, want []result.Pair, label string) {
	t.Helper()
	if diffs := result.Diff(got, want, 10); len(diffs) != 0 {
		t.Errorf("%s: %d results, oracle %d; diffs:", label, len(got), len(want))
		for _, d := range diffs {
			t.Errorf("  %s", d)
		}
	}
}

func TestSelfJoinMatchesOracleAcrossConfigs(t *testing.T) {
	c := randomCollection(t, 120, 60, 25, 1)
	for _, theta := range []float64{0.5, 0.75, 0.9} {
		want := bruteforce.SelfJoin(c, similarity.Jaccard, theta)
		if len(want) == 0 {
			t.Fatalf("oracle empty at theta=%v — test data too sparse", theta)
		}
		for _, method := range []fragjoin.Method{fragjoin.Loop, fragjoin.Index, fragjoin.Prefix} {
			for _, hp := range []int{0, 3} {
				for _, pm := range []partition.PivotMethod{partition.Random, partition.EvenInterval, partition.EvenTF} {
					opt := Options{
						Theta:              theta,
						PivotMethod:        pm,
						VerticalPartitions: 7,
						HorizontalPivots:   hp,
						JoinMethod:         method,
						Cluster:            smallCluster(),
						Seed:               42,
					}
					res, err := SelfJoin(c, opt)
					if err != nil {
						t.Fatalf("SelfJoin(%v %v hp=%d pm=%v): %v", theta, method, hp, pm, err)
					}
					label := method.String() + "/" + pm.String()
					checkAgainstOracle(t, res.Pairs, want, label)
				}
			}
		}
	}
}

func TestRSJoinMatchesOracle(t *testing.T) {
	r := randomCollection(t, 80, 50, 20, 7)
	s := randomCollection(t, 90, 50, 20, 8)
	for _, theta := range []float64{0.6, 0.85} {
		want := bruteforce.Join(r, s, similarity.Jaccard, theta)
		for _, hp := range []int{0, 2} {
			opt := Options{
				Theta:              theta,
				PivotMethod:        partition.EvenTF,
				VerticalPartitions: 5,
				HorizontalPivots:   hp,
				JoinMethod:         fragjoin.Prefix,
				Cluster:            smallCluster(),
			}
			res, err := Join(r, s, opt)
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			checkAgainstOracle(t, res.Pairs, want, "rs-join")
		}
	}
}
