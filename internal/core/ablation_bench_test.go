package core

// Ablation benchmarks for FS-Join's design choices: each isolates one knob
// (filters, prefix mode, vertical partition count, horizontal partitioning)
// and reports the quantities it trades — candidate volume, comparisons,
// simulated time.

import (
	"testing"

	"fsjoin/internal/dataset"
	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

func ablationCollection(b *testing.B) *tokens.Collection {
	b.Helper()
	return dataset.Generate(dataset.Wiki().Scale(0.15), 1)
}

func ablationOpts(theta float64) Options {
	return Options{
		Fn:                 similarity.Jaccard,
		Theta:              theta,
		PivotMethod:        partition.EvenTF,
		VerticalPartitions: 30,
		HorizontalPivots:   10,
		JoinMethod:         fragjoin.Prefix,
		Cluster:            mapreduce.DefaultCluster(),
	}
}

// BenchmarkAblationFilters isolates the filter set: none vs StrL only vs
// all.
func BenchmarkAblationFilters(b *testing.B) {
	c := ablationCollection(b)
	cases := []struct {
		name string
		set  filters.Set
	}{
		{"none", filters.Set(0x80) /* non-zero, no real filters */},
		{"strl", filters.StrL},
		{"all", filters.All},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ablationOpts(0.8)
				opt.JoinMethod = fragjoin.Index
				opt.Filters = tc.set
				res, err := SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FilterOutputRecords), "filter-out/op")
			}
		})
	}
}

// BenchmarkAblationPrefixMode isolates the prefix rule: lossless (default)
// vs the paper's literal segment prefix, reporting recall cost alongside.
func BenchmarkAblationPrefixMode(b *testing.B) {
	c := ablationCollection(b)
	exact, err := SelfJoin(c, ablationOpts(0.8))
	if err != nil {
		b.Fatal(err)
	}
	for _, paper := range []bool{false, true} {
		paper := paper
		name := "lossless"
		if paper {
			name = "paper"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ablationOpts(0.8)
				opt.PaperPrefix = paper
				res, err := SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				recall := 1.0
				if len(exact.Pairs) > 0 {
					recall = float64(len(res.Pairs)) / float64(len(exact.Pairs))
				}
				b.ReportMetric(float64(res.FilterOutputRecords), "filter-out/op")
				b.ReportMetric(recall, "recall")
			}
		})
	}
}

// BenchmarkAblationVerticalPartitions sweeps the fragment count: more
// fragments mean smaller reduce groups but more partials per pair.
func BenchmarkAblationVerticalPartitions(b *testing.B) {
	c := ablationCollection(b)
	for _, v := range []int{5, 30, 120} {
		v := v
		b.Run(itoa(v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ablationOpts(0.8)
				opt.VerticalPartitions = v
				res, err := SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FilterOutputRecords), "filter-out/op")
				b.ReportMetric(res.Pipeline.TotalSimulatedTime().Seconds(), "sim-s/op")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationOrderKind isolates the global-ordering strategy: the
// paper's ascending term frequency vs descending vs lexicographic.
func BenchmarkAblationOrderKind(b *testing.B) {
	c := ablationCollection(b)
	for _, kind := range []order.Kind{order.FreqAscending, order.FreqDescending, order.Lexicographic} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ablationOpts(0.8)
				opt.OrderKind = kind
				res, err := SelfJoin(c, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FilterOutputRecords), "filter-out/op")
				b.ReportMetric(float64(res.Pipeline.Counter(fragjoin.CtrComparisons)), "comparisons/op")
			}
		})
	}
}
