package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/tokens"
)

// loadGoldenFixture reads the committed corpus and expected pairs from
// the repository-level golden fixture (see the root golden_test.go, which
// owns regeneration).
func loadGoldenFixture(t *testing.T) (*tokens.Collection, []string) {
	t.Helper()
	raw, err := os.ReadFile("../../testdata/golden/texts.txt")
	if err != nil {
		t.Fatalf("%v (generate with: go test -run TestGolden -update-golden in the repo root)", err)
	}
	texts := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	raws := make([]tokens.Raw, len(texts))
	for i, txt := range texts {
		raws[i] = tokens.Raw{RID: int32(i), Text: txt}
	}
	c := tokens.NewDictionary().Encode(raws, tokens.WordTokenizer{})

	raw, err = os.ReadFile("../../testdata/golden/pairs.txt")
	if err != nil {
		t.Fatal(err)
	}
	var pairs []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			pairs = append(pairs, line)
		}
	}
	return c, pairs
}

// TestGoldenFilterCombinations: every filter subset is lossless, so each
// combination — from no optional filters up to All — must reproduce the
// committed golden pairs exactly, at sequential and concurrent
// parallelism. The public API pins only the default filter set; this is
// the exhaustive internal sweep.
func TestGoldenFilterCombinations(t *testing.T) {
	c, want := loadGoldenFixture(t)
	combos := []filters.Set{
		filters.All,
		filters.StrL,
		filters.SegL,
		filters.SegI,
		filters.SegD,
		filters.StrL | filters.SegL,
		filters.SegI | filters.SegD,
		filters.StrL | filters.SegL | filters.SegI | filters.SegD,
	}
	for _, fs := range combos {
		for _, par := range []int{1, 4} {
			res, err := SelfJoin(c, Options{
				Theta:            0.7,
				Filters:          fs,
				LocalParallelism: par,
			})
			if err != nil {
				t.Fatalf("filters %v par %d: %v", fs, par, err)
			}
			got := make([]string, len(res.Pairs))
			for i, p := range res.Pairs {
				got[i] = fmt.Sprintf("%d %d %d %s", p.A, p.B, p.Common,
					strconv.FormatFloat(p.Sim, 'g', -1, 64))
			}
			if len(got) != len(want) {
				t.Fatalf("filters %v par %d: %d pairs, golden has %d", fs, par, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("filters %v par %d: pair %d = %q, golden %q", fs, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGoldenKernelsAgreeOnFixture: the three fragment-join kernels with
// their matching filter normalisation all hit the golden pairs (the
// kernel × filter cross product that the public JoinMethod enum cannot
// express is exercised here).
func TestGoldenKernelsAgreeOnFixture(t *testing.T) {
	c, want := loadGoldenFixture(t)
	for _, m := range []fragjoin.Method{fragjoin.Prefix, fragjoin.Index, fragjoin.Loop} {
		for _, fs := range []filters.Set{filters.All, filters.StrL | filters.SegL} {
			res, err := SelfJoin(c, Options{Theta: 0.7, JoinMethod: m, Filters: fs, LocalParallelism: 4})
			if err != nil {
				t.Fatalf("kernel %v filters %v: %v", m, fs, err)
			}
			if len(res.Pairs) != len(want) {
				t.Fatalf("kernel %v filters %v: %d pairs, golden has %d", m, fs, len(res.Pairs), len(want))
			}
			for i, p := range res.Pairs {
				line := fmt.Sprintf("%d %d %d %s", p.A, p.B, p.Common,
					strconv.FormatFloat(p.Sim, 'g', -1, 64))
				if line != want[i] {
					t.Fatalf("kernel %v filters %v: pair %d = %q, golden %q", m, fs, i, line, want[i])
				}
			}
		}
	}
}
