package core

import (
	"testing"

	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
	"fsjoin/internal/tokens"
)

// TestEstimateTracksMeasuredVolumes: Lemma 5's analytic volumes must agree
// with the engine's measured metrics within small factors — the map/shuffle
// term exactly, the segment and comparison terms within the independence
// approximation's slack.
func TestEstimateTracksMeasuredVolumes(t *testing.T) {
	c := testutil.RandomCollection(200, 80, 25, 41)
	const n = 12
	opt := Options{
		Theta:              0.7,
		VerticalPartitions: n,
		JoinMethod:         fragjoin.Index,
		Filters:            filters.Set(0x80), // no pruning: compare the unfiltered bound
		HorizontalPivots:   0,
		Cluster:            testutil.SmallCluster(),
	}
	res, err := SelfJoin(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateCost(c, similarity.Jaccard, 0.7, n, 1.0)

	if est.MapRecords != int64(c.TotalTokens()) {
		t.Fatalf("MapRecords %d != total tokens %d", est.MapRecords, c.TotalTokens())
	}
	filter := res.Pipeline.Stages()[1]
	segs := filter.MapOutputRecords
	if ratio := float64(est.ExpectedSegments) / float64(segs); ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("segment estimate %d vs measured %d (ratio %.2f)", est.ExpectedSegments, segs, ratio)
	}
	comparisons := res.Pipeline.Counter(fragjoin.CtrComparisons)
	// The index kernel only touches co-occurring pairs, so measured
	// comparisons are bounded by the loop-join estimate.
	if comparisons > 3*est.CandidateRecords {
		t.Fatalf("comparisons %d far above Lemma 5 bound %d", comparisons, est.CandidateRecords)
	}
	if est.CandidateRecords <= 0 {
		t.Fatal("empty candidate estimate")
	}
}

func TestEstimateEmpty(t *testing.T) {
	est := EstimateCost(&tokens.Collection{}, similarity.Jaccard, 0.8, 10, 1.0)
	if est.MapRecords != 0 || est.ExpectedSegments != 0 || est.CandidateRecords != 0 {
		t.Fatalf("empty estimate: %+v", est)
	}
}

func TestEstimateShape(t *testing.T) {
	c := testutil.RandomCollection(100, 40, 20, 42)
	prev := EstimateCost(c, similarity.Jaccard, 0.8, 1, 1.0)
	for _, n := range []int{2, 8, 32} {
		est := EstimateCost(c, similarity.Jaccard, 0.8, n, 1.0)
		// More fragments → more (smaller) segments.
		if est.ExpectedSegments < prev.ExpectedSegments {
			t.Fatalf("segments not monotone at n=%d", n)
		}
		// Candidate term follows Lemma 5's N·(segments/N)²/2 exactly.
		segs := float64(est.ExpectedSegments)
		want := int64(float64(n) * (segs / float64(n)) * (segs / float64(n)) / 2)
		diff := est.CandidateRecords - want
		if diff < 0 {
			diff = -diff
		}
		// ExpectedSegments is truncated to int64, so allow ~1% slack.
		if tol := want/50 + 2; diff > tol {
			t.Fatalf("candidate term %d != N(M·p)²/2N = %d", est.CandidateRecords, want)
		}
		// Alpha scales the candidate term linearly.
		half := EstimateCost(c, similarity.Jaccard, 0.8, n, 0.5)
		if half.CandidateRecords > est.CandidateRecords/2+1 {
			t.Fatalf("alpha not linear at n=%d", n)
		}
		prev = est
	}
}
