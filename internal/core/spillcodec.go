package core

import (
	"encoding/binary"

	"fsjoin/internal/spill"
)

// Spill codecs for this package's stage values (DESIGN.md §8). partial is
// the verification job's shuffle value; its combiner fold is pure
// addition on C, so re-folding merged runs is exact. taggedRecord is the
// filtering job's input (an R/S-tagged record), registered so R-S joins
// checkpoint and fingerprint that stage boundary (DESIGN.md §9). Tags
// 41–42; this package owns tags 41–42 after fragjoin's 40.
func init() {
	spill.RegisterValue(41, partial{},
		func(buf []byte, v any) []byte {
			p := v.(partial)
			buf = binary.AppendVarint(buf, int64(p.C))
			buf = binary.AppendVarint(buf, int64(p.La))
			return binary.AppendVarint(buf, int64(p.Lb))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := partial{C: int32(d.Varint()), La: int32(d.Varint()), Lb: int32(d.Varint())}
			return p, d.Err()
		})
	spill.RegisterValue(42, taggedRecord{},
		func(buf []byte, v any) []byte {
			t := v.(taggedRecord)
			buf = append(buf, t.origin)
			buf = binary.AppendVarint(buf, int64(t.rec.RID))
			return spill.AppendU32s(buf, t.rec.Tokens)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			t := taggedRecord{origin: d.Byte()}
			t.rec.RID = int32(d.Varint())
			t.rec.Tokens = d.U32s()
			return t, d.Err()
		})
}
