package core

import (
	"encoding/binary"

	"fsjoin/internal/spill"
)

// Spill codec for partial, the verification job's shuffle value (DESIGN.md
// §8). Its combiner fold is pure addition on C, so re-folding merged runs
// is exact. Tag 41; this package owns tags 41–42 after fragjoin's 40.
func init() {
	spill.RegisterValue(41, partial{},
		func(buf []byte, v any) []byte {
			p := v.(partial)
			buf = binary.AppendVarint(buf, int64(p.C))
			buf = binary.AppendVarint(buf, int64(p.La))
			return binary.AppendVarint(buf, int64(p.Lb))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := partial{C: int32(d.Varint()), La: int32(d.Varint()), Lb: int32(d.Varint())}
			return p, d.Err()
		})
}
