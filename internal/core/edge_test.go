package core

import (
	"reflect"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/order"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
	"fsjoin/internal/tokens"
)

func defaultOpts(theta float64) Options {
	return Options{
		Theta:              theta,
		PivotMethod:        partition.EvenTF,
		VerticalPartitions: 8,
		HorizontalPivots:   2,
		JoinMethod:         fragjoin.Prefix,
		Cluster:            testutil.SmallCluster(),
	}
}

func TestDiceAndCosineEndToEnd(t *testing.T) {
	c := testutil.RandomCollection(100, 50, 20, 31)
	for _, fn := range []similarity.Func{similarity.Dice, similarity.Cosine} {
		for _, theta := range []float64{0.7, 0.9} {
			want := bruteforce.SelfJoin(c, fn, theta)
			opt := defaultOpts(theta)
			opt.Fn = fn
			res, err := SelfJoin(c, opt)
			if err != nil {
				t.Fatalf("%v: %v", fn, err)
			}
			testutil.AssertSameResults(t, fn.String(), res.Pairs, want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	c := testutil.RandomCollection(80, 40, 15, 32)
	var first *Result
	for i := 0; i < 3; i++ {
		res, err := SelfJoin(c, defaultOpts(0.7))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(res.Pairs, first.Pairs) {
			t.Fatal("results differ across runs")
		}
		if res.FilterOutputRecords != first.FilterOutputRecords {
			t.Fatal("filter output volume differs across runs")
		}
	}
}

func TestEdgeCollections(t *testing.T) {
	cases := map[string]*tokens.Collection{
		"empty":         {},
		"single":        {Records: []tokens.Record{tokens.NewRecord(0, []tokens.ID{1, 2})}},
		"empty-records": {Records: []tokens.Record{tokens.NewRecord(0, nil), tokens.NewRecord(1, nil)}},
		"identical": {Records: []tokens.Record{
			tokens.NewRecord(0, []tokens.ID{1, 2, 3}),
			tokens.NewRecord(1, []tokens.ID{1, 2, 3}),
		}},
		"singleton-tokens": {Records: []tokens.Record{
			tokens.NewRecord(0, []tokens.ID{5}),
			tokens.NewRecord(1, []tokens.ID{5}),
			tokens.NewRecord(2, []tokens.ID{6}),
		}},
	}
	for name, c := range cases {
		want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.8)
		res, err := SelfJoin(c, defaultOpts(0.8))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.AssertSameResults(t, name, res.Pairs, want)
	}
}

func TestThetaOne(t *testing.T) {
	c := &tokens.Collection{Records: []tokens.Record{
		tokens.NewRecord(0, []tokens.ID{1, 2, 3}),
		tokens.NewRecord(1, []tokens.ID{1, 2, 3}),
		tokens.NewRecord(2, []tokens.ID{1, 2, 4}),
	}}
	res, err := SelfJoin(c, defaultOpts(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].A != 0 || res.Pairs[0].B != 1 {
		t.Fatalf("theta=1 pairs: %v", res.Pairs)
	}
}

func TestInvalidTheta(t *testing.T) {
	c := testutil.RandomCollection(5, 10, 4, 1)
	for _, theta := range []float64{0, -0.5, 1.5} {
		if _, err := SelfJoin(c, Options{Theta: theta}); err == nil {
			t.Errorf("theta=%v accepted", theta)
		}
	}
}

func TestRSJoinNilS(t *testing.T) {
	if _, err := Join(testutil.RandomCollection(3, 5, 3, 1), nil, defaultOpts(0.5)); err == nil {
		t.Fatal("nil S accepted")
	}
}

func TestRSJoinWithSharedRIDSpace(t *testing.T) {
	// R and S records reuse the same rid values; results must still be
	// exactly the cross pairs.
	r := testutil.RandomCollection(50, 30, 12, 33)
	s := testutil.RandomCollection(50, 30, 12, 34)
	want := bruteforce.Join(r, s, similarity.Jaccard, 0.7)
	res, err := Join(r, s, defaultOpts(0.7))
	if err != nil {
		t.Fatal(err)
	}
	testutil.AssertSameResults(t, "shared-rid", res.Pairs, want)
}

// TestMoreFiltersNeverIncreaseOutput: adding filters can only shrink the
// filter job's emission.
func TestMoreFiltersNeverIncreaseOutput(t *testing.T) {
	c := testutil.RandomCollection(150, 60, 20, 35)
	sets := []filters.Set{
		filters.StrL,
		filters.StrL | filters.SegL,
		filters.StrL | filters.SegL | filters.SegI,
		filters.All &^ filters.Prefix,
	}
	prev := int64(-1)
	for _, fs := range sets {
		opt := defaultOpts(0.8)
		opt.JoinMethod = fragjoin.Index
		opt.Filters = fs
		res, err := SelfJoin(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.FilterOutputRecords > prev {
			t.Fatalf("filters %v increased output: %d > %d", fs, res.FilterOutputRecords, prev)
		}
		prev = res.FilterOutputRecords
	}
}

// TestVerticalPartitionCountInvariance: results are identical for any
// fragment count.
func TestVerticalPartitionCountInvariance(t *testing.T) {
	c := testutil.RandomCollection(90, 45, 18, 36)
	want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.75)
	for _, v := range []int{1, 2, 5, 17, 64} {
		opt := defaultOpts(0.75)
		opt.VerticalPartitions = v
		res, err := SelfJoin(c, opt)
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		testutil.AssertSameResults(t, "vparts", res.Pairs, want)
	}
}

// TestHorizontalPivotCountInvariance: results are identical for any
// horizontal pivot count.
func TestHorizontalPivotCountInvariance(t *testing.T) {
	c := testutil.RandomCollection(90, 45, 18, 37)
	want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.75)
	for _, h := range []int{0, 1, 4, 16} {
		opt := defaultOpts(0.75)
		opt.HorizontalPivots = h
		res, err := SelfJoin(c, opt)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		testutil.AssertSameResults(t, "hpivots", res.Pairs, want)
	}
}

// TestPaperPrefixNoFalsePositives: the literal paper prefix may lose pairs
// but must never fabricate or mis-score one.
func TestPaperPrefixNoFalsePositives(t *testing.T) {
	c := testutil.RandomCollection(120, 50, 20, 38)
	want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.7)
	wantKeys := map[uint64]int{}
	for _, p := range want {
		wantKeys[p.Key()] = p.Common
	}
	opt := defaultOpts(0.7)
	opt.PaperPrefix = true
	res, err := SelfJoin(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		c, ok := wantKeys[p.Key()]
		if !ok {
			t.Fatalf("paper prefix invented pair %v", p)
		}
		// Missed fragments can only lower the aggregated count, never
		// raise it; the pair itself is still a true result.
		if p.Common > c {
			t.Fatalf("paper prefix overcounted %v (true %d)", p, c)
		}
	}
}

func TestPipelineMetricsPopulated(t *testing.T) {
	c := testutil.RandomCollection(60, 30, 12, 39)
	res, err := SelfJoin(c, defaultOpts(0.8))
	if err != nil {
		t.Fatal(err)
	}
	stages := res.Pipeline.Stages()
	if len(stages) != 3 {
		t.Fatalf("stages = %d, want 3 (ordering, filtering, verification)", len(stages))
	}
	names := []string{"ordering", "filtering", "verification"}
	for i, st := range stages {
		if st.Job != names[i] {
			t.Errorf("stage %d = %q, want %q", i, st.Job, names[i])
		}
		if st.SimulatedTotalTime <= 0 {
			t.Errorf("stage %q has no simulated time", st.Job)
		}
	}
	if res.Pipeline.TotalShuffleBytes() <= 0 {
		t.Error("no shuffle bytes accounted")
	}
}

// TestOrderKindInvariance: any global ordering yields the same join
// results (the ordering only changes performance, never correctness).
func TestOrderKindInvariance(t *testing.T) {
	c := testutil.RandomCollection(90, 45, 18, 61)
	want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.75)
	for _, kind := range []order.Kind{order.FreqAscending, order.FreqDescending, order.Lexicographic} {
		opt := defaultOpts(0.75)
		opt.OrderKind = kind
		res, err := SelfJoin(c, opt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		testutil.AssertSameResults(t, kind.String(), res.Pairs, want)
	}
}

// TestLocalParallelismInvariance: concurrent local task execution must not
// change results (race-free and deterministic assembly).
func TestLocalParallelismInvariance(t *testing.T) {
	c := testutil.RandomCollection(100, 50, 18, 62)
	want := bruteforce.SelfJoin(c, similarity.Jaccard, 0.75)
	for _, par := range []int{1, 4, 16} {
		opt := defaultOpts(0.75)
		opt.LocalParallelism = par
		res, err := SelfJoin(c, opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		testutil.AssertSameResults(t, "parallel", res.Pairs, want)
	}
}
