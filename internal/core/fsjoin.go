// Package core implements FS-Join itself (Sections III–V): the three-phase
// Ordering → Filtering → Verification MapReduce pipeline built on vertical
// partitioning, with optional horizontal partitioning, four filters and
// three join kernels. This is the paper's primary contribution.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fsjoin/internal/filters"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/partition"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// Options configures one FS-Join execution.
type Options struct {
	// Fn is the similarity function (default Jaccard, as in the paper).
	Fn similarity.Func
	// Theta is the similarity threshold in (0, 1].
	Theta float64
	// PivotMethod selects vertical pivots (default EvenTF, the paper's
	// choice).
	PivotMethod partition.PivotMethod
	// VerticalPartitions is the number of fragments (paper default 30);
	// 0 means 3 × cluster nodes.
	VerticalPartitions int
	// HorizontalPivots is the number t of length pivots, yielding 2t+1
	// horizontal partitions. 0 disables horizontal partitioning
	// (FS-Join-V).
	HorizontalPivots int
	// JoinMethod is the fragment join kernel (default Prefix).
	JoinMethod fragjoin.Method
	// Filters is the enabled filter set (default All). The Prefix bit is
	// normalised to match JoinMethod.
	Filters filters.Set
	// Cluster is the cost model (default: the paper's 10-node cluster).
	Cluster *mapreduce.Cluster
	// Seed drives the Random pivot method.
	Seed int64
	// PaperPrefix switches the Prefix join to the paper's literal
	// segment-local prefix (aggressive, potentially lossy — see
	// fragjoin.Params.PaperPrefix). Off by default.
	PaperPrefix bool
	// OrderKind selects the global ordering strategy (default: the
	// paper's ascending term frequency).
	OrderKind order.Kind
	// Ctx, when non-nil, cancels the pipeline at the next task boundary.
	Ctx context.Context
	// LocalParallelism runs that many engine tasks concurrently on the
	// local machine; 0 or 1 is sequential (best cost-model fidelity) and a
	// negative value (mapreduce.AutoParallelism) uses one worker per core.
	// Results and all shuffle metrics are identical at any setting.
	LocalParallelism int
	// Fault is the fault-tolerance and fault-injection policy inherited by
	// every stage; see mapreduce.FaultPolicy.
	Fault mapreduce.FaultPolicy
	// MemoryBudget caps each map task's in-memory shuffle buffer; records
	// beyond it spill to sorted runs on disk and merge back at reduce time
	// (see mapreduce.Config.MemoryBudgetBytes). 0 defers to the engine
	// default (FSJOIN_MEMORY_BUDGET); negative forces unbounded. Results
	// are byte-identical at any budget.
	MemoryBudget int64
	// SpillDir is the parent directory for spill files ("" = OS temp dir).
	SpillDir string
	// CheckpointDir, when non-empty, persists each completed pipeline
	// stage there for crash/restart recovery; see
	// mapreduce.Pipeline.CheckpointDir.
	CheckpointDir string
	// CheckpointSalt folds the caller's configuration into every stage
	// fingerprint, so one checkpoint directory reused under different
	// options recomputes instead of replaying mismatched state.
	CheckpointSalt string
	// Runtime selects the execution substrate (shuffle transport and, for
	// multi-process runs, the task executor); the zero value is the
	// in-process engine. See mapreduce.Runtime.
	Runtime mapreduce.Runtime
	// Bitmap configures the hashed signature filter every join kernel
	// applies before exact intersections (DESIGN.md §11). The zero value is
	// auto: enabled, width from per-fragment length statistics, overridable
	// through FSJOIN_BITMAP / FSJOIN_BITMAP_WIDTH. Results are
	// byte-identical with the filter on or off.
	Bitmap filters.BitmapConfig
}

// withDefaults normalises an Options value.
func (o Options) withDefaults() (Options, error) {
	if o.Theta <= 0 || o.Theta > 1 {
		return o, fmt.Errorf("fsjoin: theta %v outside (0, 1]", o.Theta)
	}
	if o.Cluster == nil {
		o.Cluster = mapreduce.DefaultCluster()
	}
	if o.VerticalPartitions <= 0 {
		o.VerticalPartitions = 3 * o.Cluster.Nodes
	}
	if o.Filters == 0 {
		o.Filters = filters.All
	}
	// The Prefix filter bit and the Prefix join method are one feature.
	if o.JoinMethod == fragjoin.Prefix {
		o.Filters |= filters.Prefix
	} else {
		o.Filters &^= filters.Prefix
	}
	if err := o.Bitmap.Validate(); err != nil {
		return o, err
	}
	o.Bitmap = o.Bitmap.ResolveEnv()
	return o, nil
}

// Result carries the join output and every measurement the experiments use.
type Result struct {
	// Pairs are the similar pairs, sorted canonically.
	Pairs []result.Pair
	// Pipeline exposes per-stage metrics (ordering, filtering,
	// verification).
	Pipeline *mapreduce.Pipeline
	// FilterOutputRecords is the number of (pair, partial-count) records
	// the filtering job emitted — the quantity Table IV reports.
	FilterOutputRecords int64
	// Pivots are the vertical pivot ranks used.
	Pivots []uint32
	// LengthPivots are the horizontal length pivots used (nil when
	// horizontal partitioning is off).
	LengthPivots []int
}

// partial is the filtering job's output value: a fragment's common-token
// count for one pair plus the two record lengths, so verification never
// needs the original strings (Section V-B).
type partial struct {
	C, La, Lb int32
}

// SizeBytes implements mapreduce.Sized.
func (partial) SizeBytes() int { return 12 }

// taggedRecord is the filtering job's input value for R-S joins.
type taggedRecord struct {
	rec    tokens.Record
	origin uint8
}

// SizeBytes implements mapreduce.Sized.
func (t taggedRecord) SizeBytes() int { return 5 + 4*len(t.rec.Tokens) }

// SelfJoin runs FS-Join over one collection.
func SelfJoin(c *tokens.Collection, opt Options) (*Result, error) {
	return run(c, nil, opt)
}

// Join runs FS-Join across two collections (R-S join); result pairs carry
// the R-side id first.
func Join(r, s *tokens.Collection, opt Options) (*Result, error) {
	if s == nil {
		return nil, errors.New("fsjoin: nil S collection")
	}
	return run(r, s, opt)
}

func run(r, s *tokens.Collection, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	rs := s != nil
	p := mapreduce.NewPipeline("fs-join", opt.Cluster)
	p.Context = opt.Ctx
	p.Parallelism = opt.LocalParallelism // inherited by all three stages
	p.Fault = opt.Fault
	p.MemoryBudgetBytes = opt.MemoryBudget
	p.SpillDir = opt.SpillDir
	p.CheckpointDir = opt.CheckpointDir
	p.CheckpointSalt = opt.CheckpointSalt
	p.Runtime = opt.Runtime

	// ---- Phase 1: Ordering (one MR job over the union) ----
	union := r
	if rs {
		union = &tokens.Collection{Records: append(append([]tokens.Record{}, r.Records...), s.Records...)}
	}
	o, err := order.ComputeKind(p, union, opt.OrderKind)
	if err != nil {
		return nil, err
	}
	ordered, err := o.Apply(r)
	if err != nil {
		return nil, err
	}
	var orderedS *tokens.Collection
	if rs {
		if orderedS, err = o.Apply(s); err != nil {
			return nil, err
		}
	}

	// ---- Driver-side setup: pivots, published to the DFS the way the
	// ordering job's output reaches Algorithm 1's setup() ----
	pivots := partition.SelectPivots(opt.PivotMethod, o, opt.VerticalPartitions-1, opt.Seed)
	horiz := partition.NoHorizontal(opt.Fn, opt.Theta)
	if opt.HorizontalPivots > 0 {
		var lengths []int
		for _, rec := range union.Records {
			lengths = append(lengths, rec.Len())
		}
		lp := partition.SelectLengthPivots(opt.Fn, opt.Theta, lengths, opt.HorizontalPivots)
		horiz = partition.NewHorizontal(opt.Fn, opt.Theta, lp)
	}
	dfs := mapreduce.NewDFS()
	dfs.Write(dfsPivots, pivots)
	dfs.Write(dfsHorizontal, horiz)
	splitter := partition.NewSplitter(pivots)

	// ---- Phase 2: Filtering (vertical partition map, fragment join
	// reduce) ----
	input := tagInput(ordered, 0)
	if rs {
		input = append(input, tagInput(orderedS, 1)...)
	}
	nv := splitter.Fragments()
	params := fragjoin.Params{
		Fn:          opt.Fn,
		Theta:       opt.Theta,
		Filters:     opt.Filters,
		Method:      opt.JoinMethod,
		RS:          rs,
		PaperPrefix: opt.PaperPrefix,
		Bitmap:      opt.Bitmap,
	}
	filterRes, err := p.Run(mapreduce.Config{
		Name: "filtering",
		// Fragments are routed round-robin to reducers, the paper's
		// fragment-per-node layout.
		Partitioner: func(key string, reducers int) int {
			h, v := mapreduce.DecodePairKey(key)
			return int(h*uint32(nv)+v) % reducers
		},
	}, input, &filterMapper{dfs: dfs}, &filterReducer{params: params})
	if err != nil {
		return nil, err
	}

	// ---- Phase 3: Verification (aggregate partial counts) ----
	verifyRes, err := p.Run(mapreduce.Config{
		Name:     "verification",
		Combiner: sumPartials{},
	}, filterRes.Output, mapreduce.IdentityMapper, &verifyReducer{fn: opt.Fn, theta: opt.Theta, rs: rs})
	if err != nil {
		return nil, err
	}

	pairs := decodePairs(verifyRes.Output, opt.Fn)
	result.Sort(pairs)
	return &Result{
		Pairs:               pairs,
		Pipeline:            p,
		FilterOutputRecords: filterRes.Metrics.OutputRecords,
		Pivots:              pivots,
		LengthPivots:        horiz.Pivots(),
	}, nil
}

// tagInput converts a collection into filtering-job input pairs. The key
// carries the origin (mapreduce.OriginKey), so skip-mode quarantine reports
// distinguish R#x from S#x when the two rid spaces overlap.
func tagInput(c *tokens.Collection, origin uint8) []mapreduce.KV {
	kvs := make([]mapreduce.KV, 0, len(c.Records))
	for _, rec := range c.Records {
		kvs = append(kvs, mapreduce.KV{
			Key:   mapreduce.OriginKey(origin, uint32(rec.RID)),
			Value: taggedRecord{rec: rec, origin: origin},
		})
	}
	return kvs
}

// DFS paths under which the driver publishes the setup data each filter
// map task loads, mirroring Algorithm 1's SetUp (lines 2–4).
const (
	dfsPivots     = "fs-join/vertical-pivots"
	dfsHorizontal = "fs-join/horizontal-partitioner"
)

// filterMapper implements Algorithm 1's map: vertical (and horizontal)
// partitioning, emitting (partition id, segment+segInfo). Its Setup hook
// loads the pivots from the DFS, as the paper's mappers do; the load is
// once-guarded so concurrent task setups stay race-free.
type filterMapper struct {
	dfs      *mapreduce.DFS
	once     sync.Once
	splitter *partition.Splitter
	horiz    *partition.Horizontal
}

// Setup implements mapreduce.Setupper: load the global setup data.
func (m *filterMapper) Setup(ctx *mapreduce.Context) {
	m.once.Do(func() {
		m.splitter = partition.NewSplitter(m.dfs.MustRead(dfsPivots).([]uint32))
		m.horiz = m.dfs.MustRead(dfsHorizontal).(*partition.Horizontal)
	})
}

// Map implements mapreduce.Mapper.
func (m *filterMapper) Map(ctx *mapreduce.Context, kv mapreduce.KV) {
	tr := kv.Value.(taggedRecord)
	rec := tr.rec
	if rec.Len() == 0 {
		return
	}
	segs := m.splitter.Split(rec)
	for _, asg := range m.horiz.Assign(rec.Len()) {
		for _, seg := range segs {
			ctx.Emit(mapreduce.PairKey(uint32(asg.Partition), uint32(seg.Fragment)), fragjoin.Seg{
				RID:    rec.RID,
				Origin: tr.origin,
				Role:   asg.Role,
				StrLen: int32(seg.StrLen),
				Head:   int32(seg.Head),
				Tail:   int32(seg.Tail),
				Tokens: seg.Tokens,
			})
		}
	}
}

// filterReducer joins one fragment's segments and emits partial counts.
type filterReducer struct {
	params fragjoin.Params
}

// Reduce implements mapreduce.Reducer.
func (r *filterReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	segs := make([]fragjoin.Seg, len(values))
	for i, v := range values {
		segs[i] = v.(fragjoin.Seg)
	}
	fragjoin.Join(ctx, segs, r.params, func(a, b *fragjoin.Seg, c int) {
		ctx.Emit(mapreduce.PairKey(uint32(a.RID), uint32(b.RID)),
			partial{C: int32(c), La: a.StrLen, Lb: b.StrLen})
	})
}

// sumPartials merges partial counts for one pair; used as the verification
// job's combiner (with the engine's fold fast path).
type sumPartials struct{}

// Reduce implements mapreduce.Reducer.
func (s sumPartials) Reduce(ctx *mapreduce.Context, key string, values []any) {
	acc := values[0]
	for _, v := range values[1:] {
		acc = s.Fold(acc, v)
	}
	ctx.Emit(key, acc)
}

// Fold implements mapreduce.Folder.
func (sumPartials) Fold(acc, v any) any {
	a := acc.(partial)
	a.C += v.(partial).C
	return a
}

// verifyReducer implements Section V-B: aggregate common-token counts and
// apply the threshold algebraically. It uses the engine's fold fast path.
// In R-S mode it also feeds the rs.pairs.* counters surfaced through
// fsjoin.Stats.
type verifyReducer struct {
	fn    similarity.Func
	theta float64
	rs    bool
}

// Reduce implements mapreduce.Reducer.
func (r *verifyReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	acc := values[0]
	for _, v := range values[1:] {
		acc = r.Fold(acc, v)
	}
	r.FinishFold(ctx, key, acc)
}

// Fold implements mapreduce.Folder.
func (r *verifyReducer) Fold(acc, v any) any {
	a := acc.(partial)
	a.C += v.(partial).C
	return a
}

// FinishFold implements mapreduce.FoldingReducer.
func (r *verifyReducer) FinishFold(ctx *mapreduce.Context, key string, acc any) {
	ctx.Inc(filters.CtrVerifyCandidates, 1)
	if r.rs {
		ctx.Inc(result.CtrRSCandidates, 1)
	}
	sum := acc.(partial)
	if r.fn.AtLeast(int(sum.C), int(sum.La), int(sum.Lb), r.theta) {
		if r.rs {
			ctx.Inc(result.CtrRSEmitted, 1)
		}
		ctx.Emit(key, sum)
	}
}

// decodePairs converts verification output into result pairs.
func decodePairs(kvs []mapreduce.KV, fn similarity.Func) []result.Pair {
	out := make([]result.Pair, 0, len(kvs))
	for _, kv := range kvs {
		a, b := mapreduce.DecodePairKey(kv.Key)
		pv := kv.Value.(partial)
		out = append(out, result.Pair{
			A:      int32(a),
			B:      int32(b),
			Common: int(pv.C),
			Sim:    fn.Sim(int(pv.C), int(pv.La), int(pv.Lb)),
		})
	}
	return out
}
