package core

import (
	"math/rand"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/fragjoin"
	"fsjoin/internal/partition"
	"fsjoin/internal/similarity"
	"fsjoin/internal/testutil"
)

// TestRandomConfigurationSweep is the deep oracle sweep: many random
// (dataset, θ, function, kernel, pivot method, partition counts, order)
// configurations, every one compared against the brute-force oracle.
func TestRandomConfigurationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep")
	}
	rng := rand.New(rand.NewSource(99))
	fns := []similarity.Func{similarity.Jaccard, similarity.Dice, similarity.Cosine}
	kernels := []fragjoin.Method{fragjoin.Loop, fragjoin.Index, fragjoin.Prefix}
	pivots := []partition.PivotMethod{partition.Random, partition.EvenInterval, partition.EvenTF}
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(120) + 20
		vocab := rng.Intn(80) + 10
		maxLen := rng.Intn(25) + 3
		c := testutil.RandomCollection(n, vocab, maxLen, int64(1000+trial))
		theta := float64(rng.Intn(55)+40) / 100 // 0.40..0.94
		fn := fns[rng.Intn(len(fns))]
		opt := Options{
			Fn:                 fn,
			Theta:              theta,
			PivotMethod:        pivots[rng.Intn(len(pivots))],
			VerticalPartitions: rng.Intn(40) + 1,
			HorizontalPivots:   rng.Intn(8),
			JoinMethod:         kernels[rng.Intn(len(kernels))],
			Cluster:            testutil.SmallCluster(),
			Seed:               int64(trial),
		}
		want := bruteforce.SelfJoin(c, fn, theta)
		res, err := SelfJoin(c, opt)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, opt, err)
		}
		label := fn.String() + "/" + opt.JoinMethod.String() + "/" + opt.PivotMethod.String()
		testutil.AssertSameResults(t, label, res.Pairs, want)
		if t.Failed() {
			t.Fatalf("trial %d config: θ=%.2f v=%d h=%d", trial, theta,
				opt.VerticalPartitions, opt.HorizontalPivots)
		}
	}
}
