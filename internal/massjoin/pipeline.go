package massjoin

import (
	"fmt"
	"sort"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
	"fsjoin/internal/result"
	"fsjoin/internal/tokens"
)

// SelfJoin runs the four-job MassJoin pipeline: ordering, signatures →
// candidates, candidate distribution (records shipped to partners), and
// verification.
func SelfJoin(c *tokens.Collection, opt Options) (*Result, error) {
	if opt.Theta <= 0 || opt.Theta > 1 {
		return nil, fmt.Errorf("massjoin: theta %v outside (0, 1]", opt.Theta)
	}
	if opt.Cluster == nil {
		opt.Cluster = mapreduce.DefaultCluster()
	}
	p := mapreduce.NewPipeline("massjoin-"+opt.Variant.String(), opt.Cluster)
	p.Context = opt.Ctx
	p.Parallelism = opt.Parallelism
	p.Fault = opt.Fault
	p.MemoryBudgetBytes = opt.MemoryBudget
	p.SpillDir = opt.SpillDir
	p.CheckpointDir = opt.CheckpointDir
	p.CheckpointSalt = opt.CheckpointSalt
	p.Runtime = opt.Runtime

	// Job 1: global ordering (token frequency).
	o, err := order.Compute(p, c)
	if err != nil {
		return nil, err
	}
	ordered, err := o.Apply(c)
	if err != nil {
		return nil, err
	}

	// Job 2: signatures → deduplicated candidate pairs (shorter rid is the
	// "indexed" side).
	sigRes, err := p.Run(mapreduce.Config{Name: "signatures"},
		order.RecordsToKV(ordered),
		&sigMapper{opt: opt},
		&sigReducer{opt: opt})
	if err != nil {
		return nil, err
	}
	if dropped := sigRes.Counters.Get("massjoin.sig.dropped"); dropped > 0 {
		return nil, fmt.Errorf("%w (budget %d, dropped %d signatures)",
			ErrBudgetExceeded, opt.MaxSignatures, dropped)
	}
	candRes, err := p.Run(mapreduce.Config{Name: "candidates"},
		sigRes.Output, mapreduce.IdentityMapper, candDedup{})
	if err != nil {
		return nil, err
	}

	// Job 3 (Merge): group candidates by the indexed rid, attach that
	// record once, and ship it to every partner — the record-duplication
	// step the paper criticises.
	distIn := make([]mapreduce.KV, 0, len(candRes.Output)+len(ordered.Records))
	for _, rec := range ordered.Records {
		distIn = append(distIn, mapreduce.KV{
			Key:   mapreduce.U32Key(uint32(rec.RID)),
			Value: recPayload{rid: rec.RID, toks: rec.Tokens},
		})
	}
	for _, kv := range candRes.Output {
		a, b := mapreduce.DecodePairKey(kv.Key)
		// Route the candidate to the indexed side a; value is partner b.
		distIn = append(distIn, mapreduce.KV{Key: mapreduce.U32Key(a), Value: ridList{rids: []int32{int32(b)}}})
	}
	distRes, err := p.Run(mapreduce.Config{Name: "distribute"},
		distIn, mapreduce.IdentityMapper,
		mapreduce.ReduceFunc(func(ctx *mapreduce.Context, key string, values []any) {
			var rec recPayload
			var partners []int32
			for _, v := range values {
				switch x := v.(type) {
				case recPayload:
					rec = x
				case ridList:
					partners = append(partners, x.rids...)
				}
			}
			if rec.toks == nil {
				return
			}
			sort.Slice(partners, func(i, j int) bool { return partners[i] < partners[j] })
			for _, t := range partners {
				ctx.Inc("massjoin.records.shipped", 1)
				ctx.Emit(mapreduce.U32Key(uint32(t)), rec)
			}
		}))
	if err != nil {
		return nil, err
	}

	// Job 4: verification — each partner receives its own record plus all
	// shipped candidates and computes exact similarities.
	verifyIn := make([]mapreduce.KV, 0, len(distRes.Output)+len(ordered.Records))
	for _, rec := range ordered.Records {
		verifyIn = append(verifyIn, mapreduce.KV{
			Key:   mapreduce.U32Key(uint32(rec.RID)),
			Value: recPayload{rid: rec.RID, toks: rec.Tokens},
		})
	}
	verifyIn = append(verifyIn, distRes.Output...)
	verifyRes, err := p.Run(mapreduce.Config{Name: "verify"},
		verifyIn, mapreduce.IdentityMapper, &verifyReducer{opt: opt})
	if err != nil {
		return nil, err
	}

	pairs := make([]result.Pair, 0, len(verifyRes.Output))
	for _, kv := range verifyRes.Output {
		a, b := mapreduce.DecodePairKey(kv.Key)
		sv := kv.Value.(simPair)
		pairs = append(pairs, result.Pair{A: int32(a), B: int32(b), Common: int(sv.c), Sim: sv.sim})
	}
	result.Sort(pairs)
	return &Result{Pairs: pairs, Pipeline: p}, nil
}

// candDedup collapses duplicate candidate pairs (fold fast path).
type candDedup struct{}

// Reduce implements mapreduce.Reducer.
func (candDedup) Reduce(ctx *mapreduce.Context, key string, values []any) {
	ctx.Inc("massjoin.candidates", 1)
	ctx.Emit(key, candValue{})
}

// Fold implements mapreduce.Folder.
func (candDedup) Fold(acc, v any) any { return acc }

// FinishFold implements mapreduce.FoldingReducer.
func (candDedup) FinishFold(ctx *mapreduce.Context, key string, acc any) {
	ctx.Inc("massjoin.candidates", 1)
	ctx.Emit(key, candValue{})
}

// simPair is a verified pair's payload.
type simPair struct {
	c   int32
	sim float64
}

// SizeBytes implements mapreduce.Sized.
func (simPair) SizeBytes() int { return 12 }

// verifyReducer distinguishes the reducer's own record (matching rid) from
// shipped candidate records and verifies each candidate exactly.
type verifyReducer struct {
	opt Options
}

// Reduce implements mapreduce.Reducer.
func (r *verifyReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	rid := int32(mapreduce.DecodeU32Key(key))
	var own recPayload
	var cands []recPayload
	for _, v := range values {
		p := v.(recPayload)
		if p.rid == rid {
			own = p
		} else {
			cands = append(cands, p)
		}
	}
	if own.toks == nil {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].rid < cands[j].rid })
	for _, cand := range cands {
		ctx.Inc("massjoin.verifications", 1)
		c := tokens.Intersect(own.toks, cand.toks)
		if !r.opt.Fn.AtLeast(c, len(own.toks), len(cand.toks), r.opt.Theta) {
			continue
		}
		a, b := cand.rid, own.rid
		if a > b {
			a, b = b, a
		}
		ctx.Emit(mapreduce.PairKey(uint32(a), uint32(b)),
			simPair{c: int32(c), sim: r.opt.Fn.Sim(c, len(own.toks), len(cand.toks))})
	}
}
