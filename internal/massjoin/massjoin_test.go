package massjoin

import (
	"errors"
	"math/rand"
	"testing"

	"fsjoin/internal/bruteforce"
	"fsjoin/internal/mapreduce"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

func testCollection(n, vocab, maxLen int, seed int64) *tokens.Collection {
	rng := rand.New(rand.NewSource(seed))
	c := &tokens.Collection{}
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(3) == 0 {
			base := c.Records[rng.Intn(i)]
			ids := append([]tokens.ID{}, base.Tokens...)
			if len(ids) > 1 && rng.Intn(2) == 0 {
				ids = ids[:len(ids)-1]
			}
			ids = append(ids, tokens.ID(rng.Intn(vocab)))
			c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
			continue
		}
		l := rng.Intn(maxLen) + 1
		ids := make([]tokens.ID, l)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(vocab))
		}
		c.Records = append(c.Records, tokens.NewRecord(int32(i), ids))
	}
	return c
}

func small() *mapreduce.Cluster {
	cl := mapreduce.DefaultCluster()
	cl.Nodes = 3
	return cl
}

func TestMassJoinMatchesOracle(t *testing.T) {
	c := testCollection(90, 50, 18, 3)
	for _, theta := range []float64{0.6, 0.8, 0.9} {
		want := bruteforce.SelfJoin(c, similarity.Jaccard, theta)
		for _, variant := range []Variant{Merge, MergeLight} {
			res, err := SelfJoin(c, Options{Theta: theta, Variant: variant, Cluster: small()})
			if err != nil {
				t.Fatalf("SelfJoin(theta=%v, %v): %v", theta, variant, err)
			}
			if diffs := result.Diff(res.Pairs, want, 8); len(diffs) != 0 {
				t.Errorf("theta=%v %v: got %d want %d:", theta, variant, len(res.Pairs), len(want))
				for _, d := range diffs {
					t.Errorf("  %s", d)
				}
			}
		}
	}
}

func TestMassJoinBudget(t *testing.T) {
	c := testCollection(60, 40, 15, 4)
	_, err := SelfJoin(c, Options{Theta: 0.6, Cluster: small(), MaxSignatures: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestLightFilterNeverPrunesSimilarPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		la := rng.Intn(20) + 1
		a := make([]tokens.ID, la)
		for i := range a {
			a[i] = tokens.ID(rng.Intn(40))
		}
		ra := tokens.NewRecord(0, a)
		rb := tokens.NewRecord(1, append(append([]tokens.ID{}, ra.Tokens...), tokens.ID(rng.Intn(40))))
		c := tokens.Intersect(ra.Tokens, rb.Tokens)
		bound := lightOverlapBound(lightVector(ra.Tokens), lightVector(rb.Tokens))
		if bound < c {
			t.Fatalf("light bound %d below true overlap %d", bound, c)
		}
	}
}
