package massjoin

import (
	"sync/atomic"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/order"
)

// sigMapper emits index-side signatures (one per even segment, plus the
// match-all signature) for each record, and probe-side signatures for every
// admissible shorter partner length ℓ ∈ [minLen(|t|), |t|] — the
// per-integer-length generation the paper describes ("for each integer from
// 80 to 125, string t will generate signatures separately"). One instance
// is shared by all map tasks, which may run concurrently, so the running
// count is atomic.
type sigMapper struct {
	opt     Options
	emitted atomic.Int64
}

// Map implements mapreduce.Mapper.
func (m *sigMapper) Map(ctx *mapreduce.Context, kv mapreduce.KV) {
	rec := order.KVRecord(kv)
	l := rec.Len()
	if l == 0 {
		return
	}
	// Once the signature budget is exhausted the run is a failure (DNF);
	// stop generating immediately instead of burning CPU on doomed work.
	exhausted := func() bool {
		if m.opt.MaxSignatures > 0 && m.emitted.Load() >= m.opt.MaxSignatures {
			ctx.Inc("massjoin.sig.dropped", 1)
			return true
		}
		return false
	}
	if exhausted() {
		return
	}
	light := lightVector(rec.Tokens)
	emit := func(key string, probe bool) {
		if exhausted() {
			return
		}
		m.emitted.Add(1)
		ctx.Inc("massjoin.sig.emitted", 1)
		ctx.Emit(key, sigEntry{rid: rec.RID, l: int32(l), probe: probe, light: light})
	}

	// Index side: m(l) even segments plus the match-all signature.
	mseg := segmentsFor(m.opt.Fn, m.opt.Theta, l)
	bounds := segBounds(l, mseg)
	for i := 0; i < mseg; i++ {
		seg := rec.Tokens[bounds[i]:bounds[i+1]]
		emit(sigKey(l, uint16(i), hashTokens(seg)), false)
	}
	emit(sigKey(l, allSeg, 0), false)

	// Probe side: for every admissible partner length ℓ ≤ |t|.
	minPartner := m.opt.Fn.MinLen(m.opt.Theta, l)
	for pl := minPartner; pl <= l; pl++ {
		if exhausted() {
			return
		}
		k := maxSymDiff(m.opt.Fn, m.opt.Theta, pl, l)
		mp := segmentsFor(m.opt.Fn, m.opt.Theta, pl)
		if mp < k+1 {
			// The partner is too short for the pigeonhole: fall back to
			// the unconditional match-all signature for this length.
			emit(sigKey(pl, allSeg, 0), true)
			continue
		}
		pb := segBounds(pl, mp)
		for i := 0; i < mp; i++ {
			if exhausted() {
				return
			}
			segLen := pb[i+1] - pb[i]
			if segLen == 0 {
				continue
			}
			// Candidate substrings of this record that could equal
			// segment i of an ℓ-length partner: same length, start
			// displaced by at most k.
			lo := pb[i] - k
			if lo < 0 {
				lo = 0
			}
			hi := pb[i] + k
			if hi > l-segLen {
				hi = l - segLen
			}
			for start := lo; start <= hi; start++ {
				if exhausted() {
					return
				}
				sub := rec.Tokens[start : start+segLen]
				emit(sigKey(pl, uint16(i), hashTokens(sub)), true)
			}
		}
	}
}

// sigReducer matches index-side and probe-side signature occurrences and
// emits candidate pairs keyed by (min rid, max rid). Merge+Light prunes
// candidates here with the token-grouping overlap bound before anything is
// shuffled onward.
type sigReducer struct {
	opt Options
}

// Reduce implements mapreduce.Reducer.
func (r *sigReducer) Reduce(ctx *mapreduce.Context, key string, values []any) {
	var idx, probes []sigEntry
	for _, v := range values {
		e := v.(sigEntry)
		if e.probe {
			probes = append(probes, e)
		} else {
			idx = append(idx, e)
		}
	}
	for _, ie := range idx {
		for _, pe := range probes {
			if ie.rid == pe.rid {
				continue
			}
			// Equal-length pairs match in both directions; keep one.
			if ie.l == pe.l && ie.rid > pe.rid {
				continue
			}
			ctx.Inc("massjoin.sig.matches", 1)
			if r.opt.Variant == MergeLight {
				bound := lightOverlapBound(ie.light, pe.light)
				if bound < r.opt.Fn.MinOverlap(r.opt.Theta, int(ie.l), int(pe.l)) {
					ctx.Inc("massjoin.light.pruned", 1)
					continue
				}
			}
			a, b := ie.rid, pe.rid
			if a > b {
				a, b = b, a
			}
			ctx.Emit(mapreduce.PairKey(uint32(a), uint32(b)), candValue{})
		}
	}
}
