// Package massjoin implements the MassJoin baseline (Deng, Li, Hao, Wang,
// Feng — ICDE 2014) as the paper describes it: a partition-based signature
// scheme where every indexed record is split into even segments (all of
// them signatures) and every probing record generates, for each admissible
// partner length ℓ ∈ [θ|t|, |t|], the candidate substrings that could equal
// one of those segments. Matching signatures yield candidates; verification
// then ships full records to candidates over two more jobs — the
// record-duplication blowup the paper measures.
//
// Soundness of the signature scheme: a similar pair's token-level edit
// distance (= symmetric difference) is at most K = ⌊(1−θ)/(1+θ)(|s|+|t|)⌋
// for Jaccard, so with the shorter record split into m ≥ K+1 contiguous
// segments at least one segment survives untouched and appears as a
// contiguous substring of the longer record, displaced by at most K
// positions. When a record is too short for m ≥ K+1 non-empty segments the
// pair falls back to an unconditional "match-all" signature.
//
// Two variants are provided, matching the paper's experiments:
//   - Merge: candidate lists are merged per record before full records are
//     shipped to the verification reducers.
//   - Merge+Light: a light filter (token grouping) prunes candidates using
//     small grouped-frequency vectors before any record is shipped.
package massjoin

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"

	"fsjoin/internal/mapreduce"
	"fsjoin/internal/result"
	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

// ErrBudgetExceeded reports that signature generation exceeded
// Options.MaxSignatures — the stand-in for the paper's observation that
// MassJoin cannot complete on larger datasets.
var ErrBudgetExceeded = errors.New("massjoin: signature budget exceeded")

// Variant selects the MassJoin flavour.
type Variant int

const (
	// Merge is the basic variant with merged candidate lists.
	Merge Variant = iota
	// MergeLight adds the token-grouping light filter.
	MergeLight
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == MergeLight {
		return "merge+light"
	}
	return "merge"
}

// lightGroups is the dimensionality of the token-grouping vectors used by
// the Light filter.
const lightGroups = 16

// Options configures a MassJoin run.
type Options struct {
	// Fn and Theta define the similarity predicate. MassJoin's signature
	// bound is Jaccard-specific in the paper; other functions use their
	// own symmetric-difference bounds derived from MinOverlapReal.
	Fn    similarity.Func
	Theta float64
	// Variant selects Merge or Merge+Light.
	Variant Variant
	// Cluster is the cost model (default: the paper's 10-node cluster).
	Cluster *mapreduce.Cluster
	// MaxSignatures caps signature-job emissions; 0 means unlimited.
	MaxSignatures int64
	// Ctx, when non-nil, cancels the pipeline at the next task boundary.
	Ctx context.Context
	// Parallelism is the local engine parallelism for every stage; see
	// mapreduce.Config.Parallelism.
	Parallelism int
	// Fault is the fault-tolerance and fault-injection policy inherited by
	// every stage; see mapreduce.FaultPolicy.
	Fault mapreduce.FaultPolicy
	// MemoryBudget caps each map task's in-memory shuffle buffer; records
	// beyond it spill to sorted runs on disk and merge back at reduce time
	// (see mapreduce.Config.MemoryBudgetBytes). 0 defers to the engine
	// default (FSJOIN_MEMORY_BUDGET); negative forces unbounded. Results
	// are byte-identical at any budget.
	MemoryBudget int64
	// SpillDir is the parent directory for spill files ("" = OS temp dir).
	SpillDir string
	// CheckpointDir, when non-empty, persists each completed pipeline
	// stage there for crash/restart recovery; see
	// mapreduce.Pipeline.CheckpointDir.
	CheckpointDir string
	// CheckpointSalt folds the caller's configuration into every stage
	// fingerprint, so one checkpoint directory reused under different
	// options recomputes instead of replaying mismatched state.
	CheckpointSalt string
	// Runtime selects the execution substrate (shuffle transport and, for
	// multi-process runs, the task executor); the zero value is the
	// in-process engine. See mapreduce.Runtime.
	Runtime mapreduce.Runtime
}

// Result carries the join output and pipeline metrics.
type Result struct {
	// Pairs are the similar pairs, sorted canonically.
	Pairs []result.Pair
	// Pipeline exposes per-stage metrics.
	Pipeline *mapreduce.Pipeline
}

// sigEntry is one signature occurrence: which record, its length, whether
// it is a probe-side occurrence, and (for Light) the grouped-token vector.
type sigEntry struct {
	rid   int32
	l     int32
	probe bool
	light [lightGroups]uint16
}

// SizeBytes implements mapreduce.Sized.
func (e sigEntry) SizeBytes() int { return 9 + 2*lightGroups }

// candValue marks one side of a candidate pair in the dedup job.
type candValue struct{}

// SizeBytes implements mapreduce.Sized.
func (candValue) SizeBytes() int { return 0 }

// recPayload ships a full record to a verification reducer.
type recPayload struct {
	rid  int32
	toks []tokens.ID
}

// SizeBytes implements mapreduce.Sized.
func (p recPayload) SizeBytes() int { return 4 + 4*len(p.toks) }

// ridList is a merged candidate list for one record.
type ridList struct {
	rids []int32
}

// SizeBytes implements mapreduce.Sized.
func (l ridList) SizeBytes() int { return 4 * len(l.rids) }

// maxSymDiff returns K, the largest token-level symmetric difference a
// similar pair of the given lengths may have: |s|+|t|−2·minOverlap.
func maxSymDiff(fn similarity.Func, theta float64, ls, lt int) int {
	k := int(math.Floor(float64(ls+lt) - 2*fn.MinOverlapReal(theta, ls, lt) + 1e-9))
	if k < 0 {
		k = 0
	}
	return k
}

// segmentsFor returns m(ℓ), the index-side segment count for records of
// length ℓ: K for the worst admissible partner plus one, capped at ℓ so all
// segments are non-empty.
func segmentsFor(fn similarity.Func, theta float64, l int) int {
	worst := maxSymDiff(fn, theta, l, fn.MaxLen(theta, l))
	m := worst + 1
	if m > l {
		m = l
	}
	if m < 1 {
		m = 1
	}
	return m
}

// segBounds returns the start positions of the m even segments of a record
// of length l (the final bound l is appended).
func segBounds(l, m int) []int {
	bounds := make([]int, m+1)
	base, rem := l/m, l%m
	off := 0
	for i := 0; i < m; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[m] = l
	return bounds
}

// sigKey encodes a signature key: partner length ℓ, segment index, token
// hash. The match-all signature uses segment index 0xFFFF and hash 0.
func sigKey(l int, seg uint16, h uint64) string {
	var b [14]byte
	binary.BigEndian.PutUint32(b[0:], uint32(l))
	binary.BigEndian.PutUint16(b[4:], seg)
	binary.BigEndian.PutUint64(b[6:], h)
	return string(b[:])
}

const allSeg = uint16(0xFFFF)

// hashTokens hashes a token slice with FNV-1a.
func hashTokens(ts []tokens.ID) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, t := range ts {
		binary.BigEndian.PutUint32(b[:], t)
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// lightVector folds a record into a small grouped-frequency vector; the
// overlap of two records is at most the min-sum of their vectors.
func lightVector(ts []tokens.ID) [lightGroups]uint16 {
	var v [lightGroups]uint16
	for _, t := range ts {
		g := t % lightGroups
		if v[g] != math.MaxUint16 {
			v[g]++
		}
	}
	return v
}

// lightOverlapBound returns the token-grouping upper bound on |s∩t|.
func lightOverlapBound(a, b [lightGroups]uint16) int {
	n := 0
	for i := range a {
		if a[i] < b[i] {
			n += int(a[i])
		} else {
			n += int(b[i])
		}
	}
	return n
}
