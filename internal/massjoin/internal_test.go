package massjoin

import (
	"math/rand"
	"testing"

	"fsjoin/internal/similarity"
	"fsjoin/internal/tokens"
)

func TestSegBoundsCoverEvenly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		l := rng.Intn(100) + 1
		m := rng.Intn(l) + 1
		b := segBounds(l, m)
		if len(b) != m+1 || b[0] != 0 || b[m] != l {
			t.Fatalf("bounds malformed: l=%d m=%d b=%v", l, m, b)
		}
		for i := 0; i < m; i++ {
			sz := b[i+1] - b[i]
			if sz < l/m || sz > l/m+1 {
				t.Fatalf("uneven segment %d: size %d for l=%d m=%d", i, sz, l, m)
			}
		}
	}
}

func TestMaxSymDiffSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fn := similarity.Jaccard
	for trial := 0; trial < 3000; trial++ {
		ls := rng.Intn(40) + 1
		lt := rng.Intn(40) + 1
		theta := float64(rng.Intn(9)+1) / 10
		k := maxSymDiff(fn, theta, ls, lt)
		// For any c meeting the threshold, the symmetric difference
		// ls+lt−2c must be ≤ k.
		for c := 0; c <= ls && c <= lt; c++ {
			if fn.AtLeast(c, ls, lt, theta) && ls+lt-2*c > k {
				t.Fatalf("similar pair exceeds K: ls=%d lt=%d c=%d k=%d θ=%v", ls, lt, c, k, theta)
			}
		}
	}
}

func TestSegmentsForBounds(t *testing.T) {
	fn := similarity.Jaccard
	for _, theta := range []float64{0.5, 0.8, 0.95} {
		for l := 1; l <= 200; l++ {
			m := segmentsFor(fn, theta, l)
			if m < 1 || m > l {
				t.Fatalf("segments %d out of [1,%d] (θ=%v)", m, l, theta)
			}
		}
	}
	// Lower thresholds need more segments (larger K).
	if segmentsFor(fn, 0.5, 100) <= segmentsFor(fn, 0.9, 100) {
		t.Fatal("segment count not decreasing in theta")
	}
}

func TestSigKeyDistinguishes(t *testing.T) {
	a := sigKey(10, 0, hashTokens([]tokens.ID{1, 2}))
	b := sigKey(10, 1, hashTokens([]tokens.ID{1, 2}))
	c := sigKey(11, 0, hashTokens([]tokens.ID{1, 2}))
	d := sigKey(10, 0, hashTokens([]tokens.ID{1, 3}))
	keys := map[string]bool{a: true, b: true, c: true, d: true}
	if len(keys) != 4 {
		t.Fatalf("sig keys collide: %d distinct of 4", len(keys))
	}
}

func TestHashTokensOrderSensitive(t *testing.T) {
	// Contiguous substrings are compared as sequences, so order matters.
	if hashTokens([]tokens.ID{1, 2}) == hashTokens([]tokens.ID{2, 1}) {
		t.Fatal("hash ignores order")
	}
	if hashTokens(nil) != hashTokens([]tokens.ID{}) {
		t.Fatal("empty hash unstable")
	}
}

func TestLightVectorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		a := randomSet(rng, 30, 100)
		b := randomSet(rng, 30, 100)
		bound := lightOverlapBound(lightVector(a), lightVector(b))
		if c := tokens.Intersect(a, b); bound < c {
			t.Fatalf("light bound %d < true %d", bound, c)
		}
	}
}

func randomSet(rng *rand.Rand, maxLen, vocab int) []tokens.ID {
	r := tokens.NewRecord(0, func() []tokens.ID {
		n := rng.Intn(maxLen) + 1
		ids := make([]tokens.ID, n)
		for i := range ids {
			ids[i] = tokens.ID(rng.Intn(vocab))
		}
		return ids
	}())
	return r.Tokens
}

func TestVariantString(t *testing.T) {
	if Merge.String() != "merge" || MergeLight.String() != "merge+light" {
		t.Fatal("variant names wrong")
	}
}

func TestInvalidTheta(t *testing.T) {
	c := &tokens.Collection{}
	for _, theta := range []float64{0, 1.2} {
		if _, err := SelfJoin(c, Options{Theta: theta}); err == nil {
			t.Errorf("theta=%v accepted", theta)
		}
	}
}
