package massjoin

import (
	"encoding/binary"
	"math"

	"fsjoin/internal/spill"
)

// Spill codecs for this package's shuffle values (DESIGN.md §8) and for
// simPair, the verify stage's output, which makes the final stage
// checkpointable (DESIGN.md §9). Tags 50–54; this package owns tags
// 50–55.
func init() {
	spill.RegisterValue(54, simPair{},
		func(buf []byte, v any) []byte {
			p := v.(simPair)
			buf = binary.AppendVarint(buf, int64(p.c))
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.sim))
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := simPair{c: int32(d.Varint())}
			p.sim = math.Float64frombits(d.U64())
			return p, d.Err()
		})
	spill.RegisterValue(50, sigEntry{},
		func(buf []byte, v any) []byte {
			e := v.(sigEntry)
			buf = binary.AppendVarint(buf, int64(e.rid))
			buf = binary.AppendVarint(buf, int64(e.l))
			if e.probe {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			for _, g := range e.light {
				buf = binary.LittleEndian.AppendUint16(buf, g)
			}
			return buf
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			e := sigEntry{rid: int32(d.Varint()), l: int32(d.Varint())}
			e.probe = d.Bool()
			for i := range e.light {
				e.light[i] = d.U16()
			}
			return e, d.Err()
		})
	spill.RegisterValue(51, candValue{},
		func(buf []byte, v any) []byte { return buf },
		func(b []byte) (any, error) { return candValue{}, nil })
	spill.RegisterValue(52, recPayload{},
		func(buf []byte, v any) []byte {
			p := v.(recPayload)
			buf = binary.AppendVarint(buf, int64(p.rid))
			return spill.AppendU32s(buf, p.toks)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			p := recPayload{rid: int32(d.Varint())}
			p.toks = d.U32s()
			return p, d.Err()
		})
	spill.RegisterValue(53, ridList{},
		func(buf []byte, v any) []byte {
			return spill.AppendI32s(buf, v.(ridList).rids)
		},
		func(b []byte) (any, error) {
			d := spill.NewDec(b)
			l := ridList{rids: d.I32s()}
			return l, d.Err()
		})
}
