package spill

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
)

// FuzzValueCodec exercises decodeValue on arbitrary frames: it must never
// panic, and any frame it accepts must re-encode and re-decode to the same
// value and concrete type (a full round trip for every reachable frame).
func FuzzValueCodec(f *testing.F) {
	seeds := []any{
		nil, true, int64(-1 << 40), uint32(7), float64(3.25),
		"hello", []byte{1, 2}, []uint32{9, 8}, []int32{-3},
		[]int{4, -4}, []string{"a", "b"},
	}
	for _, v := range seeds {
		buf, err := appendValue(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{200})
	f.Add([]byte{tagU32Slice, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, frame []byte) {
		v, err := decodeValue(frame)
		if err != nil {
			return
		}
		re, err := appendValue(nil, v)
		if err != nil {
			t.Fatalf("decoded %T %v but cannot re-encode: %v", v, v, err)
		}
		v2, err := decodeValue(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		// NaN payloads are preserved bit-for-bit but fail DeepEqual.
		same := reflect.DeepEqual(v, v2)
		switch x := v.(type) {
		case float32:
			y, ok := v2.(float32)
			same = ok && math.Float32bits(x) == math.Float32bits(y)
		case float64:
			y, ok := v2.(float64)
			same = ok && math.Float64bits(x) == math.Float64bits(y)
		}
		if !same {
			t.Fatalf("unstable round trip: %#v -> %#v", v, v2)
		}
		if v != nil && reflect.TypeOf(v) != reflect.TypeOf(v2) {
			t.Fatalf("type drift: %T -> %T", v, v2)
		}
	})
}

// FuzzBufferMerge feeds an arbitrary KV sequence (decoded from the fuzz
// input) through a tightly budgeted Buffer and checks the spill-and-merge
// drain against the in-memory reference: same key set, identical per-key
// value order, key-sorted across groups — the exact contract the engine's
// reduce phase relies on (DESIGN.md §8).
func FuzzBufferMerge(f *testing.F) {
	f.Add([]byte("aa1bb2aa3cc4"), uint8(3), uint16(64))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 200, 201}, uint8(1), uint16(32))
	f.Add(bytes.Repeat([]byte("xyzw"), 64), uint8(2), uint16(48))
	f.Fuzz(func(t *testing.T, data []byte, nkeys uint8, budget uint16) {
		keys := int(nkeys%16) + 1
		// Decode the fuzz bytes into a KV stream: each byte contributes one
		// record with a derived key and a varint-ish value.
		type kv struct {
			key string
			val int64
		}
		var recs []kv
		for i, c := range data {
			if len(recs) >= 512 {
				break
			}
			recs = append(recs, kv{
				key: fmt.Sprintf("k%02d", int(c)%keys),
				val: int64(i)<<8 | int64(c),
			})
		}
		bud := int64(budget%1024) + 16

		b := NewBuffer(Config{Parts: 1, Budget: bud, Size: testSize, Dir: t.TempDir()})
		defer b.Close()
		for _, r := range recs {
			if err := b.Add(0, r.key, r.val); err != nil {
				t.Fatal(err)
			}
		}
		var gotKeys []string
		got := make(map[string][]int64)
		if _, err := b.Drain(0, func(k string, v any, sz int64) {
			if sz != testSize(k, v) {
				t.Fatalf("accounted size drifted: %d vs %d", sz, testSize(k, v))
			}
			if vs, ok := got[k]; !ok || len(vs) == 0 {
				gotKeys = append(gotKeys, k)
			}
			got[k] = append(got[k], v.(int64))
		}); err != nil {
			t.Fatal(err)
		}

		// Reference: group in arrival order, then sort keys — the in-memory
		// shuffle contract after the reduce phase normalises key order.
		want := make(map[string][]int64)
		for _, r := range recs {
			want[r.key] = append(want[r.key], r.val)
		}
		if len(got) != len(want) {
			t.Fatalf("key count %d, want %d", len(got), len(want))
		}
		for k, vs := range want {
			if !reflect.DeepEqual(got[k], vs) {
				t.Fatalf("key %q values %v, want %v", k, got[k], vs)
			}
		}
		// Spilled drains interleave sorted runs: emitted key groups must be
		// key-sorted whenever anything hit disk.
		if b.Stats().Runs > 0 && !sort.StringsAreSorted(gotKeys) {
			t.Fatalf("spilled drain emitted unsorted key groups: %v", gotKeys)
		}
	})
}

// FuzzRunCodec round-trips arbitrary KV sequences through the run writer
// and cursor directly, asserting the replay matches a reference sort of
// the input — the k-way merge's per-source contract.
func FuzzRunCodec(f *testing.F) {
	f.Add([]byte("hello world"), uint8(2))
	f.Add([]byte{0xff, 0x00, 0x7f}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, parts uint8) {
		np := int(parts%4) + 1
		type rec struct {
			part int
			key  string
			val  string
		}
		var recs []rec
		for i := 0; i+1 < len(data) && len(recs) < 256; i += 2 {
			recs = append(recs, rec{
				part: int(data[i]) % np,
				key:  fmt.Sprintf("k%03d", data[i+1]),
				val:  string(data[i : i+2]),
			})
		}
		// Keys must arrive sorted per partition, as Buffer.spill guarantees.
		sort.SliceStable(recs, func(i, j int) bool {
			if recs[i].part != recs[j].part {
				return recs[i].part < recs[j].part
			}
			return recs[i].key < recs[j].key
		})
		dir := t.TempDir()
		w, err := newRunWriter(dir, 0, np)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.add(r.part, r.key, r.val, int64(len(r.key)+len(r.val))); err != nil {
				t.Fatal(err)
			}
		}
		ru, err := w.finish()
		if err != nil {
			t.Fatal(err)
		}
		defer ru.close()
		for p := 0; p < np; p++ {
			var want []rec
			for _, r := range recs {
				if r.part == p {
					want = append(want, r)
				}
			}
			c := ru.open(p)
			if c == nil {
				if len(want) != 0 {
					t.Fatalf("partition %d lost %d records", p, len(want))
				}
				continue
			}
			for i := 0; ; i++ {
				k, v, ok, err := c.next()
				if err != nil {
					t.Fatalf("partition %d record %d: %v", p, i, err)
				}
				if !ok {
					if i != len(want) {
						t.Fatalf("partition %d replayed %d records, want %d", p, i, len(want))
					}
					break
				}
				if i >= len(want) || k != want[i].key || v.(string) != want[i].val {
					t.Fatalf("partition %d record %d: got (%q,%v)", p, i, k, v)
				}
			}
		}
		// The segment index must account exactly.
		var total int64
		for _, s := range ru.segs {
			total += s.records
		}
		if total != int64(len(recs)) {
			t.Fatalf("segment index records %d, want %d", total, len(recs))
		}
	})
}
