package spill

import (
	"errors"
	"fmt"
	"testing"
)

// TestDrainCancellation proves Config.Cancel interrupts both drain paths:
// the k-way merge over spilled runs and the pure in-memory replay.
func TestDrainCancellation(t *testing.T) {
	errStop := errors.New("stop")
	for _, spilled := range []bool{true, false} {
		t.Run(fmt.Sprintf("spilled=%v", spilled), func(t *testing.T) {
			stop := false
			cfg := Config{
				Parts: 1,
				Dir:   t.TempDir(),
				Size:  func(k string, v any) int64 { return int64(len(k)) + 8 },
				Cancel: func() error {
					if stop {
						return errStop
					}
					return nil
				},
			}
			if spilled {
				cfg.Budget = 1 << 10
			}
			b := NewBuffer(cfg)
			defer b.Close()
			for i := 0; i < 3*cancelStride; i++ {
				if err := b.Add(0, fmt.Sprintf("key-%06d", i), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if spilled && b.Stats().Runs == 0 {
				t.Fatal("budget never spilled; test proves nothing about the merge")
			}
			// Uncancelled drain replays everything.
			n := 0
			if _, err := b.Drain(0, func(string, any, int64) { n++ }); err != nil {
				t.Fatal(err)
			}
			if n != 3*cancelStride {
				t.Fatalf("drained %d records, want %d", n, 3*cancelStride)
			}
			// Cancelled drain stops within one stride.
			stop = true
			n = 0
			_, err := b.Drain(0, func(string, any, int64) { n++ })
			if !errors.Is(err, errStop) {
				t.Fatalf("err = %v, want errStop", err)
			}
			if n > cancelStride {
				t.Fatalf("cancelled drain still replayed %d records (stride %d)", n, cancelStride)
			}
		})
	}
}
