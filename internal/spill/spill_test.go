package spill

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func testSize(key string, v any) int64 { return int64(len(key) + 16) }

// drainAll replays every partition into (key, value) slices.
func drainAll(t *testing.T, b *Buffer, parts int) ([][]string, [][]any) {
	t.Helper()
	keys := make([][]string, parts)
	vals := make([][]any, parts)
	for p := 0; p < parts; p++ {
		if _, err := b.Drain(p, func(k string, v any, _ int64) {
			keys[p] = append(keys[p], k)
			vals[p] = append(vals[p], v)
		}); err != nil {
			t.Fatalf("drain %d: %v", p, err)
		}
	}
	return keys, vals
}

// groupByKey normalises a drain sequence the way the engine's reduce phase
// does: values grouped per key, keys sorted. Per-key value order must be
// preserved exactly.
func groupByKey(keys []string, vals []any) (sorted []string, grouped map[string][]any) {
	grouped = make(map[string][]any)
	for i, k := range keys {
		if _, ok := grouped[k]; !ok {
			sorted = append(sorted, k)
		}
		grouped[k] = append(grouped[k], vals[i])
	}
	sort.Strings(sorted)
	return sorted, grouped
}

func TestCodecRoundTripBuiltins(t *testing.T) {
	cases := []any{
		nil, true, false,
		int(-7), int8(-8), int16(-900), int32(1 << 20), int64(-1 << 40),
		uint(7), uint8(200), uint16(60000), uint32(1 << 30), uint64(1 << 50),
		float32(3.5), float64(-2.25),
		"", "hello κόσμε", []byte{0, 1, 2, 255},
		[]uint32{}, []uint32{1, 2, 1 << 31}, []int32{-1, 0, 1},
		[]int{-5, 5}, []string{"a", "", "bc"},
	}
	for _, v := range cases {
		if !Encodable(v) {
			t.Errorf("Encodable(%T %v) = false", v, v)
			continue
		}
		buf, err := appendValue(nil, v)
		if err != nil {
			t.Errorf("encode %T: %v", v, err)
			continue
		}
		got, err := decodeValue(buf)
		if err != nil {
			t.Errorf("decode %T: %v", v, err)
			continue
		}
		if !reflect.DeepEqual(got, v) {
			// An encoded empty slice decodes to a non-nil empty slice.
			if rv := reflect.ValueOf(v); v != nil && rv.Kind() == reflect.Slice && rv.Len() == 0 &&
				reflect.ValueOf(got).Len() == 0 && reflect.TypeOf(got) == reflect.TypeOf(v) {
				continue
			}
			t.Errorf("round trip %T: got %#v want %#v", v, got, v)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(v) {
			t.Errorf("round trip %T: decoded concrete type %T", v, got)
		}
	}
}

type unregistered struct{ n int }

func TestCodecUnregisteredType(t *testing.T) {
	if Encodable(unregistered{1}) {
		t.Fatal("Encodable(unregistered) = true")
	}
	if _, err := appendValue(nil, unregistered{1}); err == nil {
		t.Fatal("encode of unregistered type succeeded")
	}
}

type registered struct{ n int32 }

func init() {
	RegisterValue(250, registered{},
		func(buf []byte, v any) []byte { return AppendI32s(buf, []int32{v.(registered).n}) },
		func(b []byte) (any, error) {
			d := NewDec(b)
			xs := d.I32s()
			if d.Err() != nil || len(xs) != 1 {
				return nil, fmt.Errorf("bad registered payload")
			}
			return registered{n: xs[0]}, nil
		})
}

func TestCodecRegisteredType(t *testing.T) {
	v := registered{n: -42}
	if !Encodable(v) {
		t.Fatal("Encodable(registered) = false")
	}
	buf, err := appendValue(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("got %#v want %#v", got, v)
	}
}

func TestRegisterValuePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	enc := func(buf []byte, v any) []byte { return buf }
	dec := func(b []byte) (any, error) { return nil, nil }
	mustPanic("builtin tag", func() { RegisterValue(5, registered{}, enc, dec) })
	mustPanic("duplicate tag", func() { RegisterValue(250, struct{ x bool }{}, enc, dec) })
	mustPanic("duplicate type", func() { RegisterValue(251, registered{}, enc, dec) })
	mustPanic("nil codec", func() { RegisterValue(252, struct{ y bool }{}, nil, nil) })
}

func TestBufferUnboundedNeverSpills(t *testing.T) {
	b := NewBuffer(Config{Parts: 2, Size: testSize, Dir: t.TempDir()})
	defer b.Close()
	for i := 0; i < 1000; i++ {
		if err := b.Add(i%2, fmt.Sprintf("k%03d", i%50), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.Runs != 0 || st.SpilledBytes != 0 {
		t.Fatalf("unbounded buffer spilled: %+v", st)
	}
	if st.PeakBytes == 0 {
		t.Fatal("peak not tracked")
	}
	keys, _ := drainAll(t, b, 2)
	if len(keys[0])+len(keys[1]) != 1000 {
		t.Fatalf("drained %d records, want 1000", len(keys[0])+len(keys[1]))
	}
}

// TestBufferSpillEquivalence checks the tentpole invariant: after reduce-
// style grouping, a budgeted buffer's drain is identical to an unbounded
// one's — same keys, same per-key value sequences — while actually
// spilling multiple runs.
func TestBufferSpillEquivalence(t *testing.T) {
	const parts = 3
	rng := rand.New(rand.NewSource(42))
	build := func(budget int64, dir string) *Buffer {
		r := rand.New(rand.NewSource(7))
		b := NewBuffer(Config{Parts: parts, Budget: budget, Size: testSize, Dir: dir})
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("key-%03d", r.Intn(120))
			if err := b.Add(rng.Intn(parts), k, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	// Identical partition routing for both buffers.
	rng = rand.New(rand.NewSource(42))
	ref := build(0, t.TempDir())
	defer ref.Close()
	rng = rand.New(rand.NewSource(42))
	dir := t.TempDir()
	spilled := build(512, dir)
	defer spilled.Close()

	if st := spilled.Stats(); st.Runs < 2 {
		t.Fatalf("budget 512 produced only %d runs", st.Runs)
	}
	refK, refV := drainAll(t, ref, parts)
	gotK, gotV := drainAll(t, spilled, parts)
	for p := 0; p < parts; p++ {
		wantKeys, wantGroups := groupByKey(refK[p], refV[p])
		gotKeys, gotGroups := groupByKey(gotK[p], gotV[p])
		if !reflect.DeepEqual(wantKeys, gotKeys) {
			t.Fatalf("partition %d key sets differ", p)
		}
		if !reflect.DeepEqual(wantGroups, gotGroups) {
			t.Fatalf("partition %d grouped values differ", p)
		}
	}
	// Records/bytes accounting must match the unbounded buffer's too.
	rr, rb, err := ref.Totals()
	if err != nil {
		t.Fatal(err)
	}
	sr, sb, err := spilled.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if rr != sr || rb != sb {
		t.Fatalf("totals differ: unbounded (%d, %d) vs spilled (%d, %d)", rr, rb, sr, sb)
	}
}

// TestBufferFoldEquivalence checks merge-time re-folding: a folding buffer
// that spilled mid-stream still drains at most one record per key with the
// same folded value as the in-memory fast path.
func TestBufferFoldEquivalence(t *testing.T) {
	fold := func(acc, v any) any { return acc.(int64) + v.(int64) }
	build := func(budget int64, dir string) *Buffer {
		b := NewBuffer(Config{Parts: 2, Budget: budget, Size: testSize, Dir: dir, Fold: fold})
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 1500; i++ {
			k := fmt.Sprintf("w%02d", r.Intn(40))
			if err := b.Add(len(k+fmt.Sprint(i))%2, k, int64(1)); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	ref := build(0, t.TempDir())
	defer ref.Close()
	spilled := build(256, t.TempDir())
	defer spilled.Close()
	if st := spilled.Stats(); st.Runs < 2 {
		t.Fatalf("only %d runs", st.Runs)
	}
	for p := 0; p < 2; p++ {
		want := map[string]int64{}
		if _, err := ref.Drain(p, func(k string, v any, _ int64) { want[k] = v.(int64) }); err != nil {
			t.Fatal(err)
		}
		got := map[string]int64{}
		if _, err := spilled.Drain(p, func(k string, v any, _ int64) {
			if _, dup := got[k]; dup {
				t.Fatalf("partition %d key %q drained twice (merge did not re-fold)", p, k)
			}
			got[k] = v.(int64)
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("partition %d folded values differ:\nwant %v\ngot  %v", p, want, got)
		}
	}
	// Totals must take the merge path and agree with the fast path.
	rr, rb, err := ref.Totals()
	if err != nil {
		t.Fatal(err)
	}
	sr, sb, err := spilled.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if rr != sr || rb != sb {
		t.Fatalf("totals differ: (%d,%d) vs (%d,%d)", rr, rb, sr, sb)
	}
}

// TestBufferPinsUnencodable: records whose values have no codec make the
// budget soft — they stay in memory and never corrupt a run file.
func TestBufferPinsUnencodable(t *testing.T) {
	dir := t.TempDir()
	b := NewBuffer(Config{Parts: 1, Budget: 64, Size: testSize, Dir: dir})
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := b.Add(0, fmt.Sprintf("k%d", i), unregistered{n: i}); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.Runs != 0 {
		t.Fatalf("pinned-only buffer wrote %d runs", st.Runs)
	}
	keys, vals := drainAll(t, b, 1)
	if len(keys[0]) != 100 {
		t.Fatalf("drained %d records, want 100", len(keys[0]))
	}
	for i, v := range vals[0] {
		if v.(unregistered).n != i {
			t.Fatalf("record %d perturbed: %#v", i, v)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("pinned buffer left files: %v", ents)
	}
}

// TestBufferMixedPinnedAndSpilled: encodable records spill around pinned
// ones and the merged drain carries both.
func TestBufferMixedPinnedAndSpilled(t *testing.T) {
	b := NewBuffer(Config{Parts: 1, Budget: 128, Size: testSize, Dir: t.TempDir()})
	defer b.Close()
	for i := 0; i < 200; i++ {
		var v any = int64(i)
		if i%5 == 0 {
			v = unregistered{n: i}
		}
		if err := b.Add(0, fmt.Sprintf("k%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.Runs == 0 {
		t.Fatal("mixed buffer never spilled")
	}
	keys, _ := drainAll(t, b, 1)
	if len(keys[0]) != 200 {
		t.Fatalf("drained %d records, want 200", len(keys[0]))
	}
}

func TestBufferCloseRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	b := NewBuffer(Config{Parts: 2, Budget: 64, Size: testSize, Dir: dir})
	for i := 0; i < 200; i++ {
		if err := b.Add(i%2, fmt.Sprintf("k%03d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.Runs == 0 {
		t.Fatal("no spill happened")
	}
	if ents, _ := os.ReadDir(dir); len(ents) == 0 {
		t.Fatal("expected spill dir while open")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("Close left files: %v", ents)
	}
	// A closed buffer refuses further spills instead of writing to a
	// removed directory.
	var addErr error
	for i := 0; i < 200 && addErr == nil; i++ {
		addErr = b.Add(0, "k", int64(i))
	}
	if addErr == nil {
		t.Fatal("Add kept spilling after Close")
	}
}

func TestBufferReleaseAllClosesAndRemoves(t *testing.T) {
	dir := t.TempDir()
	b := NewBuffer(Config{Parts: 3, Budget: 64, Size: testSize, Dir: dir})
	for i := 0; i < 300; i++ {
		if err := b.Add(i%3, fmt.Sprintf("k%03d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.Runs == 0 {
		t.Fatal("no spill happened")
	}
	for p := 0; p < 3; p++ {
		b.Release(p)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("Release of all partitions left files: %v", ents)
	}
}

func TestBufferDrainIsRepeatable(t *testing.T) {
	b := NewBuffer(Config{Parts: 1, Budget: 64, Size: testSize, Dir: t.TempDir()})
	defer b.Close()
	for i := 0; i < 150; i++ {
		if err := b.Add(0, fmt.Sprintf("k%02d", i%17), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	k1, v1 := drainAll(t, b, 1)
	k2, v2 := drainAll(t, b, 1)
	if !reflect.DeepEqual(k1, k2) || !reflect.DeepEqual(v1, v2) {
		t.Fatal("second drain differs from first")
	}
}

func TestBufferMergeWaysStat(t *testing.T) {
	b := NewBuffer(Config{Parts: 1, Budget: 64, Size: testSize, Dir: t.TempDir()})
	defer b.Close()
	for i := 0; i < 400; i++ {
		if err := b.Add(0, fmt.Sprintf("k%03d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	runs := b.Stats().Runs
	if runs < 2 {
		t.Fatalf("want >= 2 runs, got %d", runs)
	}
	ways, err := b.Drain(0, func(string, any, int64) {})
	if err != nil {
		t.Fatal(err)
	}
	// runs + the in-memory tail (if non-empty).
	if int64(ways) < runs {
		t.Fatalf("merge ways %d < runs %d", ways, runs)
	}
	if got := b.Stats().MergeWays; got != int64(ways) {
		t.Fatalf("Stats().MergeWays = %d, want %d", got, ways)
	}
}

func TestRunWriterEmptyPartitionsSkipped(t *testing.T) {
	b := NewBuffer(Config{Parts: 4, Budget: 64, Size: testSize, Dir: t.TempDir()})
	defer b.Close()
	// Only partition 2 gets data.
	for i := 0; i < 100; i++ {
		if err := b.Add(2, fmt.Sprintf("k%03d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []int{0, 1, 3} {
		n := 0
		ways, err := b.Drain(p, func(string, any, int64) { n++ })
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 || ways != 0 {
			t.Fatalf("empty partition %d drained %d records, %d ways", p, n, ways)
		}
	}
	n := 0
	if _, err := b.Drain(2, func(string, any, int64) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("partition 2 drained %d records, want 100", n)
	}
}

// TestSpillDirNamePattern pins the on-disk layout other cleanup code greps
// for: a private fsjoin-spill-* dir holding run-%06d files.
func TestSpillDirNamePattern(t *testing.T) {
	dir := t.TempDir()
	b := NewBuffer(Config{Parts: 1, Budget: 32, Size: testSize, Dir: dir})
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := b.Add(0, fmt.Sprintf("k%02d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	subs, err := filepath.Glob(filepath.Join(dir, "fsjoin-spill-*"))
	if err != nil || len(subs) != 1 {
		t.Fatalf("spill subdirs = %v (err %v)", subs, err)
	}
	files, err := filepath.Glob(filepath.Join(subs[0], "run-*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("run files = %v (err %v)", files, err)
	}
}
