package spill

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// The run format stores each value as a one-byte type tag followed by a
// tag-specific payload, so decoding restores the exact concrete Go type
// that was buffered — reducers type-switch on shuffle values, so "mostly
// the same type" is not good enough. Tags below firstCustomTag cover the
// natively sized kinds the engine's shuffle accounting already knows;
// packages whose jobs shuffle their own unexported structs register a
// codec per type from init() (see RegisterValue).
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt
	tagInt8
	tagInt16
	tagInt32
	tagInt64
	tagUint
	tagUint8
	tagUint16
	tagUint32
	tagUint64
	tagFloat32
	tagFloat64
	tagString
	tagBytes
	tagU32Slice
	tagI32Slice
	tagIntSlice
	tagStringSlice

	// firstCustomTag is the lowest tag RegisterValue accepts.
	firstCustomTag = 32
)

// EncodeFunc appends a value's payload (no tag) to buf and returns the
// extended slice.
type EncodeFunc func(buf []byte, v any) []byte

// DecodeFunc reconstructs a value from its payload. It must not retain b.
type DecodeFunc func(b []byte) (any, error)

type codecEntry struct {
	tag byte
	enc EncodeFunc
	dec DecodeFunc
}

var (
	codecsByType = map[reflect.Type]*codecEntry{}
	codecsByTag  [256]*codecEntry
)

// RegisterValue installs a codec for one concrete value type under a
// package-chosen tag (≥ 32; pick a distinct small range per package —
// collisions panic, so they surface at program start). Must be called from
// init(): the registry is read without locking once jobs run.
func RegisterValue(tag byte, sample any, enc EncodeFunc, dec DecodeFunc) {
	if tag < firstCustomTag {
		panic(fmt.Sprintf("spill: tag %d collides with builtin tags (< %d)", tag, firstCustomTag))
	}
	t := reflect.TypeOf(sample)
	if t == nil || enc == nil || dec == nil {
		panic("spill: RegisterValue needs a non-nil sample, encoder and decoder")
	}
	if codecsByTag[tag] != nil {
		panic(fmt.Sprintf("spill: tag %d registered twice", tag))
	}
	if _, dup := codecsByType[t]; dup {
		panic(fmt.Sprintf("spill: type %v registered twice", t))
	}
	e := &codecEntry{tag: tag, enc: enc, dec: dec}
	codecsByTag[tag] = e
	codecsByType[t] = e
}

// Encodable reports whether v can be written to a run: either a builtin
// kind or a registered type. Unencodable values stay pinned in memory (the
// budget turns soft) rather than failing the job.
func Encodable(v any) bool {
	switch v.(type) {
	case nil, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, string, []byte,
		[]uint32, []int32, []int, []string:
		return true
	}
	return codecsByType[reflect.TypeOf(v)] != nil
}

// appendValue appends tag + payload for v.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case bool:
		if x {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil
	case int:
		return binary.AppendVarint(append(buf, tagInt), int64(x)), nil
	case int8:
		return binary.AppendVarint(append(buf, tagInt8), int64(x)), nil
	case int16:
		return binary.AppendVarint(append(buf, tagInt16), int64(x)), nil
	case int32:
		return binary.AppendVarint(append(buf, tagInt32), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(buf, tagInt64), x), nil
	case uint:
		return binary.AppendUvarint(append(buf, tagUint), uint64(x)), nil
	case uint8:
		return binary.AppendUvarint(append(buf, tagUint8), uint64(x)), nil
	case uint16:
		return binary.AppendUvarint(append(buf, tagUint16), uint64(x)), nil
	case uint32:
		return binary.AppendUvarint(append(buf, tagUint32), uint64(x)), nil
	case uint64:
		return binary.AppendUvarint(append(buf, tagUint64), x), nil
	case float32:
		return binary.LittleEndian.AppendUint32(append(buf, tagFloat32), math.Float32bits(x)), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(buf, tagFloat64), math.Float64bits(x)), nil
	case string:
		return append(append(buf, tagString), x...), nil
	case []byte:
		return append(append(buf, tagBytes), x...), nil
	case []uint32:
		return AppendU32s(append(buf, tagU32Slice), x), nil
	case []int32:
		return AppendI32s(append(buf, tagI32Slice), x), nil
	case []int:
		buf = binary.AppendUvarint(append(buf, tagIntSlice), uint64(len(x)))
		for _, n := range x {
			buf = binary.AppendVarint(buf, int64(n))
		}
		return buf, nil
	case []string:
		buf = binary.AppendUvarint(append(buf, tagStringSlice), uint64(len(x)))
		for _, s := range x {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		return buf, nil
	}
	e := codecsByType[reflect.TypeOf(v)]
	if e == nil {
		return nil, fmt.Errorf("spill: no codec registered for %T", v)
	}
	return e.enc(append(buf, e.tag), v), nil
}

// decodeValue reconstructs a value from tag + payload. It never retains b.
func decodeValue(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spill: empty value frame")
	}
	tag, p := b[0], b[1:]
	switch tag {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt, tagInt8, tagInt16, tagInt32, tagInt64:
		n, w := binary.Varint(p)
		if w <= 0 {
			return nil, fmt.Errorf("spill: bad varint payload")
		}
		switch tag {
		case tagInt:
			return int(n), nil
		case tagInt8:
			return int8(n), nil
		case tagInt16:
			return int16(n), nil
		case tagInt32:
			return int32(n), nil
		}
		return n, nil
	case tagUint, tagUint8, tagUint16, tagUint32, tagUint64:
		n, w := binary.Uvarint(p)
		if w <= 0 {
			return nil, fmt.Errorf("spill: bad uvarint payload")
		}
		switch tag {
		case tagUint:
			return uint(n), nil
		case tagUint8:
			return uint8(n), nil
		case tagUint16:
			return uint16(n), nil
		case tagUint32:
			return uint32(n), nil
		}
		return n, nil
	case tagFloat32:
		if len(p) < 4 {
			return nil, fmt.Errorf("spill: short float32 payload")
		}
		return math.Float32frombits(binary.LittleEndian.Uint32(p)), nil
	case tagFloat64:
		if len(p) < 8 {
			return nil, fmt.Errorf("spill: short float64 payload")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(p)), nil
	case tagString:
		return string(p), nil
	case tagBytes:
		return append([]byte(nil), p...), nil
	case tagU32Slice:
		d := NewDec(p)
		xs := d.U32s()
		return xs, d.Err()
	case tagI32Slice:
		d := NewDec(p)
		xs := d.I32s()
		return xs, d.Err()
	case tagIntSlice:
		d := NewDec(p)
		n := d.Uvarint()
		xs := make([]int, 0, min(n, 1<<16))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			xs = append(xs, int(d.Varint()))
		}
		return xs, d.Err()
	case tagStringSlice:
		d := NewDec(p)
		n := d.Uvarint()
		xs := make([]string, 0, min(n, 1<<16))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			xs = append(xs, d.String())
		}
		return xs, d.Err()
	}
	e := codecsByTag[tag]
	if e == nil {
		return nil, fmt.Errorf("spill: unknown value tag %d", tag)
	}
	return e.dec(p)
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// AppendEncoded appends v's tag + payload frame to buf — the exact bytes a
// spill run stores for the value. Exported for the checkpoint subsystem,
// which persists stage outputs (and fingerprints stage inputs) in the run
// codec so replayed values decode to the same concrete types the shuffle
// restores.
func AppendEncoded(buf []byte, v any) ([]byte, error) { return appendValue(buf, v) }

// DecodeEncoded reconstructs a value written by AppendEncoded. It never
// retains b.
func DecodeEncoded(b []byte) (any, error) { return decodeValue(b) }

// ---- Helpers for custom codecs ----

// AppendU32s appends a uvarint count followed by fixed little-endian words.
func AppendU32s(buf []byte, xs []uint32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, x)
	}
	return buf
}

// AppendI32s appends a uvarint count followed by fixed little-endian words.
func AppendI32s(buf []byte, xs []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// Dec is a cursor over a custom codec payload written with the Append*
// helpers and encoding/binary primitives. The first malformed read sticks
// in Err; subsequent reads return zero values.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Rest returns the number of unconsumed bytes — strict decoders use it to
// reject payloads with trailing garbage.
func (d *Dec) Rest() int { return len(d.b) }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("spill: truncated payload")
	}
}

// Byte consumes one byte.
func (d *Dec) Byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	x := d.b[0]
	d.b = d.b[1:]
	return x
}

// Bool consumes one byte as a boolean.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Uvarint consumes an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	n, w := binary.Uvarint(d.b)
	if w <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[w:]
	return n
}

// Varint consumes a signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	n, w := binary.Varint(d.b)
	if w <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[w:]
	return n
}

// U32 consumes one fixed little-endian word.
func (d *Dec) U32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return x
}

// U64 consumes one fixed little-endian double-word (e.g. float64 bits).
func (d *Dec) U64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return x
}

// U16 consumes one fixed little-endian half-word.
func (d *Dec) U16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return x
}

// String consumes a uvarint length followed by that many bytes.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// U32s consumes a count-prefixed []uint32 written by AppendU32s. Returns a
// non-nil empty slice for a zero count, matching an encoded empty slice.
func (d *Dec) U32s() []uint32 {
	n := d.Uvarint()
	if d.err != nil || uint64(len(d.b)) < 4*n {
		d.fail()
		return nil
	}
	xs := make([]uint32, n)
	for i := range xs {
		xs[i] = binary.LittleEndian.Uint32(d.b[4*i:])
	}
	d.b = d.b[4*n:]
	return xs
}

// I32s consumes a count-prefixed []int32 written by AppendI32s.
func (d *Dec) I32s() []int32 {
	n := d.Uvarint()
	if d.err != nil || uint64(len(d.b)) < 4*n {
		d.fail()
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(d.b[4*i:]))
	}
	d.b = d.b[4*n:]
	return xs
}
