package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// A run is one spill file: every partition's records in partition order,
// each partition's slice sorted by key (stable, so equal keys keep their
// emission order). Records are length-prefixed —
//
//	uvarint(len(key)) key uvarint(len(tag+payload)) tag payload
//
// — and a per-partition segment index (offset, end, record count,
// accounted bytes) kept in memory lets each reduce task read exactly its
// partition's byte range through an independent SectionReader.
type run struct {
	f    *os.File
	segs []segment
}

type segment struct {
	off     int64
	end     int64
	records int64
	bytes   int64 // accounted (pre-encoding) bytes, for shuffle metrics
}

// close removes the run's file. Safe to call once per run.
func (r *run) close() {
	if r.f == nil {
		return
	}
	name := r.f.Name()
	r.f.Close()
	os.Remove(name)
	r.f = nil
}

// runWriter streams one run to disk. Partitions must be written in
// non-decreasing order.
type runWriter struct {
	f       *os.File
	w       *bufio.Writer
	off     int64
	segs    []segment
	scratch []byte
	val     []byte
}

func newRunWriter(dir string, seq, parts int) (*runWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("run-%06d", seq)),
		os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	return &runWriter{f: f, w: bufio.NewWriterSize(f, 64<<10), segs: make([]segment, parts)}, nil
}

// add appends one record to partition p. accBytes is the record's
// accounted (in-memory) size, carried into the segment index so totals
// never need a decode pass.
func (w *runWriter) add(p int, key string, v any, accBytes int64) error {
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(key)))
	w.scratch = append(w.scratch, key...)
	var err error
	if w.val, err = appendValue(w.val[:0], v); err != nil {
		return err
	}
	w.scratch = binary.AppendUvarint(w.scratch, uint64(len(w.val)))
	w.scratch = append(w.scratch, w.val...)
	n, err := w.w.Write(w.scratch)
	if err != nil {
		return err
	}
	seg := &w.segs[p]
	if seg.records == 0 {
		seg.off = w.off
	}
	w.off += int64(n)
	seg.end = w.off
	seg.records++
	seg.bytes += accBytes
	return nil
}

// finish flushes and returns the completed run, which keeps the file open
// for reading.
func (w *runWriter) finish() (*run, error) {
	if err := w.w.Flush(); err != nil {
		w.abort()
		return nil, err
	}
	return &run{f: w.f, segs: w.segs}, nil
}

// abort discards a partially written run.
func (w *runWriter) abort() {
	name := w.f.Name()
	w.f.Close()
	os.Remove(name)
}

// cursor iterates one partition's records within a run, in stored (key)
// order.
type cursor struct {
	br  *bufio.Reader
	buf []byte
}

// open returns a cursor over partition p, or nil when the run holds no
// records for it. Cursors over distinct partitions are independent, so
// concurrent reduce tasks can read the same run file.
func (r *run) open(p int) *cursor {
	seg := r.segs[p]
	if seg.records == 0 {
		return nil
	}
	return &cursor{br: bufio.NewReaderSize(io.NewSectionReader(r.f, seg.off, seg.end-seg.off), 32<<10)}
}

// next returns the cursor's next record; ok is false at the end of the
// segment.
func (c *cursor) next() (key string, v any, ok bool, err error) {
	kl, err := binary.ReadUvarint(c.br)
	if err == io.EOF {
		return "", nil, false, nil
	}
	if err != nil {
		return "", nil, false, err
	}
	if key, err = c.readFrame(kl); err != nil {
		return "", nil, false, err
	}
	vl, err := binary.ReadUvarint(c.br)
	if err != nil {
		return "", nil, false, fmt.Errorf("spill: truncated record: %w", err)
	}
	if cap(c.buf) < int(vl) {
		c.buf = make([]byte, vl)
	}
	c.buf = c.buf[:vl]
	if _, err = io.ReadFull(c.br, c.buf); err != nil {
		return "", nil, false, fmt.Errorf("spill: truncated value: %w", err)
	}
	if v, err = decodeValue(c.buf); err != nil {
		return "", nil, false, err
	}
	return key, v, true, nil
}

func (c *cursor) readFrame(n uint64) (string, error) {
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	c.buf = c.buf[:n]
	if _, err := io.ReadFull(c.br, c.buf); err != nil {
		return "", fmt.Errorf("spill: truncated key: %w", err)
	}
	return string(c.buf), nil
}
