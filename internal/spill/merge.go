package spill

// mergeSource yields one partition's records in key order. Sources are
// merged with a tie-break on source index, so a record emitted earlier
// (spilled in an earlier run, or still in the tail buffer — always the
// last source) replays earlier. Combined with the stable per-run sort,
// equal keys come out in exact emission order, which is what makes the
// spilled path byte-identical to the in-memory one downstream.
type mergeSource interface {
	next() (key string, v any, ok bool, err error)
}

// memSource drains an in-memory, key-sorted entry slice.
type memSource struct {
	es []entry
	i  int
}

func (s *memSource) next() (string, any, bool, error) {
	if s.i >= len(s.es) {
		return "", nil, false, nil
	}
	e := s.es[s.i]
	s.i++
	return e.key, e.val, true, nil
}

// mergeItem is one heap element: the head record of source src.
type mergeItem struct {
	key string
	val any
	src int
}

// mergeHeap is a binary min-heap ordered by (key, src).
type mergeHeap []mergeItem

func (h mergeHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].src < h[j].src
}

func (h mergeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h mergeHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(l, s) {
			s = l
		}
		if r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// cancelStride bounds how many records a drain replays between Cancel
// polls — matched to the engine's per-record cancellation stride so a
// deadline interrupts a wide merge within ~a thousand records.
const cancelStride = 1024

// kmerge replays sources in merged (key, source) order. With a non-nil
// fold, maximal key-equal record groups collapse into a single folded
// record, restoring the ≤-one-record-per-key invariant a fold-at-emit
// buffer had before its keys were split across runs; fold application
// order is exactly emission order, so any merge-capable Folder (fold over
// accumulators ≡ fold over values, true of every combiner in this repo)
// reproduces the in-memory accumulator bit-for-bit. A non-nil cancel is
// polled every cancelStride records and aborts the merge when it errors.
func kmerge(sources []mergeSource, fold func(acc, v any) any, cancel func() error, emit func(key string, v any)) error {
	h := make(mergeHeap, 0, len(sources))
	for i, s := range sources {
		k, v, ok, err := s.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, mergeItem{k, v, i})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	pop := func() (mergeItem, error) {
		top := h[0]
		k, v, ok, err := sources[top.src].next()
		if err != nil {
			return top, err
		}
		if ok {
			h[0] = mergeItem{k, v, top.src}
			h.down(0)
		} else {
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
			h.down(0)
		}
		return top, nil
	}
	var polls int
	for len(h) > 0 {
		if cancel != nil {
			if polls&(cancelStride-1) == 0 {
				if err := cancel(); err != nil {
					return err
				}
			}
			polls++
		}
		top, err := pop()
		if err != nil {
			return err
		}
		if fold == nil {
			emit(top.key, top.val)
			continue
		}
		acc := top.val
		for len(h) > 0 && h[0].key == top.key {
			nxt, err := pop()
			if err != nil {
				return err
			}
			acc = fold(acc, nxt.val)
		}
		emit(top.key, acc)
	}
	return nil
}
