// Package spill gives the MapReduce engine an out-of-core shuffle: a
// size-accounting partitioned KV buffer that, once a memory budget is
// exceeded, stable-sorts its spillable records by key and writes them as a
// length-prefixed sorted run to a temp file, then replays everything
// through a k-way heap merge in an order byte-identical (after the reduce
// phase's group-and-sort) to what the pure in-memory buffer produces —
// fold/combiner semantics included. This is the Hadoop sort-spill-merge
// pipeline DESIGN.md §2 originally substituted away, reintroduced so the
// reproduction no longer caps out at datasets that fit in RAM (DESIGN.md
// §8).
//
// Values cross the disk boundary through a type-tagged codec registry
// (codec.go). A record whose value type has no codec is pinned in memory
// instead of spilled — the budget turns soft rather than the job failing —
// so arbitrary jobs (engine tests, user code) stay correct under a
// process-wide FSJOIN_MEMORY_BUDGET.
package spill

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Config configures a Buffer.
type Config struct {
	// Parts is the number of partitions (reduce tasks).
	Parts int
	// Budget caps buffered bytes before a spill; <= 0 means unbounded (no
	// file is ever created, matching the engine's historical behaviour).
	Budget int64
	// Dir is the parent directory for the buffer's private temp dir; ""
	// means the OS temp dir. The private dir is created lazily on first
	// spill and removed by Close.
	Dir string
	// Fold, when non-nil, folds a new value into an existing accumulator
	// for the same key (the engine's fold-at-emit combiner fast path). It
	// must be merge-capable — folding two accumulators must equal folding
	// their constituent values — because the k-way merge re-folds keys
	// whose records were split across runs.
	Fold func(acc, v any) any
	// Size returns one record's accounted bytes; required. It must be a
	// pure function of (key, value) so spilled records account identically
	// after decode.
	Size func(key string, v any) int64
	// Cancel, when non-nil, is polled on a bounded stride inside Drain's
	// replay loops (including the k-way merge); a non-nil return aborts the
	// drain with that error, so a cancelled job stops mid-merge instead of
	// replaying every spilled record first.
	Cancel func() error
}

// Stats is a Buffer's spill activity. Deterministic for a fixed input,
// budget and partitioner.
type Stats struct {
	// Runs is the number of sorted runs written.
	Runs int64
	// SpilledBytes is the accounted bytes across all runs.
	SpilledBytes int64
	// PeakBytes is the in-memory high-water mark.
	PeakBytes int64
	// MergeWays is the widest merge fan-in any partition drain used.
	MergeWays int64
}

type entry struct {
	key    string
	val    any
	bytes  int64
	pinned bool
}

var errClosed = errors.New("spill: buffer closed")

// Buffer is a partitioned KV buffer with a memory budget. One task
// goroutine Adds; after the map barrier, concurrent reduce goroutines may
// Drain and Release distinct partitions. Close may race only with Add
// (an abandoned speculative attempt being discarded mid-emit) — the
// mutex covers exactly that pair.
type Buffer struct {
	cfg       Config
	parts     [][]entry
	slots     []map[string]int // per-partition key -> index, Fold only
	mem       int64
	pinnedMem int64
	peak      int64

	mu        sync.Mutex // guards dir, seq, runs, runCount, spilledBytes, closed
	dir       string
	seq       int
	runs      []*run
	runCount  int64
	spilled   int64
	closed    bool
	mergeWays atomic.Int64
	released  atomic.Int64
}

// NewBuffer returns an empty buffer.
func NewBuffer(cfg Config) *Buffer {
	if cfg.Parts < 1 {
		panic("spill: Config.Parts must be >= 1")
	}
	if cfg.Size == nil {
		panic("spill: Config.Size is required")
	}
	b := &Buffer{cfg: cfg, parts: make([][]entry, cfg.Parts)}
	if cfg.Fold != nil {
		b.slots = make([]map[string]int, cfg.Parts)
	}
	return b
}

// Add routes one record into partition part, folding into an existing
// accumulator when configured, and spills if the budget is exceeded.
func (b *Buffer) Add(part int, key string, v any) error {
	if part < 0 || part >= len(b.parts) {
		return fmt.Errorf("spill: partition %d out of range [0,%d)", part, len(b.parts))
	}
	if b.slots != nil {
		slot := b.slots[part]
		if slot == nil {
			slot = make(map[string]int)
			b.slots[part] = slot
		}
		if i, ok := slot[key]; ok {
			e := &b.parts[part][i]
			if e.pinned {
				b.pinnedMem -= e.bytes
			}
			e.val = b.cfg.Fold(e.val, v)
			nb := b.cfg.Size(key, e.val)
			b.mem += nb - e.bytes
			e.bytes = nb
			e.pinned = b.cfg.Budget > 0 && !Encodable(e.val)
			if e.pinned {
				b.pinnedMem += nb
			}
			return b.checkBudget()
		}
		slot[key] = len(b.parts[part])
	}
	e := entry{key: key, val: v, bytes: b.cfg.Size(key, v)}
	if b.cfg.Budget > 0 && !Encodable(v) {
		e.pinned = true
		b.pinnedMem += e.bytes
	}
	b.parts[part] = append(b.parts[part], e)
	b.mem += e.bytes
	return b.checkBudget()
}

func (b *Buffer) checkBudget() error {
	if b.mem > b.peak {
		b.peak = b.mem
	}
	if b.cfg.Budget <= 0 || b.mem <= b.cfg.Budget || b.mem == b.pinnedMem {
		return nil
	}
	return b.spill()
}

// spill stable-sorts every partition's spillable records by key and
// writes them as one run, keeping pinned records (and per-key fold slots
// over them) in memory.
func (b *Buffer) spill() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errClosed
	}
	if b.dir == "" {
		d, err := os.MkdirTemp(b.cfg.Dir, "fsjoin-spill-")
		if err != nil {
			return err
		}
		b.dir = d
	}
	w, err := newRunWriter(b.dir, b.seq, b.cfg.Parts)
	if err != nil {
		return err
	}
	b.seq++
	var out []entry
	var written int64
	for p := range b.parts {
		es := b.parts[p]
		if len(es) == 0 {
			continue
		}
		out = out[:0]
		kept := 0
		for _, e := range es {
			if e.pinned {
				es[kept] = e
				kept++
			} else {
				out = append(out, e)
			}
		}
		b.parts[p] = es[:kept]
		if b.slots != nil && b.slots[p] != nil {
			slot := make(map[string]int, kept)
			for i, e := range es[:kept] {
				slot[e.key] = i
			}
			b.slots[p] = slot
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].key < out[j].key })
		for _, e := range out {
			if err := w.add(p, e.key, e.val, e.bytes); err != nil {
				w.abort()
				return err
			}
			written += e.bytes
		}
	}
	r, err := w.finish()
	if err != nil {
		return err
	}
	b.runs = append(b.runs, r)
	b.runCount++
	b.spilled += written
	b.mem = b.pinnedMem
	return nil
}

// Drain replays one partition — runs first (in creation order), then the
// still-buffered tail — through the k-way merge, emitting each record with
// its accounted size, and returns the merge fan-in (1 when the partition
// never spilled). With a Fold configured, keys split across sources are
// re-folded so the partition again carries at most one record per key,
// exactly like the in-memory fast path. Concurrent Drains of distinct
// partitions are safe.
func (b *Buffer) Drain(part int, emit func(key string, v any, bytes int64)) (int, error) {
	tail := b.parts[part]
	var sources []mergeSource
	for _, r := range b.runs {
		if c := r.open(part); c != nil {
			sources = append(sources, c)
		}
	}
	if len(sources) == 0 {
		for i, e := range tail {
			if b.cfg.Cancel != nil && i&(cancelStride-1) == 0 {
				if err := b.cfg.Cancel(); err != nil {
					return 0, err
				}
			}
			emit(e.key, e.val, e.bytes)
		}
		if len(tail) == 0 {
			return 0, nil
		}
		return 1, nil
	}
	if len(tail) > 0 {
		ts := make([]entry, len(tail))
		copy(ts, tail)
		sort.SliceStable(ts, func(i, j int) bool { return ts[i].key < ts[j].key })
		sources = append(sources, &memSource{es: ts})
	}
	ways := int64(len(sources))
	for {
		cur := b.mergeWays.Load()
		if ways <= cur || b.mergeWays.CompareAndSwap(cur, ways) {
			break
		}
	}
	err := kmerge(sources, b.cfg.Fold, b.cfg.Cancel, func(k string, v any) {
		emit(k, v, b.cfg.Size(k, v))
	})
	return int(ways), err
}

// Totals returns the buffer's record and accounted byte counts as the
// reduce phase will see them. Without a Fold (or without spills) this is
// pure arithmetic over the segment index and tail; a folding buffer that
// spilled needs a merge pass, because keys split across runs collapse
// back into single records.
func (b *Buffer) Totals() (records, bytes int64, err error) {
	if b.cfg.Fold == nil || len(b.runs) == 0 {
		for _, es := range b.parts {
			for _, e := range es {
				records++
				bytes += e.bytes
			}
		}
		for _, r := range b.runs {
			for _, s := range r.segs {
				records += s.records
				bytes += s.bytes
			}
		}
		return records, bytes, nil
	}
	for p := range b.parts {
		if _, err = b.Drain(p, func(_ string, _ any, sz int64) {
			records++
			bytes += sz
		}); err != nil {
			return 0, 0, err
		}
	}
	return records, bytes, nil
}

// Release drops one fully consumed partition; when every partition has
// been released the buffer closes itself, removing its spill files.
func (b *Buffer) Release(part int) {
	b.parts[part] = nil
	if b.slots != nil {
		b.slots[part] = nil
	}
	if int(b.released.Add(1)) == b.cfg.Parts {
		b.Close()
	}
}

// Close removes the buffer's spill files and directory. Idempotent; a
// closed buffer rejects further spills (its in-memory tail still Adds,
// which only matters for abandoned speculative attempts whose output is
// discarded anyway).
func (b *Buffer) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, r := range b.runs {
		r.close()
	}
	b.runs = nil
	if b.dir != "" {
		os.RemoveAll(b.dir)
		b.dir = ""
	}
	return nil
}

// Stats returns the buffer's spill activity so far.
func (b *Buffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Runs:         b.runCount,
		SpilledBytes: b.spilled,
		PeakBytes:    b.peak,
		MergeWays:    b.mergeWays.Load(),
	}
}
