package fsjoin

import (
	"os"
	"reflect"
	"testing"
)

// TestMain hands the process over to the clustered-join worker loop when
// the test binary was re-executed as a worker (clustered runs re-execute
// the calling binary); without it every spawned worker would re-enter the
// test runner.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// clusterDet is the deterministic slice of Stats a transport or worker
// count must not perturb.
type clusterDet struct {
	ShuffleRecords, ShuffleBytes, Candidates int64
	LoadImbalance                            float64
}

func clusterDetOf(s Stats) clusterDet {
	return clusterDet{s.ShuffleRecords, s.ShuffleBytes, s.Candidates, s.LoadImbalance}
}

func assertSamePairs(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatalf("%s: pairs diverge: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
}

// clusterAlgos is the algorithm slice the multi-process acceptance suite
// covers: FS-Join plus two exact baselines.
var clusterAlgos = []struct {
	name string
	algo Algorithm
}{
	{"fs", FSJoin},
	{"ridpairs", RIDPairsPPJoin},
	{"vsmart", VSmartJoin},
}

// TestFileShuffleEquivalence proves Options.FileShuffle — the filesystem
// shuffle transport under a single process — is invisible: pairs and
// deterministic statistics match the in-memory shuffle exactly.
func TestFileShuffleEquivalence(t *testing.T) {
	texts := corpus(60, 7)
	for _, a := range append(clusterAlgos, struct {
		name string
		algo Algorithm
	}{"massjoin", MassJoinMerge}) {
		t.Run(a.name, func(t *testing.T) {
			opt := Options{Threshold: 0.7, Algorithm: a.algo, Nodes: 3}
			want, err := SelfJoinStrings(texts, opt)
			if err != nil {
				t.Fatalf("in-memory: %v", err)
			}
			opt.FileShuffle = true
			opt.SpillDir = t.TempDir()
			opt.LocalParallelism = 4
			got, err := SelfJoinStrings(texts, opt)
			if err != nil {
				t.Fatalf("file shuffle: %v", err)
			}
			assertSamePairs(t, "file shuffle", got, want)
			if d, w := clusterDetOf(got.Stats), clusterDetOf(want.Stats); d != w {
				t.Fatalf("file shuffle stats diverge: %+v, want %+v", d, w)
			}
		})
	}
}

// TestChaosTransportEquivalence is the seeded-chaos face of the delivery
// contract: schedules that mix worker-loss reassignments and duplicate
// partition deliveries into the ordinary fault kinds must leave pairs and
// deterministic statistics untouched at parallelism 1 and 4, on both the
// in-memory and the filesystem transport.
func TestChaosTransportEquivalence(t *testing.T) {
	texts := corpus(60, 7)
	var reassigned, redelivered int64
	for _, a := range clusterAlgos {
		a := a
		t.Run(a.name, func(t *testing.T) {
			base := Options{Threshold: 0.7, Algorithm: a.algo, Nodes: 3}
			want, err := SelfJoinStrings(texts, base)
			if err != nil {
				t.Fatalf("fault-free: %v", err)
			}
			for i := 0; i < 4; i++ {
				for _, par := range []int{1, 4} {
					opt := base
					opt.LocalParallelism = par
					opt.FileShuffle = i%2 == 1
					opt.SpillDir = t.TempDir()
					opt.Fault.MaxAttempts = 4
					opt.Fault.ChaosSeed = 8100 + int64(i)*1_000_003
					opt.Fault.ChaosIntensity = 0.8
					opt.Fault.ChaosTransportFaults = true
					got, err := SelfJoinStrings(texts, opt)
					if err != nil {
						t.Fatalf("schedule %d par %d: %v", i, par, err)
					}
					assertSamePairs(t, "chaos", got, want)
					if d, w := clusterDetOf(got.Stats), clusterDetOf(want.Stats); d != w {
						t.Fatalf("schedule %d par %d stats diverge: %+v, want %+v", i, par, d, w)
					}
					reassigned += got.Stats.TasksReassigned
					redelivered += got.Stats.PartitionsRedelivered
				}
			}
		})
	}
	if reassigned == 0 || redelivered == 0 {
		t.Fatalf("chaos schedules proved nothing: reassigned=%d redelivered=%d", reassigned, redelivered)
	}
}

// TestMultiprocessEquivalence proves Workers ≥ 2 — real supervised worker
// processes over the filesystem transport — is invisible: pairs and
// deterministic statistics match the in-process run for self-joins and
// R-S joins alike.
func TestMultiprocessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	texts := corpus(60, 7)
	cases := []struct {
		name string
		algo Algorithm
		rs   bool
	}{
		{"fs", FSJoin, false},
		{"ridpairs", RIDPairsPPJoin, false},
		{"vsmart", VSmartJoin, false},
		{"fs-rs", FSJoin, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opt := Options{Threshold: 0.7, Algorithm: c.algo, Nodes: 3}
			want, err := runMatrixJoin(texts, opt, c.rs)
			if err != nil {
				t.Fatalf("in-process: %v", err)
			}
			opt.Workers = 2
			got, err := runMatrixJoin(texts, opt, c.rs)
			if err != nil {
				t.Fatalf("clustered: %v", err)
			}
			assertSamePairs(t, "clustered", got, want)
			if d, w := clusterDetOf(got.Stats), clusterDetOf(want.Stats); d != w {
				t.Fatalf("clustered stats diverge: %+v, want %+v", d, w)
			}
			if got.Stats.Workers != 2 {
				t.Fatalf("Stats.Workers = %d, want 2", got.Stats.Workers)
			}
			if got.Stats.TransportHeartbeats == 0 {
				t.Fatal("no heartbeats recorded — supervisor never saw the workers")
			}
			if got.Stats.WorkerDeaths != 0 {
				t.Fatalf("unexpected worker deaths: %d", got.Stats.WorkerDeaths)
			}
		})
	}
}

// TestWorkerKillRecovery is the worker-kill acceptance harness: SIGKILL
// one of two workers at each injected boundary — mid-map, at the shuffle
// hand-off, and mid-reduce — and demand the surviving run produce pairs
// byte-identical to the in-process run, deterministic statistics
// identical to an unharmed clustered run, and supervision counters that
// prove the recovery actually happened.
func TestWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	texts := corpus(60, 7)
	boundaries := []string{"0:map:1", "0:handoff:1", "0:reduce:1"}
	for _, a := range clusterAlgos {
		a := a
		t.Run(a.name, func(t *testing.T) {
			opt := Options{Threshold: 0.7, Algorithm: a.algo, Nodes: 3}
			want, err := SelfJoinStrings(texts, opt)
			if err != nil {
				t.Fatalf("in-process: %v", err)
			}
			opt.Workers = 2
			clean, err := SelfJoinStrings(texts, opt)
			if err != nil {
				t.Fatalf("clustered baseline: %v", err)
			}
			for _, spec := range boundaries {
				t.Run(spec, func(t *testing.T) {
					t.Setenv("FSJOIN_KILL_WORKER", spec)
					got, err := SelfJoinStrings(texts, opt)
					if err != nil {
						t.Fatalf("killed run: %v", err)
					}
					assertSamePairs(t, "killed run", got, want)
					if d, w := clusterDetOf(got.Stats), clusterDetOf(clean.Stats); d != w {
						t.Fatalf("killed-run stats diverge: %+v, want %+v", d, w)
					}
					if got.Stats.WorkerDeaths < 1 {
						t.Fatal("worker survived the injected SIGKILL — harness proves nothing")
					}
					if got.Stats.TasksReassigned == 0 {
						t.Fatal("no task reassigned after the kill — lease recovery never ran")
					}
				})
			}
		})
	}
}

// TestClusterRejections pins the option combinations a clustered run must
// refuse rather than silently change semantics.
func TestClusterRejections(t *testing.T) {
	texts := corpus(12, 3)
	run := func(mutate func(*Options)) error {
		opt := Options{Threshold: 0.7, Algorithm: FSJoin, Workers: 2}
		mutate(&opt)
		_, err := SelfJoinStrings(texts, opt)
		return err
	}
	if err := run(func(o *Options) { o.CheckpointDir = t.TempDir() }); err == nil {
		t.Fatal("CheckpointDir with Workers > 1 not rejected")
	}
	if err := run(func(o *Options) { o.Fault.SpeculativeDelay = 1 }); err == nil {
		t.Fatal("SpeculativeDelay with Workers > 1 not rejected")
	}
	if err := run(func(o *Options) { o.Fault.injector = &jobRecorder{} }); err == nil {
		t.Fatal("test injector with Workers > 1 not rejected")
	}
}
